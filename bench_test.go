// Package paramring's top-level benchmarks regenerate the cost-shaped
// claims of the paper, one benchmark family per experiment of DESIGN.md:
//
//	BenchmarkFigure1RCGBuild        — F1: building the matching RCG
//	BenchmarkFigure2DeadlockCheck   — F2/F3: Theorem 4.2 over local deadlocks
//	BenchmarkFigure3RingSizes       — F3: per-K deadlock prediction from the RCG
//	BenchmarkFigure4LTGBuild        — F4: building the LTG
//	BenchmarkFigure5Precedence      — F5: precedence DAG + linear extensions
//	BenchmarkFigure8TrailSearch     — F8: Theorem 5.14 trail search
//	BenchmarkFigure9to12Synthesis   — F9-F12: the Section 6 methodology
//	BenchmarkTable1LocalVsGlobal    — T1: the headline local-vs-global sweep
//	BenchmarkTable4GlobalSynthesis  — T4: the STSyn-style baseline
//	BenchmarkSimulation             — T3: scheduler-driven runs
//
// The shape to observe: every Local* benchmark is independent of K (a few
// microseconds on a 9- or 27-state local space), while Global/K=n grows as
// domain^n — the paper's "significant improvement in time/space complexity".
package paramring

import (
	"fmt"
	"math/rand"
	"testing"

	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
	"paramring/internal/sim"
	"paramring/internal/synthesis"
)

func BenchmarkFigure1RCGBuild(b *testing.B) {
	sys := protocols.MatchingStateSpace().Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rcg.Build(sys)
	}
}

func BenchmarkFigure2DeadlockCheck(b *testing.B) {
	for _, name := range []string{"matchingA", "matchingB"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			sys := p.Compile()
			r := rcg.Build(sys)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.CheckDeadlockFreedom(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure3RingSizes(b *testing.B) {
	r := rcg.Build(protocols.MatchingB().Compile())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.DeadlockRingSizes(2, 16)
	}
}

func BenchmarkFigure4LTGBuild(b *testing.B) {
	sys := protocols.MatchingA().Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ltg.Build(sys)
	}
}

func BenchmarkFigure5Precedence(b *testing.B) {
	procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dag := ltg.DependencyDAG(4, procs)
		if _, err := ltg.LinearExtensions(dag, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8TrailSearch(b *testing.B) {
	for _, name := range []string{"gouda-acharya", "agreement-both", "sum-not-two-ss"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure9to12Synthesis(b *testing.B) {
	for _, name := range []string{"agreement", "coloring2", "coloring3", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// coloring declares failure by design; both outcomes count.
				_, _ = synthesis.Synthesize(p, synthesis.Options{All: true})
			}
		})
	}
}

// BenchmarkTable1LocalVsGlobal is the headline: the Local sub-benchmarks do
// a complete all-K verification on the 9-state local space; the Global/K=n
// ones model-check one instance exhaustively and scale as 3^n. The Global
// side runs both engines — seq pins the explicit checker to one worker,
// par follows GOMAXPROCS — so `-cpu 1,2,4,8` shows the parallel scaling
// shape on top of the exponential sweep. The instances run under the
// engine's default state ceiling (1<<28 with the packed-bitset tables, up
// from the 1<<24 the old []bool layout forced), and each seq/K row reports
// the resident table bytes so the 1-bit-per-state cost is visible in the
// benchmark output.
func BenchmarkTable1LocalVsGlobal(b *testing.B) {
	p := protocols.SumNotTwoSolution()
	b.Run("Local/all-K", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := p.Compile()
			if _, err := rcg.Build(sys).CheckDeadlockFreedom(0); err != nil {
				b.Fatal(err)
			}
			if _, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{4, 6, 8, 10, 12, 14} {
		b.Run(fmt.Sprintf("Global/seq/K=%d", k), func(b *testing.B) {
			in, err := explicit.NewInstance(p, k, explicit.WithWorkers(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(in.TableBytes())/float64(in.NumStates()), "table-B/state")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergenceSeq().Converges {
					b.Fatal("unexpected verdict")
				}
			}
		})
		b.Run(fmt.Sprintf("Global/par/K=%d", k), func(b *testing.B) {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergence().Converges {
					b.Fatal("unexpected verdict")
				}
			}
		})
	}
	// The same sweep for matching A (27 local states, bidirectional).
	ma := protocols.MatchingA()
	b.Run("Local/matchingA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := ma.Compile()
			if _, err := rcg.Build(sys).CheckDeadlockFreedom(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{4, 6, 8} {
		for _, mode := range []struct {
			name string
			opts []explicit.Option
		}{
			{"seq", []explicit.Option{explicit.WithWorkers(1)}},
			{"par", nil},
		} {
			b.Run(fmt.Sprintf("Global/%s/matchingA/K=%d", mode.name, k), func(b *testing.B) {
				in, err := explicit.NewInstance(ma, k, mode.opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if got := in.IllegitimateDeadlocks(); len(got) != 0 {
						b.Fatal("unexpected deadlock")
					}
				}
			})
		}
	}
}

func BenchmarkTable4GlobalSynthesis(b *testing.B) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"agreement", 3},
		{"agreement", 5},
		{"sum-not-two", 3},
		{"sum-not-two", 4},
		{"coloring3", 3},
	} {
		p := protocols.All()[tc.name]
		for _, mode := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(fmt.Sprintf("%s/%s/K=%d", mode.name, tc.name, tc.k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := explicit.SynthesizeGlobalWorkers(p, tc.k, 0, mode.workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSimulation(b *testing.B) {
	in, err := explicit.NewInstance(protocols.SumNotTwoSolution(), 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := sim.Run(in, sim.RandomState(in, rng), sim.Random{}, rng, sim.Options{MaxSteps: 10000})
		if !res.Converged {
			b.Fatal("must converge")
		}
	}
}

func BenchmarkExplicitLivelockDetection(b *testing.B) {
	for _, k := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("gouda-acharya/K=%d", k), func(b *testing.B) {
			in, err := explicit.NewInstance(protocols.GoudaAcharya(), k)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if in.FindLivelock() == nil {
					b.Fatal("livelock expected")
				}
			}
		})
	}
}
