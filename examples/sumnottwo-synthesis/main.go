// Sum-not-two synthesis walkthrough — the paper's Section 6.2 example that
// exercises every branch of the methodology: a Resolve set that must cover
// all illegitimate deadlocks, candidate sets rejected for pseudo-livelocking
// trails (two of which are SPURIOUS — the condition is sufficient, not
// necessary — and two of which hide REAL K=3 livelocks the paper's prose
// missed), and accepted sets that are convergent for every ring size.
//
// Run with: go run ./examples/sumnottwo-synthesis
package main

import (
	"fmt"
	"log"

	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/synthesis"
)

func main() {
	base := protocols.SumNotTwoBase()
	fmt.Println("sum-not-two: x_r in {0,1,2}, LC_r: x_{r-1} + x_r != 2, empty input protocol")
	fmt.Println()

	res, err := synthesis.Synthesize(base, synthesis.Options{All: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Steps {
		fmt.Println(s)
	}

	sys := base.Compile()
	fmt.Printf("\n%d accepted, %d rejected. Classifying the rejections by exhaustive search:\n",
		len(res.Accepted), len(res.Rejections))
	for _, rej := range res.Rejections {
		pss, err := synthesis.Apply(base, rej.Chosen, "conv")
		if err != nil {
			log.Fatal(err)
		}
		verdict := "SPURIOUS trail (no livelock found for K=3..6 — Theorem 5.14 is sufficient, not necessary)"
		for k := 3; k <= 6; k++ {
			in, err := explicit.NewInstance(pss, k)
			if err != nil {
				log.Fatal(err)
			}
			if c := in.FindLivelock(); c != nil {
				verdict = fmt.Sprintf("REAL livelock at K=%d: %s", k, in.FormatCycle(c))
				break
			}
		}
		fmt.Printf("  %s: %s\n", ltg.FormatTArcs(sys, rej.Chosen), verdict)
	}

	fmt.Println("\nThe paper's highlighted solution, as a guarded-command action:")
	fmt.Println("  (x_r + x_{r-1} = 2) AND (x_r != 2) -> x_r := (x_r + 1) mod 3")
	fmt.Println("  (x_r + x_{r-1} = 2) AND (x_r  = 2) -> x_r := (x_r - 1) mod 3")
	sol := protocols.SumNotTwoSolution()
	rep, err := ltg.CheckLivelockFreedom(sol, ltg.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local livelock verdict: %v\n", rep.Verdict)
	fmt.Print("explicit cross-validation:")
	for k := 3; k <= 8; k++ {
		in, err := explicit.NewInstance(sol, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" K=%d:%v", k, in.CheckStrongConvergence().Converges)
	}
	fmt.Println()
}
