// Quickstart: define a parameterized ring protocol, verify it locally for
// EVERY ring size, synthesize convergence for a broken one, and
// cross-validate with the explicit model checker.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
	"paramring/internal/synthesis"
)

func main() {
	// 1. Define binary agreement on a unidirectional ring: every process
	//    owns x_r in {0,1} and reads its left neighbor; the legitimate
	//    states are those where all values agree (LC_r: x_{r-1} == x_r).
	//    We start from the EMPTY protocol — no actions at all — which is
	//    trivially closed in I but full of illegitimate deadlocks.
	base, err := core.New(core.Config{
		Name:   "agreement",
		Domain: 2,
		Lo:     -1, // reads x_{r-1} ...
		Hi:     0,  // ... and its own x_r
		Legit:  func(v core.View) bool { return v[0] == v[1] },
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Theorem 4.2: is it deadlock-free outside I for every ring size K?
	//    (Of course not — it has no actions.)
	rep, err := rcg.Build(base.Compile()).CheckDeadlockFreedom(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("empty agreement deadlock-free for every K: %v\n", rep.Free)
	for _, c := range rep.BadCycles {
		fmt.Printf("  illegitimate deadlock cycle: %s (rings of size %d, %d, ...)\n",
			rcg.Build(base.Compile()).FormatCycle(c), len(c), 2*len(c))
	}

	// 3. Synthesize convergence with the paper's Section 6 methodology.
	//    The result is correct-by-construction for EVERY K.
	res, err := synthesis.Synthesize(base, synthesis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sol := res.Best()
	fmt.Printf("\nsynthesized recovery action (phase %s):\n", sol.Phase)
	for _, t := range sol.Chosen {
		fmt.Printf("  %s\n", base.Compile().FormatTransition(t))
	}

	// 4. Re-verify locally: Theorem 4.2 + Theorem 5.14.
	dl, err := rcg.Build(sol.Protocol.Compile()).CheckDeadlockFreedom(0)
	if err != nil {
		log.Fatal(err)
	}
	ll, err := ltg.CheckLivelockFreedom(sol.Protocol, ltg.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal verification: deadlock-free=%v livelock=%v => self-stabilizing for EVERY K\n",
		dl.Free, ll.Verdict)

	// 5. Sanity: cross-validate with exhaustive global model checking for a
	//    few concrete ring sizes.
	fmt.Print("explicit cross-validation:")
	for k := 2; k <= 9; k++ {
		in, err := explicit.NewInstance(sol.Protocol, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" K=%d:%v", k, in.CheckStrongConvergence().Converges)
	}
	fmt.Println()
}
