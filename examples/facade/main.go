// Facade walkthrough: the one-call verification API (internal/verify) plus
// the structured livelock diagnosis (ltg.Diagnose) — the entry points a
// protocol designer uses day to day. We sweep the whole zoo and print each
// protocol's combined verdict, then zoom into the agreement family to show
// how a diagnosis explains WHY a protocol passes or fails.
//
// Run with: go run ./examples/facade
package main

import (
	"fmt"
	"log"
	"sort"

	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/verify"
)

func main() {
	zoo := protocols.All()
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Println("=== combined verdicts (local theorems + witness confirmation) ===")
	for _, name := range names {
		rep, err := verify.Protocol(zoo[name], verify.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %s\n", name, rep.Summary())
	}

	fmt.Println("\n=== why agreement-both fails and agreement-t01 passes ===")
	for _, name := range []string{"agreement-t01", "agreement-both"} {
		p := zoo[name]
		d, err := ltg.Diagnose(p, ltg.CheckOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n%s", name, d.Summary(p.Compile()))
	}

	fmt.Println("\n=== confirming the agreement-both witness as a real livelock ===")
	p := zoo["agreement-both"]
	rep, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	conf, err := ltg.ConfirmWitness(p, rep.Witness, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("confirmed=%v at K=%d\n", conf.Confirmed, conf.K)
}
