// Custom protocol workflow: define a NEW protocol in the guarded-commands
// DSL (no Go required), let the Section 6 methodology synthesize its
// convergence actions, verify the result for every ring size with the local
// theorems, and cross-validate with the explicit model checker.
//
// The protocol: "no two adjacent ones" — a binary ring where a process
// holding 1 must follow a 0 (a local mutual-exclusion constraint). The
// legitimate states are exactly the rings without adjacent ones. The input
// protocol is empty; the synthesizer must invent recovery.
//
// Run with: go run ./examples/custom-dsl
package main

import (
	"fmt"
	"log"

	"paramring/internal/dsl"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
	"paramring/internal/synthesis"
)

const spec = `
# No two adjacent ones on a unidirectional binary ring.
protocol no-adjacent-ones
domain 2
window -1 0
legit !(x[-1] == 1 && x[0] == 1)
`

func main() {
	base, err := dsl.Parse(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: domain %d, %d local states, empty action set\n",
		base.Name(), base.Domain(), base.NumLocalStates())

	// The empty protocol deadlocks in illegitimate states (e.g. the all-ones
	// ring). Theorem 4.2 localizes the problem.
	r := rcg.Build(base.Compile())
	dl, err := r.CheckDeadlockFreedom(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbase protocol deadlock-free for every K: %v\n", dl.Free)
	for _, c := range dl.BadCycles {
		fmt.Printf("  illegitimate deadlock cycle: %s\n", r.FormatCycle(c))
	}

	// Synthesize.
	res, err := synthesis.Synthesize(base, synthesis.Options{All: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmethodology:")
	for _, s := range res.Steps {
		fmt.Println(" ", s)
	}
	sol := res.Best()
	fmt.Printf("\nsynthesized action (phase %s): %s\n",
		sol.Phase, ltg.FormatTArcs(base.Compile(), sol.Chosen))

	// The solution is correct-by-construction for every K; sanity-check a few.
	fmt.Print("explicit cross-validation:")
	for k := 2; k <= 10; k++ {
		in, err := explicit.NewInstance(sol.Protocol, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" K=%d:%v", k, in.CheckStrongConvergence().Converges)
	}
	fmt.Println()

	// Count legitimate states: rings without adjacent ones are counted by
	// the Lucas numbers; print the sequence as a bonus sanity check.
	fmt.Print("|I(K)| (should follow the Lucas numbers 3, 4, 7, 11, 18, ...):")
	for k := 2; k <= 8; k++ {
		in, err := explicit.NewInstance(sol.Protocol, k)
		if err != nil {
			log.Fatal(err)
		}
		count := 0
		for id := uint64(0); id < in.NumStates(); id++ {
			if in.InI(id) {
				count++
			}
		}
		fmt.Printf(" %d", count)
	}
	fmt.Println()
}
