// Dijkstra's K-state token ring — the paper's Section 5 motivation for why
// "non-corrupting convergence actions" is too strong a requirement: this
// classic protocol stabilizes even though its actions corrupt neighbors.
// The ring has a distinguished bottom process and a global (not locally
// conjunctive) legitimate predicate ("exactly one token"), so it sits
// outside the paper's parameterized-local class; we check it per ring size
// with the explicit model checker, and drive it with the fault-injecting
// simulator.
//
// Run with: go run ./examples/tokenring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/sim"
	"paramring/internal/trace"
)

func main() {
	const m, k = 4, 4 // m >= K makes Dijkstra's ring stabilize
	follower, bottom := protocols.DijkstraTokenRing(m)
	in, err := explicit.NewInstance(follower, k,
		explicit.WithProcessActions(0, bottom),
		explicit.WithGlobalPredicate(protocols.TokenRingLegit))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Dijkstra token ring, m=%d states per process, K=%d processes\n", m, k)
	rep := in.CheckStrongConvergence()
	fmt.Printf("strongly self-stabilizing (explicit check): %v\n", rep.Converges)

	// Show a recovery from a badly corrupted configuration.
	rng := rand.New(rand.NewSource(1))
	start := in.Encode([]int{3, 1, 2, 0}) // several spurious tokens
	res := sim.Run(in, start, sim.Random{}, rng, sim.Options{MaxSteps: 200, RecordTrace: true})
	comp := trace.Computation{In: in, States: res.Trace, Procs: res.Procs}
	fmt.Printf("\nrecovery from %s in %d steps:\n  %s\n", in.Format(start), res.Steps, comp.String())

	// Fault injection campaign: corrupt 1..K variables of a legitimate
	// state and measure recovery.
	fmt.Println("\nfault-injection campaign (200 runs each):")
	for faults := 1; faults <= k; faults++ {
		converged, total, maxSteps := 0, 0, 0
		for t := 0; t < 200; t++ {
			legit := in.Encode([]int{2, 2, 2, 2}) // one token at the bottom
			faulty := sim.InjectFaults(in, legit, faults, rng)
			r := sim.Run(in, faulty, sim.Random{}, rng, sim.Options{MaxSteps: 10000})
			if r.Converged {
				converged++
				total += r.Steps
				if r.Steps > maxSteps {
					maxSteps = r.Steps
				}
			}
		}
		fmt.Printf("  %d fault(s): %d/200 recovered, mean %.1f steps, max %d\n",
			faults, converged, float64(total)/float64(converged), maxSteps)
	}

	// The contrast the paper draws: with m < K the protocol is NOT
	// self-stabilizing.
	follower2, bottom2 := protocols.DijkstraTokenRing(2)
	in2, err := explicit.NewInstance(follower2, k,
		explicit.WithProcessActions(0, bottom2),
		explicit.WithGlobalPredicate(protocols.TokenRingLegit))
	if err != nil {
		log.Fatal(err)
	}
	rep2 := in2.CheckStrongConvergence()
	fmt.Printf("\nwith m=2 < K=%d: stabilizes=%v", k, rep2.Converges)
	if c := rep2.LivelockWitness; c != nil {
		fmt.Printf(" (livelock: %s)", in2.FormatCycle(c))
	}
	fmt.Println()
}
