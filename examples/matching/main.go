// Maximal matching deep dive: the paper's Section 4 story end to end.
//
// Example 4.2 (matching A) was synthesized by a global tool for K=6 and
// turns out to be generalizable: Theorem 4.2's local check proves it
// deadlock-free for EVERY ring size. Example 4.3 (matching B) stabilizes
// for K=5 yet hides two illegitimate deadlock cycles in its continuation
// relation; unrolling them constructs concrete global deadlocks for rings
// of size 4 and 6, and resolving the single local state <left,left,self>
// repairs the protocol for every K.
//
// Run with: go run ./examples/matching
package main

import (
	"fmt"
	"log"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
)

func main() {
	// --- Example 4.2: generalizable ---
	a := protocols.MatchingA()
	ra := rcg.Build(a.Compile())
	repA, err := ra.CheckDeadlockFreedom(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching A: %d local deadlocks, deadlock-free for every K: %v\n",
		len(repA.LocalDeadlocks), repA.Free)

	// The paper model-checked K=5..8; so do we.
	for _, k := range []int{5, 6, 7, 8} {
		in, err := explicit.NewInstance(a, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  explicit K=%d: converges=%v\n", k, in.CheckStrongConvergence().Converges)
	}

	// --- Example 4.3: non-generalizable ---
	b := protocols.MatchingB()
	rb := rcg.Build(b.Compile())
	repB, err := rb.CheckDeadlockFreedom(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatching B: deadlock-free for every K: %v\n", repB.Free)
	for _, cycle := range repB.BadCycles {
		fmt.Printf("  cycle %s\n", rb.FormatCycle(cycle))
		// Theorem 4.2's forward construction: unroll the cycle into a
		// concrete global deadlock and confirm it with the model checker.
		vals, err := rb.UnrollCycle(cycle, 1)
		if err != nil {
			log.Fatal(err)
		}
		in, err := explicit.NewInstance(b, len(vals))
		if err != nil {
			log.Fatal(err)
		}
		id := in.Encode(vals)
		fmt.Printf("    unrolls to K=%d global deadlock %s (deadlock=%v, outside I=%v)\n",
			len(vals), in.Format(id), in.IsDeadlock(id), !in.InI(id))
	}

	// Which ring sizes are actually affected? The RCG predicts it exactly.
	sizes := rb.DeadlockRingSizes(2, 12)
	fmt.Print("  deadlocking ring sizes (RCG closed-walk prediction):")
	for k := 2; k <= 12; k++ {
		if sizes[k] {
			fmt.Printf(" %d", k)
		}
	}
	fmt.Println("\n  (note K=5 is safe — matching B was synthesized for K=5)")

	// --- The repair ---
	lls := b.Encode(core.View{protocols.MatchLeft, protocols.MatchLeft, protocols.MatchSelf})
	repaired := b.WithActions("matchingB+fix", core.Action{
		Name: "FixLLS",
		Guard: func(v core.View) bool {
			return v[0] == protocols.MatchLeft && v[1] == protocols.MatchLeft && v[2] == protocols.MatchSelf
		},
		Next: func(v core.View) []int { return []int{protocols.MatchSelf} },
	})
	repFix, err := rcg.Build(repaired.Compile()).CheckDeadlockFreedom(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter resolving local deadlock %s: deadlock-free for every K: %v\n",
		b.FormatState(lls), repFix.Free)
}
