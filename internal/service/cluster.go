package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"paramring/internal/cluster"
	"paramring/internal/explicit"
	"paramring/internal/verify"
)

// ClusterConfig turns the service into a cluster coordinator: instead of
// running jobs on a local worker pool, the dispatcher places each job on
// a lease-holding worker — in-process LocalWorkers configured here,
// remote lrserved processes joined over HTTP, or both. The journal gains
// lease records so a coordinator restart knows which jobs were running
// where; the result cache gains a consistent-hash federated tier over
// the worker peers.
type ClusterConfig struct {
	// LeaseTTL is how long a lease survives without a heartbeat (default
	// 10s). Must exceed HeartbeatInterval; cmd/lrserved validates this at
	// the flag boundary.
	LeaseTTL time.Duration
	// HeartbeatInterval is the renewal cadence (default LeaseTTL/4).
	HeartbeatInterval time.Duration
	// LocalWorkers is the number of in-process cluster workers to start
	// (0 = serve remote joiners only).
	LocalWorkers int
	// WorkerSlots is the per-local-worker concurrency (default 1).
	WorkerSlots int
	// WorkerMemBudgetBytes is each local worker's advertised placement
	// budget (0 = unlimited).
	WorkerMemBudgetBytes uint64
	// SelfID names this node on the federated-cache ring (default
	// "coordinator").
	SelfID string

	// Fault-injection seams for the chaos suite (nil in production).
	// HeartbeatFilter gates local workers' renewals (false = blackholed);
	// CachePeerBlackhole force-fails federated cache calls to a peer.
	HeartbeatFilter    func(workerID, jobID string) bool
	CachePeerBlackhole func(peer cluster.Peer) bool
	// Observer receives one call per cluster event — the chaos transcript
	// hook (nil = none). Events: lease-granted, lease-renewed,
	// lease-expired, late-result, worker-joined, worker-lost, redispatch.
	Observer func(event, jobID, workerID string)
}

func (c *ClusterConfig) selfID() string {
	if c.SelfID == "" {
		return "coordinator"
	}
	return c.SelfID
}

// initCluster builds the coordinator, federation, and shared runner.
// Called from New before replay so recovered leases can be reinstalled.
func (s *Service) initCluster() {
	cc := s.cfg.Cluster
	s.fed = cluster.NewFederation(cc.selfID())
	s.fed.Blackhole = cc.CachePeerBlackhole
	s.runner = cluster.NewLocalRunner(s.specs, s.memos)
	s.coord = cluster.NewCoordinator(cluster.Config{
		LeaseTTL:          cc.LeaseTTL,
		HeartbeatInterval: cc.HeartbeatInterval,
		DegradeOverBudget: s.cfg.DegradeOverBudget,
		Log:               s.cfg.Log,
		Events: cluster.Events{
			LeaseGranted: func(jobID, workerID string, expiry time.Time, renewal bool) {
				if renewal {
					s.metrics.ClusterLeaseRenewals.Add(1)
					s.observeCluster("lease-renewed", jobID, workerID)
				} else {
					s.metrics.ClusterLeasesGranted.Add(1)
					s.observeCluster("lease-granted", jobID, workerID)
				}
				// Fsynced before the worker can act on the task (grants) or
				// before the renewal is acknowledged: the journal never
				// believes a lease the disk does not.
				s.journalAppend(journalRecord{
					Op: opLease, ID: jobID, Worker: workerID, ExpireAtMS: expiry.UnixMilli(),
				})
			},
			LeaseExpired: func(jobID, workerID string) {
				s.metrics.ClusterLeasesExpired.Add(1)
				s.observeCluster("lease-expired", jobID, workerID)
			},
			LateResult: func(jobID, workerID string) {
				s.metrics.ClusterLateResults.Add(1)
				s.observeCluster("late-result", jobID, workerID)
			},
			WorkerJoined: func(info cluster.WorkerInfo) {
				s.metrics.ClusterWorkersJoined.Add(1)
				s.observeCluster("worker-joined", "", info.ID)
			},
			WorkerLost: func(id, reason string) {
				s.metrics.ClusterWorkersLost.Add(1)
				s.observeCluster("worker-lost", reason, id)
			},
			PeersChanged: func(peers []cluster.Peer) {
				s.fed.SetPeers(peers)
			},
		},
	})
}

func (s *Service) observeCluster(event, jobID, workerID string) {
	if cc := s.cfg.Cluster; cc != nil && cc.Observer != nil {
		cc.Observer(event, jobID, workerID)
	}
}

// startCluster launches the coordinator, the configured in-process
// workers, and the single dispatcher goroutine that drains the job queue
// into lease dispatches.
func (s *Service) startCluster() {
	cc := s.cfg.Cluster
	s.coord.Start()
	before := func(t cluster.Task) error {
		if h := s.cfg.Hooks; h != nil && h.BeforeVerify != nil {
			if herr := h.BeforeVerify(t.JobID, t.Attempt); herr != nil {
				return fmt.Errorf("%w: %v", ErrTransient, herr)
			}
		}
		return nil
	}
	for i := 0; i < cc.LocalWorkers; i++ {
		w := &cluster.LocalWorker{
			Coord: s.coord,
			Info: cluster.WorkerInfo{
				ID:             fmt.Sprintf("%s-w%d", cc.selfID(), i),
				MemBudgetBytes: cc.WorkerMemBudgetBytes,
				Slots:          cc.WorkerSlots,
			},
			Runner:          s.runner,
			Before:          before,
			HeartbeatFilter: cc.HeartbeatFilter,
		}
		if err := w.Start(); err != nil {
			s.cfg.Log.Printf("cluster: local worker %d: %v", i, err)
			continue
		}
		s.clusterWorkers = append(s.clusterWorkers, w)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for j := range s.queue {
			s.metrics.JobsQueued.Add(-1)
			s.dispatch(j)
		}
	}()
}

// stopCluster shuts the coordinator down (firing any outstanding lease
// as canceled-replayable) and waits for the local worker loops.
func (s *Service) stopCluster() {
	if s.coord == nil {
		return
	}
	s.coord.Stop()
	for _, w := range s.clusterWorkers {
		w.Wait()
	}
}

// taskForJob projects a job into the wire-safe cluster task. The option
// mapping mirrors jobVerifyOptions exactly — including the server-level
// degraded clamps — so a clustered attempt and a local attempt hand the
// engine identical options and therefore produce byte-identical results.
func (s *Service) taskForJob(j *Job, attempt int) cluster.Task {
	o := j.spec.options
	workers := s.cfg.EngineWorkers
	if o.Workers > 0 && o.Workers < workers {
		workers = o.Workers
	}
	topts := cluster.Options{
		ConfirmMaxK:         o.ConfirmMaxK,
		CrossValidateMaxK:   o.CrossValidateMaxK,
		BoundedFallbackMaxK: o.BoundedFallbackMaxK,
		MaxTArcs:            o.MaxTArcs,
		Workers:             workers,
		Invariant:           o.Invariant,
	}
	if j.degraded {
		topts.Workers = 1
		topts.MaxStates = explicit.MaxStatesForBudget(s.cfg.MemoryBudgetBytes)
	}
	return cluster.Task{
		JobID:          j.id,
		Spec:           j.spec.canonical,
		Options:        topts,
		Estimate:       j.estimate,
		DeadlineUnixMS: j.deadline.UnixMilli(),
		Attempt:        attempt,
		Degraded:       j.degraded,
	}
}

// dispatch is the cluster counterpart of run: one attempt, placed on a
// worker under a lease instead of executed inline. The coordinator fires
// the done callback exactly once — completion, lease expiry, or shutdown
// — and the callback routes the outcome through the same finishAttempt
// classification as local execution, so retries, quarantine, journaling,
// and caching behave identically in both modes.
func (s *Service) dispatch(j *Job) {
	s.mu.Lock()
	j.state = StateRunning
	j.attempts++
	j.started = time.Now()
	attempt := j.attempts
	s.mu.Unlock()
	s.metrics.JobsRunning.Add(1)

	ctx, cancel := context.WithDeadline(s.runCtx, j.deadline)
	err := s.coord.Dispatch(ctx, s.taskForJob(j, attempt), s.leaseDone(j, cancel))
	if err != nil {
		cancel()
		s.metrics.JobsRunning.Add(-1)
		if errors.Is(err, cluster.ErrStopped) {
			s.finalize(j, StateFailed, "shutting down before dispatch; journaled for replay", true)
			return
		}
		// ErrNoWorker (deterministic: no registered worker can ever fit) and
		// context errors flow through the standard classification.
		s.finishAttempt(j, nil, err, false)
	}
}

// leaseDone builds the exactly-once outcome callback for one dispatched
// attempt. cancel releases the dispatch-scoped context (nil for leases
// recovered from the journal, which have no dispatch context).
func (s *Service) leaseDone(j *Job, cancel context.CancelFunc) cluster.DoneFunc {
	return func(rep *verify.Report, workerID string, err error) {
		if cancel != nil {
			cancel()
		}
		s.metrics.JobsRunning.Add(-1)
		switch {
		case err != nil && errors.Is(err, cluster.ErrWorkerPanic):
			// Mirror the local path: count the panic, classify transient.
			s.metrics.JobsPanicked.Add(1)
			s.finishAttempt(j, nil, err, true)
		case err != nil && errors.Is(err, cluster.ErrLeaseExpired):
			s.metrics.ClusterRedispatches.Add(1)
			s.observeCluster("redispatch", j.id, workerID)
			s.finishAttempt(j, nil, fmt.Errorf("%w: %v", ErrTransient, err), false)
		default:
			s.finishAttempt(j, rep, err, false)
		}
	}
}

// recoverLease reinstalls a journaled lease after a coordinator restart:
// the job is indexed as running, and the coordinator either accepts the
// re-joined worker's completion or expires the lease — re-dispatching
// the job through the normal retry path exactly once.
func (s *Service) recoverLease(j *Job, workerID string, expiry time.Time) {
	j.state = StateRunning
	j.attempts = 1
	j.started = time.Now()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.metrics.JobsReplayed.Add(1)
	s.metrics.JobsRunning.Add(1)
	s.coord.Recover(s.taskForJob(j, 1), workerID, expiry, s.leaseDone(j, nil))
}

// cacheGet is the read-through cache lookup: local memory/disk tiers
// first, then — on miss, in cluster mode — the federated tier keyed by
// consistent hash over the content address. A federated fetch failure is
// a plain miss (degraded, never failing); a hit is promoted into the
// local cache.
func (s *Service) cacheGet(key string) (*Result, bool) {
	if res, ok := s.cache.Get(key); ok {
		return res, true
	}
	if s.fed == nil || s.fed.Peers() == 0 {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(s.runCtx, 2*time.Second)
	defer cancel()
	data, ok := s.fed.Fetch(ctx, key)
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	s.cache.insert(key, &res)
	return &res, true
}

// offerToPeers pushes a fresh result to its owning cache peer,
// best-effort and asynchronous — a lost offer only costs a future
// federated hit.
func (s *Service) offerToPeers(key string, res *Result) {
	if s.fed == nil || s.fed.Peers() == 0 {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.fed.Offer(ctx, key, data); err != nil {
			s.cfg.Log.Printf("cluster: federated cache offer: %v", err)
		}
	}()
}
