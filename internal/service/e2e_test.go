package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"paramring/internal/dsl"
	"paramring/internal/verify"
)

// specsDir locates the repository's specs/ directory from the test binary.
func specsDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		candidate := filepath.Join(dir, "specs")
		if st, err := os.Stat(candidate); err == nil && st.IsDir() {
			return candidate
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Skip("specs directory not found")
		}
		dir = parent
	}
}

func loadSpecs(t *testing.T) map[string]string {
	t.Helper()
	dir := specsDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".gc") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		specs[e.Name()] = string(src)
	}
	if len(specs) < 5 {
		t.Fatalf("expected at least 5 shipped specs, found %d", len(specs))
	}
	return specs
}

func postVerify(t *testing.T, url string, req Request) (int, JobView) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decoding /v1/verify response: %v", err)
	}
	return resp.StatusCode, view
}

// metricValue scrapes one sample from the /metrics text exposition.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing metric %s from %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return 0
}

// e2eOptions makes cross-validation part of every e2e run so that
// Result.ExplicitStates is non-zero and the "cache hits explore no new
// states" assertion has teeth.
var e2eOptions = RequestOptions{CrossValidateMaxK: 4}

// TestE2EAllSpecsVerdictParityAndCaching is the acceptance scenario:
// every shipped spec is submitted concurrently over HTTP, verdicts must
// match a direct verify.Check call, and a second round must be served
// entirely from the cache — hit counter up, states-explored flat.
func TestE2EAllSpecsVerdictParityAndCaching(t *testing.T) {
	specs := loadSpecs(t)
	svc := newTestService(t, Config{Workers: 4, DefaultTimeout: 5 * time.Minute}, true)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	submitAll := func() map[string]JobView {
		var (
			mu    sync.Mutex
			wg    sync.WaitGroup
			views = make(map[string]JobView)
		)
		for name, src := range specs {
			wg.Add(1)
			go func(name, src string) {
				defer wg.Done()
				status, view := postVerify(t, ts.URL, Request{Spec: src, Options: e2eOptions, Wait: true})
				if status != http.StatusOK {
					t.Errorf("%s: status %d (view %+v)", name, status, view)
				}
				mu.Lock()
				views[name] = view
				mu.Unlock()
			}(name, src)
		}
		wg.Wait()
		return views
	}

	round1 := submitAll()
	for name, view := range round1 {
		if view.State != StateDone {
			t.Fatalf("%s: state %s, error %q", name, view.State, view.Error)
		}
		if view.Cached {
			t.Fatalf("%s: first round must not be a cache hit", name)
		}
		// Verdict parity with the engine called directly.
		spec, err := dsl.ParseSpec(specs[name])
		if err != nil {
			t.Fatal(err)
		}
		proto, err := spec.Protocol()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := verify.Check(proto, e2eOptions.verifyOptions(1))
		if err != nil {
			t.Fatalf("%s: direct verify.Check: %v", name, err)
		}
		want := resultFromReport(spec.Name, rep)
		if !reflect.DeepEqual(view.Result, want) {
			t.Errorf("%s: service verdict diverges from direct verify.Check\n service: %+v\n direct:  %+v",
				name, view.Result, want)
		}
	}

	hits1 := metricValue(t, ts.URL, "lrserved_cache_hits_total")
	states1 := metricValue(t, ts.URL, "lrserved_states_explored_total")
	if hits1 != 0 {
		t.Fatalf("cache hits after round 1 = %v, want 0", hits1)
	}
	if states1 == 0 {
		t.Fatal("states explored after round 1 = 0; cross-validation should have run the explicit engine")
	}

	round2 := submitAll()
	for name, view := range round2 {
		if view.State != StateDone || !view.Cached {
			t.Fatalf("%s: second round not served from cache: %+v", name, view)
		}
		if !reflect.DeepEqual(view.Result, round1[name].Result) {
			t.Errorf("%s: cached result differs from round 1", name)
		}
	}
	hits2 := metricValue(t, ts.URL, "lrserved_cache_hits_total")
	states2 := metricValue(t, ts.URL, "lrserved_states_explored_total")
	if want := hits1 + float64(len(specs)); hits2 != want {
		t.Fatalf("cache hits after round 2 = %v, want %v", hits2, want)
	}
	if states2 != states1 {
		t.Fatalf("cache hits explored new states: %v -> %v", states1, states2)
	}
}

// TestE2EDeadline submits a deliberately heavy job (deep cross-validation)
// with a 1ms deadline: it must come back as a timeout error, not hang.
func TestE2EDeadline(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(specsDir(t), "coloring3.gc"))
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, Config{Workers: 1}, true)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, view := postVerify(t, ts.URL, Request{
		Spec:      string(src),
		Options:   RequestOptions{CrossValidateMaxK: 14},
		Wait:      true,
		TimeoutMS: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 (terminal state)", status)
	}
	if view.State != StateFailed {
		t.Fatalf("state %s, want failed (view %+v)", view.State, view)
	}
	if !strings.Contains(view.Error, "deadline exceeded") {
		t.Fatalf("error %q does not mention the deadline", view.Error)
	}
	if got := metricValue(t, ts.URL, "lrserved_jobs_timeout_total"); got != 1 {
		t.Fatalf("lrserved_jobs_timeout_total = %v, want 1", got)
	}
}

// TestE2EAsyncPollAndErrors covers the non-blocking submission path and
// the HTTP error mapping.
func TestE2EAsyncPollAndErrors(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2}, true)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, view := postVerify(t, ts.URL, Request{Spec: tinySpec})
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("async submit status %d", status)
	}
	if view.ID == "" {
		t.Fatalf("async submit returned no job id: %+v", view)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var polled JobView
		if err := json.NewDecoder(resp.Body).Decode(&polled); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if polled.State == StateDone {
			if polled.Result == nil || polled.FinishedAt == "" {
				t.Fatalf("done view incomplete: %+v", polled)
			}
			break
		}
		if polled.State == StateFailed {
			t.Fatalf("job failed: %q", polled.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", view.ID, polled.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown job id -> 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}

	// Malformed JSON -> 400.
	resp, err = http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d, want 400", resp.StatusCode)
	}

	// Malformed spec -> 400 with a one-line error payload.
	status, _ = postVerify(t, ts.URL, Request{Spec: "not a spec"})
	if status != http.StatusBadRequest {
		t.Fatalf("malformed spec status %d, want 400", status)
	}

	// Health endpoint.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Stats.Workers != 2 {
		t.Fatalf("healthz payload: %+v", health)
	}

	// Metrics exposes the static gauges.
	if got := metricValue(t, ts.URL, "lrserved_workers"); got != 2 {
		t.Fatalf("lrserved_workers = %v, want 2", got)
	}
}

// TestE2EMetricsRendering pins the exposition format: HELP/TYPE headers,
// sorted extra gauges, and the phase histogram.
func TestE2EMetricsRendering(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1}, true)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if _, view := postVerify(t, ts.URL, Request{Spec: tinySpec, Wait: true}); view.State != StateDone {
		t.Fatalf("warm-up job: %+v", view)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE lrserved_jobs_submitted_total counter",
		"lrserved_jobs_submitted_total 1",
		"lrserved_jobs_done_total 1",
		"# TYPE lrserved_phase_duration_seconds histogram",
		`lrserved_phase_duration_seconds_bucket{phase="verify",le="+Inf"} 1`,
		"lrserved_queue_capacity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}
