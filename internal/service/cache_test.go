package service

import (
	"fmt"
	"testing"
)

func testResult(name string) *Result {
	return &Result{Protocol: name, Deadlock: "proved", Livelock: "proved", Summary: name}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := newResultCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), testResult(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted as least recently used")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	// Touching k1 makes k2 the eviction victim.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	if err := c.Put("k3", testResult("r3")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 should have been evicted after k1 was touched")
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := newResultCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testResult("persisted")
	if err := c1.Put("key", want); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory (a restarted process) serves
	// the entry from disk and promotes it into memory.
	c2, err := newResultCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("key")
	if !ok {
		t.Fatal("disk tier miss")
	}
	if got.Protocol != want.Protocol || got.Summary != want.Summary {
		t.Fatalf("disk round-trip mangled the result: %+v", got)
	}
	if c2.Len() != 1 {
		t.Fatalf("disk hit not promoted to memory: Len = %d", c2.Len())
	}
}

func TestCacheKeyIgnoresNonSemanticOptions(t *testing.T) {
	spec := "protocol p\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\n"
	if cacheKey(spec, RequestOptions{}) != cacheKey(spec, RequestOptions{ConfirmMaxK: 7, MaxTArcs: 16}) {
		t.Fatal("explicit defaults must hash like omitted options")
	}
	if cacheKey(spec, RequestOptions{}) == cacheKey(spec, RequestOptions{CrossValidateMaxK: 4}) {
		t.Fatal("cross-validation depth must be part of the key")
	}
	if cacheKey(spec, RequestOptions{}) == cacheKey(spec+" ", RequestOptions{}) {
		t.Fatal("different canonical text must not collide")
	}
	// The Workers execution hint changes how a verification runs, never
	// what it concludes, so it must hash like the zero options. (The other
	// verdict-irrelevant knob, the per-request deadline, lives on Request
	// and never reaches cacheKey at all.)
	base := cacheKey(spec, RequestOptions{})
	for _, opts := range []RequestOptions{
		{Workers: 1},
		{Workers: 8},
		{Workers: -3},
	} {
		if cacheKey(spec, opts) != base {
			t.Fatalf("options %+v fragmented the cache key", opts)
		}
	}
}
