package service

import (
	"context"
	"sync"
)

// admission is the server-wide memory governor: a counting gate over the
// explicit engine's pre-run table-bytes estimates. A worker acquires a
// job's estimate before running it and blocks while concurrent jobs hold
// too much of the budget — the "queue instead of OOM" half of admission
// control. (The "degrade" half — clamping engine workers and MaxStates
// for jobs whose estimate alone exceeds the budget — lives in
// Service.run, because it changes how the job executes, not whether it
// may start.)
type admission struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget uint64
	inUse  uint64
}

// newAdmission returns a gate over budget bytes; budget 0 means
// admission control is off and acquire never blocks.
func newAdmission(budget uint64) *admission {
	a := &admission{budget: budget}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// acquire blocks until n estimate-bytes fit under the budget and reserves
// them, returning the reserved amount (n clamped to the whole budget, so
// an over-budget degraded job serializes against everything rather than
// deadlocking). It gives up with ctx.Err() when ctx is done first — the
// job's deadline and the server's drain both unblock waiters.
func (a *admission) acquire(ctx context.Context, n uint64) (uint64, error) {
	if a.budget == 0 || n == 0 {
		return 0, nil
	}
	if n > a.budget {
		n = a.budget
	}
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.cond.Broadcast()
		a.mu.Unlock()
	})
	defer stop()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.inUse+n > a.budget {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		a.cond.Wait()
	}
	a.inUse += n
	return n, nil
}

// release returns reserved bytes to the budget and wakes waiters. Safe to
// call with 0 (the unreserved case).
func (a *admission) release(n uint64) {
	if n == 0 {
		return
	}
	a.mu.Lock()
	a.inUse -= n
	a.cond.Broadcast()
	a.mu.Unlock()
}

// used returns the bytes currently reserved.
func (a *admission) used() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}
