package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func contextWithTestTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func TestJournalAppendAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	want := []journalRecord{
		{Op: opSubmit, ID: "job-1", Name: "tiny", Spec: tinySpec, TimeoutMS: 5000},
		{Op: opDone, ID: "job-1"},
		{Op: opSubmit, ID: "job-2", Name: "tiny", Spec: tinySpec},
	}
	for _, rec := range want {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	if err := w.append(journalRecord{Op: opDone, ID: "job-2"}); err == nil {
		t.Fatal("append after close must fail")
	}

	_, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestJournalToleratesTornTail: a crash mid-append leaves a partial final
// line; reopen must keep every record before it and drop the torn tail
// (and anything after — nothing after an unsynced tear is trustworthy).
func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(journalRecord{Op: opSubmit, ID: "job-1", Spec: tinySpec}); err != nil {
		t.Fatal(err)
	}
	w.close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"job-`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "job-1" || recs[0].Op != opSubmit {
		t.Fatalf("records after torn tail = %+v", recs)
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.append(journalRecord{Op: opSubmit, ID: "job-x", Spec: tinySpec}); err != nil {
			t.Fatal(err)
		}
	}
	keep := []journalRecord{
		{Op: opSubmit, ID: "job-9", Spec: tinySpec},
		{Op: opQuarantine, ID: "job-9", Error: "poison"},
	}
	if err := w.compact(keep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("compacted journal has %d lines, want 2", n)
	}
	_, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Op != opQuarantine || recs[1].Error != "poison" {
		t.Fatalf("compacted records = %+v", recs)
	}
}

func TestReduceJournal(t *testing.T) {
	recs := []journalRecord{
		{Op: opSubmit, ID: "a", Spec: "sa"},
		{Op: opSubmit, ID: "b", Spec: "sb"},
		{Op: opSubmit, ID: "c", Spec: "sc"},
		{Op: opSubmit, ID: "d", Spec: "sd"},
		{Op: opDone, ID: "a"},
		{Op: opFail, ID: "b", Error: "bad"},
		{Op: opQuarantine, ID: "c", Error: "poison"},
		{Op: "future-op", ID: "e"}, // unknown ops skipped, not fatal
	}
	st := reduceJournal(recs)
	if len(st.pending) != 1 || st.pending[0].ID != "d" {
		t.Fatalf("pending = %+v, want only d", st.pending)
	}
	if len(st.quarantined) != 1 || st.quarantined[0].ID != "c" {
		t.Fatalf("quarantined = %+v, want only c", st.quarantined)
	}
	if st.reasons["c"] != "poison" || st.reasons["b"] != "bad" {
		t.Fatalf("reasons = %+v", st.reasons)
	}
	// A duplicate submit (possible if a compaction raced a crash) must not
	// duplicate the replay.
	st = reduceJournal([]journalRecord{
		{Op: opSubmit, ID: "a", Spec: "v1"},
		{Op: opSubmit, ID: "a", Spec: "v2"},
	})
	if len(st.pending) != 1 || st.pending[0].Spec != "v2" {
		t.Fatalf("duplicate submits: pending = %+v", st.pending)
	}
}

// TestJournalReplayAcrossRestart drives the full loop through the
// Service: submit while no workers run, crash, restart over the same
// cache dir, and watch the journaled job complete.
func TestJournalReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// No Start(): the job stays queued, so the crash strands it with only
	// its journal record to its name.
	svc1 := newTestService(t, Config{Workers: 1, CacheDir: dir}, false)
	j1, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	svc1.crash()

	svc2 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	if got := svc2.Metrics().JobsReplayed.Load(); got != 1 {
		t.Fatalf("JobsReplayed = %d, want 1", got)
	}
	j2, ok := svc2.Job(j1.ID())
	if !ok {
		t.Fatalf("replayed job %s not found", j1.ID())
	}
	waitDone(t, j2)
	if v := svc2.Snapshot(j2); v.State != StateDone || v.Result == nil {
		t.Fatalf("replayed job: %+v", v)
	}

	// Clean shutdown compacts: a third service over the same dir has
	// nothing to replay (the done record retired the submit).
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	svc3 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	if got := svc3.Metrics().JobsReplayed.Load(); got != 0 {
		t.Fatalf("after clean shutdown JobsReplayed = %d, want 0", got)
	}
}

// TestReplayDoesNotDoubleCountMetrics: counters are live-event counters,
// not ledger sizes. Rebuilding a quarantined job at startup must not
// increment JobsQuarantined (the quarantine already happened, in a dead
// process), and a cache-hit replay must retire its submit record so a
// second restart does not count the same hit, done, or replay again.
func TestReplayDoesNotDoubleCountMetrics(t *testing.T) {
	dir := t.TempDir()
	var poison atomic.Bool
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		if poison.Load() {
			panic("poison")
		}
		return nil
	}}
	svc1 := newTestService(t, Config{
		Workers: 1, CacheDir: dir, MaxAttempts: 2, RetryBaseDelay: time.Millisecond, Hooks: hooks,
	}, true)

	// A good job lands its result in the disk cache and retires its submit
	// record with an opDone.
	good, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, good)
	if v := svc1.Snapshot(good); v.State != StateDone {
		t.Fatalf("good job: %+v", v)
	}
	canonical := good.spec.canonical

	// A poison job exhausts its attempts and is quarantined.
	poison.Store(true)
	badSpec := "protocol tiny2\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction copy: x[0] != x[1] -> x[0] := x[1]\n"
	bad, err := svc1.Submit(Request{Spec: badSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bad)
	if v := svc1.Snapshot(bad); v.State != StateQuarantined {
		t.Fatalf("poison job: %+v", v)
	}
	svc1.crash() // no compaction: the journal keeps the quarantine pair

	// Simulate a crash after journaling a submit but before running it:
	// its result is already in the disk cache, so the restart replays it
	// as an instant cache hit.
	w, _, err := openJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(journalRecord{Op: opSubmit, ID: "job-999990", Name: "tiny", Spec: canonical}); err != nil {
		t.Fatal(err)
	}
	w.close()

	svc2 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	m2 := svc2.Metrics()
	if got := m2.JobsQuarantined.Load(); got != 0 {
		t.Fatalf("JobsQuarantined = %d after replay, want 0: rebuilding the ledger is not a new quarantine", got)
	}
	if st := svc2.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1: the ledger itself must survive", st.Quarantined)
	}
	if got := m2.JobsReplayed.Load(); got != 1 {
		t.Fatalf("JobsReplayed = %d, want 1 (the pending record; quarantine rebuilds are not replays)", got)
	}
	if hits, done := m2.CacheHits.Load(), m2.JobsDone.Load(); hits != 1 || done != 1 {
		t.Fatalf("CacheHits = %d JobsDone = %d, want 1/1 for the cache-hit replay", hits, done)
	}
	rj, ok := svc2.Job("job-999990")
	if !ok {
		t.Fatal("replayed job not found")
	}
	if v := svc2.Snapshot(rj); v.State != StateDone || !v.Cached {
		t.Fatalf("replayed job: %+v, want done from cache", v)
	}

	// A second restart must not re-count anything: the cache-hit replay
	// appended its own opDone, and the quarantine pair replays silently.
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	svc3 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	m3 := svc3.Metrics()
	if r, h, d, q := m3.JobsReplayed.Load(), m3.CacheHits.Load(), m3.JobsDone.Load(), m3.JobsQuarantined.Load(); r != 0 || h != 0 || d != 0 || q != 0 {
		t.Fatalf("second restart re-counted: replayed=%d hits=%d done=%d quarantined=%d, want all 0", r, h, d, q)
	}
	if st := svc3.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d after second restart, want 1", st.Quarantined)
	}
}

// TestQuarantineSurvivesRestart: the quarantine ledger is part of the
// journal's compaction set, so a quarantined job stays visible across a
// clean shutdown and restart.
func TestQuarantineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error { panic("poison") }}
	svc1 := newTestService(t, Config{
		Workers: 1, CacheDir: dir, MaxAttempts: 2, RetryBaseDelay: time.Millisecond, Hooks: hooks,
	}, true)
	j, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if v := svc1.Snapshot(j); v.State != StateQuarantined {
		t.Fatalf("job: %+v", v)
	}
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	svc2 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	quarantined := svc2.Jobs(StateQuarantined)
	if len(quarantined) != 1 || quarantined[0].ID != j.ID() {
		t.Fatalf("quarantine ledger after restart = %+v", quarantined)
	}
	if !strings.Contains(quarantined[0].Error, "poison") {
		t.Fatalf("quarantine reason lost: %q", quarantined[0].Error)
	}
}
