package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The durable job journal: an append-only JSONL write-ahead log under
// -cache-dir that makes the queue itself crash-safe. Every engine-bound
// submission appends a "submit" record (fsynced) before it is enqueued;
// reaching a terminal state appends "done"/"fail"/"quarantine". On
// restart, submits without a terminal record are replayed — idempotently,
// because results are content-addressed: a job whose result reached the
// cache before the crash replays as an instant cache hit. A clean
// shutdown compacts the log down to what still matters (jobs to replay,
// the quarantine ledger); a crash leaves it as-is and replay reduces it.
const (
	opSubmit     = "submit"
	opDone       = "done"       // terminal: result produced (and cached)
	opFail       = "fail"       // terminal: deterministic failure, not replayed
	opQuarantine = "quarantine" // terminal: retries exhausted; kept visible
	// opLease records a cluster lease grant or renewal: which worker holds
	// the job and until when. Non-terminal; the latest lease per id wins
	// and a terminal record clears it. A coordinator restart uses it to
	// reinstall outstanding leases instead of blindly re-enqueueing jobs
	// that are still running on live workers.
	opLease = "lease"
)

// journalRecord is one JSONL line. Submit records carry everything needed
// to rebuild the job (the canonical spec text, normalized options, the
// timeout to re-anchor the deadline at replay time); terminal records
// carry only the id and, for fail/quarantine, the error; lease records
// carry the holder and expiry.
type journalRecord struct {
	Op        string          `json:"op"`
	ID        string          `json:"id"`
	Name      string          `json:"name,omitempty"`
	Spec      string          `json:"spec,omitempty"`
	Options   *RequestOptions `json:"options,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Error     string          `json:"error,omitempty"`
	// Worker and ExpireAtMS belong to lease records: the holding worker's
	// id and the lease expiry as a Unix-milliseconds wall timestamp (wall
	// clock so it stays meaningful across the restart that replays it).
	Worker     string `json:"worker,omitempty"`
	ExpireAtMS int64  `json:"expire_at_ms,omitempty"`
}

// journal is the WAL handle. Append is fsync-per-record: the service
// journals once per job transition (not per state explored), so the sync
// cost is noise next to a verification and buys the no-lost-jobs
// guarantee the chaos suite asserts.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// openJournal opens (creating if absent) the WAL at path and returns the
// records already in it. A torn final line — the signature of a crash
// mid-append — is tolerated and dropped; everything before it was synced.
func openJournal(path string) (*journal, []journalRecord, error) {
	var recs []journalRecord
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64<<10), maxRequestBytes+4096)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break // torn tail: ignore it and everything after
			}
			recs = append(recs, rec)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("service: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal: %w", err)
	}
	return &journal{path: path, f: f}, recs, nil
}

// append writes one record and fsyncs before returning, so a record the
// caller acts on (enqueue, report terminal state) is on disk first.
func (w *journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("service: journal closed")
	}
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	return w.f.Sync()
}

// compact atomically replaces the WAL with exactly recs (write temp,
// fsync, rename) and closes the handle — the clean-shutdown epilogue.
func (w *journal) compact(recs []journalRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(w.path), "journal-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), w.path)
}

// close releases the handle without compacting — the crash path.
func (w *journal) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// replayState is the journal reduced to what a restart must act on.
type replayState struct {
	pending     []journalRecord // submits with no terminal record: re-enqueue
	quarantined []journalRecord // submit records whose job was quarantined
	reasons     map[string]string
	// leases maps pending job ids to their latest lease record (cluster
	// mode): an unexpired lease is reinstalled on the coordinator so a
	// still-running worker can complete it; an expired one re-dispatches
	// the job exactly once. Non-cluster replay ignores this and simply
	// re-enqueues the pending submit.
	leases map[string]journalRecord
}

// reduceJournal folds the record stream into replay state. Order matters
// only per id; unknown ops are skipped so an old binary can replay a
// newer journal's jobs.
func reduceJournal(recs []journalRecord) replayState {
	submits := make(map[string]journalRecord)
	var order []string
	terminal := make(map[string]string) // id -> terminal op
	reasons := make(map[string]string)
	leases := make(map[string]journalRecord)
	for _, rec := range recs {
		switch rec.Op {
		case opSubmit:
			if _, ok := submits[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			submits[rec.ID] = rec
		case opLease:
			leases[rec.ID] = rec
		case opDone, opFail, opQuarantine:
			terminal[rec.ID] = rec.Op
			delete(leases, rec.ID) // the lease resolved before the crash
			if rec.Error != "" {
				reasons[rec.ID] = rec.Error
			}
		}
	}
	st := replayState{reasons: reasons, leases: make(map[string]journalRecord)}
	for _, id := range order {
		switch terminal[id] {
		case "":
			st.pending = append(st.pending, submits[id])
			if lr, ok := leases[id]; ok {
				st.leases[id] = lr
			}
		case opQuarantine:
			st.quarantined = append(st.quarantined, submits[id])
		}
	}
	return st
}
