package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"paramring/internal/cluster"
	"paramring/internal/faultinject"
)

// The cluster chaos suite: for every fault scenario in the
// faultinject.ClusterScenarios matrix, a 3-worker cluster under injected
// faults must produce byte-identical verdicts to a single-node run, with
// zero lost and zero duplicated jobs, exercising the scenario's failover
// path (asserted on the cluster counters). The seed comes from
// LRSERVED_CHAOS_SEED (CI matrix) with a fixed default, and every cluster
// event is recorded to a transcript — appended to the file named by
// LRSERVED_CHAOS_TRANSCRIPT when set, logged on failure otherwise.

// chaosTranscript records the cluster event stream of one scenario run.
type chaosTranscript struct {
	mu       sync.Mutex
	scenario string
	seed     int64
	start    time.Time
	lines    []string
	counts   map[string]int
}

func newChaosTranscript(scenario string, seed int64) *chaosTranscript {
	return &chaosTranscript{
		scenario: scenario, seed: seed, start: time.Now(),
		counts: make(map[string]int),
	}
}

// record is wired as the ClusterConfig.Observer.
func (tr *chaosTranscript) record(event, jobID, workerID string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.counts[event]++
	tr.lines = append(tr.lines, fmt.Sprintf(
		"%s seed=%d +%06dms %-16s job=%-12s worker=%s",
		tr.scenario, tr.seed, time.Since(tr.start).Milliseconds(), event, jobID, workerID))
}

func (tr *chaosTranscript) count(event string) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.counts[event]
}

// flush appends the transcript to LRSERVED_CHAOS_TRANSCRIPT (the CI
// artifact) when set, and logs it on test failure either way.
func (tr *chaosTranscript) flush(t *testing.T) {
	t.Helper()
	tr.mu.Lock()
	lines := append([]string(nil), tr.lines...)
	tr.mu.Unlock()
	if path := os.Getenv("LRSERVED_CHAOS_TRANSCRIPT"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Errorf("chaos transcript: %v", err)
		} else {
			for _, l := range lines {
				fmt.Fprintln(f, l)
			}
			f.Close()
		}
	}
	if t.Failed() {
		for _, l := range lines {
			t.Log(l)
		}
	}
}

// chaosBaseline computes single-node verdicts for the n-job chaos
// workload: the reference every cluster verdict must match byte-for-byte.
func chaosBaseline(t *testing.T, n int) map[string][]byte {
	t.Helper()
	baseline := make(map[string][]byte, n)
	ref := newTestService(t, Config{Workers: 2}, true)
	for i := 0; i < n; i++ {
		j, err := ref.Submit(chaosRequest(i))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		v := ref.Snapshot(j)
		if v.State != StateDone {
			t.Fatalf("baseline job %d: %+v", i, v)
		}
		data, err := json.Marshal(v.Result)
		if err != nil {
			t.Fatal(err)
		}
		baseline[v.Name] = data
	}
	return baseline
}

// requireBaselineVerdict asserts one terminal view is done with the
// baseline result bytes.
func requireBaselineVerdict(t *testing.T, baseline map[string][]byte, v JobView) {
	t.Helper()
	if v.State != StateDone {
		t.Fatalf("job %s (%s) not done: %+v", v.ID, v.Name, v)
	}
	data, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := baseline[v.Name]
	if !ok {
		t.Fatalf("verdict for unknown protocol %q", v.Name)
	}
	if string(data) != string(want) {
		t.Fatalf("cluster verdict for %q diverged from single-node:\n got %s\nwant %s", v.Name, data, want)
	}
}

// scrapeCounter reads one counter's value off the /metrics exposition.
func scrapeCounter(t *testing.T, handler http.Handler, name string) uint64 {
	t.Helper()
	srv := httptest.NewServer(handler)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in exposition", name)
	}
	v, err := strconv.ParseUint(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// blackholeSet is a concurrent set of jobIDs whose heartbeats are dropped.
type blackholeSet struct {
	mu   sync.Mutex
	jobs map[string]bool
}

func newBlackholeSet() *blackholeSet { return &blackholeSet{jobs: make(map[string]bool)} }

func (b *blackholeSet) add(jobID string) {
	b.mu.Lock()
	b.jobs[jobID] = true
	b.mu.Unlock()
}

func (b *blackholeSet) remove(jobID string) {
	b.mu.Lock()
	delete(b.jobs, jobID)
	b.mu.Unlock()
}

func (b *blackholeSet) filter(workerID, jobID string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.jobs[jobID]
}

const (
	chaosClusterTTL = 250 * time.Millisecond
	chaosClusterHB  = 50 * time.Millisecond
)

// TestClusterChaosWorkerKill: on every 3rd attempt the worker "dies" —
// its heartbeats stop and the attempt hangs far past the lease TTL. The
// lease must expire (the flagship failover counter), the job must
// re-dispatch and complete with the baseline verdict, and no job may be
// lost or duplicated.
func TestClusterChaosWorkerKill(t *testing.T) {
	seed := chaosSeed(t)
	const n = 10
	baseline := chaosBaseline(t, n)
	plan, err := faultinject.ClusterPlan(faultinject.ScenarioWorkerKill, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := newChaosTranscript(faultinject.ScenarioWorkerKill, seed)
	defer tr.flush(t)

	holes := newBlackholeSet()
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		if plan.Fire(faultinject.SiteWorkerKill) {
			// The process-death shape: heartbeats stop AND the attempt
			// hangs past the TTL; lease expiry is the only way out.
			holes.add(id)
			time.Sleep(2 * chaosClusterTTL)
		}
		return nil
	}}
	// The kill ends at lease expiry: the dead attempt is gone, and the
	// re-dispatched attempt runs on a healthy worker whose renewals flow.
	// (Leaving the job blackholed forever would starve retries that land
	// queued behind a still-hung worker into quarantine.)
	observer := func(event, jobID, workerID string) {
		if event == "lease-expired" {
			holes.remove(jobID)
		}
		tr.record(event, jobID, workerID)
	}
	svc := newTestService(t, Config{
		QueueSize: 64, CacheDir: t.TempDir(),
		MaxAttempts: 6, RetryBaseDelay: time.Millisecond, Hooks: hooks,
		Cluster: &ClusterConfig{
			LeaseTTL: chaosClusterTTL, HeartbeatInterval: chaosClusterHB,
			LocalWorkers: 3, HeartbeatFilter: holes.filter, Observer: observer,
		},
	}, true)

	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc.Submit(chaosRequest(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	seen := make(map[string]bool, n)
	for _, j := range jobs {
		waitDone(t, j)
		v := svc.Snapshot(j)
		requireBaselineVerdict(t, baseline, v)
		if seen[v.Name] {
			t.Fatalf("protocol %q reached a terminal state twice", v.Name)
		}
		seen[v.Name] = true
	}
	if len(seen) != n {
		t.Fatalf("lost jobs: %d of %d protocols accounted for", len(seen), n)
	}

	// The acceptance counter: worker-kill must demonstrably fail over via
	// lease expiry, observable on the exported metric.
	if fired := plan.Count(faultinject.SiteWorkerKill); fired == 0 {
		t.Fatalf("seed %d fired no worker kills over %d attempts; vacuous run",
			seed, plan.Calls(faultinject.SiteWorkerKill))
	}
	expired := scrapeCounter(t, svc.Handler(), "lrserved_cluster_lease_expired_total")
	if expired == 0 {
		t.Fatal("lrserved_cluster_lease_expired_total = 0: no lease expired despite worker kills")
	}
	if redispatched := svc.Metrics().ClusterRedispatches.Load(); redispatched != expired {
		t.Fatalf("expired leases = %d but redispatches = %d: every expiry owes exactly one re-dispatch",
			expired, redispatched)
	}
	if tr.count("lease-expired") != int(expired) {
		t.Fatalf("transcript saw %d lease-expired events, metrics say %d", tr.count("lease-expired"), expired)
	}
}

// TestClusterChaosHeartbeatBlackhole: the network-partition shape — the
// worker stays alive and busy, but its renewals are dropped. The lease
// expires, the job re-dispatches, and the partitioned attempt's eventual
// completion must be counted and dropped as a late result, never
// double-completing the job.
func TestClusterChaosHeartbeatBlackhole(t *testing.T) {
	seed := chaosSeed(t)
	const n = 10
	baseline := chaosBaseline(t, n)
	plan, err := faultinject.ClusterPlan(faultinject.ScenarioHeartbeatBlackhole, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := newChaosTranscript(faultinject.ScenarioHeartbeatBlackhole, seed)
	defer tr.flush(t)

	holes := newBlackholeSet()
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		if plan.Fire(faultinject.SiteHeartbeatBlackhole) {
			// Partition, not death: renewals vanish but the attempt keeps
			// going just past the TTL, so its completion arrives late.
			holes.add(id)
			time.Sleep(2 * chaosClusterTTL)
		}
		return nil
	}}
	// The partition heals at expiry (same rationale as the worker-kill
	// scenario: retries must not inherit the dead attempt's fault).
	observer := func(event, jobID, workerID string) {
		if event == "lease-expired" {
			holes.remove(jobID)
		}
		tr.record(event, jobID, workerID)
	}
	svc := newTestService(t, Config{
		QueueSize: 64, CacheDir: t.TempDir(),
		MaxAttempts: 6, RetryBaseDelay: time.Millisecond, Hooks: hooks,
		Cluster: &ClusterConfig{
			LeaseTTL: chaosClusterTTL, HeartbeatInterval: chaosClusterHB,
			LocalWorkers: 3, HeartbeatFilter: holes.filter, Observer: observer,
		},
	}, true)

	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc.Submit(chaosRequest(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitDone(t, j)
		requireBaselineVerdict(t, baseline, svc.Snapshot(j))
	}
	if fired := plan.Count(faultinject.SiteHeartbeatBlackhole); fired == 0 {
		t.Fatalf("seed %d fired no blackholes; vacuous run", seed)
	}
	m := svc.Metrics()
	if m.ClusterLeasesExpired.Load() == 0 {
		t.Fatal("no lease expired despite heartbeat blackholes")
	}
	// The partitioned attempts resolved after their leases died: their
	// outcomes must have been dropped as late results (content-addressing
	// makes the drop safe — the re-dispatched attempt recomputed the
	// identical verdict, as asserted against the baseline above).
	deadline := time.Now().Add(5 * time.Second)
	for m.ClusterLateResults.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.ClusterLateResults.Load() == 0 {
		t.Fatal("no late result recorded: blackholed attempts vanished instead of being counted")
	}
}

// TestClusterChaosCoordinatorRestart: the coordinator crashes mid-flight
// (after the fault plan's trigger completion) and restarts over the same
// journal. Outstanding leases are reconstructed, expired ones re-dispatch
// exactly once, every job still reaches its baseline verdict, and the
// quarantine/cache-hit counters never double-count across the restart.
func TestClusterChaosCoordinatorRestart(t *testing.T) {
	seed := chaosSeed(t)
	const n = 10
	baseline := chaosBaseline(t, n)
	plan, err := faultinject.ClusterPlan(faultinject.ScenarioCoordinatorRestart, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := newChaosTranscript(faultinject.ScenarioCoordinatorRestart, seed)
	defer tr.flush(t)

	dir := t.TempDir()
	cfg := Config{
		QueueSize: 64, CacheDir: dir,
		MaxAttempts: 5, RetryBaseDelay: time.Millisecond,
		Hooks: &Hooks{BeforeVerify: func(id string, attempt int) error {
			time.Sleep(2 * time.Millisecond) // keep the queue busy so the crash lands mid-flight
			return nil
		}},
		Cluster: &ClusterConfig{
			LeaseTTL: chaosClusterTTL, HeartbeatInterval: chaosClusterHB,
			LocalWorkers: 3, Observer: tr.record,
		},
	}

	svc1 := newTestService(t, cfg, false)
	svc1.Start()
	jobs1 := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc1.Submit(chaosRequest(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs1 = append(jobs1, j)
	}
	// Crash when the plan says so: Fire once per observed completion.
	crashAt := time.Now().Add(15 * time.Second)
	var counted uint64
	crashed := false
	for time.Now().Before(crashAt) {
		done := svc1.Metrics().JobsDone.Load()
		for counted < done {
			counted++
			if plan.Fire(faultinject.SiteCoordinatorCrash) {
				crashed = true
			}
		}
		if crashed || done == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	svc1.crash()
	if !crashed {
		t.Logf("seed %d: all %d jobs finished before the crash trigger; restart still exercises replay", seed, n)
	}

	// Terminal states reached before (or during) the crash must already be
	// baseline-correct; everything else must be journaled-replayable.
	finished := make(map[string]bool, n)
	for _, j := range jobs1 {
		v := svc1.Snapshot(j)
		switch v.State {
		case StateDone:
			requireBaselineVerdict(t, baseline, v)
			finished[v.Name] = true
		case StateFailed:
			if !v.Replayable {
				t.Fatalf("job %s failed terminally in the crash window: %+v", v.ID, v)
			}
		default:
			t.Fatalf("job %s in unexpected state after crash: %+v", v.ID, v)
		}
	}

	// Restart over the same journal. Quarantine/cache-hit accounting must
	// start from zero — replay rebuilds ledgers, it does not re-earn them.
	svc2 := newTestService(t, cfg, true)
	m2 := svc2.Metrics()
	if got := m2.JobsQuarantined.Load(); got != 0 {
		t.Fatalf("JobsQuarantined = %d after replay, want 0", got)
	}
	for _, view := range svc2.Jobs("") {
		j, ok := svc2.Job(view.ID)
		if !ok {
			t.Fatalf("listed job %s not found", view.ID)
		}
		waitDone(t, j)
		v := svc2.Snapshot(j)
		requireBaselineVerdict(t, baseline, v)
		if finished[v.Name] {
			// A job done before the crash replays only as a content-addressed
			// cache hit, never as a second execution.
			if !v.Cached {
				t.Fatalf("job %q finished pre-crash but was re-executed after restart", v.Name)
			}
		}
		finished[v.Name] = true
	}
	if len(finished) != n {
		t.Fatalf("lost jobs across restart: %d of %d accounted for", len(finished), n)
	}
	// Cache hits after restart come only from pre-crash completions whose
	// submit records were still pending: each counted at most once.
	if hits := m2.CacheHits.Load(); hits > uint64(n) {
		t.Fatalf("CacheHits = %d after replay, exceeds job count %d", hits, n)
	}
	// Expired-at-boot leases re-dispatch exactly once each.
	if exp, red := m2.ClusterLeasesExpired.Load(), m2.ClusterRedispatches.Load(); red < exp {
		t.Fatalf("expired %d leases but only %d redispatches", exp, red)
	}
}

// TestClusterChaosCachePartition: federated cache peers become
// unreachable. Every peer lookup must degrade to a local miss — counted,
// never an error — and every job must still complete with its baseline
// verdict from local computation.
func TestClusterChaosCachePartition(t *testing.T) {
	seed := chaosSeed(t)
	const n = 10
	baseline := chaosBaseline(t, n)
	plan, err := faultinject.ClusterPlan(faultinject.ScenarioCachePartition, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := newChaosTranscript(faultinject.ScenarioCachePartition, seed)
	defer tr.flush(t)

	svc := newTestService(t, Config{
		QueueSize: 64, CacheDir: t.TempDir(),
		MaxAttempts: 3, RetryBaseDelay: time.Millisecond,
		Cluster: &ClusterConfig{
			LeaseTTL: time.Second, HeartbeatInterval: 100 * time.Millisecond,
			LocalWorkers: 3, Observer: tr.record,
			CachePeerBlackhole: func(p cluster.Peer) bool {
				return plan.Fire(faultinject.SiteCachePartition)
			},
		},
	}, true)

	// Local workers advertise no cache address, so install a synthetic
	// peer ring: every owner lookup now resolves to a partitioned peer.
	// (TEST-NET addresses; the blackhole fires before any network touch.)
	svc.fed.SetPeers([]cluster.Peer{
		{ID: "peer-a", Addr: "http://192.0.2.10:1"},
		{ID: "peer-b", Addr: "http://192.0.2.11:1"},
	})

	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc.Submit(chaosRequest(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitDone(t, j)
		requireBaselineVerdict(t, baseline, svc.Snapshot(j))
	}
	if fired := plan.Count(faultinject.SiteCachePartition); fired == 0 {
		t.Fatalf("seed %d: no federated cache call was attempted; vacuous run", seed)
	}
	// Degraded, never failing: the partition shows up in the stats and
	// nowhere else.
	if st := svc.fed.Stats(); st.Degraded == 0 {
		t.Fatalf("federation stats show no degraded calls: %+v", st)
	} else if st.Hits != 0 {
		t.Fatalf("federation reported hits from partitioned peers: %+v", st)
	}
}
