package service

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// The backpressure regression: a server that 503s twice (Retry-After: 0)
// then accepts must cost exactly three requests and still succeed.
func TestClientRetriesBackpressure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusServiceUnavailable, ErrQueueFull)
			return
		}
		writeJSON(w, http.StatusOK, JobView{ID: "job-000001", State: StateDone})
	}))
	defer srv.Close()

	c := &Client{
		BaseURL:   srv.URL,
		BaseDelay: time.Millisecond,
		Rand:      rand.New(rand.NewSource(1)),
	}
	view, err := c.Verify(context.Background(), Request{Spec: "protocol p\n"})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if view.ID != "job-000001" || view.State != StateDone {
		t.Fatalf("unexpected view: %+v", view)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("expected 3 requests (2 x 503 + accept), got %d", got)
	}
}

// The connection-reuse regression: a session of sequential calls through
// the default (shared keep-alive) client must ride ONE TCP connection, not
// dial per request. The server's ConnState hook counts accepted
// connections; the client side only reuses a pooled connection when every
// response body was drained to EOF before Close, so this test pins both the
// shared-transport default and the drain in do().
func TestClientReusesConnectionAcrossRequests(t *testing.T) {
	var conns atomic.Int32
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, JobView{ID: "job-000001", State: StateDone})
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()
	if _, err := c.Verify(ctx, Request{Spec: "protocol p\n"}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for i := 0; i < 9; i++ {
		if _, err := c.Job(ctx, "job-000001"); err != nil {
			t.Fatalf("Job poll %d: %v", i, err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("10 sequential requests opened %d connections, want 1 (keep-alive reuse broken)", got)
	}
}

// Context cancellation must abort the backoff wait promptly, not sleep it
// out.
func TestClientCancelAbortsBackoffWait(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30") // an honest server under real load
		writeError(w, http.StatusServiceUnavailable, ErrQueueFull)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	c := &Client{BaseURL: srv.URL, Rand: rand.New(rand.NewSource(1))}
	start := time.Now()
	_, err := c.VerifyBatch(ctx, BatchRequest{Specs: []string{"protocol p\n"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not abort the wait: took %v", elapsed)
	}
}

// Exhausted retries surface the 503 as a ClientError rather than retrying
// forever.
func TestClientRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusServiceUnavailable, ErrQueueFull)
	}))
	defer srv.Close()

	c := &Client{
		BaseURL:    srv.URL,
		MaxRetries: 2,
		BaseDelay:  time.Millisecond,
		Rand:       rand.New(rand.NewSource(1)),
	}
	_, err := c.Verify(context.Background(), Request{Spec: "protocol p\n"})
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Status != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 ClientError, got %v", err)
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Fatalf("expected 3 requests, got %d", got)
	}
}

// The backoff schedule doubles from BaseDelay, never undercuts the
// server's Retry-After, and caps at MaxDelay (jitter included).
func TestClientBackoffSchedule(t *testing.T) {
	c := &Client{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Rand: rand.New(rand.NewSource(1))}
	if d := c.backoff(0, 0); d < 100*time.Millisecond || d > 125*time.Millisecond {
		t.Fatalf("attempt 0: want [100ms,125ms], got %v", d)
	}
	if d := c.backoff(1, 0); d < 200*time.Millisecond || d > 250*time.Millisecond {
		t.Fatalf("attempt 1: want [200ms,250ms], got %v", d)
	}
	// Retry-After above the schedule becomes the floor.
	if d := c.backoff(0, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Fatalf("Retry-After floor violated: %v", d)
	}
	// The cap binds even after jitter.
	for attempt := 0; attempt < 20; attempt++ {
		if d := c.backoff(attempt, 0); d > time.Second {
			t.Fatalf("attempt %d exceeds cap: %v", attempt, d)
		}
	}
}

// Non-backpressure errors fail immediately: a 400 must not be retried.
func TestClientBadRequestNoRetry(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("parse error"))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Rand: rand.New(rand.NewSource(1))}
	_, err := c.Verify(context.Background(), Request{Spec: "garbage"})
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Status != http.StatusBadRequest {
		t.Fatalf("expected 400 ClientError, got %v", err)
	}
	if ce.Body != "parse error" {
		t.Fatalf("error body not extracted: %q", ce.Body)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 must not be retried; got %d requests", got)
	}
}
