package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"paramring/internal/protogen"
)

// sweepSources generates a one-family sweep's spec texts for batch tests:
// same-shape siblings, so the service's per-family memo sharing has
// something to share.
func sweepSources(t *testing.T, variants int) []string {
	t.Helper()
	sw := &protogen.Sweep{
		Seed:     5,
		Families: []protogen.SweepFamily{{Name: "b", Domain: 3, Lo: -1, Hi: 0, Variants: variants}},
	}
	specs, err := sw.Specs()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Source
	}
	return out
}

func TestSubmitBatchRunsAllSpecs(t *testing.T) {
	svc := newTestService(t, Config{Workers: 4}, true)
	specs := sweepSources(t, 15)
	b, err := svc.SubmitBatch(BatchRequest{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	b.wait(nil)
	view := svc.BatchSnapshot(b)
	if view.Total != len(specs) || view.Pending != 0 || view.Rejected != 0 {
		t.Fatalf("batch view: %+v", view)
	}
	if view.Done != len(specs) {
		t.Fatalf("done = %d of %d: %+v", view.Done, len(specs), view)
	}
	for i, item := range view.Items {
		if item.Index != i || item.JobID == "" || item.Result == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
	}
	// Same-family jobs share the per-family verdict memo.
	if hits, misses := svc.memos.Stats(); hits == 0 {
		t.Fatalf("no shared-memo hits across %d same-family specs (misses=%d)", len(specs), misses)
	}
}

func TestSubmitBatchPartialRejection(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2}, true)
	// Pre-warm the result cache so the batch's variant spec (same canonical
	// form) resolves as a cache hit.
	warm, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, warm)

	b, err := svc.SubmitBatch(BatchRequest{Specs: []string{tinySpec, "not a spec", tinySpecVariant}})
	if err != nil {
		t.Fatal(err)
	}
	b.wait(nil)
	view := svc.BatchSnapshot(b)
	if view.Rejected != 1 || view.Done != 2 {
		t.Fatalf("view: %+v", view)
	}
	if view.Items[1].JobID != "" || view.Items[1].Error == "" {
		t.Fatalf("rejected item: %+v", view.Items[1])
	}
	if !view.Items[0].Cached || !view.Items[2].Cached {
		t.Fatalf("warmed specs not served from cache: %+v / %+v", view.Items[0], view.Items[2])
	}
}

func TestSubmitBatchLimits(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1}, true)
	if _, err := svc.SubmitBatch(BatchRequest{}); err != ErrBatchEmpty {
		t.Fatalf("empty batch error = %v", err)
	}
	specs := make([]string, maxBatchSpecs+1)
	for i := range specs {
		specs[i] = tinySpec
	}
	if _, err := svc.SubmitBatch(BatchRequest{Specs: specs}); err != ErrBatchTooLarge {
		t.Fatalf("oversized batch error = %v", err)
	}
}

// The HTTP surface: POST a batch with wait, poll it by id, and confirm the
// aggregate counts match the per-spec results.
func TestHTTPVerifyBatch(t *testing.T) {
	svc := newTestService(t, Config{Workers: 4}, true)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	specs := sweepSources(t, 8)
	body, err := json.Marshal(BatchRequest{Specs: specs, Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/verify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 for a waited batch", resp.StatusCode)
	}
	var view BatchView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Done != len(specs) || view.Pending != 0 {
		t.Fatalf("batch response: %+v", view)
	}

	// Poll by id.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/verify/batch/%s", srv.URL, view.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("poll status = %d", resp2.StatusCode)
	}
	var polled BatchView
	if err := json.NewDecoder(resp2.Body).Decode(&polled); err != nil {
		t.Fatal(err)
	}
	if polled.ID != view.ID || polled.Done != view.Done {
		t.Fatalf("polled view diverged: %+v vs %+v", polled, view)
	}

	// Unknown id is a 404; an empty batch is a 400.
	resp3, err := http.Get(srv.URL + "/v1/verify/batch/batch-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown batch status = %d, want 404", resp3.StatusCode)
	}
	resp4, err := http.Post(srv.URL+"/v1/verify/batch", "application/json", bytes.NewReader([]byte(`{"specs":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp4.StatusCode)
	}
}

// Batch memo sharing must never change what a lone submission concludes:
// the batch results are byte-identical to individually submitted specs on
// a fresh service.
func TestBatchResultsMatchIndividualSubmissions(t *testing.T) {
	specs := sweepSources(t, 10)

	batchSvc := newTestService(t, Config{Workers: 4}, true)
	b, err := batchSvc.SubmitBatch(BatchRequest{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	b.wait(nil)
	batchView := batchSvc.BatchSnapshot(b)

	soloSvc := newTestService(t, Config{Workers: 1}, true)
	for i, spec := range specs {
		j, err := soloSvc.Submit(Request{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		solo := soloSvc.Snapshot(j)
		got, want := batchView.Items[i].Result, solo.Result
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("spec %d: batch result differs from solo submission:\nbatch: %s\nsolo:  %s", i, gb, wb)
		}
	}
}
