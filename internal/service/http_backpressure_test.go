package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postVerifyRaw is postVerify without the JobView decoding: backpressure
// tests need the raw status, headers, and error body.
func postVerifyRaw(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHTTPQueueFull503: a submission bouncing off a full queue is
// backpressure, not failure — 503 with a Retry-After hint, so a
// well-behaved client backs off instead of erroring out.
func TestHTTPQueueFull503(t *testing.T) {
	// No Start(): with no workers draining, the queue bound is exact.
	svc := newTestService(t, Config{Workers: 1, QueueSize: 1}, false)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body := func(i int) string {
		data, _ := json.Marshal(Request{Spec: numberedSpec(i)})
		return string(data)
	}
	if resp := postVerifyRaw(t, ts, body(0)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission status = %d, want 202", resp.StatusCode)
	}
	resp := postVerifyRaw(t, ts, body(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != backpressureRetryAfter {
		t.Fatalf("queue-full Retry-After = %q, want %q", got, backpressureRetryAfter)
	}
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(payload.Error, "queue full") {
		t.Fatalf("queue-full error body = %q", payload.Error)
	}
}

// TestHTTPOverBudget503: a job whose memory estimate alone exceeds the
// server budget gets the same 503 + Retry-After treatment at submit time
// (degradation off), and a fitting job on the same server still lands.
func TestHTTPOverBudget503(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, MemoryBudgetBytes: 16}, true)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// xval to K=6 on a binary domain estimates 40 table bytes > the
	// 16-byte budget.
	over, _ := json.Marshal(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 6}, Wait: true})
	resp := postVerifyRaw(t, ts, string(over))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != backpressureRetryAfter {
		t.Fatalf("over-budget Retry-After = %q, want %q", got, backpressureRetryAfter)
	}

	fits, _ := json.Marshal(Request{Spec: tinySpec, Wait: true})
	if resp := postVerifyRaw(t, ts, string(fits)); resp.StatusCode != http.StatusOK {
		t.Fatalf("zero-estimate submission status = %d, want 200", resp.StatusCode)
	}
}

// TestHTTPQuarantineListing: GET /v1/jobs?state=quarantined exposes the
// poison quarantine — the operator's entry point for the runbook — and an
// unknown state filter is a client error.
func TestHTTPQuarantineListing(t *testing.T) {
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error { panic("poison") }}
	svc := newTestService(t, Config{
		Workers: 1, MaxAttempts: 2, RetryBaseDelay: 1, Hooks: hooks,
	}, true)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	resp, err := http.Get(ts.URL + "/v1/jobs?state=quarantined")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing status = %d", resp.StatusCode)
	}
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != j.ID() {
		t.Fatalf("quarantine listing = %+v", listing.Jobs)
	}
	if listing.Jobs[0].Name != "tiny" || listing.Jobs[0].Attempts != 2 {
		t.Fatalf("quarantine entry lacks triage fields: %+v", listing.Jobs[0])
	}

	bad, err := http.Get(ts.URL + "/v1/jobs?state=exploded")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown filter status = %d, want 400", bad.StatusCode)
	}
}
