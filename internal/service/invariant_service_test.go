package service

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// ssSpec is the paper's accepted sum-not-two solution (specs/sum-not-two.gc):
// self-stabilizing for every K, and the invariant lane proves both
// properties symbolically — deadlock by ranking, livelock by a termination
// potential.
const ssSpec = `protocol sum-not-two
domain 3
window -1 0
legit x[0] + x[-1] != 2

action up:   x[0] + x[-1] == 2 && x[0] != 2 -> x[0] := (x[0] + 1) % 3
action down: x[0] + x[-1] == 2 && x[0] == 2 -> x[0] := (x[0] - 1) % 3
`

// TestInvariantOnlyAdmitsOverBudget is the admission contract for the new
// lane: the invariant backend is symbolic (EstimatePeakTableBytes reports 0
// explicit bytes for it), so a theorem+invariant-only submission clears a
// memory budget that rejects any explicit work — the lane certifies ring
// sizes the bitset engine could never hold.
func TestInvariantOnlyAdmitsOverBudget(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, MemoryBudgetBytes: 16}, true)

	// Explicit cross-validation to K=6 estimates 40 bytes > 16: rejected.
	_, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 6}})
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("explicit submission error = %v, want ErrOverBudget", err)
	}

	// The invariant-only request estimates zero bytes and completes.
	j, err := svc.Submit(Request{Spec: ssSpec, Options: RequestOptions{Invariant: true}})
	if err != nil {
		t.Fatalf("invariant-only submission rejected: %v", err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateDone || v.Degraded {
		t.Fatalf("invariant-only job: %+v", v)
	}
	r := v.Result
	if r.InvariantDeadlock != "proved" || r.InvariantLivelock != "proved" {
		t.Fatalf("lane verdicts: deadlock=%q livelock=%q (summary: %s)",
			r.InvariantDeadlock, r.InvariantLivelock, r.Summary)
	}
	if r.InvariantCount <= 0 || r.InvariantCertBytes <= 0 {
		t.Fatalf("certificate stats missing from result: %+v", r)
	}
	if len(r.Disagreements) != 0 {
		t.Fatalf("disagreements: %v", r.Disagreements)
	}
	if r.ExplicitStates != 0 || r.ExplicitPeakBytes != 0 {
		t.Fatalf("invariant-only run touched the explicit engine: %+v", r)
	}
}

// TestInvariantCacheKeyNoCollision: the lane set is part of the verdict
// payload, so invariant-on and invariant-off submissions of the same spec
// must occupy distinct cache entries — and a repeat invariant submission
// must hit its own entry with the lane fields intact.
func TestInvariantCacheKeyNoCollision(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1}, true)

	jOff, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jOff)
	if r := svc.Snapshot(jOff).Result; r.InvariantDeadlock != "" || r.InvariantCount != 0 {
		t.Fatalf("lane fields on a lane-less run: %+v", r)
	}

	jOn, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{Invariant: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jOn)
	if svc.Snapshot(jOn).Cached {
		t.Fatal("invariant-on submission collided with the invariant-off cache entry")
	}
	if got := svc.Metrics().CacheMisses.Load(); got != 2 {
		t.Fatalf("cache misses = %d, want 2 (one per lane set)", got)
	}

	jHit, err := svc.Submit(Request{Spec: tinySpecVariant, Options: RequestOptions{Invariant: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jHit)
	v := svc.Snapshot(jHit)
	if !v.Cached {
		t.Fatal("repeat invariant submission missed its cache entry")
	}
	if v.Result.InvariantDeadlock != "proved" || v.Result.InvariantCertBytes <= 0 {
		t.Fatalf("cached result lost the lane projection: %+v", v.Result)
	}
}

// TestInvariantMetricsExposed: the lane's counters and the certificate-size
// high-water gauge appear on /metrics after a lane run, and a cached
// re-serve adds nothing.
func TestInvariantMetricsExposed(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1}, true)
	j, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{Invariant: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	certBytes := svc.Snapshot(j).Result.InvariantCertBytes

	jHit, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{Invariant: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jHit)

	var buf bytes.Buffer
	svc.Metrics().WriteTo(&buf, nil)
	text := buf.String()
	for _, want := range []string{
		"lrserved_invariant_runs_total 1", // the cached re-serve added nothing
		"lrserved_invariant_disagreements_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "lrserved_invariant_certificate_bytes") || certBytes <= 0 {
		t.Errorf("certificate gauge missing (cert %d bytes):\n%s", certBytes, text)
	}
	if svc.Metrics().InvariantCertBytes.Load() != uint64(certBytes) {
		t.Errorf("gauge %d != result certificate bytes %d",
			svc.Metrics().InvariantCertBytes.Load(), certBytes)
	}
}
