package service

import (
	"errors"
	"fmt"
	"sync"
)

// Batch limits: abuse protection on the HTTP surface, mirroring
// maxRequestBytes in spirit.
const (
	// maxBatchSpecs bounds the specs in one batch submission.
	maxBatchSpecs = 256
	// maxRetainedBatches bounds the batch index; past it the oldest
	// batches are forgotten (their jobs live on under the usual job
	// retention).
	maxRetainedBatches = 256
)

// ErrBatchEmpty / ErrBatchTooLarge reject malformed batch submissions.
var (
	ErrBatchEmpty    = errors.New("batch has no specs")
	ErrBatchTooLarge = fmt.Errorf("batch exceeds %d specs", maxBatchSpecs)
)

// BatchRequest is a corpus-style submission: many specs, one option set.
// Every spec becomes an ordinary job — same admission, cache, journal and
// quarantine behavior as a single POST /v1/verify — and same-family specs
// share the service's per-family skeleton/memo state, which is what makes
// a batch of sweep siblings cheaper than the sum of its parts.
type BatchRequest struct {
	Specs   []string       `json:"specs"`
	Options RequestOptions `json:"options"`
	// Wait, on the HTTP surface, blocks the POST until every accepted job
	// reaches a terminal state.
	Wait bool `json:"wait,omitempty"`
	// TimeoutMS applies per job, as in Request.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchItem is one spec's slot in a batch view.
type BatchItem struct {
	// Index is the spec's position in the submitted array.
	Index int `json:"index"`
	// JobID is empty when the submission itself was rejected (parse error,
	// backpressure); Error then carries the reason.
	JobID string   `json:"job_id,omitempty"`
	State JobState `json:"state,omitempty"`
	// Cached, Error, Result mirror the job's JobView fields.
	Cached bool    `json:"cached,omitempty"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// BatchView is the aggregate progress of a batch at one instant, computed
// from the live job states on every read.
type BatchView struct {
	ID    string `json:"id"`
	Total int    `json:"total"`
	// Rejected counts specs whose submission failed outright (they have no
	// job). Done/Failed/Quarantined/Pending partition the accepted jobs.
	Rejected    int         `json:"rejected"`
	Done        int         `json:"done"`
	Failed      int         `json:"failed"`
	Quarantined int         `json:"quarantined"`
	Pending     int         `json:"pending"`
	Items       []BatchItem `json:"items"`
}

// batch is the retained record of one batch submission. Batches are an
// in-memory index over jobs and are not journaled: after a restart the
// batch id is gone but every accepted job replays individually through the
// journal, so no work is lost — only the grouping.
type batch struct {
	id   string
	jobs []*Job   // index-aligned with the submitted specs; nil = rejected
	errs []string // per-index submit error ("" = accepted)
}

// batchState is the service-level batch index (lazily initialized).
type batchState struct {
	mu     sync.Mutex
	nextID uint64
	byID   map[string]*batch
	order  []string
}

func (bs *batchState) put(b *batch) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.byID == nil {
		bs.byID = map[string]*batch{}
	}
	bs.byID[b.id] = b
	bs.order = append(bs.order, b.id)
	for len(bs.order) > maxRetainedBatches {
		delete(bs.byID, bs.order[0])
		bs.order = bs.order[1:]
	}
}

func (bs *batchState) get(id string) (*batch, bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.byID[id]
	return b, ok
}

func (bs *batchState) newID() string {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.nextID++
	return fmt.Sprintf("batch-%06d", bs.nextID)
}

// SubmitBatch submits every spec as an ordinary job and returns the batch
// handle. Individual rejections (bad spec, queue full) do not abort the
// batch: the failed slot carries its error and the rest proceed. Only a
// closed service rejects the batch as a whole.
func (s *Service) SubmitBatch(req BatchRequest) (*batch, error) {
	if len(req.Specs) == 0 {
		return nil, ErrBatchEmpty
	}
	if len(req.Specs) > maxBatchSpecs {
		return nil, ErrBatchTooLarge
	}
	b := &batch{
		id:   s.batches.newID(),
		jobs: make([]*Job, len(req.Specs)),
		errs: make([]string, len(req.Specs)),
	}
	for i, spec := range req.Specs {
		j, err := s.Submit(Request{Spec: spec, Options: req.Options, TimeoutMS: req.TimeoutMS})
		if err != nil {
			if errors.Is(err, ErrShutdown) {
				return nil, err
			}
			b.errs[i] = err.Error()
			continue
		}
		b.jobs[i] = j
	}
	s.batches.put(b)
	return b, nil
}

// Batch returns the retained batch by id.
func (s *Service) Batch(id string) (*batch, bool) {
	return s.batches.get(id)
}

// BatchSnapshot renders a batch's aggregate progress from the live job
// states.
func (s *Service) BatchSnapshot(b *batch) BatchView {
	view := BatchView{ID: b.id, Total: len(b.jobs), Items: make([]BatchItem, len(b.jobs))}
	for i, j := range b.jobs {
		item := BatchItem{Index: i}
		if j == nil {
			item.Error = b.errs[i]
			view.Rejected++
			view.Items[i] = item
			continue
		}
		jv := s.Snapshot(j)
		item.JobID = jv.ID
		item.State = jv.State
		item.Cached = jv.Cached
		item.Error = jv.Error
		item.Result = jv.Result
		switch jv.State {
		case StateDone:
			view.Done++
		case StateFailed:
			view.Failed++
		case StateQuarantined:
			view.Quarantined++
		default:
			view.Pending++
		}
		view.Items[i] = item
	}
	return view
}

// wait blocks until every accepted job in the batch reaches a terminal
// state or done is closed.
func (b *batch) wait(done <-chan struct{}) {
	for _, j := range b.jobs {
		if j == nil {
			continue
		}
		select {
		case <-j.Done():
		case <-done:
			return
		}
	}
}
