package service

import (
	"fmt"
	"time"

	"paramring/internal/ltg"
	"paramring/internal/verify"
)

// RequestOptions is the client-facing tuning knob set of a verification
// request — the JSON mirror of verify.Options.
type RequestOptions struct {
	// ConfirmMaxK bounds the livelock witness-confirmation search
	// (0 selects the verify default of 7).
	ConfirmMaxK int `json:"confirm_max_k,omitempty"`
	// CrossValidateMaxK > 1 additionally model-checks every ring size
	// 2..CrossValidateMaxK with the explicit oracle.
	CrossValidateMaxK int `json:"cross_validate_max_k,omitempty"`
	// BoundedFallbackMaxK > 1 resolves Inconclusive livelock verdicts by
	// exhaustive search up to the bound.
	BoundedFallbackMaxK int `json:"bounded_fallback_max_k,omitempty"`
	// MaxTArcs bounds the Theorem 5.14 trail search (0 selects the ltg
	// default of 16).
	MaxTArcs int `json:"max_tarcs,omitempty"`
	// Invariant enables the trap/structural-invariant lane: a symbolic
	// third verdict source, independent of both the theorems and the
	// explicit engine, whose conclusive verdicts ship a re-checked
	// certificate. It estimates zero explicit-table bytes, so an
	// invariant-only submission clears memory admission at any ring size.
	Invariant bool `json:"invariant,omitempty"`
	// Workers is a hint for the explicit-engine worker count, clamped to
	// the server's EngineWorkers cap (0 keeps the server setting). Verdicts
	// and witnesses are identical for any worker count (the engine's
	// determinism contract), so Workers is a resource knob, never part of
	// the cache key: a workers=1 and a workers=8 submission of the same
	// spec share one cache entry.
	Workers int `json:"workers,omitempty"`
}

// normalize resolves defaults so that semantically equal option sets are
// representationally equal — the cache key is built from the normalized
// form, making {confirm_max_k: 7} and {} the same cache line.
func (o RequestOptions) normalize() RequestOptions {
	if o.ConfirmMaxK <= 0 {
		o.ConfirmMaxK = 7
	}
	if o.MaxTArcs <= 0 {
		o.MaxTArcs = 16
	}
	if o.CrossValidateMaxK < 2 {
		o.CrossValidateMaxK = 0
	}
	if o.BoundedFallbackMaxK < 2 {
		o.BoundedFallbackMaxK = 0
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	return o
}

// keyString renders the normalized options deterministically for the
// content-addressed cache key. Only fields that can change the verdict
// participate; verdict-irrelevant knobs — the Workers hint here, the
// per-request deadline on Request — are deliberately left out so they
// never fragment the cache.
func (o RequestOptions) keyString() string {
	o = o.normalize()
	// Invariant changes the lane set and therefore the result payload, so
	// it must fragment the cache: an invariant-on and an invariant-off
	// submission of the same spec may never collide on one entry.
	return fmt.Sprintf("confirm=%d xval=%d fallback=%d tarcs=%d inv=%t",
		o.ConfirmMaxK, o.CrossValidateMaxK, o.BoundedFallbackMaxK, o.MaxTArcs, o.Invariant)
}

// verifyOptions translates to the engine's option struct. The effective
// explicit-engine worker count is the client's Workers hint clamped to the
// server's engineWorkers cap (a client may lower intra-job parallelism,
// never raise it past the server's resource decision).
func (o RequestOptions) verifyOptions(engineWorkers int) verify.Options {
	o = o.normalize()
	workers := engineWorkers
	if o.Workers > 0 && o.Workers < workers {
		workers = o.Workers
	}
	return verify.Options{
		ConfirmMaxK:         o.ConfirmMaxK,
		CrossValidateMaxK:   o.CrossValidateMaxK,
		BoundedFallbackMaxK: o.BoundedFallbackMaxK,
		Check:               ltg.CheckOptions{MaxTArcs: o.MaxTArcs},
		Workers:             workers,
		Invariant:           o.Invariant,
	}
}

// Request is one verification submission.
type Request struct {
	// Spec is the guarded-commands protocol text (the specs/*.gc dialect).
	Spec string `json:"spec"`
	// Options tunes the verification pipeline.
	Options RequestOptions `json:"options"`
	// Wait, on the HTTP surface, blocks the POST until the job finishes.
	Wait bool `json:"wait,omitempty"`
	// TimeoutMS overrides the server's default per-job deadline (clamped
	// to the server maximum; 0 keeps the default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Result is the JSON-friendly projection of a verify.Report. Results are
// shared between jobs through the cache and must be treated as immutable.
type Result struct {
	Protocol             string   `json:"protocol"`
	Deadlock             string   `json:"deadlock"`
	DeadlockWitnessK     int      `json:"deadlock_witness_k,omitempty"`
	Livelock             string   `json:"livelock"`
	LivelockWitnessK     int      `json:"livelock_witness_k,omitempty"`
	ContiguousOnly       bool     `json:"contiguous_only,omitempty"`
	LivelockSkipped      string   `json:"livelock_skipped,omitempty"`
	LivelockBoundedFreeK int      `json:"livelock_bounded_free_k,omitempty"`
	SelfStabilizing      bool     `json:"self_stabilizing"`
	CrossValidated       []int    `json:"cross_validated,omitempty"`
	Disagreements        []string `json:"disagreements,omitempty"`
	ExplicitStates       uint64   `json:"explicit_states"`
	ExplicitPeakBytes    uint64   `json:"explicit_peak_table_bytes,omitempty"`
	// Invariant-lane projection (all empty/zero unless the submission set
	// options.invariant). Verdicts use the shared proved/refuted/
	// inconclusive scale of the other lanes.
	InvariantDeadlock         string `json:"invariant_deadlock,omitempty"`
	InvariantLivelock         string `json:"invariant_livelock,omitempty"`
	InvariantClosure          string `json:"invariant_closure,omitempty"`
	InvariantSkipped          string `json:"invariant_skipped,omitempty"`
	InvariantCount            int    `json:"invariant_count,omitempty"`
	InvariantCertBytes        int    `json:"invariant_certificate_bytes,omitempty"`
	LivelockProvedByInvariant bool   `json:"livelock_proved_by_invariant,omitempty"`
	Summary                   string `json:"summary"`
}

// resultFromReport projects the engine report onto the wire shape. Result
// deliberately carries no timings: it is content-addressed and shared
// through the cache, so it must be a pure function of (spec, options) —
// the chaos suite pins this byte-for-byte. Per-job costs such as the spec
// compile time live on JobView instead.
func resultFromReport(name string, rep *verify.Report) *Result {
	res := &Result{
		Protocol:             name,
		Deadlock:             rep.Deadlock.String(),
		DeadlockWitnessK:     rep.DeadlockWitnessK,
		Livelock:             rep.Livelock.String(),
		LivelockWitnessK:     rep.LivelockWitnessK,
		ContiguousOnly:       rep.ContiguousOnly,
		LivelockSkipped:      rep.LivelockSkipped,
		LivelockBoundedFreeK: rep.LivelockBoundedFreeK,
		SelfStabilizing:      rep.SelfStabilizing,
		CrossValidated:       rep.CrossValidated,
		Disagreements:        rep.Disagreements,
		ExplicitStates:       rep.ExplicitStates,
		ExplicitPeakBytes:    rep.ExplicitPeakTableBytes,
		Summary:              rep.Summary(),
	}
	if rep.Invariant {
		res.InvariantDeadlock = rep.InvariantDeadlock.String()
		res.InvariantLivelock = rep.InvariantLivelock.String()
		res.InvariantClosure = rep.InvariantClosure.String()
		res.InvariantCount = rep.InvariantCount
		res.InvariantCertBytes = rep.InvariantCertBytes
		res.LivelockProvedByInvariant = rep.LivelockProvedByInvariant
	}
	res.InvariantSkipped = rep.InvariantSkipped
	return res
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// StateQueued: accepted, waiting for a verification worker (includes
	// jobs waiting out a retry backoff or the memory admission gate).
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the pipeline.
	StateRunning JobState = "running"
	// StateDone: finished with a result (possibly served from cache).
	StateDone JobState = "done"
	// StateFailed: finished without a result (deadline, cancel, engine error).
	StateFailed JobState = "failed"
	// StateQuarantined: every attempt failed transiently (engine panics,
	// injected faults); the job is parked in the poison quarantine —
	// visible via GET /v1/jobs?state=quarantined and persisted in the
	// journal — so one pathological spec cannot livelock the worker pool.
	StateQuarantined JobState = "quarantined"
)

// Job tracks one submission through the queue. All mutable fields are
// guarded by the owning Service's mutex; read them via snapshot.
type Job struct {
	id       string
	state    JobState
	cached   bool
	result   *Result
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	// attempts counts execution attempts started (1 on the first run);
	// when a transient failure exhausts Config.MaxAttempts the job is
	// quarantined.
	attempts int

	// key is the content address of (canonical spec, normalized options).
	key string
	// spec is the parsed submission, compiled by the worker.
	spec     specHandle
	deadline time.Time
	// timeout is the per-job budget behind deadline, kept so a journal
	// replay can re-anchor the deadline in the new process.
	timeout time.Duration
	// estimate is the pre-run explicit-table byte estimate
	// (verify.EstimatePeakTableBytes) that memory admission reserves.
	estimate uint64
	// compileNS is the DSL front-end cost paid for this submission (0 on a
	// compiled-spec cache hit); snapshots surface it as JobView.CompileNS.
	compileNS int64
	// degraded marks a job whose estimate alone exceeds the server
	// budget, accepted under Config.DegradeOverBudget: it runs with one
	// engine worker and a budget-sized MaxStates clamp.
	degraded bool
	// journaled records that the submit record is durably in the WAL, so
	// terminal transitions know to append their record.
	journaled bool
	// replayable marks a failure that should be rerun by a restarted
	// process (drain cancel, shutdown during backoff): compaction keeps
	// its submit record pending.
	replayable bool
	// done is closed exactly once when the job reaches a terminal state;
	// doneClosed (under the service mutex) enforces the exactly-once.
	done       chan struct{}
	doneClosed bool
}

// specHandle carries what the worker needs from the parse phase.
type specHandle struct {
	name      string
	canonical string
	options   RequestOptions
}

// JobView is the JSON rendering of a job at one instant. Timestamps are
// RFC 3339 strings, empty until the phase is reached.
type JobView struct {
	ID    string   `json:"id"`
	Name  string   `json:"protocol,omitempty"`
	State JobState `json:"state"`
	// Cached: the result came from the content-addressed cache.
	Cached   bool `json:"cached"`
	Attempts int  `json:"attempts,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// Replayable marks a failure a restarted process will rerun from the
	// journal (drain cancel, shutdown during backoff).
	Replayable bool   `json:"replayable,omitempty"`
	Error      string `json:"error,omitempty"`
	// CompileNS is the DSL front-end cost (parse + validate + compile to
	// core.Protocol tables) this submission paid, in nanoseconds: 0 when
	// the compiled-spec cache already held the protocol. Aggregate
	// distribution: the lrserved_spec_compile_seconds histogram.
	CompileNS  int64   `json:"compile_ns"`
	Result     *Result `json:"result,omitempty"`
	CreatedAt  string  `json:"created_at"`
	StartedAt  string  `json:"started_at,omitempty"`
	FinishedAt string  `json:"finished_at,omitempty"`
}

// stamp renders a timestamp for JobView ("" while unset).
func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }
