package service

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the opt-in profiling surface lrserved mounts on the
// address given by its -pprof-addr flag — a separate listener so profile
// scrapes never contend with (or get exposed next to) the public API:
//
//	GET /debug/pprof/              index of the runtime profiles
//	GET /debug/pprof/profile       CPU profile (?seconds=N, default 30)
//	GET /debug/pprof/heap          heap profile (?gc=1 to run GC first)
//	GET /debug/pprof/goroutine     goroutine dump (?debug=2 for stacks)
//	GET /debug/pprof/block|mutex   contention profiles (enable rates first)
//	GET /debug/pprof/trace         runtime/trace capture (?seconds=N)
//	GET /debug/trace               alias for /debug/pprof/trace
//
// The trace endpoints stream a runtime execution trace for `go tool
// trace`; the engines annotate their hot phases with trace regions
// (explicit state scans, Tarjan, the synthesis frontier), so a capture
// taken under load shows where verification wall-clock goes. Capturing a
// trace or CPU profile is mutually exclusive with any other concurrent
// capture of the same kind — the runtime enforces this and the handler
// reports it as an error. PERFORMANCE.md walks through a capture session.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", pprof.Trace)
	return mux
}
