package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheKey content-addresses a verification: the canonical dsl.Format
// rendering of the spec plus the normalized option set. Anything that
// cannot change the verdict — whitespace, comments, parenthesization, the
// Workers hint, the per-request deadline — is already erased from both
// inputs (see RequestOptions.keyString), so textual variants of one
// protocol share a cache line and resource knobs never fragment it.
func cacheKey(canonicalSpec string, opts RequestOptions) string {
	h := sha256.New()
	h.Write([]byte(canonicalSpec))
	h.Write([]byte{0})
	h.Write([]byte(opts.keyString()))
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache is a size-bounded in-memory LRU of verification results,
// optionally write-through persisted as one JSON file per key under dir.
// Memory eviction never deletes the disk copy, so a key evicted under
// pressure (or a fresh process pointed at the same -cache-dir) is re-served
// from disk instead of re-verified.
type resultCache struct {
	mu    sync.Mutex
	max   int
	dir   string
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	res *Result
}

func newResultCache(maxEntries int, dir string) (*resultCache, error) {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &resultCache{
		max:   maxEntries,
		dir:   dir,
		order: list.New(),
		items: make(map[string]*list.Element),
	}, nil
}

// Get returns the cached result for key, consulting memory first and then
// the disk tier. A disk hit is promoted into memory.
func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		res := el.Value.(*cacheItem).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false // corrupt entry: treat as a miss, Put overwrites it
	}
	c.insert(key, &res)
	return &res, true
}

// Put stores the result in memory (evicting the least recently used entry
// past the bound) and writes it through to the disk tier when configured.
func (c *resultCache) Put(key string, res *Result) error {
	c.insert(key, res)
	if c.dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	// Write-then-rename keeps a concurrently reading process (or a crash
	// mid-write) from ever observing a torn entry.
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

func (c *resultCache) insert(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheItem{key: key, res: res})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
	}
}

// Len returns the number of in-memory entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *resultCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
