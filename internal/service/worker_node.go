package service

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"

	"paramring/internal/cluster"
	"paramring/internal/corpus"
	"paramring/internal/verify"
)

// WorkerNode is the process-level worker role behind `lrserved -join`: a
// node that owns no queue and no journal, only a verification engine and
// a local slice of the federated result cache. It joins a coordinator
// over HTTP, pulls tasks under leases, and serves its cache tiers to
// peers on the same /cluster/v1/cache/{key} surface the coordinator
// mounts — which is what makes the consistent-hash federation symmetric.
type WorkerNode struct {
	cfg    WorkerNodeConfig
	cache  *resultCache
	specs  *verify.SpecCache
	memos  *corpus.FamilyMemos
	runner cluster.Runner
}

// WorkerNodeConfig configures a WorkerNode.
type WorkerNodeConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker; must be unique across the cluster (default
	// the hostname, then "worker").
	ID string
	// AdvertiseAddr is the base URL peers use to reach this node's cache
	// endpoints (empty = this node serves no federated cache slice).
	AdvertiseAddr string
	// MemBudgetBytes is the advertised placement budget (0 = unlimited).
	MemBudgetBytes uint64
	// Slots is the concurrent-task capacity (default 1).
	Slots int
	// CacheSize / SpecCacheSize / CacheDir mirror the service's cache
	// knobs for the node-local tiers.
	CacheSize     int
	SpecCacheSize int
	CacheDir      string
	Log           *log.Logger
}

func (c WorkerNodeConfig) withDefaults() WorkerNodeConfig {
	if c.ID == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			c.ID = host
		} else {
			c.ID = "worker"
		}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.SpecCacheSize == 0 {
		c.SpecCacheSize = 1024
	}
	if c.Log == nil {
		c.Log = log.New(os.Stderr, "lrserved: ", log.LstdFlags)
	}
	return c
}

// NewWorkerNode builds a worker node. The verification substrate is the
// same compiled-spec cache + per-family memo pair the service uses, so a
// task produces the identical report no matter which node runs it.
func NewWorkerNode(cfg WorkerNodeConfig) (*WorkerNode, error) {
	cfg = cfg.withDefaults()
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("service: worker node: coordinator URL required")
	}
	cache, err := newResultCache(cfg.CacheSize, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	n := &WorkerNode{
		cfg:   cfg,
		cache: cache,
		specs: verify.NewSpecCache(cfg.SpecCacheSize),
		memos: corpus.NewFamilyMemos(0),
	}
	n.runner = cluster.NewLocalRunner(n.specs, n.memos)
	return n, nil
}

// Handler returns the worker node's HTTP surface: liveness plus the
// federated-cache endpoints peers read through.
func (n *WorkerNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"role":          "worker",
			"worker_id":     n.cfg.ID,
			"coordinator":   n.cfg.Coordinator,
			"cache_entries": n.cache.Len(),
		})
	})
	mountCacheEndpoints(mux, n.cache)
	return mux
}

// Run joins the coordinator and serves tasks until ctx is done. Join
// failures and dropped registrations (lease expiry on the coordinator)
// are retried/re-joined internally; Run only returns on ctx cancellation
// or a non-recoverable transport setup error.
func (n *WorkerNode) Run(ctx context.Context) error {
	rw := &cluster.Remote{
		Coordinator: n.cfg.Coordinator,
		Info: cluster.WorkerInfo{
			ID:             n.cfg.ID,
			Addr:           n.cfg.AdvertiseAddr,
			MemBudgetBytes: n.cfg.MemBudgetBytes,
			Slots:          n.cfg.Slots,
		},
		Runner: n.runner,
		Log:    n.cfg.Log,
	}
	err := rw.Run(ctx)
	if ctx.Err() != nil {
		return nil // clean shutdown
	}
	return err
}
