package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Crash/restart coverage for the cluster path: coordinator restart
// reconstructs outstanding leases from the journal, expired leases
// re-dispatch exactly once, the quarantine/cache-hit counters never
// double-count across the restart, and no kill point inside a lease
// record — byte by byte — can lose a job or wedge replay.

// clusterDirConfig builds the shared restart configuration: same cache
// dir, 1 local worker, and the given lease timings. hooks apply to this
// instance only — restarted instances get their own config.
func clusterDirConfig(dir string, ttl, hb time.Duration, hooks *Hooks) Config {
	return Config{
		QueueSize: 16, CacheDir: dir,
		MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Hooks: hooks,
		Cluster: &ClusterConfig{
			LeaseTTL: ttl, HeartbeatInterval: hb, LocalWorkers: 1,
		},
	}
}

// crashWithGatedLease starts svc's hook gate dance: the worker is parked
// inside BeforeVerify (lease outstanding, journaled), crash() is issued
// concurrently (it blocks on the worker), then the gate opens and the
// crash completes. Returns once the crash has finished.
func crashWithGatedLease(t *testing.T, svc *Service, gate chan struct{}) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		svc.crash()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // let the crash reach the worker join
	close(gate)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("crash never completed")
	}
}

// TestClusterCrashRecoversOutstandingLease: a coordinator killed with a
// lease in flight must, on restart, rebuild that lease from the journal
// (job Running, lease outstanding — not a blind re-enqueue), then expire
// it and re-dispatch exactly once. A clean shutdown afterwards leaves
// nothing to replay.
func TestClusterCrashRecoversOutstandingLease(t *testing.T) {
	dir := t.TempDir()
	const ttl = 2 * time.Second

	var entered sync.Once
	enteredCh := make(chan struct{})
	gate := make(chan struct{})
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		entered.Do(func() { close(enteredCh) })
		<-gate
		return nil
	}}
	svc1 := newTestService(t, clusterDirConfig(dir, ttl, 100*time.Millisecond, hooks), false)
	svc1.Start()
	j1, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-enteredCh:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked up the lease")
	}
	crashWithGatedLease(t, svc1, gate)
	if v := svc1.Snapshot(j1); v.State != StateFailed || !v.Replayable {
		t.Fatalf("crashed job: %+v, want replayable failure", v)
	}

	// Restart within the TTL: the journaled lease is still live and must
	// come back as a reconstructed lease, not a queue entry.
	svc2 := newTestService(t, clusterDirConfig(dir, ttl, 100*time.Millisecond, nil), false)
	m2 := svc2.Metrics()
	if got := svc2.coord.Outstanding(); got != 1 {
		t.Fatalf("outstanding leases after replay = %d, want 1", got)
	}
	j2, ok := svc2.Job(j1.ID())
	if !ok {
		t.Fatalf("replayed job %s not found", j1.ID())
	}
	if v := svc2.Snapshot(j2); v.State != StateRunning {
		t.Fatalf("recovered-lease job state = %s, want running", v.State)
	}
	if r, e := m2.JobsReplayed.Load(), m2.ClusterLeasesExpired.Load(); r != 1 || e != 0 {
		t.Fatalf("after recovery replayed=%d expired=%d, want 1/0 (expiry has not happened yet)", r, e)
	}

	// The dead worker never returns; the expiry owes exactly one
	// re-dispatch, after which the job completes normally.
	svc2.Start()
	waitDone(t, j2)
	v := svc2.Snapshot(j2)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("recovered job: %+v", v)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (the recovered attempt + the one re-dispatch)", v.Attempts)
	}
	if e, r := m2.ClusterLeasesExpired.Load(), m2.ClusterRedispatches.Load(); e != 1 || r != 1 {
		t.Fatalf("expired=%d redispatches=%d, want exactly 1/1", e, r)
	}
	if q, h := m2.JobsQuarantined.Load(), m2.CacheHits.Load(); q != 0 || h != 0 {
		t.Fatalf("quarantined=%d cacheHits=%d polluted by lease recovery, want 0/0", q, h)
	}

	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	svc3 := newTestService(t, clusterDirConfig(dir, ttl, 100*time.Millisecond, nil), true)
	m3 := svc3.Metrics()
	if r, e := m3.JobsReplayed.Load(), m3.ClusterLeasesExpired.Load(); r != 0 || e != 0 {
		t.Fatalf("after clean shutdown replayed=%d expired=%d, want 0/0 (compaction retired the lease)", r, e)
	}
	if got := svc3.coord.Outstanding(); got != 0 {
		t.Fatalf("outstanding leases after clean restart = %d, want 0", got)
	}
}

// TestClusterExpiredLeaseRedispatchOnce: when the journaled lease is
// already past its expiry at boot, replay itself accounts the expiry and
// performs the single re-dispatch — a plain re-enqueue, one attempt, no
// second firing from the scanner.
func TestClusterExpiredLeaseRedispatchOnce(t *testing.T) {
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond

	var entered sync.Once
	enteredCh := make(chan struct{})
	gate := make(chan struct{})
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		entered.Do(func() { close(enteredCh) })
		<-gate
		return nil
	}}
	svc1 := newTestService(t, clusterDirConfig(dir, ttl, 50*time.Millisecond, hooks), false)
	svc1.Start()
	j1, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-enteredCh:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked up the lease")
	}
	crashWithGatedLease(t, svc1, gate)

	time.Sleep(ttl + 200*time.Millisecond) // let the journaled expiry pass

	svc2 := newTestService(t, clusterDirConfig(dir, ttl, 50*time.Millisecond, nil), false)
	m2 := svc2.Metrics()
	if e, r := m2.ClusterLeasesExpired.Load(), m2.ClusterRedispatches.Load(); e != 1 || r != 1 {
		t.Fatalf("boot-time expiry accounting: expired=%d redispatches=%d, want 1/1", e, r)
	}
	if got := svc2.coord.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0 (expired lease must not be reinstalled)", got)
	}
	j2, ok := svc2.Job(j1.ID())
	if !ok {
		t.Fatalf("replayed job %s not found", j1.ID())
	}
	if v := svc2.Snapshot(j2); v.State != StateQueued {
		t.Fatalf("expired-lease job state = %s, want queued", v.State)
	}
	svc2.Start()
	waitDone(t, j2)
	v := svc2.Snapshot(j2)
	if v.State != StateDone || v.Attempts != 1 {
		t.Fatalf("re-dispatched job: %+v, want done in exactly 1 attempt", v)
	}
	if e, r := m2.ClusterLeasesExpired.Load(), m2.ClusterRedispatches.Load(); e != 1 || r != 1 {
		t.Fatalf("post-completion: expired=%d redispatches=%d grew past 1/1 — double dispatch", e, r)
	}
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClusterReplayDoesNotDoubleCountMetrics is the cluster-path twin of
// TestReplayDoesNotDoubleCountMetrics: quarantine rebuilds and cache-hit
// replays must behave identically when jobs run under leases — counters
// are live-event counters, and a second clean restart re-counts nothing.
func TestClusterReplayDoesNotDoubleCountMetrics(t *testing.T) {
	dir := t.TempDir()
	var poison atomic.Bool
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		if poison.Load() {
			panic("poison")
		}
		return nil
	}}
	cfg1 := clusterDirConfig(dir, 10*time.Second, time.Second, hooks)
	cfg1.MaxAttempts = 2
	svc1 := newTestService(t, cfg1, true)

	good, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, good)
	if v := svc1.Snapshot(good); v.State != StateDone {
		t.Fatalf("good job: %+v", v)
	}
	canonical := good.spec.canonical

	// Worker panics surface through the lease protocol (ErrWorkerPanic)
	// and must land in the same quarantine ledger as single-node panics.
	poison.Store(true)
	badSpec := "protocol tiny2\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction copy: x[0] != x[1] -> x[0] := x[1]\n"
	bad, err := svc1.Submit(Request{Spec: badSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bad)
	if v := svc1.Snapshot(bad); v.State != StateQuarantined {
		t.Fatalf("poison job: %+v", v)
	}
	svc1.crash() // no compaction: the quarantine pair stays journaled

	// A submit journaled but never run, with its result already cached:
	// replay must resolve it as one cache hit, zero executions.
	w, _, err := openJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(journalRecord{Op: opSubmit, ID: "job-999990", Name: "tiny", Spec: canonical}); err != nil {
		t.Fatal(err)
	}
	w.close()

	svc2 := newTestService(t, clusterDirConfig(dir, 10*time.Second, time.Second, nil), true)
	m2 := svc2.Metrics()
	if got := m2.JobsQuarantined.Load(); got != 0 {
		t.Fatalf("JobsQuarantined = %d after replay, want 0: rebuilding the ledger is not a new quarantine", got)
	}
	if st := svc2.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1: the ledger itself must survive", st.Quarantined)
	}
	if got := m2.JobsReplayed.Load(); got != 1 {
		t.Fatalf("JobsReplayed = %d, want 1 (the pending record; quarantine rebuilds are not replays)", got)
	}
	if hits, done := m2.CacheHits.Load(), m2.JobsDone.Load(); hits != 1 || done != 1 {
		t.Fatalf("CacheHits = %d JobsDone = %d, want 1/1 for the cache-hit replay", hits, done)
	}
	if d := m2.ClusterRedispatches.Load(); d != 0 {
		t.Fatalf("ClusterRedispatches = %d, want 0: no lease was outstanding", d)
	}
	rj, ok := svc2.Job("job-999990")
	if !ok {
		t.Fatal("replayed job not found")
	}
	if v := svc2.Snapshot(rj); v.State != StateDone || !v.Cached {
		t.Fatalf("replayed job: %+v, want done from cache (never dispatched to a worker)", v)
	}

	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	svc3 := newTestService(t, clusterDirConfig(dir, 10*time.Second, time.Second, nil), true)
	m3 := svc3.Metrics()
	if r, h, d, q := m3.JobsReplayed.Load(), m3.CacheHits.Load(), m3.JobsDone.Load(), m3.JobsQuarantined.Load(); r != 0 || h != 0 || d != 0 || q != 0 {
		t.Fatalf("second restart re-counted: replayed=%d hits=%d done=%d quarantined=%d, want all 0", r, h, d, q)
	}
	if st := svc3.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d after second restart, want 1", st.Quarantined)
	}
}

// TestTornLeaseRecordNeverLosesJob is the kill-at-offset sweep for lease
// records, alongside the torn-tail suite for submit records: truncate the
// WAL at every byte offset inside the final lease record and boot a
// cluster service over each prefix. Every boot must succeed, the job must
// survive (recovered lease when the record is whole, plain re-enqueue
// when torn), and replay must never wedge. This pins journal.append's
// single-write discipline: a lease record is all-or-nothing on disk.
func TestTornLeaseRecordNeverLosesJob(t *testing.T) {
	tmp := newTestService(t, Config{}, false)
	jc, err := tmp.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	canonical := jc.spec.canonical
	tmp.crash()

	sub, err := json.Marshal(journalRecord{
		Op: opSubmit, ID: "job-000001", Name: "tiny", Spec: canonical, TimeoutMS: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := json.Marshal(journalRecord{
		Op: opLease, ID: "job-000001", Worker: "w-dead",
		ExpireAtMS: time.Now().Add(time.Hour).UnixMilli(),
	})
	if err != nil {
		t.Fatal(err)
	}
	full := append(append(append(sub, '\n'), lease...), '\n')
	base := len(sub) + 1 // first kill offset: one byte into the lease record

	for off := base + 1; off <= len(full); off++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.wal"), full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		svc := newTestService(t, clusterDirConfig(dir, time.Second, 100*time.Millisecond, nil), false)
		j, ok := svc.Job("job-000001")
		if !ok {
			t.Fatalf("offset %d: job lost", off)
		}
		v := svc.Snapshot(j)
		whole := off >= base+len(lease) // record complete (trailing newline optional)
		if whole {
			if v.State != StateRunning || svc.coord.Outstanding() != 1 {
				t.Fatalf("offset %d: whole lease record: state=%s outstanding=%d, want running/1",
					off, v.State, svc.coord.Outstanding())
			}
		} else {
			if v.State != StateQueued || svc.coord.Outstanding() != 0 {
				t.Fatalf("offset %d: torn lease record: state=%s outstanding=%d, want queued/0 (torn tail dropped)",
					off, v.State, svc.coord.Outstanding())
			}
		}
		if got := svc.Metrics().JobsReplayed.Load(); got != 1 {
			t.Fatalf("offset %d: JobsReplayed = %d, want 1", off, got)
		}
		svc.crash()
	}
}

// TestCrashDuringRenewalsLeavesParseableJournal pins the fsync ordering
// on lease entries: renewals journal an opLease per heartbeat, and a
// crash racing that stream must leave a journal where every line parses
// whole — journal.append writes one complete line per record under the
// compaction mutex, so a torn lease record cannot exist. The restarted
// service replays the job exactly once.
func TestCrashDuringRenewalsLeavesParseableJournal(t *testing.T) {
	dir := t.TempDir()
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		time.Sleep(400 * time.Millisecond) // outlive several heartbeat intervals
		return nil
	}}
	svc1 := newTestService(t, clusterDirConfig(dir, 500*time.Millisecond, 20*time.Millisecond, hooks), false)
	svc1.Start()
	j1, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	m1 := svc1.Metrics()
	deadline := time.Now().Add(10 * time.Second)
	for m1.ClusterLeaseRenewals.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if m1.ClusterLeaseRenewals.Load() < 3 {
		t.Fatal("renewals never flowed")
	}
	svc1.crash() // mid-renewal-stream; blocks briefly on the sleeping hook

	raw, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	leaseRecords := 0
	for i, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %d torn after crash during renewals: %v\n%q", i, err, line)
		}
		if rec.Op == opLease {
			leaseRecords++
			if rec.Worker == "" || rec.ExpireAtMS == 0 {
				t.Fatalf("journal line %d: partial lease record: %+v", i, rec)
			}
		}
	}
	if leaseRecords < 3 {
		t.Fatalf("journal carries %d lease records, want >= 3 (grant + renewals)", leaseRecords)
	}

	svc2 := newTestService(t, clusterDirConfig(dir, 500*time.Millisecond, 20*time.Millisecond, nil), true)
	m2 := svc2.Metrics()
	if got := m2.JobsReplayed.Load(); got != 1 {
		t.Fatalf("JobsReplayed = %d, want 1", got)
	}
	j2, ok := svc2.Job(j1.ID())
	if !ok {
		t.Fatalf("replayed job %s not found", j1.ID())
	}
	waitDone(t, j2)
	if v := svc2.Snapshot(j2); v.State != StateDone || v.Result == nil {
		t.Fatalf("replayed job: %+v", v)
	}
	if got := m2.ClusterRedispatches.Load(); got != 1 {
		t.Fatalf("ClusterRedispatches = %d, want exactly 1 (recovered lease expired once, or boot expiry)", got)
	}
}
