package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"paramring/internal/cluster"
)

// maxRequestBytes bounds a POST body (specs are a few hundred bytes; this
// is pure abuse protection).
const maxRequestBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/verify            submit a spec; {"wait": true} blocks until done
//	POST /v1/verify/batch      submit many specs as one batch
//	GET  /v1/verify/batch/{id} poll a batch's aggregate progress
//	GET  /v1/jobs/{id}         poll a job
//	GET  /v1/jobs              list retained jobs; ?state=quarantined filters
//	GET  /healthz              liveness + occupancy
//	GET  /metrics              Prometheus text exposition
//
// In cluster-coordinator mode the worker protocol (POST /cluster/v1/
// join|poll|heartbeat|complete|leave) is mounted too, and the
// content-addressed cache is served to peers on /cluster/v1/cache/{key}.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("GET /v1/verify/batch/{id}", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.coord != nil {
		cluster.Mount(mux, s.coord)
	}
	mountCacheEndpoints(mux, s.cache)
	return mux
}

// mountCacheEndpoints serves the local tiers of the content-addressed
// result cache to federated peers. Strictly local — a peer-served lookup
// never recurses into this node's own federation client.
func mountCacheEndpoints(mux *http.ServeMux, cache *resultCache) {
	mux.HandleFunc("GET /cluster/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := cache.Get(r.PathValue("key"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no result under key"))
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("PUT /cluster/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		var res Result
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err := dec.Decode(&res); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := cache.Put(r.PathValue("key"), &res); err != nil {
			// The memory tier still got it; report success-degraded.
			cache.insert(r.PathValue("key"), &res)
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// backpressureRetryAfter is the Retry-After value (seconds) sent with 503
// backpressure responses: queue slots and memory budget free up on the
// next job completion, so "shortly" is the honest hint.
const backpressureRetryAfter = "1"

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverBudget):
		// Backpressure, not client error: 503 + Retry-After tells a
		// well-behaved client to back off and resubmit.
		w.Header().Set("Retry-After", backpressureRetryAfter)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Wait {
		// The job deadline bounds this (jobs always reach a terminal
		// state); a vanished client just stops watching.
		select {
		case <-j.Done():
		case <-r.Context().Done():
		}
	}
	view := s.Snapshot(j)
	status := http.StatusAccepted
	if view.State == StateDone || view.State == StateFailed || view.State == StateQuarantined {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

// maxBatchRequestBytes bounds a batch POST body: maxBatchSpecs specs of
// ordinary size fit comfortably.
const maxBatchRequestBytes = maxBatchSpecs * maxRequestBytes / 16

func (s *Service) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := s.SubmitBatch(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBatchEmpty), errors.Is(err, ErrBatchTooLarge):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Wait {
		// Per-job deadlines bound this; a vanished client stops watching.
		b.wait(r.Context().Done())
	}
	view := s.BatchSnapshot(b)
	status := http.StatusAccepted
	if view.Pending == 0 {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	b, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown batch id"))
		return
	}
	writeJSON(w, http.StatusOK, s.BatchSnapshot(b))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot(j))
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	state := JobState(r.URL.Query().Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateQuarantined:
	default:
		writeError(w, http.StatusBadRequest, errors.New("unknown state filter"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs(state)})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"stats":  s.Stats(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := s.Stats()
	extras := map[string]float64{
		"lrserved_queue_capacity":     float64(st.QueueCap),
		"lrserved_cache_entries":      float64(st.CacheEntries),
		"lrserved_spec_cache_entries": float64(st.SpecCache.Entries),
		"lrserved_workers":            float64(st.Workers),
		"lrserved_jobs_quarantined":   float64(st.Quarantined),
		"lrserved_mem_budget_bytes":   float64(st.MemBudgetBytes),
		"lrserved_mem_in_use_bytes":   float64(st.MemInUseBytes),
	}
	if s.coord != nil {
		fs := s.fed.Stats()
		extras["lrserved_cluster_workers"] = float64(st.ClusterWorkers)
		extras["lrserved_cluster_leases"] = float64(st.ClusterLeases)
		extras["lrserved_cluster_cache_peers"] = float64(st.CachePeers)
		extras["lrserved_cluster_cache_federation_hits"] = float64(fs.Hits)
		extras["lrserved_cluster_cache_federation_misses"] = float64(fs.Misses)
		extras["lrserved_cluster_cache_federation_degraded"] = float64(fs.Degraded)
		extras["lrserved_cluster_cache_federation_offers"] = float64(fs.Offers)
	}
	s.metrics.WriteTo(w, extras)
}
