package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxRequestBytes bounds a POST body (specs are a few hundred bytes; this
// is pure abuse protection).
const maxRequestBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/verify            submit a spec; {"wait": true} blocks until done
//	POST /v1/verify/batch      submit many specs as one batch
//	GET  /v1/verify/batch/{id} poll a batch's aggregate progress
//	GET  /v1/jobs/{id}         poll a job
//	GET  /v1/jobs              list retained jobs; ?state=quarantined filters
//	GET  /healthz              liveness + occupancy
//	GET  /metrics              Prometheus text exposition
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("GET /v1/verify/batch/{id}", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// backpressureRetryAfter is the Retry-After value (seconds) sent with 503
// backpressure responses: queue slots and memory budget free up on the
// next job completion, so "shortly" is the honest hint.
const backpressureRetryAfter = "1"

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverBudget):
		// Backpressure, not client error: 503 + Retry-After tells a
		// well-behaved client to back off and resubmit.
		w.Header().Set("Retry-After", backpressureRetryAfter)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Wait {
		// The job deadline bounds this (jobs always reach a terminal
		// state); a vanished client just stops watching.
		select {
		case <-j.Done():
		case <-r.Context().Done():
		}
	}
	view := s.Snapshot(j)
	status := http.StatusAccepted
	if view.State == StateDone || view.State == StateFailed || view.State == StateQuarantined {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

// maxBatchRequestBytes bounds a batch POST body: maxBatchSpecs specs of
// ordinary size fit comfortably.
const maxBatchRequestBytes = maxBatchSpecs * maxRequestBytes / 16

func (s *Service) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := s.SubmitBatch(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBatchEmpty), errors.Is(err, ErrBatchTooLarge):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Wait {
		// Per-job deadlines bound this; a vanished client stops watching.
		b.wait(r.Context().Done())
	}
	view := s.BatchSnapshot(b)
	status := http.StatusAccepted
	if view.Pending == 0 {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	b, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown batch id"))
		return
	}
	writeJSON(w, http.StatusOK, s.BatchSnapshot(b))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot(j))
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	state := JobState(r.URL.Query().Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateQuarantined:
	default:
		writeError(w, http.StatusBadRequest, errors.New("unknown state filter"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs(state)})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"stats":  s.Stats(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := s.Stats()
	s.metrics.WriteTo(w, map[string]float64{
		"lrserved_queue_capacity":     float64(st.QueueCap),
		"lrserved_cache_entries":      float64(st.CacheEntries),
		"lrserved_spec_cache_entries": float64(st.SpecCache.Entries),
		"lrserved_workers":            float64(st.Workers),
		"lrserved_jobs_quarantined":   float64(st.Quarantined),
		"lrserved_mem_budget_bytes":   float64(st.MemBudgetBytes),
		"lrserved_mem_in_use_bytes":   float64(st.MemInUseBytes),
	})
}
