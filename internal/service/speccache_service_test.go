package service

import (
	"net/http/httptest"
	"strings"
	"testing"
)

const scSpec = "protocol p\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction f: x[0] != x[1] -> x[0] := x[1]\n"

// scVariant is scSpec with comments and whitespace noise: a different byte
// string that must share both the compiled-spec entry and the result-cache
// line.
const scVariant = "# noise\nprotocol p\n\ndomain 2\nwindow 0   1\n" +
	"legit (x[0] == x[1])\naction f: (x[0] != x[1]) -> x[0] := x[1]\n"

func scSubmitWait(t *testing.T, s *Service, spec string) JobView {
	t.Helper()
	j, err := s.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	return s.Snapshot(j)
}

func TestServiceSpecCacheCountsAndCompileNS(t *testing.T) {
	s := newTestService(t, Config{Workers: 1}, true)

	v1 := scSubmitWait(t, s, scSpec)
	if v1.State != StateDone || v1.Cached {
		t.Fatalf("first submission: %+v", v1)
	}
	if v1.CompileNS <= 0 {
		t.Fatalf("cold submission must report its compile cost, got %d", v1.CompileNS)
	}
	// Cache-level counters include the worker's own Compile of the
	// canonical text (a hit on the entry Submit warmed); the
	// lrserved_spec_cache_* metrics below count submissions only.
	if st := s.Stats().SpecCache; st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after cold submit: %+v", st)
	}

	// Byte-identical resubmission: result-cache hit AND spec-cache hit,
	// with zero compile cost.
	v2 := scSubmitWait(t, s, scSpec)
	if v2.State != StateDone || !v2.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", v2)
	}
	if v2.CompileNS != 0 {
		t.Fatalf("spec-cache hit must report compile_ns 0, got %d", v2.CompileNS)
	}

	// A formatting variant is a different byte string but the same
	// protocol: still one spec-cache entry, still a result-cache hit.
	v3 := scSubmitWait(t, s, scVariant)
	if v3.State != StateDone || !v3.Cached || v3.CompileNS != 0 {
		t.Fatalf("variant submission: %+v", v3)
	}
	if st := s.Stats().SpecCache; st.Hits != 3 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after variant submit: %+v", st)
	}
	if hits := s.Metrics().SpecCacheHits.Load(); hits != 2 {
		t.Fatalf("metrics spec cache hits = %d, want 2", hits)
	}
}

func TestServiceSpecCacheMetricsExposition(t *testing.T) {
	s := newTestService(t, Config{Workers: 1}, true)
	scSubmitWait(t, s, scSpec)
	scSubmitWait(t, s, scSpec)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()

	for _, want := range []string{
		"lrserved_spec_cache_hits_total 1",
		"lrserved_spec_cache_misses_total 1",
		"lrserved_spec_cache_entries 1",
		"lrserved_spec_compile_seconds_count 1",
		`lrserved_spec_compile_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if body := rec.Body.String(); !strings.Contains(body, `"spec_cache"`) {
		t.Errorf("/healthz missing spec_cache stats: %s", body)
	}
}
