// Package service is the long-running verification layer: a bounded job
// queue in front of a fixed pool of workers that run the verify pipeline
// with per-job deadlines, fronted by a content-addressed result cache.
//
// The shape follows how parameterized-verification tooling is consumed in
// practice: clients submit Guarded-Command specs (the specs/*.gc dialect)
// and poll structured verdicts, while repeat submissions of the same
// protocol — the overwhelmingly common case for a shared service — are
// answered from the cache without touching the engine. The cache is keyed
// by the canonical dsl.Format rendering of the spec plus the normalized
// option set, so whitespace, comments, and parenthesization never cause a
// re-verification. A second, compiled-spec cache (verify.SpecCache, keyed
// by the canonical rendering alone) sits in front of the DSL: repeat
// submissions skip parse/validate/compile even when the result cache
// misses — e.g. the same protocol under different option sets — and the
// cold compile cost is observable per job (Result.CompileNS) and in
// aggregate (the lrserved_spec_compile_seconds histogram). cmd/lrserved
// exposes this package over HTTP.
//
// The execution layer is crash-safe and resource-governed:
//
//   - Panic isolation. Each job runs under recover; an engine panic is a
//     failed attempt with the panic value and stack in the job error,
//     never a dead process.
//   - Retry with backoff. Transient failures (panics, injected I/O
//     faults) are retried with exponential backoff and deterministic
//     jitter up to Config.MaxAttempts, then moved to a poison quarantine
//     so one pathological spec cannot livelock the pool.
//   - Durable journal. With -cache-dir set, an append-only fsynced JSONL
//     WAL records every engine-bound job; a restart replays unfinished
//     jobs, idempotently, because results are content-addressed.
//   - Memory admission control. A server-wide table-bytes budget gates
//     job start on the explicit engine's pre-run estimate
//     (verify.EstimatePeakTableBytes): concurrent jobs queue for budget
//     instead of OOMing, and over-budget jobs are either rejected (503)
//     or run degraded (workers clamped, MaxStates shrunk to fit).
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"paramring/internal/cluster"
	"paramring/internal/corpus"
	"paramring/internal/explicit"
	"paramring/internal/verify"
)

// Service errors surfaced to submitters. ErrBadSpec wraps parse/compile
// failures (an HTTP 400); ErrQueueFull and ErrOverBudget are backpressure
// (503 with Retry-After); ErrShutdown rejects submissions during drain
// (503). ErrTransient marks an attempt failure as retryable: the retry
// classifier treats any error wrapping it (fault-injection hooks do) like
// an engine panic — backoff, rerun, quarantine after MaxAttempts.
var (
	ErrBadSpec    = errors.New("bad spec")
	ErrQueueFull  = errors.New("queue full")
	ErrOverBudget = errors.New("estimated memory exceeds server budget")
	ErrShutdown   = errors.New("shutting down")
	ErrTransient  = errors.New("transient failure")
)

// Hooks are the service's fault-injection points, nil in production. The
// chaos suite wires deterministic faultinject.Plan decisions into them;
// keeping them as plain closures means internal/faultinject and this
// package never import each other.
type Hooks struct {
	// BeforeVerify runs inside the job's recover scope immediately before
	// the engine. It may sleep (slow-job injection), panic (worker-crash
	// injection), or return a non-nil error, which is treated as a
	// transient I/O failure and retried.
	BeforeVerify func(jobID string, attempt int) error
	// CacheWrite intercepts result write-through. A non-nil error
	// simulates a disk-tier failure: the memory tier still gets the
	// result, the error is counted and logged like a real one.
	CacheWrite func(key string) error
}

// Config tunes a Service. Zero values select the documented defaults.
type Config struct {
	// QueueSize bounds the number of jobs waiting for a worker (default
	// 256). Submissions beyond it fail fast with ErrQueueFull.
	QueueSize int
	// Workers is the number of concurrent verification jobs (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// EngineWorkers is the explicit-engine worker count handed to each
	// job's verify.Options (default 1: with a full pool of job-level
	// workers, intra-job parallelism only adds contention; raise it for a
	// latency-oriented deployment with few concurrent clients).
	EngineWorkers int
	// DefaultTimeout is the per-job deadline when the request does not
	// set one (default 60s). The deadline is anchored at submission, so
	// queue wait counts against it.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied deadlines (default 10m).
	MaxTimeout time.Duration
	// CacheSize bounds the in-memory result cache entries (default 1024).
	CacheSize int
	// SpecCacheSize bounds the compiled-spec cache entries (default 1024).
	// The spec cache memoizes the DSL front end — parse, validation, and
	// the core.Protocol tables — keyed by the canonical dsl.Format
	// rendering, so repeat submissions and sweep variants of one protocol
	// skip compilation even when the result cache misses.
	SpecCacheSize int
	// CacheDir, when non-empty, persists results as one JSON file per
	// content address AND enables the durable job journal
	// (<CacheDir>/journal.wal), both surviving restarts.
	CacheDir string

	// MaxAttempts bounds how many times a transiently-failed job (engine
	// panic, injected transient fault) runs before quarantine (default
	// 3). A restart resets the attempt budget: replayed jobs start over.
	MaxAttempts int
	// RetryBaseDelay is the backoff unit (default 100ms): attempt n waits
	// RetryBaseDelay << (n-1), capped at 30s, with deterministic ±50%
	// jitter derived from the job's content address.
	RetryBaseDelay time.Duration

	// MemoryBudgetBytes, when > 0, caps the summed pre-run explicit-table
	// estimates of concurrently running jobs (0 = admission control off).
	MemoryBudgetBytes uint64
	// DegradeOverBudget accepts jobs whose estimate alone exceeds the
	// budget and runs them degraded — engine workers clamped to 1 and
	// verify MaxStates shrunk so an oversized instance fails construction
	// with a clean error instead of OOMing. When false (the default) such
	// submissions are rejected with ErrOverBudget.
	DegradeOverBudget bool

	// Cluster, when non-nil, runs the service as a cluster coordinator:
	// jobs are dispatched to lease-holding workers (in-process or remote)
	// instead of the local worker pool, and Workers is ignored in favor of
	// a single dispatcher. See ClusterConfig.
	Cluster *ClusterConfig

	// Hooks are fault-injection points (nil = none).
	Hooks *Hooks
	// Log receives operational warnings — cache write-through failures,
	// journal append errors, quarantine events (default: standard logger
	// with an "lrserved: " prefix).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = log.New(os.Stderr, "lrserved: ", log.LstdFlags)
	}
	return c
}

// Service is the verification service. Create with New, then Start; submit
// with Submit; stop with Shutdown.
type Service struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	specs   *verify.SpecCache   // compiled-spec cache in front of the DSL
	memos   *corpus.FamilyMemos // per-family skeleton LTG + verdict memo, shared across jobs
	wal     *journal            // nil without CacheDir
	admit   *admission

	// Cluster-coordinator state, nil/empty outside cluster mode: the lease
	// coordinator, the federated result-cache tier, the shared runner the
	// in-process workers execute through, and those workers.
	coord          *cluster.Coordinator
	fed            *cluster.Federation
	runner         cluster.Runner
	clusterWorkers []*cluster.LocalWorker

	queue     chan *Job
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	batches batchState // in-memory batch index over jobs (not journaled)

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string // job ids in creation order, for retention eviction
	nextID       uint64
	closed       bool
	retries      map[string]*time.Timer // jobs waiting out a backoff
	cacheErrSeen map[string]bool        // distinct cache write errors already logged
}

// maxRetainedJobs bounds the id -> job index: once exceeded, the oldest
// terminal jobs are forgotten (their results live on in the cache, their
// quarantine records in the journal). Live jobs are never evicted — they
// are bounded by queue size + workers.
const maxRetainedJobs = 4096

// maxLoggedCacheErrors bounds the once-per-distinct-error log dedup map;
// past it new distinct errors are still counted, just not logged.
const maxLoggedCacheErrors = 64

// New validates the configuration, builds a stopped Service, and — when a
// cache directory is configured — replays the job journal: submissions
// that were queued or running when the previous process died are
// reconstructed under their original ids and re-enqueued (Start picks
// them up), and quarantined jobs reappear in the index so the poison
// ledger survives restarts.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	cache, err := newResultCache(cfg.CacheSize, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	var (
		wal      *journal
		recovery replayState
	)
	if cfg.CacheDir != "" {
		var recs []journalRecord
		wal, recs, err = openJournal(filepath.Join(cfg.CacheDir, "journal.wal"))
		if err != nil {
			return nil, err
		}
		recovery = reduceJournal(recs)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queueCap := cfg.QueueSize
	if n := len(recovery.pending); n > queueCap {
		// Replay must never drop a journaled job: grow the buffer for
		// this boot. New submissions still see the configured bound.
		queueCap = n
	}
	s := &Service{
		cfg:          cfg,
		metrics:      NewMetrics(),
		cache:        cache,
		specs:        verify.NewSpecCache(cfg.SpecCacheSize),
		memos:        corpus.NewFamilyMemos(0),
		wal:          wal,
		admit:        newAdmission(cfg.MemoryBudgetBytes),
		queue:        make(chan *Job, queueCap),
		runCtx:       ctx,
		cancelRun:    cancel,
		jobs:         make(map[string]*Job),
		retries:      make(map[string]*time.Timer),
		cacheErrSeen: make(map[string]bool),
	}
	if cfg.Cluster != nil {
		// Before replay: recovered leases are reinstalled on the coordinator.
		s.initCluster()
	}
	if err := s.replay(recovery); err != nil {
		cancel()
		if wal != nil {
			wal.close()
		}
		return nil, err
	}
	return s, nil
}

// replay reconstructs journaled jobs into the index and queue.
func (s *Service) replay(st replayState) error {
	for _, rec := range append(append([]journalRecord{}, st.pending...), st.quarantined...) {
		if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "job-"), 10, 64); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	for _, rec := range st.quarantined {
		j := s.jobFromRecord(rec)
		if j == nil {
			continue
		}
		j.state = StateQuarantined
		j.err = st.reasons[rec.ID]
		j.finished = time.Now()
		j.doneClosed = true
		close(j.done)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	for _, rec := range st.pending {
		j := s.jobFromRecord(rec)
		if j == nil {
			// A journal entry this binary cannot rebuild (e.g. written by
			// a newer dialect) is terminal-failed rather than silently
			// dropped, so the WAL does not replay it forever.
			s.journalAppend(journalRecord{Op: opFail, ID: rec.ID, Error: "unreplayable journal record"})
			continue
		}
		if res, ok := s.cache.Get(j.key); ok {
			// The result landed before the crash: the replay is an
			// instant content-addressed cache hit.
			s.metrics.JobsReplayed.Add(1)
			s.metrics.CacheHits.Add(1)
			s.metrics.JobsDone.Add(1)
			j.state = StateDone
			j.cached = true
			j.result = res
			j.finished = time.Now()
			j.doneClosed = true
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.journalAppend(journalRecord{Op: opDone, ID: j.id})
			continue
		}
		if lr, hasLease := st.leases[rec.ID]; hasLease && s.coord != nil {
			if expiry := time.UnixMilli(lr.ExpireAtMS); time.Now().Before(expiry) {
				// The lease was live when the coordinator died: reinstall it.
				// If the worker is still alive it re-joins and completes;
				// otherwise the expiry re-dispatches the job exactly once.
				s.recoverLease(j, lr.Worker, expiry)
				continue
			}
			// Lease already expired at boot: this re-enqueue IS the one
			// re-dispatch the expiry owes the job.
			s.metrics.ClusterLeasesExpired.Add(1)
			s.metrics.ClusterRedispatches.Add(1)
			s.observeCluster("redispatch", rec.ID, lr.Worker)
		}
		s.metrics.JobsReplayed.Add(1)
		j.state = StateQueued
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queue <- j // sized for all pending records in New
		s.metrics.JobsQueued.Add(1)
	}
	return nil
}

// jobFromRecord rebuilds a Job from a journal submit record, or nil when
// the spec no longer parses (a dialect change across the restart).
func (s *Service) jobFromRecord(rec journalRecord) *Job {
	if rec.Spec == "" {
		return nil
	}
	// Replay goes through the compiled-spec cache too: journaled specs are
	// canonical renderings, so the replayed protocols warm the cache the
	// re-enqueued jobs are about to execute against.
	cs, _, err := s.specs.Compile(rec.Spec)
	if err != nil {
		return nil
	}
	var opts RequestOptions
	if rec.Options != nil {
		opts = *rec.Options
	}
	opts = opts.normalize()
	timeout := time.Duration(rec.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	now := time.Now()
	j := &Job{
		id:        rec.ID,
		key:       cacheKey(rec.Spec, opts),
		spec:      specHandle{name: cs.Name, canonical: rec.Spec, options: opts},
		created:   now,
		deadline:  now.Add(timeout), // re-anchored: the old anchor died with the old process
		timeout:   timeout,
		estimate:  verify.EstimatePeakTableBytes(cs.Protocol, opts.verifyOptions(s.cfg.EngineWorkers)),
		journaled: true,
		done:      make(chan struct{}),
	}
	j.degraded = s.cfg.MemoryBudgetBytes > 0 && j.estimate > s.cfg.MemoryBudgetBytes
	return j
}

// Start launches the worker pool — or, in cluster mode, the coordinator,
// the in-process cluster workers, and the lease dispatcher.
func (s *Service) Start() {
	if s.coord != nil {
		s.startCluster()
		return
	}
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.metrics.JobsQueued.Add(-1)
				s.run(j)
			}
		}()
	}
}

// Metrics returns the service's instrumentation.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Submit parses, canonicalizes, and either answers req from the cache
// (returning an already-done Job) or journals and enqueues it. The
// returned error is ErrBadSpec-wrapped for malformed specs, ErrQueueFull
// under backpressure, ErrOverBudget when the job's memory estimate alone
// exceeds the server budget (and degraded mode is off), ErrShutdown
// during drain.
func (s *Service) Submit(req Request) (*Job, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrShutdown
	}

	t0 := time.Now()
	// The compiled-spec cache fronts the DSL: a hit skips parse, validation
	// ("parses but writes outside the window/domain" must be a 400, not a
	// failed job — compile errors surface here either way), and the
	// core.Protocol table build; a miss pays them once per canonical spec.
	cs, specHit, err := s.specs.Compile(req.Spec)
	if err != nil {
		s.metrics.ParseErrors.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	compileNS := int64(0)
	if specHit {
		s.metrics.SpecCacheHits.Add(1)
	} else {
		s.metrics.SpecCacheMisses.Add(1)
		s.metrics.ObserveCompile(time.Duration(cs.CompileNS))
		compileNS = cs.CompileNS
	}
	canonical := cs.Canonical
	opts := req.Options.normalize()
	key := cacheKey(canonical, opts)
	estimate := verify.EstimatePeakTableBytes(cs.Protocol, opts.verifyOptions(s.cfg.EngineWorkers))
	s.metrics.ObservePhase("parse", time.Since(t0))

	degraded := false
	if budget := s.cfg.MemoryBudgetBytes; budget > 0 && estimate > budget {
		if !s.cfg.DegradeOverBudget {
			if _, ok := s.cacheGet(key); !ok {
				return nil, fmt.Errorf("%w: estimate %d bytes, budget %d bytes", ErrOverBudget, estimate, budget)
			}
			// A cached verdict needs no memory; fall through to the hit.
		} else {
			degraded = true
		}
	}
	s.metrics.JobsSubmitted.Add(1)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	j := &Job{
		key:       key,
		spec:      specHandle{name: cs.Name, canonical: canonical, options: opts},
		created:   t0,
		deadline:  t0.Add(timeout),
		timeout:   timeout,
		estimate:  estimate,
		degraded:  degraded,
		compileNS: compileNS,
		done:      make(chan struct{}),
	}

	if res, ok := s.cacheGet(key); ok {
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsDone.Add(1)
		s.mu.Lock()
		j.id = s.newIDLocked()
		j.state = StateDone
		j.cached = true
		j.result = res
		j.finished = time.Now()
		j.doneClosed = true
		s.jobs[j.id] = j
		s.mu.Unlock()
		close(j.done)
		s.metrics.ObservePhase("total", time.Since(t0))
		return j, nil
	}
	s.metrics.CacheMisses.Add(1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	j.id = s.newIDLocked()
	j.state = StateQueued
	s.jobs[j.id] = j
	s.mu.Unlock()

	// Journal before enqueue: once a client holds the job id, a crash
	// must not lose the job. The compensating fail record on the
	// queue-full path keeps the WAL from replaying a job the client was
	// told to resubmit.
	j.journaled = s.journalAppend(journalRecord{
		Op: opSubmit, ID: j.id, Name: cs.Name, Spec: canonical,
		Options: &opts, TimeoutMS: timeout.Milliseconds(),
	})

	s.mu.Lock()
	select {
	case s.queue <- j:
		s.metrics.JobsQueued.Add(1)
		s.mu.Unlock()
		return j, nil
	default:
		delete(s.jobs, j.id)
		s.mu.Unlock()
		if j.journaled {
			s.journalAppend(journalRecord{Op: opFail, ID: j.id, Error: ErrQueueFull.Error()})
		}
		return nil, ErrQueueFull
	}
}

// journalAppend writes rec to the WAL if one is configured, reporting
// whether the record is durably on disk. Append failures are counted and
// logged, never fatal: the journal is a recovery upgrade, not a
// correctness dependency of the running process.
func (s *Service) journalAppend(rec journalRecord) bool {
	if s.wal == nil {
		return false
	}
	if err := s.wal.append(rec); err != nil {
		s.metrics.JournalErrors.Add(1)
		s.cfg.Log.Printf("journal append %s %s: %v", rec.Op, rec.ID, err)
		return false
	}
	return true
}

func (s *Service) newIDLocked() string {
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.order = append(s.order, id)
	if len(s.jobs) >= maxRetainedJobs {
		s.evictTerminalLocked()
	}
	return id
}

// evictTerminalLocked drops the oldest finished jobs until the index is
// back under the retention bound — done/failed first, quarantined only if
// that is not enough (the poison ledger is the part operators come back
// for, and it survives in the journal regardless).
func (s *Service) evictTerminalLocked() {
	for _, evictable := range []func(*Job) bool{
		func(j *Job) bool { return j.state == StateDone || j.state == StateFailed },
		func(j *Job) bool { return j.state == StateQuarantined },
	} {
		kept := s.order[:0]
		for _, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if len(s.jobs) >= maxRetainedJobs && evictable(j) {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
		if len(s.jobs) < maxRetainedJobs {
			return
		}
	}
}

// run executes one attempt of a job on the calling worker goroutine and
// routes the outcome: done, terminal failure, retry, or quarantine. The
// job's done channel is closed on every terminal path and only there.
func (s *Service) run(j *Job) {
	ctx, cancel := context.WithDeadline(s.runCtx, j.deadline)
	defer cancel()

	// Memory admission: block until the job's table estimate fits under
	// the server budget. The job stays visibly queued while it waits.
	reserved, err := s.admit.acquire(ctx, j.estimate)
	if err != nil {
		s.finishAttempt(j, nil, err, false)
		return
	}
	defer s.admit.release(reserved)

	s.mu.Lock()
	j.state = StateRunning
	j.attempts++
	j.started = time.Now()
	attempt := j.attempts
	s.mu.Unlock()
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	rep, err, panicked := s.runOnce(ctx, j, attempt)
	if panicked {
		s.metrics.JobsPanicked.Add(1)
	}
	s.finishAttempt(j, rep, err, panicked)
}

// runOnce is the panic-isolation boundary: everything the engine can do —
// including panicking on a malformed instance — is converted into an
// (report, error) pair here. The recover also covers the BeforeVerify
// fault-injection hook, which is the chaos suite's stand-in for an engine
// crash.
func (s *Service) runOnce(ctx context.Context, j *Job, attempt int) (rep *verify.Report, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			rep = nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if h := s.cfg.Hooks; h != nil && h.BeforeVerify != nil {
		if herr := h.BeforeVerify(j.id, attempt); herr != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransient, herr), false
		}
	}
	// Recompile from the canonical text through the spec cache: normally a
	// hit on the entry Submit warmed (keeping Job free of engine closures);
	// after an eviction it is an ordinary miss, because the canonical text
	// is a guaranteed fixpoint of the parser (see dsl.Format).
	cs, _, cerr := s.specs.Compile(j.spec.canonical)
	if cerr != nil {
		return nil, cerr, false // unreachable unless Format's contract breaks
	}
	// Same-family jobs share a skeleton LTG and a Theorem 5.14 verdict
	// memo (batch sweeps are dominated by family siblings). Sharing never
	// changes a verdict — the skeleton is shape-guarded and memo verdicts
	// are pure functions of the t-arc subset — so the content-addressed
	// result cache stays byte-stable.
	vopts := s.jobVerifyOptions(j)
	vopts.Check = s.memos.CheckOptions(cs.Protocol, vopts.Check)
	t0 := time.Now()
	rep, err = verify.CheckCtx(ctx, cs.Protocol, vopts)
	s.metrics.ObservePhase("verify", time.Since(t0))
	return rep, err, false
}

// jobVerifyOptions resolves the engine options for one attempt, applying
// the degraded-mode clamps for jobs whose estimate exceeds the budget:
// one engine worker (scratch memory scales with workers) and a MaxStates
// ceiling sized to the budget, so the oversized ring sizes fail with the
// engine's one-line guard error instead of an OOM kill.
func (s *Service) jobVerifyOptions(j *Job) verify.Options {
	workers := s.cfg.EngineWorkers
	if j.degraded {
		workers = 1
	}
	opts := j.spec.options.verifyOptions(workers)
	if j.degraded {
		opts.MaxStates = explicit.MaxStatesForBudget(s.cfg.MemoryBudgetBytes)
	}
	return opts
}

// finishAttempt classifies one attempt's outcome.
func (s *Service) finishAttempt(j *Job, rep *verify.Report, err error, panicked bool) {
	switch {
	case err == nil:
		s.complete(j, rep)
	case errors.Is(err, context.Canceled):
		// Only the server drain cancels runCtx: fail the job in this
		// process but leave its journal record pending so a restart
		// replays it — "in-flight jobs finish or journal as retryable".
		s.finalize(j, StateFailed, "canceled by shutdown; journaled for replay", true)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.JobsTimeout.Add(1)
		s.failTerminal(j, fmt.Sprintf("deadline exceeded after %v", time.Since(j.created).Round(time.Millisecond)))
	case panicked || errors.Is(err, ErrTransient):
		s.retryOrQuarantine(j, err)
	default:
		// Deterministic engine errors (state guard, instance shape):
		// retrying cannot change them.
		s.failTerminal(j, err.Error())
	}
}

// complete finalizes a successful attempt: result projected, cached,
// journaled done.
func (s *Service) complete(j *Job, rep *verify.Report) {
	res := resultFromReport(j.spec.name, rep)
	s.metrics.StatesExplored.Add(rep.ExplicitStates)
	s.metrics.RecordPeakTableBytes(rep.ExplicitPeakTableBytes)
	if rep.Invariant {
		s.metrics.InvariantRuns.Add(1)
		s.metrics.RecordInvariantCertBytes(uint64(rep.InvariantCertBytes))
		if rep.LivelockProvedByInvariant {
			s.metrics.InvariantProved.Add(1)
		}
	}
	if len(rep.Disagreements) > 0 {
		s.metrics.InvariantDisagreements.Add(1)
	}
	s.metrics.JobsDone.Add(1)
	// Write-through before the terminal journal record: once the WAL says
	// done, the result must be re-servable from the cache.
	s.writeThrough(j.key, res)
	s.mu.Lock()
	j.state = StateDone
	j.result = res
	j.err = ""
	j.finished = time.Now()
	closeNow := !j.doneClosed
	j.doneClosed = true
	s.mu.Unlock()
	if j.journaled {
		s.journalAppend(journalRecord{Op: opDone, ID: j.id})
	}
	if closeNow {
		close(j.done)
	}
	s.metrics.ObservePhase("total", time.Since(j.created))
}

// failTerminal finalizes a deterministic failure: journaled as fail so a
// restart does not replay it.
func (s *Service) failTerminal(j *Job, msg string) {
	s.finalize(j, StateFailed, msg, false)
	if j.journaled {
		s.journalAppend(journalRecord{Op: opFail, ID: j.id, Error: msg})
	}
	s.metrics.ObservePhase("total", time.Since(j.created))
}

// finalize moves j to a terminal state and closes done exactly once.
// replayable failures keep their journal record pending (no terminal op),
// which is precisely what makes them survive the restart.
func (s *Service) finalize(j *Job, state JobState, msg string, replayable bool) {
	s.mu.Lock()
	j.state = state
	j.err = msg
	j.replayable = replayable
	j.finished = time.Now()
	closeNow := !j.doneClosed
	j.doneClosed = true
	s.mu.Unlock()
	if closeNow {
		if state == StateFailed {
			s.metrics.JobsFailed.Add(1)
		}
		close(j.done)
	}
}

// retryOrQuarantine handles a transient attempt failure: schedule the
// next attempt with exponential backoff and deterministic jitter, or —
// once MaxAttempts is spent — move the job to the poison quarantine.
func (s *Service) retryOrQuarantine(j *Job, cause error) {
	msg := cause.Error()
	s.mu.Lock()
	attempts := j.attempts
	j.err = msg // visible while the job waits out its backoff
	s.mu.Unlock()

	if attempts >= s.cfg.MaxAttempts {
		s.metrics.JobsQuarantined.Add(1)
		s.cfg.Log.Printf("quarantining %s (%s) after %d attempts: %s",
			j.id, j.spec.name, attempts, firstLine(msg))
		s.finalize(j, StateQuarantined, msg, false)
		if j.journaled {
			s.journalAppend(journalRecord{Op: opQuarantine, ID: j.id, Error: msg})
		}
		s.metrics.ObservePhase("total", time.Since(j.created))
		return
	}

	delay := backoffDelay(s.cfg.RetryBaseDelay, attempts, j.key)
	if time.Now().Add(delay).After(j.deadline) {
		// The backoff would outlive the deadline; fail now with the real
		// cause instead of a synthetic timeout later.
		s.metrics.JobsTimeout.Add(1)
		s.failTerminal(j, fmt.Sprintf("deadline would expire during retry backoff; last failure: %s", firstLine(msg)))
		return
	}

	s.metrics.JobsRetried.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.finalize(j, StateFailed, "shutting down before retry; journaled for replay", true)
		return
	}
	j.state = StateQueued
	s.retries[j.id] = time.AfterFunc(delay, func() { s.requeue(j) })
	s.mu.Unlock()
}

// requeue puts a backed-off job back on the queue when its timer fires.
func (s *Service) requeue(j *Job) {
	s.mu.Lock()
	delete(s.retries, j.id)
	if s.closed {
		s.mu.Unlock()
		s.finalize(j, StateFailed, "shutting down before retry; journaled for replay", true)
		return
	}
	select {
	case s.queue <- j:
		s.metrics.JobsQueued.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		// The queue is saturated at retry time; rather than spin another
		// timer forever, fail replayably — the journal still has the job.
		s.finalize(j, StateFailed, "queue full at retry; journaled for replay", true)
	}
}

// backoffDelay is base << (attempt-1) capped at 30s, jittered to
// [50%,150%) by a hash of the job's content address and the attempt — so
// two pathological jobs never thundering-herd in lockstep, yet a given
// schedule is reproducible.
func backoffDelay(base time.Duration, attempt int, key string) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	fmt.Fprintf(h, "|%d", attempt)
	frac := float64(h.Sum64()>>11) / (1 << 53) // [0,1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// writeThrough stores the result, counts and logs (once per distinct
// error) any disk-tier failure, and never fails the job: a lost disk
// write only costs a future re-verification.
func (s *Service) writeThrough(key string, res *Result) {
	var err error
	if h := s.cfg.Hooks; h != nil && h.CacheWrite != nil {
		if err = h.CacheWrite(key); err != nil {
			s.cache.insert(key, res) // the memory tier still holds the result
		}
	}
	if err == nil {
		err = s.cache.Put(key, res)
	}
	if err == nil {
		s.offerToPeers(key, res)
		return
	}
	s.metrics.CacheWriteErrors.Add(1)
	msg := err.Error()
	s.mu.Lock()
	logIt := !s.cacheErrSeen[msg] && len(s.cacheErrSeen) < maxLoggedCacheErrors
	if logIt {
		s.cacheErrSeen[msg] = true
	}
	s.mu.Unlock()
	if logIt {
		s.cfg.Log.Printf("cache write-through failed (logged once per distinct error): %v", err)
	}
}

// firstLine trims a multi-line error (panic stacks) for log lines.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns point-in-time views of every retained job, in creation
// order, optionally filtered by state ("" = all). This is the API behind
// GET /v1/jobs?state=quarantined — the poison-quarantine workflow.
func (s *Service) Jobs(state JobState) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || (state != "" && j.state != state) {
			continue
		}
		views = append(views, s.viewLocked(j))
	}
	return views
}

// Snapshot renders a consistent point-in-time view of a job.
func (s *Service) Snapshot(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewLocked(j)
}

func (s *Service) viewLocked(j *Job) JobView {
	return JobView{
		ID:         j.id,
		Name:       j.spec.name,
		State:      j.state,
		Cached:     j.cached,
		Attempts:   j.attempts,
		Degraded:   j.degraded,
		Replayable: j.replayable,
		Error:      j.err,
		CompileNS:  j.compileNS,
		Result:     j.result,
		CreatedAt:  stamp(j.created),
		StartedAt:  stamp(j.started),
		FinishedAt: stamp(j.finished),
	}
}

// Stats is the health summary served on /healthz.
type Stats struct {
	Queued           int    `json:"queued"`
	Running          int    `json:"running"`
	Workers          int    `json:"workers"`
	QueueCap         int    `json:"queue_capacity"`
	CacheEntries     int    `json:"cache_entries"`
	Quarantined      int    `json:"quarantined"`
	CacheWriteErrors uint64 `json:"cache_write_errors"`
	MemBudgetBytes   uint64 `json:"mem_budget_bytes"`
	MemInUseBytes    uint64 `json:"mem_in_use_bytes"`
	// SpecCache reports the compiled-spec cache: entries resident and the
	// cache-internal hit/miss counters, which include the workers' own
	// canonical-text compiles. The lrserved_spec_cache_{hits,misses}_total
	// metrics count submissions only — they are the front-end skip rate.
	SpecCache verify.SpecCacheStats `json:"spec_cache"`
	// Cluster occupancy (coordinator mode only): registered workers,
	// outstanding leases, and federated-cache peers on the ring.
	ClusterWorkers int `json:"cluster_workers,omitempty"`
	ClusterLeases  int `json:"cluster_leases,omitempty"`
	CachePeers     int `json:"cache_peers,omitempty"`
}

// Stats returns current occupancy.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	quarantined := 0
	for _, j := range s.jobs {
		if j.state == StateQuarantined {
			quarantined++
		}
	}
	s.mu.Unlock()
	st := Stats{
		Queued:           int(s.metrics.JobsQueued.Load()),
		Running:          int(s.metrics.JobsRunning.Load()),
		Workers:          s.cfg.Workers,
		QueueCap:         s.cfg.QueueSize,
		CacheEntries:     s.cache.Len(),
		Quarantined:      quarantined,
		CacheWriteErrors: s.metrics.CacheWriteErrors.Load(),
		MemBudgetBytes:   s.cfg.MemoryBudgetBytes,
		MemInUseBytes:    s.admit.used(),
		SpecCache:        s.specs.Stats(),
	}
	if s.coord != nil {
		st.ClusterWorkers = len(s.coord.Workers())
		st.ClusterLeases = s.coord.Outstanding()
		st.CachePeers = s.fed.Peers()
	}
	return st
}

// Shutdown drains gracefully: new submissions are rejected, queued jobs
// run to completion, jobs waiting out a retry backoff are failed in this
// process but kept pending in the journal (a restart replays them), and
// the call blocks until the pool exits. When ctx expires first, in-flight
// jobs are canceled — they too finish as replayable failures — and
// Shutdown still waits for the pool before returning ctx's error. The
// journal is then compacted down to replayable and quarantined jobs; the
// disk cache is write-through, so every completed result is already
// flushed.
func (s *Service) Shutdown(ctx context.Context) error {
	err := s.stop(ctx)
	s.compactJournal()
	return err
}

// stop is the drain half of Shutdown, shared with the chaos harness.
func (s *Service) stop(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	var backedOff []*Job
	for id, t := range s.retries {
		t.Stop()
		delete(s.retries, id)
		if j, ok := s.jobs[id]; ok {
			backedOff = append(backedOff, j)
		}
	}
	s.mu.Unlock()
	for _, j := range backedOff {
		s.finalize(j, StateFailed, "shutting down before retry; journaled for replay", true)
	}
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		if s.coord != nil {
			// The dispatcher has drained the queue; wait for the leases it
			// placed to resolve (workers complete, or ctx forces cancel).
			s.coord.Quiesce(ctx)
		}
		close(done)
	}()
	select {
	case <-done:
		s.cancelRun()
		s.stopCluster()
		return nil
	case <-ctx.Done():
		s.cancelRun()
		s.stopCluster()
		<-done
		return ctx.Err()
	}
}

// compactJournal rewrites the WAL to the minimal replay set: pending
// submits for replayable failures and the submit+quarantine pairs of the
// poison ledger.
func (s *Service) compactJournal() {
	if s.wal == nil {
		return
	}
	var recs []journalRecord
	s.mu.Lock()
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || !j.journaled {
			continue
		}
		switch {
		case j.replayable, j.state == StateQuarantined:
			opts := j.spec.options
			recs = append(recs, journalRecord{
				Op: opSubmit, ID: j.id, Name: j.spec.name, Spec: j.spec.canonical,
				Options: &opts, TimeoutMS: j.timeout.Milliseconds(),
			})
			if j.state == StateQuarantined {
				recs = append(recs, journalRecord{Op: opQuarantine, ID: j.id, Error: j.err})
			}
		}
	}
	s.mu.Unlock()
	if err := s.wal.compact(recs); err != nil {
		s.metrics.JournalErrors.Add(1)
		s.cfg.Log.Printf("journal compaction: %v", err)
	}
}

// crash stops the service the unclean way — queue closed, in-flight work
// canceled immediately, journal left uncompacted — simulating a process
// kill for the chaos suite. Exported to tests only via package access.
func (s *Service) crash() {
	s.cancelRun()
	s.mu.Lock()
	already := s.closed
	s.closed = true
	var backedOff []*Job
	for id, t := range s.retries {
		t.Stop()
		delete(s.retries, id)
		if j, ok := s.jobs[id]; ok {
			backedOff = append(backedOff, j)
		}
	}
	s.mu.Unlock()
	for _, j := range backedOff {
		s.finalize(j, StateFailed, "killed; journaled for replay", true)
	}
	if !already {
		close(s.queue)
	}
	s.wg.Wait()
	s.stopCluster()
	if s.wal != nil {
		s.wal.close()
	}
}
