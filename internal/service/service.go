// Package service is the long-running verification layer: a bounded job
// queue in front of a fixed pool of workers that run the verify pipeline
// with per-job deadlines, fronted by a content-addressed result cache.
//
// The shape follows how parameterized-verification tooling is consumed in
// practice: clients submit Guarded-Command specs (the specs/*.gc dialect)
// and poll structured verdicts, while repeat submissions of the same
// protocol — the overwhelmingly common case for a shared service — are
// answered from the cache without touching the engine. The cache is keyed
// by the canonical dsl.Format rendering of the spec plus the normalized
// option set, so whitespace, comments, and parenthesization never cause a
// re-verification. cmd/lrserved exposes this package over HTTP.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"paramring/internal/dsl"
	"paramring/internal/verify"
)

// Service errors surfaced to submitters. ErrBadSpec wraps parse/compile
// failures (an HTTP 400); ErrQueueFull is backpressure (429); ErrShutdown
// rejects submissions during drain (503).
var (
	ErrBadSpec   = errors.New("bad spec")
	ErrQueueFull = errors.New("queue full")
	ErrShutdown  = errors.New("shutting down")
)

// Config tunes a Service. Zero values select the documented defaults.
type Config struct {
	// QueueSize bounds the number of jobs waiting for a worker (default
	// 256). Submissions beyond it fail fast with ErrQueueFull.
	QueueSize int
	// Workers is the number of concurrent verification jobs (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// EngineWorkers is the explicit-engine worker count handed to each
	// job's verify.Options (default 1: with a full pool of job-level
	// workers, intra-job parallelism only adds contention; raise it for a
	// latency-oriented deployment with few concurrent clients).
	EngineWorkers int
	// DefaultTimeout is the per-job deadline when the request does not
	// set one (default 60s). The deadline is anchored at submission, so
	// queue wait counts against it.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied deadlines (default 10m).
	MaxTimeout time.Duration
	// CacheSize bounds the in-memory result cache entries (default 1024).
	CacheSize int
	// CacheDir, when non-empty, persists results as one JSON file per
	// content address, surviving restarts.
	CacheDir string
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	return c
}

// Service is the verification service. Create with New, then Start; submit
// with Submit; stop with Shutdown.
type Service struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache

	queue     chan *Job
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // job ids in creation order, for retention eviction
	nextID uint64
	closed bool
}

// maxRetainedJobs bounds the id -> job index: once exceeded, the oldest
// terminal jobs are forgotten (their results live on in the cache). Live
// jobs are never evicted — they are bounded by queue size + workers.
const maxRetainedJobs = 4096

// New validates the configuration and builds a stopped Service.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	cache, err := newResultCache(cfg.CacheSize, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:       cfg,
		metrics:   NewMetrics(),
		cache:     cache,
		queue:     make(chan *Job, cfg.QueueSize),
		runCtx:    ctx,
		cancelRun: cancel,
		jobs:      make(map[string]*Job),
	}, nil
}

// Start launches the worker pool.
func (s *Service) Start() {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.metrics.JobsQueued.Add(-1)
				s.run(j)
			}
		}()
	}
}

// Metrics returns the service's instrumentation.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Submit parses, canonicalizes, and either answers req from the cache
// (returning an already-done Job) or enqueues it. The returned error is
// ErrBadSpec-wrapped for malformed specs, ErrQueueFull under backpressure,
// ErrShutdown during drain.
func (s *Service) Submit(req Request) (*Job, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrShutdown
	}

	t0 := time.Now()
	spec, err := dsl.ParseSpec(req.Spec)
	if err == nil {
		// Compile too: "parses but writes outside the window/domain" must
		// be a 400, not a failed job.
		_, err = spec.Protocol()
	}
	if err != nil {
		s.metrics.ParseErrors.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	canonical := dsl.Format(spec)
	opts := req.Options.normalize()
	key := cacheKey(canonical, opts)
	s.metrics.ObservePhase("parse", time.Since(t0))
	s.metrics.JobsSubmitted.Add(1)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	j := &Job{
		key:      key,
		spec:     specHandle{name: spec.Name, canonical: canonical, options: opts},
		created:  t0,
		deadline: t0.Add(timeout),
		done:     make(chan struct{}),
	}

	if res, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsDone.Add(1)
		s.mu.Lock()
		j.id = s.newIDLocked()
		j.state = StateDone
		j.cached = true
		j.result = res
		j.finished = time.Now()
		s.jobs[j.id] = j
		s.mu.Unlock()
		close(j.done)
		s.metrics.ObservePhase("total", time.Since(t0))
		return j, nil
	}
	s.metrics.CacheMisses.Add(1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	j.id = s.newIDLocked()
	j.state = StateQueued
	s.jobs[j.id] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
		s.metrics.JobsQueued.Add(1)
		return j, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

func (s *Service) newIDLocked() string {
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.order = append(s.order, id)
	if len(s.jobs) >= maxRetainedJobs {
		s.evictTerminalLocked()
	}
	return id
}

// evictTerminalLocked drops the oldest finished jobs until the index is
// back under the retention bound.
func (s *Service) evictTerminalLocked() {
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) >= maxRetainedJobs && (j.state == StateDone || j.state == StateFailed) {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// run executes one job on the calling worker goroutine.
func (s *Service) run(j *Job) {
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	ctx, cancel := context.WithDeadline(s.runCtx, j.deadline)
	defer cancel()

	// Reparse from the canonical text: it is a guaranteed fixpoint of the
	// parser (see dsl.Format) and keeps Job free of engine closures.
	var (
		rep *verify.Report
		err error
	)
	spec, perr := dsl.ParseSpec(j.spec.canonical)
	if perr != nil {
		err = perr // unreachable unless Format's contract breaks
	} else {
		var proto, cerr = spec.Protocol()
		if cerr != nil {
			err = cerr
		} else {
			t0 := time.Now()
			rep, err = verify.CheckCtx(ctx, proto, j.spec.options.verifyOptions(s.cfg.EngineWorkers))
			s.metrics.ObservePhase("verify", time.Since(t0))
		}
	}

	s.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		if errors.Is(err, context.DeadlineExceeded) {
			j.err = fmt.Sprintf("deadline exceeded after %v", j.finished.Sub(j.created).Round(time.Millisecond))
			s.metrics.JobsTimeout.Add(1)
		} else {
			j.err = err.Error()
		}
		s.metrics.JobsFailed.Add(1)
	} else {
		j.state = StateDone
		j.result = resultFromReport(j.spec.name, rep)
		s.metrics.StatesExplored.Add(rep.ExplicitStates)
		s.metrics.RecordPeakTableBytes(rep.ExplicitPeakTableBytes)
		s.metrics.JobsDone.Add(1)
	}
	res := j.result
	key := j.key
	s.mu.Unlock()
	if res != nil {
		// Write-through after releasing the job lock; the disk tier is
		// best-effort (a failed write only costs a future re-verification).
		_ = s.cache.Put(key, res)
	}
	close(j.done)
	s.metrics.ObservePhase("total", time.Since(j.created))
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Snapshot renders a consistent point-in-time view of a job.
func (s *Service) Snapshot(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return JobView{
		ID:         j.id,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.err,
		Result:     j.result,
		CreatedAt:  stamp(j.created),
		StartedAt:  stamp(j.started),
		FinishedAt: stamp(j.finished),
	}
}

// Stats is the health summary served on /healthz.
type Stats struct {
	Queued       int `json:"queued"`
	Running      int `json:"running"`
	Workers      int `json:"workers"`
	QueueCap     int `json:"queue_capacity"`
	CacheEntries int `json:"cache_entries"`
}

// Stats returns current occupancy.
func (s *Service) Stats() Stats {
	return Stats{
		Queued:       int(s.metrics.JobsQueued.Load()),
		Running:      int(s.metrics.JobsRunning.Load()),
		Workers:      s.cfg.Workers,
		QueueCap:     s.cfg.QueueSize,
		CacheEntries: s.cache.Len(),
	}
}

// Shutdown drains gracefully: new submissions are rejected, queued jobs
// run to completion, and the call blocks until the pool exits. When ctx
// expires first, in-flight jobs are canceled (they finish as failed) and
// Shutdown still waits for the pool before returning ctx's error. The disk
// cache is write-through, so every completed result is already flushed.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelRun()
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		return ctx.Err()
	}
}
