package service

import (
	"context"
	"errors"
	"io"
	"log"
	"testing"
	"time"
)

const tinySpec = `protocol tiny
domain 2
window 0 1
legit x[0] == x[1]
action copy: x[0] != x[1] -> x[0] := x[1]
`

// tinySpecVariant is semantically identical to tinySpec but textually
// different: extra whitespace, comments, and redundant parentheses.
const tinySpecVariant = `protocol tiny
domain 2
window  0   1
# a comment the canonical form drops
legit ((x[0]) == (x[1]))
action copy: (x[0] != x[1]) -> x[0] := (x[1])
`

func newTestService(t *testing.T, cfg Config, start bool) *Service {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		svc.Start()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = svc.Shutdown(ctx)
		})
	}
	return svc
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID())
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1}, true)
	for _, src := range []string{
		"",
		"this is not a spec",
		"protocol p\ndomain 2\nwindow 0 1\nlegit x[9] == 0\n", // index outside window
	} {
		if _, err := svc.Submit(Request{Spec: src}); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%q) error = %v, want ErrBadSpec", src, err)
		}
	}
	if got := svc.Metrics().ParseErrors.Load(); got != 3 {
		t.Fatalf("ParseErrors = %d, want 3", got)
	}
}

func TestSubmitCacheHitAndCanonicalization(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2}, true)

	j1, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	v1 := svc.Snapshot(j1)
	if v1.State != StateDone || v1.Cached || v1.Result == nil {
		t.Fatalf("first submission: %+v", v1)
	}

	// The textual variant must hit the same cache line: the key is built
	// from the canonical dsl.Format rendering, not the submitted bytes.
	j2, err := svc.Submit(Request{Spec: tinySpecVariant})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	v2 := svc.Snapshot(j2)
	if v2.State != StateDone || !v2.Cached {
		t.Fatalf("variant submission not served from cache: %+v", v2)
	}
	if v2.Result.Summary != v1.Result.Summary {
		t.Fatalf("cached summary %q != original %q", v2.Result.Summary, v1.Result.Summary)
	}
	if hits := svc.Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("CacheHits = %d, want 1", hits)
	}

	// Different options are a different content address.
	j3, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	if v3 := svc.Snapshot(j3); v3.Cached {
		t.Fatalf("different options must not be a cache hit: %+v", v3)
	}
}

// TestSubmitWorkersShareCacheEntry pins the content-address contract for
// execution knobs: the Workers hint and per-request deadline change how a
// verification runs, never what it concludes, so workers=1 and workers=8
// submissions of the same spec must resolve to ONE cache entry.
func TestSubmitWorkersShareCacheEntry(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2, EngineWorkers: 8}, true)

	j1, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if v1 := svc.Snapshot(j1); v1.State != StateDone || v1.Cached {
		t.Fatalf("first submission: %+v", v1)
	}

	for _, req := range []Request{
		{Spec: tinySpec, Options: RequestOptions{Workers: 8}},
		{Spec: tinySpec, Options: RequestOptions{Workers: 8}, TimeoutMS: 60000},
		{Spec: tinySpec},
	} {
		j, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if v := svc.Snapshot(j); v.State != StateDone || !v.Cached {
			t.Fatalf("request %+v fragmented the cache: %+v", req, v)
		}
	}
	if hits := svc.Metrics().CacheHits.Load(); hits != 3 {
		t.Fatalf("CacheHits = %d, want 3", hits)
	}
	if n := svc.cache.Len(); n != 1 {
		t.Fatalf("cache entries = %d, want 1 (workers/deadline must not be part of the key)", n)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// No Start(): with no workers draining, the queue bound is exact.
	svc := newTestService(t, Config{Workers: 1, QueueSize: 1}, false)
	if _, err := svc.Submit(Request{Spec: tinySpec}); err != nil {
		t.Fatal(err)
	}
	// A distinct spec (different protocol name) avoids the cache path.
	other := "protocol tiny2\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction copy: x[0] != x[1] -> x[0] := x[1]\n"
	if _, err := svc.Submit(Request{Spec: other}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submission error = %v, want ErrQueueFull", err)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Drain means the queued job ran to completion before the pool exited.
	select {
	case <-j.Done():
	default:
		t.Fatal("Shutdown returned before the queued job finished")
	}
	if v := svc.Snapshot(j); v.State != StateDone {
		t.Fatalf("drained job state = %s, want done (%+v)", v.State, v)
	}
	if _, err := svc.Submit(Request{Spec: tinySpec}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown Submit error = %v, want ErrShutdown", err)
	}
	// Shutdown is idempotent.
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	j1, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)

	// A fresh service over the same cache directory answers from disk
	// without running the engine.
	svc2 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	j2, err := svc2.Submit(Request{Spec: tinySpecVariant})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if v2 := svc2.Snapshot(j2); !v2.Cached {
		t.Fatalf("restarted service missed the disk cache: %+v", v2)
	}
}
