package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestShutdownDrainInFlight: Shutdown lets in-flight and queued jobs run
// to completion, every Done channel closes, and submissions arriving
// after the drain began get ErrShutdown.
func TestShutdownDrainInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		once.Do(func() { close(started) })
		<-release // hold the worker so Shutdown races a genuinely in-flight job
		return nil
	}}
	svc := newTestService(t, Config{Workers: 1, QueueSize: 8, Hooks: hooks}, true)

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(Request{Spec: numberedSpec(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- svc.Shutdown(ctx)
	}()
	// Shutdown must not return while the worker is held.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned while a job was in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Submissions during the drain are turned away.
	if _, err := svc.Submit(Request{Spec: numberedSpec(99)}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("mid-drain Submit error = %v, want ErrShutdown", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Every job reached a terminal state and its Done channel closed.
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s Done channel still open after Shutdown", j.ID())
		}
		if v := svc.Snapshot(j); v.State != StateDone {
			t.Fatalf("drained job %s: %+v", j.ID(), v)
		}
	}
}

// TestShutdownFinalizesBackedOffJobs: a job sitting in a retry backoff
// when Shutdown arrives cannot wait out its timer — it is finalized as a
// replayable failure (its Done channel closes) and its journal record
// survives compaction, so a restart picks it up.
func TestShutdownFinalizesBackedOffJobs(t *testing.T) {
	dir := t.TempDir()
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		return errors.New("transient wobble")
	}}
	svc := newTestService(t, Config{
		Workers: 1, CacheDir: dir, MaxAttempts: 5,
		RetryBaseDelay: time.Hour, // park the retry far beyond the test
		Hooks:          hooks,
	}, true)
	j, err := svc.Submit(Request{Spec: tinySpec, TimeoutMS: int((4 * time.Hour) / time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail into backoff.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().JobsRetried.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never entered backoff")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("backed-off job's Done channel open after Shutdown")
	}
	v := svc.Snapshot(j)
	if v.State != StateFailed {
		t.Fatalf("backed-off job: %+v", v)
	}

	// The restart replays it; with the hook gone it completes.
	svc2 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	if got := svc2.Metrics().JobsReplayed.Load(); got != 1 {
		t.Fatalf("JobsReplayed = %d, want 1", got)
	}
	j2, ok := svc2.Job(j.ID())
	if !ok {
		t.Fatal("replayed job missing")
	}
	waitDone(t, j2)
	if v := svc2.Snapshot(j2); v.State != StateDone {
		t.Fatalf("replayed job: %+v", v)
	}
}
