package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the service's instrumentation surface, rendered on /metrics in
// the Prometheus text exposition format. Counters and gauges are lock-free
// atomics on the hot path; histograms take a short mutex per observation.
type Metrics struct {
	JobsSubmitted atomic.Uint64 // every POST accepted into the pipeline
	JobsDone      atomic.Uint64 // terminal: result produced
	JobsFailed    atomic.Uint64 // terminal: error (includes timeouts)
	JobsTimeout   atomic.Uint64 // subset of failed: deadline exceeded
	ParseErrors   atomic.Uint64 // rejected before job creation

	JobsPanicked    atomic.Uint64 // attempts that ended in a recovered engine panic
	JobsRetried     atomic.Uint64 // retry attempts scheduled after transient failures
	JobsQuarantined atomic.Uint64 // jobs moved to the poison quarantine
	JobsReplayed    atomic.Uint64 // jobs reconstructed from the journal at startup

	CacheWriteErrors atomic.Uint64 // write-through failures (job still succeeds)
	JournalErrors    atomic.Uint64 // WAL append/compaction failures

	JobsQueued  atomic.Int64 // gauge: accepted, not yet picked up
	JobsRunning atomic.Int64 // gauge: currently on a worker

	CacheHits      atomic.Uint64
	CacheMisses    atomic.Uint64
	StatesExplored atomic.Uint64 // explicit-engine states, fresh runs only

	// SpecCacheHits / SpecCacheMisses count compiled-spec cache outcomes:
	// a hit means the DSL front end (parse + validate + compile to
	// core.Protocol tables) was skipped for a submission; a miss paid it
	// and recorded the cost in the compile histogram below.
	SpecCacheHits   atomic.Uint64
	SpecCacheMisses atomic.Uint64

	// PeakTableBytes is a high-water gauge of the largest resident
	// explicit-engine per-state table any single verification held (one bit
	// per global state with the packed bitset substrate). Update through
	// RecordPeakTableBytes.
	PeakTableBytes atomic.Uint64

	// InvariantRuns counts verifications where the invariant lane ran to
	// completion; InvariantProved the subset whose livelock verdict was
	// settled by the lane alone (theorems silent or contiguous-only);
	// InvariantDisagreements counts finished verifications whose report
	// carried cross-lane conflicts — a tool-bug alarm that should read 0.
	InvariantRuns          atomic.Uint64
	InvariantProved        atomic.Uint64
	InvariantDisagreements atomic.Uint64

	// InvariantCertBytes is a high-water gauge of the largest canonical
	// certificate any verification produced. Update through
	// RecordInvariantCertBytes.
	InvariantCertBytes atomic.Uint64

	// Cluster counters (all 0 outside coordinator mode). Grants and
	// renewals track the lease journal; expiries are the failover signal —
	// each one means a worker died, hung, or partitioned mid-job and the
	// job re-entered the retry machinery (ClusterRedispatches counts those
	// re-entries, including expired-lease re-dispatch at replay). Late
	// results are completions that arrived after their lease died, counted
	// and dropped — safe, because results are content-addressed.
	ClusterLeasesGranted atomic.Uint64
	ClusterLeaseRenewals atomic.Uint64
	ClusterLeasesExpired atomic.Uint64
	ClusterRedispatches  atomic.Uint64
	ClusterLateResults   atomic.Uint64
	ClusterWorkersJoined atomic.Uint64
	ClusterWorkersLost   atomic.Uint64

	parse   histogram
	verify  histogram
	total   histogram
	compile histogram // spec compile cost, misses only (lrserved_spec_compile_seconds)
}

// RecordPeakTableBytes raises the PeakTableBytes high-water mark to v when
// v exceeds it (CAS-max; safe from concurrent workers).
func (m *Metrics) RecordPeakTableBytes(v uint64) {
	for {
		cur := m.PeakTableBytes.Load()
		if v <= cur || m.PeakTableBytes.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordInvariantCertBytes raises the InvariantCertBytes high-water mark.
func (m *Metrics) RecordInvariantCertBytes(v uint64) {
	for {
		cur := m.InvariantCertBytes.Load()
		if v <= cur || m.InvariantCertBytes.CompareAndSwap(cur, v) {
			return
		}
	}
}

// NewMetrics returns a Metrics with the standard latency buckets.
func NewMetrics() *Metrics {
	m := &Metrics{}
	for _, h := range []*histogram{&m.parse, &m.verify, &m.total} {
		h.bounds = []float64{.0001, .0005, .001, .005, .01, .05, .1, .5, 1, 5, 10, 30}
		h.counts = make([]uint64, len(h.bounds))
	}
	// Spec compiles are microsecond-scale; give the compile histogram its
	// own finer buckets so the compiled-spec cache win stays resolvable.
	m.compile.bounds = []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 1e-1, 1}
	m.compile.counts = make([]uint64, len(m.compile.bounds))
	return m
}

// ObserveCompile records one cold spec-compile cost (spec-cache misses
// only; hits by definition pay nothing worth observing).
func (m *Metrics) ObserveCompile(d time.Duration) {
	m.compile.observe(d.Seconds())
}

// ObservePhase records one per-phase latency sample (phases: parse, verify,
// total).
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	switch phase {
	case "parse":
		m.parse.observe(d.Seconds())
	case "verify":
		m.verify.observe(d.Seconds())
	case "total":
		m.total.observe(d.Seconds())
	}
}

// histogram is a fixed-bucket latency histogram (cumulative on render, as
// Prometheus expects).
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.n++
}

// write renders the histogram in exposition format. An empty phase emits
// the series without a phase label (single-histogram metrics like
// lrserved_spec_compile_seconds).
func (h *histogram) write(w io.Writer, name, phase string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	label := func(le string) string {
		if phase == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{phase=%q,le=%q}", phase, le)
	}
	suffix := ""
	if phase != "" {
		suffix = fmt.Sprintf("{phase=%q}", phase)
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, label(trimFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, label("+Inf"), h.n)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.n)
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WriteTo renders the exposition text. The extra gauges map carries
// point-in-time values owned by the Service (queue depth capacity, cache
// entries) so Metrics stays free of back-references.
func (m *Metrics) WriteTo(w io.Writer, extraGauges map[string]float64) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("lrserved_jobs_submitted_total", "Jobs accepted into the pipeline.", m.JobsSubmitted.Load())
	counter("lrserved_jobs_done_total", "Jobs finished with a result.", m.JobsDone.Load())
	counter("lrserved_jobs_failed_total", "Jobs finished with an error.", m.JobsFailed.Load())
	counter("lrserved_jobs_timeout_total", "Jobs that exceeded their deadline.", m.JobsTimeout.Load())
	counter("lrserved_parse_errors_total", "Submissions rejected at parse time.", m.ParseErrors.Load())
	counter("lrserved_jobs_panicked_total", "Attempts that ended in a recovered engine panic.", m.JobsPanicked.Load())
	counter("lrserved_jobs_retried_total", "Retry attempts scheduled after transient failures.", m.JobsRetried.Load())
	counter("lrserved_jobs_quarantined_total", "Jobs moved to the poison quarantine.", m.JobsQuarantined.Load())
	counter("lrserved_jobs_replayed_total", "Jobs replayed from the journal at startup.", m.JobsReplayed.Load())
	counter("lrserved_cache_write_errors_total", "Result write-through failures (the job still succeeds).", m.CacheWriteErrors.Load())
	counter("lrserved_journal_errors_total", "Job-journal append or compaction failures.", m.JournalErrors.Load())
	counter("lrserved_cache_hits_total", "Verifications served from the result cache.", m.CacheHits.Load())
	counter("lrserved_cache_misses_total", "Verifications that had to run the engine.", m.CacheMisses.Load())
	counter("lrserved_spec_cache_hits_total", "Submissions whose spec compile was served from the compiled-spec cache.", m.SpecCacheHits.Load())
	counter("lrserved_spec_cache_misses_total", "Submissions that paid a cold DSL parse+compile.", m.SpecCacheMisses.Load())
	counter("lrserved_states_explored_total", "Explicit-engine global states enumerated.", m.StatesExplored.Load())
	counter("lrserved_invariant_runs_total", "Verifications where the invariant lane ran to completion.", m.InvariantRuns.Load())
	counter("lrserved_invariant_proved_total", "Livelock verdicts settled by the invariant lane where the theorems were silent.", m.InvariantProved.Load())
	counter("lrserved_invariant_disagreements_total", "Finished verifications whose report carried cross-lane conflicts (tool-bug alarm).", m.InvariantDisagreements.Load())
	counter("lrserved_cluster_lease_granted_total", "Cluster leases granted to workers.", m.ClusterLeasesGranted.Load())
	counter("lrserved_cluster_lease_renewed_total", "Cluster lease heartbeat renewals.", m.ClusterLeaseRenewals.Load())
	counter("lrserved_cluster_lease_expired_total", "Cluster leases that expired unrenewed (worker dead, hung, or partitioned); each triggers a re-dispatch.", m.ClusterLeasesExpired.Load())
	counter("lrserved_cluster_redispatch_total", "Jobs re-entered into the retry machinery after a lease expiry.", m.ClusterRedispatches.Load())
	counter("lrserved_cluster_late_results_total", "Completions dropped because their lease had already expired.", m.ClusterLateResults.Load())
	counter("lrserved_cluster_workers_joined_total", "Workers registered with the coordinator.", m.ClusterWorkersJoined.Load())
	counter("lrserved_cluster_workers_lost_total", "Workers dropped from the registry (lease expiry or clean leave).", m.ClusterWorkersLost.Load())
	gauge("lrserved_jobs_queued", "Jobs waiting for a worker.", float64(m.JobsQueued.Load()))
	gauge("lrserved_jobs_running", "Jobs currently executing.", float64(m.JobsRunning.Load()))
	gauge("lrserved_explicit_peak_table_bytes", "Largest resident explicit-engine state table of any verification.", float64(m.PeakTableBytes.Load()))
	gauge("lrserved_invariant_certificate_bytes", "Largest canonical invariant certificate of any verification.", float64(m.InvariantCertBytes.Load()))
	names := make([]string, 0, len(extraGauges))
	for n := range extraGauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		gauge(n, "See lrserved documentation.", extraGauges[n])
	}
	const hname = "lrserved_phase_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Per-phase job latency.\n# TYPE %s histogram\n", hname, hname)
	m.parse.write(w, hname, "parse")
	m.verify.write(w, hname, "verify")
	m.total.write(w, hname, "total")
	const cname = "lrserved_spec_compile_seconds"
	fmt.Fprintf(w, "# HELP %s Cold spec parse+compile cost (compiled-spec cache misses).\n# TYPE %s histogram\n", cname, cname)
	m.compile.write(w, cname, "")
}
