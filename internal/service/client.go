package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is the well-behaved HTTP client for the service, used by
// lrfleet's server mode. Its one nontrivial behavior is backpressure
// cooperation: a 503 with Retry-After is not an error but an invitation
// to wait — the client honors the server's hint, backs off exponentially
// with jitter across attempts (so a fleet of clients re-arriving after a
// shared stall doesn't re-stampede the queue), caps the delay, and gives
// up only after MaxRetries or when the caller's context is canceled.
type Client struct {
	// BaseURL is the service root (http://host:port), no trailing slash.
	BaseURL string
	// HTTP overrides the HTTP client. The default is a package-shared
	// keep-alive client (see sharedTransport) so that every Client in the
	// process pools connections per host; a session of sequential calls
	// rides one TCP connection instead of paying a dial per request.
	HTTP *http.Client
	// MaxRetries bounds 503 re-submissions per call (default 5; the first
	// attempt is not a retry).
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 200ms); it doubles
	// per retry, is never below the server's Retry-After hint, and is
	// capped at MaxDelay (default 10s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Rand supplies backoff jitter (default the global source). Tests pin
	// it for determinism.
	Rand *rand.Rand
}

// sharedTransport is the keep-alive transport behind every Client that does
// not bring its own http.Client. http.DefaultClient would work too — its
// DefaultTransport also pools connections — but a shared package-level
// transport makes the pooling knobs explicit and deliberately sized for the
// fleet pattern: many sequential calls from a handful of goroutines against
// one lrserved host. DefaultTransport's MaxIdleConnsPerHost of 2 throttles
// exactly that shape (any burst past 2 concurrent calls churns TCP
// connections ever after); 16 per host keeps a worker pool's connections
// alive across the whole run. The idle timeout stays under typical LB/NAT
// idle cutoffs so a parked connection is retired before a middlebox can
// silently drop it.
var sharedTransport = &http.Transport{
	Proxy:                 http.ProxyFromEnvironment,
	MaxIdleConns:          64,
	MaxIdleConnsPerHost:   16,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: time.Second,
}

var sharedHTTPClient = &http.Client{Transport: sharedTransport}

// httpClient returns the caller's override or the shared keep-alive client.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return sharedHTTPClient
}

// ClientError is a non-backpressure HTTP failure: status plus the
// server's error body.
type ClientError struct {
	Status int
	Body   string
}

func (e *ClientError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Body)
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 5
}

func (c *Client) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return 200 * time.Millisecond
}

func (c *Client) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 10 * time.Second
}

// backoff computes the wait before retry attempt (0-based): the larger of
// the exponential schedule and the server's Retry-After hint, jittered by
// ±25%, capped at MaxDelay.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.baseDelay() << attempt
	if d < retryAfter {
		d = retryAfter
	}
	if max := c.maxDelay(); d > max {
		d = max
	}
	// Jitter spreads synchronized clients; the server hint stays the floor
	// so we never arrive before the server said capacity might exist.
	jitter := time.Duration(float64(d) * 0.25 * c.rand())
	if d+jitter > c.maxDelay() {
		return c.maxDelay()
	}
	return d + jitter
}

func (c *Client) rand() float64 {
	if c.Rand != nil {
		return c.Rand.Float64()
	}
	return rand.Float64()
}

// parseRetryAfter reads a Retry-After header (delta-seconds form; the
// HTTP-date form is not used by the service). 0 means absent/unparsable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Verify submits one spec. On 503 backpressure it waits and retries as
// described on Client; ctx cancellation aborts both in-flight requests
// and backoff waits.
func (c *Client) Verify(ctx context.Context, req Request) (*JobView, error) {
	var view JobView
	if err := c.post(ctx, "/v1/verify", req, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// VerifyBatch submits a batch, with the same backpressure behavior.
func (c *Client) VerifyBatch(ctx context.Context, req BatchRequest) (*BatchView, error) {
	var view BatchView
	if err := c.post(ctx, "/v1/verify/batch", req, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// Batch polls a batch's aggregate progress.
func (c *Client) Batch(ctx context.Context, id string) (*BatchView, error) {
	var view BatchView
	if err := c.get(ctx, "/v1/verify/batch/"+id, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var view JobView
	if err := c.get(ctx, "/v1/jobs/"+id, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		status, respBody, header, err := c.do(ctx, http.MethodPost, path, data)
		if err != nil {
			return err
		}
		switch {
		case status >= 200 && status < 300:
			return json.Unmarshal(respBody, out)
		case status == http.StatusServiceUnavailable && attempt < c.maxRetries():
			delay := c.backoff(attempt, parseRetryAfter(header))
			if !sleepCtx(ctx, delay) {
				return ctx.Err()
			}
			continue
		default:
			return &ClientError{Status: status, Body: errorBody(respBody)}
		}
	}
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	status, respBody, _, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if status >= 200 && status < 300 {
		return json.Unmarshal(respBody, out)
	}
	return &ClientError{Status: status, Body: errorBody(respBody)}
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (int, []byte, http.Header, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	// Drain whatever the limit left unread (bounded — a server streaming
	// gigabytes past the cap forfeits reuse when Close kills the
	// connection): the transport only returns a connection to the idle pool
	// once the body has been read to EOF, so an undrained oversized response
	// would silently turn every subsequent request into a fresh dial.
	_, _ = io.CopyN(io.Discard, resp.Body, maxRequestBytes)
	if err != nil {
		return resp.StatusCode, nil, resp.Header, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// errorBody extracts the {"error": ...} payload, falling back to the raw
// body.
func errorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// sleepCtx sleeps for d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
