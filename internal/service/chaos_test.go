package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"paramring/internal/faultinject"
)

// chaosSeed returns the fault-injection seed: LRSERVED_CHAOS_SEED when
// set (the CI chaos job runs a small matrix of them), else a fixed
// default so plain `go test` is deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("LRSERVED_CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("LRSERVED_CHAOS_SEED=%q: %v", v, err)
		}
		return seed
	}
	return 42
}

// chaosRequest builds the i-th chaos workload: distinct protocol names so
// no two jobs share a content address, alternating between pure local
// reasoning and cross-validation (the latter exercises the explicit
// engine and its memory estimate under faults).
func chaosRequest(i int) Request {
	req := Request{Spec: numberedSpec(i)}
	if i%2 == 1 {
		req.Options = RequestOptions{CrossValidateMaxK: 4}
	}
	return req
}

// TestChaosKillRestart is the end-to-end acceptance test for the
// crash-safe execution layer. It runs a fault plan (seed-driven panics in
// the verify path, failing cache writes) against a journaled service,
// kills the service mid-queue, restarts it over the same cache directory
// with faults still armed, and finally recovers with faults disarmed.
// The contract it pins:
//
//   - every submitted job reaches done or quarantined — none lost, none
//     wedged — across the kill;
//   - every verdict produced anywhere in the chaos timeline is
//     byte-identical to a no-fault baseline run;
//   - injected panics are recovered and counted, never fatal (the test
//     binary surviving IS the assertion).
func TestChaosKillRestart(t *testing.T) {
	seed := chaosSeed(t)
	const n = 12

	// Baseline verdicts from a pristine, journal-less service.
	baseline := make(map[string][]byte, n)
	ref := newTestService(t, Config{Workers: 2}, true)
	for i := 0; i < n; i++ {
		j, err := ref.Submit(chaosRequest(i))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		v := ref.Snapshot(j)
		if v.State != StateDone {
			t.Fatalf("baseline job %d: %+v", i, v)
		}
		data, err := json.Marshal(v.Result)
		if err != nil {
			t.Fatal(err)
		}
		baseline[v.Name] = data
	}

	plan := faultinject.New(seed)
	plan.Arm("verify-panic", 0.35)
	plan.Arm("cache-write", 0.5)
	hooks := &Hooks{
		BeforeVerify: func(id string, attempt int) error {
			time.Sleep(2 * time.Millisecond) // keep workers busy so the kill lands mid-queue
			if plan.Fire("verify-panic") {
				panic(fmt.Sprintf("chaos: injected engine panic (seed %d)", seed))
			}
			return nil
		},
		CacheWrite: func(key string) error {
			if plan.Fire("cache-write") {
				return fmt.Errorf("chaos: injected cache write failure (seed %d)", seed)
			}
			return nil
		},
	}
	dir := t.TempDir()
	chaosCfg := Config{
		Workers: 3, QueueSize: 64, CacheDir: dir,
		MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Hooks: hooks,
	}

	// checkVerdict folds one terminal JobView into the ledger.
	terminal := make(map[string]JobState, n) // protocol name -> final state
	checkVerdict := func(v JobView) {
		t.Helper()
		switch v.State {
		case StateDone:
			data, err := json.Marshal(v.Result)
			if err != nil {
				t.Fatal(err)
			}
			if want, ok := baseline[v.Name]; !ok {
				t.Fatalf("verdict for unknown protocol %q", v.Name)
			} else if string(data) != string(want) {
				t.Fatalf("chaos verdict for %q diverged:\n got %s\nwant %s", v.Name, data, want)
			}
			terminal[v.Name] = StateDone
		case StateQuarantined:
			terminal[v.Name] = StateQuarantined
		case StateFailed:
			// Only crash-interrupted attempts may fail, and those must be
			// replayable (journaled) — a terminal failure would be a lost job.
			if !v.Replayable {
				t.Fatalf("job %s failed terminally under chaos: %+v", v.ID, v)
			}
		default:
			t.Fatalf("job %s not terminal: %+v", v.ID, v)
		}
	}

	// Phase 1: chaos service; kill it once a few jobs have landed but the
	// queue is still busy.
	svc1 := newTestService(t, chaosCfg, false)
	svc1.Start()
	jobs1 := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc1.Submit(chaosRequest(i))
		if err != nil {
			t.Fatalf("chaos submit %d: %v", i, err)
		}
		jobs1 = append(jobs1, j)
	}
	killAt := time.Now().Add(10 * time.Second)
	for svc1.Metrics().JobsDone.Load() < 3 && time.Now().Before(killAt) {
		time.Sleep(time.Millisecond)
	}
	svc1.crash() // kill -9 equivalent: no drain, no journal compaction
	for _, j := range jobs1 {
		checkVerdict(svc1.Snapshot(j))
	}

	// Phase 2: restart over the same cache directory, faults still armed.
	// Replayed jobs must all reach a terminal state despite ongoing panics.
	svc2 := newTestService(t, chaosCfg, true)
	for _, view := range svc2.Jobs("") {
		j, ok := svc2.Job(view.ID)
		if !ok {
			t.Fatalf("listed job %s not found", view.ID)
		}
		waitDone(t, j)
		checkVerdict(svc2.Snapshot(j))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc2.Shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown after chaos: %v", err)
	}

	// Acceptance: every one of the n protocols is accounted for.
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%03d", i)
		if st, ok := terminal[name]; !ok {
			t.Errorf("protocol %s never reached a terminal state", name)
		} else if st != StateDone && st != StateQuarantined {
			t.Errorf("protocol %s ended as %s", name, st)
		}
	}

	// The panic counter must agree with the plan, and — since we survived
	// to this line — every injected panic was recovered, not fatal.
	panicked := svc1.Metrics().JobsPanicked.Load() + svc2.Metrics().JobsPanicked.Load()
	if fired := plan.Count("verify-panic"); fired != panicked {
		t.Errorf("plan fired %d panics but JobsPanicked totals %d", fired, panicked)
	} else if fired == 0 {
		t.Logf("seed %d injected no panics over %d verify calls; weak run", seed, plan.Calls("verify-panic"))
	}

	// Phase 3: recovery service, faults disarmed. Resubmitting the full
	// workload must produce baseline verdicts — from the disk cache where
	// write-through survived, from a clean engine run where it didn't.
	svc3 := newTestService(t, Config{Workers: 2, CacheDir: dir}, true)
	for i := 0; i < n; i++ {
		j, err := svc3.Submit(chaosRequest(i))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		v := svc3.Snapshot(j)
		if v.State != StateDone {
			t.Fatalf("recovery run of %q: %+v", v.Name, v)
		}
		data, _ := json.Marshal(v.Result)
		if string(data) != string(baseline[v.Name]) {
			t.Fatalf("recovery verdict for %q diverged:\n got %s\nwant %s", v.Name, data, baseline[v.Name])
		}
	}
}

// TestChaosQuarantineIsTerminal: a job armed to panic on every attempt is
// quarantined in phase 1 and must remain quarantined — not retried, not
// rerun — across a kill and restart.
func TestChaosQuarantineIsTerminal(t *testing.T) {
	dir := t.TempDir()
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		panic("chaos: unconditional poison")
	}}
	cfg := Config{
		Workers: 1, CacheDir: dir, MaxAttempts: 2,
		RetryBaseDelay: time.Millisecond, Hooks: hooks,
	}
	svc1 := newTestService(t, cfg, true)
	j, err := svc1.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if v := svc1.Snapshot(j); v.State != StateQuarantined {
		t.Fatalf("job: %+v", v)
	}
	svc1.crash()

	// Restart WITHOUT the poison hook: the quarantine verdict must stick
	// anyway — replay trusts the ledger, it does not re-litigate.
	svc2 := newTestService(t, Config{Workers: 1, CacheDir: dir}, true)
	quarantined := svc2.Jobs(StateQuarantined)
	if len(quarantined) != 1 || quarantined[0].ID != j.ID() {
		t.Fatalf("quarantine after kill-restart = %+v", quarantined)
	}
	if got := svc2.Metrics().JobsDone.Load(); got != 0 {
		t.Fatalf("quarantined job was rerun after restart (JobsDone = %d)", got)
	}
}
