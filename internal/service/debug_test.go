package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestDebugHandlerEndpoints exercises the pprof surface end to end: every
// profile endpoint must answer 200 with a non-empty body, and the trace
// endpoints must stream a parseable runtime trace header.
func TestDebugHandlerEndpoints(t *testing.T) {
	ts := httptest.NewServer(DebugHandler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/allocs?debug=1",
		"/debug/pprof/cmdline",
	} {
		status, body := get(path)
		if status != http.StatusOK || len(body) == 0 {
			t.Errorf("%s: status %d, %d bytes", path, status, len(body))
		}
	}

	for _, path := range []string{"/debug/trace?seconds=0.05", "/debug/pprof/trace?seconds=0.05"} {
		status, body := get(path)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, status, body)
		}
		// A runtime/trace stream begins with the "go 1.xx trace" magic.
		if !strings.Contains(string(body[:min(64, len(body))]), "trace") {
			t.Errorf("%s: body does not look like a runtime trace: %q", path, body[:min(32, len(body))])
		}
	}
}

// TestDebugHandlerUnderLoad is the -race check for the pprof-enabled
// server: concurrent profile scrapes while verification jobs run through
// the service. Races between the debug surface and the engines (e.g. the
// trace regions added to the explicit scan loops) would surface here.
func TestDebugHandlerUnderLoad(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2}, true)
	api := httptest.NewServer(svc.Handler())
	defer api.Close()
	dbg := httptest.NewServer(DebugHandler())
	defer dbg.Close()

	var wg sync.WaitGroup
	// Verification load: distinct specs so the engine actually runs, with
	// cross-validation to touch the explicit engine's annotated paths.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := "protocol p" + string(rune('a'+i)) +
				"\ndomain 2\nwindow -1 0\nlegit x[-1] == x[0]\naction t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1\n"
			j, err := svc.Submit(Request{Spec: spec, Options: RequestOptions{CrossValidateMaxK: 5}})
			if err != nil {
				t.Error(err)
				return
			}
			waitDone(t, j)
		}(i)
	}
	// Concurrent scrapes, including an execution-trace capture.
	for _, path := range []string{
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/goroutine?debug=1",
		"/debug/trace?seconds=0.1",
	} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			resp, err := http.Get(dbg.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(path)
	}
	wg.Wait()
}
