package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// numberedSpec renders a tiny valid spec with a distinct protocol name, so
// each i is a distinct content address (the cache never short-circuits).
func numberedSpec(i int) string {
	return fmt.Sprintf("protocol p%03d\ndomain 2\nwindow 0 1\nlegit x[0] == x[1]\naction copy: x[0] != x[1] -> x[0] := x[1]\n", i)
}

// TestPanicIsolation: an engine panic (injected via the BeforeVerify hook,
// which runs inside the same recover scope) fails the attempt — with the
// panic value and stack in the job error — retries, and, because the
// fault is one-shot, the job then completes with a correct verdict. The
// process (the test binary) obviously survives.
func TestPanicIsolation(t *testing.T) {
	var once sync.Once
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		fired := false
		once.Do(func() { fired = true })
		if fired {
			panic("injected engine panic")
		}
		return nil
	}}
	svc := newTestService(t, Config{Workers: 1, MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Hooks: hooks}, true)

	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("job after panic+retry: %+v", v)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one panicked, one clean)", v.Attempts)
	}
	if got := svc.Metrics().JobsPanicked.Load(); got != 1 {
		t.Fatalf("JobsPanicked = %d, want 1", got)
	}
	if got := svc.Metrics().JobsRetried.Load(); got != 1 {
		t.Fatalf("JobsRetried = %d, want 1", got)
	}
}

// TestQuarantineAfterMaxAttempts: a job that panics on every attempt is
// quarantined — visible in Jobs(StateQuarantined), counted, and its error
// carries the panic value and a stack trace.
func TestQuarantineAfterMaxAttempts(t *testing.T) {
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		panic(fmt.Sprintf("poison pill on attempt %d", attempt))
	}}
	svc := newTestService(t, Config{Workers: 2, MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Hooks: hooks}, true)

	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateQuarantined {
		t.Fatalf("state = %s, want quarantined (%+v)", v.State, v)
	}
	if v.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", v.Attempts)
	}
	if !strings.Contains(v.Error, "poison pill on attempt 3") || !strings.Contains(v.Error, "runtime/debug") {
		t.Fatalf("quarantine error must carry panic value and stack, got %q", firstLine(v.Error))
	}
	if got := svc.Metrics().JobsQuarantined.Load(); got != 1 {
		t.Fatalf("JobsQuarantined = %d, want 1", got)
	}
	if got := svc.Metrics().JobsPanicked.Load(); got != 3 {
		t.Fatalf("JobsPanicked = %d, want 3", got)
	}
	quarantined := svc.Jobs(StateQuarantined)
	if len(quarantined) != 1 || quarantined[0].ID != j.ID() {
		t.Fatalf("Jobs(quarantined) = %+v", quarantined)
	}
	if st := svc.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestTransientErrorRetries: a hook error (the injected stand-in for
// transient cache-tier I/O) is retried like a panic, without a panic
// counter increment.
func TestTransientErrorRetries(t *testing.T) {
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		if attempt < 3 {
			return errors.New("injected I/O failure")
		}
		return nil
	}}
	svc := newTestService(t, Config{Workers: 1, MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Hooks: hooks}, true)

	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateDone || v.Attempts != 3 {
		t.Fatalf("job: %+v", v)
	}
	if got := svc.Metrics().JobsPanicked.Load(); got != 0 {
		t.Fatalf("JobsPanicked = %d, want 0", got)
	}
	if got := svc.Metrics().JobsRetried.Load(); got != 2 {
		t.Fatalf("JobsRetried = %d, want 2", got)
	}
}

// TestBackoffDelayShape pins the backoff arithmetic: exponential in the
// attempt, capped, jittered within [50%, 150%), and deterministic for a
// fixed (key, attempt).
func TestBackoffDelayShape(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		ideal := base << (attempt - 1)
		if ideal > 30*time.Second {
			ideal = 30 * time.Second
		}
		d := backoffDelay(base, attempt, "some-key")
		if d < ideal/2 || d >= ideal+ideal/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, ideal/2, ideal+ideal/2)
		}
		if d2 := backoffDelay(base, attempt, "some-key"); d2 != d {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d, d2)
		}
	}
	if backoffDelay(time.Second, 40, "k") >= 45*time.Second {
		t.Fatal("backoff must cap at 30s (plus jitter)")
	}
}

// TestRetryRespectsDeadline: when the next backoff would outlive the
// job's deadline, the job fails as a timeout immediately instead of
// sleeping toward a guaranteed failure.
func TestRetryRespectsDeadline(t *testing.T) {
	hooks := &Hooks{BeforeVerify: func(id string, attempt int) error {
		panic("always")
	}}
	svc := newTestService(t, Config{
		Workers: 1, MaxAttempts: 10, RetryBaseDelay: 10 * time.Second, Hooks: hooks,
	}, true)
	j, err := svc.Submit(Request{Spec: tinySpec, TimeoutMS: 500})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateFailed || !strings.Contains(v.Error, "retry backoff") {
		t.Fatalf("job: state=%s err=%q", v.State, firstLine(v.Error))
	}
	if got := svc.Metrics().JobsTimeout.Load(); got != 1 {
		t.Fatalf("JobsTimeout = %d, want 1", got)
	}
}

// TestDeterministicEngineErrorNotRetried: a deterministic failure (the
// engine's state-count guard) must not burn retry attempts.
func TestDeterministicEngineErrorNotRetried(t *testing.T) {
	svc := newTestService(t, Config{
		Workers: 1, MaxAttempts: 5, RetryBaseDelay: time.Millisecond,
		MemoryBudgetBytes: 4, DegradeOverBudget: true, // MaxStates clamp = 32 states
	}, true)
	// xval to K=6 needs 64 states > the 32-state degraded clamp.
	j, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 6}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateFailed || !strings.Contains(v.Error, "exceeds limit") {
		t.Fatalf("job: state=%s err=%q", v.State, v.Error)
	}
	if !v.Degraded {
		t.Fatalf("job must be marked degraded: %+v", v)
	}
	if v.Attempts != 1 {
		t.Fatalf("deterministic failure retried: attempts = %d", v.Attempts)
	}
}

// TestOverBudgetSubmit: with degradation off, a job whose estimate alone
// exceeds the budget is rejected with ErrOverBudget at submit time.
func TestOverBudgetSubmit(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, MemoryBudgetBytes: 16}, true)
	// Estimate for xval=6 on domain 2: five per-K tables of 8 bytes = 40.
	_, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 6}})
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("error = %v, want ErrOverBudget", err)
	}
	// A local-reasoning-only job estimates zero bytes and sails through.
	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if v := svc.Snapshot(j); v.State != StateDone {
		t.Fatalf("zero-estimate job: %+v", v)
	}
}

// TestDegradedOverBudgetStillCompletes: with degradation on, an
// over-budget job whose ring sizes happen to fit the clamp completes
// normally, flagged degraded.
func TestDegradedOverBudgetStillCompletes(t *testing.T) {
	// Budget 16 bytes -> clamp 128 states; xval=6 needs only 64 states,
	// but its summed estimate (40 bytes) exceeds the budget.
	svc := newTestService(t, Config{
		Workers: 1, MemoryBudgetBytes: 16, DegradeOverBudget: true,
	}, true)
	j, err := svc.Submit(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 6}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := svc.Snapshot(j)
	if v.State != StateDone || !v.Degraded {
		t.Fatalf("degraded job: %+v", v)
	}
	// Degradation is a resource decision, never a verdict change: the
	// verdict must match an unconstrained service's.
	ref := newTestService(t, Config{Workers: 1}, true)
	jr, err := ref.Submit(Request{Spec: tinySpec, Options: RequestOptions{CrossValidateMaxK: 6}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jr)
	if want := ref.Snapshot(jr).Result.Summary; v.Result.Summary != want {
		t.Fatalf("degraded verdict %q != reference %q", v.Result.Summary, want)
	}
}

// TestAdmissionGate unit-tests the budget semaphore: blocking, clamping,
// context cancel, release accounting.
func TestAdmissionGate(t *testing.T) {
	a := newAdmission(100)
	got, err := a.acquire(context.Background(), 60)
	if err != nil || got != 60 {
		t.Fatalf("first acquire: %d, %v", got, err)
	}
	// A second 60 must block; prove it by watching it complete only after
	// the release.
	released := make(chan struct{})
	acquired := make(chan uint64)
	go func() {
		n, err := a.acquire(context.Background(), 60)
		if err != nil {
			t.Error(err)
		}
		select {
		case <-released:
		default:
			t.Error("second acquire returned before release")
		}
		acquired <- n
	}()
	time.Sleep(20 * time.Millisecond)
	close(released)
	a.release(60)
	if n := <-acquired; n != 60 {
		t.Fatalf("second acquire reserved %d", n)
	}
	a.release(60)
	if a.used() != 0 {
		t.Fatalf("used = %d after releases", a.used())
	}

	// Over-budget requests clamp to the whole budget (degraded jobs
	// serialize rather than deadlock).
	if n, err := a.acquire(context.Background(), 1000); err != nil || n != 100 {
		t.Fatalf("clamped acquire: %d, %v", n, err)
	}
	// And a waiter gives up when its context dies.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-bound acquire error = %v", err)
	}
	a.release(100)

	// Budget 0 = off: nothing reserved, never blocks.
	off := newAdmission(0)
	if n, err := off.acquire(context.Background(), 1<<40); err != nil || n != 0 {
		t.Fatalf("unbudgeted acquire: %d, %v", n, err)
	}
}

// TestCacheWriteErrorSurfaced: an injected disk-tier failure is counted,
// surfaced in Stats, and does not fail the job (the memory tier still
// serves the result).
func TestCacheWriteErrorSurfaced(t *testing.T) {
	hooks := &Hooks{CacheWrite: func(key string) error {
		return errors.New("disk full")
	}}
	svc := newTestService(t, Config{Workers: 1, CacheDir: t.TempDir(), Hooks: hooks}, true)
	j, err := svc.Submit(Request{Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if v := svc.Snapshot(j); v.State != StateDone {
		t.Fatalf("job must succeed despite the cache write failure: %+v", v)
	}
	if got := svc.Metrics().CacheWriteErrors.Load(); got != 1 {
		t.Fatalf("CacheWriteErrors = %d, want 1", got)
	}
	if st := svc.Stats(); st.CacheWriteErrors != 1 {
		t.Fatalf("Stats.CacheWriteErrors = %d, want 1", st.CacheWriteErrors)
	}
	// The memory tier still answers the repeat submission.
	j2, err := svc.Submit(Request{Spec: tinySpecVariant})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if v := svc.Snapshot(j2); !v.Cached {
		t.Fatalf("memory tier lost the result: %+v", v)
	}
}
