package dsl

import (
	"strings"
	"testing"
)

// FuzzParse hardens the parser against arbitrary input: it must never panic
// and must either produce a protocol or a descriptive error. The seed corpus
// covers every statement form; run with `go test -fuzz FuzzParse ./internal/dsl`
// for continuous fuzzing (the seeds alone run as ordinary tests).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"protocol p\ndomain 2\nwindow -1 0\nlegit x[0] == x[-1]\n",
		"protocol p\ndomain values a b c\nwindow -1 1\nlegit x[0] != b\naction t: x[0] == a -> x[0] := b | x[0] := c\n",
		"protocol p\ndomain 3\nwindow -2 0\nlegit (x[0] + x[-1]) % 3 == 1 && !(x[-2] < 2)\n",
		"# comment only\n",
		"protocol p extra tokens",
		"action before: domain",
		"protocol p\ndomain 2\nwindow 0 0\nlegit 1 ||\n 0\n",
		strings.Repeat("(", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err == nil && p == nil {
			t.Fatal("nil protocol without error")
		}
		if err != nil && err.Error() == "" {
			t.Fatal("empty error message")
		}
	})
}

// FuzzParseExpr does the same for standalone expressions.
func FuzzParseExpr(f *testing.F) {
	for _, s := range []string{
		"x[0] == 1", "x[-1] + 2 * x[0] % 3 != 0", "!(x[0] < x[-1]) || 1 == 1",
		"((((", "x[", "1 ==",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseExpr(src, nil, -1, 0)
	})
}
