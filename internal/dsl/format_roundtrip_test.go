package dsl

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// normalized returns a copy of s with source line numbers zeroed: Format is
// canonical up to where the declarations sat in the original file.
func normalized(s *Spec) *Spec {
	c := *s
	c.Actions = append([]actionDef(nil), s.Actions...)
	for i := range c.Actions {
		c.Actions[i].line = 0
	}
	return &c
}

// requireRoundTrip asserts the canonical-format contract on one source:
// parse → Format → parse yields an identical AST (up to line numbers), and
// Format is a fixpoint (formatting the reparse reproduces the text).
func requireRoundTrip(t *testing.T, label, src string) {
	t.Helper()
	s1, err := ParseSpec(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	f1 := Format(s1)
	s2, err := ParseSpec(f1)
	if err != nil {
		t.Fatalf("%s: canonical output does not reparse: %v\n%s", label, err, f1)
	}
	if f2 := Format(s2); f2 != f1 {
		t.Fatalf("%s: Format is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", label, f1, f2)
	}
	if !reflect.DeepEqual(normalized(s1), normalized(s2)) {
		t.Fatalf("%s: parse(Format(spec)) AST differs from spec\noriginal: %#v\nreparsed: %#v", label, s1, s2)
	}
	// The reparsed spec must still compile to a protocol.
	if _, err := s2.Protocol(); err != nil {
		t.Fatalf("%s: reparsed spec does not compile: %v", label, err)
	}
}

// Every shipped spec must survive parse → Format → parse with an identical
// AST: the service's content-addressed cache keys on Format, so two
// renderings of the same protocol must collide.
func TestFormatRoundTripsEveryShippedSpec(t *testing.T) {
	dir := specsDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		requireRoundTrip(t, e.Name(), string(data))
		checked++
	}
	if checked < 5 {
		t.Fatalf("expected at least 5 shipped specs, checked %d", checked)
	}
}

// Hand-picked sources exercising the corners the shipped specs may miss:
// whitespace and comment noise, nondeterministic assignments, value names
// in expressions, unary operators, and operator-precedence chains.
func TestFormatRoundTripCorners(t *testing.T) {
	sources := map[string]string{
		"noise": "protocol  p \n\n  domain 3\nwindow -1 0\n  legit x[0] == x[-1]\naction a : x[0] != x[-1] -> x[0] := x[-1]\n",
		"nondet": "protocol p\ndomain 4\nwindow 0 1\nlegit x[0] <= x[1]\n" +
			"action hop: x[0] > x[1] -> x[0] := 0 | x[0] := x[1] | x[0] := (x[1] + 1) % 4\n",
		"names": "protocol p\ndomain values idle busy done\nwindow -1 1\nlegit !(x[0] == busy && x[1] == busy)\n" +
			"action calm: x[0] == busy && x[-1] == done -> x[0] := idle\n",
		"precedence": "protocol p\ndomain 5\nwindow 0 1\nlegit x[0] + 2 * x[1] - 1 < 4 || x[0] == x[1]\n" +
			"action mix: !(x[0] == 0) && x[1] >= 1 -> x[0] := -x[1] % 5\n",
	}
	for label, src := range sources {
		requireRoundTrip(t, label, src)
	}
}

// Formatting twice from two textual variants of the same spec must yield
// the same canonical bytes — the cache-key property, stated directly.
func TestFormatCollapsesTextualVariants(t *testing.T) {
	a := "protocol p\ndomain 2\nwindow 0 1\nlegit (x[0]) == (x[1])\naction f: (x[0] != x[1]) -> x[0] := (x[1])\n"
	b := "protocol   p\ndomain   2\nwindow 0   1\nlegit x[0]==x[1]\naction f :x[0]!=x[1]->x[0]:=x[1]\n"
	sa, err := ParseSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if Format(sa) != Format(sb) {
		t.Fatalf("textual variants format differently:\n%s\nvs\n%s", Format(sa), Format(sb))
	}
}
