package dsl

import (
	"fmt"
	"strings"
)

// Format renders the spec to canonical guarded-commands text. Canonical
// means a fixpoint of parse: parsing the output yields an AST identical to
// s (up to source line numbers), and formatting that AST reproduces the
// output byte for byte. Declarations appear in a fixed order (protocol,
// domain, window, legit, actions in declaration order), expressions are
// fully parenthesized, and value names are resolved to their indices — so
// two specs denote the same protocol text-independently iff their Format
// outputs (plus value-name tables) match. The service layer keys its
// content-addressed result cache on this rendering, and the round-trip
// property test in format_roundtrip_test.go pins the contract for every
// shipped spec.
func Format(s *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s\n", s.Name)
	if s.ValueNames != nil {
		fmt.Fprintf(&b, "domain values %s\n", strings.Join(s.ValueNames, " "))
	} else {
		fmt.Fprintf(&b, "domain %d\n", s.Domain)
	}
	fmt.Fprintf(&b, "window %d %d\n", s.Lo, s.Hi)
	fmt.Fprintf(&b, "legit %s\n", s.Legit.String())
	for _, a := range s.Actions {
		fmt.Fprintf(&b, "action %s: %s ->", a.name, a.guard.String())
		for i, as := range a.assigns {
			if i > 0 {
				b.WriteString(" |")
			}
			fmt.Fprintf(&b, " x[0] := %s", as.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Source renders the spec back to canonical guarded-commands text; it is
// Format as a method (kept for callers that read spec.Source()).
func (s *Spec) Source() string { return Format(s) }
