package dsl

import (
	"fmt"
	"strings"
)

// Source renders the spec back to canonical guarded-commands text. The
// output re-parses to an equivalent protocol (same transitions, same
// legitimacy), which the round-trip tests assert.
func (s *Spec) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s\n", s.Name)
	if s.ValueNames != nil {
		fmt.Fprintf(&b, "domain values %s\n", strings.Join(s.ValueNames, " "))
	} else {
		fmt.Fprintf(&b, "domain %d\n", s.Domain)
	}
	fmt.Fprintf(&b, "window %d %d\n", s.Lo, s.Hi)
	fmt.Fprintf(&b, "legit %s\n", s.Legit.String())
	for _, a := range s.Actions {
		fmt.Fprintf(&b, "action %s: %s ->", a.name, a.guard.String())
		for i, as := range a.assigns {
			if i > 0 {
				b.WriteString(" |")
			}
			fmt.Fprintf(&b, " x[0] := %s", as.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}
