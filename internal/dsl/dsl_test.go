package dsl

import (
	"reflect"
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
)

const agreementSrc = `
# Binary agreement, Example 5.2 of the paper.
protocol agreement
domain 2
window -1 0
legit x[-1] == x[0]

action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1
action t10: x[-1] == 0 && x[0] == 1 -> x[0] := 0
`

const matchingSrc = `
protocol matching
domain values left self right
window -1 1
legit (x[0] == right && x[1] == left) || (x[-1] == right && x[0] == left) ||
      (x[-1] == left && x[0] == self && x[1] == right)
action A1: x[-1] == left && x[0] != self && x[1] == right -> x[0] := self
action A2: x[-1] == self && x[0] == self && x[1] == self -> x[0] := right | x[0] := left
`

const sumNotTwoSrc = `
protocol sum-not-two
domain 3
window -1 0
legit x[0] + x[-1] != 2
action up:   x[0] + x[-1] == 2 && x[0] != 2 -> x[0] := (x[0] + 1) % 3
action down: x[0] + x[-1] == 2 && x[0] == 2 -> x[0] := (x[0] - 1) % 3
`

func TestParseAgreementMatchesHandWritten(t *testing.T) {
	p, err := Parse(agreementSrc)
	if err != nil {
		t.Fatal(err)
	}
	hand := protocols.AgreementBoth()
	ps, hs := p.Compile(), hand.Compile()
	if !reflect.DeepEqual(ps.Trans, hs.Trans) {
		t.Fatalf("transitions differ:\nparsed: %v\nhand:   %v", ps.Trans, hs.Trans)
	}
	for s := 0; s < ps.N(); s++ {
		if ps.Legit[s] != hs.Legit[s] {
			t.Fatalf("legitimacy differs at state %d", s)
		}
	}
	// And the verdict pipeline runs identically.
	rep, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != ltg.VerdictPotentialLivelock {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
}

func TestParseMatchingValueNames(t *testing.T) {
	p, err := Parse(matchingSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Domain() != 3 {
		t.Fatalf("domain = %d", p.Domain())
	}
	lo, hi := p.Window()
	if lo != -1 || hi != 1 {
		t.Fatalf("window [%d,%d]", lo, hi)
	}
	// Legitimacy agrees with the hand-written matching LC on all 27 states.
	hand := protocols.MatchingStateSpace()
	for s := 0; s < 27; s++ {
		if p.Legitimate(core.LocalState(s)) != hand.Legitimate(core.LocalState(s)) {
			t.Fatalf("LC differs at %s", hand.FormatState(core.LocalState(s)))
		}
	}
	// A2's nondeterministic assignment parsed into two choices.
	sys := p.Compile()
	sss := p.Encode(core.View{1, 1, 1})
	if got := len(sys.Succ[sss]); got != 2 {
		t.Fatalf("sss successors = %d, want 2", got)
	}
}

func TestParseSumNotTwoPipeline(t *testing.T) {
	p, err := Parse(sumNotTwoSrc)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := rcg.Build(p.Compile()).CheckDeadlockFreedom(0)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Free {
		t.Fatal("parsed sum-not-two solution must be deadlock-free")
	}
	ll, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ll.Verdict != ltg.VerdictFree {
		t.Fatalf("verdict = %v (%s)", ll.Verdict, ll.Reason)
	}
	for k := 3; k <= 6; k++ {
		in, err := explicit.NewInstance(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if !in.CheckStrongConvergence().Converges {
			t.Fatalf("K=%d: parsed protocol must converge", k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing protocol", "domain 2\nwindow -1 0\nlegit x[0] == 0\n", "missing 'protocol'"},
		{"missing legit", "protocol p\ndomain 2\nwindow -1 0\n", "missing 'legit'"},
		{"legit before window", "protocol p\ndomain 2\nlegit x[0] == 0\nwindow -1 0\n", "must come after"},
		{"unknown keyword", "protocol p\nfrobnicate 3\n", "unknown keyword"},
		{"bad char", "protocol p\ndomain 2\nwindow -1 0\nlegit x[0] @ 1\n", "unexpected character"},
		{"out of window", "protocol p\ndomain 2\nwindow -1 0\nlegit x[1] == 0\n", "outside the window"},
		{"unknown value", "protocol p\ndomain 2\nwindow -1 0\nlegit x[0] == bogus\n", "unknown value name"},
		{"write non-own", "protocol p\ndomain 2\nwindow -1 0\nlegit 1\naction a: 1 == 1 -> x[-1] := 0\n", "only write their own"},
		{"trailing junk", "protocol p extra\n", "trailing input"},
		{"bad action syntax", "protocol p\ndomain 2\nwindow -1 0\nlegit 1\naction a 1 -> x[0] := 0\n", "expected \":\""},
		{"missing arrow", "protocol p\ndomain 2\nwindow -1 0\nlegit 1\naction a: 1\n", "expected \"->\""},
		{"domain junk", "protocol p\ndomain fish\n", "expected a size or 'values'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestExpressionSemantics(t *testing.T) {
	// Exercise operator semantics through protocol legitimacy.
	cases := []struct {
		expr string
		view core.View
		want bool
	}{
		{"x[0] + x[-1] * 2 == 4", core.View{2, 0}, true}, // precedence: 0 + 2*2
		{"(x[0] + x[-1]) * 2 == 4", core.View{2, 0}, true},
		{"!(x[0] == 1)", core.View{0, 0}, true},
		{"x[0] != x[-1] || x[0] == 2", core.View{2, 2}, true},
		{"x[0] >= 1 && x[0] <= 2", core.View{0, 2}, true},
		{"x[0] - 1 == 1", core.View{0, 2}, true},
		{"(x[0] - 1) % 3 == 2", core.View{0, 0}, true}, // Euclidean mod: -1 % 3 = 2
		{"-x[0] == -2", core.View{0, 2}, true},
		{"x[0] < x[-1]", core.View{2, 1}, true},
		{"x[0] > x[-1]", core.View{1, 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			src := "protocol p\ndomain 3\nwindow -1 0\nlegit " + tc.expr + "\n"
			p, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.LegitimateView(tc.view); got != tc.want {
				t.Fatalf("%s on %v = %v, want %v", tc.expr, tc.view, got, tc.want)
			}
		})
	}
}

func TestLineContinuation(t *testing.T) {
	src := "protocol p\ndomain 2\nwindow -1 0\nlegit x[0] == 0 ||\n      x[0] == 1\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.LegitimateView(core.View{0, 1}) {
		t.Fatal("continued legit expression wrong")
	}
}

func TestParseSpecRoundTripFields(t *testing.T) {
	spec, err := ParseSpec(matchingSrc)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "matching" || spec.Domain != 3 || len(spec.Actions) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	if !reflect.DeepEqual(spec.ValueNames, []string{"left", "self", "right"}) {
		t.Fatalf("value names = %v", spec.ValueNames)
	}
	if spec.Actions[1].name != "A2" || len(spec.Actions[1].assigns) != 2 {
		t.Fatalf("A2 = %+v", spec.Actions[1])
	}
}

func TestParseFileAndMissingFile(t *testing.T) {
	if _, err := ParseFile("/nonexistent/file.gc"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestExprString(t *testing.T) {
	spec, err := ParseSpec("protocol p\ndomain 2\nwindow -1 0\nlegit !(x[0] == 1) && x[-1] != 0\n")
	if err != nil {
		t.Fatal(err)
	}
	s := spec.Legit.String()
	for _, want := range []string{"x[0]", "x[-1]", "&&", "!"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// Source() must round-trip: re-parsing the formatted spec yields an
// equivalent protocol (same transition relation and legitimacy bits).
func TestSourceRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"agreement":   agreementSrc,
		"matching":    matchingSrc,
		"sum-not-two": sumNotTwoSrc,
	} {
		t.Run(name, func(t *testing.T) {
			spec, err := ParseSpec(src)
			if err != nil {
				t.Fatal(err)
			}
			rendered := spec.Source()
			p1, err := spec.Protocol()
			if err != nil {
				t.Fatal(err)
			}
			p2, err := Parse(rendered)
			if err != nil {
				t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, rendered)
			}
			s1, s2 := p1.Compile(), p2.Compile()
			if !reflect.DeepEqual(s1.Trans, s2.Trans) {
				t.Fatalf("transitions differ after round trip:\n%v\n%v\nrendered:\n%s", s1.Trans, s2.Trans, rendered)
			}
			for st := 0; st < s1.N(); st++ {
				if s1.Legit[st] != s2.Legit[st] {
					t.Fatalf("legitimacy differs at state %d\nrendered:\n%s", st, rendered)
				}
			}
		})
	}
}

// Value names survive formatting (the paper's left/self/right notation).
func TestSourceKeepsValueNames(t *testing.T) {
	spec, err := ParseSpec(matchingSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := spec.Source()
	if !strings.Contains(out, "domain values left self right") {
		t.Fatalf("formatted source lost value names:\n%s", out)
	}
}
