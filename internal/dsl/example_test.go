package dsl_test

import (
	"fmt"

	"paramring/internal/dsl"
	"paramring/internal/rcg"
)

// Define a protocol in the guarded-commands language and run the Theorem
// 4.2 analysis on it.
func ExampleParse() {
	p, err := dsl.Parse(`
protocol no-adjacent-ones
domain 2
window -1 0
legit !(x[-1] == 1 && x[0] == 1)
action fix: x[-1] == 1 && x[0] == 1 -> x[0] := 0
`)
	if err != nil {
		panic(err)
	}
	rep, err := rcg.Build(p.Compile()).CheckDeadlockFreedom(0)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name(), "deadlock-free for every K:", rep.Free)
	// Output:
	// no-adjacent-ones deadlock-free for every K: true
}
