package dsl

import (
	"math/rand"
	"testing"

	"paramring/internal/core"
)

// randomExpr builds a random expression AST over the window [lo, hi] and
// domain d.
func randomExpr(rng *rand.Rand, depth, lo, hi, d int) expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return intLit{v: rng.Intn(d)}
		}
		return varRef{offset: lo + rng.Intn(hi-lo+1)}
	}
	switch rng.Intn(8) {
	case 0:
		return unary{op: "!", x: randomExpr(rng, depth-1, lo, hi, d)}
	case 1:
		return unary{op: "-", x: randomExpr(rng, depth-1, lo, hi, d)}
	default:
		ops := []string{"+", "-", "*", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
		return binary{
			op: ops[rng.Intn(len(ops))],
			l:  randomExpr(rng, depth-1, lo, hi, d),
			r:  randomExpr(rng, depth-1, lo, hi, d),
		}
	}
}

// Property: rendering a random AST with String() and re-parsing yields an
// expression with identical evaluation on every view — the parser and the
// printer agree on precedence and associativity.
func TestExprPrintParseRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1789))
	const lo, hi, d = -1, 0, 3
	n := 1
	for i := 0; i <= hi-lo; i++ {
		n *= d
	}
	for trial := 0; trial < 400; trial++ {
		e := randomExpr(rng, 4, lo, hi, d)
		src := e.String()
		parsed, err := ParseExpr(src, nil, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: %q does not re-parse: %v", trial, src, err)
		}
		for s := 0; s < n; s++ {
			view := core.Decode(core.LocalState(s), d, hi-lo+1)
			want := e.eval(view, lo) != 0
			if got := parsed(view); got != want {
				t.Fatalf("trial %d: %q evaluates differently on %v: got %v want %v",
					trial, src, view, got, want)
			}
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	f, err := ParseExpr("x[0] == 1 || x[-1] == left", []string{"left", "right"}, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !f(core.View{0, 1}) || f(core.View{1, 0}) {
		t.Fatal("ParseExpr evaluation wrong")
	}
	if _, err := ParseExpr("x[0] ==", nil, -1, 0); err == nil {
		t.Fatal("incomplete expression must error")
	}
	if _, err := ParseExpr("x[0] == 1 bogus", nil, -1, 0); err == nil {
		t.Fatal("trailing input must error")
	}
	if _, err := ParseExpr("x[5] == 1", nil, -1, 0); err == nil {
		t.Fatal("out-of-window ref must error")
	}
}
