package dsl

import (
	"fmt"
	"os"
	"strconv"

	"paramring/internal/core"
)

// Parse parses a protocol definition and compiles it.
func Parse(src string) (*core.Protocol, error) {
	spec, err := ParseSpec(src)
	if err != nil {
		return nil, err
	}
	return spec.Protocol()
}

// ParseFile parses a protocol definition from a file.
func ParseFile(path string) (*core.Protocol, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dsl: %w", err)
	}
	p, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("dsl: %s: %w", path, err)
	}
	return p, nil
}

// ParseSpec parses without compiling (exposed for tooling and tests).
func ParseSpec(src string) (*Spec, error) {
	spec := &Spec{Lo: 1} // Lo>Hi marks "window not yet set"
	spec.Hi = 0
	seenWindow := false
	seenDomain := false
	for _, ll := range logicalLines(src) {
		toks, err := lexLine(ll.text, ll.line)
		if err != nil {
			return nil, err
		}
		if len(toks) == 0 {
			continue
		}
		p := &parser{toks: toks, line: ll.line, spec: spec}
		head := p.next()
		if head.kind != tokName {
			return nil, p.errf(head, "expected a keyword, got %q", head.text)
		}
		switch head.text {
		case "protocol":
			name := p.next()
			if name.kind != tokName {
				return nil, p.errf(name, "expected protocol name")
			}
			spec.Name = name.text
		case "domain":
			seenDomain = true
			t := p.peek()
			if t.kind == tokInt {
				p.next()
				n, _ := strconv.Atoi(t.text)
				spec.Domain = n
			} else if t.kind == tokName && t.text == "values" {
				p.next()
				for p.peek().kind == tokName {
					spec.ValueNames = append(spec.ValueNames, p.next().text)
				}
				spec.Domain = len(spec.ValueNames)
			} else {
				return nil, p.errf(t, "expected a size or 'values'")
			}
		case "window":
			seenWindow = true
			lo, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			hi, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			spec.Lo, spec.Hi = lo, hi
		case "legit":
			if !seenDomain || !seenWindow {
				return nil, fmt.Errorf("line %d: 'legit' must come after 'domain' and 'window'", ll.line)
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			spec.Legit = e
		case "action":
			if !seenDomain || !seenWindow {
				return nil, fmt.Errorf("line %d: 'action' must come after 'domain' and 'window'", ll.line)
			}
			if err := p.parseAction(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(head, "unknown keyword %q", head.text)
		}
		if rest := p.peek(); rest.kind != tokEOF {
			return nil, p.errf(rest, "trailing input %q", rest.text)
		}
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("dsl: missing 'protocol' declaration")
	}
	if spec.Legit == nil {
		return nil, fmt.Errorf("dsl: missing 'legit' declaration")
	}
	return spec, nil
}

type parser struct {
	toks []token
	i    int
	line int
	spec *Spec
}

func (p *parser) peek() token {
	if p.i >= len(p.toks) {
		return token{kind: tokEOF, text: "<end of line>"}
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) accept(text string) bool {
	if p.peek().text == text && p.peek().kind != tokEOF {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf(p.peek(), "expected %q", text)
	}
	return nil
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("line %d:%d: %s", p.line, t.pos+1, fmt.Sprintf(format, args...))
}

func (p *parser) parseSignedInt() (int, error) {
	neg := p.accept("-")
	t := p.next()
	if t.kind != tokInt {
		return 0, p.errf(t, "expected an integer")
	}
	n, _ := strconv.Atoi(t.text)
	if neg {
		n = -n
	}
	return n, nil
}

func (p *parser) parseAction() error {
	name := p.next()
	if name.kind != tokName {
		return p.errf(name, "expected action name")
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	guard, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expect("->"); err != nil {
		return err
	}
	var assigns []expr
	for {
		if err := p.expect("x"); err != nil {
			return err
		}
		if err := p.expect("["); err != nil {
			return err
		}
		off, err := p.parseSignedInt()
		if err != nil {
			return err
		}
		if off != 0 {
			return fmt.Errorf("line %d: processes may only write their own variable x[0], not x[%d]", p.line, off)
		}
		if err := p.expect("]"); err != nil {
			return err
		}
		if err := p.expect(":="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		assigns = append(assigns, e)
		if !p.accept("|") {
			break
		}
	}
	p.spec.Actions = append(p.spec.Actions, actionDef{
		name: name.text, guard: guard, assigns: assigns, line: p.line,
	})
	return nil
}

// Expression parsing, precedence climbing:
//
//	or   := and { "||" and }
//	and  := cmp { "&&" cmp }
//	cmp  := sum [ (==|!=|<|<=|>|>=) sum ]
//	sum  := prod { (+|-) prod }
//	prod := unary { (*|%) unary }
//	unary:= [!|-] atom
//	atom := INT | NAME | x [ INT ] | "(" or ")"
func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binary{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return binary{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseSum() (expr, error) {
	l, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseProd()
			if err != nil {
				return nil, err
			}
			l = binary{op: "+", l: l, r: r}
		case p.accept("-"):
			r, err := p.parseProd()
			if err != nil {
				return nil, err
			}
			l = binary{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseProd() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{op: "*", l: l, r: r}
		case p.accept("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{op: "%", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{op: "!", x: x}, nil
	}
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{op: "-", x: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokInt:
		n, _ := strconv.Atoi(t.text)
		return intLit{v: n}, nil
	case t.kind == tokName && t.text == "x":
		if err := p.expect("["); err != nil {
			return nil, err
		}
		off, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if off < p.spec.Lo || off > p.spec.Hi {
			return nil, fmt.Errorf("line %d: x[%d] is outside the window [%d,%d]", p.line, off, p.spec.Lo, p.spec.Hi)
		}
		return varRef{offset: off}, nil
	case t.kind == tokName:
		// A value name resolves to its index.
		for i, n := range p.spec.ValueNames {
			if n == t.text {
				return intLit{v: i}, nil
			}
		}
		return nil, p.errf(t, "unknown value name %q", t.text)
	case t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(t, "expected an expression, got %q", t.text)
	}
}

// ParseExpr parses a standalone boolean/arithmetic expression over the
// window [lo, hi] with the given domain value names (may be nil). Used by
// tools that take predicates on the command line (e.g. a tree root's
// legitimacy predicate).
func ParseExpr(src string, valueNames []string, lo, hi int) (func(v core.View) bool, error) {
	toks, err := lexLine(src, 1)
	if err != nil {
		return nil, err
	}
	spec := &Spec{Lo: lo, Hi: hi, ValueNames: valueNames}
	p := &parser{toks: toks, line: 1, spec: spec}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if rest := p.peek(); rest.kind != tokEOF {
		return nil, p.errf(rest, "trailing input %q", rest.text)
	}
	return func(v core.View) bool { return e.eval(v, lo) != 0 }, nil
}
