package dsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
)

// specsDir locates the repository's specs/ directory from the test binary.
func specsDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		candidate := filepath.Join(dir, "specs")
		if st, err := os.Stat(candidate); err == nil && st.IsDir() {
			return candidate
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Skip("specs directory not found")
		}
		dir = parent
	}
}

// Every shipped spec file must parse and compile.
func TestAllShippedSpecsParse(t *testing.T) {
	dir := specsDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gc") {
			continue
		}
		p, err := ParseFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if p.Name() == "" {
			t.Fatalf("%s: empty protocol name", e.Name())
		}
		parsed++
	}
	if parsed < 5 {
		t.Fatalf("expected at least 5 shipped specs, parsed %d", parsed)
	}
}

// The shipped matchingA.gc must behave exactly like the hand-written
// Example 4.2 protocol: identical local transitions and legitimacy.
func TestShippedMatchingAMatchesHandWritten(t *testing.T) {
	p, err := ParseFile(filepath.Join(specsDir(t), "matchingA.gc"))
	if err != nil {
		t.Fatal(err)
	}
	hand := protocols.MatchingA()
	ps, hs := p.Compile(), hand.Compile()
	// Action names differ (A3 split into A3a/A3b etc.), so compare the
	// transition relation as (src, dst) pairs.
	pairs := func(sys *core.System) map[[2]core.LocalState]bool {
		m := map[[2]core.LocalState]bool{}
		for _, tr := range sys.Trans {
			m[[2]core.LocalState{tr.Src, tr.Dst}] = true
		}
		return m
	}
	pp, hh := pairs(ps), pairs(hs)
	if len(pp) != len(hh) {
		t.Fatalf("transition counts differ: %d vs %d", len(pp), len(hh))
	}
	for k := range hh {
		if !pp[k] {
			t.Fatalf("parsed protocol missing transition %v", k)
		}
	}
	for s := 0; s < ps.N(); s++ {
		if ps.Legit[s] != hs.Legit[s] {
			t.Fatalf("legitimacy differs at %s", hand.FormatState(core.LocalState(s)))
		}
	}
	// And it model-checks identically at K=6.
	in, err := explicit.NewInstance(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !in.CheckStrongConvergence().Converges {
		t.Fatal("shipped matchingA must converge at K=6")
	}
}

func TestShippedMISMatchesHandWritten(t *testing.T) {
	p, err := ParseFile(filepath.Join(specsDir(t), "mis.gc"))
	if err != nil {
		t.Fatal(err)
	}
	hand := protocols.MaxIndependentSet()
	ps, hs := p.Compile(), hand.Compile()
	for s := 0; s < ps.N(); s++ {
		if ps.Legit[s] != hs.Legit[s] {
			t.Fatalf("legitimacy differs at state %d", s)
		}
		if len(ps.Succ[s]) != len(hs.Succ[s]) {
			t.Fatalf("successors differ at state %d", s)
		}
	}
}
