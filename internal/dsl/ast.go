package dsl

import (
	"fmt"

	"paramring/internal/core"
)

// expr is an expression AST node evaluated against a local view. Boolean
// results are encoded as 0/1 integers so comparisons and logic compose.
type expr interface {
	// eval computes the node's value; view[i] is the variable at window
	// index i (offset lo+i).
	eval(view core.View, lo int) int
	// String renders the node back to source-like text.
	String() string
}

type intLit struct{ v int }

func (e intLit) eval(core.View, int) int { return e.v }
func (e intLit) String() string          { return fmt.Sprintf("%d", e.v) }

// varRef is x[offset].
type varRef struct{ offset int }

func (e varRef) eval(view core.View, lo int) int { return view[e.offset-lo] }
func (e varRef) String() string                  { return fmt.Sprintf("x[%d]", e.offset) }

type unary struct {
	op string // "!" or "-"
	x  expr
}

func (e unary) eval(view core.View, lo int) int {
	v := e.x.eval(view, lo)
	switch e.op {
	case "!":
		return boolToInt(v == 0)
	case "-":
		return -v
	}
	panic("dsl: unknown unary operator " + e.op)
}
func (e unary) String() string { return e.op + e.x.String() }

type binary struct {
	op   string
	l, r expr
}

func (e binary) eval(view core.View, lo int) int {
	l := e.l.eval(view, lo)
	// Short circuit the boolean operators.
	switch e.op {
	case "&&":
		if l == 0 {
			return 0
		}
		return boolToInt(e.r.eval(view, lo) != 0)
	case "||":
		if l != 0 {
			return 1
		}
		return boolToInt(e.r.eval(view, lo) != 0)
	}
	r := e.r.eval(view, lo)
	switch e.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "%":
		if r == 0 {
			return 0 // mod-0 is defined as 0 rather than panicking mid-check
		}
		return ((l % r) + r) % r
	case "==":
		return boolToInt(l == r)
	case "!=":
		return boolToInt(l != r)
	case "<":
		return boolToInt(l < r)
	case "<=":
		return boolToInt(l <= r)
	case ">":
		return boolToInt(l > r)
	case ">=":
		return boolToInt(l >= r)
	}
	panic("dsl: unknown binary operator " + e.op)
}

func (e binary) String() string {
	return "(" + e.l.String() + " " + e.op + " " + e.r.String() + ")"
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// actionDef is one parsed guarded command.
type actionDef struct {
	name    string
	guard   expr
	assigns []expr // nondeterministic choices for the new value of x[0]
	line    int
}

// Spec is a parsed protocol definition.
type Spec struct {
	Name       string
	Domain     int
	ValueNames []string // nil when "domain N" was used
	Lo, Hi     int
	Legit      expr
	Actions    []actionDef
}

// Protocol compiles the parsed spec into a core.Protocol, validating value
// ranges lazily (an action writing outside the domain panics at Compile
// time with the action name, matching core's behavior).
func (s *Spec) Protocol() (*core.Protocol, error) {
	lo := s.Lo
	legit := s.Legit
	actions := make([]core.Action, len(s.Actions))
	for i, a := range s.Actions {
		guard := a.guard
		assigns := a.assigns
		actions[i] = core.Action{
			Name: a.name,
			Guard: func(v core.View) bool {
				return guard.eval(v, lo) != 0
			},
			Next: func(v core.View) []int {
				out := make([]int, 0, len(assigns))
				for _, as := range assigns {
					out = append(out, as.eval(v, lo))
				}
				return out
			},
		}
	}
	return core.New(core.Config{
		Name:       s.Name,
		Domain:     s.Domain,
		ValueNames: s.ValueNames,
		Lo:         s.Lo,
		Hi:         s.Hi,
		Actions:    actions,
		Legit: func(v core.View) bool {
			return legit.eval(v, lo) != 0
		},
	})
}
