// Package dsl parses a small guarded-commands language for defining
// parameterized ring protocols in text files, mirroring the paper's
// Dijkstra-style notation. It lets the CLI tools verify and synthesize
// protocols without writing Go.
//
// Example (binary agreement, Example 5.2 of the paper):
//
//	protocol agreement
//	domain 2
//	window -1 0
//	legit x[-1] == x[0]
//
//	action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1
//	action t10: x[-1] == 0 && x[0] == 1 -> x[0] := 0
//
// Example (maximal matching fragment with named values):
//
//	protocol matching
//	domain values left self right
//	window -1 1
//	legit (x[0] == right && x[1] == left) || (x[-1] == right && x[0] == left) ||
//	      (x[-1] == left && x[0] == self && x[1] == right)
//	action A1: x[-1] == left && x[0] != self && x[1] == right -> x[0] := self
//
// Grammar (line oriented; '#' starts a comment; a trailing '||', '&&' or
// ',' continues onto the next line):
//
//	file     = { stmt }
//	stmt     = "protocol" NAME
//	         | "domain" INT | "domain" "values" NAME {NAME}
//	         | "window" INT INT
//	         | "legit" expr
//	         | "action" NAME ":" expr "->" assign {"|" assign}
//	assign   = "x[0]" ":=" expr
//	expr     = or-expr with ||, &&, !, comparisons (== != < <= > >=),
//	           arithmetic (+ - * %), integers, value names, x[OFFSET]
package dsl

import (
	"fmt"
	"strings"
)

// token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokName
	tokInt
	tokPunct // one of ( ) [ ] : , | and multi-char operators
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in the logical line, for error messages
}

// lexer tokenizes one logical line.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

var operators = []string{
	":=", "->", "||", "&&", "==", "!=", "<=", ">=",
	"(", ")", "[", "]", ":", ",", "|", "!", "<", ">", "+", "-", "*", "%",
}

func lexLine(line string, lineNo int) ([]token, error) {
	l := &lexer{src: line, line: lineNo}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.pos = len(l.src)
		case isDigit(c):
			start := l.pos
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokInt, l.src[start:l.pos], start)
		case isNameStart(c):
			start := l.pos
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokName, l.src[start:l.pos], start)
		default:
			matched := false
			for _, op := range operators {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.emit(tokPunct, op, l.pos)
					l.pos += len(op)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d:%d: unexpected character %q", lineNo, l.pos+1, c)
			}
		}
	}
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func isDigit(c byte) bool     { return '0' <= c && c <= '9' }
func isNameStart(c byte) bool { return c == '_' || c == 'x' || isAlpha(c) }
func isAlpha(c byte) bool     { return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') }
func isNameChar(c byte) bool  { return isAlpha(c) || isDigit(c) || c == '_' || c == '-' }

// logicalLines joins physical lines that end in a continuation token.
func logicalLines(src string) []struct {
	text string
	line int
} {
	physical := strings.Split(src, "\n")
	var out []struct {
		text string
		line int
	}
	for i := 0; i < len(physical); i++ {
		text := physical[i]
		start := i + 1
		for {
			trimmed := strings.TrimRight(stripComment(text), " \t\r")
			if strings.HasSuffix(trimmed, "||") || strings.HasSuffix(trimmed, "&&") ||
				strings.HasSuffix(trimmed, ",") || strings.HasSuffix(trimmed, "->") ||
				strings.HasSuffix(trimmed, "|") {
				if i+1 < len(physical) {
					i++
					text = trimmed + " " + physical[i]
					continue
				}
			}
			break
		}
		out = append(out, struct {
			text string
			line int
		}{text, start})
	}
	return out
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}
