package ltg

import (
	"fmt"
	"strings"

	"paramring/internal/core"
)

// Diagnosis is the structured explanation of a livelock analysis: which
// t-arc subsets can pseudo-livelock, which of those form contiguous trails,
// and what that implies — the machine-readable version of the narrative the
// paper walks through for 3-coloring and sum-not-two.
type Diagnosis struct {
	// Verdict mirrors CheckLivelockFreedom.
	Verdict Verdict
	// ContiguousOnly mirrors the bidirectional caveat.
	ContiguousOnly bool
	// Subsets lists every pseudo-livelocking t-arc subset examined, with
	// its trail classification.
	Subsets []SubsetDiagnosis
	// TotalSubsets counts all subsets examined (including non-pseudo-
	// livelocking ones, which are skipped).
	TotalSubsets int
}

// SubsetDiagnosis classifies one pseudo-livelocking t-arc subset.
type SubsetDiagnosis struct {
	// TArcs is the subset.
	TArcs []core.LocalTransition
	// FormsTrail reports whether the subset supports a contiguous trail
	// with an illegitimate state (the Theorem 5.14 conditions).
	FormsTrail bool
	// Witness is the trail, when FormsTrail.
	Witness *TrailWitness
}

// Diagnose runs the exact subset analysis and returns the full
// classification instead of stopping at the first qualifying trail.
// The protocol must be self-disabling, as in CheckLivelockFreedom.
func Diagnose(p *core.Protocol, opts CheckOptions) (*Diagnosis, error) {
	if opts.MaxTArcs <= 0 {
		opts.MaxTArcs = 16
	}
	sys := p.Compile()
	if !sys.IsSelfDisabling() {
		return nil, fmt.Errorf("ltg: protocol %q has self-enabling transitions; Theorem 5.14 requires self-disabling actions", p.Name())
	}
	d := &Diagnosis{ContiguousOnly: !p.Unidirectional()}
	tarcs := sys.Trans
	if len(tarcs) == 0 {
		d.Verdict = VerdictFree
		return d, nil
	}
	if len(tarcs) > opts.MaxTArcs {
		return nil, fmt.Errorf("ltg: %d t-arcs exceed the diagnosis limit %d", len(tarcs), opts.MaxTArcs)
	}
	l := Build(sys)
	total := 1 << len(tarcs)
	anyTrail := false
	for mask := 1; mask < total; mask++ {
		d.TotalSubsets++
		subset := subsetOf(tarcs, mask)
		if !FormsPseudoLivelock(sys, subset) {
			continue
		}
		sd := SubsetDiagnosis{TArcs: subset}
		if w := l.trailFor(subset); w != nil {
			sd.FormsTrail = true
			sd.Witness = w
			anyTrail = true
		}
		d.Subsets = append(d.Subsets, sd)
	}
	if anyTrail {
		d.Verdict = VerdictPotentialLivelock
	} else {
		d.Verdict = VerdictFree
	}
	return d, nil
}

// Summary renders the diagnosis as indented text for the CLI tools.
func (d *Diagnosis) Summary(sys *core.System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict: %v", d.Verdict)
	if d.ContiguousOnly {
		b.WriteString(" (contiguous livelocks only: bidirectional ring)")
	}
	fmt.Fprintf(&b, "\n%d subsets examined, %d pseudo-livelocking:\n", d.TotalSubsets, len(d.Subsets))
	for _, sd := range d.Subsets {
		status := "no contiguous trail"
		if sd.FormsTrail {
			status = fmt.Sprintf("TRAIL through illegitimate state %s",
				sys.Protocol().FormatState(sd.Witness.IllegitimateStates[0]))
		}
		fmt.Fprintf(&b, "  %s: %s\n", FormatTArcs(sys, sd.TArcs), status)
	}
	return b.String()
}
