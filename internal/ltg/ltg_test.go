package ltg

import (
	"math/rand"
	"reflect"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/graph"
	"paramring/internal/protocols"
	"paramring/internal/protogen"
)

func dagWithEdge10() *graph.Digraph {
	g := graph.New(2)
	g.AddEdge(1, 0)
	return g
}

func enc2(d, a, b int) core.LocalState { return core.Encode(core.View{a, b}, d) }

// tableProtocol builds a unidirectional protocol from explicit per-action
// single-transition tables, used to express the paper's candidate sets.
func tableProtocol(t *testing.T, name string, d int, legit func(core.View) bool, actions map[string]map[core.LocalState][]int) *core.Protocol {
	t.Helper()
	var tables []core.TableAction
	// Deterministic order by name.
	names := make([]string, 0, len(actions))
	for n := range actions {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		tables = append(tables, core.TableAction{Name: n, Moves: actions[n]})
	}
	p, err := core.NewFromTable(core.Config{
		Name: name, Domain: d, Lo: -1, Hi: 0, Legit: legit,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func colorLegit(v core.View) bool { return v[0] != v[1] }
func sntLegit(v core.View) bool   { return v[0]+v[1] != 2 }

// --- write projection / pseudo-livelock tests --------------------------------

func TestWriteProjection(t *testing.T) {
	sys := protocols.AgreementBoth().Compile()
	g := WriteProjection(sys, sys.Trans)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.M() != 2 {
		t.Fatalf("projection edges wrong: %v", g.Edges())
	}
}

func TestFormsPseudoLivelockPaperClassifications(t *testing.T) {
	// Sum-not-two t-arcs (paper Section 6.2): t21, t12, t01, t10, t02, t20.
	d := 3
	mk := func(src core.LocalState, val int, name string) map[string]map[core.LocalState][]int {
		return map[string]map[core.LocalState][]int{name: {src: {val}}}
	}
	_ = mk
	build := func(name string, actions map[string]map[core.LocalState][]int) *core.System {
		return tableProtocol(t, name, d, sntLegit, actions).Compile()
	}
	t21 := map[core.LocalState][]int{enc2(d, 0, 2): {1}}
	t12 := map[core.LocalState][]int{enc2(d, 1, 1): {2}}
	t01 := map[core.LocalState][]int{enc2(d, 2, 0): {1}}
	t10 := map[core.LocalState][]int{enc2(d, 1, 1): {0}}
	t02 := map[core.LocalState][]int{enc2(d, 2, 0): {2}}
	t20 := map[core.LocalState][]int{enc2(d, 0, 2): {0}}

	cases := []struct {
		name    string
		actions map[string]map[core.LocalState][]int
		want    bool
	}{
		{"t21+t12 (2<->1 cycle)", map[string]map[core.LocalState][]int{"t21": t21, "t12": t12}, true},
		{"t01+t12+t20 (0->1->2->0)", map[string]map[core.LocalState][]int{"t01": t01, "t12": t12, "t20": t20}, true},
		{"t21+t10+t02 (2->1->0->2)", map[string]map[core.LocalState][]int{"t21": t21, "t10": t10, "t02": t02}, true},
		{"t21+t12+t01 (accepted: 0->1 never recurs)", map[string]map[core.LocalState][]int{"t21": t21, "t12": t12, "t01": t01}, false},
		{"t01 alone", map[string]map[core.LocalState][]int{"t01": t01}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := build("x", tc.actions)
			if got := FormsPseudoLivelock(sys, sys.Trans); got != tc.want {
				t.Fatalf("FormsPseudoLivelock = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFormsPseudoLivelockEmpty(t *testing.T) {
	sys := protocols.AgreementBase().Compile()
	if FormsPseudoLivelock(sys, nil) {
		t.Fatal("empty set is not a pseudo-livelock")
	}
}

func TestHasPseudoLivelockSubset(t *testing.T) {
	// {t21, t12, t01}: the full set is not a pseudo-livelock, but the subset
	// {t21, t12} is.
	p := tableProtocol(t, "x", 3, sntLegit, map[string]map[core.LocalState][]int{
		"t21": {enc2(3, 0, 2): {1}},
		"t12": {enc2(3, 1, 1): {2}},
		"t01": {enc2(3, 2, 0): {1}},
	})
	sys := p.Compile()
	if FormsPseudoLivelock(sys, sys.Trans) {
		t.Fatal("full set should not form a pseudo-livelock")
	}
	if !HasPseudoLivelockSubset(sys, sys.Trans) {
		t.Fatal("subset {t21,t12} forms a pseudo-livelock")
	}
	subs := MinimalPseudoLivelockSubsets(sys, sys.Trans)
	if len(subs) != 1 || len(subs[0]) != 2 {
		t.Fatalf("minimal pseudo-livelock subsets = %v", subs)
	}
}

// --- Theorem 5.14 verdicts on the paper's examples ----------------------------

func TestAgreementOneSidedProvedFree(t *testing.T) {
	for _, side := range []string{"t01", "t10"} {
		rep, err := CheckLivelockFreedom(protocols.AgreementOneSided(side), CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != VerdictFree {
			t.Fatalf("agreement/%s: verdict %v, want free (%s)", side, rep.Verdict, rep.Reason)
		}
		if rep.ContiguousOnly {
			t.Fatal("agreement is unidirectional")
		}
	}
}

func TestAgreementBothPotentialLivelock(t *testing.T) {
	rep, err := CheckLivelockFreedom(protocols.AgreementBoth(), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatalf("verdict %v, want potential-livelock", rep.Verdict)
	}
	if rep.Witness == nil || len(rep.Witness.TArcs) != 2 {
		t.Fatalf("witness = %+v", rep.Witness)
	}
	// And the potential livelock is real: explicit livelock at K=4.
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	if in.FindLivelock() == nil {
		t.Fatal("explicit livelock expected at K=4")
	}
}

func TestGoudaAcharyaTrailFoundAndReal(t *testing.T) {
	rep, err := CheckLivelockFreedom(protocols.GoudaAcharya(), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatalf("verdict %v, want potential-livelock (%s)", rep.Verdict, rep.Reason)
	}
	// The witness trail's t-arcs must be {t_ls, t_sl} as in Figure 8.
	names := map[string]bool{}
	for _, a := range rep.Witness.TArcs {
		names[a.Action] = true
	}
	if !names["t_ls"] || !names["t_sl"] {
		t.Fatalf("witness t-arcs = %s", FormatTArcs(protocols.GoudaAcharya().Compile(), rep.Witness.TArcs))
	}
}

func TestSumNotTwoAcceptedSetProvedFree(t *testing.T) {
	// {t21, t12, t01} — the paper's accepted candidate set.
	p := tableProtocol(t, "snt-accepted", 3, sntLegit, map[string]map[core.LocalState][]int{
		"t21": {enc2(3, 0, 2): {1}},
		"t12": {enc2(3, 1, 1): {2}},
		"t01": {enc2(3, 2, 0): {1}},
	})
	rep, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictFree {
		t.Fatalf("verdict %v, want free (%s)", rep.Verdict, rep.Reason)
	}
	// Cross-validate: no livelock and full convergence for K=3..7.
	for k := 3; k <= 7; k++ {
		in := explicit.MustNewInstance(p, k)
		if !in.CheckStrongConvergence().Converges {
			t.Fatalf("accepted sum-not-two set must converge at K=%d", k)
		}
	}
}

func TestSumNotTwoRejectedSetSpuriousTrail(t *testing.T) {
	// {t21, t10, t02} — rejected by the methodology, yet the trail is
	// spurious: there is no real livelock at K=3 (or anywhere). This is the
	// paper's demonstration that Theorem 5.14 is sufficient, not necessary.
	p := tableProtocol(t, "snt-rejected", 3, sntLegit, map[string]map[core.LocalState][]int{
		"t21": {enc2(3, 0, 2): {1}},
		"t10": {enc2(3, 1, 1): {0}},
		"t02": {enc2(3, 2, 0): {2}},
	})
	rep, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatalf("verdict %v, want potential-livelock (%s)", rep.Verdict, rep.Reason)
	}
	for k := 3; k <= 7; k++ {
		in := explicit.MustNewInstance(p, k)
		if in.FindLivelock() != nil {
			t.Fatalf("rejected set has a REAL livelock at K=%d — trail should be spurious", k)
		}
	}
}

func TestTwoColoringInconclusive(t *testing.T) {
	// Figure 11: resolving both illegitimate deadlocks 00 and 11 creates a
	// trail; the method cannot conclude livelock-freedom (and indeed SS
	// 2-coloring on unidirectional rings is impossible).
	p := tableProtocol(t, "coloring2+both", 2, colorLegit, map[string]map[core.LocalState][]int{
		"t01": {enc2(2, 0, 0): {1}},
		"t10": {enc2(2, 1, 1): {0}},
	})
	rep, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatalf("verdict %v, want potential-livelock", rep.Verdict)
	}
	// The potential livelock is real here: K=4 livelocks (e.g. 0101 wave).
	in := explicit.MustNewInstance(p, 4)
	if in.FindLivelock() == nil {
		t.Fatal("2-coloring with both corrections must livelock at K=4")
	}
}

func TestThreeColoringCyclicCandidatesFail(t *testing.T) {
	// Figure 9: the candidate set {t01, t12, t20} pseudo-livelocks into a
	// contiguous trail through the illegitimate states {00, 11, 22}.
	p := tableProtocol(t, "coloring3+cyc", 3, colorLegit, map[string]map[core.LocalState][]int{
		"t01": {enc2(3, 0, 0): {1}},
		"t12": {enc2(3, 1, 1): {2}},
		"t20": {enc2(3, 2, 2): {0}},
	})
	rep, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatalf("verdict %v, want potential-livelock", rep.Verdict)
	}
}

func TestEmptyProtocolTriviallyFree(t *testing.T) {
	rep, err := CheckLivelockFreedom(protocols.Coloring(3), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictFree {
		t.Fatalf("empty protocol: verdict %v", rep.Verdict)
	}
}

func TestBidirectionalContiguousOnlyFlag(t *testing.T) {
	rep, err := CheckLivelockFreedom(protocols.MatchingA(), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContiguousOnly {
		t.Fatal("matchingA is bidirectional: ContiguousOnly must be set")
	}
	// 18 t-arcs exceed the default exact limit: coarse fallback.
	if rep.Verdict != VerdictUnknown && rep.Verdict != VerdictFree {
		t.Fatalf("unexpected verdict %v", rep.Verdict)
	}
}

func TestSelfEnablingRejectedAndTransformedVariant(t *testing.T) {
	// A protocol with a chained (self-enabling) action: (0,0) -> (0,1) where
	// (0,1) is enabled again, terminating at (0,2). CheckLivelockFreedom
	// must refuse; the Transformed variant must transform and verify.
	p := tableProtocol(t, "chain", 3, colorLegit, map[string]map[core.LocalState][]int{
		"a": {enc2(3, 0, 0): {1}},
		"b": {enc2(3, 0, 1): {2}},
	})
	if _, err := CheckLivelockFreedom(p, CheckOptions{}); err == nil {
		t.Fatal("self-enabling protocol must be rejected")
	}
	rep, q, err := CheckLivelockFreedomTransformed(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SelfDisabled || q == p {
		t.Fatal("transformation should have been applied")
	}
	if rep.Verdict != VerdictFree {
		t.Fatalf("verdict %v, want free (%s)", rep.Verdict, rep.Reason)
	}
}

func TestNonSelfTerminatingRejected(t *testing.T) {
	// Local cycle 00 -> 01 -> 00 cannot be transformed.
	p := tableProtocol(t, "cyc", 2, colorLegit, map[string]map[core.LocalState][]int{
		"a": {enc2(2, 0, 0): {1}},
		"b": {enc2(2, 0, 1): {0}},
	})
	if _, _, err := CheckLivelockFreedomTransformed(p, CheckOptions{}); err == nil {
		t.Fatal("expected error for non-self-terminating protocol")
	}
}

// TestTransformDoesNotPreserveLivelocks is a regression test for a finding
// of this reproduction: the paper's Assumption-2 transformation (Section 5)
// can REMOVE livelocks. This protocol (found by random search, seed 514
// trial 38) livelocks at K=3 — its livelock exploits a self-enabling chain
// whose mid-chain state is observed by the successor, and a collision that
// Lemma 5.5 rules out only for self-disabling protocols — while its
// self-disabled transform is livelock-free for the same K. Consequently a
// Free verdict on the transform must not be read as a verdict on the
// original, which is why CheckLivelockFreedom rejects self-enabling input.
func TestTransformDoesNotPreserveLivelocks(t *testing.T) {
	legitTable := map[core.LocalState]bool{
		enc2(3, 0, 0): true, enc2(3, 2, 1): true,
	}
	p := tableProtocol(t, "counterexample", 3,
		func(v core.View) bool { return legitTable[core.Encode(v, 3)] },
		map[string]map[core.LocalState][]int{
			"m": {
				enc2(3, 0, 0): {2}, // 00 -> 02
				enc2(3, 2, 0): {2}, // 20 -> 22
				enc2(3, 1, 1): {0}, // 11 -> 10
				enc2(3, 2, 1): {0}, // 21 -> 20 (self-enabling: 20 has a move)
				enc2(3, 1, 2): {1}, // 12 -> 11 (self-enabling: 11 has a move)
			},
		})
	if p.Compile().IsSelfDisabling() {
		t.Fatal("counterexample must be self-enabling")
	}
	inP := explicit.MustNewInstance(p, 3)
	if inP.FindLivelock() == nil {
		t.Fatal("original protocol must livelock at K=3")
	}
	rep, q, err := CheckLivelockFreedomTransformed(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictFree {
		t.Fatalf("transformed verdict = %v, want free", rep.Verdict)
	}
	inQ := explicit.MustNewInstance(q, 3)
	if inQ.FindLivelock() != nil {
		t.Fatal("transformed protocol must be livelock-free at K=3")
	}
	// The Free verdict is sound for q: check a few more sizes.
	for k := 4; k <= 6; k++ {
		if explicit.MustNewInstance(q, k).FindLivelock() != nil {
			t.Fatalf("transformed protocol livelocks at K=%d, contradicting the Free verdict", k)
		}
	}
}

// --- soundness property: Free verdicts never contradict explicit search -------

func TestLivelockFreedomSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(514))
	checked, free := 0, 0
	for trial := 0; trial < 200; trial++ {
		p := protogen.Random(rng, protogen.Options{SelfDisabling: true, MovePercent: 70})
		rep, err := CheckLivelockFreedom(p, CheckOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checked++
		if rep.Verdict != VerdictFree {
			continue
		}
		free++
		for k := 2; k <= 6; k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if c := in.FindLivelock(); c != nil {
				t.Fatalf("trial %d: UNSOUND: verdict free but K=%d livelock %s\nreason: %s",
					trial, k, in.FormatCycle(c), rep.Reason)
			}
		}
	}
	if checked < 50 || free < 10 {
		t.Fatalf("property test too weak: checked=%d free=%d", checked, free)
	}
}

// --- precedence / permutation tests (Figures 5 and 6) ------------------------

func TestDependent(t *testing.T) {
	if !Dependent(4, 1, 1) || !Dependent(4, 1, 2) || !Dependent(4, 2, 1) || !Dependent(4, 0, 3) {
		t.Fatal("adjacent/equal must be dependent")
	}
	if Dependent(4, 0, 2) || Dependent(4, 1, 3) {
		t.Fatal("opposite processes on K=4 are independent")
	}
}

func TestFigure5PrecedenceRelation(t *testing.T) {
	// The paper's Example 5.2 schedule at K=4:
	// Sch = <t01@P1, t10@P0, t01@P2, t01@P3, t10@P1, t01@P0, t10@P2, t10@P3>.
	procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
	dag := DependencyDAG(4, procs)
	pairs := IndependentPairs(dag)
	// "Since we have only three pairs of independent local transitions, the
	// precedence relation allows 8 = 2^3 possible precedence-preserving
	// permutations of Sch."
	if len(pairs) != 3 {
		t.Fatalf("independent pairs = %v (%d), want 3", pairs, len(pairs))
	}
	exts, err := LinearExtensions(dag, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 8 {
		t.Fatalf("linear extensions = %d, want 8", len(exts))
	}
	// The identity must be among them.
	identity := []int{0, 1, 2, 3, 4, 5, 6, 7}
	found := false
	for _, e := range exts {
		if reflect.DeepEqual(e, identity) {
			found = true
		}
	}
	if !found {
		t.Fatal("identity permutation missing")
	}
}

// Figure 6 / Lemma 5.11: every precedence-preserving permutation of the
// paper's schedule is itself a livelock.
func TestPrecedencePreservingPermutationsAreLivelocks(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	start := in.Encode([]int{1, 0, 0, 0})
	procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
	dag := DependencyDAG(4, procs)
	exts, err := LinearExtensions(dag, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range exts {
		sched := PermuteSchedule(procs, perm)
		states, err := in.Computation(start, sched)
		if err != nil {
			t.Fatalf("perm %v not executable: %v", perm, err)
		}
		if states[len(states)-1] != start {
			t.Fatalf("perm %v does not return to start", perm)
		}
		if !in.IsLivelock(states[:len(states)-1]) {
			t.Fatalf("perm %v is not a livelock", perm)
		}
	}
}

func TestLinearExtensionsLimit(t *testing.T) {
	// 1 + 8 incomparable steps after step 0 -> 8! extensions > limit.
	procs := make([]int, 9)
	for i := range procs {
		procs[i] = (2 * i) % 32 // far apart on a K=32 ring
	}
	dag := DependencyDAG(32, procs)
	if _, err := LinearExtensions(dag, 100); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestLinearExtensionsStepZeroNotMinimal(t *testing.T) {
	// Step 1 precedes step 0 is impossible by construction (edges only
	// i<j), so craft a DAG manually via DependencyDAG semantics: step 0
	// always minimal. Validate the error path with a hand-built graph.
	dag := DependencyDAG(3, []int{0, 1})
	// Manually reverse: build graph with edge 1->0.
	g := dag.Clone()
	_ = g
	// DependencyDAG can't produce indeg[0] != 0; call LinearExtensions on a
	// crafted graph instead.
	gg := dagWithEdge10()
	if _, err := LinearExtensions(gg, 0); err == nil {
		t.Fatal("expected error when step 0 is not minimal")
	}
}

func TestPermuteSchedule(t *testing.T) {
	got := PermuteSchedule([]int{5, 6, 7}, []int{0, 2, 1})
	if !reflect.DeepEqual(got, []int{5, 7, 6}) {
		t.Fatalf("PermuteSchedule = %v", got)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictFree.String() != "livelock-free" ||
		VerdictPotentialLivelock.String() != "potential-livelock" ||
		VerdictUnknown.String() != "unknown" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(99).String() == "" {
		t.Fatal("unknown verdict must still render")
	}
}

func TestFormatTArcs(t *testing.T) {
	sys := protocols.AgreementBoth().Compile()
	s := FormatTArcs(sys, sys.Trans)
	if s != "{t01:10->11, t10:01->00}" {
		t.Fatalf("FormatTArcs = %q", s)
	}
}

func TestSArcsAndTArcsAccessors(t *testing.T) {
	l := Build(protocols.AgreementBoth().Compile())
	if l.SArcs().N() != 4 {
		t.Fatal("SArcs wrong")
	}
	if len(l.TArcs()) != 2 {
		t.Fatal("TArcs wrong")
	}
	if l.System() == nil || l.RCG() == nil {
		t.Fatal("accessors nil")
	}
}

// Lemma 5.11 applied to a livelock DISCOVERED by the model checker (not the
// paper's hand-written one): extract its schedule, build the precedence
// relation, and replay every precedence-preserving permutation as a
// livelock.
func TestPermutationLemmaOnDiscoveredLivelock(t *testing.T) {
	in := explicit.MustNewInstance(protocols.GoudaAcharya(), 5)
	cycle := in.FindLivelock()
	if cycle == nil {
		t.Fatal("fixture: livelock expected")
	}
	procs, err := ScheduleFromCycle(in.K(), in.Decode, cycle)
	if err != nil {
		t.Fatal(err)
	}
	dag := DependencyDAG(in.K(), procs)
	exts, err := LinearExtensions(dag, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) == 0 {
		t.Fatal("at least the identity extension must exist")
	}
	for _, perm := range exts {
		sched := PermuteSchedule(procs, perm)
		states, err := in.Computation(cycle[0], sched)
		if err != nil {
			t.Fatalf("perm %v not executable: %v", perm, err)
		}
		if states[len(states)-1] != cycle[0] {
			t.Fatalf("perm %v does not close the cycle", perm)
		}
		if !in.IsLivelock(states[:len(states)-1]) {
			t.Fatalf("perm %v is not a livelock", perm)
		}
	}
	t.Logf("verified %d precedence-preserving permutations of a %d-step livelock", len(exts), len(procs))
}

func TestScheduleFromCycleErrors(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	// A "cycle" whose consecutive states differ in two positions.
	bad := []uint64{in.Encode([]int{0, 0, 1, 1}), in.Encode([]int{1, 1, 1, 1})}
	if _, err := ScheduleFromCycle(4, in.Decode, bad); err == nil {
		t.Fatal("two-position step must be rejected")
	}
	same := []uint64{in.Encode([]int{0, 1, 0, 1})}
	if _, err := ScheduleFromCycle(4, in.Decode, same); err == nil {
		t.Fatal("self-loop step must be rejected")
	}
}
