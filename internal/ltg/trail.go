package ltg

import (
	"fmt"

	"paramring/internal/core"
	"paramring/internal/graph"
)

// Verdict is the outcome of the Theorem 5.14 check.
type Verdict int

const (
	// VerdictFree proves livelock-freedom for every ring size K (for
	// unidirectional rings; for bidirectional rings it proves freedom from
	// contiguous livelocks only — see Report.ContiguousOnly).
	VerdictFree Verdict = iota + 1
	// VerdictPotentialLivelock means a contiguous trail satisfying the
	// conditions of Theorem 5.14 exists. Because the theorem is sufficient
	// but not necessary, the trail may be spurious (no real livelock); the
	// paper's sum-not-two {t21,t10,t02} set is the canonical example.
	VerdictPotentialLivelock
	// VerdictUnknown means search limits were exceeded; soundness demands
	// the caller treat this as "possibly livelocking".
	VerdictUnknown
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictFree:
		return "livelock-free"
	case VerdictPotentialLivelock:
		return "potential-livelock"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// TrailWitness describes a contiguous trail satisfying Theorem 5.14's
// conditions.
type TrailWitness struct {
	// TArcs is the trail's t-arc set (a pseudo-livelock).
	TArcs []core.LocalTransition
	// Cycle is one closed walk in the composite graph, as the cyclic
	// sequence of t-arc source states.
	Cycle []core.LocalState
	// IllegitimateStates are the illegitimate local states the trail visits.
	IllegitimateStates []core.LocalState
}

// Report is the result of CheckLivelockFreedom.
type Report struct {
	Verdict Verdict
	// Witness is set for VerdictPotentialLivelock.
	Witness *TrailWitness
	// ContiguousOnly is true when the protocol is not unidirectional: the
	// Free verdict then only rules out contiguous livelocks (the paper's
	// remark after Theorem 5.14).
	ContiguousOnly bool
	// SelfDisabled is true when the protocol was first rewritten by the
	// Section 5 transformation to satisfy Assumption 2.
	SelfDisabled bool
	// SubsetsChecked counts candidate t-arc subsets examined.
	SubsetsChecked int
	// Reason is a human-readable explanation of the verdict.
	Reason string
}

// CheckOptions tunes CheckLivelockFreedom.
type CheckOptions struct {
	// MaxTArcs bounds the exact subset search (2^MaxTArcs subsets). Above
	// it the checker falls back to a coarse-but-sound test. <= 0 selects 16.
	MaxTArcs int
	// Skeleton, when non-nil and of the same shape as the protocol under
	// check (see LTG.SameShape), donates its s-arc RCG so the check skips
	// rebuilding the continuation relation — fleet runs verifying a family
	// of same-shape protocols share one skeleton this way. A skeleton of a
	// different shape is ignored (the check falls back to building its own
	// graph), so passing one is always sound.
	Skeleton *LTG
	// Memo, when non-nil, caches Theorem 5.14 subset verdicts across
	// checks. It is consulted only when Skeleton is set and shape-
	// compatible: verdicts are pure functions of (shape, t-arc subset), so
	// a memo is only transferable between protocols that share the shape
	// the skeleton vouches for. The verdict, witness, and subset count are
	// identical with or without it (see FindTrailSubset).
	Memo *Memo
}

// CheckLivelockFreedom applies the contrapositive of Theorem 5.14: it
// searches for a contiguous trail whose t-arcs form a pseudo-livelock and
// which visits an illegitimate local state. No such trail => livelock-free
// for every K (contiguous-livelock-free for bidirectional rings).
//
// The protocol MUST be self-disabling (Assumption 2 of the paper's Section
// 5); otherwise an error is returned. The paper suggests transforming
// self-enabling protocols first, but — as this reproduction discovered — the
// transformation does not preserve livelocks: a protocol can livelock while
// its self-disabled form does not (the chain-collapse destroys mid-chain
// states that the livelock depends on, and non-self-disabling protocols
// admit collisions that invalidate Lemma 5.5). Verdicts for a transformed
// protocol therefore apply to the transformed protocol only; use
// CheckLivelockFreedomTransformed when that is what you want.
func CheckLivelockFreedom(p *core.Protocol, opts CheckOptions) (Report, error) {
	if opts.MaxTArcs <= 0 {
		opts.MaxTArcs = 16
	}
	var rep Report
	rep.ContiguousOnly = !p.Unidirectional()

	sys := p.Compile()
	if !sys.IsSelfDisabling() {
		return rep, fmt.Errorf("ltg: protocol %q has self-enabling transitions (e.g. %s); Theorem 5.14 requires self-disabling actions — transform explicitly with CheckLivelockFreedomTransformed, whose verdict applies to the transformed protocol",
			p.Name(), sys.FormatTransition(sys.SelfEnabling()[0]))
	}
	// A shape-compatible skeleton donates its s-arcs (and unlocks the shared
	// memo); anything else rebuilds from scratch, so a stale or mismatched
	// skeleton can never change a verdict.
	var l *LTG
	var memo *Memo
	if opts.Skeleton != nil && opts.Skeleton.SameShape(sys) {
		l = BuildFrom(sys, opts.Skeleton.RCG())
		memo = opts.Memo
	} else {
		l = Build(sys)
	}

	tarcs := sys.Trans
	if len(tarcs) == 0 {
		rep.Verdict = VerdictFree
		rep.Reason = "no local transitions, hence no livelocks"
		return rep, nil
	}

	if len(tarcs) > opts.MaxTArcs {
		return l.coarseCheck(rep, tarcs)
	}

	// Exact subset search: a trail's t-arc set is some subset S'. For each
	// subset that forms a pseudo-livelock, test whether every t-arc of S'
	// can participate in a closed composite walk and whether the trail
	// visits an illegitimate state.
	w, checked := l.FindTrailSubset(tarcs, -1, memo)
	rep.SubsetsChecked = checked
	if w != nil {
		rep.Verdict = VerdictPotentialLivelock
		rep.Witness = w
		rep.Reason = TrailReason(sys, w)
		return rep, nil
	}
	rep.Verdict = VerdictFree
	if rep.ContiguousOnly {
		rep.Reason = "no pseudo-livelocking t-arc subset forms a contiguous trail (bidirectional: contiguous livelocks only)"
	} else {
		rep.Reason = "no pseudo-livelocking t-arc subset forms a contiguous trail (Theorem 5.14)"
	}
	return rep, nil
}

// CheckLivelockFreedomTransformed first applies the paper's Section 5
// transformation (core.Protocol.SelfDisable) when needed, then checks the
// transformed protocol. The returned protocol is the one the verdict applies
// to — which may differ from p in its livelock behavior (see
// CheckLivelockFreedom's doc comment); the transformation never *adds*
// livelocks, so a PotentialLivelock verdict is as meaningful as on p, but a
// Free verdict proves freedom only for the transformed protocol.
func CheckLivelockFreedomTransformed(p *core.Protocol, opts CheckOptions) (Report, *core.Protocol, error) {
	q, err := p.SelfDisable()
	if err != nil {
		return Report{}, nil, fmt.Errorf("ltg: %w", err)
	}
	rep, err := CheckLivelockFreedom(q, opts)
	rep.SelfDisabled = q != p
	return rep, q, err
}

// TrailReason renders the standard one-line explanation of a
// potential-livelock verdict for a given trail witness.
func TrailReason(sys *core.System, w *TrailWitness) string {
	return fmt.Sprintf("t-arc set %s forms a pseudo-livelock and a contiguous trail through illegitimate state %s",
		FormatTArcs(sys, w.TArcs), sys.Protocol().FormatState(w.IllegitimateStates[0]))
}

func subsetOf(tarcs []core.LocalTransition, mask int) []core.LocalTransition {
	var out []core.LocalTransition
	for i := range tarcs {
		if mask&(1<<i) != 0 {
			out = append(out, tarcs[i])
		}
	}
	return out
}

// trailFor decides whether the t-arc subset S' supports a contiguous trail:
//
//  1. build the composite graph: for each t-arc (u -> u') in S', composite
//     edges u => v for every v in Sources(S') reachable from u' by s-arcs
//     whose intermediate states are themselves in Sources(S');
//  2. require every t-arc of S' to lie on some composite cycle;
//  3. require an illegitimate state among the states the trail visits
//     (sources and targets of S' — by Lemma 5.12 all trail vertices are
//     t-arc endpoints).
//
// Returns a witness, or nil when no trail exists.
func (l *LTG) trailFor(subset []core.LocalTransition) *TrailWitness {
	sys := l.sys
	n := sys.N()

	sources := make([]bool, n)
	visited := map[core.LocalState]bool{}
	for _, t := range subset {
		sources[t.Src] = true
		visited[t.Src] = true
		visited[t.Dst] = true
	}

	// Illegitimate state among trail vertices?
	var illegit []core.LocalState
	for s := range visited {
		if !sys.Legit[s] {
			illegit = append(illegit, s)
		}
	}
	if len(illegit) == 0 {
		return nil
	}

	// Composite graph over local states; remember which t-arcs label each
	// composite edge.
	comp := graph.New(n)
	edgeTArcs := map[[2]int][]int{}
	sArcs := l.r.Graph()
	for ti, t := range subset {
		ends := l.sRunEndpoints(int(t.Dst), sources, sArcs)
		for _, v := range ends {
			comp.AddEdge(int(t.Src), v)
			key := [2]int{int(t.Src), v}
			edgeTArcs[key] = append(edgeTArcs[key], ti)
		}
	}

	// Every t-arc must have a composite edge on a cycle: edge (a,b) is on a
	// cycle iff a and b share an SCC (or a==b).
	_, sccIdx := comp.SCCIndex()
	onCycle := make([]bool, len(subset))
	for key, tis := range edgeTArcs {
		a, b := key[0], key[1]
		cyc := a == b || sccIdx[a] == sccIdx[b]
		if !cyc {
			continue
		}
		for _, ti := range tis {
			onCycle[ti] = true
		}
	}
	for _, ok := range onCycle {
		if !ok {
			return nil
		}
	}

	// Extract a display cycle: an elementary cycle of the composite graph.
	cycles, _ := comp.ElementaryCycles(64)
	var cycle []core.LocalState
	if len(cycles) > 0 {
		// Prefer the longest enumerated cycle (richer witness).
		best := cycles[0]
		for _, c := range cycles {
			if len(c) > len(best) {
				best = c
			}
		}
		for _, v := range best {
			cycle = append(cycle, core.LocalState(v))
		}
	}

	sortStates(illegit)
	return &TrailWitness{
		TArcs:              subset,
		Cycle:              cycle,
		IllegitimateStates: illegit,
	}
}

// sRunEndpoints returns the source-states reachable from start via one or
// more s-arcs where every intermediate state (all states after start and
// before the endpoint) is itself a source. start is a t-arc target and may
// be expanded unconditionally for the first hop.
func (l *LTG) sRunEndpoints(start int, sources []bool, sArcs *graph.Digraph) []int {
	seen := map[int]bool{}
	var ends []int
	// First hop.
	frontier := append([]int(nil), sArcs.Succ(start)...)
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if sources[v] {
			ends = append(ends, v)
			// Continue through v: it is an enabled intermediate (w1 rule).
			frontier = append(frontier, sArcs.Succ(v)...)
		}
		// Non-source states are dead ends: the trail cannot pass through a
		// disabled process's local state inside an enablement segment.
	}
	return ends
}

// coarseCheck is the fallback for protocols with too many t-arcs for the
// exact subset search. Because the composite graph of any subset S' is a
// subgraph of the composite graph of the full t-arc set (Sources(S') is a
// subset of Sources(all)), the following necessary conditions for a trail
// are monotone, making the Free verdict sound:
//
//   - some t-arc subset forms a pseudo-livelock (the full write projection
//     has a cycle);
//   - some t-arc endpoint is illegitimate;
//   - the full composite graph has a cycle.
//
// When all three hold the coarse check cannot decide and returns Unknown.
// all is the t-arc set under scrutiny (usually l's compiled transitions, but
// an overlay works the same way).
func (l *LTG) coarseCheck(rep Report, all []core.LocalTransition) (Report, error) {
	sys := l.sys
	rep.SubsetsChecked = 1
	if !HasPseudoLivelockSubset(sys, all) {
		rep.Verdict = VerdictFree
		rep.Reason = "no t-arc subset can form a pseudo-livelock (write projection is acyclic)"
		return rep, nil
	}
	anyIllegit := false
	for _, t := range all {
		if !sys.Legit[t.Src] || !sys.Legit[t.Dst] {
			anyIllegit = true
			break
		}
	}
	if !anyIllegit {
		rep.Verdict = VerdictFree
		rep.Reason = "no t-arc endpoint is illegitimate, so no trail can visit an illegitimate state"
		return rep, nil
	}
	sources := make([]bool, sys.N())
	for _, t := range all {
		sources[t.Src] = true
	}
	comp := graph.New(sys.N())
	sArcs := l.r.Graph()
	for _, t := range all {
		for _, v := range l.sRunEndpoints(int(t.Dst), sources, sArcs) {
			comp.AddEdge(int(t.Src), v)
		}
	}
	if !comp.HasCycle() {
		rep.Verdict = VerdictFree
		rep.Reason = "the composite alternation graph is acyclic: no closed trail exists"
		return rep, nil
	}
	rep.Verdict = VerdictUnknown
	rep.Reason = fmt.Sprintf("t-arc count %d exceeds exact-search limit; coarse check inconclusive", len(all))
	return rep, nil
}

func sortStates(xs []core.LocalState) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
