package ltg

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"paramring/internal/core"
)

// Memo caches Theorem 5.14 verdicts per canonical t-arc subset so that a
// synthesis search evaluating many candidate revisions of one base protocol
// never re-derives the verdict of a pseudo-livelock core two assignments
// share. The verdict of a subset depends only on the (source, target) state
// pairs of its arcs — trail existence never looks at action labels — so the
// key is the sorted, deduplicated set of (src, dst) codes. Witnesses are
// recomputed on a hit rather than cached: they are needed at most once per
// rejection, and rebuilding them from the caller's own subset keeps reported
// reasons independent of which worker populated the cache first.
//
// A Memo is safe for concurrent use. Verdicts are pure functions of the key,
// so racing writers can only store identical values.
type Memo struct {
	mu     sync.RWMutex
	m      map[string]subsetVerdict
	hits   atomic.Uint64
	misses atomic.Uint64
}

// subsetVerdict is the cached outcome for one canonical subset.
type subsetVerdict uint8

const (
	verdictAbsent      subsetVerdict = iota // zero value: not cached
	verdictNotPseudo                        // subset does not form a pseudo-livelock
	verdictPseudoOnly                       // pseudo-livelock, but no contiguous trail
	verdictPseudoTrail                      // pseudo-livelock with a contiguous trail
)

// NewMemo returns an empty verdict cache.
func NewMemo() *Memo {
	return &Memo{m: make(map[string]subsetVerdict)}
}

// Stats returns the number of cache hits and misses so far.
func (m *Memo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

func (m *Memo) lookup(key string) subsetVerdict {
	m.mu.RLock()
	v := m.m[key]
	m.mu.RUnlock()
	if v == verdictAbsent {
		m.misses.Add(1)
	} else {
		m.hits.Add(1)
	}
	return v
}

func (m *Memo) store(key string, v subsetVerdict) {
	m.mu.Lock()
	m.m[key] = v
	m.mu.Unlock()
}

// subsetKey canonicalizes a t-arc subset into a memo key: the ascending,
// deduplicated (src, dst) codes packed as big-endian uint64s. buf is a
// caller-owned scratch buffer reused across calls.
func (l *LTG) subsetKey(subset []core.LocalTransition, buf *[]byte) string {
	n := uint64(l.sys.N())
	codes := make([]uint64, 0, 16)
	for _, t := range subset {
		codes = append(codes, uint64(t.Src)*n+uint64(t.Dst))
	}
	// Insertion sort: subsets are tiny (bounded by CheckOptions.MaxTArcs).
	for i := 1; i < len(codes); i++ {
		for j := i; j > 0 && codes[j] < codes[j-1]; j-- {
			codes[j], codes[j-1] = codes[j-1], codes[j]
		}
	}
	b := (*buf)[:0]
	var last uint64
	for i, c := range codes {
		if i > 0 && c == last {
			continue
		}
		last = c
		b = binary.BigEndian.AppendUint64(b, c)
	}
	*buf = b
	return string(b)
}

// FindTrailSubset searches the non-empty subsets of tarcs, in ascending bitmask
// order (bit i selects tarcs[i]), for one that forms a pseudo-livelock and
// supports a contiguous trail through an illegitimate state — the rejection
// condition of Theorem 5.14. When mustInclude is a valid index, only subsets
// containing tarcs[mustInclude] are examined (still in ascending full-mask
// order); a negative mustInclude searches every non-empty subset.
//
// The t-arcs are an overlay: they need not equal l's compiled transitions, but
// must describe a protocol with the same shape (state space, legitimacy,
// own-values, and hence s-arcs) as l's system — the synthesis engine overlays
// candidate recovery arcs on the base protocol's LTG this way. The caller must
// keep len(tarcs) small enough for subset enumeration (CheckOptions.MaxTArcs
// bounds it upstream).
//
// Returns the witness of the first qualifying subset (nil if none) and the
// number of subsets examined. memo may be nil; the witness, iteration order
// and return values are identical with or without it.
func (l *LTG) FindTrailSubset(tarcs []core.LocalTransition, mustInclude int, memo *Memo) (*TrailWitness, int) {
	checked := 0
	var buf []byte
	eval := func(mask int) *TrailWitness {
		subset := subsetOf(tarcs, mask)
		checked++
		if memo == nil {
			if !FormsPseudoLivelock(l.sys, subset) {
				return nil
			}
			return l.trailFor(subset)
		}
		key := l.subsetKey(subset, &buf)
		switch memo.lookup(key) {
		case verdictNotPseudo, verdictPseudoOnly:
			return nil
		case verdictPseudoTrail:
			// Rebuild the witness from this caller's subset (cheap, and
			// deterministic regardless of cache population order).
			return l.trailFor(subset)
		}
		v := verdictNotPseudo
		var w *TrailWitness
		if FormsPseudoLivelock(l.sys, subset) {
			if w = l.trailFor(subset); w != nil {
				v = verdictPseudoTrail
			} else {
				v = verdictPseudoOnly
			}
		}
		memo.store(key, v)
		return w
	}

	if mustInclude < 0 {
		for mask := 1; mask < 1<<len(tarcs); mask++ {
			if w := eval(mask); w != nil {
				return w, checked
			}
		}
		return nil, checked
	}
	// Enumerate exactly the masks containing bit mustInclude by inserting that
	// bit into every (len-1)-bit pattern; the map sub -> mask is strictly
	// increasing, so iteration remains ascending in the full mask.
	for sub := 0; sub < 1<<(len(tarcs)-1); sub++ {
		low := sub & (1<<mustInclude - 1)
		high := sub >> mustInclude
		mask := high<<(mustInclude+1) | 1<<mustInclude | low
		if w := eval(mask); w != nil {
			return w, checked
		}
	}
	return nil, checked
}
