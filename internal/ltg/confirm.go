package ltg

import (
	"fmt"

	"paramring/internal/core"
	"paramring/internal/explicit"
)

// Confirmation classifies a TrailWitness by bounded explicit search — the
// mechanized version of the paper's reconstruction attempt for the
// sum-not-two trail ("if we try to reconstruct the global livelock of a
// ring of three processes using T_R, we fail!").
type Confirmation struct {
	// Confirmed is true when a real livelock using only the witness's
	// t-arcs exists at some checked ring size.
	Confirmed bool
	// K is the smallest ring size with such a livelock (when Confirmed).
	K int
	// Cycle is the concrete global livelock (when Confirmed).
	Cycle []uint64
	// MaxKChecked records the search bound; !Confirmed means "spurious up
	// to this bound", not a proof of spuriousness for all K.
	MaxKChecked int
}

// ConfirmWitness tries to realize a trail witness as a concrete livelock on
// rings of size 2..maxK: for each size it asks the explicit checker for a
// livelock of the protocol restricted to the witness's t-arcs. Because
// Theorem 5.14 is sufficient but not necessary, a witness can be spurious;
// this function tells the two cases apart (up to the bound).
//
// maxK <= 0 selects 7.
func ConfirmWitness(p *core.Protocol, w *TrailWitness, maxK int) (Confirmation, error) {
	if w == nil {
		return Confirmation{}, fmt.Errorf("ltg: nil witness")
	}
	if maxK <= 0 {
		maxK = 7
	}
	conf := Confirmation{MaxKChecked: maxK}

	// Restrict the protocol to the witness t-arcs: a table-driven protocol
	// with exactly those local transitions. Livelocks of the restriction
	// are livelocks of p whose schedule uses only witness t-arcs.
	sys := p.Compile()
	moves := map[core.LocalState][]int{}
	for _, t := range w.TArcs {
		nv := sys.OwnValue(t.Dst)
		dup := false
		for _, existing := range moves[t.Src] {
			if existing == nv {
				dup = true
			}
		}
		if !dup {
			moves[t.Src] = append(moves[t.Src], nv)
		}
	}
	lo, hi := p.Window()
	restricted, err := core.NewFromTable(core.Config{
		Name:       p.Name() + "/witness",
		Domain:     p.Domain(),
		ValueNames: p.ValueNames(),
		Lo:         lo,
		Hi:         hi,
		Legit:      p.LegitimateView,
	}, []core.TableAction{{Name: "w", Moves: moves}})
	if err != nil {
		return conf, fmt.Errorf("ltg: building witness restriction: %w", err)
	}

	for k := 2; k <= maxK; k++ {
		in, err := explicit.NewInstance(restricted, k)
		if err != nil {
			return conf, err
		}
		if cycle := in.FindLivelock(); cycle != nil {
			conf.Confirmed = true
			conf.K = k
			conf.Cycle = cycle
			return conf, nil
		}
	}
	return conf, nil
}
