package ltg

import (
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func TestConfirmWitnessRealLivelock(t *testing.T) {
	// agreement-both's trail corresponds to a real livelock (K=4 is the
	// paper's; K=2 is the smallest: 01 -> 11? no wait — explicit will find
	// the smallest cyclable size).
	rep, err := CheckLivelockFreedom(protocols.AgreementBoth(), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatal("fixture changed")
	}
	conf, err := ConfirmWitness(protocols.AgreementBoth(), rep.Witness, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Confirmed {
		t.Fatalf("agreement-both witness must confirm: %+v", conf)
	}
	if conf.K < 2 || len(conf.Cycle) == 0 {
		t.Fatalf("confirmation incomplete: %+v", conf)
	}
}

func TestConfirmWitnessGoudaAcharya(t *testing.T) {
	rep, err := CheckLivelockFreedom(protocols.GoudaAcharya(), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := ConfirmWitness(protocols.GoudaAcharya(), rep.Witness, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Confirmed {
		t.Fatal("Gouda-Acharya witness must confirm (real livelock)")
	}
}

// The paper's sum-not-two reconstruction failure, mechanized: the rejected
// set {t21,t10,t02} yields a trail whose reconstruction fails at every
// checked ring size.
func TestConfirmWitnessSpuriousSumNotTwo(t *testing.T) {
	enc := func(a, b int) core.LocalState { return core.Encode(core.View{a, b}, 3) }
	p, err := core.NewFromTable(core.Config{
		Name: "snt-rejected", Domain: 3, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0]+v[1] != 2 },
	}, []core.TableAction{
		{Name: "t21", Moves: map[core.LocalState][]int{enc(0, 2): {1}}},
		{Name: "t10", Moves: map[core.LocalState][]int{enc(1, 1): {0}}},
		{Name: "t02", Moves: map[core.LocalState][]int{enc(2, 0): {2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictPotentialLivelock {
		t.Fatal("fixture changed")
	}
	conf, err := ConfirmWitness(p, rep.Witness, 7)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Confirmed {
		t.Fatalf("the paper's spurious trail must not reconstruct: %+v", conf)
	}
	if conf.MaxKChecked != 7 {
		t.Fatalf("bound bookkeeping wrong: %+v", conf)
	}
}

func TestConfirmWitnessNil(t *testing.T) {
	if _, err := ConfirmWitness(protocols.AgreementBoth(), nil, 4); err == nil {
		t.Fatal("nil witness must error")
	}
}
