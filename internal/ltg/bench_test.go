package ltg

import (
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkBuild(b *testing.B) {
	sys := protocols.MatchingA().Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(sys)
	}
}

func BenchmarkCheckLivelockFreedom(b *testing.B) {
	for _, name := range []string{"agreement-t01", "agreement-both", "gouda-acharya", "sum-not-two-ss", "mis"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CheckLivelockFreedom(p, CheckOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConfirmWitness(b *testing.B) {
	p := protocols.AgreementBoth()
	rep, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ConfirmWitness(p, rep.Witness, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearExtensions(b *testing.B) {
	procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
	dag := DependencyDAG(4, procs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LinearExtensions(dag, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormsPseudoLivelock(b *testing.B) {
	sys := protocols.SumNotTwoSolution().Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FormsPseudoLivelock(sys, sys.Trans)
	}
}
