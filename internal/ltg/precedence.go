package ltg

import (
	"fmt"

	"paramring/internal/graph"
)

// Precedence machinery for Definition 5.10 / Lemma 5.11 (Figures 5 and 6 of
// the paper): the local transitions of a livelock period form a partial
// order, and every precedence-preserving permutation of the schedule is
// again a livelock. On a unidirectional ring two scheduled transitions are
// dependent exactly when their processes share a variable — equal or
// ring-adjacent processes (a transition of P_i writes x_i and reads
// x_{i-1}, x_i) — which subsumes both the "enables" and the "collides"
// clauses of Definition 5.10.

// Dependent reports whether transitions by processes p and q (on a ring of
// size k) access a common variable.
func Dependent(k, p, q int) bool {
	d := (p - q + k) % k
	return d == 0 || d == 1 || d == k-1
}

// DependencyDAG builds the precedence DAG over the steps of one livelock
// period: an edge i -> j (i < j) whenever steps i and j are dependent.
// procs[i] is the process executing step i.
func DependencyDAG(k int, procs []int) *graph.Digraph {
	g := graph.New(len(procs))
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			if Dependent(k, procs[i], procs[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// IndependentPairs returns the pairs of steps (i < j) that are unordered by
// the precedence relation: no directed path connects them in either
// direction. For the paper's Example 5.2 schedule this yields exactly the
// three independent pairs of Figure 5.
func IndependentPairs(dag *graph.Digraph) [][2]int {
	n := dag.N()
	reach := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = dag.ReachableFrom(v)
	}
	var out [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !reach[i][j] && !reach[j][i] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// LinearExtensions enumerates every linear extension of the precedence DAG
// — every precedence-preserving permutation of the schedule (as sequences
// of original step indices). Since livelock schedules are defined up to
// cyclic rotation, step 0 is pinned first, matching the paper's "fix the
// starting local transition" convention. An error is returned if more than
// limit extensions exist (limit <= 0 selects 100000).
func LinearExtensions(dag *graph.Digraph, limit int) ([][]int, error) {
	if limit <= 0 {
		limit = 100000
	}
	n := dag.N()
	if n == 0 {
		return [][]int{{}}, nil
	}
	indeg := dag.InDegrees()
	if indeg[0] != 0 {
		return nil, fmt.Errorf("ltg: step 0 is not minimal in the precedence order")
	}
	var (
		out     [][]int
		current []int
		used    = make([]bool, n)
		rec     func() error
	)
	take := func(v int) {
		used[v] = true
		current = append(current, v)
		for _, w := range dag.Succ(v) {
			indeg[w]--
		}
	}
	untake := func(v int) {
		used[v] = false
		current = current[:len(current)-1]
		for _, w := range dag.Succ(v) {
			indeg[w]++
		}
	}
	rec = func() error {
		if len(current) == n {
			if len(out) >= limit {
				return fmt.Errorf("ltg: more than %d linear extensions", limit)
			}
			out = append(out, append([]int(nil), current...))
			return nil
		}
		for v := 0; v < n; v++ {
			if used[v] || indeg[v] != 0 {
				continue
			}
			take(v)
			err := rec()
			untake(v)
			if err != nil {
				return err
			}
		}
		return nil
	}
	take(0)
	if err := rec(); err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteSchedule applies a linear extension (a permutation of step
// indices) to a process schedule.
func PermuteSchedule(procs []int, perm []int) []int {
	out := make([]int, len(perm))
	for i, step := range perm {
		out[i] = procs[step]
	}
	return out
}

// ScheduleFromCycle recovers a process schedule from an explicit livelock
// cycle: procs[i] is a process whose transition realizes the step from
// cycle[i] to cycle[i+1] (cyclically). With it, the Definition 5.10
// machinery (DependencyDAG, IndependentPairs, LinearExtensions) applies to
// ANY model-checker-found livelock, not just hand-written schedules.
// The instance's ring size k and a position-difference probe identify the
// writer: exactly one position changes per interleaved step.
func ScheduleFromCycle(k int, decode func(id uint64) []int, cycle []uint64) ([]int, error) {
	procs := make([]int, len(cycle))
	for i := range cycle {
		from := decode(cycle[i])
		to := decode(cycle[(i+1)%len(cycle)])
		writer := -1
		for r := 0; r < k; r++ {
			if from[r] != to[r] {
				if writer != -1 {
					return nil, fmt.Errorf("ltg: step %d changes more than one position", i)
				}
				writer = r
			}
		}
		if writer == -1 {
			return nil, fmt.Errorf("ltg: step %d is a self-loop; cannot attribute a writer", i)
		}
		procs[i] = writer
	}
	return procs, nil
}
