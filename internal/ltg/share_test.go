package ltg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"paramring/internal/core"
)

// familyMember builds one self-disabling protocol of a fixed shape (domain
// 3, window [-1,0], legitimacy "sum != 2"): own-values 0 and 1 are movers
// whose targets are drawn from the terminal value 2, per-context at the
// given density. All members share the shape, so one skeleton LTG and one
// memo are transferable across them.
func familyMember(t *testing.T, rng *rand.Rand, idx int) *core.Protocol {
	t.Helper()
	moves := map[core.LocalState][]int{}
	for s := 0; s < 9; s++ {
		view := core.Decode(core.LocalState(s), 3, 2)
		if view[1] == 2 || rng.Intn(100) >= 60 {
			continue // terminal own-value, or no move for this state
		}
		moves[core.LocalState(s)] = []int{2}
	}
	p, err := core.NewFromTable(core.Config{
		Name:   fmt.Sprintf("fam-%d", idx),
		Domain: 3,
		Lo:     -1,
		Hi:     0,
		Legit:  func(v core.View) bool { return v[0]+v[1] != 2 },
	}, []core.TableAction{{Name: "m", Moves: moves}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A shared skeleton + memo must never change a report, and verifying many
// same-shape protocols through one memo must actually hit it (the fleet
// runner's reason to share).
func TestCheckLivelockFreedomSharedSkeletonMatchesIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	skeleton := Build(familyMember(t, rng, 0).Compile())
	memo := NewMemo()
	nonTrivial := 0
	for i := 0; i < 40; i++ {
		p := familyMember(t, rng, i)
		isolated, err := CheckLivelockFreedom(p, CheckOptions{})
		if err != nil {
			t.Fatalf("member %d isolated: %v", i, err)
		}
		shared, err := CheckLivelockFreedom(p, CheckOptions{Skeleton: skeleton, Memo: memo})
		if err != nil {
			t.Fatalf("member %d shared: %v", i, err)
		}
		if !reflect.DeepEqual(isolated, shared) {
			t.Fatalf("member %d: shared skeleton/memo changed the report:\nisolated: %+v\nshared:   %+v",
				i, isolated, shared)
		}
		if len(p.Compile().Trans) > 0 {
			nonTrivial++
		}
	}
	if nonTrivial < 20 {
		t.Fatalf("family too sparse to exercise the search: %d members with t-arcs", nonTrivial)
	}
	hits, misses := memo.Stats()
	if hits == 0 {
		t.Fatalf("no memo hits across 40 same-shape members (misses=%d): sharing bought nothing", misses)
	}
}

// A skeleton of a different shape must be ignored — the check silently
// rebuilds its own graphs and never consults the foreign memo.
func TestCheckLivelockFreedomMismatchedSkeletonIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := familyMember(t, rng, 1)

	other, err := core.NewFromTable(core.Config{
		Name:   "other-shape",
		Domain: 2,
		Lo:     -1,
		Hi:     0,
		Legit:  func(v core.View) bool { return v[0] == v[1] },
	}, []core.TableAction{{Name: "m", Moves: map[core.LocalState][]int{}}})
	if err != nil {
		t.Fatal(err)
	}
	foreign := Build(other.Compile())
	memo := NewMemo()

	want, err := CheckLivelockFreedom(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CheckLivelockFreedom(p, CheckOptions{Skeleton: foreign, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("mismatched skeleton changed the report:\nwant %+v\ngot  %+v", want, got)
	}
	if hits, misses := memo.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("memo consulted despite shape mismatch: hits=%d misses=%d", hits, misses)
	}
}

// SameShape must compare legitimacy, not just dimensions: two protocols
// with equal domain and window but different legit sets are not shape-
// compatible (the trail search reads per-state legitimacy).
func TestSameShapeDistinguishesLegitimacy(t *testing.T) {
	mk := func(name string, legit func(core.View) bool) *core.Protocol {
		p, err := core.NewFromTable(core.Config{
			Name: name, Domain: 3, Lo: -1, Hi: 0, Legit: legit,
		}, []core.TableAction{{Name: "m", Moves: map[core.LocalState][]int{}}})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mk("a", func(v core.View) bool { return v[0]+v[1] != 2 })
	b := mk("b", func(v core.View) bool { return v[0] == v[1] })
	la := Build(a.Compile())
	if !la.SameShape(a.Compile()) {
		t.Fatal("a protocol must be shape-compatible with itself")
	}
	if la.SameShape(b.Compile()) {
		t.Fatal("different legitimacy must break shape compatibility")
	}
}
