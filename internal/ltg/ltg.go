// Package ltg implements the Local Transition Graph of Section 5 of the
// paper and the livelock-freedom machinery around Theorem 5.14.
//
// The LTG augments the Right Continuation Graph (s-arcs) with the local
// transitions of the representative process (t-arcs). For unidirectional
// rings with self-disabling actions, the paper proves that every livelock —
// reduced via the precedence-preserving permutation Lemma 5.11 to a
// *contiguous* livelock — manifests in the LTG as a closed alternating trail
// T_R whose t-arcs form a pseudo-livelock and which visits an illegitimate
// local state (Theorem 5.14). The contrapositive proves livelock freedom
// for every ring size K.
//
// The checker in this package searches for such trails as closed walks in a
// "composite" graph: one composite edge per (t-arc, following s-run), where
// the s-run's intermediate states must themselves be sources of t-arcs of
// the candidate trail (the w1 condition of Lemma 5.12 — those are the other
// |E|-1 enablements of the contiguous livelock, which fire elsewhere in the
// trail). The search over-approximates trail existence, so a Free verdict is
// sound; a PotentialLivelock verdict may be spurious, exactly as the paper's
// sum-not-two example demonstrates (the condition is sufficient, not
// necessary).
package ltg

import (
	"fmt"

	"paramring/internal/core"
	"paramring/internal/graph"
	"paramring/internal/rcg"
)

// LTG is the Local Transition Graph: s-arcs (continuation relation) plus
// t-arcs (local transitions).
type LTG struct {
	sys *core.System
	r   *rcg.RCG
}

// Build constructs the LTG of a compiled protocol: the RCG's s-arcs
// (Section 4) plus the local transitions as t-arcs — the graph of
// Section 5 that Figure 4 draws for the matching protocol.
func Build(sys *core.System) *LTG {
	return &LTG{sys: sys, r: rcg.Build(sys)}
}

// BuildFrom constructs the LTG from an RCG the caller already built for sys,
// sharing the s-arc skeleton instead of rebuilding it (the synthesis engine
// overlays every candidate's t-arcs on one such skeleton).
func BuildFrom(sys *core.System, r *rcg.RCG) *LTG {
	return &LTG{sys: sys, r: r}
}

// System returns the underlying compiled protocol.
func (l *LTG) System() *core.System { return l.sys }

// RCG returns the continuation-relation component (the s-arcs).
func (l *LTG) RCG() *rcg.RCG { return l.r }

// SArcs returns the s-arc digraph over local states.
func (l *LTG) SArcs() *graph.Digraph { return l.r.Graph() }

// TArcs returns the t-arcs (the compiled local transitions).
func (l *LTG) TArcs() []core.LocalTransition { return l.sys.Trans }

// SameShape reports whether sys describes a protocol with the same shape as
// l's system: equal domain, read window, and per-state legitimacy. Shape is
// everything the trail search reads apart from the t-arc overlay — the
// s-arcs are a function of domain and window alone, and the own-value
// projection and illegitimacy tests follow from (domain, window, legit) —
// so a same-shape LTG can donate its s-arc skeleton and its Theorem 5.14
// verdict memo to checks of sys without affecting any verdict.
func (l *LTG) SameShape(sys *core.System) bool {
	a, b := l.sys.Protocol(), sys.Protocol()
	alo, ahi := a.Window()
	blo, bhi := b.Window()
	if a.Domain() != b.Domain() || alo != blo || ahi != bhi {
		return false
	}
	if len(l.sys.Legit) != len(sys.Legit) {
		return false
	}
	for s, ok := range l.sys.Legit {
		if ok != sys.Legit[s] {
			return false
		}
	}
	return true
}

// WriteProjection builds the projection of a t-arc set on the writable
// variable: a digraph over domain values with one edge per t-arc, from the
// own-value of its source to the own-value of its destination
// (Definition 5.13's "repetitive sequence of values" lives in this graph).
func WriteProjection(sys *core.System, tarcs []core.LocalTransition) *graph.Digraph {
	g := graph.New(sys.Protocol().Domain())
	for _, t := range tarcs {
		g.AddEdge(sys.OwnValue(t.Src), sys.OwnValue(t.Dst))
	}
	return g
}

// FormsPseudoLivelock reports whether a non-empty t-arc set forms a
// pseudo-livelock: every write-projected edge lies on a directed cycle of
// the projection (so the writes can repeat indefinitely). This matches the
// paper's classifications: {t01,t12,t20} and {tij,tji} qualify, while
// {t21,t12,t01} does not (the 0->1 write can never recur).
func FormsPseudoLivelock(sys *core.System, tarcs []core.LocalTransition) bool {
	if len(tarcs) == 0 {
		return false
	}
	g := WriteProjection(sys, tarcs)
	_, idx := g.SCCIndex()
	for _, t := range tarcs {
		u, v := sys.OwnValue(t.Src), sys.OwnValue(t.Dst)
		if u == v {
			continue // self-loop edge is trivially on a cycle
		}
		if idx[u] != idx[v] {
			return false
		}
	}
	return true
}

// HasPseudoLivelockSubset reports whether some non-empty subset of the
// t-arcs forms a pseudo-livelock — equivalently, whether the full write
// projection contains any directed cycle.
func HasPseudoLivelockSubset(sys *core.System, tarcs []core.LocalTransition) bool {
	return WriteProjection(sys, tarcs).HasCycle()
}

// MinimalPseudoLivelockSubsets enumerates the subsets of tarcs whose write
// projections are the elementary cycles of the full projection — the
// minimal "repeating write sequences". Used by the synthesis walkthrough
// output to explain why candidate sets fail.
func MinimalPseudoLivelockSubsets(sys *core.System, tarcs []core.LocalTransition) [][]core.LocalTransition {
	g := WriteProjection(sys, tarcs)
	cycles, err := g.ElementaryCycles(0)
	if err != nil {
		// The projection graph has at most domain vertices; treat overflow
		// as "too many to list" and return nothing rather than guessing.
		return nil
	}
	var out [][]core.LocalTransition
	for _, c := range cycles {
		onCycle := map[[2]int]bool{}
		for _, e := range graph.CycleEdges(c) {
			onCycle[e] = true
		}
		var sub []core.LocalTransition
		for _, t := range tarcs {
			if onCycle[[2]int{sys.OwnValue(t.Src), sys.OwnValue(t.Dst)}] {
				sub = append(sub, t)
			}
		}
		if len(sub) > 0 {
			out = append(out, sub)
		}
	}
	return out
}

// FormatTArcs renders a t-arc set like "{t(00->01), t(11->12)}" with named
// states and action labels.
func FormatTArcs(sys *core.System, tarcs []core.LocalTransition) string {
	p := sys.Protocol()
	s := "{"
	for i, t := range tarcs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%s->%s", t.Action, p.FormatState(t.Src), p.FormatState(t.Dst))
	}
	return s + "}"
}
