package ltg

import (
	"reflect"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

// systemsUnderTest collects compiled self-disabling zoo protocols with few
// enough t-arcs for the exact subset search.
func systemsUnderTest(t *testing.T) map[string]*core.System {
	t.Helper()
	out := map[string]*core.System{}
	for name, p := range protocols.All() {
		sys := p.Compile()
		if !sys.IsSelfDisabling() || len(sys.Trans) == 0 || len(sys.Trans) > 12 {
			continue
		}
		out[name] = sys
	}
	if len(out) == 0 {
		t.Fatal("no usable zoo systems")
	}
	return out
}

// FindTrailSubset with mustInclude < 0 must agree exactly with the
// CheckLivelockFreedom verdict (it *is* its search loop).
func TestFindTrailSubsetMatchesCheck(t *testing.T) {
	for name, sys := range systemsUnderTest(t) {
		rep, err := CheckLivelockFreedom(sys.Protocol(), CheckOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w, checked := Build(sys).FindTrailSubset(sys.Trans, -1, nil)
		if (w != nil) != (rep.Verdict == VerdictPotentialLivelock) {
			t.Fatalf("%s: FindTrailSubset witness=%v but verdict %s", name, w != nil, rep.Verdict)
		}
		if rep.Verdict == VerdictPotentialLivelock {
			if got := TrailReason(sys, w); got != rep.Reason {
				t.Fatalf("%s: reason mismatch:\n  search: %s\n  check:  %s", name, got, rep.Reason)
			}
		} else if checked != rep.SubsetsChecked {
			t.Fatalf("%s: checked %d subsets, report says %d", name, checked, rep.SubsetsChecked)
		}
	}
}

// A Memo must never change what the search returns — same witness, same
// subset count — while recording hits on repeated queries.
func TestFindTrailSubsetMemoTransparent(t *testing.T) {
	for name, sys := range systemsUnderTest(t) {
		l := Build(sys)
		memo := NewMemo()
		bare, bareChecked := l.FindTrailSubset(sys.Trans, -1, nil)
		first, firstChecked := l.FindTrailSubset(sys.Trans, -1, memo)
		second, secondChecked := l.FindTrailSubset(sys.Trans, -1, memo)
		if !reflect.DeepEqual(bare, first) || !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: witness changed with memo", name)
		}
		if bareChecked != firstChecked || firstChecked != secondChecked {
			t.Fatalf("%s: subset counts differ: %d / %d / %d", name, bareChecked, firstChecked, secondChecked)
		}
		hits, misses := memo.Stats()
		if misses == 0 {
			t.Fatalf("%s: first pass recorded no misses", name)
		}
		if hits < uint64(secondChecked) {
			t.Fatalf("%s: second pass should hit the cache %d times, got %d hits", name, secondChecked, hits)
		}
	}
}

// The mustInclude filter must visit exactly the masks containing that t-arc,
// in ascending mask order — verified against a brute-force scan.
func TestFindTrailSubsetMustInclude(t *testing.T) {
	for name, sys := range systemsUnderTest(t) {
		l := Build(sys)
		tarcs := sys.Trans
		for i := range tarcs {
			got, _ := l.FindTrailSubset(tarcs, i, NewMemo())
			// Brute force: first qualifying mask containing bit i.
			var want *TrailWitness
			for mask := 1; mask < 1<<len(tarcs); mask++ {
				if mask&(1<<i) == 0 {
					continue
				}
				subset := subsetOf(tarcs, mask)
				if !FormsPseudoLivelock(sys, subset) {
					continue
				}
				if w := l.trailFor(subset); w != nil {
					want = w
					break
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s arc %d: mustInclude search diverges from brute force", name, i)
			}
		}
	}
}

// Non-vacuity: on known potential-livelock systems (agreement with both
// corrections, Gouda-Acharya) the subset search must produce a witness, and
// its trail must visit an illegitimate state.
func TestFindTrailSubsetFindsKnownTrail(t *testing.T) {
	for _, p := range []*core.Protocol{protocols.AgreementBoth(), protocols.GoudaAcharya()} {
		sys := p.Compile()
		w, _ := Build(sys).FindTrailSubset(sys.Trans, -1, nil)
		if w == nil {
			t.Fatalf("%s: no trail found on a known potential-livelock protocol", p.Name())
		}
		if len(w.IllegitimateStates) == 0 {
			t.Fatalf("%s: witness lacks an illegitimate state", p.Name())
		}
	}
}
