package ltg_test

import (
	"fmt"

	"paramring/internal/ltg"
	"paramring/internal/protocols"
)

// Check livelock-freedom for every ring size with Theorem 5.14, then tell a
// real livelock apart from a spurious trail with witness confirmation.
func ExampleCheckLivelockFreedom() {
	// One-sided agreement is provably livelock-free for every K.
	rep, err := ltg.CheckLivelockFreedom(protocols.AgreementOneSided("t01"), ltg.CheckOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("one-sided:", rep.Verdict)

	// Both-sided agreement trips the sufficient condition — and the witness
	// reconstructs as a genuine livelock.
	rep, err = ltg.CheckLivelockFreedom(protocols.AgreementBoth(), ltg.CheckOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("both-sided:", rep.Verdict)
	conf, err := ltg.ConfirmWitness(protocols.AgreementBoth(), rep.Witness, 6)
	if err != nil {
		panic(err)
	}
	fmt.Println("witness confirmed:", conf.Confirmed, "at K =", conf.K)
	// Output:
	// one-sided: livelock-free
	// both-sided: potential-livelock
	// witness confirmed: true at K = 3
}

// The precedence relation of the paper's Example 5.2 livelock: three
// independent pairs yield 2^3 = 8 precedence-preserving permutations
// (Figure 5).
func ExampleLinearExtensions() {
	procs := []int{1, 0, 2, 3, 1, 0, 2, 3}
	dag := ltg.DependencyDAG(4, procs)
	fmt.Println("independent pairs:", len(ltg.IndependentPairs(dag)))
	exts, err := ltg.LinearExtensions(dag, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("permutations:", len(exts))
	// Output:
	// independent pairs: 3
	// permutations: 8
}
