package ltg

import (
	"math/rand"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protogen"
)

// Soundness of Theorem 5.14's checker under nondeterministic actions: a
// Free verdict must never coexist with an explicit livelock at any checked
// ring size. This widens the deterministic soundness test with protogen's
// nondeterministic generator.
func TestLivelockFreedomSoundnessNondetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(60321))
	free, flagged := 0, 0
	for trial := 0; trial < 250; trial++ {
		p := protogen.Random(rng, protogen.Options{
			SelfDisabling: true,
			MovePercent:   65,
			Nondet:        true,
		})
		rep, err := CheckLivelockFreedom(p, CheckOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.Verdict != VerdictFree {
			flagged++
			continue
		}
		free++
		for k := 2; k <= 6; k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if c := in.FindLivelock(); c != nil {
				t.Fatalf("trial %d: UNSOUND: free verdict but K=%d livelock %s",
					trial, k, in.FormatCycle(c))
			}
		}
	}
	if free < 40 || flagged < 10 {
		t.Fatalf("distribution too skewed to be meaningful: free=%d flagged=%d", free, flagged)
	}
}

// ConfirmWitness consistency: whenever it confirms, the returned cycle is a
// genuine livelock of the original protocol at the reported K.
func TestConfirmWitnessCycleVerifiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	confirmed, spurious := 0, 0
	for trial := 0; trial < 150; trial++ {
		p := protogen.Random(rng, protogen.Options{
			SelfDisabling: true,
			MovePercent:   70,
		})
		rep, err := CheckLivelockFreedom(p, CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != VerdictPotentialLivelock {
			continue
		}
		conf, err := ConfirmWitness(p, rep.Witness, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !conf.Confirmed {
			spurious++
			continue
		}
		confirmed++
		in, err := explicit.NewInstance(p, conf.K)
		if err != nil {
			t.Fatal(err)
		}
		if !in.IsLivelock(conf.Cycle) {
			t.Fatalf("trial %d: confirmation cycle is not a livelock of the original protocol", trial)
		}
	}
	if confirmed == 0 {
		t.Fatal("property never exercised a confirmed witness")
	}
	t.Logf("witness outcomes: %d confirmed, %d spurious (the sufficient-not-necessary gap)", confirmed, spurious)
}

// Pseudo-livelock necessity: when an explicit livelock exists, the local
// transitions actually executed along it must form a pseudo-livelock — the
// forward direction of Theorem 5.14's condition 2, checked on concrete
// livelocks of random protocols. A process in a livelock repeats its write
// sequence, so the used t-arcs' write projection must be all-on-cycles.
func TestLivelockTArcsFormPseudoLivelockRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	exercised := 0
	for trial := 0; trial < 300 && exercised < 25; trial++ {
		p := protogen.Random(rng, protogen.Options{
			SelfDisabling: true,
			MovePercent:   75,
		})
		sys := p.Compile()
		for k := 3; k <= 5; k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			cycle := in.FindLivelock()
			if cycle == nil {
				continue
			}
			exercised++
			used := map[core.LocalTransition]bool{}
			for i := range cycle {
				from, to := cycle[i], cycle[(i+1)%len(cycle)]
				for _, gt := range in.SuccessorsDetailed(from) {
					if gt.To != to {
						continue
					}
					src := p.Encode(in.View(from, gt.Process))
					dst := p.Encode(in.View(to, gt.Process))
					for _, lt := range sys.Trans {
						if lt.Src == src && lt.Dst == dst {
							used[lt] = true
						}
					}
				}
			}
			usedTrans := make([]core.LocalTransition, 0, len(used))
			for lt := range used {
				usedTrans = append(usedTrans, lt)
			}
			if !FormsPseudoLivelock(sys, usedTrans) {
				t.Fatalf("trial %d K=%d: livelock t-arcs %s do not form a pseudo-livelock",
					trial, k, FormatTArcs(sys, usedTrans))
			}
			break
		}
	}
	if exercised < 10 {
		t.Fatalf("property too weak: only %d livelocks exercised", exercised)
	}
}
