package ltg

import (
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func TestDiagnoseAgreementBoth(t *testing.T) {
	p := protocols.AgreementBoth()
	d, err := Diagnose(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictPotentialLivelock {
		t.Fatalf("verdict = %v", d.Verdict)
	}
	// 2 t-arcs -> 3 subsets; only {t01, t10} pseudo-livelocks, and it
	// forms a trail.
	if d.TotalSubsets != 3 || len(d.Subsets) != 1 {
		t.Fatalf("subsets: total=%d pseudo=%d", d.TotalSubsets, len(d.Subsets))
	}
	if !d.Subsets[0].FormsTrail || d.Subsets[0].Witness == nil {
		t.Fatal("the pair must form a trail")
	}
	sum := d.Summary(p.Compile())
	if !strings.Contains(sum, "TRAIL") || !strings.Contains(sum, "potential-livelock") {
		t.Fatalf("summary: %s", sum)
	}
}

func TestDiagnoseSumNotTwoAccepted(t *testing.T) {
	// {t21, t12, t01}: the pair {t21, t12} pseudo-livelocks but forms no
	// trail — the paper's acceptance argument, now machine-readable.
	enc := func(a, b int) core.LocalState { return core.Encode(core.View{a, b}, 3) }
	p, err := core.NewFromTable(core.Config{
		Name: "snt-accepted", Domain: 3, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0]+v[1] != 2 },
	}, []core.TableAction{
		{Name: "t21", Moves: map[core.LocalState][]int{enc(0, 2): {1}}},
		{Name: "t12", Moves: map[core.LocalState][]int{enc(1, 1): {2}}},
		{Name: "t01", Moves: map[core.LocalState][]int{enc(2, 0): {1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diagnose(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictFree {
		t.Fatalf("verdict = %v", d.Verdict)
	}
	if len(d.Subsets) == 0 {
		t.Fatal("the {t21,t12} pseudo-livelock must be reported")
	}
	for _, sd := range d.Subsets {
		if sd.FormsTrail {
			t.Fatalf("no subset should form a trail: %v", FormatTArcs(p.Compile(), sd.TArcs))
		}
	}
}

func TestDiagnoseEmptyAndErrors(t *testing.T) {
	d, err := Diagnose(protocols.Coloring(3), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictFree || d.TotalSubsets != 0 {
		t.Fatalf("empty protocol diagnosis: %+v", d)
	}
	if _, err := Diagnose(protocols.MatchingB(), CheckOptions{}); err == nil {
		t.Fatal("self-enabling protocol must be rejected")
	}
	if _, err := Diagnose(protocols.MatchingA(), CheckOptions{MaxTArcs: 4}); err == nil {
		t.Fatal("t-arc overflow must be rejected")
	}
}

// Diagnose and CheckLivelockFreedom must agree on the verdict.
func TestDiagnoseAgreesWithChecker(t *testing.T) {
	for _, name := range []string{"agreement-t01", "agreement-both", "gouda-acharya", "sum-not-two-ss"} {
		p := protocols.All()[name]
		rep, err := CheckLivelockFreedom(p, CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Diagnose(p, CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != d.Verdict {
			t.Fatalf("%s: checker %v vs diagnosis %v", name, rep.Verdict, d.Verdict)
		}
	}
}
