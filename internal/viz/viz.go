// Package viz renders RCGs and LTGs in Graphviz DOT, regenerating the
// paper's figures: legitimate local states are drawn as filled nodes,
// illegitimate ones as plain double circles, s-arcs (continuation relation)
// as dashed edges and t-arcs (local transitions) as solid labeled edges —
// matching the visual conventions of Figures 1-4 and 8-12.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"paramring/internal/core"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
)

// Options controls figure rendering.
type Options struct {
	// Name is the DOT graph name (defaults to the protocol name).
	Name string
	// OnlyDeadlocks restricts vertices to local deadlock states (Figures 2
	// and 3 draw the continuation relation over local deadlocks only).
	OnlyDeadlocks bool
	// IncludeSArcs includes the continuation relation (default true via
	// NewOptions-like semantics: the zero value includes them; set
	// OmitSArcs to drop).
	OmitSArcs bool
	// OmitTArcs drops local transitions (RCG-only figures).
	OmitTArcs bool
	// RankDir sets the Graphviz layout direction (e.g. "LR").
	RankDir string
	// Highlight lists local states to emphasize (drawn bold red).
	Highlight []core.LocalState
}

// RCGDOT renders the Right Continuation Graph of a protocol.
func RCGDOT(r *rcg.RCG, opts Options) string {
	opts.OmitTArcs = true
	return render(r.System(), r, nil, opts)
}

// LTGDOT renders the full Local Transition Graph (s-arcs + t-arcs).
func LTGDOT(l *ltg.LTG, opts Options) string {
	return render(l.System(), l.RCG(), l.TArcs(), opts)
}

func render(sys *core.System, r *rcg.RCG, tarcs []core.LocalTransition, opts Options) string {
	p := sys.Protocol()
	name := opts.Name
	if name == "" {
		name = p.Name()
	}
	include := func(v int) bool {
		return !opts.OnlyDeadlocks || sys.IsDeadlock[v]
	}
	highlight := map[core.LocalState]bool{}
	for _, h := range opts.Highlight {
		highlight[h] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	if opts.RankDir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", opts.RankDir)
	}
	b.WriteString("  node [fontname=\"Helvetica\"];\n")

	var vertices []int
	for v := 0; v < sys.N(); v++ {
		if include(v) {
			vertices = append(vertices, v)
		}
	}
	sort.Ints(vertices)
	for _, v := range vertices {
		label := p.FormatState(core.LocalState(v))
		attrs := []string{}
		if sys.Legit[v] {
			attrs = append(attrs, "style=filled", "fillcolor=lightgray")
		} else {
			attrs = append(attrs, "shape=doublecircle")
		}
		if highlight[core.LocalState(v)] {
			attrs = append(attrs, "color=red", "penwidth=2")
		}
		fmt.Fprintf(&b, "  n%d [label=%q,%s];\n", v, label, strings.Join(attrs, ","))
	}
	if !opts.OmitSArcs {
		for _, e := range r.Graph().Edges() {
			if include(e[0]) && include(e[1]) {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed,color=gray40];\n", e[0], e[1])
			}
		}
	}
	if !opts.OmitTArcs {
		for _, t := range tarcs {
			if include(int(t.Src)) && include(int(t.Dst)) {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q,penwidth=1.5];\n", t.Src, t.Dst, t.Action)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
