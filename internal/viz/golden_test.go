package viz

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden-file tests pin the exact DOT output of the figure renderer: the
// output is deterministic by design (sorted vertices and edges), so any
// change to figure rendering shows up as a readable diff.
func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		file string
		gen  func() string
	}{
		{"agreement-both-ltg.dot", func() string {
			return LTGDOT(ltg.Build(protocols.AgreementBoth().Compile()), Options{Name: "agreement-both"})
		}},
		{"matchingA-deadlock-rcg.dot", func() string {
			return RCGDOT(rcg.Build(protocols.MatchingA().Compile()), Options{Name: "figure2", OnlyDeadlocks: true})
		}},
		{"sum-not-two-ss-ltg.dot", func() string {
			return LTGDOT(ltg.Build(protocols.SumNotTwoSolution().Compile()), Options{Name: "figure12", RankDir: "LR"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			got := tc.gen()
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("figure output changed; run with -update if intended.\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}
