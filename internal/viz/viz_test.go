package viz

import (
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
)

func TestRCGDOTFigure1(t *testing.T) {
	r := rcg.Build(protocols.MatchingStateSpace().Compile())
	dot := RCGDOT(r, Options{Name: "figure1"})
	if !strings.Contains(dot, `digraph "figure1"`) {
		t.Fatal("missing graph name")
	}
	// All 27 vertices present.
	if got := strings.Count(dot, "label="); got != 27 {
		t.Fatalf("vertices = %d, want 27", got)
	}
	// 81 s-arcs, all dashed.
	if got := strings.Count(dot, "style=dashed"); got != 81 {
		t.Fatalf("s-arcs = %d, want 81", got)
	}
	if strings.Contains(dot, "penwidth=1.5") {
		t.Fatal("RCG must not contain t-arcs")
	}
	// Spot labels.
	for _, want := range []string{`"lls"`, `"rsr"`, `"sss"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("missing label %s", want)
		}
	}
}

func TestRCGDOTOnlyDeadlocks(t *testing.T) {
	r := rcg.Build(protocols.MatchingA().Compile())
	dot := RCGDOT(r, Options{OnlyDeadlocks: true})
	// Figure 2: exactly the 11 local deadlocks of Example 4.2.
	if got := strings.Count(dot, "label="); got != 11 {
		t.Fatalf("deadlock vertices = %d, want 11", got)
	}
}

func TestLTGDOTHasBothArcTypes(t *testing.T) {
	l := ltg.Build(protocols.AgreementBoth().Compile())
	dot := LTGDOT(l, Options{RankDir: "LR"})
	if !strings.Contains(dot, "style=dashed") {
		t.Fatal("missing s-arcs")
	}
	if !strings.Contains(dot, `label="t01"`) || !strings.Contains(dot, `label="t10"`) {
		t.Fatal("missing labeled t-arcs")
	}
	if !strings.Contains(dot, "rankdir=LR") {
		t.Fatal("missing rankdir")
	}
	// Legitimate states filled, illegitimate double circles.
	if !strings.Contains(dot, "fillcolor=lightgray") || !strings.Contains(dot, "shape=doublecircle") {
		t.Fatal("legitimacy styling missing")
	}
}

func TestLTGDOTHighlight(t *testing.T) {
	p := protocols.AgreementBoth()
	l := ltg.Build(p.Compile())
	h := core.Encode(core.View{1, 0}, 2)
	dot := LTGDOT(l, Options{Highlight: []core.LocalState{h}})
	if !strings.Contains(dot, "color=red") {
		t.Fatal("highlight missing")
	}
}

func TestLTGDOTOmitSArcs(t *testing.T) {
	l := ltg.Build(protocols.AgreementBoth().Compile())
	dot := LTGDOT(l, Options{OmitSArcs: true})
	if strings.Contains(dot, "style=dashed") {
		t.Fatal("s-arcs should be omitted")
	}
}
