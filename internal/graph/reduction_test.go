package graph

import (
	"math/rand"
	"testing"
)

func TestTransitiveReductionDiamond(t *testing.T) {
	// 0->1->3, 0->2->3, plus the redundant 0->3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	r := g.TransitiveReduction()
	if r.HasEdge(0, 3) {
		t.Fatal("redundant edge 0->3 must be removed")
	}
	if r.M() != 4 {
		t.Fatalf("edges = %d, want 4", r.M())
	}
}

func TestTransitiveReductionPanicsOnCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.TransitiveReduction()
}

// Property: the reduction preserves reachability exactly, and no edge of
// the reduction is removable.
func TestTransitiveReductionPreservesReachabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		g := New(n)
		// Random DAG: edges only low -> high.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		r := g.TransitiveReduction()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if g.HasPath(u, v) != r.HasPath(u, v) {
					t.Fatalf("trial %d: reachability changed at (%d,%d)", trial, u, v)
				}
			}
		}
		// Minimality: removing any edge breaks reachability.
		for _, e := range r.Edges() {
			smaller := New(n)
			for _, f := range r.Edges() {
				if f != e {
					smaller.AddEdge(f[0], f[1])
				}
			}
			if smaller.HasPath(e[0], e[1]) {
				t.Fatalf("trial %d: edge %v is redundant in the reduction", trial, e)
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := g.TransitiveClosure()
	if !c.HasEdge(0, 2) || !c.HasEdge(0, 1) || !c.HasEdge(1, 2) {
		t.Fatal("closure missing edges")
	}
	if c.HasEdge(2, 0) || c.HasEdge(0, 0) {
		t.Fatalf("closure has phantom edges: %v", c.Edges())
	}
	// Cycles close reflexively.
	g2 := New(2)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 0)
	c2 := g2.TransitiveClosure()
	if !c2.HasEdge(0, 0) || !c2.HasEdge(1, 1) {
		t.Fatal("cycle members must self-reach in the closure")
	}
}
