package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycleLimit is returned (wrapped) when elementary-cycle enumeration
// exceeds its configured cap. Callers that use cycle enumeration to *prove*
// the absence of bad structures must treat this as "unknown", never as proof.
var ErrCycleLimit = errors.New("graph: elementary cycle limit exceeded")

// DefaultCycleLimit bounds ElementaryCycles output. The local state spaces of
// the paper's protocols are tiny (<= 27 vertices), so this is generous; it
// exists to keep adversarial/property-test inputs from exploding.
const DefaultCycleLimit = 200000

// ElementaryCycles enumerates all elementary (simple) directed cycles of g
// using Johnson's algorithm. Each cycle is a vertex sequence c[0..k-1] with
// implicit closing edge c[k-1]->c[0], rotated so that c[0] is the smallest
// vertex. Self-loops yield single-vertex cycles. Cycles are returned in a
// deterministic order.
//
// Both the circuit walk and the unblock cascade run on explicit heap stacks,
// never on the call stack, so adversarially deep graphs (a single cycle
// through every vertex, say) cannot overflow the goroutine stack.
//
// If more than limit cycles exist, a wrapped ErrCycleLimit is returned along
// with the cycles found so far. limit <= 0 selects DefaultCycleLimit.
func (g *Digraph) ElementaryCycles(limit int) ([][]int, error) {
	if limit <= 0 {
		limit = DefaultCycleLimit
	}
	var (
		cycles  [][]int
		blocked = make([]bool, g.n)
		bmap    = make([][]int, g.n)
		stack   []int
		ubStack []int
	)

	// unblock clears the blocked flag of u and cascades through the b-map
	// chains. Visiting a vertex means unblocking it and clearing its b-list;
	// the visited set is plain reachability over blocked vertices, so the
	// iterative traversal reproduces the recursive cascade exactly.
	unblock := func(u int) {
		blocked[u] = false
		ubStack = append(ubStack[:0], bmap[u]...)
		bmap[u] = bmap[u][:0]
		for len(ubStack) > 0 {
			w := ubStack[len(ubStack)-1]
			ubStack = ubStack[:len(ubStack)-1]
			if !blocked[w] {
				continue
			}
			blocked[w] = false
			ubStack = append(ubStack, bmap[w]...)
			bmap[w] = bmap[w][:0]
		}
	}

	// circuit is Johnson's recursive CIRCUIT procedure converted to an
	// explicit frame stack: each frame holds the vertex, the next adjacency
	// index to examine, and whether a cycle was found below it.
	type frame struct {
		v     int
		next  int
		found bool
	}
	var frames []frame
	circuit := func(s int, sub *Digraph) error {
		frames = append(frames[:0], frame{v: s})
		stack = append(stack[:0], s)
		blocked[s] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := sub.adj[f.v]
			if f.next < len(adj) {
				w := adj[f.next]
				f.next++
				if w == s {
					if len(cycles) >= limit {
						return fmt.Errorf("%w (limit %d)", ErrCycleLimit, limit)
					}
					cycles = append(cycles, append([]int(nil), stack...))
					f.found = true
					continue
				}
				if !blocked[w] {
					frames = append(frames, frame{v: w})
					stack = append(stack, w)
					blocked[w] = true
				}
				continue
			}
			// Post-order: the frame is exhausted.
			if f.found {
				unblock(f.v)
			} else {
				for _, w := range adj {
					bmap[w] = append(bmap[w], f.v)
				}
			}
			stack = stack[:len(stack)-1]
			found := f.found
			frames = frames[:len(frames)-1]
			if found && len(frames) > 0 {
				frames[len(frames)-1].found = true
			}
		}
		return nil
	}

	for s := 0; s < g.n; s++ {
		// Subgraph on vertices >= s, restricted to the SCC containing s.
		high := g.InducedSubgraph(func(v int) bool { return v >= s })
		_, idx := high.SCCIndex()
		sccOfS := idx[s]
		sub := high.InducedSubgraph(func(v int) bool { return idx[v] == sccOfS })
		if sub.OutDegree(s) == 0 {
			continue
		}
		for _, v := range sub.ReachableSorted(s) {
			blocked[v] = false
			bmap[v] = bmap[v][:0]
		}
		if err := circuit(s, sub); err != nil {
			sortCycles(cycles)
			return cycles, err
		}
	}
	sortCycles(cycles)
	return cycles, nil
}

// ReachableSorted returns the sorted list of vertices reachable from s.
func (g *Digraph) ReachableSorted(s int) []int {
	set := g.ReachableFrom(s)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortCycles(cs [][]int) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// CyclesThroughAny returns the elementary cycles that contain at least one
// vertex satisfying mark.
func (g *Digraph) CyclesThroughAny(mark func(v int) bool, limit int) ([][]int, error) {
	all, err := g.ElementaryCycles(limit)
	var out [][]int
	for _, c := range all {
		for _, v := range c {
			if mark(v) {
				out = append(out, c)
				break
			}
		}
	}
	return out, err
}

// HasCycleThroughAny reports whether some directed cycle passes through a
// vertex satisfying mark. This needs no cycle enumeration: a vertex lies on a
// cycle iff it belongs to a nontrivial SCC (or carries a self-loop).
func (g *Digraph) HasCycleThroughAny(mark func(v int) bool) bool {
	on := g.VertexOnCycle()
	for v := 0; v < g.n; v++ {
		if on[v] && mark(v) {
			return true
		}
	}
	return false
}

// CycleEdges converts a cycle vertex sequence into its edge list, including
// the closing edge.
func CycleEdges(cycle []int) [][2]int {
	edges := make([][2]int, 0, len(cycle))
	for i, u := range cycle {
		v := cycle[(i+1)%len(cycle)]
		edges = append(edges, [2]int{u, v})
	}
	return edges
}
