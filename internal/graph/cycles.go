package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycleLimit is returned (wrapped) when elementary-cycle enumeration
// exceeds its configured cap. Callers that use cycle enumeration to *prove*
// the absence of bad structures must treat this as "unknown", never as proof.
var ErrCycleLimit = errors.New("graph: elementary cycle limit exceeded")

// DefaultCycleLimit bounds ElementaryCycles output. The local state spaces of
// the paper's protocols are tiny (<= 27 vertices), so this is generous; it
// exists to keep adversarial/property-test inputs from exploding.
const DefaultCycleLimit = 200000

// ElementaryCycles enumerates all elementary (simple) directed cycles of g
// using Johnson's algorithm. Each cycle is a vertex sequence c[0..k-1] with
// implicit closing edge c[k-1]->c[0], rotated so that c[0] is the smallest
// vertex. Self-loops yield single-vertex cycles. Cycles are returned in a
// deterministic order.
//
// If more than limit cycles exist, a wrapped ErrCycleLimit is returned along
// with the cycles found so far. limit <= 0 selects DefaultCycleLimit.
func (g *Digraph) ElementaryCycles(limit int) ([][]int, error) {
	if limit <= 0 {
		limit = DefaultCycleLimit
	}
	var (
		cycles  [][]int
		blocked = make([]bool, g.n)
		bmap    = make([][]int, g.n)
		stack   []int
	)

	// Johnson processes, for each start vertex s in increasing order, the
	// subgraph induced on vertices >= s within the SCC of s.
	var (
		unblock func(u int)
		circuit func(v, s int, sub *Digraph) (bool, error)
	)
	unblock = func(u int) {
		blocked[u] = false
		for _, w := range bmap[u] {
			if blocked[w] {
				unblock(w)
			}
		}
		bmap[u] = bmap[u][:0]
	}
	circuit = func(v, s int, sub *Digraph) (bool, error) {
		found := false
		stack = append(stack, v)
		blocked[v] = true
		for _, w := range sub.adj[v] {
			if w == s {
				if len(cycles) >= limit {
					return found, fmt.Errorf("%w (limit %d)", ErrCycleLimit, limit)
				}
				cyc := append([]int(nil), stack...)
				cycles = append(cycles, cyc)
				found = true
				continue
			}
			if !blocked[w] {
				f, err := circuit(w, s, sub)
				if f {
					found = true
				}
				if err != nil {
					return found, err
				}
			}
		}
		if found {
			unblock(v)
		} else {
			for _, w := range sub.adj[v] {
				bmap[w] = append(bmap[w], v)
			}
		}
		stack = stack[:len(stack)-1]
		return found, nil
	}

	for s := 0; s < g.n; s++ {
		// Subgraph on vertices >= s, restricted to the SCC containing s.
		high := g.InducedSubgraph(func(v int) bool { return v >= s })
		_, idx := high.SCCIndex()
		sccOfS := idx[s]
		sub := high.InducedSubgraph(func(v int) bool { return idx[v] == sccOfS })
		if sub.OutDegree(s) == 0 {
			continue
		}
		for _, v := range sub.ReachableSorted(s) {
			blocked[v] = false
			bmap[v] = bmap[v][:0]
		}
		stack = stack[:0]
		if _, err := circuit(s, s, sub); err != nil {
			sortCycles(cycles)
			return cycles, err
		}
	}
	sortCycles(cycles)
	return cycles, nil
}

// ReachableSorted returns the sorted list of vertices reachable from s.
func (g *Digraph) ReachableSorted(s int) []int {
	set := g.ReachableFrom(s)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortCycles(cs [][]int) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// CyclesThroughAny returns the elementary cycles that contain at least one
// vertex satisfying mark.
func (g *Digraph) CyclesThroughAny(mark func(v int) bool, limit int) ([][]int, error) {
	all, err := g.ElementaryCycles(limit)
	var out [][]int
	for _, c := range all {
		for _, v := range c {
			if mark(v) {
				out = append(out, c)
				break
			}
		}
	}
	return out, err
}

// HasCycleThroughAny reports whether some directed cycle passes through a
// vertex satisfying mark. This needs no cycle enumeration: a vertex lies on a
// cycle iff it belongs to a nontrivial SCC (or carries a self-loop).
func (g *Digraph) HasCycleThroughAny(mark func(v int) bool) bool {
	on := g.VertexOnCycle()
	for v := 0; v < g.n; v++ {
		if on[v] && mark(v) {
			return true
		}
	}
	return false
}

// CycleEdges converts a cycle vertex sequence into its edge list, including
// the closing edge.
func CycleEdges(cycle []int) [][2]int {
	edges := make([][2]int, 0, len(cycle))
	for i, u := range cycle {
		v := cycle[(i+1)%len(cycle)]
		edges = append(edges, [2]int{u, v})
	}
	return edges
}
