package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOTConfig controls WriteDOT output. All fields are optional; nil funcs fall
// back to bare vertex numbers / unstyled edges.
type DOTConfig struct {
	// Name is the graph name in the DOT header.
	Name string
	// VertexLabel returns the display label of a vertex.
	VertexLabel func(v int) string
	// VertexAttrs returns extra DOT attributes (e.g. `style=filled,fillcolor=gray`).
	VertexAttrs func(v int) string
	// EdgeAttrs returns extra DOT attributes for an edge.
	EdgeAttrs func(u, v int) string
	// Include filters which vertices are emitted; nil includes vertices that
	// have at least one incident edge, plus none of the isolated ones.
	Include func(v int) bool
	// RankDir sets the layout direction (e.g. "LR"); empty omits the attribute.
	RankDir string
}

// WriteDOT renders g in Graphviz DOT format. Output is deterministic.
func (g *Digraph) WriteDOT(w io.Writer, cfg DOTConfig) error {
	name := cfg.Name
	if name == "" {
		name = "G"
	}
	include := cfg.Include
	if include == nil {
		touched := make([]bool, g.n)
		for _, e := range g.Edges() {
			touched[e[0]] = true
			touched[e[1]] = true
		}
		include = func(v int) bool { return touched[v] }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	if cfg.RankDir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", cfg.RankDir)
	}
	for v := 0; v < g.n; v++ {
		if !include(v) {
			continue
		}
		label := fmt.Sprintf("%d", v)
		if cfg.VertexLabel != nil {
			label = cfg.VertexLabel(v)
		}
		attrs := ""
		if cfg.VertexAttrs != nil {
			if a := cfg.VertexAttrs(v); a != "" {
				attrs = "," + a
			}
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", v, label, attrs)
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if !include(u) || !include(v) {
			continue
		}
		attrs := ""
		if cfg.EdgeAttrs != nil {
			if a := cfg.EdgeAttrs(u, v); a != "" {
				attrs = " [" + a + "]"
			}
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", u, v, attrs)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
