// Package graph provides the directed-graph algorithms that underpin the
// local-reasoning machinery of the paper "Local Reasoning for Global
// Convergence of Parameterized Rings" (Farahat & Ebnenasir, ICDCS 2012):
// strongly connected components, elementary-cycle enumeration, cycles through
// designated vertices, minimal feedback (hitting) sets, reachability and DOT
// export.
//
// Vertices are dense integers in [0, N). All algorithms are deterministic:
// adjacency lists are kept sorted so repeated runs produce identical output,
// which the figure-regeneration harness relies on.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a mutable directed graph over vertices 0..N-1. The zero value is
// an empty graph with no vertices; use New to create one with a fixed vertex
// count.
type Digraph struct {
	n   int
	adj [][]int
	// edgeSet provides O(1) duplicate detection; key = u*n + v.
	edgeSet map[int64]struct{}
}

// New returns an empty digraph with n vertices and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{
		n:       n,
		adj:     make([][]int, n),
		edgeSet: make(map[int64]struct{}),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return len(g.edgeSet) }

func (g *Digraph) key(u, v int) int64 { return int64(u)*int64(g.n) + int64(v) }

// AddEdge inserts the edge u->v. Duplicate insertions are ignored. Self-loops
// are permitted (the RCG of 2-coloring, for example, has s-arc self-loops).
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	k := g.key(u, v)
	if _, dup := g.edgeSet[k]; dup {
		return
	}
	g.edgeSet[k] = struct{}{}
	// Insert keeping adjacency sorted for deterministic iteration.
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	g.adj[u] = a
}

// HasEdge reports whether the edge u->v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.edgeSet[g.key(u, v)]
	return ok
}

// Succ returns the sorted successor list of u. The returned slice is owned by
// the graph and must not be mutated.
func (g *Digraph) Succ(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Edges returns all edges in deterministic (source, then target) order.
func (g *Digraph) Edges() [][2]int {
	out := make([][2]int, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// OutDegree returns the out-degree of u.
func (g *Digraph) OutDegree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// InDegrees returns the in-degree of every vertex.
func (g *Digraph) InDegrees() []int {
	in := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			in[v]++
		}
	}
	return in
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			c.AddEdge(u, v)
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced over keep (a vertex predicate)
// while preserving vertex identities: vertices outside keep lose all incident
// edges but remain as isolated vertices, so vertex ids stay meaningful to the
// caller (local-state codes, in the RCG use case).
func (g *Digraph) InducedSubgraph(keep func(v int) bool) *Digraph {
	s := New(g.n)
	for u := 0; u < g.n; u++ {
		if !keep(u) {
			continue
		}
		for _, v := range g.adj[u] {
			if keep(v) {
				s.AddEdge(u, v)
			}
		}
	}
	return s
}

// RemoveVertices returns a copy of g with all edges incident to any vertex in
// drop removed (vertices remain, isolated).
func (g *Digraph) RemoveVertices(drop map[int]bool) *Digraph {
	return g.InducedSubgraph(func(v int) bool { return !drop[v] })
}

// Transpose returns the edge-reversed graph.
func (g *Digraph) Transpose() *Digraph {
	t := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			t.AddEdge(v, u)
		}
	}
	return t
}

// ReachableFrom returns the set of vertices reachable from any seed
// (including the seeds themselves).
func (g *Digraph) ReachableFrom(seeds ...int) map[int]bool {
	seen := make(map[int]bool, len(seeds))
	stack := append([]int(nil), seeds...)
	for _, s := range seeds {
		g.check(s)
		seen[s] = true
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// HasPath reports whether v is reachable from u (true when u == v).
func (g *Digraph) HasPath(u, v int) bool {
	return g.ReachableFrom(u)[v]
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
