package graph

import (
	"runtime/debug"
	"testing"
)

// These regression tests pin down that the cycle and hitting-set walks run on
// explicit heap stacks rather than the call stack. They shrink the goroutine
// stack ceiling and then drive both algorithms through graphs deep enough
// that the former recursive implementations would overflow it and crash the
// process — so a reintroduced recursion fails loudly, not flakily.

// deepStackLimit is far below what ~2k recursive frames need but ample for
// the shallow call chains of the iterative implementations.
const deepStackLimit = 48 << 10

// TestElementaryCyclesDeepGraph builds a "locked chain": from the start
// vertex 0 the walk enters x=1, descends a 2k-vertex chain whose tail points
// back at the blocked vertex 1, fails, and records the whole chain in the
// b-map; when 1 later completes a cycle through y, the unblock cascade sweeps
// the full chain. This drives both the circuit walk and the unblock cascade
// to depth ~chainLen in one run.
func TestElementaryCyclesDeepGraph(t *testing.T) {
	const chainLen = 2048
	defer debug.SetMaxStack(debug.SetMaxStack(deepStackLimit))

	// Vertices: 0 = s, 1 = x, 2..chainLen+1 = chain, chainLen+2 = y.
	y := chainLen + 2
	g := New(y + 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	for v := 2; v <= chainLen; v++ {
		g.AddEdge(v, v+1)
	}
	g.AddEdge(chainLen+1, 1) // chain tail back to x: blocked when rooted at 0
	g.AddEdge(1, y)
	g.AddEdge(y, 0)

	cycles, err := g.ElementaryCycles(0)
	if err != nil {
		t.Fatalf("ElementaryCycles: %v", err)
	}
	if len(cycles) != 2 {
		t.Fatalf("got %d cycles, want 2", len(cycles))
	}
	// Shortest first: the triangle 0 -> 1 -> y -> 0.
	if got := cycles[0]; len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != y {
		t.Fatalf("short cycle = %v, want [0 1 %d]", got, y)
	}
	// Then the chain cycle 1 -> 2 -> ... -> chainLen+1 -> 1.
	long := cycles[1]
	if len(long) != chainLen+1 {
		t.Fatalf("long cycle has %d vertices, want %d", len(long), chainLen+1)
	}
	for i, v := range long {
		if v != i+1 {
			t.Fatalf("long cycle[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestMinimalHittingSetsDeepFamily feeds a family of ~4k disjoint singleton
// sets, forcing the branch-and-record walk to its maximum depth (one level
// per set) with a single hitting set as the answer.
func TestMinimalHittingSetsDeepFamily(t *testing.T) {
	const m = 4096 // deeper than the cycle test: this walk is O(m^2) cheap
	defer debug.SetMaxStack(debug.SetMaxStack(deepStackLimit))

	family := make([][]int, m)
	allowed := make(map[int]bool, m)
	for i := range family {
		family[i] = []int{i}
		allowed[i] = true
	}
	sets, err := MinimalHittingSets(family, allowed, 10)
	if err != nil {
		t.Fatalf("MinimalHittingSets: %v", err)
	}
	if len(sets) != 1 {
		t.Fatalf("got %d hitting sets, want 1", len(sets))
	}
	if len(sets[0]) != m {
		t.Fatalf("hitting set has %d elements, want %d", len(sets[0]), m)
	}
	for i, v := range sets[0] {
		if v != i {
			t.Fatalf("hitting set[%d] = %d, want %d", i, v, i)
		}
	}
}
