package graph

import "sort"

// SCCs computes the strongly connected components of g using an iterative
// Tarjan algorithm. Components are returned with internally sorted vertex
// lists, ordered by their smallest vertex, so output is deterministic.
// Isolated vertices form singleton components.
func (g *Digraph) SCCs() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		count  int
		frames []frame
	)
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.next == 0 {
				index[v] = count
				low[v] = count
				count++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			succ := g.adj[v]
			for f.next < len(succ) {
				w := succ[f.next]
				f.next++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All successors processed: pop frame.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

type frame struct {
	v    int
	next int
}

// SCCIndex returns, for every vertex, the index of its component in the slice
// returned by SCCs.
func (g *Digraph) SCCIndex() (comps [][]int, indexOf []int) {
	comps = g.SCCs()
	indexOf = make([]int, g.n)
	for ci, comp := range comps {
		for _, v := range comp {
			indexOf[v] = ci
		}
	}
	return comps, indexOf
}

// NontrivialSCCs returns only the components that contain a cycle: components
// with at least two vertices, or singletons with a self-loop.
func (g *Digraph) NontrivialSCCs() [][]int {
	var out [][]int
	for _, comp := range g.SCCs() {
		if len(comp) > 1 || g.HasEdge(comp[0], comp[0]) {
			out = append(out, comp)
		}
	}
	return out
}

// HasCycle reports whether g contains any directed cycle (self-loops count).
func (g *Digraph) HasCycle() bool {
	return len(g.NontrivialSCCs()) > 0
}

// VertexOnCycle reports, per vertex, whether the vertex lies on some directed
// cycle (equivalently: belongs to a nontrivial SCC or has a self-loop).
func (g *Digraph) VertexOnCycle() []bool {
	on := make([]bool, g.n)
	for _, comp := range g.NontrivialSCCs() {
		for _, v := range comp {
			on[v] = true
		}
	}
	return on
}

// Condensation returns the DAG of SCCs: vertex i of the result corresponds to
// comps[i] of SCCs(), with an edge between components whenever any cross edge
// exists in g.
func (g *Digraph) Condensation() (dag *Digraph, comps [][]int) {
	comps, indexOf := g.SCCIndex()
	dag = New(len(comps))
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if indexOf[u] != indexOf[v] {
				dag.AddEdge(indexOf[u], indexOf[v])
			}
		}
	}
	return dag, comps
}
