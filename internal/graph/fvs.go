package graph

import (
	"fmt"
	"sort"
)

// MinimalHittingSets enumerates all inclusion-minimal hitting sets of the
// given family of sets, drawing elements only from allowed. A hitting set
// intersects every member of the family. Sets are returned sorted, in
// deterministic order. The empty family has the single minimal hitting set {}.
//
// An error is returned if some family member contains no allowed element (no
// hitting set exists) or if the number of minimal hitting sets exceeds limit
// (limit <= 0 selects 10000).
//
// This is the engine behind Step 2 of the paper's synthesis methodology:
// Resolve must hit every illegitimate deadlock cycle of the RCG, using only
// illegitimate local deadlock states.
func MinimalHittingSets(family [][]int, allowed map[int]bool, limit int) ([][]int, error) {
	if limit <= 0 {
		limit = 10000
	}
	// Restrict each set to allowed elements; fail fast if any becomes empty.
	restricted := make([][]int, len(family))
	for i, set := range family {
		var r []int
		for _, e := range set {
			if allowed[e] {
				r = append(r, e)
			}
		}
		if len(r) == 0 {
			return nil, fmt.Errorf("graph: set %d has no allowed element; no hitting set exists", i)
		}
		sort.Ints(r)
		restricted[i] = dedupSorted(r)
	}
	if len(restricted) == 0 {
		return [][]int{{}}, nil
	}

	// Depth-first branch on the first un-hit set; collect all hitting sets,
	// then filter to inclusion-minimal ones. Family sizes here are tiny
	// (elementary cycles of <=27-vertex graphs), so this is plenty fast.
	var (
		results [][]int
		current []int
		recurse func(idx int) error
	)
	hits := func(set []int, chosen []int) bool {
		for _, e := range set {
			for _, c := range chosen {
				if e == c {
					return true
				}
			}
		}
		return false
	}
	recurse = func(idx int) error {
		// Advance past sets already hit.
		for idx < len(restricted) && hits(restricted[idx], current) {
			idx++
		}
		if idx == len(restricted) {
			if len(results) >= limit {
				return fmt.Errorf("graph: hitting-set limit %d exceeded", limit)
			}
			res := append([]int(nil), current...)
			sort.Ints(res)
			results = append(results, res)
			return nil
		}
		for _, e := range restricted[idx] {
			current = append(current, e)
			err := recurse(idx + 1)
			current = current[:len(current)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, err
	}
	return filterMinimal(results), nil
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// filterMinimal removes supersets and duplicates from a slice of sorted sets.
func filterMinimal(sets [][]int) [][]int {
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i]) != len(sets[j]) {
			return len(sets[i]) < len(sets[j])
		}
		for k := range sets[i] {
			if sets[i][k] != sets[j][k] {
				return sets[i][k] < sets[j][k]
			}
		}
		return false
	})
	var out [][]int
	for _, s := range sets {
		minimal := true
		for _, kept := range out {
			if isSubsetSorted(kept, s) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

func isSubsetSorted(sub, super []int) bool {
	i := 0
	for _, x := range super {
		if i < len(sub) && sub[i] == x {
			i++
		}
	}
	return i == len(sub)
}

// MinimalFeedbackSets enumerates the inclusion-minimal vertex sets S (drawn
// from allowed) whose removal leaves g with no directed cycle containing a
// vertex satisfying mark. This is Theorem 4.2 turned into a repair objective:
// break every illegitimate deadlock cycle by resolving only illegitimate
// local deadlocks.
func (g *Digraph) MinimalFeedbackSets(mark func(v int) bool, allowed map[int]bool, cycleLimit, setLimit int) ([][]int, error) {
	bad, err := g.CyclesThroughAny(mark, cycleLimit)
	if err != nil {
		return nil, fmt.Errorf("enumerating bad cycles: %w", err)
	}
	sets, err := MinimalHittingSets(bad, allowed, setLimit)
	if err != nil {
		return nil, err
	}
	return sets, nil
}
