package graph

import (
	"fmt"
	"sort"
)

// MinimalHittingSets enumerates all inclusion-minimal hitting sets of the
// given family of sets, drawing elements only from allowed. A hitting set
// intersects every member of the family. Sets are returned sorted, in
// deterministic order. The empty family has the single minimal hitting set {}.
//
// An error is returned if some family member contains no allowed element (no
// hitting set exists) or if the number of minimal hitting sets exceeds limit
// (limit <= 0 selects 10000).
//
// This is the engine behind Step 2 of the paper's synthesis methodology:
// Resolve must hit every illegitimate deadlock cycle of the RCG, using only
// illegitimate local deadlock states.
func MinimalHittingSets(family [][]int, allowed map[int]bool, limit int) ([][]int, error) {
	if limit <= 0 {
		limit = 10000
	}
	// Restrict each set to allowed elements; fail fast if any becomes empty.
	restricted := make([][]int, len(family))
	for i, set := range family {
		var r []int
		for _, e := range set {
			if allowed[e] {
				r = append(r, e)
			}
		}
		if len(r) == 0 {
			return nil, fmt.Errorf("graph: set %d has no allowed element; no hitting set exists", i)
		}
		sort.Ints(r)
		restricted[i] = dedupSorted(r)
	}
	if len(restricted) == 0 {
		return [][]int{{}}, nil
	}

	// Depth-first branch on the first un-hit set; collect all hitting sets,
	// then filter to inclusion-minimal ones. The walk runs on an explicit
	// frame stack (depth = family size), so huge adversarial families cannot
	// overflow the goroutine stack.
	var (
		results [][]int
		current []int
	)
	hits := func(set []int, chosen []int) bool {
		for _, e := range set {
			for _, c := range chosen {
				if e == c {
					return true
				}
			}
		}
		return false
	}
	// Advance past sets already hit by the current choice.
	advance := func(idx int) int {
		for idx < len(restricted) && hits(restricted[idx], current) {
			idx++
		}
		return idx
	}
	// Each frame is one call of the former recursion: idx is the first un-hit
	// set (already advanced), ei the next element of it to branch on, and
	// hasElem records whether the parent pushed an element onto current for
	// this call (false only for the root).
	type hsFrame struct {
		idx     int
		ei      int
		hasElem bool
	}
	frames := []hsFrame{{idx: advance(0)}}
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if f.idx == len(restricted) {
			// Every set is hit: record and return from this call.
			if len(results) >= limit {
				return nil, fmt.Errorf("graph: hitting-set limit %d exceeded", limit)
			}
			res := append([]int(nil), current...)
			sort.Ints(res)
			results = append(results, res)
		} else if f.ei < len(restricted[f.idx]) {
			e := restricted[f.idx][f.ei]
			f.ei++
			current = append(current, e)
			frames = append(frames, hsFrame{idx: advance(f.idx + 1), hasElem: true})
			continue
		}
		// Call complete: undo the parent's element push and pop the frame.
		if f.hasElem {
			current = current[:len(current)-1]
		}
		frames = frames[:len(frames)-1]
	}
	return filterMinimal(results), nil
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// filterMinimal removes supersets and duplicates from a slice of sorted sets.
func filterMinimal(sets [][]int) [][]int {
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i]) != len(sets[j]) {
			return len(sets[i]) < len(sets[j])
		}
		for k := range sets[i] {
			if sets[i][k] != sets[j][k] {
				return sets[i][k] < sets[j][k]
			}
		}
		return false
	})
	var out [][]int
	for _, s := range sets {
		minimal := true
		for _, kept := range out {
			if isSubsetSorted(kept, s) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

func isSubsetSorted(sub, super []int) bool {
	i := 0
	for _, x := range super {
		if i < len(sub) && sub[i] == x {
			i++
		}
	}
	return i == len(sub)
}

// MinimalFeedbackSets enumerates the inclusion-minimal vertex sets S (drawn
// from allowed) whose removal leaves g with no directed cycle containing a
// vertex satisfying mark. This is Theorem 4.2 turned into a repair objective:
// break every illegitimate deadlock cycle by resolving only illegitimate
// local deadlocks.
func (g *Digraph) MinimalFeedbackSets(mark func(v int) bool, allowed map[int]bool, cycleLimit, setLimit int) ([][]int, error) {
	bad, err := g.CyclesThroughAny(mark, cycleLimit)
	if err != nil {
		return nil, fmt.Errorf("enumerating bad cycles: %w", err)
	}
	sets, err := MinimalHittingSets(bad, allowed, setLimit)
	if err != nil {
		return nil, err
	}
	return sets, nil
}
