package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, m int, seed int64) *Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func BenchmarkSCCs(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		g := randomGraph(n, 4*n, 1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.SCCs()
			}
		})
	}
}

func BenchmarkElementaryCycles(b *testing.B) {
	// Sparse random graphs keep cycle counts civilized.
	for _, n := range []int{16, 64} {
		g := randomGraph(n, n+n/2, 2)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.ElementaryCycles(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMinimalHittingSets(b *testing.B) {
	family := [][]int{{0, 1, 2}, {2, 3}, {1, 4}, {0, 5}, {3, 4, 5}}
	allowed := map[int]bool{}
	for i := 0; i < 6; i++ {
		allowed[i] = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinimalHittingSets(family, allowed, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(4) == 0 {
				g.AddEdge(u, v)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.TransitiveReduction()
	}
}

func BenchmarkReachableFrom(b *testing.B) {
	g := randomGraph(4096, 16384, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ReachableFrom(0)
	}
}

func sizeName(n int) string {
	switch {
	case n < 100:
		return "small"
	case n < 1000:
		return "medium"
	default:
		return "large"
	}
}
