package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("New(4): got N=%d M=%d, want 4, 0", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1) // duplicate must be ignored
	g.AddEdge(3, 3) // self-loop allowed
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 3) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge gave wrong answers")
	}
	if got := g.Succ(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Succ(0) = %v, want [1 2]", got)
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Fatal("OutDegree wrong")
	}
	in := g.InDegrees()
	if !reflect.DeepEqual(in, []int{0, 1, 1, 1}) {
		t.Fatalf("InDegrees = %v", in)
	}
}

func TestSuccSortedAfterUnorderedInserts(t *testing.T) {
	g := New(5)
	for _, v := range []int{4, 1, 3, 0, 2} {
		g.AddEdge(0, v)
	}
	if got := g.Succ(0); !sort.IntsAreSorted(got) {
		t.Fatalf("Succ(0) not sorted: %v", got)
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Fatal("out-of-range HasEdge should be false, not panic")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range AddEdge")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestEdgesDeterministic(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	want := [][2]int{{0, 1}, {0, 2}, {2, 0}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edge")
	}
}

func TestInducedSubgraphPreservesIDs(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s := g.InducedSubgraph(func(v int) bool { return v != 2 })
	if s.N() != 4 {
		t.Fatalf("induced subgraph should keep vertex count, got %d", s.N())
	}
	if !s.HasEdge(0, 1) || s.HasEdge(1, 2) || s.HasEdge(2, 3) {
		t.Fatal("induced subgraph edges wrong")
	}
}

func TestRemoveVertices(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.RemoveVertices(map[int]bool{1: true})
	if r.M() != 0 {
		t.Fatalf("expected all edges removed, M=%d", r.M())
	}
}

func TestTranspose(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || tr.HasEdge(0, 1) {
		t.Fatal("transpose wrong")
	}
}

func TestReachability(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	r := g.ReachableFrom(0)
	for _, v := range []int{0, 1, 2} {
		if !r[v] {
			t.Fatalf("vertex %d should be reachable", v)
		}
	}
	if r[3] || r[4] {
		t.Fatal("vertices 3,4 should not be reachable from 0")
	}
	if !g.HasPath(0, 2) || g.HasPath(2, 0) || !g.HasPath(3, 3) {
		t.Fatal("HasPath wrong")
	}
}

// --- SCC tests -------------------------------------------------------------

func TestSCCsSimple(t *testing.T) {
	// 0->1->2->0 is one SCC; 3 is isolated; 4->3.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(4, 3)
	comps := g.SCCs()
	want := [][]int{{0, 1, 2}, {3}, {4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("SCCs = %v, want %v", comps, want)
	}
}

func TestNontrivialSCCsSelfLoop(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 1)
	nt := g.NontrivialSCCs()
	if len(nt) != 1 || !reflect.DeepEqual(nt[0], []int{1}) {
		t.Fatalf("NontrivialSCCs = %v", nt)
	}
	if !g.HasCycle() {
		t.Fatal("self-loop is a cycle")
	}
}

func TestHasCycleAcyclic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if g.HasCycle() {
		t.Fatal("DAG reported cyclic")
	}
}

func TestVertexOnCycle(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(4, 4)
	on := g.VertexOnCycle()
	want := []bool{true, true, false, false, true}
	if !reflect.DeepEqual(on, want) {
		t.Fatalf("VertexOnCycle = %v, want %v", on, want)
	}
}

func TestCondensation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	dag, comps := g.Condensation()
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %d: %v", len(comps), comps)
	}
	if dag.HasCycle() {
		t.Fatal("condensation must be acyclic")
	}
	if dag.M() != 1 {
		t.Fatalf("condensation edges = %d, want 1", dag.M())
	}
}

// sccBrute computes SCC membership by pairwise mutual reachability.
func sccBrute(g *Digraph) []int {
	id := make([]int, g.N())
	for i := range id {
		id[i] = -1
	}
	next := 0
	for u := 0; u < g.N(); u++ {
		if id[u] != -1 {
			continue
		}
		id[u] = next
		ru := g.ReachableFrom(u)
		for v := u + 1; v < g.N(); v++ {
			if id[v] == -1 && ru[v] && g.ReachableFrom(v)[u] {
				id[v] = next
			}
		}
		next++
	}
	return id
}

func TestSCCsAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(9)
		g := New(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		_, idx := g.SCCIndex()
		brute := sccBrute(g)
		// Compare partitions: same-component relation must agree.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (idx[u] == idx[v]) != (brute[u] == brute[v]) {
					t.Fatalf("trial %d: SCC partition disagrees at (%d,%d)\nedges=%v", trial, u, v, g.Edges())
				}
			}
		}
	}
}

// --- cycle enumeration tests ------------------------------------------------

func TestElementaryCyclesTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	cycles, err := g.ElementaryCycles(0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}}
	if !reflect.DeepEqual(cycles, want) {
		t.Fatalf("cycles = %v, want %v", cycles, want)
	}
}

func TestElementaryCyclesSelfLoopAndTwoCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	cycles, err := g.ElementaryCycles(0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1, 2}}
	if !reflect.DeepEqual(cycles, want) {
		t.Fatalf("cycles = %v, want %v", cycles, want)
	}
}

func TestElementaryCyclesCompleteGraph(t *testing.T) {
	// K4 (complete digraph on 4 vertices, no self-loops) has 2C2*... known
	// count: number of elementary cycles = 20.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	cycles, err := g.ElementaryCycles(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 20 {
		t.Fatalf("K4 elementary cycles = %d, want 20", len(cycles))
	}
}

func TestElementaryCyclesLimit(t *testing.T) {
	g := New(5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	_, err := g.ElementaryCycles(3)
	if err == nil {
		t.Fatal("expected cycle limit error")
	}
}

// cyclesBrute enumerates elementary cycles by DFS over all simple paths.
func cyclesBrute(g *Digraph) [][]int {
	var out [][]int
	n := g.N()
	onPath := make([]bool, n)
	var path []int
	var dfs func(start, v int)
	dfs = func(start, v int) {
		onPath[v] = true
		path = append(path, v)
		for _, w := range g.Succ(v) {
			if w == start {
				out = append(out, append([]int(nil), path...))
			} else if w > start && !onPath[w] {
				dfs(start, w)
			}
		}
		onPath[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < n; s++ {
		dfs(s, s)
	}
	sortCycles(out)
	return out
}

func TestElementaryCyclesAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(7)
		g := New(n)
		m := rng.Intn(2*n + 1)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		got, err := g.ElementaryCycles(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := cyclesBrute(g)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: cycles disagree\nedges=%v\ngot=%v\nwant=%v", trial, g.Edges(), got, want)
		}
	}
}

func TestCyclesThroughAny(t *testing.T) {
	g := New(5)
	// Cycle A: 0-1, cycle B: 2-3-4.
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	got, err := g.CyclesThroughAny(func(v int) bool { return v == 3 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int{2, 3, 4}) {
		t.Fatalf("CyclesThroughAny = %v", got)
	}
	if !g.HasCycleThroughAny(func(v int) bool { return v == 0 }) {
		t.Fatal("cycle through 0 exists")
	}
	if g.HasCycleThroughAny(func(v int) bool { return false }) {
		t.Fatal("no marked vertices -> no marked cycle")
	}
}

func TestHasCycleThroughAnyMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(7)
		g := New(n)
		for i := 0; i < rng.Intn(2*n+1); i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		mark := func(v int) bool { return v%2 == 0 }
		cycles, err := g.CyclesThroughAny(mark, 0)
		if err != nil {
			t.Fatal(err)
		}
		if (len(cycles) > 0) != g.HasCycleThroughAny(mark) {
			t.Fatalf("trial %d: HasCycleThroughAny disagrees with enumeration, edges=%v", trial, g.Edges())
		}
	}
}

func TestCycleEdges(t *testing.T) {
	got := CycleEdges([]int{0, 1, 2})
	want := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CycleEdges = %v", got)
	}
	if got := CycleEdges([]int{5}); !reflect.DeepEqual(got, [][2]int{{5, 5}}) {
		t.Fatalf("self-loop CycleEdges = %v", got)
	}
}

// --- hitting set / feedback set tests ---------------------------------------

func allowAll(n int) map[int]bool {
	m := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		m[i] = true
	}
	return m
}

func TestMinimalHittingSetsEmptyFamily(t *testing.T) {
	got, err := MinimalHittingSets(nil, allowAll(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty family: got %v, want [{}]", got)
	}
}

func TestMinimalHittingSetsSimple(t *testing.T) {
	family := [][]int{{0, 1}, {1, 2}}
	got, err := MinimalHittingSets(family, allowAll(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1}, {0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hitting sets = %v, want %v", got, want)
	}
}

func TestMinimalHittingSetsRestricted(t *testing.T) {
	family := [][]int{{0, 1}, {1, 2}}
	got, err := MinimalHittingSets(family, map[int]bool{0: true, 2: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restricted hitting sets = %v, want %v", got, want)
	}
}

func TestMinimalHittingSetsInfeasible(t *testing.T) {
	_, err := MinimalHittingSets([][]int{{3}}, map[int]bool{0: true}, 0)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestMinimalHittingSetsAreHittingAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		nf := 1 + rng.Intn(4)
		family := make([][]int, nf)
		for i := range family {
			sz := 1 + rng.Intn(3)
			s := map[int]bool{}
			for len(s) < sz {
				s[rng.Intn(6)] = true
			}
			for e := range s {
				family[i] = append(family[i], e)
			}
			sort.Ints(family[i])
		}
		sets, err := MinimalHittingSets(family, allowAll(6), 0)
		if err != nil {
			t.Fatal(err)
		}
		hits := func(chosen []int) bool {
			for _, set := range family {
				ok := false
				for _, e := range set {
					for _, c := range chosen {
						if e == c {
							ok = true
						}
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		for _, s := range sets {
			if !hits(s) {
				t.Fatalf("trial %d: %v does not hit %v", trial, s, family)
			}
			// Minimality: dropping any single element must break it.
			for drop := range s {
				reduced := append(append([]int(nil), s[:drop]...), s[drop+1:]...)
				if hits(reduced) {
					t.Fatalf("trial %d: %v not minimal (can drop %d) for %v", trial, s, s[drop], family)
				}
			}
		}
	}
}

func TestMinimalFeedbackSets(t *testing.T) {
	// Two illegitimate cycles sharing vertex 1: {0,1} and {1,2}; vertex 1
	// marked illegitimate. Removing 1 breaks both.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	mark := func(v int) bool { return v == 1 }
	sets, err := g.MinimalFeedbackSets(mark, map[int]bool{1: true}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || !reflect.DeepEqual(sets[0], []int{1}) {
		t.Fatalf("feedback sets = %v, want [[1]]", sets)
	}
	// Verify: removing the set kills all marked cycles.
	reduced := g.RemoveVertices(map[int]bool{1: true})
	if reduced.HasCycleThroughAny(mark) {
		t.Fatal("feedback set did not break marked cycles")
	}
}

func TestFeedbackSetsBreakAllMarkedCyclesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(5)
		g := New(n)
		for i := 0; i < rng.Intn(2*n+1); i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		mark := func(v int) bool { return v < n/2 }
		allowed := map[int]bool{}
		for v := 0; v < n; v++ {
			if mark(v) {
				allowed[v] = true
			}
		}
		sets, err := g.MinimalFeedbackSets(mark, allowed, 0, 0)
		if err != nil {
			continue // infeasible under restriction is fine for random inputs
		}
		for _, s := range sets {
			drop := map[int]bool{}
			for _, v := range s {
				drop[v] = true
			}
			if g.RemoveVertices(drop).HasCycleThroughAny(mark) {
				t.Fatalf("trial %d: set %v leaves a marked cycle; edges=%v", trial, s, g.Edges())
			}
		}
	}
}

// --- quick.Check property: subset relation helper ----------------------------

func TestIsSubsetSortedQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		as := make([]int, 0, len(a))
		seen := map[int]bool{}
		for _, x := range a {
			if !seen[int(x%16)] {
				seen[int(x%16)] = true
				as = append(as, int(x%16))
			}
		}
		sort.Ints(as)
		bs := make([]int, 0, len(as)+len(b))
		bs = append(bs, as...)
		seenB := map[int]bool{}
		for _, x := range as {
			seenB[x] = true
		}
		for _, x := range b {
			if !seenB[int(x%16)+16] {
				seenB[int(x%16)+16] = true
				bs = append(bs, int(x%16)+16)
			}
		}
		sort.Ints(bs)
		// as is always a subset of bs by construction.
		return isSubsetSorted(as, bs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- DOT output --------------------------------------------------------------

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var b stringsBuilder
	err := g.WriteDOT(&b, DOTConfig{
		Name:        "test",
		VertexLabel: func(v int) string { return string(rune('a' + v)) },
		EdgeAttrs: func(u, v int) string {
			if u == 0 {
				return "style=dashed"
			}
			return ""
		},
		RankDir: "LR",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`digraph "test"`, `rankdir=LR`, `n0 [label="a"]`, `n0 -> n1 [style=dashed]`, `n1 -> n2;`} {
		if !containsStr(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaultIncludeSkipsIsolated(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	var b stringsBuilder
	if err := g.WriteDOT(&b, DOTConfig{}); err != nil {
		t.Fatal(err)
	}
	if containsStr(b.String(), "n2 ") {
		t.Fatalf("isolated vertex emitted:\n%s", b.String())
	}
}

// tiny local helpers to avoid importing strings/bytes in many spots

type stringsBuilder struct{ data []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.data) }

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
