package graph

// TransitiveReduction returns the unique minimal edge subgraph of an
// acyclic digraph with the same reachability relation — the Hasse diagram
// of the partial order, which is how the paper draws the Figure 5
// precedence relation. Panics if g has a cycle (reductions are not unique
// for cyclic graphs).
func (g *Digraph) TransitiveReduction() *Digraph {
	if g.HasCycle() {
		panic("graph: transitive reduction requires an acyclic graph")
	}
	red := New(g.n)
	for u := 0; u < g.n; u++ {
		succ := g.adj[u]
		for _, v := range succ {
			// Keep u->v unless some other successor w of u reaches v.
			redundant := false
			for _, w := range succ {
				if w == v {
					continue
				}
				if g.HasPath(w, v) {
					redundant = true
					break
				}
			}
			if !redundant {
				red.AddEdge(u, v)
			}
		}
	}
	return red
}

// TransitiveClosure returns the reachability digraph: an edge u->v for
// every v reachable from u in one or more steps (so u->u appears exactly
// when u lies on a cycle).
func (g *Digraph) TransitiveClosure() *Digraph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			for v := range g.ReachableFrom(w) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}
