package invariant

// The deadlock certificate. A global deadlock of a ring of size K is exactly
// a cyclic sequence s_1 .. s_K of local deadlock states where each adjacent
// pair overlaps (the continuation relation: the last w-1 window values of
// s_i are the first w-1 of s_{i+1}) — the same characterization behind
// Theorem 4.2. Deadlock-freedom for every K is therefore equivalent to the
// continuation graph over local deadlocks having no cycle through an
// illegitimate vertex, and THAT is equivalent to the existence of a ranking:
//
//	r(u) >= r(v)  for every continuation arc u -> v between deadlocks,
//	r(u) >  r(v)  whenever u or v is illegitimate.
//
// Soundness: a cycle through an illegitimate vertex would chain the
// inequalities around the loop into r(u) > r(u). Completeness: if no such
// cycle exists, every illegitimate vertex lies in a trivial SCC without a
// self-loop, so ranking each SCC by its longest path to a sink in the
// condensation (strict on every cross-SCC arc, equal within an SCC)
// satisfies both conditions. The construction below is exactly that; its
// output is replayable by CheckCertificate with nothing but decoded-view
// comparisons and integer compares.

// deadlockCert builds the ranking, or a refuting continuation cycle through
// an illegitimate deadlock when no ranking exists.
func (a *analysis) deadlockCert() (*DeadlockCertificate, Verdict) {
	dead := a.sys.Deadlocks
	cert := &DeadlockCertificate{Deadlocks: make([]int, len(dead))}
	idx := make(map[int]int, len(dead)) // state code -> vertex index
	for i, s := range dead {
		cert.Deadlocks[i] = int(s)
		idx[int(s)] = i
	}
	succ := func(u int) []int {
		return a.contSuccessors(cert.Deadlocks[u], idx)
	}

	comp, order := tarjan(len(dead), succ)
	nc := 0
	for _, c := range comp {
		if c >= nc {
			nc = c + 1
		}
	}
	compSize := make([]int, nc)
	for _, c := range comp {
		compSize[c]++
	}
	selfLoop := make([]bool, len(dead))
	for u := range dead {
		for _, v := range succ(u) {
			if v == u {
				selfLoop[u] = true
			}
		}
	}

	// Refutation: an illegitimate vertex on any cycle (a nontrivial SCC or a
	// self-loop). Pick the smallest such state for determinism.
	for u := range dead {
		if a.sys.Legit[dead[u]] {
			continue
		}
		if selfLoop[u] {
			cert.BadCycle = []int{cert.Deadlocks[u]}
			return cert, Fails
		}
		if compSize[comp[u]] > 1 {
			cert.BadCycle = a.cycleThrough(u, comp, succ, cert.Deadlocks)
			return cert, Fails
		}
	}

	// Ranking: Tarjan completes SCCs in reverse topological order (every
	// edge out of a later-completed SCC lands in an earlier-completed one),
	// so ranks resolve in one pass over components in completion order.
	rank := make([]int, nc)
	byComp := make([][]int, nc)
	for u, c := range comp {
		byComp[c] = append(byComp[c], u)
	}
	_ = order
	for c := 0; c < nc; c++ {
		for _, u := range byComp[c] {
			for _, v := range succ(u) {
				if comp[v] != c && rank[comp[v]]+1 > rank[c] {
					rank[c] = rank[comp[v]] + 1
				}
			}
		}
	}
	cert.Free = true
	cert.Ranks = make([]int, len(dead))
	for u := range dead {
		cert.Ranks[u] = rank[comp[u]]
	}
	return cert, Holds
}

// contSuccessors returns the continuation successors of deadlock state s
// restricted to deadlock states, as vertex indices in ascending order. For
// width w > 1 the successors of s are exactly the states congruent to
// s/d modulo d^(w-1); for w == 1 windows share no variables and the
// continuation graph is complete (including self-loops).
func (a *analysis) contSuccessors(s int, idx map[int]int) []int {
	var out []int
	if a.w == 1 {
		for v := 0; v < len(idx); v++ {
			out = append(out, v)
		}
		return out
	}
	step := a.n / a.d // d^(w-1)
	base := s / a.d
	for j := 0; j < a.d; j++ {
		if v, ok := idx[base+j*step]; ok {
			out = append(out, v)
		}
	}
	return out
}

// cycleThrough finds a continuation cycle through vertex u inside its SCC
// (which is nontrivial, so one exists), returned as state codes starting at
// u. Deterministic: depth-first over ascending successors.
func (a *analysis) cycleThrough(u int, comp []int, succ func(int) []int, states []int) []int {
	type frame struct {
		v    int
		next int
	}
	onPath := make(map[int]bool)
	stack := []frame{{v: u}}
	onPath[u] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := succ(f.v)
		advanced := false
		for f.next < len(ss) {
			v := ss[f.next]
			f.next++
			if v == u && len(stack) > 0 {
				cycle := make([]int, len(stack))
				for i, fr := range stack {
					cycle[i] = states[fr.v]
				}
				return cycle
			}
			if comp[v] != comp[u] || onPath[v] {
				continue
			}
			onPath[v] = true
			stack = append(stack, frame{v: v})
			advanced = true
			break
		}
		if !advanced && f.next >= len(ss) {
			onPath[f.v] = false
			stack = stack[:len(stack)-1]
		}
	}
	// Unreachable for a nontrivial SCC; return the self loop as a fallback.
	return []int{states[u]}
}

// tarjan is an iterative Tarjan SCC over vertices 0..n-1. It returns the
// component id per vertex (ids in completion order: every edge crosses from
// a higher id to a lower id or stays inside one component) and the vertex
// completion order.
func tarjan(n int, succ func(int) []int) (comp []int, order []int) {
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []int
	var nextIndex, nextComp int

	type frame struct {
		v    int
		next int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		stack := []frame{{v: root}}
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ss := succ(f.v)
			if f.next < len(ss) {
				wv := ss[f.next]
				f.next++
				if index[wv] == -1 {
					index[wv] = nextIndex
					low[wv] = nextIndex
					nextIndex++
					sccStack = append(sccStack, wv)
					onStack[wv] = true
					stack = append(stack, frame{v: wv})
				} else if onStack[wv] && index[wv] < low[f.v] {
					low[f.v] = index[wv]
				}
				continue
			}
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				if low[v] < low[stack[len(stack)-1].v] {
					low[stack[len(stack)-1].v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					wv := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[wv] = false
					comp[wv] = nextComp
					order = append(order, wv)
					if wv == v {
						break
					}
				}
				nextComp++
			}
		}
	}
	return comp, order
}
