package invariant

import (
	"context"
	"encoding/json"
	"fmt"
	"math/big"

	"paramring/internal/core"
)

// Certificate is the lane's machine-checkable proof object: the invariant
// set plus the replayable inductiveness evidence for every conclusive
// verdict. It is a pure function of (protocol, options) — no timestamps, no
// worker-count dependence, no map-ordered output — so its canonical
// encoding is byte-identical across runs, which the test suite pins.
type Certificate struct {
	// Protocol/Domain/Lo/Hi/LocalStates/TArcs bind the certificate to one
	// protocol shape; the checker refuses a mismatched protocol.
	Protocol    string `json:"protocol"`
	Domain      int    `json:"domain"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	LocalStates int    `json:"local_states"`
	TArcs       int    `json:"t_arcs"`

	// Traps are the distinct non-trivial value traps, each sorted
	// ascending, in order of smallest generating value. Inductiveness: for
	// every local transition, own(Src) in T implies own(Dst) in T.
	Traps [][]int `json:"traps,omitempty"`

	// Deadlock is the ranking (or refutation) over the continuation graph
	// of local deadlock states. Always present.
	Deadlock *DeadlockCertificate `json:"deadlock,omitempty"`

	// Termination, when present, certifies that every computation of every
	// ring size K >= w is finite — the potential argument behind a Holds
	// livelock verdict.
	Termination *TerminationCertificate `json:"termination,omitempty"`

	// SmallK covers the ring sizes 2 <= K < w exhaustively (nil when w <= 2
	// and the range is empty).
	SmallK *SmallKCertificate `json:"small_k,omitempty"`

	// ClosureHolds records that I is closed under the protocol for every K.
	ClosureHolds bool `json:"closure_holds,omitempty"`
}

// DeadlockCertificate is the ranking side of the certificate; see the
// soundness/completeness argument in deadlock.go.
type DeadlockCertificate struct {
	// Free claims no ring size has a global deadlock outside I.
	Free bool `json:"free"`
	// Deadlocks lists the local deadlock state codes, ascending. The
	// checker re-derives the set and requires equality.
	Deadlocks []int `json:"deadlocks"`
	// Ranks, when Free, is the ranking parallel to Deadlocks: non-strictly
	// decreasing along every continuation arc, strictly when either
	// endpoint is illegitimate.
	Ranks []int `json:"ranks,omitempty"`
	// BadCycle, when !Free, is a continuation cycle of local deadlocks with
	// at least one illegitimate member: unrolled, a deadlocked ring of size
	// len(BadCycle) (or 2 for a self-loop).
	BadCycle []int `json:"bad_cycle,omitempty"`
}

// TerminationCertificate carries the potential. Weights are decimal big
// integers indexed by local state code; an empty Weights with
// RecurrentTArcs == 0 means support pruning alone proved termination.
type TerminationCertificate struct {
	RecurrentTArcs int      `json:"recurrent_t_arcs"`
	Weights        []string `json:"weights,omitempty"`
}

// SmallKCertificate records the exhaustively checked small ring sizes and,
// when one livelocks, the concrete witness cycle of global valuations.
type SmallKCertificate struct {
	Checked      []int   `json:"checked,omitempty"`
	WitnessK     int     `json:"witness_k,omitempty"`
	WitnessCycle [][]int `json:"witness_cycle,omitempty"`
}

// Canon renders the canonical (deterministic) encoding of the certificate.
func (c *Certificate) Canon() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		// Certificate holds only ints, strings and slices; Marshal cannot fail.
		panic(err)
	}
	return b
}

// Size returns the canonical encoding's byte length.
func (c *Certificate) Size() int { return len(c.Canon()) }

// CheckCertificate re-validates a certificate against a protocol from first
// principles, sharing no derived state with Analyze: the transition relation
// comes from a fresh Compile, continuation arcs are confirmed by decoded
// window comparison, potential sums are evaluated in big.Int arithmetic,
// and the small-ring searches rerun directly off the action closures. A nil
// error means every claim in the certificate is inductive for this
// protocol. The function never panics, whatever the certificate contains —
// it is the fuzz target guarding the lane's trusted base.
func CheckCertificate(p *core.Protocol, c *Certificate) error {
	if c == nil {
		return fmt.Errorf("invariant: nil certificate")
	}
	lo, hi := p.Window()
	n := p.NumLocalStates()
	sys := p.Compile()
	if c.Protocol != p.Name() || c.Domain != p.Domain() || c.Lo != lo || c.Hi != hi ||
		c.LocalStates != n || c.TArcs != len(sys.Trans) {
		return fmt.Errorf("invariant: certificate header %q/d=%d/[%d,%d]/%d states/%d arcs does not match protocol %q/d=%d/[%d,%d]/%d states/%d arcs",
			c.Protocol, c.Domain, c.Lo, c.Hi, c.LocalStates, c.TArcs,
			p.Name(), p.Domain(), lo, hi, n, len(sys.Trans))
	}
	if err := checkTraps(sys, c.Traps); err != nil {
		return err
	}
	if err := checkDeadlockCert(p, sys, c.Deadlock); err != nil {
		return err
	}
	if err := checkTerminationCert(p, sys, c.Termination); err != nil {
		return err
	}
	// A termination certificate backs a "no livelock for any K" claim, so it
	// must come with clean, complete coverage of the small rings the
	// parameterized argument does not reach.
	if c.Termination != nil {
		if c.SmallK != nil && c.SmallK.WitnessK != 0 {
			return fmt.Errorf("invariant: termination certificate alongside a K=%d livelock witness", c.SmallK.WitnessK)
		}
		for k := 2; k < p.W(); k++ {
			if c.SmallK == nil || !containsInt(c.SmallK.Checked, k) {
				return fmt.Errorf("invariant: termination certificate does not cover the size-%d ring", k)
			}
		}
	}
	if err := checkSmallKCert(p, c.SmallK); err != nil {
		return err
	}
	if c.ClosureHolds {
		if err := checkClosureClaim(p, c.SmallK); err != nil {
			return err
		}
	}
	return nil
}

func checkTraps(sys *core.System, traps [][]int) error {
	p := sys.Protocol()
	d := p.Domain()
	for ti, trap := range traps {
		if len(trap) == 0 || len(trap) >= d {
			return fmt.Errorf("invariant: trap %d has %d values (want 1..%d)", ti, len(trap), d-1)
		}
		member := make([]bool, d)
		for i, v := range trap {
			if v < 0 || v >= d {
				return fmt.Errorf("invariant: trap %d value %d outside domain [0,%d)", ti, v, d)
			}
			if i > 0 && trap[i] <= trap[i-1] {
				return fmt.Errorf("invariant: trap %d is not strictly ascending", ti)
			}
			member[v] = true
		}
		for _, t := range sys.Trans {
			if member[sys.OwnValue(t.Src)] && !member[sys.OwnValue(t.Dst)] {
				return fmt.Errorf("invariant: trap %d %v is not inductive: transition %s leaves it",
					ti, trap, sys.FormatTransition(t))
			}
		}
	}
	return nil
}

// continuesViews reports the continuation relation by direct decoded-window
// comparison: the last w-1 values of s1 are the first w-1 of s2.
func continuesViews(p *core.Protocol, s1, s2 core.LocalState) bool {
	w := p.W()
	if w == 1 {
		return true
	}
	v1, v2 := p.Decode(s1), p.Decode(s2)
	for i := 1; i < w; i++ {
		if v1[i] != v2[i-1] {
			return false
		}
	}
	return true
}

func checkDeadlockCert(p *core.Protocol, sys *core.System, c *DeadlockCertificate) error {
	if c == nil {
		return fmt.Errorf("invariant: certificate lacks the deadlock section")
	}
	if len(c.Deadlocks) != len(sys.Deadlocks) {
		return fmt.Errorf("invariant: certificate lists %d deadlocks, protocol has %d",
			len(c.Deadlocks), len(sys.Deadlocks))
	}
	idx := make(map[int]int, len(c.Deadlocks))
	for i, s := range c.Deadlocks {
		if s != int(sys.Deadlocks[i]) {
			return fmt.Errorf("invariant: certificate deadlock[%d]=%d, protocol has %d",
				i, s, int(sys.Deadlocks[i]))
		}
		idx[s] = i
	}
	n := p.NumLocalStates()
	d := p.Domain()
	if !c.Free {
		cyc := c.BadCycle
		if len(cyc) == 0 {
			return fmt.Errorf("invariant: refuting deadlock certificate lacks a cycle")
		}
		anyIllegit := false
		for i, s := range cyc {
			if _, ok := idx[s]; !ok || s < 0 || s >= n {
				return fmt.Errorf("invariant: bad-cycle state %d is not a local deadlock", s)
			}
			if !sys.Legit[s] {
				anyIllegit = true
			}
			next := cyc[(i+1)%len(cyc)]
			if !continuesViews(p, core.LocalState(s), core.LocalState(next)) {
				return fmt.Errorf("invariant: bad-cycle states %d -> %d do not overlap", s, next)
			}
		}
		if !anyIllegit {
			return fmt.Errorf("invariant: bad cycle contains no illegitimate state")
		}
		return nil
	}
	if len(c.Ranks) != len(c.Deadlocks) {
		return fmt.Errorf("invariant: %d ranks for %d deadlocks", len(c.Ranks), len(c.Deadlocks))
	}
	// Every continuation arc between deadlocks must respect the ranking.
	// Successor candidates come from the congruence s/d mod d^(w-1), each
	// confirmed by decoded-window comparison before use; for w == 1 the
	// graph is complete and the congruence degenerates to exactly that.
	step := n / d
	for i, s := range c.Deadlocks {
		base := s / d
		for j := 0; j < d; j++ {
			t := base%step + j*step
			ti, ok := idx[t]
			if !ok {
				continue
			}
			if !continuesViews(p, core.LocalState(s), core.LocalState(t)) {
				return fmt.Errorf("invariant: internal: candidate arc %d -> %d does not overlap", s, t)
			}
			strict := !sys.Legit[s] || !sys.Legit[t]
			if c.Ranks[i] < c.Ranks[ti] || (strict && c.Ranks[i] == c.Ranks[ti]) {
				return fmt.Errorf("invariant: ranking violated on arc %d(rank %d) -> %d(rank %d)",
					s, c.Ranks[i], t, c.Ranks[ti])
			}
		}
	}
	return nil
}

func checkTerminationCert(p *core.Protocol, sys *core.System, c *TerminationCertificate) error {
	if c == nil {
		return nil
	}
	rec := checkerRecurrent(sys)
	if c.RecurrentTArcs != len(rec) {
		return fmt.Errorf("invariant: certificate claims %d recurrent transitions, checker derives %d",
			c.RecurrentTArcs, len(rec))
	}
	if len(rec) == 0 {
		if len(c.Weights) != 0 {
			return fmt.Errorf("invariant: weights present but no recurrent transitions")
		}
		return nil
	}
	n := p.NumLocalStates()
	if len(c.Weights) != n {
		return fmt.Errorf("invariant: %d weights for %d local states", len(c.Weights), n)
	}
	weights := make([]*big.Int, n)
	for i, s := range c.Weights {
		w, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return fmt.Errorf("invariant: weight %d (%q) is not a decimal integer", i, s)
		}
		weights[i] = w
	}
	// Replay every (recurrent transition, context) constraint by direct view
	// surgery: decode the affected neighbor's window, splice in the actor's
	// write, re-encode, and require a strictly negative potential delta.
	lo, hi := p.Window()
	w := p.W()
	d := p.Domain()
	own := p.OwnIndex()
	nCtx := 1
	for i := 1; i < w; i++ {
		nCtx *= d
	}
	combined := make([]int, 2*w-1) // values at offsets lo-hi .. hi-lo from the actor
	at := func(t int) int { return combined[t-(lo-hi)] }
	for _, tr := range rec {
		srcView := p.Decode(tr.Src)
		dstOwn := p.Decode(tr.Dst)[own]
		for code := 0; code < nCtx; code++ {
			// Fill the combined window: the actor's own window from srcView,
			// the rest from the context code (free positions in ascending
			// offset order, matching the analyzer's enumeration only by
			// coincidence — any enumeration covers the same set).
			cc := code
			for t := lo - hi; t <= hi-lo; t++ {
				if t >= lo && t <= hi {
					combined[t-(lo-hi)] = srcView[t-lo]
				} else {
					combined[t-(lo-hi)] = cc % d
					cc /= d
				}
			}
			sum := new(big.Int)
			for o := lo; o <= hi; o++ {
				before := make(core.View, w)
				after := make(core.View, w)
				for m := 0; m < w; m++ {
					t := lo + m - o
					before[m] = at(t)
					after[m] = at(t)
					if t == 0 {
						after[m] = dstOwn
					}
				}
				sum.Sub(sum, weights[core.Encode(before, d)])
				sum.Add(sum, weights[core.Encode(after, d)])
			}
			if sum.Sign() >= 0 {
				return fmt.Errorf("invariant: potential does not decrease on %s in context %d (delta %v)",
					sys.FormatTransition(tr), code, sum)
			}
		}
	}
	return nil
}

// checkerRecurrent is the checker's own support-pruning fixpoint, written
// against an on-any-cycle test per edge rather than the analyzer's
// reachability matrix.
func checkerRecurrent(sys *core.System) []core.LocalTransition {
	arcs := append([]core.LocalTransition(nil), sys.Trans...)
	d := sys.Protocol().Domain()
	for {
		var kept []core.LocalTransition
		for _, t := range arcs {
			if onValueCycle(sys, arcs, d, sys.OwnValue(t.Src), sys.OwnValue(t.Dst)) {
				kept = append(kept, t)
			}
		}
		if len(kept) == len(arcs) {
			return kept
		}
		arcs = kept
	}
}

// onValueCycle reports whether the write edge a -> b closes a cycle in the
// write graph of arcs, i.e. whether a is reachable from b.
func onValueCycle(sys *core.System, arcs []core.LocalTransition, d, a, b int) bool {
	visited := make([]bool, d)
	queue := []int{b}
	visited[b] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == a {
			return true
		}
		for _, t := range arcs {
			y := sys.OwnValue(t.Dst)
			if sys.OwnValue(t.Src) == x && !visited[y] {
				visited[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

func checkSmallKCert(p *core.Protocol, c *SmallKCertificate) error {
	if c == nil {
		return nil
	}
	d := p.Domain()
	for _, k := range c.Checked {
		if k < 2 || k >= p.W() {
			return fmt.Errorf("invariant: small-K certificate checks K=%d outside [2,%d)", k, p.W())
		}
		if k != c.WitnessK && smallRingLivelock(p, k) != nil {
			return fmt.Errorf("invariant: small-K certificate claims K=%d livelock-free but a cycle exists", k)
		}
	}
	if c.WitnessK == 0 {
		return nil
	}
	k := c.WitnessK
	if k < 2 || k >= p.W() {
		return fmt.Errorf("invariant: witness K=%d outside [2,%d)", k, p.W())
	}
	cyc := c.WitnessCycle
	if len(cyc) == 0 {
		return fmt.Errorf("invariant: witness K=%d has no cycle", k)
	}
	r := newSmallRing(p, k)
	codes := make([]int, len(cyc))
	for i, vals := range cyc {
		if len(vals) != k {
			return fmt.Errorf("invariant: witness state %d has %d values, want %d", i, len(vals), k)
		}
		code, mult := 0, 1
		for _, v := range vals {
			if v < 0 || v >= d {
				return fmt.Errorf("invariant: witness value %d outside domain [0,%d)", v, d)
			}
			code += v * mult
			mult *= d
		}
		codes[i] = code
		if r.legit(vals) {
			return fmt.Errorf("invariant: witness state %v is legitimate — not a livelock", vals)
		}
	}
	for i, g := range codes {
		next := codes[(i+1)%len(codes)]
		found := false
		for _, ng := range r.succs(g) {
			if ng == next {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("invariant: witness step %d: no transition %v -> %v",
				i, cyc[i], cyc[(i+1)%len(cyc)])
		}
	}
	return nil
}

// checkClosureClaim re-verifies the closure claim: the context-quantified
// local preservation of LC for K >= w, plus the exhaustive small rings.
func checkClosureClaim(p *core.Protocol, sk *SmallKCertificate) error {
	a, err := newAnalysis(p, Options{}.withDefaults())
	if err != nil {
		return err
	}
	ok, err := a.closureLocal(context.Background())
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("invariant: closure claim fails the context-quantified check")
	}
	for k := 2; k < p.W(); k++ {
		if !smallRingClosure(p, k) {
			return fmt.Errorf("invariant: closure claim fails on the size-%d ring", k)
		}
		if sk == nil || !containsInt(sk.Checked, k) {
			return fmt.Errorf("invariant: closure claim does not cover the size-%d ring", k)
		}
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
