package invariant

import (
	"context"
	"encoding/json"
	"sort"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

// fuzzProtocols returns the zoo in deterministic (sorted-name) order so a
// byte index in a corpus file always denotes the same protocol.
func fuzzProtocols() []*core.Protocol {
	zoo := protocols.All()
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	ps := make([]*core.Protocol, len(names))
	for i, n := range names {
		ps[i] = zoo[n]
	}
	return ps
}

// FuzzCheckCertificate hammers the independent inductiveness checker — the
// lane's trusted base — with arbitrary certificates. The contract under test:
// CheckCertificate never panics, whatever the bytes decode to. Genuine
// certificates for cheap-to-analyze protocols are seeded so mutation starts
// from accepting inputs; testdata/fuzz holds the committed deterministic
// corpus.
func FuzzCheckCertificate(f *testing.F) {
	ps := fuzzProtocols()
	for _, name := range []string{"sum-not-two-ss", "agreement-t01", "mis", "coloring2"} {
		p := protocols.All()[name]
		rep, err := Analyze(context.Background(), p, Options{})
		if err != nil {
			f.Fatalf("Analyze(%s): %v", name, err)
		}
		idx := 0
		for i, q := range ps {
			if q == p {
				idx = i
			}
		}
		f.Add(byte(idx), rep.Certificate.Canon())
	}
	f.Add(byte(0), []byte(`{}`))
	f.Add(byte(255), []byte(`not json`))
	f.Add(byte(0), []byte(`{"protocol":"agreement","domain":2,"lo":-1,"hi":0,"deadlock":{"free":true}}`))

	f.Fuzz(func(t *testing.T, idx byte, data []byte) {
		p := ps[int(idx)%len(ps)]
		var c Certificate
		if err := json.Unmarshal(data, &c); err != nil {
			return
		}
		// Must not panic; accept/reject are both fine for arbitrary input.
		_ = CheckCertificate(p, &c)
	})
}
