package invariant

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func analyze(t *testing.T, p *core.Protocol) *Report {
	t.Helper()
	rep, err := Analyze(context.Background(), p, Options{})
	if err != nil {
		t.Fatalf("Analyze(%s): %v", p.Name(), err)
	}
	if rep.Certificate == nil {
		t.Fatalf("Analyze(%s): nil certificate", p.Name())
	}
	return rep
}

// TestZooVerdicts pins the lane's verdict on every zoo protocol against the
// known ground truth (the paper's Tables and the repo's theorem/explicit
// results): deadlock is exact, and livelock Holds exactly where the
// protocols are known livelock-free — including matching A/B and MIS, where
// Theorem 5.14 is inconclusive or contiguous-only and this lane is the only
// all-K proof in the repo.
func TestZooVerdicts(t *testing.T) {
	want := map[string]struct{ dead, live Verdict }{
		"agreement":      {Fails, Holds},
		"agreement-t01":  {Holds, Holds},
		"agreement-t10":  {Holds, Holds},
		"agreement-both": {Holds, Unknown}, // real livelock at K=4: must never claim Holds
		"coloring2":      {Fails, Holds},
		"coloring3":      {Fails, Holds},
		"gouda-acharya":  {Holds, Unknown}, // real livelock at K=5
		"matching":       {Fails, Holds},
		"matchingA":      {Holds, Holds},
		"matchingB":      {Fails, Holds},
		"mis":            {Holds, Holds},
		"sum-not-two":    {Fails, Holds},
		"sum-not-two-ss": {Holds, Holds},
	}
	zoo := protocols.All()
	if len(zoo) != len(want) {
		t.Fatalf("zoo has %d protocols, expectation table has %d — keep them in sync", len(zoo), len(want))
	}
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		p := zoo[name]
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no expectation", name)
			continue
		}
		rep := analyze(t, p)
		if rep.Deadlock != w.dead {
			t.Errorf("%s: deadlock = %v, want %v", name, rep.Deadlock, w.dead)
		}
		if rep.Livelock != w.live {
			t.Errorf("%s: livelock = %v, want %v", name, rep.Livelock, w.live)
		}
		if rep.Deadlock == Fails && rep.DeadlockCycleLen == 0 {
			t.Errorf("%s: deadlock Fails without a cycle witness", name)
		}
		if rep.InvariantCount <= 0 {
			t.Errorf("%s: InvariantCount = %d", name, rep.InvariantCount)
		}
		if err := CheckCertificate(p, rep.Certificate); err != nil {
			t.Errorf("%s: certificate failed independent re-validation: %v", name, err)
		}
	}
}

// TestCertificateDeterminism pins that repeated analyses produce
// byte-identical canonical certificates — the property that makes the lane
// safe to cache and cross-compare.
func TestCertificateDeterminism(t *testing.T) {
	for _, name := range []string{"sum-not-two-ss", "matchingA", "agreement-t01", "matchingB"} {
		p := protocols.All()[name]
		first := analyze(t, p).Certificate.Canon()
		for i := 0; i < 3; i++ {
			if got := analyze(t, p).Certificate.Canon(); !bytes.Equal(got, first) {
				t.Errorf("%s: run %d certificate differs:\n%s\nvs\n%s", name, i+2, got, first)
			}
		}
	}
}

// flipFlop is a protocol with a genuine livelock only on the size-2 ring:
// with window [-1,1] on K=2 both neighbors are the same process, and the
// guard "right neighbor is 1" lets two non-legitimate states alternate
// forever. The small-K micro-check must refute it with a concrete witness.
func flipFlop() *core.Protocol {
	return core.MustNew(core.Config{
		Name:   "flip-flop",
		Domain: 2,
		Lo:     -1,
		Hi:     1,
		Legit:  func(v core.View) bool { return v[1] == 0 },
		Actions: []core.Action{{
			Name:  "flip",
			Guard: func(v core.View) bool { return v[2] == 1 },
			Next:  func(v core.View) []int { return []int{1 - v[1]} },
		}},
	})
}

func TestSmallRingLivelockWitness(t *testing.T) {
	rep := analyze(t, flipFlop())
	if rep.Livelock != Fails {
		t.Fatalf("livelock = %v, want Fails", rep.Livelock)
	}
	if rep.LivelockWitnessK != 2 {
		t.Fatalf("witness K = %d, want 2", rep.LivelockWitnessK)
	}
	sk := rep.Certificate.SmallK
	if sk == nil || sk.WitnessK != 2 || len(sk.WitnessCycle) == 0 {
		t.Fatalf("certificate small-K witness missing: %+v", sk)
	}
	if err := CheckCertificate(flipFlop(), rep.Certificate); err != nil {
		t.Fatalf("witness certificate rejected: %v", err)
	}
}

// TestTamperedCertificates drives the independent checker with corrupted
// certificates: every mutation must be rejected. This is the lane's trusted
// base — a tampered proof object that passes would silently launder a wrong
// verdict into the report.
func TestTamperedCertificates(t *testing.T) {
	p := protocols.All()["sum-not-two-ss"]
	fresh := func() *Certificate { return analyze(t, p).Certificate }

	tampers := []struct {
		name   string
		mutate func(c *Certificate)
	}{
		{"wrong protocol name", func(c *Certificate) { c.Protocol = "impostor" }},
		{"wrong domain", func(c *Certificate) { c.Domain++ }},
		{"wrong window", func(c *Certificate) { c.Lo-- }},
		{"wrong arc count", func(c *Certificate) { c.TArcs++ }},
		{"non-inductive trap", func(c *Certificate) { c.Traps = [][]int{{0}} }},
		{"unsorted trap", func(c *Certificate) { c.Traps = [][]int{{2, 1}} }},
		{"flip deadlock freedom", func(c *Certificate) {
			c.Deadlock.Free = false
			c.Deadlock.Ranks = nil
		}},
		{"missing bad cycle", func(c *Certificate) {
			c.Deadlock.Free = false
			c.Deadlock.Ranks = nil
			c.Deadlock.BadCycle = nil
		}},
		{"corrupt rank", func(c *Certificate) { c.Deadlock.Ranks[0] = -100 }},
		{"truncate ranks", func(c *Certificate) { c.Deadlock.Ranks = c.Deadlock.Ranks[:1] }},
		{"drop a deadlock", func(c *Certificate) {
			c.Deadlock.Deadlocks = c.Deadlock.Deadlocks[:len(c.Deadlock.Deadlocks)-1]
		}},
		{"zero all weights", func(c *Certificate) {
			for i := range c.Termination.Weights {
				c.Termination.Weights[i] = "0"
			}
		}},
		{"non-numeric weight", func(c *Certificate) { c.Termination.Weights[0] = "banana" }},
		{"truncate weights", func(c *Certificate) { c.Termination.Weights = c.Termination.Weights[:2] }},
		{"wrong recurrent count", func(c *Certificate) { c.Termination.RecurrentTArcs++ }},
		{"claim closure falsely is fine only if true", func(c *Certificate) {
			// Closure genuinely holds for this protocol; instead drop the
			// small-K section while keeping termination (coverage violation
			// is vacuous at w=2, so tamper the checked range directly).
			c.SmallK = &SmallKCertificate{Checked: []int{5}}
		}},
	}
	for _, tc := range tampers {
		c := fresh()
		tc.mutate(c)
		if err := CheckCertificate(p, c); err == nil {
			t.Errorf("%s: tampered certificate accepted", tc.name)
		}
	}

	// Cross-protocol replay: a valid certificate for one protocol must be
	// rejected for another.
	other := protocols.All()["agreement-t01"]
	if err := CheckCertificate(other, fresh()); err == nil {
		t.Errorf("certificate for %s accepted for %s", p.Name(), other.Name())
	}
}

// TestTerminationCoverageRule pins the checker rule that a termination
// certificate (an all-K livelock-freedom claim) must carry clean, complete
// small-ring coverage.
func TestTerminationCoverageRule(t *testing.T) {
	p := protocols.All()["matchingA"] // w = 3, so K=2 coverage is required
	c := analyze(t, p).Certificate
	if c.Termination == nil || c.SmallK == nil {
		t.Fatalf("expected termination + small-K sections, got %+v", c)
	}
	c.SmallK = nil
	if err := CheckCertificate(p, c); err == nil {
		t.Errorf("termination certificate without small-K coverage accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, protocols.All()["matchingA"], Options{}); err == nil {
		t.Fatalf("cancelled Analyze returned nil error")
	}
}

func TestGuards(t *testing.T) {
	p := protocols.All()["matchingA"]
	if _, err := Analyze(context.Background(), p, Options{MaxLocalStates: 8}); err == nil {
		t.Errorf("MaxLocalStates guard did not trip")
	}
	rep, err := Analyze(context.Background(), p, Options{MaxConstraints: 4})
	if err != nil {
		t.Fatalf("MaxConstraints should degrade to Unknown, got error %v", err)
	}
	if rep.Livelock != Unknown {
		t.Errorf("livelock = %v with starved constraint budget, want Unknown", rep.Livelock)
	}
	rep, err = Analyze(context.Background(), p, Options{MaxPivots: 3})
	if err != nil {
		t.Fatalf("MaxPivots should degrade to Unknown, got error %v", err)
	}
	if rep.Livelock != Unknown {
		t.Errorf("livelock = %v with starved pivot budget, want Unknown", rep.Livelock)
	}
}

// TestTrapInductiveness checks the reported traps directly against the
// transition relation (independent of the certificate checker).
func TestTrapInductiveness(t *testing.T) {
	for name, p := range protocols.All() {
		rep := analyze(t, p)
		sys := p.Compile()
		for _, trap := range rep.Certificate.Traps {
			in := map[int]bool{}
			for _, v := range trap {
				in[v] = true
			}
			for _, tr := range sys.Trans {
				if in[sys.OwnValue(tr.Src)] && !in[sys.OwnValue(tr.Dst)] {
					t.Errorf("%s: trap %v not inductive under %s", name, trap, sys.FormatTransition(tr))
				}
			}
		}
	}
}
