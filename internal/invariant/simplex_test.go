package invariant

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
)

func feasibleStrict(t *testing.T, rows [][]int64, n int) (sol []*big.Rat, ok bool) {
	t.Helper()
	sol, ok, _, err := solveStrict(context.Background(), rows, n, 100000)
	if err != nil {
		t.Fatalf("solveStrict: %v", err)
	}
	return sol, ok
}

func TestSolveStrictBasics(t *testing.T) {
	cases := []struct {
		name string
		rows [][]int64
		n    int
		want bool
	}{
		{"empty system", nil, 3, true},
		{"single variable", [][]int64{{1}}, 1, true},
		{"contradictory pair", [][]int64{{1}, {-1}}, 1, false},
		{"antisymmetric", [][]int64{{1, -1}, {-1, 1}}, 2, false},
		{"triangular", [][]int64{{1, 0}, {1, -1}}, 2, true},
		{"zero row", [][]int64{{0, 0}}, 2, false},
		{"chain", [][]int64{{1, -1, 0}, {0, 1, -1}}, 3, true},
		{"cycle sums to zero", [][]int64{{1, -1, 0}, {0, 1, -1}, {-1, 0, 1}}, 3, false},
	}
	for _, tc := range cases {
		sol, ok := feasibleStrict(t, tc.rows, tc.n)
		if ok != tc.want {
			t.Errorf("%s: feasible = %v, want %v", tc.name, ok, tc.want)
		}
		if ok {
			assertStrict(t, tc.name, tc.rows, sol)
		}
	}
}

func assertStrict(t *testing.T, name string, rows [][]int64, sol []*big.Rat) {
	t.Helper()
	for ri, row := range rows {
		sum := new(big.Rat)
		for j, c := range row {
			if c != 0 {
				sum.Add(sum, new(big.Rat).Mul(big.NewRat(c, 1), sol[j]))
			}
		}
		if sum.Sign() >= 0 {
			t.Errorf("%s: row %d: %v · sol = %v, want < 0", name, ri, row, sum)
		}
	}
}

// TestSolveStrictRandomFeasible plants a random solution, builds rows it
// strictly satisfies, and requires the solver to find a (possibly
// different) strict solution.
func TestSolveStrictRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		planted := make([]int64, n)
		for j := range planted {
			planted[j] = int64(rng.Intn(21) - 10)
		}
		m := 1 + rng.Intn(12)
		rows := make([][]int64, 0, m)
		for len(rows) < m {
			row := make([]int64, n)
			var dot int64
			for j := range row {
				row[j] = int64(rng.Intn(7) - 3)
				dot += row[j] * planted[j]
			}
			if dot == 0 {
				continue // flipping cannot make it strict; resample
			}
			if dot > 0 {
				for j := range row {
					row[j] = -row[j]
				}
			}
			rows = append(rows, row)
		}
		sol, ok := feasibleStrict(t, rows, n)
		if !ok {
			t.Fatalf("trial %d: planted-feasible system reported infeasible (planted %v, rows %v)",
				trial, planted, rows)
		}
		assertStrict(t, "random", rows, sol)
	}
}

// TestSolveStrictRandomInfeasible embeds a positive combination that sums
// to zero (row + its negation), which no strict solution can satisfy.
func TestSolveStrictRandomInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := rng.Intn(8)
		var rows [][]int64
		for i := 0; i < m; i++ {
			row := make([]int64, n)
			for j := range row {
				row[j] = int64(rng.Intn(7) - 3)
			}
			rows = append(rows, row)
		}
		row := make([]int64, n)
		for j := range row {
			row[j] = int64(rng.Intn(7) - 3)
		}
		neg := make([]int64, n)
		for j := range row {
			neg[j] = -row[j]
		}
		rows = append(rows, row, neg)
		if _, ok := feasibleStrict(t, rows, n); ok {
			t.Fatalf("trial %d: infeasible system reported feasible (rows %v)", trial, rows)
		}
	}
}

// TestSolveStrictDeterministic pins that repeated solves return the
// identical solution vector.
func TestSolveStrictDeterministic(t *testing.T) {
	rows := [][]int64{{1, -1, 0, 2}, {0, 1, -1, -1}, {2, 0, 1, -3}, {-1, 2, 0, -1}}
	first, ok := feasibleStrict(t, rows, 4)
	if !ok {
		t.Fatalf("system unexpectedly infeasible")
	}
	for i := 0; i < 5; i++ {
		again, ok := feasibleStrict(t, rows, 4)
		if !ok {
			t.Fatalf("rerun %d infeasible", i)
		}
		for j := range first {
			if first[j].Cmp(again[j]) != 0 {
				t.Fatalf("rerun %d: sol[%d] = %v, first run %v", i, j, again[j], first[j])
			}
		}
	}
}
