package invariant

import (
	"context"
	"fmt"

	"paramring/internal/core"
)

// analysis carries the compiled protocol plus the window arithmetic every
// certificate family shares. All derived data comes from core alone.
type analysis struct {
	p    *core.Protocol
	sys  *core.System
	opts Options

	d, lo, hi, w, own, n int
	// nCtx is d^(w-1): the number of completions of the combined window
	// [lo-hi, hi-lo] beyond the w positions the actor's own window fixes.
	nCtx int
}

func newAnalysis(p *core.Protocol, opts Options) (*analysis, error) {
	lo, hi := p.Window()
	a := &analysis{
		p:    p,
		opts: opts,
		d:    p.Domain(),
		lo:   lo,
		hi:   hi,
		w:    p.W(),
		own:  p.OwnIndex(),
		n:    p.NumLocalStates(),
	}
	if a.n > opts.MaxLocalStates {
		return nil, fmt.Errorf("invariant: %d local states exceed the lane limit %d", a.n, opts.MaxLocalStates)
	}
	a.nCtx = 1
	for i := 1; i < a.w; i++ {
		a.nCtx *= a.d
	}
	a.sys = p.Compile()
	return a, nil
}

// freeOffsets lists the combined-window offsets (relative to the acting
// process) not covered by the actor's own window [lo, hi]: the w-1 positions
// [lo-hi, lo-1] and [hi+1, hi-lo], in increasing order. Together with the
// actor's window they form the 2w-1 positions read by the w processes whose
// views contain the actor's variable.
func (a *analysis) freeOffsets() []int {
	var out []int
	for t := a.lo - a.hi; t < a.lo; t++ {
		out = append(out, t)
	}
	for t := a.hi + 1; t <= a.hi-a.lo; t++ {
		out = append(out, t)
	}
	return out
}

// contextValues decodes a context code (0 <= code < nCtx) into a map from
// free offset to domain value, in the fixed freeOffsets order.
func (a *analysis) contextValues(code int, free []int, into map[int]int) {
	for _, t := range free {
		into[t] = code % a.d
		code /= a.d
	}
}

// neighborState encodes the local state of the process o positions left of
// the actor (window offsets o in [lo, hi]; o == 0 is the actor itself). The
// actor's own variable carries ownVal (source or destination value of the
// transition); positions inside the actor's window come from srcView;
// positions beyond it come from the free context.
func (a *analysis) neighborState(srcView core.View, ownVal int, free map[int]int, o int) core.LocalState {
	v := make(core.View, a.w)
	for m := 0; m < a.w; m++ {
		t := a.lo + m - o
		switch {
		case t == 0:
			v[m] = ownVal
		case t >= a.lo && t <= a.hi:
			v[m] = srcView[t-a.lo]
		default:
			v[m] = free[t]
		}
	}
	return core.Encode(v, a.d)
}

// valueTraps computes the distinct non-trivial value traps: for each domain
// value v, the forward-reachability closure of v in the write graph is the
// minimal trap containing v. Traps equal to the full domain are dropped as
// trivially true. Deterministic: sets are emitted in order of their smallest
// generating value, each sorted ascending.
func (a *analysis) valueTraps() [][]int {
	adj := make([][]bool, a.d)
	for i := range adj {
		adj[i] = make([]bool, a.d)
	}
	for _, t := range a.sys.Trans {
		adj[a.sys.OwnValue(t.Src)][a.sys.OwnValue(t.Dst)] = true
	}
	seen := map[string]bool{}
	var out [][]int
	for v := 0; v < a.d; v++ {
		in := make([]bool, a.d)
		in[v] = true
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for y := 0; y < a.d; y++ {
				if adj[x][y] && !in[y] {
					in[y] = true
					queue = append(queue, y)
				}
			}
		}
		var set []int
		for y := 0; y < a.d; y++ {
			if in[y] {
				set = append(set, y)
			}
		}
		if len(set) == a.d {
			continue
		}
		key := fmt.Sprint(set)
		if !seen[key] {
			seen[key] = true
			out = append(out, set)
		}
	}
	return out
}

// closureLocal checks that legitimacy is preserved by every local transition
// in every context: whenever the actor's source view and all affected
// neighbors' before-views satisfy LC, the destination view and all
// after-views do too. The premise over-approximates membership in I (a
// global state in I makes all of them legitimate), so a clean pass is sound
// for every ring size K >= w; sizes below w are covered by the small-K
// micro-check.
func (a *analysis) closureLocal(ctx context.Context) (bool, error) {
	free := a.freeOffsets()
	ctxVals := map[int]int{}
	for ti, tr := range a.sys.Trans {
		if ti%8 == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		srcView := a.p.Decode(tr.Src)
		srcOwn := srcView[a.own]
		dstOwn := a.p.Decode(tr.Dst)[a.own]
		for code := 0; code < a.nCtx; code++ {
			a.contextValues(code, free, ctxVals)
			allLegit := true
			for o := a.lo; o <= a.hi && allLegit; o++ {
				allLegit = a.sys.Legit[a.neighborState(srcView, srcOwn, ctxVals, o)]
			}
			if !allLegit {
				continue
			}
			for o := a.lo; o <= a.hi; o++ {
				if !a.sys.Legit[a.neighborState(srcView, dstOwn, ctxVals, o)] {
					return false, nil
				}
			}
		}
	}
	return true, nil
}
