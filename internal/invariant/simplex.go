package invariant

import (
	"context"
	"errors"
	"math/big"
)

// errPivotLimit aborts a simplex run that exceeds its pivot budget.
var errPivotLimit = errors.New("invariant: simplex pivot limit exceeded")

// solveStrict decides feasibility of the homogeneous strict system
// rows · x < 0 (componentwise) over free rational x, and returns a solution.
// Strict feasibility is scale-invariant, so it is decided as rows · x <= -1
// by a phase-1 simplex over exact rationals: free variables are split
// x_j = u_j - v_j, each row gains a slack and an artificial, and the
// artificial sum is minimized. Determinism: Dantzig's rule (ties broken by
// smallest column) switching to Bland's least-index rule — which cannot
// cycle — after half the pivot budget; ratio ties break toward the smallest
// basis index.
func solveStrict(ctx context.Context, rows [][]int64, n, maxPivots int) (sol []*big.Rat, feasible bool, pivots int, err error) {
	m := len(rows)
	if m == 0 {
		sol = make([]*big.Rat, n)
		for i := range sol {
			sol[i] = new(big.Rat)
		}
		return sol, true, 0, nil
	}
	// Columns: u_0..u_{n-1}, v_0..v_{n-1}, slack s_0..s_{m-1}, artificial
	// a_0..a_{m-1}. Row i of rows·x <= -1, sign-flipped so the RHS is +1:
	//
	//	sum_j -r_ij·u_j + sum_j r_ij·v_j - s_i + a_i = 1.
	cols := 2*n + 2*m
	T := make([][]*big.Rat, m)
	rhs := make([]*big.Rat, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		T[i] = make([]*big.Rat, cols)
		for j := range T[i] {
			T[i][j] = new(big.Rat)
		}
		for j := 0; j < n && j < len(rows[i]); j++ {
			if c := rows[i][j]; c != 0 {
				T[i][j].SetInt64(-c)
				T[i][n+j].SetInt64(c)
			}
		}
		T[i][2*n+i].SetInt64(-1)
		T[i][2*n+m+i].SetInt64(1)
		rhs[i] = big.NewRat(1, 1)
		basis[i] = 2*n + m + i
	}
	// Reduced costs for the all-artificial starting basis (cost 1 on
	// artificials, 0 elsewhere): obj_j = -sum_i T[i][j] on non-artificial
	// columns, 0 on artificial columns; objective value starts at m.
	obj := make([]*big.Rat, cols)
	for j := 0; j < cols; j++ {
		obj[j] = new(big.Rat)
		if j < 2*n+m {
			for i := 0; i < m; i++ {
				obj[j].Sub(obj[j], T[i][j])
			}
		}
	}
	objVal := new(big.Rat).SetInt64(int64(m))

	bland := false
	for {
		if pivots%32 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, pivots, err
			}
		}
		e := -1
		if bland {
			for j := 0; j < cols; j++ {
				if obj[j].Sign() < 0 {
					e = j
					break
				}
			}
		} else {
			best := new(big.Rat)
			for j := 0; j < cols; j++ {
				if obj[j].Cmp(best) < 0 {
					best.Set(obj[j])
					e = j
				}
			}
		}
		if e < 0 {
			break // optimal
		}
		leave := -1
		ratio := new(big.Rat)
		for i := 0; i < m; i++ {
			if T[i][e].Sign() <= 0 {
				continue
			}
			r := new(big.Rat).Quo(rhs[i], T[i][e])
			if leave < 0 || r.Cmp(ratio) < 0 ||
				(r.Cmp(ratio) == 0 && basis[i] < basis[leave]) {
				leave = i
				ratio = r
			}
		}
		if leave < 0 {
			// Phase 1 is bounded below by zero; an unbounded ray means the
			// tableau is corrupt.
			return nil, false, pivots, errors.New("invariant: phase-1 simplex unbounded")
		}
		pivot(T, rhs, obj, objVal, basis, leave, e)
		pivots++
		if pivots >= maxPivots {
			return nil, false, pivots, errPivotLimit
		}
		if !bland && pivots >= maxPivots/2 {
			bland = true
		}
	}
	if objVal.Sign() != 0 {
		return nil, false, pivots, nil // artificials cannot be driven out: infeasible
	}
	sol = make([]*big.Rat, n)
	for j := range sol {
		sol[j] = new(big.Rat)
	}
	for i, b := range basis {
		switch {
		case b < n:
			sol[b].Add(sol[b], rhs[i])
		case b < 2*n:
			sol[b-n].Sub(sol[b-n], rhs[i])
		}
	}
	return sol, true, pivots, nil
}

// pivot performs one tableau pivot: row li leaves the basis, column e enters.
func pivot(T [][]*big.Rat, rhs, obj []*big.Rat, objVal *big.Rat, basis []int, li, e int) {
	piv := new(big.Rat).Set(T[li][e])
	for j := range T[li] {
		if T[li][j].Sign() != 0 {
			T[li][j].Quo(T[li][j], piv)
		}
	}
	rhs[li].Quo(rhs[li], piv)
	tmp := new(big.Rat)
	for i := range T {
		if i == li || T[i][e].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(T[i][e])
		for j := range T[i] {
			if T[li][j].Sign() == 0 {
				continue
			}
			T[i][j].Sub(T[i][j], tmp.Mul(f, T[li][j]))
		}
		rhs[i].Sub(rhs[i], tmp.Mul(f, rhs[li]))
	}
	if obj[e].Sign() != 0 {
		f := new(big.Rat).Set(obj[e])
		for j := range obj {
			if T[li][j].Sign() == 0 {
				continue
			}
			obj[j].Sub(obj[j], tmp.Mul(f, T[li][j]))
		}
		// z moves by the entering column's reduced cost times its step:
		// z <- z + f * rhs'[li] (f < 0, rhs' >= 0, so z decreases).
		objVal.Add(objVal, tmp.Mul(f, rhs[li]))
	}
	basis[li] = e
}
