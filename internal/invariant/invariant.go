// Package invariant is the trap/structural-invariant verification backend:
// the third verification lane beside the paper's local theorems (rcg, ltg)
// and the explicit model checker.
//
// Everything here is computed directly from core.Protocol's local action
// tables, parameterized in the ring size K — no per-K instance is ever
// constructed and no global bitset table is allocated. The lane follows the
// structural-invariant school of parameterized verification (Esparza et al.,
// "Abduction of trap invariants in parameterized systems"; Bozga et al.,
// "Structural Invariants for the Verification of Systems with Parameterized
// Architectures"): properties of the local transition structure that are
// inductive for every instance at once.
//
// Three certificate families are produced:
//
//   - Value traps. For a domain value v, the forward-reachability closure of
//     v in the write graph (edges own(src) -> own(dst) over the local
//     transitions) is a set T with the trap property: once a process's own
//     variable is in T it stays in T forever, for every ring size and every
//     schedule. Traps are reported and certified; they are the lane's
//     simplest stable predicates.
//
//   - A deadlock ranking. A global deadlock at ring size K is exactly a
//     cyclic sequence of K local deadlock states linked by the continuation
//     relation (the overlap of adjacent windows — the same fact Theorem 4.2
//     exploits). The lane certifies deadlock-freedom by exhibiting a ranking
//     r over the local deadlock states with r(u) >= r(v) on every
//     continuation arc and r(u) > r(v) whenever u or v is illegitimate: any
//     continuation cycle through an illegitimate deadlock would force
//     r(u) > r(u). The ranking is complete as well as sound — when no
//     ranking exists the lane returns a concrete continuation cycle as a
//     refutation witness. This mirrors Theorem 4.2's verdict through an
//     independent algorithm (condensation ranks instead of cycle search)
//     with a replayable proof object.
//
//   - A termination potential. A function phi over local states such that
//     every local transition, in every possible neighborhood context,
//     strictly decreases the global sum of phi over all processes. Writing
//     x_i changes the views of the w processes whose windows contain i;
//     quantifying the w-1 context positions those views read beyond the
//     actor's own window yields a finite linear constraint system whose
//     feasibility implies that every computation of every ring size K >= w
//     terminates — hence no livelock of any kind (contiguous or not, with or
//     without the paper's self-disabling Assumption 2). The constraints are
//     first reduced by transition-support pruning: a transition can fire
//     infinitely often only if its write edge lies on a cycle of the write
//     graph, so transitions whose write edge leaves every strongly connected
//     component are removed (iterated to a fixpoint) and only the recurrent
//     remainder must decrease phi. Feasibility is decided by an exact
//     rational phase-1 simplex (math/big, Bland's rule) so the certificate
//     is deterministic and never subject to floating-point doubt. Ring
//     sizes 2 <= K < w, where a window wraps onto itself and the
//     parameterized argument does not apply, are closed out by an exhaustive
//     micro-check of the d^K global states (at most d^(w-1) of them, i.e.
//     never larger than the LP's own context enumeration).
//
// A closure certificate rides along: if in every context the legitimacy of
// the actor and of every affected neighbor is preserved by every local
// transition, the legitimate predicate I = AND LC_r is closed under the
// protocol for every K.
//
// Every conclusive verdict is packaged into a Certificate — the invariant
// set plus the replayable inductiveness proof (ranks, scaled integer
// weights, witness cycles) — that CheckCertificate re-validates from first
// principles: fresh compile, decoded-view arc checks, big.Int sum
// evaluation. The package imports only internal/core; it shares no code
// with rcg, ltg, graph or explicit, which is what makes a disagreement
// between lanes a tool bug by construction.
package invariant

import (
	"context"
	"fmt"

	"paramring/internal/core"
)

// Verdict is the lane's conclusion about one property, quantified over every
// ring size K >= 2.
type Verdict int

const (
	// Unknown: the sufficient conditions failed; nothing is claimed.
	Unknown Verdict = iota
	// Holds: the property is certified for every ring size.
	Holds
	// Fails: a concrete counterexample is attached to the certificate.
	Fails
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Holds:
		return "holds"
	case Fails:
		return "fails"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options bounds the analysis. The zero value selects the defaults; the
// guards exist so a pathological spec degrades into a one-line error (which
// verify surfaces as a skipped lane) instead of an unbounded computation.
type Options struct {
	// MaxLocalStates caps the local state space the lane will analyze
	// (default 1<<14). The LP tableau is dense in the number of referenced
	// local states, so this is the lane's memory guard.
	MaxLocalStates int
	// MaxConstraints caps the deduplicated LP constraint count
	// (default 1<<16).
	MaxConstraints int
	// MaxPivots caps the simplex pivot count (default 20000).
	MaxPivots int
}

func (o Options) withDefaults() Options {
	if o.MaxLocalStates <= 0 {
		o.MaxLocalStates = 1 << 14
	}
	if o.MaxConstraints <= 0 {
		o.MaxConstraints = 1 << 16
	}
	if o.MaxPivots <= 0 {
		o.MaxPivots = 20000
	}
	return o
}

// Report is the lane's outcome. All fields are deterministic functions of
// (protocol, options): the analysis has no concurrency, no map iteration in
// output order, and the simplex uses deterministic pivot rules.
type Report struct {
	// Deadlock is the verdict on "no ring size has a global deadlock outside
	// I". It is exact: Holds or Fails, never Unknown (the ranking argument
	// is complete for the continuation-cycle characterization).
	Deadlock Verdict
	// DeadlockCycleLen, when Deadlock == Fails, is the length of the
	// continuation cycle witness; the smallest deadlocked ring size is the
	// length itself (or 2 for a self-loop witness).
	DeadlockCycleLen int

	// Livelock is the verdict on "no ring size has an infinite computation
	// that never reaches I". Holds requires the termination potential (all
	// K >= w) plus clean micro-checks (2 <= K < w); Fails carries a
	// concrete small-ring cycle witness.
	Livelock Verdict
	// LivelockWitnessK, when Livelock == Fails, is the witness ring size.
	LivelockWitnessK int

	// Closure is the verdict on "I is closed under protocol actions for
	// every ring size": Holds or Unknown (a context violation cannot be
	// trusted as a refutation — the violating context may be unreachable).
	Closure Verdict

	// TrapCount is the number of distinct non-trivial value traps.
	TrapCount int
	// InvariantCount totals the certified invariant objects in the
	// certificate: traps + ranking + potential + closure.
	InvariantCount int
	// Constraints and Pivots are the LP's size and work (0 when the
	// recurrent transition set was empty and no LP was needed).
	Constraints int
	Pivots      int

	// Notes explains Unknown verdicts (infeasible LP, self-loop
	// transitions, guard limits) in deterministic order.
	Notes []string

	// Certificate is the machine-checkable proof object; non-nil on every
	// successful Analyze and re-validated by CheckCertificate.
	Certificate *Certificate
}

// Analyze runs the invariant lane on p. The returned error is non-nil only
// for cancellation or guard violations (options too small for the spec);
// inconclusive analyses return a Report with Unknown verdicts instead.
func Analyze(ctx context.Context, p *core.Protocol, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	a, err := newAnalysis(p, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	cert := &Certificate{
		Protocol:    p.Name(),
		Domain:      a.d,
		Lo:          a.lo,
		Hi:          a.hi,
		LocalStates: a.n,
		TArcs:       len(a.sys.Trans),
	}

	cert.Traps = a.valueTraps()
	rep.TrapCount = len(cert.Traps)

	dc, dv := a.deadlockCert()
	cert.Deadlock = dc
	rep.Deadlock = dv
	if dv == Fails {
		rep.DeadlockCycleLen = len(dc.BadCycle)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sk, smallLivelockOK, smallClosureOK := a.smallKCheck()
	cert.SmallK = sk
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	tc, tv, notes, stats, err := a.termination(ctx)
	if err != nil {
		return nil, err
	}
	rep.Constraints, rep.Pivots = stats.constraints, stats.pivots
	rep.Notes = append(rep.Notes, notes...)
	switch {
	case sk != nil && sk.WitnessK > 0:
		rep.Livelock = Fails
		rep.LivelockWitnessK = sk.WitnessK
	case tv == Holds && smallLivelockOK:
		rep.Livelock = Holds
		cert.Termination = tc
	default:
		rep.Livelock = Unknown
	}

	closOK, err := a.closureLocal(ctx)
	if err != nil {
		return nil, err
	}
	if closOK && smallClosureOK {
		rep.Closure = Holds
		cert.ClosureHolds = true
	} else {
		rep.Closure = Unknown
		rep.Notes = append(rep.Notes, "closure: some local transition can leave I in an (over-approximated) context")
	}

	rep.InvariantCount = len(cert.Traps)
	if cert.Deadlock != nil {
		rep.InvariantCount++
	}
	if cert.Termination != nil {
		rep.InvariantCount++
	}
	if cert.ClosureHolds {
		rep.InvariantCount++
	}
	rep.Certificate = cert
	return rep, nil
}
