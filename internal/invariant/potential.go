package invariant

import (
	"context"
	"fmt"
	"math/big"

	"paramring/internal/core"
)

// lpStats reports the LP's size and work for the lane report.
type lpStats struct {
	constraints int
	pivots      int
}

// termination tries to certify that every computation of every ring size
// K >= w is finite, by finding a local potential phi whose global sum
// strictly decreases on every step. Returns the certificate (nil unless the
// verdict is Holds), the verdict, explanatory notes for Unknown, and LP
// statistics.
func (a *analysis) termination(ctx context.Context) (*TerminationCertificate, Verdict, []string, lpStats, error) {
	var stats lpStats
	if len(a.sys.Trans) == 0 {
		return &TerminationCertificate{}, Holds, nil, stats, nil
	}
	rec := recurrentArcs(a.sys)
	if len(rec) == 0 {
		// Every transition's write edge eventually leaves the write graph's
		// cyclic part: only finitely many steps can ever fire.
		return &TerminationCertificate{}, Holds, nil, stats, nil
	}
	for _, t := range rec {
		if t.Src == t.Dst {
			return nil, Unknown, []string{
				"termination: a recurrent local transition is a self-loop (stuttering); no decreasing potential exists",
			}, stats, nil
		}
	}

	rows, vars, states, err := a.potentialRows(ctx, rec)
	if err != nil {
		return nil, Unknown, nil, stats, err
	}
	stats.constraints = len(rows)
	if len(rows) > a.opts.MaxConstraints {
		return nil, Unknown, []string{fmt.Sprintf(
			"termination: %d LP constraints exceed the lane limit %d", len(rows), a.opts.MaxConstraints,
		)}, stats, nil
	}
	sol, feasible, pivots, err := solveStrict(ctx, rows, vars, a.opts.MaxPivots)
	stats.pivots = pivots
	if err != nil {
		if err == errPivotLimit {
			return nil, Unknown, []string{"termination: simplex pivot limit exceeded"}, stats, nil
		}
		return nil, Unknown, nil, stats, err
	}
	if !feasible {
		return nil, Unknown, []string{
			"termination: no linear local potential decreases on every recurrent transition in every context",
		}, stats, nil
	}

	weights := scaleWeights(sol, states, a.n)
	// Self-check before emitting: with exact arithmetic this cannot fail,
	// but a certificate must never leave the analyzer unverified.
	if err := a.verifyWeights(rec, weights); err != nil {
		return nil, Unknown, nil, stats, fmt.Errorf("invariant: potential self-check failed: %w", err)
	}
	cert := &TerminationCertificate{RecurrentTArcs: len(rec), Weights: make([]string, a.n)}
	for i, w := range weights {
		cert.Weights[i] = w.String()
	}
	return cert, Holds, nil, stats, nil
}

// recurrentArcs reduces the local transitions to the subset that could fire
// infinitely often, by transition-support pruning iterated to a fixpoint: a
// transition fires infinitely often only if its write edge
// own(Src) -> own(Dst) lies on a cycle of write edges of transitions that
// themselves fire infinitely often, so any transition whose write edge
// crosses between strongly connected components of the current write graph
// is discarded. The surviving set over-approximates the infinitely-firing
// transitions of every infinite computation, for every ring size — so a
// potential decreasing only on these still bounds every computation's tail.
func recurrentArcs(sys *core.System) []core.LocalTransition {
	arcs := append([]core.LocalTransition(nil), sys.Trans...)
	d := sys.Protocol().Domain()
	for {
		reach := valueReach(sys, arcs, d)
		kept := arcs[:0]
		for _, t := range arcs {
			va, vb := sys.OwnValue(t.Src), sys.OwnValue(t.Dst)
			if reach[vb][va] { // vb -> va completes a cycle through the edge va -> vb
				kept = append(kept, t)
			}
		}
		if len(kept) == len(arcs) {
			return kept
		}
		arcs = append([]core.LocalTransition(nil), kept...)
	}
}

// valueReach computes reflexive-transitive reachability over the write-value
// graph of arcs.
func valueReach(sys *core.System, arcs []core.LocalTransition, d int) [][]bool {
	adj := make([][]bool, d)
	reach := make([][]bool, d)
	for i := range adj {
		adj[i] = make([]bool, d)
		reach[i] = make([]bool, d)
		reach[i][i] = true
	}
	for _, t := range arcs {
		adj[sys.OwnValue(t.Src)][sys.OwnValue(t.Dst)] = true
	}
	for v := 0; v < d; v++ {
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for y := 0; y < d; y++ {
				if adj[x][y] && !reach[v][y] {
					reach[v][y] = true
					queue = append(queue, y)
				}
			}
		}
	}
	return reach
}

// potentialRows builds the LP constraint rows: one per (recurrent
// transition, context), over a compact variable space covering only the
// local states some row references. Each row demands
//
//	sum_j row[j] * phi[state_j] <= -1,
//
// where the coefficients are the net change, across the actor and all w-1
// affected neighbors, of how many processes sit in each local state when the
// transition fires in that context. Identical rows are deduplicated.
// Returns the rows, the variable count, and the state code per variable.
func (a *analysis) potentialRows(ctx context.Context, rec []core.LocalTransition) ([][]int64, int, []int, error) {
	free := a.freeOffsets()
	ctxVals := map[int]int{}
	varOf := map[core.LocalState]int{}
	var states []int
	varID := func(s core.LocalState) int {
		if id, ok := varOf[s]; ok {
			return id
		}
		id := len(states)
		varOf[s] = id
		states = append(states, int(s))
		return id
	}
	seen := map[string]bool{}
	var rows [][]int64
	for _, tr := range rec {
		if err := ctx.Err(); err != nil {
			return nil, 0, nil, err
		}
		srcView := a.p.Decode(tr.Src)
		srcOwn := srcView[a.own]
		dstOwn := a.p.Decode(tr.Dst)[a.own]
		for code := 0; code < a.nCtx; code++ {
			a.contextValues(code, free, ctxVals)
			row := map[int]int64{}
			for o := a.lo; o <= a.hi; o++ {
				before := varID(a.neighborState(srcView, srcOwn, ctxVals, o))
				after := varID(a.neighborState(srcView, dstOwn, ctxVals, o))
				row[before]--
				row[after]++
			}
			dense := make([]int64, len(states))
			for id, c := range row {
				dense[id] = c
			}
			key := fmt.Sprint(dense)
			if !seen[key] {
				seen[key] = true
				rows = append(rows, dense)
			}
		}
	}
	// Rows were built while the variable space grew; pad to the final width.
	for i, r := range rows {
		if len(r) < len(states) {
			padded := make([]int64, len(states))
			copy(padded, r)
			rows[i] = padded
		}
	}
	return rows, len(states), states, nil
}

// scaleWeights converts the LP's rational solution over the compact variable
// space into canonical integer weights over the full local state space:
// scale by the LCM of denominators, shift so the minimum weight is zero
// (every row's coefficients sum to zero, so a uniform shift preserves all
// sums), and divide by the GCD.
func scaleWeights(sol []*big.Rat, states []int, n int) []*big.Int {
	lcm := big.NewInt(1)
	for _, r := range sol {
		d := r.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(new(big.Int).Mul(lcm, d), g)
	}
	weights := make([]*big.Int, n)
	for i := range weights {
		weights[i] = new(big.Int)
	}
	for id, r := range sol {
		v := new(big.Int).Mul(r.Num(), new(big.Int).Div(lcm, r.Denom()))
		weights[states[id]].Set(v)
	}
	min := new(big.Int).Set(weights[0])
	for _, w := range weights[1:] {
		if w.Cmp(min) < 0 {
			min.Set(w)
		}
	}
	gcd := new(big.Int)
	for _, w := range weights {
		w.Sub(w, min)
		gcd.GCD(nil, nil, gcd, w)
	}
	if gcd.Sign() > 0 && gcd.Cmp(big.NewInt(1)) > 0 {
		for _, w := range weights {
			w.Div(w, gcd)
		}
	}
	return weights
}

// verifyWeights replays every (recurrent transition, context) constraint
// against integer weights, requiring a strictly negative sum.
func (a *analysis) verifyWeights(rec []core.LocalTransition, weights []*big.Int) error {
	free := a.freeOffsets()
	ctxVals := map[int]int{}
	for _, tr := range rec {
		srcView := a.p.Decode(tr.Src)
		srcOwn := srcView[a.own]
		dstOwn := a.p.Decode(tr.Dst)[a.own]
		for code := 0; code < a.nCtx; code++ {
			a.contextValues(code, free, ctxVals)
			sum := new(big.Int)
			for o := a.lo; o <= a.hi; o++ {
				sum.Sub(sum, weights[a.neighborState(srcView, srcOwn, ctxVals, o)])
				sum.Add(sum, weights[a.neighborState(srcView, dstOwn, ctxVals, o)])
			}
			if sum.Sign() >= 0 {
				return fmt.Errorf("transition %v in context %d: potential delta %v not negative", tr, code, sum)
			}
		}
	}
	return nil
}
