package invariant

import (
	"paramring/internal/core"
)

// Ring sizes 2 <= K < w wrap a process's window onto itself, so the
// parameterized context-quantified certificates do not speak about them.
// There are at most d^(w-1) such global states per size — never more than
// the LP's own context enumeration — so these sizes are closed out
// exhaustively, still without touching the explicit engine: the transition
// function is evaluated straight off core.Protocol's action closures.

// smallKCheck examines every ring size in [2, w). It returns the
// certificate fragment (nil when the range is empty), whether all sizes are
// livelock-free, and whether all sizes preserve closure of I.
func (a *analysis) smallKCheck() (*SmallKCertificate, bool, bool) {
	if a.w <= 2 {
		return nil, true, true
	}
	cert := &SmallKCertificate{}
	livelockOK, closureOK := true, true
	for k := 2; k < a.w; k++ {
		cert.Checked = append(cert.Checked, k)
		cycle := smallRingLivelock(a.p, k)
		if cycle != nil && cert.WitnessK == 0 {
			cert.WitnessK = k
			cert.WitnessCycle = cycle
		}
		if cycle != nil {
			livelockOK = false
		}
		if !smallRingClosure(a.p, k) {
			closureOK = false
		}
	}
	return cert, livelockOK, closureOK
}

// smallRing enumerates the d^K global states of a size-K ring directly from
// the protocol's action tables.
type smallRing struct {
	p    *core.Protocol
	k, d int
	n    int // d^K
	lo   int
}

func newSmallRing(p *core.Protocol, k int) *smallRing {
	r := &smallRing{p: p, k: k, d: p.Domain()}
	r.lo, _ = p.Window()
	r.n = 1
	for i := 0; i < k; i++ {
		r.n *= r.d
	}
	return r
}

// vals decodes a global state code into one value per process.
func (r *smallRing) vals(g int) []int {
	out := make([]int, r.k)
	for i := 0; i < r.k; i++ {
		out[i] = g % r.d
		g /= r.d
	}
	return out
}

// view builds process i's (wrapped) window view.
func (r *smallRing) view(vals []int, i int) core.View {
	w := r.p.W()
	v := make(core.View, w)
	for m := 0; m < w; m++ {
		v[m] = vals[((i+r.lo+m)%r.k+r.k)%r.k]
	}
	return v
}

// legit reports whether the global state satisfies I(K) = AND LC_i.
func (r *smallRing) legit(vals []int) bool {
	for i := 0; i < r.k; i++ {
		if !r.p.LegitimateView(r.view(vals, i)) {
			return false
		}
	}
	return true
}

// succs lists the distinct successor state codes of g, in deterministic
// order (process ascending, action order, Next order). Stuttering writes
// produce a global self-loop, which is a genuine one-state cycle.
func (r *smallRing) succs(g int) []int {
	vals := r.vals(g)
	var out []int
	seen := map[int]bool{}
	mult := 1
	for i := 0; i < r.k; i++ {
		v := r.view(vals, i)
		for _, act := range r.p.Actions() {
			if !act.Guard(v) {
				continue
			}
			for _, nv := range act.Next(v) {
				ng := g + (nv-vals[i])*mult
				if !seen[ng] {
					seen[ng] = true
					out = append(out, ng)
				}
			}
		}
		mult *= r.d
	}
	return out
}

// smallRingLivelock searches the size-k ring for a cycle lying entirely
// outside I(K) — an infinite computation that never converges, i.e. a real
// livelock witness. Returns the cycle as global valuations, or nil.
func smallRingLivelock(p *core.Protocol, k int) [][]int {
	r := newSmallRing(p, k)
	outside := make([]bool, r.n)
	for g := 0; g < r.n; g++ {
		outside[g] = !r.legit(r.vals(g))
	}
	color := make([]byte, r.n) // 0 white, 1 on stack, 2 done
	type frame struct {
		g    int
		next int
		ss   []int
	}
	for start := 0; start < r.n; start++ {
		if !outside[start] || color[start] != 0 {
			continue
		}
		stack := []frame{{g: start, ss: r.succs(start)}}
		color[start] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(f.ss) {
				ng := f.ss[f.next]
				f.next++
				if !outside[ng] || color[ng] == 2 {
					continue
				}
				if color[ng] == 1 {
					// Cycle: unwind the stack back to ng.
					var cycle [][]int
					for i := range stack {
						if stack[i].g == ng || len(cycle) > 0 {
							cycle = append(cycle, r.vals(stack[i].g))
						}
					}
					return cycle
				}
				color[ng] = 1
				stack = append(stack, frame{g: ng, ss: r.succs(ng)})
				advanced = true
				break
			}
			if !advanced && f.next >= len(f.ss) {
				color[f.g] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// smallRingClosure reports whether I(K) is closed under the protocol on the
// size-k ring: every successor of a legitimate state is legitimate.
func smallRingClosure(p *core.Protocol, k int) bool {
	r := newSmallRing(p, k)
	for g := 0; g < r.n; g++ {
		vals := r.vals(g)
		if !r.legit(vals) {
			continue
		}
		for _, ng := range r.succs(g) {
			if !r.legit(r.vals(ng)) {
				return false
			}
		}
	}
	return true
}
