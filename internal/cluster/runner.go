package cluster

import (
	"context"

	"paramring/internal/corpus"
	"paramring/internal/verify"
)

// Runner executes one verification attempt. It is the transport-neutral
// engine seam: the service's local execution path, in-process cluster
// workers, and remote lrserved worker processes all run tasks through a
// Runner, so a verdict never depends on where it was computed. ctx is
// canceled on lease expiry, deadline, or shutdown.
type Runner interface {
	Run(ctx context.Context, t Task) (*verify.Report, error)
}

// LocalRunner runs tasks in-process through the standard memoized front
// end: the compiled-spec cache skips parse/validate/compile for repeat
// canonical specs, and same-family tasks share one skeleton LTG and one
// Theorem 5.14 verdict memo. Sharing never changes a verdict — the
// skeleton is shape-guarded and memo verdicts are pure functions of the
// key — so the content-addressed result cache stays byte-stable.
type LocalRunner struct {
	Specs *verify.SpecCache
	Memos *corpus.FamilyMemos
}

// NewLocalRunner builds a LocalRunner with fresh caches (nil arguments
// allocate defaults; pass shared instances to pool memo state with other
// consumers, as the service does).
func NewLocalRunner(specs *verify.SpecCache, memos *corpus.FamilyMemos) *LocalRunner {
	if specs == nil {
		specs = verify.NewSpecCache(0)
	}
	if memos == nil {
		memos = corpus.NewFamilyMemos(0)
	}
	return &LocalRunner{Specs: specs, Memos: memos}
}

// Run implements Runner.
func (r *LocalRunner) Run(ctx context.Context, t Task) (*verify.Report, error) {
	cs, _, err := r.Specs.Compile(t.Spec)
	if err != nil {
		return nil, err
	}
	opts := t.Options.Verify()
	if r.Memos != nil {
		opts.Check = r.Memos.CheckOptions(cs.Protocol, opts.Check)
	}
	return verify.CheckCtx(ctx, cs.Protocol, opts)
}

// ReportWire is the transport projection of verify.Report: exactly the
// scalar fields the coordinator-side service consumes (the Result
// projection, Summary rendering, and metrics), with the per-lane detail
// structures left on the worker. Round-tripping a report through
// ReportWire and back preserves every byte of the service's
// content-addressed Result — the remote-worker parity test pins this.
type ReportWire struct {
	Deadlock                  int      `json:"deadlock"`
	DeadlockWitnessK          int      `json:"deadlock_witness_k,omitempty"`
	Livelock                  int      `json:"livelock"`
	LivelockWitnessK          int      `json:"livelock_witness_k,omitempty"`
	ContiguousOnly            bool     `json:"contiguous_only,omitempty"`
	LivelockSkipped           string   `json:"livelock_skipped,omitempty"`
	LivelockBoundedFreeK      int      `json:"livelock_bounded_free_k,omitempty"`
	LivelockTheorem           int      `json:"livelock_theorem,omitempty"`
	Invariant                 bool     `json:"invariant,omitempty"`
	InvariantDeadlock         int      `json:"invariant_deadlock,omitempty"`
	InvariantLivelock         int      `json:"invariant_livelock,omitempty"`
	InvariantClosure          int      `json:"invariant_closure,omitempty"`
	InvariantSkipped          string   `json:"invariant_skipped,omitempty"`
	InvariantCount            int      `json:"invariant_count,omitempty"`
	InvariantCertBytes        int      `json:"invariant_cert_bytes,omitempty"`
	LivelockProvedByInvariant bool     `json:"livelock_proved_by_invariant,omitempty"`
	SelfStabilizing           bool     `json:"self_stabilizing"`
	CrossValidated            []int    `json:"cross_validated,omitempty"`
	Disagreements             []string `json:"disagreements,omitempty"`
	ExplicitStates            uint64   `json:"explicit_states,omitempty"`
	ExplicitPeakTableBytes    uint64   `json:"explicit_peak_table_bytes,omitempty"`
}

// WireFromReport projects a report for transport.
func WireFromReport(r *verify.Report) *ReportWire {
	if r == nil {
		return nil
	}
	return &ReportWire{
		Deadlock:                  int(r.Deadlock),
		DeadlockWitnessK:          r.DeadlockWitnessK,
		Livelock:                  int(r.Livelock),
		LivelockWitnessK:          r.LivelockWitnessK,
		ContiguousOnly:            r.ContiguousOnly,
		LivelockSkipped:           r.LivelockSkipped,
		LivelockBoundedFreeK:      r.LivelockBoundedFreeK,
		LivelockTheorem:           int(r.LivelockTheorem),
		Invariant:                 r.Invariant,
		InvariantDeadlock:         int(r.InvariantDeadlock),
		InvariantLivelock:         int(r.InvariantLivelock),
		InvariantClosure:          int(r.InvariantClosure),
		InvariantSkipped:          r.InvariantSkipped,
		InvariantCount:            r.InvariantCount,
		InvariantCertBytes:        r.InvariantCertBytes,
		LivelockProvedByInvariant: r.LivelockProvedByInvariant,
		SelfStabilizing:           r.SelfStabilizing,
		CrossValidated:            r.CrossValidated,
		Disagreements:             r.Disagreements,
		ExplicitStates:            r.ExplicitStates,
		ExplicitPeakTableBytes:    r.ExplicitPeakTableBytes,
	}
}

// Report reconstructs the service-facing verify.Report.
func (w *ReportWire) Report() *verify.Report {
	if w == nil {
		return nil
	}
	return &verify.Report{
		Deadlock:                  verify.Status(w.Deadlock),
		DeadlockWitnessK:          w.DeadlockWitnessK,
		Livelock:                  verify.Status(w.Livelock),
		LivelockWitnessK:          w.LivelockWitnessK,
		ContiguousOnly:            w.ContiguousOnly,
		LivelockSkipped:           w.LivelockSkipped,
		LivelockBoundedFreeK:      w.LivelockBoundedFreeK,
		LivelockTheorem:           verify.Status(w.LivelockTheorem),
		Invariant:                 w.Invariant,
		InvariantDeadlock:         verify.Status(w.InvariantDeadlock),
		InvariantLivelock:         verify.Status(w.InvariantLivelock),
		InvariantClosure:          verify.Status(w.InvariantClosure),
		InvariantSkipped:          w.InvariantSkipped,
		InvariantCount:            w.InvariantCount,
		InvariantCertBytes:        w.InvariantCertBytes,
		LivelockProvedByInvariant: w.LivelockProvedByInvariant,
		SelfStabilizing:           w.SelfStabilizing,
		CrossValidated:            w.CrossValidated,
		Disagreements:             w.Disagreements,
		ExplicitStates:            w.ExplicitStates,
		ExplicitPeakTableBytes:    w.ExplicitPeakTableBytes,
	}
}
