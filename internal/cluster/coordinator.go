package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"paramring/internal/verify"
)

// DoneFunc receives the outcome of one dispatched attempt, exactly once:
// a report, or an error (ErrLeaseExpired, ErrWorkerPanic-wrapped panics,
// context errors, or a deterministic engine error). workerID names the
// worker the attempt ran on ("" when it never ran).
type DoneFunc func(rep *verify.Report, workerID string, err error)

// Coordinator owns the lease table and worker registry. The service
// enqueues tasks through Dispatch; workers — in-process or remote — pull
// through Next, renew through Heartbeat, and finish through Complete. The
// first of {Complete, lease expiry, shutdown} fires the task's DoneFunc;
// everything later is dropped as a late result.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*member
	leases  map[string]*lease // by job id
	closed  bool
	started bool // Start launched the scanner; Stop only joins it then
	// lastToken issues lease fencing tokens; see lease.token.
	lastToken uint64

	scanStop chan struct{}
	scanDone chan struct{}
}

// member is one registered worker.
type member struct {
	info   WorkerInfo
	remote bool
	// queue holds granted-but-not-yet-pulled leases. A lease may expire
	// while still queued (worker never pulled); Next skips stale entries.
	queue []*lease
	// held counts leases granted to this worker (queued + running); the
	// placement slot check is held < slots.
	held     int
	lastSeen time.Time
}

// lease is one outstanding task grant.
type lease struct {
	task   Task
	worker string
	// token fences this grant against every other grant of the same job:
	// Heartbeat and Complete must present it. Without the token a late
	// result is indistinguishable from the current attempt whenever the
	// re-dispatch landed on the same worker (the ABA the chaos suite
	// exercises). Zero never matches — only recovered leases, whose
	// pre-restart token is unknowable, accept any token from their worker.
	token  uint64
	expiry time.Time
	done   DoneFunc
	// ctx/cancel bound the in-process execution; expiry and shutdown
	// cancel it. Remote workers derive their own context from the task
	// deadline — the coordinator cannot reach across the wire, which is
	// exactly what the lease expiry is for.
	ctx    context.Context
	cancel context.CancelFunc
	// counted records that placement reserved a slot (held++) for this
	// lease; recovered leases from a journal replay never did.
	counted bool
	// recovered marks a lease reconstructed from the journal after a
	// coordinator restart: its worker may re-join and complete it, or the
	// expiry re-dispatches the job — exactly once either way.
	recovered bool
}

// NewCoordinator builds a stopped coordinator; Start launches the lease
// expiry scanner.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:      cfg.withDefaults(),
		workers:  map[string]*member{},
		leases:   map[string]*lease{},
		scanStop: make(chan struct{}),
		scanDone: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Start launches the lease-expiry scanner. Idempotent.
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go c.scan()
}

// scanInterval is the expiry-scanner cadence: a fraction of the TTL so an
// expired lease is detected promptly even with test-scale TTLs.
func (c *Coordinator) scanInterval() time.Duration {
	d := c.cfg.LeaseTTL / 8
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

func (c *Coordinator) scan() {
	defer close(c.scanDone)
	ticker := time.NewTicker(c.scanInterval())
	defer ticker.Stop()
	for {
		select {
		case <-c.scanStop:
			return
		case <-ticker.C:
			c.expireDue(time.Now())
		}
	}
}

// expireDue fires every lease whose expiry has passed: the DoneFunc gets
// ErrLeaseExpired (the service's retry machinery re-dispatches with
// backoff and attempt accounting), the in-process execution context is
// canceled, and a remote worker that let a lease die is presumed dead and
// dropped from the registry — it must re-join.
func (c *Coordinator) expireDue(now time.Time) {
	type expired struct {
		l    *lease
		lost *WorkerInfo // remote worker dropped with the lease
	}
	var due []expired
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	for job, l := range c.leases {
		if now.Before(l.expiry) {
			continue
		}
		delete(c.leases, job)
		e := expired{l: l}
		if m, ok := c.workers[l.worker]; ok {
			if l.counted {
				m.held--
			}
			if m.remote {
				delete(c.workers, l.worker)
				info := m.info
				e.lost = &info
			}
		}
		due = append(due, e)
	}
	var peers []Peer
	if len(due) > 0 {
		c.cond.Broadcast()
		peers = c.peersLocked()
	}
	c.mu.Unlock()

	for _, e := range due {
		if e.l.cancel != nil {
			e.l.cancel()
		}
		if ev := c.cfg.Events.LeaseExpired; ev != nil {
			ev(e.l.task.JobID, e.l.worker)
		}
		if e.lost != nil {
			c.cfg.Log.Printf("worker %s presumed dead: lease %s expired", e.lost.ID, e.l.task.JobID)
			if ev := c.cfg.Events.WorkerLost; ev != nil {
				ev(e.lost.ID, "lease expired")
			}
		}
		e.l.done(nil, e.l.worker, fmt.Errorf("%w: job %s on worker %s", ErrLeaseExpired, e.l.task.JobID, e.l.worker))
	}
	if len(due) > 0 {
		if ev := c.cfg.Events.PeersChanged; ev != nil {
			ev(peers)
		}
	}
}

// waitLocked blocks on the coordinator condition until broadcast or ctx
// done. Called and returns with c.mu held.
func (c *Coordinator) waitLocked(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.cond.Wait()
	return ctx.Err()
}

// Join registers (or refreshes) a remote worker. A worker whose lease
// expired was dropped from the registry and re-joins through here — the
// blackholed-but-alive case. Joining is idempotent.
func (c *Coordinator) Join(info WorkerInfo) error {
	return c.register(info, true)
}

func (c *Coordinator) register(info WorkerInfo, remote bool) error {
	if info.ID == "" {
		return fmt.Errorf("cluster: join: empty worker id")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrStopped
	}
	m, known := c.workers[info.ID]
	if known {
		m.info = info
		m.lastSeen = time.Now()
		c.mu.Unlock()
		return nil
	}
	m = &member{info: info, remote: remote, lastSeen: time.Now()}
	c.workers[info.ID] = m
	c.cond.Broadcast()
	peers := c.peersLocked()
	c.mu.Unlock()
	if ev := c.cfg.Events.WorkerJoined; ev != nil {
		ev(info)
	}
	if ev := c.cfg.Events.PeersChanged; ev != nil {
		ev(peers)
	}
	return nil
}

// Leave deregisters a worker voluntarily (clean worker shutdown). Its
// outstanding leases are left to expire — the worker may still complete
// them on the way out.
func (c *Coordinator) Leave(id string) {
	c.mu.Lock()
	_, known := c.workers[id]
	delete(c.workers, id)
	var peers []Peer
	if known {
		c.cond.Broadcast()
		peers = c.peersLocked()
	}
	c.mu.Unlock()
	if !known {
		return
	}
	if ev := c.cfg.Events.WorkerLost; ev != nil {
		ev(id, "left")
	}
	if ev := c.cfg.Events.PeersChanged; ev != nil {
		ev(peers)
	}
}

// peersLocked renders the addressable member set for the federated cache.
func (c *Coordinator) peersLocked() []Peer {
	var peers []Peer
	for _, m := range c.workers {
		if m.info.Addr != "" {
			peers = append(peers, Peer{ID: m.info.ID, Addr: m.info.Addr})
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers
}

// Workers returns a point-in-time view of the registry, sorted by id.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, m := range c.workers {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// liveSortedLocked returns registered members sorted by id, for
// deterministic placement.
func (c *Coordinator) liveSortedLocked() []*member {
	out := make([]*member, 0, len(c.workers))
	for _, m := range c.workers {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.ID < out[j].info.ID })
	return out
}

// placeLocked picks the dispatch target for t: among workers whose budget
// fits the estimate and with a free slot, the least-loaded (ties by id).
// When none fits by budget and degradation is on, the largest-budget
// free-slot worker takes the task degraded.
func (c *Coordinator) placeLocked(t Task) (target *member, degraded bool) {
	var best *member
	for _, m := range c.liveSortedLocked() {
		if m.held >= m.info.slots() || !m.info.fits(t.Estimate) {
			continue
		}
		if best == nil || m.held < best.held {
			best = m
		}
	}
	if best != nil {
		return best, false
	}
	if !c.cfg.DegradeOverBudget {
		return nil, false
	}
	for _, m := range c.liveSortedLocked() {
		if m.held >= m.info.slots() || m.info.fits(t.Estimate) {
			// Fitting-but-busy workers were handled above; taking one here
			// degraded would clamp a task that a free slot could run whole.
			continue
		}
		if best == nil || m.info.MemBudgetBytes > best.info.MemBudgetBytes {
			best = m
		}
	}
	return best, best != nil
}

// couldEverFitLocked reports whether any registered worker — busy or not
// — could admit the estimate.
func (c *Coordinator) couldEverFitLocked(estimate uint64) (fits, anyWorker bool) {
	for _, m := range c.workers {
		anyWorker = true
		if m.info.fits(estimate) {
			fits = true
		}
	}
	return fits, anyWorker
}

// Dispatch places t on a worker under a fresh lease and returns once the
// grant is journaled (Events.LeaseGranted) and the task is visible to the
// worker. done fires exactly once with the attempt's outcome. Dispatch
// blocks while every eligible worker is busy — or while no worker has
// joined yet — and fails fast with ErrNoWorker when workers exist but
// none could ever fit the estimate (unless DegradeOverBudget).
func (c *Coordinator) Dispatch(ctx context.Context, t Task, done DoneFunc) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrStopped
		}
		target, degraded := c.placeLocked(t)
		if target == nil {
			fits, anyWorker := c.couldEverFitLocked(t.Estimate)
			if anyWorker && !fits && !c.cfg.DegradeOverBudget {
				c.mu.Unlock()
				return fmt.Errorf("%w: estimate %d bytes exceeds every worker budget", ErrNoWorker, t.Estimate)
			}
			if err := c.waitLocked(ctx); err != nil {
				c.mu.Unlock()
				return err
			}
			c.mu.Unlock()
			continue
		}
		if degraded {
			t = t.degrade(target.info.MemBudgetBytes)
		}
		lctx, cancel := context.WithDeadline(ctx, t.Deadline())
		c.lastToken++
		l := &lease{
			task: t, worker: target.info.ID, token: c.lastToken,
			expiry: time.Now().Add(c.cfg.LeaseTTL),
			done:   done, ctx: lctx, cancel: cancel, counted: true,
		}
		c.leases[t.JobID] = l
		target.held++
		c.mu.Unlock()

		// Journal-before-visibility: the lease record is durably on disk
		// (the service fsyncs in this callback) before any worker can pull
		// the task, so a coordinator crash never has a running task the
		// journal knows nothing about.
		if ev := c.cfg.Events.LeaseGranted; ev != nil {
			ev(t.JobID, l.worker, l.expiry, false)
		}

		c.mu.Lock()
		if c.leases[t.JobID] == l { // not expired/stopped during the journal write
			target.queue = append(target.queue, l)
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		return nil
	}
}

// Recover reinstalls a lease reconstructed from the journal after a
// coordinator restart: if the worker re-joins and completes before expiry
// the result is accepted; otherwise the expiry scanner fires done with
// ErrLeaseExpired and the job re-dispatches — exactly once either way.
func (c *Coordinator) Recover(t Task, workerID string, expiry time.Time, done DoneFunc) {
	lctx, cancel := context.WithDeadline(context.Background(), t.Deadline())
	l := &lease{
		task: t, worker: workerID, expiry: expiry,
		done: done, ctx: lctx, cancel: cancel, recovered: true,
	}
	c.mu.Lock()
	c.leases[t.JobID] = l
	c.mu.Unlock()
}

// Next blocks until a task is queued for workerID (or ctx is done) and
// returns it with its lease fencing token and the lease-bound execution
// context. The worker must present the token on every Heartbeat and the
// Complete for this attempt. Remote pollers pass a ctx bounded by the
// long-poll window. ErrUnknownWorker means the worker was dropped after a
// lease expiry and must re-join.
func (c *Coordinator) Next(ctx context.Context, workerID string) (Task, uint64, context.Context, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return Task{}, 0, nil, ErrStopped
		}
		m, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return Task{}, 0, nil, ErrUnknownWorker
		}
		m.lastSeen = time.Now()
		for len(m.queue) > 0 {
			l := m.queue[0]
			m.queue = m.queue[1:]
			if c.leases[l.task.JobID] != l {
				continue // expired while queued; its done already fired
			}
			c.mu.Unlock()
			return l.task, l.token, l.ctx, nil
		}
		if err := c.waitLocked(ctx); err != nil {
			c.mu.Unlock()
			return Task{}, 0, nil, err
		}
		c.mu.Unlock()
	}
}

// tokenMatchesLocked reports whether a presented fencing token addresses
// lease l. Recovered leases accept any token from their worker: the grant
// predates the coordinator restart, so the token the surviving worker
// holds is unknowable — and no other holder of that (worker, job) pair
// can exist while the recovered lease does.
func tokenMatchesLocked(l *lease, token uint64) bool {
	return l.token == token || l.recovered
}

// Heartbeat renews the lease for jobID held by workerID under fencing
// token, journaling the new expiry through Events.LeaseGranted before
// returning. ErrLeaseGone tells the worker its lease expired (the job is
// elsewhere — abandon the attempt); ErrUnknownWorker that it must re-join
// first.
func (c *Coordinator) Heartbeat(workerID, jobID string, token uint64) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrStopped
	}
	if m, ok := c.workers[workerID]; ok {
		m.lastSeen = time.Now()
	} else {
		// A recovered lease's worker may heartbeat before re-joining; the
		// lease check below decides, not registry membership.
		if l := c.leases[jobID]; l == nil || l.worker != workerID {
			c.mu.Unlock()
			return ErrUnknownWorker
		}
	}
	l := c.leases[jobID]
	if l == nil || l.worker != workerID || !tokenMatchesLocked(l, token) {
		c.mu.Unlock()
		return ErrLeaseGone
	}
	l.expiry = time.Now().Add(c.cfg.LeaseTTL)
	expiry := l.expiry
	c.mu.Unlock()
	if ev := c.cfg.Events.LeaseGranted; ev != nil {
		ev(jobID, workerID, expiry, true)
	}
	return nil
}

// Complete reports an attempt's outcome. The result is accepted — done
// fired, lease released — only when the lease still exists, is held by
// workerID, and the fencing token matches the grant; anything else is a
// late result, counted and dropped (safe: results are content-addressed,
// the re-dispatched attempt recomputes the identical verdict). The token
// check is what makes this exact: without it, a stale attempt completing
// after its job was re-granted to the same worker would be accepted as
// the current attempt's outcome.
func (c *Coordinator) Complete(workerID, jobID string, token uint64, rep *verify.Report, err error) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	l := c.leases[jobID]
	if l == nil || l.worker != workerID || !tokenMatchesLocked(l, token) {
		c.mu.Unlock()
		if ev := c.cfg.Events.LateResult; ev != nil {
			ev(jobID, workerID)
		}
		return false
	}
	delete(c.leases, jobID)
	if m, ok := c.workers[workerID]; ok {
		m.lastSeen = time.Now()
		if l.counted {
			m.held--
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if l.cancel != nil {
		l.cancel()
	}
	l.done(rep, workerID, err)
	return true
}

// Outstanding returns the number of live leases.
func (c *Coordinator) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// Quiesce blocks until every outstanding lease has resolved or ctx is
// done — the graceful half of coordinator shutdown.
func (c *Coordinator) Quiesce(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.leases) > 0 {
		if err := c.waitLocked(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Stop shuts the coordinator down: the scanner exits, every worker
// blocked in Next is released with ErrStopped, and any lease still
// outstanding fires its done with context.Canceled — the service journals
// those jobs as replayable, which is what makes a coordinator restart
// recover them.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	started := c.started
	remaining := make([]*lease, 0, len(c.leases))
	for _, l := range c.leases {
		remaining = append(remaining, l)
	}
	c.leases = map[string]*lease{}
	c.cond.Broadcast()
	c.mu.Unlock()

	close(c.scanStop)
	if started {
		<-c.scanDone
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].task.JobID < remaining[j].task.JobID })
	for _, l := range remaining {
		if l.cancel != nil {
			l.cancel()
		}
		l.done(nil, l.worker, context.Canceled)
	}
}
