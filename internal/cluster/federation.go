package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// maxFederatedResultBytes caps one fetched result document; service
// results are a few hundred bytes, so 1 MiB is generous headroom.
const maxFederatedResultBytes = 1 << 20

// FederationStats counts federated-cache traffic for the metrics page.
// All methods on Federation update it; read the fields atomically via
// Snapshot on the owning service's side.
type FederationStats struct {
	Hits     uint64 // remote peer returned the result
	Misses   uint64 // remote peer answered, had no result
	Degraded uint64 // peer unreachable or malformed; fell back local
	Offers   uint64 // write-through pushes to the owning peer
}

// Federation is the read-through remote tier of the content-addressed
// result cache: a consistent-hash ring over cache peers, queried on local
// miss and written through on completion. It moves opaque result bytes —
// the service owns the JSON shape — and it degrades rather than fails:
// any peer error is a miss plus a degraded count, never a caller error.
type Federation struct {
	// Self is this node's peer ID; keys this node owns are not fetched
	// remotely (the local cache already answered).
	Self string
	// Client issues peer requests; nil selects a client with a short
	// per-request timeout so a partitioned peer degrades quickly.
	Client *http.Client
	// Blackhole, when set, force-fails the peer request for fault
	// injection (cache-peer partition plans) before any network touch.
	Blackhole func(peer Peer) bool

	mu    sync.Mutex
	ring  *hashRing
	stats FederationStats
}

// NewFederation builds a federation with no peers (everything stays
// local until SetPeers installs membership).
func NewFederation(self string) *Federation {
	return &Federation{
		Self:   self,
		Client: &http.Client{Timeout: 2 * time.Second},
	}
}

// SetPeers rebuilds the ring; the coordinator's PeersChanged event feeds
// this on every membership change.
func (f *Federation) SetPeers(peers []Peer) {
	ring := newHashRing(peers)
	f.mu.Lock()
	f.ring = ring
	f.mu.Unlock()
}

// Peers returns the number of peers currently on the ring.
func (f *Federation) Peers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Len()
}

// Stats returns a snapshot of the traffic counters.
func (f *Federation) Stats() FederationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// owner resolves the owning peer for key, excluding self.
func (f *Federation) owner(key string) (Peer, bool) {
	f.mu.Lock()
	ring := f.ring
	f.mu.Unlock()
	p, ok := ring.Owner(key)
	if !ok || p.ID == f.Self {
		return Peer{}, false
	}
	return p, true
}

func (f *Federation) count(field *uint64) {
	f.mu.Lock()
	*field++
	f.mu.Unlock()
}

func cacheURL(addr, key string) string {
	return addr + "/cluster/v1/cache/" + url.PathEscape(key)
}

// Fetch asks the owning peer for the result bytes under key. It returns
// (nil, false) on miss AND on any peer failure — unreachable, slow,
// malformed — counting the failure as degraded; the caller's local
// fallback (recompute) is always correct, just slower.
func (f *Federation) Fetch(ctx context.Context, key string) ([]byte, bool) {
	peer, ok := f.owner(key)
	if !ok {
		return nil, false
	}
	if f.Blackhole != nil && f.Blackhole(peer) {
		f.count(&f.stats.Degraded)
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(peer.Addr, key), nil)
	if err != nil {
		f.count(&f.stats.Degraded)
		return nil, false
	}
	resp, err := f.client().Do(req)
	if err != nil {
		f.count(&f.stats.Degraded)
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxFederatedResultBytes+1))
		if err != nil || len(data) == 0 || len(data) > maxFederatedResultBytes {
			f.count(&f.stats.Degraded)
			return nil, false
		}
		f.count(&f.stats.Hits)
		return data, true
	case http.StatusNotFound:
		f.count(&f.stats.Misses)
		return nil, false
	default:
		f.count(&f.stats.Degraded)
		return nil, false
	}
}

// Offer writes result bytes through to the owning peer, best-effort: a
// failed offer only costs a future federated hit.
func (f *Federation) Offer(ctx context.Context, key string, data []byte) error {
	peer, ok := f.owner(key)
	if !ok {
		return nil
	}
	if f.Blackhole != nil && f.Blackhole(peer) {
		f.count(&f.stats.Degraded)
		return fmt.Errorf("cluster: cache peer %s blackholed", peer.ID)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, cacheURL(peer.Addr, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client().Do(req)
	if err != nil {
		f.count(&f.stats.Degraded)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		f.count(&f.stats.Degraded)
		return fmt.Errorf("cluster: cache peer %s: %s", peer.ID, resp.Status)
	}
	f.count(&f.stats.Offers)
	return nil
}

func (f *Federation) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}
