package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Peer is one addressable member of the federated result cache.
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// ringVnodes is the number of virtual nodes per peer. With a handful of
// peers, 64 points each keeps the key-space split within a few percent of
// even while membership churn moves only the departed peer's arcs.
const ringVnodes = 64

// hashRing is a consistent-hash ring over cache peers: a canonical-spec
// cache key maps to the peer owning the first ring point clockwise of the
// key's hash. Peer loss moves only the lost peer's arc to its successors,
// so a worker joining or dying invalidates ~1/n of placements rather than
// reshuffling the whole key space.
type hashRing struct {
	points []ringPoint // sorted by hash
	peers  map[string]Peer
}

type ringPoint struct {
	hash uint64
	id   string
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newHashRing builds a ring from the peer set. An empty set yields an
// empty ring; Owner then reports no owner and callers fall back local.
func newHashRing(peers []Peer) *hashRing {
	r := &hashRing{peers: make(map[string]Peer, len(peers))}
	for _, p := range peers {
		if p.ID == "" {
			continue
		}
		r.peers[p.ID] = p
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(p.ID + "#" + strconv.Itoa(v)),
				id:   p.ID,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Owner returns the peer owning key, or false on an empty ring.
func (r *hashRing) Owner(key string) (Peer, bool) {
	if r == nil || len(r.points) == 0 {
		return Peer{}, false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].id], true
}

// Len returns the number of distinct peers on the ring.
func (r *hashRing) Len() int {
	if r == nil {
		return 0
	}
	return len(r.peers)
}
