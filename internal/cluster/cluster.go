// Package cluster is the coordinator/worker distribution layer of the
// verification service: one coordinator owns the job queue and journal
// (internal/service), and a fleet of workers — remote lrserved processes
// registered through a join endpoint, or in-process workers behind the
// same interface — pull verification tasks under time-bounded leases with
// heartbeat renewal.
//
// The design extends the paper's compositional thesis to the deployment
// layer: just as a global verdict is assembled from independently checked
// local pieces, a fleet verdict is assembled from independently executed
// jobs, provided the distribution layer tolerates worker loss without
// losing or corrupting any piece. The mechanisms:
//
//   - Leases, not assignments. A dispatched task is held under a lease
//     that expires unless the worker heartbeats. A worker that dies,
//     hangs, or partitions simply stops renewing; the coordinator expires
//     the lease and the job re-enters the service's retry machinery
//     (exponential backoff, attempt accounting, poison quarantine), so a
//     poison spec cannot ping-pong across the fleet forever.
//   - Exactly-once completion. The first of {completion, expiry} wins;
//     a late result from a blackholed-but-alive worker is counted and
//     dropped. Dropping is safe because results are content-addressed:
//     the re-dispatched attempt recomputes the identical verdict.
//   - Cost-based placement. Tasks are placed by the explicit engine's
//     pre-run table estimate against each worker's advertised memory
//     budget; when no worker fits, the documented fallback is the
//     coordinator's degrade-over-budget mode (one engine worker, a
//     budget-clamped MaxStates).
//   - Transport neutrality. The engine is behind the Runner interface;
//     the service's local execution path and the remote HTTP worker are
//     interchangeable, and verdicts are byte-identical either way.
//
// The package deliberately does not import internal/service: the service
// owns jobs, journal, retries and caching, and drives the coordinator
// through callbacks (Events), so the dependency points one way.
package cluster

import (
	"errors"
	"log"
	"time"

	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/verify"
)

// Dispatch and protocol errors. ErrNoWorker (no registered worker can fit
// the task, and degradation is off) and ErrLeaseExpired (the worker
// stopped renewing) are transient from the service's point of view: the
// retry machinery backs off and re-dispatches, and repeated failures end
// in quarantine. ErrUnknownWorker tells a remote worker to re-join (its
// registration was dropped after a lease expiry); ErrLeaseGone tells it
// the lease it is renewing or completing no longer exists.
var (
	ErrNoWorker      = errors.New("no worker fits the task")
	ErrLeaseExpired  = errors.New("lease expired")
	ErrWorkerPanic   = errors.New("worker panic")
	ErrUnknownWorker = errors.New("unknown worker (re-join required)")
	ErrLeaseGone     = errors.New("lease gone")
	ErrStopped       = errors.New("coordinator stopped")
)

// WorkerInfo is a worker's registration: identity, an optional reachable
// address (remote workers; also their federated-cache endpoint), the
// advertised explicit-table memory budget placement checks estimates
// against (0 = unlimited), and the number of concurrent tasks the worker
// accepts.
type WorkerInfo struct {
	ID string `json:"id"`
	// Addr, when non-empty, is the worker's base URL (remote workers).
	// Workers with an address also serve a shard of the federated result
	// cache.
	Addr string `json:"addr,omitempty"`
	// MemBudgetBytes caps the pre-run explicit-table estimate of tasks
	// placed on this worker (0 = unlimited).
	MemBudgetBytes uint64 `json:"mem_budget_bytes,omitempty"`
	// Slots is the number of tasks the worker runs concurrently (<= 0
	// selects 1).
	Slots int `json:"slots,omitempty"`
}

func (w WorkerInfo) slots() int {
	if w.Slots <= 0 {
		return 1
	}
	return w.Slots
}

// fits reports whether the worker's advertised budget admits the estimate.
func (w WorkerInfo) fits(estimate uint64) bool {
	return w.MemBudgetBytes == 0 || estimate <= w.MemBudgetBytes
}

// Options is the wire-safe projection of verify.Options: exactly the
// verdict-relevant knobs plus the resource clamps, with the process-local
// memo pointers (ltg.CheckOptions.Skeleton/Memo) left behind — each worker
// re-injects its own shared memo state, which never changes a verdict.
type Options struct {
	ConfirmMaxK         int    `json:"confirm_max_k,omitempty"`
	CrossValidateMaxK   int    `json:"cross_validate_max_k,omitempty"`
	BoundedFallbackMaxK int    `json:"bounded_fallback_max_k,omitempty"`
	MaxTArcs            int    `json:"max_tarcs,omitempty"`
	Workers             int    `json:"workers,omitempty"`
	Invariant           bool   `json:"invariant,omitempty"`
	MaxStates           uint64 `json:"max_states,omitempty"`
}

// Verify translates to the engine's option struct.
func (o Options) Verify() verify.Options {
	return verify.Options{
		ConfirmMaxK:         o.ConfirmMaxK,
		CrossValidateMaxK:   o.CrossValidateMaxK,
		BoundedFallbackMaxK: o.BoundedFallbackMaxK,
		Check:               ltg.CheckOptions{MaxTArcs: o.MaxTArcs},
		Workers:             o.Workers,
		Invariant:           o.Invariant,
		MaxStates:           o.MaxStates,
	}
}

// Task is one dispatched verification attempt — everything a worker needs
// to run it, wire-safe for the remote transport.
type Task struct {
	// JobID is the coordinator-side job identity the lease is keyed by.
	JobID string `json:"job_id"`
	// Spec is the canonical dsl.Format rendering of the protocol.
	Spec string `json:"spec"`
	// Options are the resolved engine options (degraded clamps included).
	Options Options `json:"options"`
	// Estimate is the pre-run explicit-table byte estimate placement used.
	Estimate uint64 `json:"estimate,omitempty"`
	// DeadlineUnixMS is the job deadline; workers derive their run context
	// from it.
	DeadlineUnixMS int64 `json:"deadline_unix_ms"`
	// Attempt is the service-side attempt number (1 on the first run),
	// threaded through so fault hooks and logs can key on it.
	Attempt int `json:"attempt"`
	// Degraded marks a task placed under the degrade-over-budget fallback:
	// options already carry the clamps; the flag is informational.
	Degraded bool `json:"degraded,omitempty"`
}

// Deadline returns the task deadline as a time.Time.
func (t Task) Deadline() time.Time {
	return time.UnixMilli(t.DeadlineUnixMS)
}

// degrade applies the over-budget clamps for placement on a worker whose
// budget the estimate exceeds: one engine worker (scratch memory scales
// with workers) and a MaxStates ceiling sized to the budget, so an
// oversized instance fails construction with a clean one-line error
// instead of OOMing the worker.
func (t Task) degrade(budget uint64) Task {
	t.Degraded = true
	t.Options.Workers = 1
	if budget > 0 {
		t.Options.MaxStates = explicit.MaxStatesForBudget(budget)
	}
	return t
}

// Events are the coordinator's callbacks into its owner (the service):
// journaling, metrics, and federated-cache membership all hang off these.
// Nil fields are skipped. Callbacks run outside the coordinator's mutex
// and must not call back into the coordinator synchronously.
type Events struct {
	// LeaseGranted fires on every grant and renewal (renewal=true); the
	// service journals the lease record here, fsynced before the worker
	// can act on it.
	LeaseGranted func(jobID, workerID string, expiry time.Time, renewal bool)
	// LeaseExpired fires when a lease dies unrenewed — the failover signal
	// behind lrserved_cluster_lease_expired_total.
	LeaseExpired func(jobID, workerID string)
	// LateResult fires when a completion arrives for a lease that no
	// longer exists (expired or superseded); the result is dropped.
	LateResult func(jobID, workerID string)
	// WorkerJoined / WorkerLost track registry membership.
	WorkerJoined func(info WorkerInfo)
	WorkerLost   func(id, reason string)
	// PeersChanged fires with the full addressable-peer set whenever it
	// changes; the service rewires the federated cache ring from it.
	PeersChanged func(peers []Peer)
}

// Config tunes a Coordinator. Zero values select the documented defaults.
type Config struct {
	// LeaseTTL is how long a granted or renewed lease lives without a
	// heartbeat (default 10s). It must exceed HeartbeatInterval — the
	// lrserved flag validation enforces this at the CLI boundary.
	LeaseTTL time.Duration
	// HeartbeatInterval is the renewal cadence workers are told to use
	// (default LeaseTTL/4).
	HeartbeatInterval time.Duration
	// DegradeOverBudget places tasks that fit no worker's budget on the
	// largest-budget worker with the degraded clamps instead of failing
	// the dispatch with ErrNoWorker.
	DegradeOverBudget bool
	// Events are the owner callbacks (see Events).
	Events Events
	// Log receives operational warnings (default: discard-free standard
	// logger with a "cluster: " prefix).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.LeaseTTL / 4
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}
