package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Wire protocol, mounted under /cluster/v1/ on the coordinator:
//
//	POST /cluster/v1/join       WorkerInfo            -> joinResponse
//	POST /cluster/v1/poll       pollRequest           -> assignment | 204 | 410
//	POST /cluster/v1/heartbeat  heartbeatRequest      -> 200 | 404 | 410
//	POST /cluster/v1/complete   completeRequest       -> completeResponse
//	POST /cluster/v1/leave      leaveRequest          -> 200
//
// 410 Gone always means "re-join": the worker's registration was dropped
// after a lease expiry. 404 on heartbeat means the specific lease is gone
// (the job has moved on) — abandon the attempt, keep the registration.
// The assignment's fencing token must be echoed on every heartbeat and
// the complete for that attempt; a stale token is a late result.

const (
	maxClusterBodyBytes = 1 << 20
	defaultPollWait     = 5 * time.Second
	maxPollWait         = 30 * time.Second
)

type joinResponse struct {
	LeaseTTLMS  int64 `json:"lease_ttl_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

type pollRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMS   int64  `json:"wait_ms,omitempty"`
}

// assignment is one granted task plus the lease fencing token the worker
// must present on heartbeat and complete.
type assignment struct {
	Task  Task   `json:"task"`
	Token uint64 `json:"token"`
}

type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    string `json:"job_id"`
	Token    uint64 `json:"token"`
}

type leaveRequest struct {
	WorkerID string `json:"worker_id"`
}

// completeRequest carries an attempt outcome. The error is classified on
// the worker side (kind) so the coordinator can reconstruct an error the
// service's finishAttempt classification treats exactly like a local one.
type completeRequest struct {
	WorkerID string      `json:"worker_id"`
	JobID    string      `json:"job_id"`
	Token    uint64      `json:"token"`
	Report   *ReportWire `json:"report,omitempty"`
	Error    string      `json:"error,omitempty"`
	// Kind is one of "", "panic", "canceled", "deadline". Empty with a
	// non-empty Error is a deterministic engine/compile failure.
	Kind string `json:"kind,omitempty"`
}

type completeResponse struct {
	Accepted bool `json:"accepted"`
}

// classifyWireError splits an attempt error into (kind, message) for the
// wire.
func classifyWireError(err error) (kind, msg string) {
	if err == nil {
		return "", ""
	}
	switch {
	case errors.Is(err, ErrWorkerPanic):
		return "panic", err.Error()
	case errors.Is(err, context.Canceled):
		return "canceled", err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline", err.Error()
	default:
		return "", err.Error()
	}
}

// wireError reconstructs the worker-side error so errors.Is classification
// on the coordinator matches in-process execution.
func wireError(kind, msg string) error {
	if msg == "" && kind == "" {
		return nil
	}
	switch kind {
	case "panic":
		return fmt.Errorf("%w: %s", ErrWorkerPanic, msg)
	case "canceled":
		return fmt.Errorf("%s: %w", msg, context.Canceled)
	case "deadline":
		return fmt.Errorf("%s: %w", msg, context.DeadlineExceeded)
	default:
		return errors.New(msg)
	}
}

// Mount registers the coordinator's cluster endpoints on mux.
func Mount(mux *http.ServeMux, c *Coordinator) {
	mux.HandleFunc("POST /cluster/v1/join", func(w http.ResponseWriter, r *http.Request) {
		var info WorkerInfo
		if !decodeClusterJSON(w, r, &info) {
			return
		}
		if err := c.Join(info); err != nil {
			clusterError(w, err)
			return
		}
		cfg := c.cfg
		clusterJSON(w, http.StatusOK, joinResponse{
			LeaseTTLMS:  cfg.LeaseTTL.Milliseconds(),
			HeartbeatMS: cfg.HeartbeatInterval.Milliseconds(),
		})
	})
	mux.HandleFunc("POST /cluster/v1/poll", func(w http.ResponseWriter, r *http.Request) {
		var req pollRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		wait := defaultPollWait
		if req.WaitMS > 0 {
			wait = time.Duration(req.WaitMS) * time.Millisecond
		}
		if wait > maxPollWait {
			wait = maxPollWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		// The lease-bound context stays coordinator-side; a remote worker
		// bounds its run by the task deadline and the lease protocol.
		t, token, _, err := c.Next(ctx, req.WorkerID)
		switch {
		case err == nil:
			clusterJSON(w, http.StatusOK, assignment{Task: t, Token: token})
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			w.WriteHeader(http.StatusNoContent)
		default:
			clusterError(w, err)
		}
	})
	mux.HandleFunc("POST /cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		if err := c.Heartbeat(req.WorkerID, req.JobID, req.Token); err != nil {
			clusterError(w, err)
			return
		}
		clusterJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /cluster/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		accepted := c.Complete(req.WorkerID, req.JobID, req.Token, req.Report.Report(), wireError(req.Kind, req.Error))
		clusterJSON(w, http.StatusOK, completeResponse{Accepted: accepted})
	})
	mux.HandleFunc("POST /cluster/v1/leave", func(w http.ResponseWriter, r *http.Request) {
		var req leaveRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		c.Leave(req.WorkerID)
		clusterJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
}

func decodeClusterJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxClusterBodyBytes+1))
	if err != nil || len(body) > maxClusterBodyBytes {
		http.Error(w, "request body too large or unreadable", http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// Remote is the worker side of the HTTP transport: it joins a
// coordinator, long-polls for tasks, renews leases, and reports
// completions, running tasks through the same Runner seam as in-process
// execution — which is what makes remote and local verdicts
// byte-identical.
type Remote struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	Info        WorkerInfo
	Runner      Runner
	// Before and HeartbeatFilter mirror LocalWorker's fault-injection
	// seams.
	Before          func(t Task) error
	HeartbeatFilter func(workerID, jobID string) bool
	Client          *http.Client
	Log             *log.Logger
	// PollWait bounds each long poll (default 5s).
	PollWait time.Duration

	heartbeatEvery time.Duration
}

// Run joins the coordinator and serves tasks until ctx is done, then
// leaves cleanly. Join failures retry with capped backoff; a 410 from
// any call triggers a re-join.
func (rw *Remote) Run(ctx context.Context) error {
	if rw.Coordinator == "" {
		return errors.New("cluster: remote worker: empty coordinator URL")
	}
	if _, err := url.ParseRequestURI(rw.Coordinator); err != nil {
		return fmt.Errorf("cluster: remote worker: bad coordinator URL: %w", err)
	}
	if err := rw.joinLoop(ctx); err != nil {
		return err
	}
	defer rw.leave()

	var wg sync.WaitGroup
	defer wg.Wait()
	slots := rw.Info.slots()
	errs := make(chan error, slots)
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rw.serve(ctx)
		}()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case err := <-errs:
		return err
	}
}

func (rw *Remote) serve(ctx context.Context) error {
	for {
		a, status, err := rw.poll(ctx)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case status == http.StatusGone:
			if err := rw.joinLoop(ctx); err != nil {
				return err
			}
			continue
		case err != nil:
			rw.logf("poll: %v (retrying)", err)
			if !sleepCtx(ctx, time.Second) {
				return ctx.Err()
			}
			continue
		case status == http.StatusNoContent:
			continue
		}
		rw.execute(ctx, a)
	}
}

// execute runs one assigned task bounded by its deadline, heartbeating
// under the assignment's fencing token until done.
func (rw *Remote) execute(ctx context.Context, a assignment) {
	t := a.Task
	runCtx, cancel := context.WithDeadline(ctx, t.Deadline())
	hbStop := rw.heartbeats(runCtx, cancel, t.JobID, a.Token)
	rep, rerr := runTask(runCtx, rw.Runner, t, rw.Before)
	hbStop()
	cancel()
	kind, msg := classifyWireError(rerr)
	var resp completeResponse
	status, err := rw.post(ctx, "/cluster/v1/complete", completeRequest{
		WorkerID: rw.Info.ID, JobID: t.JobID, Token: a.Token,
		Report: WireFromReport(rep), Error: msg, Kind: kind,
	}, &resp)
	if err != nil {
		rw.logf("complete %s: %v (result lost; lease will expire)", t.JobID, err)
		return
	}
	if status == http.StatusOK && !resp.Accepted {
		rw.logf("complete %s: dropped as late result", t.JobID)
	}
}

// heartbeats renews the task lease on the joined cadence; a 404 (lease
// gone) aborts the run — the job has been re-dispatched elsewhere.
func (rw *Remote) heartbeats(ctx context.Context, abort context.CancelFunc, jobID string, token uint64) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	every := rw.heartbeatEvery
	if every <= 0 {
		every = time.Second
	}
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				if rw.HeartbeatFilter != nil && !rw.HeartbeatFilter(rw.Info.ID, jobID) {
					continue
				}
				status, err := rw.post(ctx, "/cluster/v1/heartbeat", heartbeatRequest{WorkerID: rw.Info.ID, JobID: jobID, Token: token}, nil)
				if err != nil {
					rw.logf("heartbeat %s: %v", jobID, err)
					continue
				}
				if status == http.StatusNotFound || status == http.StatusGone {
					rw.logf("heartbeat %s: lease gone; abandoning attempt", jobID)
					abort()
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// joinLoop joins with capped exponential backoff until success or ctx
// done, and records the coordinator's advertised heartbeat cadence.
func (rw *Remote) joinLoop(ctx context.Context) error {
	delay := 100 * time.Millisecond
	for {
		var resp joinResponse
		status, err := rw.post(ctx, "/cluster/v1/join", rw.Info, &resp)
		if err == nil && status == http.StatusOK {
			if resp.HeartbeatMS > 0 {
				rw.heartbeatEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
			}
			return nil
		}
		if err == nil {
			err = fmt.Errorf("join: HTTP %d", status)
		}
		rw.logf("join: %v (retrying in %s)", err, delay)
		if !sleepCtx(ctx, delay) {
			return ctx.Err()
		}
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
}

func (rw *Remote) leave() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rw.post(ctx, "/cluster/v1/leave", leaveRequest{WorkerID: rw.Info.ID}, nil)
}

// poll long-polls for the next assignment. Returns the HTTP status; 204
// means no task this window.
func (rw *Remote) poll(ctx context.Context) (assignment, int, error) {
	wait := rw.PollWait
	if wait <= 0 {
		wait = defaultPollWait
	}
	var a assignment
	status, err := rw.post(ctx, "/cluster/v1/poll", pollRequest{WorkerID: rw.Info.ID, WaitMS: wait.Milliseconds()}, &a)
	return a, status, err
}

// post issues one JSON round trip. Non-2xx statuses are returned, not
// errors, so callers can branch on protocol statuses (204/404/410).
func (rw *Remote) post(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rw.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := rw.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxClusterBodyBytes))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: bad response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

func (rw *Remote) logf(format string, args ...any) {
	if rw.Log != nil {
		rw.Log.Printf("worker %s: "+format, append([]any{rw.Info.ID}, args...)...)
	}
}

// sleepCtx sleeps for d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
