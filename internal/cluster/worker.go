package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"paramring/internal/verify"
)

// runTask executes one task through r with the worker-side recover
// boundary: a panic in the Before hook or the engine is captured as an
// ErrWorkerPanic-wrapped error instead of killing the worker loop, so
// the coordinator's retry accounting sees it like any other transient
// failure.
func runTask(ctx context.Context, r Runner, t Task, before func(Task) error) (rep *verify.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			rep = nil
			err = fmt.Errorf("%w: job %s attempt %d: %v", ErrWorkerPanic, t.JobID, t.Attempt, p)
		}
	}()
	if before != nil {
		if herr := before(t); herr != nil {
			return nil, herr
		}
	}
	return r.Run(ctx, t)
}

// LocalWorker is an in-process cluster worker: the same pull / heartbeat
// / complete protocol as a remote lrserved worker, minus the HTTP hop.
// The chaos suite runs 3-worker clusters out of these; the service's
// default cluster mode runs its engine workers as LocalWorkers sharing
// one LocalRunner.
type LocalWorker struct {
	Coord  *Coordinator
	Info   WorkerInfo
	Runner Runner
	// Before runs before each task inside the recover boundary — the
	// service wires its BeforeVerify fault hook here so single-node and
	// cluster chaos share injection sites.
	Before func(t Task) error
	// HeartbeatFilter, when set, gates each renewal: returning false
	// swallows the heartbeat (the blackhole fault plan). The worker keeps
	// running the task; only the renewal is lost.
	HeartbeatFilter func(workerID, jobID string) bool

	interval time.Duration
	wg       sync.WaitGroup
}

// Start registers the worker and launches one pull loop per slot.
func (w *LocalWorker) Start() error {
	if err := w.Coord.register(w.Info, false); err != nil {
		return err
	}
	w.interval = w.Coord.cfg.HeartbeatInterval
	for i := 0; i < w.Info.slots(); i++ {
		w.wg.Add(1)
		go w.loop()
	}
	return nil
}

// Wait blocks until every pull loop has exited (they exit when the
// coordinator stops).
func (w *LocalWorker) Wait() {
	w.wg.Wait()
}

func (w *LocalWorker) loop() {
	defer w.wg.Done()
	for {
		t, token, ctx, err := w.Coord.Next(context.Background(), w.Info.ID)
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				// Dropped from the registry (a lease expired on us); local
				// workers are still alive, so re-join and keep serving.
				if w.Coord.register(w.Info, false) != nil {
					return
				}
				continue
			}
			return // ErrStopped
		}
		stop := w.heartbeats(t.JobID, token)
		rep, rerr := runTask(ctx, w.Runner, t, w.Before)
		stop()
		w.Coord.Complete(w.Info.ID, t.JobID, token, rep, rerr)
	}
}

// heartbeats renews the lease for jobID under its fencing token on the
// configured cadence until the returned stop function is called or the
// lease dies.
func (w *LocalWorker) heartbeats(jobID string, token uint64) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if w.HeartbeatFilter != nil && !w.HeartbeatFilter(w.Info.ID, jobID) {
					continue
				}
				err := w.Coord.Heartbeat(w.Info.ID, jobID, token)
				if err != nil && !errors.Is(err, ErrUnknownWorker) {
					// ErrLeaseGone / ErrStopped: nothing left to renew. The
					// run context was canceled at expiry; let the loop's
					// Complete surface as a late result.
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
