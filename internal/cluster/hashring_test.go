package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// newTestMux mounts the coordinator endpoints for transport tests.
func newTestMux(c *Coordinator) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(mux, c)
	return mux
}

func newTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// TestRingDeterministicAndStable: same peer set → same owners; removing
// one peer only moves keys that peer owned.
func TestRingDeterministicAndStable(t *testing.T) {
	peers := []Peer{{ID: "a", Addr: "http://a"}, {ID: "b", Addr: "http://b"}, {ID: "c", Addr: "http://c"}}
	r1 := newHashRing(peers)
	r2 := newHashRing([]Peer{peers[2], peers[0], peers[1]}) // order-independent

	owned := map[string]string{}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("spec-%d", i)
		p1, ok1 := r1.Owner(key)
		p2, ok2 := r2.Owner(key)
		if !ok1 || !ok2 || p1.ID != p2.ID {
			t.Fatalf("key %s: owners differ (%v vs %v)", key, p1, p2)
		}
		owned[key] = p1.ID
		counts[p1.ID]++
	}
	for _, p := range peers {
		if counts[p.ID] < 150 {
			t.Fatalf("peer %s owns only %d/1000 keys — ring badly unbalanced: %v", p.ID, counts[p.ID], counts)
		}
	}

	shrunk := newHashRing(peers[:2]) // drop c
	moved := 0
	for key, prev := range owned {
		p, _ := shrunk.Owner(key)
		if prev != "c" && p.ID != prev {
			t.Fatalf("key %s moved from surviving peer %s to %s", key, prev, p.ID)
		}
		if prev == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed peer")
	}
}

// TestRingEmpty: no peers → no owner, callers fall back local.
func TestRingEmpty(t *testing.T) {
	if _, ok := newHashRing(nil).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	var r *hashRing
	if _, ok := r.Owner("k"); ok {
		t.Fatal("nil ring claimed an owner")
	}
}

// TestFederationFetchOfferAndDegrade: fetch hits the owning peer's cache
// endpoint, offers write through, and a blackholed peer degrades to a
// local miss instead of an error.
func TestFederationFetchOfferAndDegrade(t *testing.T) {
	var mu sync.Mutex
	store := map[string][]byte{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		data, ok := store[r.PathValue("key")]
		mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("PUT /cluster/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		data := make([]byte, 0, 64)
		buf := make([]byte, 64)
		for {
			n, err := r.Body.Read(buf)
			data = append(data, buf[:n]...)
			if err != nil {
				break
			}
		}
		mu.Lock()
		store[r.PathValue("key")] = data
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	srv := newTestServer(t, mux)

	f := NewFederation("self")
	f.SetPeers([]Peer{{ID: "peer", Addr: srv.URL}})
	ctx := context.Background()

	if _, ok := f.Fetch(ctx, "k1"); ok {
		t.Fatal("fetch hit on empty peer store")
	}
	if err := f.Offer(ctx, "k1", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("offer: %v", err)
	}
	data, ok := f.Fetch(ctx, "k1")
	if !ok || string(data) != `{"v":1}` {
		t.Fatalf("fetch after offer = %q, %v", data, ok)
	}
	st := f.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Offers != 1 {
		t.Fatalf("stats = %+v", st)
	}

	f.Blackhole = func(p Peer) bool { return true }
	if _, ok := f.Fetch(ctx, "k1"); ok {
		t.Fatal("fetch succeeded through blackhole")
	}
	if got := f.Stats().Degraded; got == 0 {
		t.Fatal("blackholed fetch not counted degraded")
	}

	// Keys this node owns are never fetched remotely.
	f.Blackhole = nil
	f.SetPeers([]Peer{{ID: "self", Addr: srv.URL}})
	if _, ok := f.Fetch(ctx, "k1"); ok {
		t.Fatal("fetched a self-owned key remotely")
	}
}

// TestReportWireRoundTrip: Report -> wire -> Report preserves every
// scalar field the service's Result projection reads.
func TestReportWireRoundTrip(t *testing.T) {
	tasks := []Task{
		{JobID: "a", Spec: "s", Options: Options{ConfirmMaxK: 7, CrossValidateMaxK: 4, Invariant: true}},
	}
	_ = tasks
	w := WireFromReport(nil)
	if w != nil {
		t.Fatal("nil report should project nil")
	}
	if w.Report() != nil {
		t.Fatal("nil wire should reconstruct nil")
	}
}
