package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paramring/internal/verify"
)

// stubRunner returns a canned report keyed by nothing — coordinator tests
// exercise lease mechanics, not the engine.
type stubRunner struct {
	delay time.Duration
	err   error
	calls atomic.Int64
}

func (s *stubRunner) Run(ctx context.Context, t Task) (*verify.Report, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		timer := time.NewTimer(s.delay)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return &verify.Report{Deadlock: verify.Proved, Livelock: verify.Proved, SelfStabilizing: true}, nil
}

func testTask(id string) Task {
	return Task{JobID: id, Spec: "stub", DeadlineUnixMS: time.Now().Add(time.Minute).UnixMilli(), Attempt: 1}
}

type doneRec struct {
	rep    *verify.Report
	worker string
	err    error
}

func collectDone(ch chan doneRec) DoneFunc {
	return func(rep *verify.Report, workerID string, err error) {
		ch <- doneRec{rep: rep, worker: workerID, err: err}
	}
}

func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c := NewCoordinator(cfg)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// TestDispatchCompletes: a local worker pulls a dispatched task, runs it,
// and the done callback fires exactly once with the report.
func TestDispatchCompletes(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: time.Second})
	w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: "w1"}, Runner: &stubRunner{}}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	rec := <-ch
	if rec.err != nil || rec.rep == nil || rec.worker != "w1" {
		t.Fatalf("done = %+v", rec)
	}
	if got := c.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
}

// TestDispatchBlocksUntilJoin: dispatch with no workers blocks, then
// succeeds when one joins.
func TestDispatchBlocksUntilJoin(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: time.Second})
	ch := make(chan doneRec, 1)
	dispatched := make(chan error, 1)
	go func() {
		dispatched <- c.Dispatch(context.Background(), testTask("j1"), collectDone(ch))
	}()
	select {
	case err := <-dispatched:
		t.Fatalf("dispatch returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: "w1"}, Runner: &stubRunner{}}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := <-dispatched; err != nil {
		t.Fatalf("dispatch after join: %v", err)
	}
	if rec := <-ch; rec.err != nil {
		t.Fatalf("done err = %v", rec.err)
	}
}

// TestDispatchNoWorkerFits: a task too big for every budget fails fast
// with ErrNoWorker when degradation is off, and degrades when on.
func TestDispatchNoWorkerFits(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: time.Second})
	w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: "w1", MemBudgetBytes: 1 << 10}, Runner: &stubRunner{}}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	big := testTask("j1")
	big.Estimate = 1 << 30
	err := c.Dispatch(context.Background(), big, collectDone(make(chan doneRec, 1)))
	if !errors.Is(err, ErrNoWorker) {
		t.Fatalf("err = %v, want ErrNoWorker", err)
	}

	cd := startCoordinator(t, Config{LeaseTTL: time.Second, DegradeOverBudget: true})
	var got atomic.Value
	wd := &LocalWorker{Coord: cd, Info: WorkerInfo{ID: "w1", MemBudgetBytes: 1 << 10}, Runner: &stubRunner{},
		Before: func(t Task) error { got.Store(t); return nil }}
	if err := wd.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan doneRec, 1)
	if err := cd.Dispatch(context.Background(), big, collectDone(ch)); err != nil {
		t.Fatalf("degraded dispatch: %v", err)
	}
	if rec := <-ch; rec.err != nil {
		t.Fatalf("done err = %v", rec.err)
	}
	dt := got.Load().(Task)
	if !dt.Degraded || dt.Options.Workers != 1 || dt.Options.MaxStates == 0 {
		t.Fatalf("degraded task = %+v", dt)
	}
}

// TestPlacementPrefersFit: among two workers, the one whose budget fits
// gets the task; placement is deterministic by load then id.
func TestPlacementPrefersFit(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: time.Second})
	var mu sync.Mutex
	ran := map[string]int{}
	mk := func(id string, budget uint64) *LocalWorker {
		w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: id, MemBudgetBytes: budget}, Runner: &stubRunner{},
			Before: func(t Task) error { mu.Lock(); ran[id]++; mu.Unlock(); return nil }}
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	mk("small", 1<<10)
	mk("large", 1<<30)
	ch := make(chan doneRec, 4)
	for i := 0; i < 4; i++ {
		task := testTask("j" + string(rune('0'+i)))
		task.Estimate = 1 << 20 // only "large" fits
		if err := c.Dispatch(context.Background(), task, collectDone(ch)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if rec := <-ch; rec.err != nil {
			t.Fatalf("done err = %v", rec.err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if ran["small"] != 0 || ran["large"] != 4 {
		t.Fatalf("placement ran = %v, want all on large", ran)
	}
}

// TestLeaseExpiryFiresDone: a worker that blackholes heartbeats and hangs
// loses its lease; done fires with ErrLeaseExpired, the hung run's
// context is canceled, and its eventual completion is a dropped late
// result.
func TestLeaseExpiryFiresDone(t *testing.T) {
	var expired, late atomic.Int64
	c := startCoordinator(t, Config{
		LeaseTTL: 80 * time.Millisecond,
		Events: Events{
			LeaseExpired: func(jobID, workerID string) { expired.Add(1) },
			LateResult:   func(jobID, workerID string) { late.Add(1) },
		},
	})
	completed := make(chan struct{})
	w := &LocalWorker{
		Coord: c, Info: WorkerInfo{ID: "w1"},
		Runner:          &stubRunner{delay: time.Minute},
		HeartbeatFilter: func(workerID, jobID string) bool { return false },
	}
	// Wrap Complete observation: when the hung run's ctx cancels, the loop
	// completes late. Signal through a second dispatched task instead:
	// after expiry the worker loop unblocks and serves again.
	w.Before = nil
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	rec := <-ch
	if !errors.Is(rec.err, ErrLeaseExpired) {
		t.Fatalf("done err = %v, want ErrLeaseExpired", rec.err)
	}
	if expired.Load() != 1 {
		t.Fatalf("expired events = %d, want 1", expired.Load())
	}
	// The canceled run completes late; wait for the late-result count.
	deadline := time.Now().Add(2 * time.Second)
	for late.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if late.Load() == 0 {
		t.Fatal("late result never recorded")
	}
	close(completed)
}

// TestHeartbeatKeepsLeaseAlive: a task longer than the TTL survives when
// heartbeats flow.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: 60 * time.Millisecond, HeartbeatInterval: 15 * time.Millisecond})
	w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: "w1"}, Runner: &stubRunner{delay: 250 * time.Millisecond}}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	if rec := <-ch; rec.err != nil || rec.rep == nil {
		t.Fatalf("done = %+v, want clean report", rec)
	}
}

// TestCompleteExactlyOnce: expiry and completion race; done fires once.
func TestCompleteExactlyOnce(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: 50 * time.Millisecond})
	if err := c.register(WorkerInfo{ID: "w1"}, false); err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	done := func(rep *verify.Report, workerID string, err error) { fired.Add(1) }
	if err := c.Dispatch(context.Background(), testTask("j1"), done); err != nil {
		t.Fatal(err)
	}
	// Pull the task so it is "running", never heartbeat, let it expire,
	// then complete late.
	_, token, _, err := c.Next(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if accepted := c.Complete("w1", "j1", token, &verify.Report{}, nil); accepted {
		t.Fatal("late completion was accepted")
	}
	if fired.Load() != 1 {
		t.Fatalf("done fired %d times, want 1", fired.Load())
	}
}

// TestStaleTokenCompleteDropped pins the fencing-token contract against
// the ABA shape the chaos suite caught: a lease expires, the job is
// re-granted to the SAME worker, and the old attempt's completion arrives
// carrying the stale token. It must be dropped as a late result, never
// accepted as the new attempt's outcome.
func TestStaleTokenCompleteDropped(t *testing.T) {
	var late atomic.Int64
	c := startCoordinator(t, Config{
		LeaseTTL: 50 * time.Millisecond,
		Events:   Events{LateResult: func(jobID, workerID string) { late.Add(1) }},
	})
	if err := c.register(WorkerInfo{ID: "w1", Slots: 2}, false); err != nil {
		t.Fatal(err)
	}
	ch1 := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch1)); err != nil {
		t.Fatal(err)
	}
	_, stale, _, err := c.Next(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	// Never heartbeat: the lease expires and the job goes back out — to
	// the same worker, since it is the only one.
	if rec := <-ch1; !errors.Is(rec.err, ErrLeaseExpired) {
		t.Fatalf("first attempt err = %v, want ErrLeaseExpired", rec.err)
	}
	ch2 := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch2)); err != nil {
		t.Fatal(err)
	}
	_, fresh, _, err := c.Next(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == stale {
		t.Fatalf("re-grant reused token %d", stale)
	}
	if accepted := c.Complete("w1", "j1", stale, nil, context.Canceled); accepted {
		t.Fatal("stale-token completion was accepted as the current attempt")
	}
	if late.Load() != 1 {
		t.Fatalf("late results = %d, want 1", late.Load())
	}
	if accepted := c.Complete("w1", "j1", fresh, &verify.Report{}, nil); !accepted {
		t.Fatal("current-token completion rejected")
	}
	if rec := <-ch2; rec.err != nil || rec.rep == nil {
		t.Fatalf("second attempt done = %+v", rec)
	}
}

// TestWorkerPanicIsCaptured: a panicking Before hook surfaces as
// ErrWorkerPanic through done, and the worker loop survives to run the
// next task.
func TestWorkerPanicIsCaptured(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: time.Second})
	var first atomic.Bool
	w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: "w1"}, Runner: &stubRunner{},
		Before: func(t Task) error {
			if first.CompareAndSwap(false, true) {
				panic("injected")
			}
			return nil
		}}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan doneRec, 2)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	if rec := <-ch; !errors.Is(rec.err, ErrWorkerPanic) {
		t.Fatalf("done err = %v, want ErrWorkerPanic", rec.err)
	}
	if err := c.Dispatch(context.Background(), testTask("j2"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	if rec := <-ch; rec.err != nil {
		t.Fatalf("second task err = %v, want nil", rec.err)
	}
}

// TestStopFiresCanceled: outstanding leases at Stop fire done with
// context.Canceled (the service journals them replayable).
func TestStopFiresCanceled(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Second})
	c.Start()
	w := &LocalWorker{Coord: c, Info: WorkerInfo{ID: "w1"}, Runner: &stubRunner{delay: time.Minute}}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker pull it
	c.Stop()
	if rec := <-ch; !errors.Is(rec.err, context.Canceled) {
		t.Fatalf("done err = %v, want context.Canceled", rec.err)
	}
	w.Wait() // loops exit on ErrStopped
}

// TestRecoverAcceptsRejoinedCompletion: a journal-recovered lease is
// completed by its worker after re-join; no expiry fires.
func TestRecoverAcceptsRejoinedCompletion(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: time.Second})
	ch := make(chan doneRec, 1)
	c.Recover(testTask("j1"), "w1", time.Now().Add(500*time.Millisecond), collectDone(ch))
	if err := c.Join(WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	// The worker's token predates the restart, so any value must match the
	// recovered lease (the pre-crash grant's token is unknowable here).
	if accepted := c.Complete("w1", "j1", 7777, &verify.Report{SelfStabilizing: true}, nil); !accepted {
		t.Fatal("recovered completion rejected")
	}
	if rec := <-ch; rec.err != nil || rec.rep == nil || !rec.rep.SelfStabilizing {
		t.Fatalf("done = %+v", rec)
	}
}

// TestRecoverExpiresOnce: a recovered lease whose worker never returns
// expires exactly once.
func TestRecoverExpiresOnce(t *testing.T) {
	var expired atomic.Int64
	c := startCoordinator(t, Config{
		LeaseTTL: 50 * time.Millisecond,
		Events:   Events{LeaseExpired: func(jobID, workerID string) { expired.Add(1) }},
	})
	ch := make(chan doneRec, 1)
	c.Recover(testTask("j1"), "ghost", time.Now().Add(40*time.Millisecond), collectDone(ch))
	rec := <-ch
	if !errors.Is(rec.err, ErrLeaseExpired) {
		t.Fatalf("done err = %v, want ErrLeaseExpired", rec.err)
	}
	time.Sleep(60 * time.Millisecond)
	if expired.Load() != 1 {
		t.Fatalf("expired %d times, want 1", expired.Load())
	}
}

// TestRemoteWorkerRoundTrip: the full HTTP path — join, poll, heartbeat,
// complete — through an httptest server, producing the same done result
// as the in-process path.
func TestRemoteWorkerRoundTrip(t *testing.T) {
	c := startCoordinator(t, Config{LeaseTTL: 300 * time.Millisecond, HeartbeatInterval: 50 * time.Millisecond})
	mux := newTestMux(c)
	srv := newTestServer(t, mux)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rw := &Remote{
		Coordinator: srv.URL,
		Info:        WorkerInfo{ID: "rw1", Addr: srv.URL},
		Runner:      &stubRunner{delay: 500 * time.Millisecond}, // outlives the TTL: heartbeats must carry it
		PollWait:    100 * time.Millisecond,
	}
	go rw.Run(ctx)

	ch := make(chan doneRec, 1)
	if err := c.Dispatch(context.Background(), testTask("j1"), collectDone(ch)); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-ch:
		if rec.err != nil || rec.rep == nil || rec.worker != "rw1" {
			t.Fatalf("done = %+v", rec)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("remote completion never arrived")
	}
}
