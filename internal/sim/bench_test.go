package sim

import (
	"math/rand"
	"testing"

	"paramring/internal/explicit"
	"paramring/internal/protocols"
)

func BenchmarkRunRandomDaemon(b *testing.B) {
	in := explicit.MustNewInstance(protocols.MatchingA(), 8)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := Run(in, RandomState(in, rng), Random{}, rng, Options{MaxSteps: 100000})
		if !res.Converged && !res.Deadlocked {
			b.Fatal("run neither converged nor deadlocked within budget")
		}
	}
}

func BenchmarkInjectFaults(b *testing.B) {
	in := explicit.MustNewInstance(protocols.AgreementOneSided("t01"), 10, explicit.WithMaxStates(1<<20))
	rng := rand.New(rand.NewSource(2))
	legit := in.Encode([]int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InjectFaults(in, legit, 3, rng)
	}
}

func BenchmarkContiguousRotation(b *testing.B) {
	p := protocols.All()["coloring3"]
	// Use the cyclic candidate protocol, which livelocks: rebuild it here.
	_ = p
	in := explicit.MustNewInstance(protocols.GoudaAcharya(), 6)
	rng := rand.New(rand.NewSource(3))
	// Find a contiguous single-enablement start: "lslsll" has one enabled.
	start := in.Encode([]int{protocols.MatchLeft, protocols.MatchSelf, protocols.MatchLeft,
		protocols.MatchSelf, protocols.MatchLeft, protocols.MatchLeft})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ContiguousRotation(in, start, 10000, rng); err != nil {
			b.Fatal(err)
		}
	}
}
