// Package sim executes protocol instances under explicit schedulers
// (daemons), injects transient faults, and instruments the enablement
// dynamics that Section 5 of the paper reasons about: enablement
// conservation (Lemma 5.5), collisions (Definition 5.4 / Corollary 5.6),
// eventual disabling (Corollary 5.7) and the contiguous-livelock rotation of
// Figure 7.
package sim

import (
	"fmt"
	"math/rand"

	"paramring/internal/explicit"
)

// Scheduler picks which enabled process executes next — the paper's
// nondeterministic interleaving daemon made concrete.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Pick selects one element of enabled (non-empty, sorted ascending).
	Pick(enabled []int, step int, rng *rand.Rand) int
}

// Random is the uniformly random daemon.
type Random struct{}

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// Pick implements Scheduler.
func (Random) Pick(enabled []int, _ int, rng *rand.Rand) int {
	return enabled[rng.Intn(len(enabled))]
}

// RoundRobin cycles process indices 0..K-1, executing a process whenever it
// is enabled at its turn (skipping disabled ones).
type RoundRobin struct{ next int }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (s *RoundRobin) Pick(enabled []int, _ int, _ *rand.Rand) int {
	// Find the first enabled process >= next, wrapping.
	best := enabled[0]
	for _, p := range enabled {
		if p >= s.next {
			best = p
			break
		}
	}
	s.next = best + 1
	return best
}

// Rightmost fires the highest-index enabled process; combined with contiguous
// enablement segments it reproduces the Figure 7 rotation.
type Rightmost struct{}

// Name implements Scheduler.
func (Rightmost) Name() string { return "rightmost" }

// Pick implements Scheduler.
func (Rightmost) Pick(enabled []int, _ int, _ *rand.Rand) int {
	return enabled[len(enabled)-1]
}

// Result summarizes one run.
type Result struct {
	// Converged is true when a state in I was reached within MaxSteps.
	Converged bool
	// Steps is the number of transitions executed before convergence (or
	// MaxSteps when not converged).
	Steps int
	// Trace holds the visited states including start (recorded only when
	// Options.RecordTrace).
	Trace []uint64
	// Procs holds the executing process per step (parallel to Trace[1:]).
	Procs []int
	// EnabledCounts holds |E| before each step plus after the final one.
	EnabledCounts []int
	// Collisions counts steps where the executing process's successor was
	// enabled (Definition 5.4; only meaningful on unidirectional rings).
	Collisions int
	// Deadlocked is true when the run stopped in a deadlock outside I.
	Deadlocked bool
}

// Options tunes Run.
type Options struct {
	// MaxSteps bounds the run (default 10000).
	MaxSteps int
	// RecordTrace retains the full state/process sequence.
	RecordTrace bool
	// StopInI stops as soon as I is reached (default true via NewOptions;
	// zero value means stop-in-I for convenience).
	ContinueInsideI bool
}

// Run executes the instance from start under the scheduler.
func Run(in *explicit.Instance, start uint64, sched Scheduler, rng *rand.Rand, opts Options) Result {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 10000
	}
	res := Result{}
	cur := start
	if opts.RecordTrace {
		res.Trace = append(res.Trace, cur)
	}
	for step := 0; step < opts.MaxSteps; step++ {
		if in.InI(cur) && !opts.ContinueInsideI {
			res.Converged = true
			res.Steps = step
			res.EnabledCounts = append(res.EnabledCounts, len(in.EnabledProcesses(cur)))
			return res
		}
		enabled := in.EnabledProcesses(cur)
		res.EnabledCounts = append(res.EnabledCounts, len(enabled))
		if len(enabled) == 0 {
			res.Steps = step
			res.Deadlocked = !in.InI(cur)
			res.Converged = in.InI(cur)
			return res
		}
		p := sched.Pick(enabled, step, rng)
		// Collision bookkeeping: successor of p is p+1 on a unidirectional
		// ring; a collision is p executing while p+1 is enabled.
		succ := (p + 1) % in.K()
		for _, q := range enabled {
			if q == succ && succ != p {
				res.Collisions++
				break
			}
		}
		var choices []uint64
		for _, t := range in.SuccessorsDetailed(cur) {
			if t.Process == p {
				choices = append(choices, t.To)
			}
		}
		if len(choices) == 0 {
			panic(fmt.Sprintf("sim: scheduler picked disabled process %d", p))
		}
		cur = choices[rng.Intn(len(choices))]
		if opts.RecordTrace {
			res.Trace = append(res.Trace, cur)
		}
		res.Procs = append(res.Procs, p)
	}
	res.Steps = opts.MaxSteps
	res.Converged = in.InI(cur)
	res.EnabledCounts = append(res.EnabledCounts, len(in.EnabledProcesses(cur)))
	return res
}

// RandomState returns a uniformly random global state.
func RandomState(in *explicit.Instance, rng *rand.Rand) uint64 {
	return uint64(rng.Int63n(int64(in.NumStates())))
}

// InjectFaults corrupts `count` distinct randomly chosen process variables
// of the given state with random values — the paper's transient-fault model
// ("any network configuration" is reachable by faults).
func InjectFaults(in *explicit.Instance, id uint64, count int, rng *rand.Rand) uint64 {
	k := in.K()
	if count > k {
		count = k
	}
	vals := in.Decode(id)
	perm := rng.Perm(k)
	d := in.Protocol().Domain()
	for _, r := range perm[:count] {
		vals[r] = rng.Intn(d)
	}
	return in.Encode(vals)
}

// Stats aggregates repeated runs.
type Stats struct {
	Trials        int
	Converged     int
	Deadlocked    int
	MeanSteps     float64
	MaxSteps      int
	MaxEnabled    int
	AnyCollisions bool
}

// ConvergenceStats runs `trials` independent runs from random states.
func ConvergenceStats(in *explicit.Instance, sched func() Scheduler, trials, maxSteps int, rng *rand.Rand) Stats {
	var st Stats
	st.Trials = trials
	totalSteps := 0
	for i := 0; i < trials; i++ {
		res := Run(in, RandomState(in, rng), sched(), rng, Options{MaxSteps: maxSteps})
		if res.Converged {
			st.Converged++
			totalSteps += res.Steps
			if res.Steps > st.MaxSteps {
				st.MaxSteps = res.Steps
			}
		}
		if res.Deadlocked {
			st.Deadlocked++
		}
		for _, e := range res.EnabledCounts {
			if e > st.MaxEnabled {
				st.MaxEnabled = e
			}
		}
		if res.Collisions > 0 {
			st.AnyCollisions = true
		}
	}
	if st.Converged > 0 {
		st.MeanSteps = float64(totalSteps) / float64(st.Converged)
	}
	return st
}
