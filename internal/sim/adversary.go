package sim

import (
	"math/rand"

	"paramring/internal/explicit"
)

// Adversary is a worst-case daemon: among the enabled processes it executes
// the one whose resulting state is farthest from I (by shortest-path
// distance), modeling the strongest scheduling adversary a self-stabilizing
// protocol must beat. It needs a distance oracle precomputed from the
// instance, so it only works on instances small enough for RecoveryRadius.
type Adversary struct {
	in   *explicit.Instance
	dist map[uint64]int
}

// NewAdversary precomputes distance-to-I for every state (backward BFS).
func NewAdversary(in *explicit.Instance) *Adversary {
	a := &Adversary{in: in, dist: make(map[uint64]int, in.NumStates())}
	// Forward distances via repeated relaxation would be slow; reuse the
	// backward BFS already inside RecoveryRadius by reimplementing its core
	// per-state distance here.
	const inf = int(^uint(0) >> 1)
	var frontier []uint64
	for id := uint64(0); id < in.NumStates(); id++ {
		if in.InI(id) {
			a.dist[id] = 0
			frontier = append(frontier, id)
		}
	}
	k := in.K()
	d := in.Protocol().Domain()
	vals := make([]int, k)
	for head := 0; head < len(frontier); head++ {
		id := frontier[head]
		base := a.dist[id]
		// Generate predecessor candidates by varying one position.
		copyVals := vals
		inDecode(in, id, copyVals)
		for r := 0; r < k; r++ {
			orig := copyVals[r]
			for ov := 0; ov < d; ov++ {
				if ov == orig {
					continue
				}
				copyVals[r] = ov
				pred := in.Encode(copyVals)
				copyVals[r] = orig
				if _, seen := a.dist[pred]; seen {
					continue
				}
				if in.HasTransition(pred, id) {
					a.dist[pred] = base + 1
					frontier = append(frontier, pred)
				}
			}
		}
	}
	_ = inf
	return a
}

func inDecode(in *explicit.Instance, id uint64, vals []int) {
	in.DecodeInto(id, vals)
}

// Name implements Scheduler.
func (a *Adversary) Name() string { return "adversary" }

// Pick implements Scheduler. It requires the current state, so Adversary
// tracks it via PickFrom; the Scheduler interface's Pick falls back to the
// last process (rightmost) when state tracking was not wired up.
func (a *Adversary) Pick(enabled []int, _ int, _ *rand.Rand) int {
	return enabled[len(enabled)-1]
}

// PickFrom selects, from the given state, the enabled process whose worst
// nondeterministic outcome is farthest from I.
func (a *Adversary) PickFrom(state uint64, enabled []int) int {
	bestProc := enabled[0]
	bestDist := -1
	for _, p := range enabled {
		for _, t := range a.in.SuccessorsDetailed(state) {
			if t.Process != p {
				continue
			}
			d, ok := a.dist[t.To]
			if !ok {
				d = int(^uint(0) >> 1) // unreachable from I: ultimate win
			}
			if d > bestDist {
				bestDist = d
				bestProc = p
			}
		}
	}
	return bestProc
}

// RunAdversarial drives a run under the adversary, picking the worst
// enabled process AND the worst nondeterministic outcome at every step.
// Returns the step count and whether I was reached within maxSteps.
func RunAdversarial(in *explicit.Instance, start uint64, maxSteps int) (steps int, converged bool) {
	adv := NewAdversary(in)
	return adv.Run(start, maxSteps)
}

// Run drives a single adversarial run from start.
func (a *Adversary) Run(start uint64, maxSteps int) (steps int, converged bool) {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	cur := start
	for step := 0; step < maxSteps; step++ {
		if a.in.InI(cur) {
			return step, true
		}
		enabled := a.in.EnabledProcesses(cur)
		if len(enabled) == 0 {
			return step, a.in.InI(cur)
		}
		p := a.PickFrom(cur, enabled)
		// Worst outcome among p's choices.
		worst := uint64(0)
		worstDist := -1
		for _, t := range a.in.SuccessorsDetailed(cur) {
			if t.Process != p {
				continue
			}
			d, ok := a.dist[t.To]
			if !ok {
				d = int(^uint(0) >> 1)
			}
			if d > worstDist {
				worstDist = d
				worst = t.To
			}
		}
		cur = worst
	}
	return maxSteps, a.in.InI(cur)
}

// WorstCaseSteps returns the maximum adversarial convergence time over all
// states — an upper-bound companion to RecoveryRadius's shortest-path lower
// bound. Returns ok=false if some run fails to converge within maxSteps
// (i.e. the adversary found a non-converging schedule).
func WorstCaseSteps(in *explicit.Instance, maxSteps int) (worst int, ok bool) {
	adv := NewAdversary(in)
	for id := uint64(0); id < in.NumStates(); id++ {
		steps, converged := adv.Run(id, maxSteps)
		if !converged {
			return steps, false
		}
		if steps > worst {
			worst = steps
		}
	}
	return worst, true
}
