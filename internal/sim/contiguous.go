package sim

import (
	"fmt"
	"math/rand"

	"paramring/internal/explicit"
)

// RotationStep records one snapshot of the Figure 7 schematic: the set of
// enabled processes after each transition of a contiguous-livelock run.
type RotationStep struct {
	State   uint64
	Enabled []int
}

// ContiguousRotation drives an instance along the canonical schedule of a
// contiguous livelock (Figure 7): starting from a state whose |E| enabled
// processes form one contiguous ring segment, the rightmost enablement of
// the segment departs and propagates around the ring while the remaining
// |E|-1 enablements stay put; after K-|E| propagations the segment re-forms
// (rotated by one) and the scenario repeats. In between the re-formations
// the enabled set is deliberately NOT contiguous — it is the parked segment
// plus one traveler.
//
// It returns the per-step snapshots and whether the run revisited its
// starting state (closing the livelock) within maxSteps. A run that reaches
// a deadlock, loses an enablement, or whose propagation dies returns
// closed=false with the snapshots so far.
func ContiguousRotation(in *explicit.Instance, start uint64, maxSteps int, rng *rand.Rand) ([]RotationStep, bool, error) {
	if maxSteps <= 0 {
		maxSteps = 1000
	}
	k := in.K()
	cur := start
	enabled := in.EnabledProcesses(cur)
	steps := []RotationStep{{State: cur, Enabled: enabled}}
	if len(enabled) == 0 {
		return steps, false, nil
	}
	if !IsContiguousSegment(k, enabled) {
		return steps, false, fmt.Errorf("sim: initial enabled set %v is not one contiguous segment", enabled)
	}
	fire, err := rightmostOfSegment(k, enabled)
	if err != nil {
		return steps, false, err
	}
	for i := 0; i < maxSteps; i++ {
		var choices []uint64
		for _, t := range in.SuccessorsDetailed(cur) {
			if t.Process == fire {
				choices = append(choices, t.To)
			}
		}
		if len(choices) == 0 {
			return steps, false, fmt.Errorf("sim: process %d expected enabled but is not", fire)
		}
		cur = choices[rng.Intn(len(choices))]
		en := in.EnabledProcesses(cur)
		steps = append(steps, RotationStep{State: cur, Enabled: en})
		if cur == start {
			return steps, true, nil
		}
		if len(en) != len(enabled) {
			// Lost an enablement: not a livelock schedule (Lemma 5.5).
			return steps, false, nil
		}
		next := (fire + 1) % k
		switch {
		case IsContiguousSegment(k, en):
			// Segment re-formed (traveler docked on its left); the new
			// rightmost departs next.
			fire, err = rightmostOfSegment(k, en)
			if err != nil {
				return steps, false, err
			}
		case containsInt(en, next):
			// Keep traveling.
			fire = next
		default:
			// Propagation died mid-ring: not a livelock.
			return steps, false, nil
		}
	}
	return steps, false, nil
}

// rightmostOfSegment finds the unique enabled process whose ring successor
// is disabled. Errors when the enabled set is not one proper segment
// (|E| == K means every execution collides — impossible inside a livelock
// by Corollary 5.6).
func rightmostOfSegment(k int, enabled []int) (int, error) {
	if len(enabled) == k {
		return 0, fmt.Errorf("sim: all %d processes enabled; any execution is a collision", k)
	}
	isEnabled := map[int]bool{}
	for _, p := range enabled {
		isEnabled[p] = true
	}
	candidates := []int{}
	for _, p := range enabled {
		if !isEnabled[(p+1)%k] {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) != 1 {
		return 0, fmt.Errorf("sim: enabled set %v is not one contiguous segment on a ring of %d", enabled, k)
	}
	return candidates[0], nil
}

// IsContiguousSegment reports whether the enabled set forms one contiguous
// arc of the ring (the w1 shape of Lemma 5.12), counting wrap-around.
func IsContiguousSegment(k int, enabled []int) bool {
	if len(enabled) == 0 || len(enabled) == k {
		return true
	}
	isEnabled := map[int]bool{}
	for _, p := range enabled {
		isEnabled[p] = true
	}
	// Exactly one boundary enabled->disabled means one segment.
	boundaries := 0
	for _, p := range enabled {
		if !isEnabled[(p+1)%k] {
			boundaries++
		}
	}
	return boundaries == 1
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
