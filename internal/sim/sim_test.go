package sim

import (
	"math/rand"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protocols"
)

func coloring3Cyclic(t *testing.T) *core.Protocol {
	t.Helper()
	enc := func(a, b int) core.LocalState { return core.Encode(core.View{a, b}, 3) }
	p, err := core.NewFromTable(core.Config{
		Name: "coloring3+cyc", Domain: 3, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0] != v[1] },
	}, []core.TableAction{
		{Name: "t01", Moves: map[core.LocalState][]int{enc(0, 0): {1}}},
		{Name: "t12", Moves: map[core.LocalState][]int{enc(1, 1): {2}}},
		{Name: "t20", Moves: map[core.LocalState][]int{enc(2, 2): {0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunConvergesOneSidedAgreement(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementOneSided("t01"), 6)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		res := Run(in, RandomState(in, rng), Random{}, rng, Options{MaxSteps: 1000})
		if !res.Converged {
			t.Fatalf("trial %d: one-sided agreement must converge", trial)
		}
		if res.Deadlocked {
			t.Fatal("no deadlock expected")
		}
	}
}

func TestRunSchedulers(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementOneSided("t10"), 5)
	rng := rand.New(rand.NewSource(2))
	for _, sched := range []Scheduler{Random{}, &RoundRobin{}, Rightmost{}} {
		res := Run(in, in.Encode([]int{1, 0, 1, 0, 1}), sched, rng, Options{MaxSteps: 500, RecordTrace: true})
		if !res.Converged {
			t.Fatalf("%s: must converge", sched.Name())
		}
		if len(res.Trace) == 0 || len(res.Procs) != len(res.Trace)-1 {
			t.Fatalf("%s: trace bookkeeping wrong", sched.Name())
		}
	}
}

// Lemma 5.5 empirically: on a unidirectional self-disabling instance, |E|
// never increases along any computation.
func TestEnablementNeverIncreasesUnidirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []*core.Protocol{
		protocols.AgreementBoth(),
		protocols.SumNotTwoSolution(),
		coloring3Cyclic(t),
	} {
		in := explicit.MustNewInstance(p, 6)
		for trial := 0; trial < 40; trial++ {
			res := Run(in, RandomState(in, rng), Random{}, rng,
				Options{MaxSteps: 200, ContinueInsideI: true})
			for i := 1; i < len(res.EnabledCounts); i++ {
				if res.EnabledCounts[i] > res.EnabledCounts[i-1] {
					t.Fatalf("%s: |E| increased from %d to %d at step %d",
						p.Name(), res.EnabledCounts[i-1], res.EnabledCounts[i], i)
				}
			}
		}
	}
}

// Corollary 5.6 empirically: a collision strictly decreases |E|. (The paper
// says "by 1", but a collision can drop |E| by 2 — the colliding write can
// simultaneously disable the enabled successor — which only strengthens the
// corollary: collisions cannot occur inside livelocks.)
func TestCollisionsDecreaseEnablement(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 6)
	rng := rand.New(rand.NewSource(4))
	sawCollision := false
	for trial := 0; trial < 60; trial++ {
		cur := RandomState(in, rng)
		for step := 0; step < 100; step++ {
			enabled := in.EnabledProcesses(cur)
			if len(enabled) == 0 {
				break
			}
			p := enabled[rng.Intn(len(enabled))]
			isEnabled := map[int]bool{}
			for _, q := range enabled {
				isEnabled[q] = true
			}
			collision := isEnabled[(p+1)%in.K()]
			var choices []uint64
			for _, tr := range in.SuccessorsDetailed(cur) {
				if tr.Process == p {
					choices = append(choices, tr.To)
				}
			}
			next := choices[rng.Intn(len(choices))]
			after := len(in.EnabledProcesses(next))
			if collision {
				sawCollision = true
				if after >= len(enabled) {
					t.Fatalf("collision by P%d did not decrease |E| (%d -> %d)", p, len(enabled), after)
				}
			}
			cur = next
		}
	}
	if !sawCollision {
		t.Fatal("test never exercised a collision")
	}
}

func TestInjectFaults(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementOneSided("t01"), 6)
	rng := rand.New(rand.NewSource(5))
	legit := in.Encode([]int{1, 1, 1, 1, 1, 1})
	changed := false
	for i := 0; i < 20; i++ {
		faulty := InjectFaults(in, legit, 2, rng)
		if faulty != legit {
			changed = true
			res := Run(in, faulty, Random{}, rng, Options{MaxSteps: 1000})
			if !res.Converged {
				t.Fatal("must recover from 2 faults")
			}
		}
	}
	if !changed {
		t.Fatal("fault injection never changed the state")
	}
	// count > K clamps.
	if InjectFaults(in, legit, 100, rng) >= in.NumStates() {
		t.Fatal("invalid state produced")
	}
}

func TestConvergenceStats(t *testing.T) {
	in := explicit.MustNewInstance(protocols.SumNotTwoSolution(), 5)
	rng := rand.New(rand.NewSource(6))
	st := ConvergenceStats(in, func() Scheduler { return Random{} }, 100, 2000, rng)
	if st.Converged != st.Trials {
		t.Fatalf("sum-not-two solution: %d/%d converged", st.Converged, st.Trials)
	}
	if st.MeanSteps <= 0 && st.MaxSteps > 0 {
		t.Fatal("stats inconsistent")
	}
	if st.Deadlocked != 0 {
		t.Fatal("no deadlocks expected")
	}
}

// Figure 7: the contiguous rotation on a livelocking instance keeps |E|
// constant, keeps the enabled set contiguous, and closes the cycle.
func TestContiguousLivelockRotation(t *testing.T) {
	p := coloring3Cyclic(t)
	in := explicit.MustNewInstance(p, 6)
	rng := rand.New(rand.NewSource(7))
	// c = (0,0,0,0,1,2): P1,P2,P3 enabled (predecessor equal), contiguous.
	start := in.Encode([]int{0, 0, 0, 0, 1, 2})
	enabled := in.EnabledProcesses(start)
	if len(enabled) != 3 || !IsContiguousSegment(6, enabled) {
		t.Fatalf("fixture wrong: enabled = %v", enabled)
	}
	steps, closed, err := ContiguousRotation(in, start, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("contiguous run must close a livelock cycle")
	}
	for i, s := range steps {
		if len(s.Enabled) != 3 {
			t.Fatalf("step %d: |E| = %d, want constant 3 (Lemma 5.5)", i, len(s.Enabled))
		}
		// The segment re-forms exactly every K-|E| = 3 steps (Figure 7);
		// in between it is segment-plus-traveler.
		if i%3 == 0 && !IsContiguousSegment(6, s.Enabled) {
			t.Fatalf("step %d: enabled %v should be contiguous at re-formation points", i, s.Enabled)
		}
		if in.InI(s.State) {
			t.Fatalf("step %d: livelock state inside I", i)
		}
	}
	// Corollary 5.7 empirically: no process is continuously enabled over a
	// full period.
	period := steps[:len(steps)-1]
	for proc := 0; proc < 6; proc++ {
		always := true
		for _, s := range period {
			found := false
			for _, e := range s.Enabled {
				if e == proc {
					found = true
				}
			}
			if !found {
				always = false
				break
			}
		}
		if always {
			t.Fatalf("process %d continuously enabled across the livelock period", proc)
		}
	}
}

func TestContiguousRotationStopsOnDeadlock(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementOneSided("t01"), 4)
	rng := rand.New(rand.NewSource(8))
	start := in.Encode([]int{1, 0, 0, 0}) // single enablement segment
	steps, closed, err := ContiguousRotation(in, start, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if closed {
		t.Fatal("converging protocol should not close a livelock")
	}
	last := steps[len(steps)-1]
	if len(last.Enabled) != 0 {
		t.Fatalf("expected termination in a deadlock, enabled=%v", last.Enabled)
	}
}

func TestIsContiguousSegment(t *testing.T) {
	cases := []struct {
		k       int
		enabled []int
		want    bool
	}{
		{6, []int{1, 2, 3}, true},
		{6, []int{5, 0, 1}, true}, // wraps
		{6, []int{0, 2}, false},
		{6, []int{}, true},
		{4, []int{0, 1, 2, 3}, true},
	}
	for _, tc := range cases {
		if got := IsContiguousSegment(tc.k, tc.enabled); got != tc.want {
			t.Fatalf("IsContiguousSegment(%d, %v) = %v, want %v", tc.k, tc.enabled, got, tc.want)
		}
	}
}

func TestRoundRobinVisitsAllProcesses(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	rng := rand.New(rand.NewSource(9))
	res := Run(in, in.Encode([]int{1, 0, 1, 0}), &RoundRobin{}, rng,
		Options{MaxSteps: 40, ContinueInsideI: true, RecordTrace: true})
	seen := map[int]bool{}
	for _, p := range res.Procs {
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatalf("round robin visited only %v", seen)
	}
}

// The adversarial daemon cannot defeat a strongly convergent protocol, and
// its worst-case step count dominates the shortest-path recovery radius.
func TestAdversaryCannotDefeatStabilizingProtocol(t *testing.T) {
	in := explicit.MustNewInstance(protocols.SumNotTwoSolution(), 5)
	worst, ok := WorstCaseSteps(in, 10000)
	if !ok {
		t.Fatal("adversary defeated a strongly convergent protocol (impossible)")
	}
	radius, _, all := in.RecoveryRadius()
	if !all {
		t.Fatal("all states must reach I")
	}
	if worst < radius {
		t.Fatalf("adversarial worst case %d below shortest-path radius %d", worst, radius)
	}
	t.Logf("shortest-path radius %d, adversarial worst case %d", radius, worst)
}

// Against agreement-both the adversary finds the livelock: some start never
// converges.
func TestAdversaryFindsLivelock(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementBoth(), 4)
	_, ok := WorstCaseSteps(in, 500)
	if ok {
		t.Fatal("adversary must be able to keep agreement-both out of I forever")
	}
}

func TestAdversaryRunFromLegitimate(t *testing.T) {
	in := explicit.MustNewInstance(protocols.AgreementOneSided("t01"), 4)
	adv := NewAdversary(in)
	steps, converged := adv.Run(in.Encode([]int{1, 1, 1, 1}), 100)
	if !converged || steps != 0 {
		t.Fatalf("legitimate start: steps=%d converged=%v", steps, converged)
	}
}
