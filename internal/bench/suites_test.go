package bench

import (
	"strings"
	"testing"
)

// The suite smoke tests run every grid at one iteration per metric — they
// pin the metric names (the identifiers baselines match on) and the
// invariant extras, not the timings.

func TestVerifySuiteSmoke(t *testing.T) {
	s, err := VerifySuite(Config{Smoke: true, MaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Suite != "verify" || s.Schema != SchemaVersion {
		t.Fatalf("snapshot header: %+v", s)
	}
	for _, name := range []string{
		"speccache/compile/cold",
		"speccache/compile/hit",
		"verify/check/sum-not-two",
		"table1/local/sum-not-two",
		"table1/global/seq/sum-not-two/K=6",
		"table1/global/par/sum-not-two/K=6",
		"table1/local/matchingA",
		"table1/global/seq/matchingA/K=6",
	} {
		if _, ok := s.Metric(name); !ok {
			t.Errorf("verify suite missing metric %q", name)
		}
	}
	if m, _ := s.Metric("table1/global/seq/sum-not-two/K=6"); m.Extra["states"] != 729 {
		t.Errorf("K=6 on domain 3 must report 3^6 states, got %v", m.Extra["states"])
	}
	if m, _ := s.Metric("verify/check/sum-not-two"); m.Extra["peak_table_bytes"] <= 0 {
		t.Errorf("verify/check must carry the admission-control estimate, got %v", m.Extra)
	}
	// MaxK caps the grid.
	for _, m := range s.Metrics {
		if strings.Contains(m.Name, "K=8") {
			t.Errorf("MaxK 6 leaked a K=8 metric: %s", m.Name)
		}
	}
}

func TestSynthSuiteSmoke(t *testing.T) {
	s, err := SynthSuite(Config{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"synthesis/agreement/flat",
		"synthesis/agreement/seq",
		"synthesis/agreement/par",
		"synthesis/coloring4/par",
		"table4/global/seq/sum-not-two/K=4",
		"table4/global/par/coloring3/K=3",
	} {
		if _, ok := s.Metric(name); !ok {
			t.Errorf("synth suite missing metric %q", name)
		}
	}
	// The engine modes enumerate the same space: the candidate counter is
	// mode-independent (the determinism contract the benchmarks ride on).
	flat, _ := s.Metric("synthesis/sum-not-two/flat")
	seq, _ := s.Metric("synthesis/sum-not-two/seq")
	if flat.Extra["candidates"] != seq.Extra["candidates"] || flat.Extra["candidates"] <= 0 {
		t.Errorf("candidates differ across modes: flat %v seq %v", flat.Extra, seq.Extra)
	}
}

func TestRunRejectsUnknownSuite(t *testing.T) {
	if _, err := Run("nope", Config{Smoke: true}); err == nil {
		t.Fatal("unknown suite must error")
	}
}
