// Package bench is the deterministic benchmark harness behind cmd/lrbench.
//
// It re-measures the paper's cost-shaped claims — the Table-1 local-vs-
// global sweep, the Table-4 synthesis grid, and the service layer's
// compiled-spec cache — with a self-contained measure loop (no testing.B,
// so a plain binary controls the per-metric time budget), and records the
// results as a canonical JSON Snapshot (BENCH_verify.json /
// BENCH_synth.json at the repo root). Compare diffs two snapshots and
// gates on the geometric-mean ns/op ratio, which is how CI turns the
// committed baselines into a regression gate: see PERFORMANCE.md for the
// workflow and the thresholds' rationale.
//
// The grids are fixed and the metric names are stable identifiers —
// comparisons only ever match by exact name, so renaming a metric
// deliberately detaches it from its baseline history.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion identifies the snapshot JSON layout. Compare refuses
// mismatched schemas rather than guessing at field meanings.
const SchemaVersion = 1

// Result is one measured metric: averages over the final timing run.
type Result struct {
	// N is the iteration count of the final timing run.
	N int `json:"n"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes per
	// iteration (whole-process deltas, like testing.B's -benchmem).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Measure times fn until the timing run lasts at least benchtime,
// calibrating the iteration count the same way testing.B does: run once,
// extrapolate, grow by at most 100x per round. fn must perform exactly n
// iterations of the operation. A benchtime <= 0 means a single iteration
// (the CI smoke setting).
func Measure(benchtime time.Duration, fn func(n int)) Result {
	if benchtime <= 0 {
		return run(1, fn)
	}
	n := 1
	for {
		r := run(n, fn)
		elapsed := time.Duration(r.NsPerOp * float64(r.N))
		if elapsed >= benchtime || n >= 1e9 {
			return r
		}
		// Predict the iteration count that lands ~1.2x past the budget,
		// bounded to at least +1 and at most 100x per round so one noisy
		// first run cannot overshoot by orders of magnitude.
		next := n * 100
		if r.NsPerOp > 0 {
			predicted := int(1.2 * float64(benchtime) / r.NsPerOp)
			if predicted < next {
				next = predicted
			}
		}
		if next <= n {
			next = n + 1
		}
		n = next
	}
}

// run times exactly n iterations, with allocation deltas read from the
// runtime around the run (GC first, so the previous round's garbage is
// not charged to this one).
func run(n int, fn func(n int)) Result {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn(n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		N:           n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}
}

// Metric is one named row of a Snapshot.
type Metric struct {
	// Name is the stable identifier comparisons match on, e.g.
	// "table1/global/seq/sum-not-two/K=10".
	Name string `json:"name"`
	Result
	// Extra holds derived gauges that travel with the metric but do not
	// gate comparisons: states/sec, resident table bytes, candidate and
	// pruning counts. Keys are sorted in the JSON encoding, so snapshots
	// are byte-stable for identical measurements.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is one lrbench run: the environment it measured in plus the
// measured grid, in grid order.
type Snapshot struct {
	Schema    int      `json:"schema"`
	Suite     string   `json:"suite"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Benchtime string   `json:"benchtime"`
	Metrics   []Metric `json:"metrics"`
}

// NewSnapshot returns an empty snapshot stamped with the current
// environment.
func NewSnapshot(suite string, benchtime time.Duration) *Snapshot {
	return &Snapshot{
		Schema:    SchemaVersion,
		Suite:     suite,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime.String(),
	}
}

// Add appends a measured metric. extra may be nil.
func (s *Snapshot) Add(name string, r Result, extra map[string]float64) {
	s.Metrics = append(s.Metrics, Metric{Name: name, Result: r, Extra: extra})
}

// Metric returns the named metric and whether it exists.
func (s *Snapshot) Metric(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteFile writes the snapshot as indented JSON with a trailing newline
// (so the committed baselines diff cleanly).
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshot loads and validates a snapshot file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: snapshot schema %d, this lrbench reads %d", path, s.Schema, SchemaVersion)
	}
	return &s, nil
}
