package bench

import (
	"math"
	"strings"
	"testing"
)

func snap(suite string, ns map[string]float64) *Snapshot {
	s := NewSnapshot(suite, 0)
	// Insertion order is irrelevant to Compare; fix it for readability.
	for _, name := range []string{"a", "b", "c", "d"} {
		if v, ok := ns[name]; ok {
			s.Add(name, Result{N: 1, NsPerOp: v}, nil)
		}
	}
	return s
}

func TestCompareExactlyAtThresholdPasses(t *testing.T) {
	// Every metric exactly 10% slower: geomean is exactly 1.10, and the
	// gate is strict (> 1+threshold), so this must still pass.
	old := snap("verify", map[string]float64{"a": 1000, "b": 2000})
	cur := snap("verify", map[string]float64{"a": 1100, "b": 2200})
	c, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Geomean-1.10) > 1e-9 {
		t.Fatalf("geomean = %v, want 1.10", c.Geomean)
	}
	if c.Regressed {
		t.Fatal("exactly 10% must not trip a 10% gate (strict >)")
	}
}

func TestCompareJustOverThresholdFails(t *testing.T) {
	old := snap("verify", map[string]float64{"a": 1000, "b": 2000})
	cur := snap("verify", map[string]float64{"a": 1101, "b": 2202})
	c, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed {
		t.Fatalf("geomean %v must trip a 10%% gate", c.Geomean)
	}
}

func TestCompareGeomeanAveragesAcrossMetrics(t *testing.T) {
	// One metric 2x slower, one 2x faster: geomean 1.0, no regression —
	// the gate reacts to the grid-wide mean, not a single noisy row.
	old := snap("verify", map[string]float64{"a": 1000, "b": 1000})
	cur := snap("verify", map[string]float64{"a": 2000, "b": 500})
	c, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Geomean-1.0) > 1e-9 || c.Regressed {
		t.Fatalf("geomean = %v regressed = %v, want 1.0 / false", c.Geomean, c.Regressed)
	}
	// Rows are sorted worst-first.
	if c.Rows[0].Name != "a" || c.Rows[0].Ratio != 2.0 {
		t.Fatalf("rows not sorted by descending ratio: %+v", c.Rows)
	}
}

// A metric present in only one snapshot must not read as a slowdown, but it
// must break the gate: the grids diverged, so the geomean no longer measures
// what the committed baseline describes. Compare records a diagnostic per
// mismatch and Format prints them as "error:" lines.
func TestCompareMissingMetricBreaksGate(t *testing.T) {
	old := snap("verify", map[string]float64{"a": 1000, "b": 1000})
	cur := snap("verify", map[string]float64{"a": 1000, "c": 1000})
	c, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed {
		t.Fatal("a renamed metric must not read as a slowdown")
	}
	if len(c.MissingInNew) != 1 || c.MissingInNew[0] != "b" {
		t.Fatalf("MissingInNew = %v, want [b]", c.MissingInNew)
	}
	if len(c.MissingInOld) != 1 || c.MissingInOld[0] != "c" {
		t.Fatalf("MissingInOld = %v, want [c]", c.MissingInOld)
	}
	if len(c.Broken) != 2 {
		t.Fatalf("Broken = %v, want one diagnostic per mismatched metric", c.Broken)
	}
	for _, msg := range c.Broken {
		if !strings.Contains(msg, "metric ") || !strings.Contains(msg, "missing") {
			t.Fatalf("diagnostic %q does not name the metric and the problem", msg)
		}
	}
	var b strings.Builder
	c.Format(&b)
	out := b.String()
	if !strings.Contains(out, "error: metric b") || !strings.Contains(out, "error: metric c") {
		t.Fatalf("Format output missing per-metric error lines:\n%s", out)
	}
	if !strings.Contains(out, "BROKEN") || !strings.Contains(out, "geomean") {
		t.Fatalf("Format verdict must flag the broken gate:\n%s", out)
	}
}

// A clean comparison must carry no Broken diagnostics and no error lines.
func TestCompareCleanHasNoBrokenDiagnostics(t *testing.T) {
	old := snap("verify", map[string]float64{"a": 1000, "b": 2000})
	cur := snap("verify", map[string]float64{"a": 1100, "b": 2200})
	c, err := Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Broken) != 0 {
		t.Fatalf("Broken = %v on a clean comparison", c.Broken)
	}
	var b strings.Builder
	c.Format(&b)
	if out := b.String(); strings.Contains(out, "error:") || strings.Contains(out, "BROKEN") {
		t.Fatalf("clean comparison printed error lines:\n%s", out)
	}
}

func TestCompareEmptyBaselineErrors(t *testing.T) {
	old := NewSnapshot("verify", 0)
	cur := snap("verify", map[string]float64{"a": 1000})
	if _, err := Compare(old, cur, 0.10); err == nil {
		t.Fatal("empty baseline must be an error, not a pass")
	}
}

func TestCompareDisjointMetricsErrors(t *testing.T) {
	old := snap("verify", map[string]float64{"a": 1000})
	cur := snap("verify", map[string]float64{"b": 1000})
	if _, err := Compare(old, cur, 0.10); err == nil {
		t.Fatal("an empty intersection gates on nothing and must error")
	}
}

func TestCompareSuiteMismatchErrors(t *testing.T) {
	old := snap("verify", map[string]float64{"a": 1000})
	cur := snap("synth", map[string]float64{"a": 1000})
	if _, err := Compare(old, cur, 0.10); err == nil {
		t.Fatal("comparing different suites must error")
	}
}

// A zero or negative ns/op is a broken measurement: it must stay out of the
// geomean (no 0x or infinite ratios skewing the gate) and must surface as a
// Broken diagnostic naming the metric and both values.
func TestCompareNonPositiveTimingBreaksGate(t *testing.T) {
	old := snap("verify", map[string]float64{"a": 1000, "b": 0})
	cur := snap("verify", map[string]float64{"a": 1000, "b": 1000})
	c, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 1 || c.Rows[0].Name != "a" {
		t.Fatalf("zero-ns baseline row must be excluded from the geomean: %+v", c.Rows)
	}
	if c.Regressed {
		t.Fatal("a broken measurement must not skew the geomean into a regression")
	}
	if len(c.Broken) != 1 || !strings.Contains(c.Broken[0], "non-positive ns/op") ||
		!strings.Contains(c.Broken[0], "metric b") {
		t.Fatalf("Broken = %v, want one non-positive-ns/op diagnostic naming b", c.Broken)
	}
}

// Filter keeps exactly the prefix-matched metrics, so a -group compare can
// gate one family of rows against a baseline whose wider grid diverged.
func TestSnapshotFilterByPrefix(t *testing.T) {
	s := NewSnapshot("verify", 0)
	s.Add("table1/global/seq/K=4", Result{N: 1, NsPerOp: 100}, nil)
	s.Add("table1/global/par/K=4", Result{N: 1, NsPerOp: 90}, nil)
	s.Add("scanloop/decode/K=10", Result{N: 1, NsPerOp: 50}, nil)
	got := s.Filter("table1/global")
	if len(got.Metrics) != 2 {
		t.Fatalf("Filter kept %d metrics, want 2: %+v", len(got.Metrics), got.Metrics)
	}
	for _, m := range got.Metrics {
		if !strings.HasPrefix(m.Name, "table1/global") {
			t.Fatalf("Filter leaked metric %q", m.Name)
		}
	}
	if got.Suite != s.Suite {
		t.Fatalf("Filter dropped the suite name: %q", got.Suite)
	}
	if len(s.Metrics) != 3 {
		t.Fatalf("Filter mutated the source snapshot: %d metrics", len(s.Metrics))
	}
	if empty := s.Filter("nope/"); len(empty.Metrics) != 0 {
		t.Fatalf("unmatched prefix kept %d metrics", len(empty.Metrics))
	}
}

// Filtering both sides to a shared group must make rows the baseline lacks
// invisible to the gate — the exact situation a frozen pre-optimization
// baseline is in after the PR adds new grid rows.
func TestCompareFilteredGroupIgnoresAddedRows(t *testing.T) {
	old := NewSnapshot("verify", 0)
	old.Add("table1/global/seq/K=4", Result{N: 1, NsPerOp: 1000}, nil)
	cur := NewSnapshot("verify", 0)
	cur.Add("table1/global/seq/K=4", Result{N: 1, NsPerOp: 500}, nil)
	cur.Add("scanloop/decode/K=10", Result{N: 1, NsPerOp: 50}, nil) // new row
	c, err := Compare(old.Filter("table1/"), cur.Filter("table1/"), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Broken) != 0 {
		t.Fatalf("group-filtered comparison broken: %v", c.Broken)
	}
	if math.Abs(c.Speedup()-2.0) > 1e-9 {
		t.Fatalf("Speedup = %v, want 2.0", c.Speedup())
	}
}

// An allocs/op count that grows past the warn bounds earns a warning line;
// small absolute blips and improvements stay quiet, and warnings never
// affect the gated verdict.
func TestCompareAllocWarnings(t *testing.T) {
	add := func(s *Snapshot, name string, ns, allocs float64) {
		s.Add(name, Result{N: 1, NsPerOp: ns, AllocsPerOp: allocs}, nil)
	}
	old := NewSnapshot("verify", 0)
	add(old, "a", 1000, 2)   // regresses to per-state allocation
	add(old, "b", 1000, 3)   // tiny blip, under the absolute slack
	add(old, "c", 1000, 100) // improves
	cur := NewSnapshot("verify", 0)
	add(cur, "a", 1000, 400)
	add(cur, "b", 1000, 5)
	add(cur, "c", 1000, 10)
	c, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.AllocWarnings) != 1 || !strings.Contains(c.AllocWarnings[0], "metric a") {
		t.Fatalf("AllocWarnings = %v, want exactly one line naming a", c.AllocWarnings)
	}
	if c.Regressed || len(c.Broken) != 0 {
		t.Fatalf("alloc warnings must not gate: regressed=%v broken=%v", c.Regressed, c.Broken)
	}
	var b strings.Builder
	c.Format(&b)
	if out := b.String(); !strings.Contains(out, "warning: metric a: allocs/op 2 -> 400") {
		t.Fatalf("Format must print the alloc warning line:\n%s", out)
	}
}
