package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// DefaultThreshold is the regression gate: a geometric-mean slowdown
// strictly greater than this fraction fails the comparison. 10% is wide
// enough that scheduler jitter on one metric cannot trip it (the geomean
// averages log-ratios across the whole grid) while a real hot-path
// regression — which typically moves several related metrics together —
// still lands well past it. CI uses a wider value to absorb
// runner-hardware variance; see PERFORMANCE.md.
const DefaultThreshold = 0.10

// Row is one metric's old-vs-new comparison.
type Row struct {
	Name  string  `json:"name"`
	OldNs float64 `json:"old_ns_per_op"`
	NewNs float64 `json:"new_ns_per_op"`
	// Ratio is NewNs / OldNs: > 1 is a slowdown.
	Ratio float64 `json:"ratio"`
}

// allocWarnRatio and allocWarnSlack bound when an allocs/op increase earns a
// warning line: the new count must exceed the old by both the ratio and the
// absolute slack, so a 0->2 blip on a microsecond metric stays quiet while a
// scan loop that silently starts allocating per state does not.
const (
	allocWarnRatio = 1.25
	allocWarnSlack = 8.0
)

// Filter returns a copy of the snapshot keeping only the metrics whose name
// starts with prefix — the grouping unit of the -group/-min-speedup compare
// mode, which gates one named family of rows (e.g. "table1/global") without
// requiring the rest of the grid to match the (possibly older) baseline.
func (s *Snapshot) Filter(prefix string) *Snapshot {
	out := *s
	out.Metrics = nil
	for _, m := range s.Metrics {
		if strings.HasPrefix(m.Name, prefix) {
			out.Metrics = append(out.Metrics, m)
		}
	}
	return &out
}

// Comparison is the outcome of Compare.
type Comparison struct {
	Threshold float64 `json:"threshold"`
	// Rows covers the metrics present in both snapshots with positive
	// timings, sorted by descending ratio (worst regression first).
	Rows []Row `json:"rows"`
	// Geomean is the geometric mean of the row ratios — the gated figure.
	Geomean float64 `json:"geomean"`
	// Regressed reports Geomean > 1 + Threshold (strictly: a geomean of
	// exactly 1 + Threshold passes).
	Regressed bool `json:"regressed"`
	// MissingInNew lists baseline metrics absent from (or not comparable
	// in) the new snapshot and MissingInOld the converse. Either means the
	// grids diverged — a renamed benchmark, a dropped case, or a broken
	// measurement — so the geomean would silently gate on a different
	// metric set than the committed baseline describes. Both are failures:
	// Broken carries the diagnostics, and lrbench exits 2.
	MissingInNew []string `json:"missing_in_new,omitempty"`
	MissingInOld []string `json:"missing_in_old,omitempty"`
	// Broken holds one human-readable diagnostic per mismatched or
	// non-positive metric. Non-empty Broken means the comparison is
	// unusable as a gate, independent of Regressed.
	Broken []string `json:"broken,omitempty"`
	// AllocWarnings holds one line per metric whose allocs/op grew past
	// allocWarnRatio x baseline (plus allocWarnSlack absolute). Warnings
	// only — allocation counts are deterministic but schema changes move
	// them legitimately — yet a zero-alloc scan loop that regresses to
	// per-state allocation shows up here before it shows up in ns/op.
	AllocWarnings []string `json:"alloc_warnings,omitempty"`
}

// Speedup returns the geometric-mean speedup of new over baseline,
// 1/Geomean: 2.0 means the measured rows take half the time they used to.
// For rows whose work is a fixed state count (the table1 and scanloop
// grids), this is exactly the geomean states/sec improvement.
func (c *Comparison) Speedup() float64 { return 1 / c.Geomean }

// Compare diffs two snapshots metric-by-metric. It errors when the
// baseline is empty, the suites differ, or no metric name appears in both
// snapshots — each of those means the comparison would gate on nothing.
// Grid mismatches that still leave comparable rows — a metric missing from
// either side, or a zero/negative ns/op — do not error (the table is still
// worth printing) but are recorded in Broken, which callers must treat as
// a failed gate.
func Compare(old, new *Snapshot, threshold float64) (*Comparison, error) {
	if len(old.Metrics) == 0 {
		return nil, fmt.Errorf("baseline snapshot has no metrics")
	}
	if old.Suite != new.Suite {
		return nil, fmt.Errorf("suite mismatch: baseline %q vs new %q", old.Suite, new.Suite)
	}
	c := &Comparison{Threshold: threshold}
	newByName := make(map[string]Metric, len(new.Metrics))
	for _, m := range new.Metrics {
		newByName[m.Name] = m
	}
	oldNames := make(map[string]bool, len(old.Metrics))
	logSum, logN := 0.0, 0
	for _, om := range old.Metrics {
		oldNames[om.Name] = true
		nm, ok := newByName[om.Name]
		if !ok {
			c.MissingInNew = append(c.MissingInNew, om.Name)
			c.Broken = append(c.Broken,
				fmt.Sprintf("metric %s: in baseline but missing from new snapshot", om.Name))
			continue
		}
		if om.NsPerOp <= 0 || nm.NsPerOp <= 0 {
			// A non-positive timing is a broken measurement, not a 0x or
			// infinite ratio; keep it out of the geomean and flag it.
			c.MissingInNew = append(c.MissingInNew, om.Name)
			c.Broken = append(c.Broken,
				fmt.Sprintf("metric %s: non-positive ns/op (baseline %g, new %g)",
					om.Name, om.NsPerOp, nm.NsPerOp))
			continue
		}
		ratio := nm.NsPerOp / om.NsPerOp
		c.Rows = append(c.Rows, Row{Name: om.Name, OldNs: om.NsPerOp, NewNs: nm.NsPerOp, Ratio: ratio})
		logSum += math.Log(ratio)
		logN++
		if nm.AllocsPerOp > om.AllocsPerOp*allocWarnRatio+allocWarnSlack {
			c.AllocWarnings = append(c.AllocWarnings,
				fmt.Sprintf("metric %s: allocs/op %.0f -> %.0f", om.Name, om.AllocsPerOp, nm.AllocsPerOp))
		}
	}
	for _, nm := range new.Metrics {
		if !oldNames[nm.Name] {
			c.MissingInOld = append(c.MissingInOld, nm.Name)
			c.Broken = append(c.Broken,
				fmt.Sprintf("metric %s: in new snapshot but missing from baseline", nm.Name))
		}
	}
	if logN == 0 {
		return nil, fmt.Errorf("no metric appears in both snapshots (baseline has %d, new has %d)",
			len(old.Metrics), len(new.Metrics))
	}
	sort.SliceStable(c.Rows, func(i, j int) bool { return c.Rows[i].Ratio > c.Rows[j].Ratio })
	c.Geomean = math.Exp(logSum / float64(logN))
	c.Regressed = c.Geomean > 1+threshold
	return c, nil
}

// Format writes the comparison as a human-readable table: worst ratios
// first, then one error line per broken metric, then the gated verdict
// line.
func (c *Comparison) Format(w io.Writer) {
	fmt.Fprintf(w, "%-48s %14s %14s %8s\n", "metric", "old ns/op", "new ns/op", "ratio")
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%-48s %14.0f %14.0f %8.3f\n", r.Name, r.OldNs, r.NewNs, r.Ratio)
	}
	for _, msg := range c.AllocWarnings {
		fmt.Fprintf(w, "warning: %s\n", msg)
	}
	for _, msg := range c.Broken {
		fmt.Fprintf(w, "error: %s\n", msg)
	}
	verdict := "ok"
	if c.Regressed {
		verdict = "REGRESSED"
	}
	if len(c.Broken) > 0 {
		verdict += " (gate BROKEN: metric grids diverged)"
	}
	fmt.Fprintf(w, "geomean %.4f (threshold %.2f): %s\n", c.Geomean, 1+c.Threshold, verdict)
}
