package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/invariant"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/rcg"
	"paramring/internal/synthesis"
	"paramring/internal/verify"
)

// Config tunes a suite run.
type Config struct {
	// Benchtime is the per-metric time budget (default 100ms; <= 0 after
	// defaulting means single-iteration smoke mode — pass Smoke for that).
	Benchtime time.Duration
	// MaxK caps the ring sizes of the Table-1 global sweep (default 12;
	// the grid is 4, 6, ..., MaxK on the 3-value domain, so each step
	// multiplies the state space by 9).
	MaxK int
	// Smoke forces one iteration per metric regardless of Benchtime — the
	// CI setting that checks the grids still run without spending minutes
	// timing them. Smoke snapshots are NOT comparable baselines.
	Smoke bool
}

func (c Config) withDefaults() Config {
	if c.Benchtime == 0 {
		c.Benchtime = 100 * time.Millisecond
	}
	if c.MaxK <= 0 {
		c.MaxK = 12
	}
	if c.Smoke {
		c.Benchtime = 0
	}
	return c
}

// benchSpec is the DSL source the compiled-spec cache metrics compile: the
// Section 6.2 sum-not-two solution, same text as specs/sum-not-two.gc.
// Embedded so lrbench does not depend on its working directory.
const benchSpec = `# The paper's Section 6.2 sum-not-two solution.
protocol sum-not-two
domain 3
window -1 0
legit x[0] + x[-1] != 2

action up:   x[0] + x[-1] == 2 && x[0] != 2 -> x[0] := (x[0] + 1) % 3
action down: x[0] + x[-1] == 2 && x[0] == 2 -> x[0] := (x[0] - 1) % 3
`

// Suites names the suites Run understands.
var Suites = []string{"verify", "synth", "fleet"}

// Run dispatches to the named suite.
func Run(suite string, cfg Config) (*Snapshot, error) {
	switch suite {
	case "verify":
		return VerifySuite(cfg)
	case "synth":
		return SynthSuite(cfg)
	case "fleet":
		return FleetSuite(cfg)
	default:
		return nil, fmt.Errorf("unknown suite %q (have: %v)", suite, Suites)
	}
}

// VerifySuite measures the verification side: the compiled-spec cache's
// cold-vs-hit compile latency (the service layer's repeat-submission win),
// the end-to-end verify.Check pipeline, and the Table-1 local-vs-global
// sweep with per-K state counts, resident table bytes and states/sec.
func VerifySuite(cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	s := NewSnapshot("verify", cfg.Benchtime)

	// Compiled-spec cache: cold compiles through a fresh cache each
	// iteration (parse + validate + table construction — what every
	// submission paid before the cache existed); hit resubmits the same
	// bytes to a warm cache (the alias index short-circuits even the
	// parse). The ratio of these two rows is the cache's latency win on
	// repeat submissions; PERFORMANCE.md tracks it.
	s.Add("speccache/compile/cold", Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			if _, _, err := verify.NewSpecCache(4).Compile(benchSpec); err != nil {
				panic(err)
			}
		}
	}), nil)
	warm := verify.NewSpecCache(4)
	if _, _, err := warm.Compile(benchSpec); err != nil {
		return nil, err
	}
	s.Add("speccache/compile/hit", Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			if _, _, err := warm.Compile(benchSpec); err != nil {
				panic(err)
			}
		}
	}), nil)

	// End-to-end verification of the sum-not-two solution with the service
	// defaults' shape: both local theorems plus explicit cross-validation.
	p := protocols.SumNotTwoSolution()
	vopts := verify.Options{CrossValidateMaxK: 6}
	s.Add("verify/check/sum-not-two", Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := verify.Check(p, vopts); err != nil {
				panic(err)
			}
		}
	}), map[string]float64{
		"peak_table_bytes": float64(verify.EstimatePeakTableBytes(p, vopts)),
	})

	// Invariant lane: cold symbolic analysis (traps + deadlock ranking +
	// termination LP, parameterized in K) and the independent certificate
	// re-check that every Proved verdict pays. sum-not-two-ss is the cheap
	// shape (2 local transitions); matchingA drives the LP through ~650
	// pivots, so its two rows bound the lane's cost range. No gate
	// thresholds ride on these — the compare step reports them as
	// warnings-only metrics.
	for _, ic := range []struct {
		name string
		p    *core.Protocol
	}{
		{"sum-not-two-ss", p},
		{"matchingA", protocols.MatchingA()},
	} {
		ip := ic.p
		irep, err := invariant.Analyze(context.Background(), ip, invariant.Options{})
		if err != nil {
			return nil, err
		}
		s.Add("invariant/analyze/"+ic.name, Measure(cfg.Benchtime, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := invariant.Analyze(context.Background(), ip, invariant.Options{}); err != nil {
					panic(err)
				}
			}
		}), map[string]float64{
			"invariants": float64(irep.InvariantCount),
			"cert_bytes": float64(irep.Certificate.Size()),
		})
		s.Add("invariant/recheck/"+ic.name, Measure(cfg.Benchtime, func(n int) {
			for i := 0; i < n; i++ {
				if err := invariant.CheckCertificate(ip, irep.Certificate); err != nil {
					panic(err)
				}
			}
		}), nil)
	}

	// Table 1, local side: the complete all-K verification (Theorem 4.2
	// over the RCG plus Theorem 5.14 over the LTG) — constant in K.
	s.Add("table1/local/sum-not-two", Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			sys := p.Compile()
			if _, err := rcg.Build(sys).CheckDeadlockFreedom(0); err != nil {
				panic(err)
			}
			if _, err := ltg.CheckLivelockFreedom(p, ltg.CheckOptions{}); err != nil {
				panic(err)
			}
		}
	}), nil)

	// Table 1, global side: exhaustive model checking of one instance per
	// K, sequential and parallel engines — 3^K states.
	for k := 4; k <= cfg.MaxK; k += 2 {
		seq, err := explicit.NewInstance(p, k, explicit.WithWorkers(1))
		if err != nil {
			return nil, err
		}
		extra := map[string]float64{
			"states":      float64(seq.NumStates()),
			"table_bytes": float64(seq.TableBytes()),
		}
		r := Measure(cfg.Benchtime, func(n int) {
			for i := 0; i < n; i++ {
				if !seq.CheckStrongConvergenceSeq().Converges {
					panic("unexpected verdict")
				}
			}
		})
		extra["states_per_sec"] = statesPerSec(seq.NumStates(), r)
		s.Add(fmt.Sprintf("table1/global/seq/sum-not-two/K=%d", k), r, extra)

		par, err := explicit.NewInstance(p, k)
		if err != nil {
			return nil, err
		}
		r = Measure(cfg.Benchtime, func(n int) {
			for i := 0; i < n; i++ {
				if !par.CheckStrongConvergence().Converges {
					panic("unexpected verdict")
				}
			}
		})
		s.Add(fmt.Sprintf("table1/global/par/sum-not-two/K=%d", k), r, map[string]float64{
			"states":         float64(par.NumStates()),
			"states_per_sec": statesPerSec(par.NumStates(), r),
		})
	}

	// The bidirectional sweep: matching A has 27 local states and a 3-wide
	// window, so the global side grows as 3^K with a much larger constant.
	ma := protocols.MatchingA()
	s.Add("table1/local/matchingA", Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			sys := ma.Compile()
			if _, err := rcg.Build(sys).CheckDeadlockFreedom(0); err != nil {
				panic(err)
			}
		}
	}), nil)
	for k := 4; k <= min(8, cfg.MaxK); k += 2 {
		for _, mode := range []struct {
			name string
			opts []explicit.Option
		}{
			{"seq", []explicit.Option{explicit.WithWorkers(1)}},
			{"par", nil},
		} {
			in, err := explicit.NewInstance(ma, k, mode.opts...)
			if err != nil {
				return nil, err
			}
			r := Measure(cfg.Benchtime, func(n int) {
				for i := 0; i < n; i++ {
					if got := in.IllegitimateDeadlocks(); len(got) != 0 {
						panic("unexpected deadlock")
					}
				}
			})
			s.Add(fmt.Sprintf("table1/global/%s/matchingA/K=%d", mode.name, k), r, map[string]float64{
				"states":         float64(in.NumStates()),
				"states_per_sec": statesPerSec(in.NumStates(), r),
			})
		}
	}

	// Scan-loop internals: the decomposition PERFORMANCE.md's scan-loop
	// section tracks. decode is the incremental odometer walk on its own
	// (valuation + window codes per state, the floor every whole-space pass
	// pays), successors adds flat-table successor generation on top, and
	// fullcheck is the complete sequential convergence check over the same
	// instance — so the three states/sec figures locate any regression
	// inside the scan loop rather than averaged over a whole check.
	sk := min(10, cfg.MaxK)
	scan, err := explicit.NewInstance(p, sk, explicit.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		op   func()
	}{
		{"decode", func() { scanSink += scan.DecodeSweep() }},
		{"successors", func() { scanSink += scan.SuccessorSweep() }},
		{"fullcheck", func() {
			if !scan.CheckStrongConvergenceSeq().Converges {
				panic("unexpected verdict")
			}
		}},
	} {
		op := row.op
		r := Measure(cfg.Benchtime, func(n int) {
			for i := 0; i < n; i++ {
				op()
			}
		})
		s.Add(fmt.Sprintf("scanloop/%s/sum-not-two/K=%d", row.name, sk), r, map[string]float64{
			"states":         float64(scan.NumStates()),
			"states_per_sec": statesPerSec(scan.NumStates(), r),
		})
	}
	// The 3-wide-window variant: matching A's 27 local-state table makes the
	// window-code maintenance (three digit incidences per position) the
	// interesting part of the sweep.
	mk := min(6, cfg.MaxK)
	mscan, err := explicit.NewInstance(ma, mk, explicit.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	r := Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			scanSink += mscan.SuccessorSweep()
		}
	})
	s.Add(fmt.Sprintf("scanloop/successors/matchingA/K=%d", mk), r, map[string]float64{
		"states":         float64(mscan.NumStates()),
		"states_per_sec": statesPerSec(mscan.NumStates(), r),
	})
	return s, nil
}

// scanSink keeps the scan-loop sweep results observable so the measured
// loops cannot be optimized away.
var scanSink uint64

func statesPerSec(states uint64, r Result) float64 {
	if r.NsPerOp <= 0 {
		return 0
	}
	return float64(states) / (r.NsPerOp / 1e9)
}

// SynthSuite measures the synthesis side: the Section 6 search engine grid
// (flat enumeration vs sequential branch-and-bound vs parallel, per case
// study, with pruning and memoization counters) and the Table-4 STSyn-style
// global baseline.
func SynthSuite(cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	s := NewSnapshot("synth", cfg.Benchtime)
	zoo := protocols.All()

	// The search-engine grid: every case runs the reference flat
	// enumeration, the sequential branch-and-bound walk, and the parallel
	// walk; all three produce the identical Result (the engine's
	// determinism contract), so the timings isolate what pruning,
	// memoization and workers buy.
	modes := []struct {
		name string
		opts synthesis.Options
	}{
		{"flat", synthesis.Options{All: true, Flat: true, Workers: 1}},
		{"seq", synthesis.Options{All: true, Workers: 1}},
		// Floor the parallel mode at 2 workers so a single-CPU host still
		// exercises the multi-worker path.
		{"par", synthesis.Options{All: true, Workers: max(2, runtime.GOMAXPROCS(0))}},
	}
	synthCases := []struct {
		name string
		p    *core.Protocol
	}{
		{"agreement", protocols.AgreementBase()},
		{"sum-not-two", protocols.SumNotTwoBase()},
		{"coloring3", protocols.Coloring(3)},
		{"coloring4", protocols.Coloring(4)}, // not in the zoo; built directly
	}
	for _, c := range synthCases {
		name, base := c.name, c.p
		for _, m := range modes {
			var st synthesis.SearchStats
			r := Measure(cfg.Benchtime, func(n int) {
				for i := 0; i < n; i++ {
					res, _ := synthesis.Synthesize(base, m.opts) // the colorings fail by design
					if res != nil {
						st = res.Stats
					}
				}
			})
			extra := map[string]float64{
				"candidates":         float64(st.Candidates),
				"evaluated":          float64(st.Evaluated),
				"pruned_assignments": float64(st.PrunedAssignments),
			}
			if tot := st.MemoHits + st.MemoMisses; tot > 0 {
				extra["memo_hit_rate"] = float64(st.MemoHits) / float64(tot)
			}
			s.Add(fmt.Sprintf("synthesis/%s/%s", name, m.name), r, extra)
		}
	}

	// Table 4: the global STSyn-style baseline the local methodology is
	// compared against — exhaustive search over revised instances at one
	// concrete K.
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"agreement", 3},
		{"agreement", 5},
		{"sum-not-two", 3},
		{"sum-not-two", 4},
		{"coloring3", 3},
	} {
		base := zoo[tc.name]
		for _, mode := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			s.Add(fmt.Sprintf("table4/global/%s/%s/K=%d", mode.name, tc.name, tc.k),
				Measure(cfg.Benchtime, func(n int) {
					for i := 0; i < n; i++ {
						if _, err := explicit.SynthesizeGlobalWorkers(base, tc.k, 0, mode.workers); err != nil {
							panic(err)
						}
					}
				}), nil)
		}
	}
	return s, nil
}
