package bench

import (
	"path/filepath"
	"testing"
	"time"
)

func TestMeasureCalibratesToBenchtime(t *testing.T) {
	var total int
	r := Measure(20*time.Millisecond, func(n int) {
		total = n
		for i := 0; i < n; i++ {
			time.Sleep(100 * time.Microsecond)
		}
	})
	if r.N != total {
		t.Fatalf("result N %d != last run's n %d", r.N, total)
	}
	if r.N < 2 {
		t.Fatalf("a 100us op under a 20ms budget must calibrate past n=1, got n=%d", r.N)
	}
	if elapsed := time.Duration(r.NsPerOp * float64(r.N)); elapsed < 20*time.Millisecond {
		t.Fatalf("final timing run %v shorter than the benchtime budget", elapsed)
	}
}

func TestMeasureSmokeRunsOnce(t *testing.T) {
	calls := 0
	r := Measure(0, func(n int) {
		calls++
		if n != 1 {
			t.Fatalf("smoke mode must request n=1, got %d", n)
		}
	})
	if calls != 1 || r.N != 1 {
		t.Fatalf("smoke mode ran %d times, N=%d", calls, r.N)
	}
}

func TestMeasureCountsAllocs(t *testing.T) {
	var sink [][]byte
	r := Measure(0, func(n int) {
		sink = make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	if r.AllocsPerOp < 1 || r.BytesPerOp < 4096 {
		t.Fatalf("allocation deltas not captured: %+v", r)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewSnapshot("verify", 100*time.Millisecond)
	s.Add("a/b", Result{N: 3, NsPerOp: 1500}, map[string]float64{"states": 81})
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "verify" || got.Schema != SchemaVersion || len(got.Metrics) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	m, ok := got.Metric("a/b")
	if !ok || m.NsPerOp != 1500 || m.Extra["states"] != 81 {
		t.Fatalf("metric mangled: %+v", m)
	}
}

func TestReadSnapshotRejectsSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s := NewSnapshot("verify", 0)
	s.Schema = SchemaVersion + 1
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("schema mismatch must be rejected")
	}
}
