package bench

import (
	"context"
	"fmt"
	"strings"

	"paramring/internal/corpus"
	"paramring/internal/protogen"
)

// fleetSweep is the deterministic corpus the fleet suite verifies: two
// protocol families of sweep siblings, small enough that one verify pass
// fits a bench iteration but large enough that the per-family memo sharing
// has something to amortize.
func fleetSweep() ([]protogen.SweepSpec, error) {
	sw := &protogen.Sweep{
		Seed: 42,
		Families: []protogen.SweepFamily{
			{Name: "f0", Domain: 3, Lo: -1, Hi: 0, Variants: 20},
			{Name: "f1", Domain: 2, Lo: -1, Hi: 1, Variants: 20},
		},
	}
	return sw.Specs()
}

func fleetStore(specs []protogen.SweepSpec) (*corpus.Store, error) {
	st, err := corpus.Open("")
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		if _, _, err := st.Ingest(sp.Name, sp.Source, sp.Deps...); err != nil {
			return nil, fmt.Errorf("ingest %s: %w", sp.Name, err)
		}
	}
	return st, nil
}

// FleetSuite measures corpus-scale verification throughput: a cold
// whole-corpus pass with per-family memo sharing, the same pass with
// sharing disabled (the ratio is what sharing buys), and the incremental
// re-verify of a single dirtied entry (the editing loop's latency).
func FleetSuite(cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	s := NewSnapshot("fleet", cfg.Benchtime)
	specs, err := fleetSweep()
	if err != nil {
		return nil, err
	}

	// Cold whole-corpus verification, shared vs isolated: each iteration
	// builds a fresh in-memory store so every spec is dirty and every
	// family's skeleton/memo is rebuilt from scratch.
	for _, mode := range []struct {
		name     string
		isolated bool
	}{
		{"cold-shared", false},
		{"isolated", true},
	} {
		var rep *corpus.FleetReport
		r := Measure(cfg.Benchtime, func(n int) {
			for i := 0; i < n; i++ {
				st, err := fleetStore(specs)
				if err != nil {
					panic(err)
				}
				rep, err = st.VerifyAll(context.Background(), corpus.FleetOptions{Isolated: mode.isolated})
				if err != nil {
					panic(err)
				}
				if rep.Failed != 0 || rep.Scheduled != len(specs) {
					panic(fmt.Sprintf("fleet %s: scheduled %d of %d, %d failed", mode.name, rep.Scheduled, len(specs), rep.Failed))
				}
			}
		})
		extra := map[string]float64{
			"specs":         float64(rep.Scheduled),
			"families":      float64(rep.Families),
			"specs_per_sec": float64(rep.Scheduled) / (r.NsPerOp / 1e9),
		}
		if tot := rep.MemoHits + rep.MemoMisses; tot > 0 {
			extra["memo_hit_rate"] = float64(rep.MemoHits) / float64(tot)
		}
		s.Add("fleet/verify/"+mode.name, r, extra)
	}

	// Incremental re-verify: a pre-verified corpus, one leaf variant edited
	// per iteration (alternating between two canonical forms so every
	// iteration dirties it), then a VerifyAll that must schedule exactly
	// that one spec. This is the interactive editing loop's latency.
	st, err := fleetStore(specs)
	if err != nil {
		return nil, err
	}
	if _, err := st.VerifyAll(context.Background(), corpus.FleetOptions{}); err != nil {
		return nil, err
	}
	const leaf = "f0-v001"
	var leafSrc string
	for _, sp := range specs {
		if sp.Name == leaf {
			leafSrc = sp.Source
		}
	}
	if leafSrc == "" {
		return nil, fmt.Errorf("fleet sweep has no %s spec", leaf)
	}
	// Renaming the protocol changes the canonical rendering without
	// changing the protocol's shape, so the edit stays in-family.
	altSrc := strings.Replace(leafSrc, "protocol ", "protocol alt-", 1)
	// The store currently holds leafSrc, so odd-numbered edits apply the
	// alternate form and even-numbered ones restore the original.
	sources := [2]string{leafSrc, altSrc}
	// edits counts across Measure's probe batches — each batch restarts its
	// inner loop, but the store's state carries over, so the alternation
	// must too.
	edits := 0
	s.Add("fleet/reverify/one-dirty", Measure(cfg.Benchtime, func(n int) {
		for i := 0; i < n; i++ {
			edits++
			if _, out, err := st.Ingest(leaf, sources[edits%2]); err != nil {
				panic(err)
			} else if out != corpus.Updated {
				panic(fmt.Sprintf("edit of %s was %v, want updated", leaf, out))
			}
			rep, err := st.VerifyAll(context.Background(), corpus.FleetOptions{})
			if err != nil {
				panic(err)
			}
			if rep.Scheduled != 1 || rep.Failed != 0 {
				panic(fmt.Sprintf("one-dirty pass scheduled %d (failed %d), want exactly 1", rep.Scheduled, rep.Failed))
			}
		}
	}), map[string]float64{
		"corpus_size": float64(st.Len()),
	})
	return s, nil
}
