package protocols

import (
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
)

func TestAllZooEntries(t *testing.T) {
	zoo := All()
	want := []string{
		"matching", "matchingA", "matchingB", "gouda-acharya",
		"agreement", "agreement-t01", "agreement-t10", "agreement-both",
		"coloring2", "coloring3", "sum-not-two", "sum-not-two-ss", "mis",
	}
	for _, name := range want {
		if zoo[name] == nil {
			t.Fatalf("zoo missing %q", name)
		}
	}
	if len(zoo) != len(want) {
		t.Fatalf("zoo has %d entries, want %d", len(zoo), len(want))
	}
}

func TestMatchingLegitimacySpotChecks(t *testing.T) {
	p := MatchingStateSpace()
	cases := []struct {
		view core.View
		want bool
	}{
		// (m_r = right AND m_{r+1} = left)
		{core.View{MatchSelf, MatchRight, MatchLeft}, true},
		// (m_{r-1} = right AND m_r = left)
		{core.View{MatchRight, MatchLeft, MatchRight}, true},
		// (m_{r-1} = left AND m_r = self AND m_{r+1} = right)
		{core.View{MatchLeft, MatchSelf, MatchRight}, true},
		// Corrupt: both neighbors matched elsewhere.
		{core.View{MatchLeft, MatchLeft, MatchSelf}, false},
		{core.View{MatchSelf, MatchSelf, MatchSelf}, false},
	}
	for _, tc := range cases {
		if got := p.LegitimateView(tc.view); got != tc.want {
			t.Fatalf("LC(%s) = %v, want %v", p.FormatView(tc.view), got, tc.want)
		}
	}
}

func TestMatchingWindowsAndDomains(t *testing.T) {
	for _, p := range []*core.Protocol{MatchingStateSpace(), MatchingA(), MatchingB()} {
		lo, hi := p.Window()
		if lo != -1 || hi != 1 || p.Domain() != 3 {
			t.Fatalf("%s: window [%d,%d] domain %d", p.Name(), lo, hi, p.Domain())
		}
		if p.Unidirectional() {
			t.Fatalf("%s must be bidirectional", p.Name())
		}
	}
	for _, p := range []*core.Protocol{GoudaAcharya(), AgreementBase(), Coloring(3), SumNotTwoBase()} {
		if !p.Unidirectional() {
			t.Fatalf("%s must be unidirectional", p.Name())
		}
	}
}

// I must be closed in every protocol of the zoo — the standing assumption of
// Problem 3.1. (Checked globally at K=4 and K=5.)
func TestZooClosure(t *testing.T) {
	for name, p := range All() {
		for _, k := range []int{4, 5} {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if v := in.CheckClosure(); v != nil {
				t.Fatalf("%s K=%d: closure violated: %s -> %s by P%d/%s",
					name, k, in.Format(v.From), in.Format(v.To), v.Process, v.Action)
			}
		}
	}
}

func TestZooSelfDisabling(t *testing.T) {
	// Every unidirectional zoo protocol satisfies Assumption 2 (required by
	// the Section 5 livelock reasoning). Bidirectional matching protocols
	// are exempt: the paper's own Example 4.3 is self-enabling (B2's
	// rsl -> rrl lands in a B3-enabled state), which is harmless there
	// because Theorem 4.2 needs no such assumption.
	for name, p := range All() {
		if !p.Unidirectional() {
			continue
		}
		if !p.Compile().IsSelfDisabling() {
			t.Fatalf("%s has self-enabling transitions: %v", name, p.Compile().SelfEnabling())
		}
	}
	if MatchingA().Compile().IsSelfDisabling() != true {
		t.Fatal("matchingA happens to be self-disabling; update this anchor if the protocol changes")
	}
	if MatchingB().Compile().IsSelfDisabling() != false {
		t.Fatal("matchingB is expected to be self-enabling via B2 rsl->rrl")
	}
}

func TestMatchingAActionCount(t *testing.T) {
	sys := MatchingA().Compile()
	if len(sys.Trans) == 0 {
		t.Fatal("matchingA must have transitions")
	}
	// A2 is nondeterministic: state sss has two successors.
	sss := core.Encode(core.View{MatchSelf, MatchSelf, MatchSelf}, 3)
	if got := len(sys.Succ[sss]); got != 2 {
		t.Fatalf("sss successors = %d, want 2 (right|left)", got)
	}
}

func TestAgreementOneSidedPanicsOnBadSide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AgreementOneSided("bogus")
}

func TestColoringValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1 color")
		}
	}()
	Coloring(1)
}

func TestDijkstraTokenRingShape(t *testing.T) {
	follower, bottom := DijkstraTokenRing(3)
	if follower.Domain() != 3 || !follower.Unidirectional() {
		t.Fatal("follower shape wrong")
	}
	if len(bottom) != 1 || bottom[0].Name != "bump" {
		t.Fatalf("bottom actions = %+v", bottom)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m=1")
		}
	}()
	DijkstraTokenRing(1)
}

func TestTokenRingLegit(t *testing.T) {
	cases := []struct {
		vals []int
		want bool
	}{
		{[]int{0, 0, 0, 0}, true},  // only P0 enabled (one token)
		{[]int{1, 0, 0, 0}, false}, // P1 enabled and P0 disabled? tokens: P0: x0 != x3 -> 0; P1: x1!=x0 -> 1; total 1 -> true actually
		{[]int{2, 1, 0, 0}, false}, // several tokens
	}
	// Recompute case 2 honestly: vals = 1,0,0,0: P0 token iff x0==x3: 1==0
	// false; P1: x1!=x0 -> token; P2: x2!=x1 -> none; P3: none. Exactly one
	// token -> legitimate.
	cases[1].want = true
	for _, tc := range cases {
		if got := TokenRingLegit(tc.vals); got != tc.want {
			t.Fatalf("TokenRingLegit(%v) = %v, want %v", tc.vals, got, tc.want)
		}
	}
}

// The paper's anchor facts, re-asserted at the zoo level so a regression in
// any protocol definition is caught close to its source.
func TestZooAnchorFacts(t *testing.T) {
	// matchingA stabilizes at K=5; matchingB does too (STSyn synthesized it
	// for 5) but deadlocks at K=6.
	if !explicit.MustNewInstance(MatchingA(), 5).CheckStrongConvergence().Converges {
		t.Fatal("matchingA must stabilize at K=5")
	}
	if !explicit.MustNewInstance(MatchingB(), 5).CheckStrongConvergence().Converges {
		t.Fatal("matchingB must stabilize at K=5")
	}
	if explicit.MustNewInstance(MatchingB(), 6).CheckStrongConvergence().Converges {
		t.Fatal("matchingB must fail at K=6")
	}
	// agreement-both livelocks at K=4; the one-sided variants converge.
	if explicit.MustNewInstance(AgreementBoth(), 4).FindLivelock() == nil {
		t.Fatal("agreement-both must livelock at K=4")
	}
	if !explicit.MustNewInstance(AgreementOneSided("t01"), 4).CheckStrongConvergence().Converges {
		t.Fatal("agreement-t01 must converge at K=4")
	}
	// sum-not-two solution converges.
	if !explicit.MustNewInstance(SumNotTwoSolution(), 5).CheckStrongConvergence().Converges {
		t.Fatal("sum-not-two solution must converge at K=5")
	}
	// gouda-acharya livelocks at K=5.
	if explicit.MustNewInstance(GoudaAcharya(), 5).FindLivelock() == nil {
		t.Fatal("gouda-acharya must livelock at K=5")
	}
}

// MIS case study: the full local-reasoning pipeline on a protocol beyond
// the paper (see MaxIndependentSet's doc comment for the analysis).
func TestMISCaseStudy(t *testing.T) {
	p := MaxIndependentSet()
	if p.Unidirectional() {
		t.Fatal("MIS is bidirectional")
	}
	if !p.Compile().IsSelfDisabling() {
		t.Fatal("MIS must be self-disabling")
	}
	for k := 2; k <= 8; k++ {
		in := explicit.MustNewInstance(p, k)
		if v := in.CheckClosure(); v != nil {
			t.Fatalf("K=%d closure violated: %+v", k, *v)
		}
		rep := in.CheckStrongConvergence()
		if !rep.Converges {
			t.Fatalf("K=%d must strongly converge: %+v", k, rep)
		}
	}
	// Legitimate states really are maximal independent sets.
	in := explicit.MustNewInstance(p, 6)
	for id := uint64(0); id < in.NumStates(); id++ {
		if !in.InI(id) {
			continue
		}
		vals := in.Decode(id)
		for r := 0; r < 6; r++ {
			left, right := vals[(r+5)%6], vals[(r+1)%6]
			if vals[r] == MISIn && (left == MISIn || right == MISIn) {
				t.Fatalf("state %s: adjacent in-in", in.Format(id))
			}
			if vals[r] == MISOut && left == MISOut && right == MISOut {
				t.Fatalf("state %s: non-maximal out", in.Format(id))
			}
		}
	}
}
