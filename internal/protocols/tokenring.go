package protocols

import "paramring/internal/core"

// DijkstraTokenRing builds Dijkstra's K-state token ring [Dijkstra 1974],
// which the paper's Section 5 cites as the classic protocol that converges
// despite *corrupting* convergence actions (showing non-corruption is an
// unnecessarily strong livelock-freedom condition).
//
// The ring is unidirectional with one distinguished process:
//
//	P_0   (bottom):  x_0 = x_{K-1}  ->  x_0 := (x_0 + 1) mod m
//	P_i   (i > 0):   x_i != x_{i-1} ->  x_i := x_{i-1}
//
// It returns the follower protocol (the representative of P_1..P_{K-1}) and
// the bottom process's action list, to be installed at ring position 0 via
// explicit.WithProcessActions. Because the protocol is not symmetric and its
// legitimate set ("exactly one token") is not locally conjunctive, it lives
// outside the paper's parameterized-local class; it is checked per-K with
// the explicit model checker using TokenRingLegit as the global predicate.
// Dijkstra's protocol stabilizes whenever m >= K.
func DijkstraTokenRing(m int) (follower *core.Protocol, bottom []core.Action) {
	if m < 2 {
		panic("protocols: token ring needs domain >= 2")
	}
	follower = core.MustNew(core.Config{
		Name:   "token-ring",
		Domain: m,
		Lo:     -1,
		Hi:     0,
		Actions: []core.Action{{
			Name:  "copy",
			Guard: func(v core.View) bool { return v[0] != v[1] },
			Next:  func(v core.View) []int { return []int{v[0]} },
		}},
		// The real legitimate set is global ("one token"); this local
		// predicate is a placeholder and must be overridden with
		// TokenRingLegit when instantiating.
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	bottom = []core.Action{{
		Name:  "bump",
		Guard: func(v core.View) bool { return v[0] == v[1] },
		Next:  func(v core.View) []int { return []int{(v[1] + 1) % m} },
	}}
	return follower, bottom
}

// TokenRingLegit is the token ring's global legitimate predicate: exactly
// one process holds a token (is enabled). P_0 holds a token iff
// x_0 = x_{K-1}; P_i (i>0) holds one iff x_i != x_{i-1}.
func TokenRingLegit(vals []int) bool {
	k := len(vals)
	tokens := 0
	if vals[0] == vals[k-1] {
		tokens++
	}
	for i := 1; i < k; i++ {
		if vals[i] != vals[i-1] {
			tokens++
		}
	}
	return tokens == 1
}

// DijkstraThreeState builds Dijkstra's second classic example: the
// three-state machine on a bidirectional array closed into a ring, with two
// distinguished processes (the bottom P_0 and the top P_{K-1}) and
// followers reading both neighbors. Values range over {0, 1, 2}:
//
//	bottom P_0:      x_1 = x_0 + 1 (mod 3)            -> x_0 := x_0 + 2 (mod 3)
//	top    P_{K-1}:  x_{K-2} = x_0 and
//	                 x_{K-1} != x_{K-2} + 1 (mod 3)    -> x_{K-1} := x_{K-2} + 1 (mod 3)
//	follower P_i:    x_{i+1} = x_i + 1 (mod 3)         -> x_i := x_i + 1 (mod 3)
//	                 x_{i-1} = x_i + 1 (mod 3)         -> x_i := x_i + 1 (mod 3)
//
// The top reads the bottom's variable — but on a ring the top's right
// neighbor IS the bottom, so the bidirectional window [-1,1] covers it.
// Instantiate with explicit.WithProcessActions for positions 0 and K-1 and
// explicit.WithGlobalPredicate(ThreeStateLegit); legitimacy is again
// "exactly one privilege". Unlike the K-state ring (which needs m >= K),
// the three-state machine stabilizes for every K with its fixed domain —
// verified in the package tests for K=3..6.
func DijkstraThreeState() (follower *core.Protocol, bottom, top func(k int) []core.Action) {
	const m = 3
	follower = core.MustNew(core.Config{
		Name:   "three-state",
		Domain: m,
		Lo:     -1,
		Hi:     1,
		Actions: []core.Action{
			{
				Name:  "up",
				Guard: func(v core.View) bool { return v[2] == (v[1]+1)%m },
				Next:  func(v core.View) []int { return []int{(v[1] + 1) % m} },
			},
			{
				Name:  "down",
				Guard: func(v core.View) bool { return v[0] == (v[1]+1)%m },
				Next:  func(v core.View) []int { return []int{(v[1] + 1) % m} },
			},
		},
		Legit: func(v core.View) bool { return true }, // overridden globally
	})
	bottom = func(k int) []core.Action {
		return []core.Action{{
			Name:  "bottom",
			Guard: func(v core.View) bool { return v[2] == (v[1]+1)%m },
			Next:  func(v core.View) []int { return []int{(v[1] + 2) % m} },
		}}
	}
	top = func(k int) []core.Action {
		// The top's guard needs x_0; with the window [-1,1] on a ring, the
		// top's right neighbor IS x_0, so the contiguous window suffices.
		return []core.Action{{
			Name: "top",
			Guard: func(v core.View) bool {
				return v[0] == v[2] && v[1] != (v[0]+1)%m
			},
			Next: func(v core.View) []int { return []int{(v[0] + 1) % m} },
		}}
	}
	return follower, bottom, top
}

// ThreeStateLegit is the "exactly one privilege" predicate for the
// three-state machine on a ring of K processes.
func ThreeStateLegit(vals []int) bool {
	const m = 3
	k := len(vals)
	priv := 0
	// Bottom privilege: x_1 = x_0 + 1.
	if vals[1%k] == (vals[0]+1)%m {
		priv++
	}
	// Top privilege: x_{K-2} = x_0 and x_{K-1} != x_{K-2} + 1.
	if vals[(k-2+k)%k] == vals[0] && vals[k-1] != (vals[(k-2+k)%k]+1)%m {
		priv++
	}
	// Follower privileges.
	for i := 1; i < k-1; i++ {
		if vals[(i+1)%k] == (vals[i]+1)%m {
			priv++
		}
		if vals[i-1] == (vals[i]+1)%m {
			priv++
		}
	}
	return priv == 1
}
