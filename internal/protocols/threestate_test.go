package protocols

import (
	"testing"

	"paramring/internal/explicit"
)

// Dijkstra's three-state machine stabilizes for every K >= 3 regardless of
// the domain size (unlike the K-state ring, which needs m >= K). Checked
// explicitly for K=3..6.
func TestDijkstraThreeStateStabilizes(t *testing.T) {
	follower, bottom, top := DijkstraThreeState()
	for k := 3; k <= 6; k++ {
		in, err := explicit.NewInstance(follower, k,
			explicit.WithProcessActions(0, bottom(k)),
			explicit.WithProcessActions(k-1, top(k)),
			explicit.WithGlobalPredicate(ThreeStateLegit))
		if err != nil {
			t.Fatal(err)
		}
		if v := in.CheckClosure(); v != nil {
			t.Fatalf("K=%d closure violated: %s -> %s by P%d/%s",
				k, in.Format(v.From), in.Format(v.To), v.Process, v.Action)
		}
		rep := in.CheckStrongConvergence()
		if !rep.Converges {
			if rep.DeadlockWitness != nil {
				t.Fatalf("K=%d deadlock: %s", k, in.Format(*rep.DeadlockWitness))
			}
			t.Fatalf("K=%d livelock: %s", k, in.FormatCycle(rep.LivelockWitness))
		}
	}
}

func TestThreeStateLegitCountsPrivileges(t *testing.T) {
	// All-zero array of 4: privileges? bottom: x1=x0+1? 0 != 1 no; top:
	// x2=x0 (0=0) and x3 != x2+1 (0 != 1) -> top privileged. Followers
	// P1: x2 = x1+1? no; x0 = x1+1? no. P2: x3 = x2+1? no; x1 = x2+1? no.
	// Exactly one privilege -> legitimate.
	if !ThreeStateLegit([]int{0, 0, 0, 0}) {
		t.Fatal("all-zeros must be legitimate (top privileged)")
	}
	if ThreeStateLegit([]int{0, 1, 0, 1}) {
		t.Fatal("alternating state has several privileges")
	}
}
