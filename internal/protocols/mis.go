package protocols

import "paramring/internal/core"

// MIS domain values.
const (
	MISOut = iota
	MISIn
)

// MaxIndependentSet is a self-stabilizing maximal-independent-set protocol
// on a bidirectional ring — a case study beyond the paper that exercises the
// full local-reasoning pipeline on a fresh protocol:
//
//	enter: m_{r-1} = out AND m_r = out AND m_{r+1} = out -> m_r := in
//	leave: m_{r-1} = in  AND m_r = in                    -> m_r := out
//
// LC_r: an "in" process needs both neighbors out (independence); an "out"
// process needs some neighbor in (maximality). The leave rule breaks in-in
// ties asymmetrically (only the right process of an in-in pair retires),
// which avoids the enter/leave oscillation a symmetric rule would cause.
//
// Verified in this repository: deadlock-free for every K (Theorem 4.2 — the
// only illegitimate local deadlock <out,in,in> has no deadlocked
// continuation, so it lies on no RCG cycle), contiguous-livelock-free
// (Theorem 5.14's check finds no pseudo-livelocking trail), and strongly
// convergent for K=2..9 by explicit model checking.
func MaxIndependentSet() *core.Protocol {
	return core.MustNew(core.Config{
		Name:       "mis",
		Domain:     2,
		ValueNames: []string{"out", "in"},
		Lo:         -1,
		Hi:         1,
		Actions: []core.Action{
			{
				Name: "enter",
				Guard: func(v core.View) bool {
					return v[0] == MISOut && v[1] == MISOut && v[2] == MISOut
				},
				Next: func(v core.View) []int { return []int{MISIn} },
			},
			{
				Name:  "leave",
				Guard: func(v core.View) bool { return v[0] == MISIn && v[1] == MISIn },
				Next:  func(v core.View) []int { return []int{MISOut} },
			},
		},
		Legit: func(v core.View) bool {
			if v[1] == MISIn {
				return v[0] == MISOut && v[2] == MISOut
			}
			return v[0] == MISIn || v[2] == MISIn
		},
	})
}
