// Package protocols is the paper's protocol zoo: every parameterized ring
// protocol that "Local Reasoning for Global Convergence of Parameterized
// Rings" defines, synthesizes or analyzes, expressed in the core model.
//
// Naming follows the paper:
//
//   - MatchingStateSpace / MatchingA / MatchingB — maximal matching on a
//     bidirectional ring (Example 4.1's state space, the generalizable
//     Example 4.2 protocol, the non-generalizable Example 4.3 protocol).
//   - GoudaAcharya — the two-action fragment of Gouda & Acharya's matching
//     solution whose K=5 livelock illustrates Figure 8.
//   - Agreement* — Example 5.2 / Section 6's binary agreement.
//   - Coloring — the m-coloring family (m=2 and m=3 in the paper).
//   - SumNotTwo* — Section 6's hypothetical sum-not-two protocol.
package protocols

import "paramring/internal/core"

// Matching domain values. The paper's D_r = {left, right, self}: m_r says
// whether P_r matches its predecessor (left), its successor (right) or
// no one (self). Order chosen so compact strings read "l", "s", "r".
const (
	MatchLeft = iota
	MatchSelf
	MatchRight
)

// matchingValueNames yields compact state strings like "lls" and "rsr".
var matchingValueNames = []string{"left", "self", "right"}

// matchingLegit is the paper's LC_r for maximal matching (Example 4.1):
//
//	(m_r = right AND m_{r+1} = left) OR
//	(m_{r-1} = right AND m_r = left) OR
//	(m_{r-1} = left AND m_r = self AND m_{r+1} = right)
func matchingLegit(v core.View) bool {
	prev, own, next := v[0], v[1], v[2]
	switch {
	case own == MatchRight && next == MatchLeft:
		return true
	case prev == MatchRight && own == MatchLeft:
		return true
	case prev == MatchLeft && own == MatchSelf && next == MatchRight:
		return true
	}
	return false
}

// MatchingStateSpace is the action-free maximal-matching protocol: the raw
// local state space of Example 4.1 over the bidirectional window [-1, +1].
// Its RCG is Figure 1 of the paper (27 local states).
func MatchingStateSpace() *core.Protocol {
	return core.MustNew(core.Config{
		Name:       "matching",
		Domain:     3,
		ValueNames: matchingValueNames,
		Lo:         -1,
		Hi:         1,
		Legit:      matchingLegit,
	})
}

// MatchingA is the generalizable maximal-matching protocol of Example 4.2
// (synthesized by STSyn for K=6 in the paper and proved deadlock-free for
// every K by Theorem 4.2 — Figure 2).
func MatchingA() *core.Protocol {
	return MatchingStateSpace().WithName("matchingA").WithActions("matchingA",
		core.Action{
			Name:  "A1",
			Guard: func(v core.View) bool { return v[0] == MatchLeft && v[1] != MatchSelf && v[2] == MatchRight },
			Next:  func(v core.View) []int { return []int{MatchSelf} },
		},
		core.Action{
			Name:  "A2",
			Guard: func(v core.View) bool { return v[0] == MatchSelf && v[1] == MatchSelf && v[2] == MatchSelf },
			Next:  func(v core.View) []int { return []int{MatchRight, MatchLeft} },
		},
		core.Action{
			Name: "A3",
			Guard: func(v core.View) bool {
				return (v[0] == MatchRight && v[1] == MatchSelf) ||
					(v[1] == MatchSelf && v[2] == MatchLeft)
			},
			Next: func(v core.View) []int {
				var out []int
				if v[0] == MatchRight && v[1] == MatchSelf {
					out = append(out, MatchLeft)
				}
				if v[1] == MatchSelf && v[2] == MatchLeft {
					out = append(out, MatchRight)
				}
				return out
			},
		},
		core.Action{
			Name: "A4",
			Guard: func(v core.View) bool {
				return (v[0] == MatchRight && v[1] == MatchRight && v[2] != MatchLeft) ||
					(v[0] != MatchRight && v[1] == MatchLeft && v[2] == MatchLeft)
			},
			Next: func(v core.View) []int {
				var out []int
				if v[0] == MatchRight && v[1] == MatchRight && v[2] != MatchLeft {
					out = append(out, MatchLeft)
				}
				if v[0] != MatchRight && v[1] == MatchLeft && v[2] == MatchLeft {
					out = append(out, MatchRight)
				}
				return out
			},
		},
		core.Action{
			Name: "A5",
			Guard: func(v core.View) bool {
				return (v[0] == MatchSelf && v[1] != MatchLeft && v[2] == MatchRight) ||
					(v[0] == MatchLeft && v[1] != MatchRight && v[2] == MatchSelf)
			},
			Next: func(v core.View) []int {
				var out []int
				if v[0] == MatchSelf && v[1] != MatchLeft && v[2] == MatchRight {
					out = append(out, MatchLeft)
				}
				if v[0] == MatchLeft && v[1] != MatchRight && v[2] == MatchSelf {
					out = append(out, MatchRight)
				}
				return out
			},
		},
	)
}

// MatchingB is the non-generalizable maximal-matching protocol of Example
// 4.3: it stabilizes for K=5 but deadlocks on rings whose size is a multiple
// of 4 or 6, witnessed by the two RCG cycles through <left,left,self>
// (Figure 3).
func MatchingB() *core.Protocol {
	return MatchingStateSpace().WithName("matchingB").WithActions("matchingB",
		core.Action{
			Name:  "B1",
			Guard: func(v core.View) bool { return v[0] == MatchLeft && v[1] != MatchSelf && v[2] == MatchRight },
			Next:  func(v core.View) []int { return []int{MatchSelf} },
		},
		core.Action{
			Name: "B2",
			Guard: func(v core.View) bool {
				return (v[0] == MatchRight && v[1] == MatchSelf && v[2] == MatchLeft) ||
					(v[0] == MatchSelf && v[1] == MatchSelf && v[2] == MatchSelf)
			},
			Next: func(v core.View) []int { return []int{MatchRight} },
		},
		core.Action{
			Name: "B3",
			Guard: func(v core.View) bool {
				return (v[0] == MatchRight && v[1] == MatchRight && v[2] == MatchLeft) ||
					(v[0] == MatchSelf && v[1] == MatchSelf && v[2] == MatchRight)
			},
			Next: func(v core.View) []int { return []int{MatchLeft} },
		},
		core.Action{
			Name: "B4",
			Guard: func(v core.View) bool {
				return (v[0] == MatchRight && v[1] != MatchLeft && v[2] != MatchLeft) ||
					(v[0] != MatchRight && v[1] != MatchRight && v[2] == MatchLeft)
			},
			Next: func(v core.View) []int {
				var out []int
				if v[0] == MatchRight && v[1] != MatchLeft && v[2] != MatchLeft {
					out = append(out, MatchLeft)
				}
				if v[0] != MatchRight && v[1] != MatchRight && v[2] == MatchLeft {
					out = append(out, MatchRight)
				}
				return out
			},
		},
	)
}

// GoudaAcharya is the two-action fragment of Gouda & Acharya's matching
// solution that the paper uses in Figure 8 to show a livelock forming a
// contiguous trail:
//
//	t_ls: m_{i-1} = left AND m_i = left -> m_i := self
//	t_sl: m_{i-1} != left AND m_i = self -> m_i := left
//
// Both actions read only the left neighbor, so the fragment runs on the
// unidirectional window [-1, 0]. The paper leaves LC implicit for this
// fragment; we take LC_r = "P_r is disabled" (neither guard holds), making
// I exactly the fragment's terminal configurations — trivially closed in
// the protocol — while every global state of the paper's K=5 livelock
// <lslsl, sslsl, ...> stays outside I (each contains an enabled process,
// e.g. the matching-inconsistent pair "ll"), as the paper requires.
func GoudaAcharya() *core.Protocol {
	tls := func(v core.View) bool { return v[0] == MatchLeft && v[1] == MatchLeft }
	tsl := func(v core.View) bool { return v[0] != MatchLeft && v[1] == MatchSelf }
	return core.MustNew(core.Config{
		Name:       "gouda-acharya",
		Domain:     3,
		ValueNames: matchingValueNames,
		Lo:         -1,
		Hi:         0,
		Actions: []core.Action{
			{
				Name:  "t_ls",
				Guard: tls,
				Next:  func(v core.View) []int { return []int{MatchSelf} },
			},
			{
				Name:  "t_sl",
				Guard: tsl,
				Next:  func(v core.View) []int { return []int{MatchLeft} },
			},
		},
		Legit: func(v core.View) bool { return !tls(v) && !tsl(v) },
	})
}

// agreementLegit is LC_r for binary agreement: x_{r-1} = x_r.
func agreementLegit(v core.View) bool { return v[0] == v[1] }

// AgreementBase is the empty (action-free) binary agreement protocol on a
// unidirectional ring — the synthesis input of Section 6's agreement example.
func AgreementBase() *core.Protocol {
	return core.MustNew(core.Config{
		Name:   "agreement",
		Domain: 2,
		Lo:     -1,
		Hi:     0,
		Legit:  agreementLegit,
	})
}

// AgreementT01 is the correction transition t01: x_{r-1}=1 AND x_r=0 -> x_r:=1.
func AgreementT01() core.Action {
	return core.Action{
		Name:  "t01",
		Guard: func(v core.View) bool { return v[0] == 1 && v[1] == 0 },
		Next:  func(v core.View) []int { return []int{1} },
	}
}

// AgreementT10 is the correction transition t10: x_{r-1}=0 AND x_r=1 -> x_r:=0.
func AgreementT10() core.Action {
	return core.Action{
		Name:  "t10",
		Guard: func(v core.View) bool { return v[0] == 0 && v[1] == 1 },
		Next:  func(v core.View) []int { return []int{0} },
	}
}

// AgreementOneSided is the converging agreement protocol with exactly one of
// the two correction transitions — the paper's accepted synthesis output.
// side must be "t01" or "t10".
func AgreementOneSided(side string) *core.Protocol {
	switch side {
	case "t01":
		return AgreementBase().WithActions("agreement/"+side, AgreementT01())
	case "t10":
		return AgreementBase().WithActions("agreement/"+side, AgreementT10())
	default:
		panic("protocols: side must be t01 or t10")
	}
}

// AgreementBoth is Example 5.2's protocol with both t01 and t10 — the
// version that livelocks (e.g. the K=4 livelock of Figure 5/6) and fails the
// sufficient condition of Theorem 5.14.
func AgreementBoth() *core.Protocol {
	return AgreementBase().WithActions("agreement/both", AgreementT01(), AgreementT10())
}

// Coloring is the action-free m-coloring protocol on a unidirectional ring:
// LC_r says a process's color differs from its predecessor's. The paper uses
// m=3 (Figure 9, synthesis fails) and m=2 (Figure 11, inconclusive —
// SS 2-coloring on unidirectional rings is in fact impossible).
func Coloring(m int) *core.Protocol {
	if m < 2 {
		panic("protocols: coloring needs at least 2 colors")
	}
	return core.MustNew(core.Config{
		Name:   "coloring",
		Domain: m,
		Lo:     -1,
		Hi:     0,
		Legit:  func(v core.View) bool { return v[0] != v[1] },
	})
}

// SumNotTwoBase is the action-free sum-not-two protocol: domain {0,1,2},
// unidirectional window, LC_r: x_r + x_{r-1} != 2.
func SumNotTwoBase() *core.Protocol {
	return core.MustNew(core.Config{
		Name:   "sum-not-two",
		Domain: 3,
		Lo:     -1,
		Hi:     0,
		Legit:  func(v core.View) bool { return v[0]+v[1] != 2 },
	})
}

// SumNotTwoSolution is the converging protocol the paper's methodology
// accepts for sum-not-two (candidate set {t21, t12, t01}), captured by:
//
//	(x_r + x_{r-1} = 2) AND (x_r != 2) -> x_r := (x_r + 1) mod 3
//	(x_r + x_{r-1} = 2) AND (x_r  = 2) -> x_r := (x_r - 1) mod 3
func SumNotTwoSolution() *core.Protocol {
	return SumNotTwoBase().WithActions("sum-not-two/solution",
		core.Action{
			Name:  "up",
			Guard: func(v core.View) bool { return v[0]+v[1] == 2 && v[1] != 2 },
			Next:  func(v core.View) []int { return []int{(v[1] + 1) % 3} },
		},
		core.Action{
			Name:  "down",
			Guard: func(v core.View) bool { return v[0]+v[1] == 2 && v[1] == 2 },
			Next:  func(v core.View) []int { return []int{(v[1] + 2) % 3} },
		},
	)
}

// All returns the full zoo keyed by the names used by the CLI tools.
func All() map[string]*core.Protocol {
	return map[string]*core.Protocol{
		"matching":       MatchingStateSpace(),
		"matchingA":      MatchingA(),
		"matchingB":      MatchingB(),
		"gouda-acharya":  GoudaAcharya(),
		"agreement":      AgreementBase(),
		"agreement-t01":  AgreementOneSided("t01"),
		"agreement-t10":  AgreementOneSided("t10"),
		"agreement-both": AgreementBoth(),
		"coloring2":      Coloring(2),
		"coloring3":      Coloring(3),
		"sum-not-two":    SumNotTwoBase(),
		"sum-not-two-ss": SumNotTwoSolution(),
		"mis":            MaxIndependentSet(),
	}
}
