package tree

import (
	"fmt"
	"sort"

	"paramring/internal/core"
)

// Synthesis for trees. Because self-disabling top-down tree protocols can
// never livelock (see the package comment), adding convergence reduces to
// deadlock repair: give every illegitimate local deadlock that is reachable
// below a deadlocked root a self-disabling escape transition, and similarly
// repair illegitimate root deadlocks. No NPL/PL search, no candidate
// backtracking — the acyclic topology removes the hard part of the ring
// methodology, which is exactly why the paper calls rings "especially
// challenging".

// SynthesisResult is the outcome of Synthesize.
type SynthesisResult struct {
	// Spec is the revised, stabilizing specification.
	Spec *Spec
	// Chosen are the added non-root local transitions.
	Chosen []core.LocalTransition
	// RootChosen are the added root transitions (old value -> new value).
	RootChosen [][2]int
	// Steps is a human-readable narrative.
	Steps []string
}

// Synthesize adds convergence to a tree spec: after it, the spec is
// strongly self-stabilizing over ALL rooted trees (given closure of the
// input predicates, which holds trivially for action-free inputs).
//
// It fails when some illegitimate deadlock has no self-disabling escape —
// e.g. when every alternative own-value is itself illegitimate and enabled.
func Synthesize(s *Spec, actionName string) (*SynthesisResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if actionName == "" {
		actionName = "conv"
	}
	sys := s.Rep.Compile()
	if !sys.IsSelfDisabling() {
		return nil, fmt.Errorf("tree: base protocol %q has self-enabling transitions", s.Rep.Name())
	}
	d := s.Rep.Domain()
	res := &SynthesisResult{}
	logf := func(format string, args ...any) {
		res.Steps = append(res.Steps, fmt.Sprintf(format, args...))
	}

	// Root repair: every illegitimate root deadlock moves to a legitimate
	// root-deadlock value.
	rootMoves := map[core.LocalState][]int{}
	for v := 0; v < d; v++ {
		if !s.rootDeadlocked(v) || s.RootLegit(v) {
			continue
		}
		target := -1
		for nv := 0; nv < d; nv++ {
			if nv != v && s.rootDeadlocked(nv) && s.RootLegit(nv) {
				target = nv
				break
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("tree: root value %d has no legitimate deadlocked escape", v)
		}
		rootMoves[core.LocalState(v)] = []int{target}
		res.RootChosen = append(res.RootChosen, [2]int{v, target})
	}
	logf("root repair: %d illegitimate root deadlock(s) resolved", len(res.RootChosen))

	// Non-root repair: every illegitimate local deadlock escapes to a
	// local deadlock outside the resolved set. Resolve ALL illegitimate
	// deadlocks (reachability on trees means any of them can occur below a
	// deadlocked root unless proven otherwise; resolving all is always
	// safe and keeps the construction simple).
	resolve := map[core.LocalState]bool{}
	for _, st := range sys.IllegitimateDeadlocks() {
		resolve[st] = true
	}
	moves := map[core.LocalState][]int{}
	var resolved []core.LocalState
	for st := range resolve {
		resolved = append(resolved, st)
	}
	sort.Slice(resolved, func(i, j int) bool { return resolved[i] < resolved[j] })
	for _, st := range resolved {
		view := s.Rep.Decode(st)
		own := s.Rep.OwnIndex()
		target := core.LocalState(-1)
		for nv := 0; nv < d; nv++ {
			if nv == view[own] {
				continue
			}
			dst := make(core.View, len(view))
			copy(dst, view)
			dst[own] = nv
			code := s.Rep.Encode(dst)
			if sys.IsDeadlock[code] && !resolve[code] {
				target = code
				break
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("tree: local deadlock %s has no self-disabling escape", s.Rep.FormatState(st))
		}
		moves[st] = []int{sys.OwnValue(target)}
		res.Chosen = append(res.Chosen, core.LocalTransition{Src: st, Dst: target, Action: actionName})
	}
	logf("non-root repair: %d illegitimate local deadlock(s) resolved", len(res.Chosen))

	ta := core.TableAction{Name: actionName, Moves: moves}
	rep := s.Rep.WithActions(s.Rep.Name()+"/ss", ta.Action(d))
	rootTA := core.TableAction{Name: actionName + "-root", Moves: rootMoves}
	rootActions := append(append([]core.Action(nil), s.RootActions...), rootTA.Action(d))

	res.Spec = &Spec{Rep: rep, RootActions: rootActions, RootLegit: s.RootLegit}

	// Re-verify: deadlock-freedom over all trees plus self-disablement.
	ok, dl, err := res.Spec.StabilizingForAllTrees()
	if err != nil {
		return nil, fmt.Errorf("tree: re-verification: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("tree: revision is not stabilizing (deadlock-free=%v)", dl.Free)
	}
	logf("re-verified: stabilizing over all rooted trees")
	return res, nil
}
