package tree_test

import (
	"fmt"

	"paramring/internal/core"
	"paramring/internal/tree"
)

// 2-coloring is impossible on unidirectional rings (paper Figure 11) but
// synthesizes and verifies on ALL rooted trees — cycles are the whole
// difficulty.
func ExampleSynthesize() {
	rep := core.MustNew(core.Config{
		Name:   "tree-2coloring",
		Domain: 2,
		Lo:     -1, // parent
		Hi:     0,  // self
		Legit:  func(v core.View) bool { return v[0] != v[1] },
	})
	spec := &tree.Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	res, err := tree.Synthesize(spec, "conv")
	if err != nil {
		panic(err)
	}
	for _, s := range res.Steps {
		fmt.Println(s)
	}
	// Output:
	// root repair: 0 illegitimate root deadlock(s) resolved
	// non-root repair: 2 illegitimate local deadlock(s) resolved
	// re-verified: stabilizing over all rooted trees
}
