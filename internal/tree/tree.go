// Package tree extends the paper's local-reasoning machinery from rings to
// rooted trees — the first item on the paper's future-work list (Section 8),
// anticipated by the Section 4 remark that "our definition of continuation
// relation naturally extends to network topologies other than rings".
//
// Model: a parameterized top-down tree protocol. Every non-root process
// owns x over a finite domain and reads (x_parent, x_self) — the window
// [-1, 0] of the ring model reinterpreted with "left neighbor" = parent.
// The root is distinguished: it reads only x_root and runs its own actions;
// its legitimacy predicate constrains x_root alone. The protocol is
// parameterized over ALL rooted trees of every shape and size.
//
// Two results, both strictly easier than their ring counterparts because
// trees are acyclic (the paper: "some researchers consider acyclic
// topologies for compositional design of self-stabilization"):
//
//   - Deadlock-freedom (analog of Theorem 4.2, necessary and sufficient):
//     a global deadlock outside I exists in SOME tree iff the root can be
//     deadlocked in an illegitimate value, or an illegitimate non-root
//     local deadlock is reachable from a root-deadlock value through the
//     continuation relation restricted to local deadlocks. Reachability
//     replaces the ring's cycle condition: a witness tree is simply the
//     path (chain) spelled by the walk.
//
//   - Livelock-freedom (no ring analog needed): every self-disabling
//     top-down tree protocol is livelock-free on every tree, uncondition-
//     ally. Proof by induction on depth: the root's local state never
//     changes after its (at most one, by self-disablement) step, so each
//     depth-1 process sees a fixed parent value and is self-terminating,
//     and so on down the tree — total work is finite, so no computation is
//     infinite. This makes *deadlock*-freedom the whole story on trees,
//     which is why 2-coloring — impossible on unidirectional rings
//     (Figure 11) — stabilizes on all trees (see the package tests).
package tree

import (
	"errors"
	"fmt"

	"paramring/internal/core"
	"paramring/internal/graph"
)

// Spec is a parameterized rooted-tree protocol.
type Spec struct {
	// Rep is the representative non-root process; its window must be
	// [-1, 0] (parent, self).
	Rep *core.Protocol
	// RootActions are the distinguished root's guarded commands over the
	// one-variable view [x_root].
	RootActions []core.Action
	// RootLegit is the root's legitimacy predicate over x_root.
	RootLegit func(x int) bool
}

// Validate checks the spec's shape.
func (s *Spec) Validate() error {
	if s.Rep == nil {
		return errors.New("tree: representative protocol is required")
	}
	lo, hi := s.Rep.Window()
	if lo != -1 || hi != 0 {
		return fmt.Errorf("tree: representative window must be [-1,0], got [%d,%d]", lo, hi)
	}
	if s.RootLegit == nil {
		return errors.New("tree: root legitimacy predicate is required")
	}
	for i, a := range s.RootActions {
		if a.Guard == nil || a.Next == nil {
			return fmt.Errorf("tree: root action %d (%q) missing Guard or Next", i, a.Name)
		}
	}
	return nil
}

// rootDeadlocked reports whether the root is deadlocked at value v.
func (s *Spec) rootDeadlocked(v int) bool {
	view := core.View{v}
	for _, a := range s.RootActions {
		if a.Guard(view) && len(a.Next(view)) > 0 {
			return false
		}
	}
	return true
}

// RootTransitions compiles the root's explicit transition list.
func (s *Spec) RootTransitions() []core.LocalTransition {
	var out []core.LocalTransition
	d := s.Rep.Domain()
	for v := 0; v < d; v++ {
		view := core.View{v}
		for _, a := range s.RootActions {
			if !a.Guard(view) {
				continue
			}
			for _, nv := range a.Next(view) {
				out = append(out, core.LocalTransition{
					Src: core.LocalState(v), Dst: core.LocalState(nv), Action: a.Name,
				})
			}
		}
	}
	return out
}

// DeadlockReport is the verdict of CheckDeadlockFreedom over all trees.
type DeadlockReport struct {
	// Free means no tree of any shape has a global deadlock outside I.
	Free bool
	// RootWitness, when set, is an illegitimate root value at which the
	// root alone deadlocks (a one-node witness tree).
	RootWitness *int
	// PathWitness, when non-empty, is a chain witness: element 0 is the
	// root's value, the rest are the non-root values down the path; the
	// final node is an illegitimate local deadlock.
	PathWitness []int
}

// CheckDeadlockFreedom decides deadlock-freedom outside I over ALL rooted
// trees (necessary and sufficient; the tree analog of Theorem 4.2).
func (s *Spec) CheckDeadlockFreedom() (DeadlockReport, error) {
	if err := s.Validate(); err != nil {
		return DeadlockReport{}, err
	}
	var rep DeadlockReport
	sys := s.Rep.Compile()
	d := s.Rep.Domain()

	// Case (a): the root alone is a deadlocked illegitimate tree.
	for v := 0; v < d; v++ {
		if s.rootDeadlocked(v) && !s.RootLegit(v) {
			vv := v
			rep.RootWitness = &vv
			return rep, nil
		}
	}

	// Case (b): BFS over non-root local deadlocks. A non-root state (p, x)
	// can hang below a deadlocked root value v iff p == v; a state (x, y)
	// can hang below state (p, x) (shared variable x). Searching for a
	// reachable illegitimate local deadlock; parent pointers give the
	// witness chain.
	type node struct {
		state  core.LocalState
		parent int // index into order; -1 for first level
		rootV  int
	}
	var order []node
	seen := map[core.LocalState]bool{}
	push := func(st core.LocalState, parent, rootV int) {
		if seen[st] {
			return
		}
		seen[st] = true
		order = append(order, node{state: st, parent: parent, rootV: rootV})
	}
	for v := 0; v < d; v++ {
		if !s.rootDeadlocked(v) {
			continue
		}
		for x := 0; x < d; x++ {
			st := core.Encode(core.View{v, x}, d)
			if sys.IsDeadlock[st] {
				push(st, -1, v)
			}
		}
	}
	for i := 0; i < len(order); i++ {
		cur := order[i]
		view := s.Rep.Decode(cur.state)
		if !sys.Legit[cur.state] {
			// Reconstruct the chain.
			var chainRev []int
			for j := i; j != -1; j = order[j].parent {
				chainRev = append(chainRev, s.Rep.Decode(order[j].state)[1])
			}
			chain := []int{cur.rootV}
			for j := len(chainRev) - 1; j >= 0; j-- {
				chain = append(chain, chainRev[j])
			}
			rep.PathWitness = chain
			return rep, nil
		}
		// Children: states (view[1], y).
		for y := 0; y < d; y++ {
			st := core.Encode(core.View{view[1], y}, d)
			if sys.IsDeadlock[st] {
				push(st, i, cur.rootV)
			}
		}
	}
	rep.Free = true
	return rep, nil
}

// CheckLivelockFreedom decides livelock-freedom over all trees: it holds
// unconditionally for self-disabling specs (see the package comment for the
// depth-induction argument). Non-self-disabling specs are rejected, exactly
// as in the ring checker — and for the same reason: the chain-collapse
// transformation does not preserve livelocks.
func (s *Spec) CheckLivelockFreedom() (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	sys := s.Rep.Compile()
	if !sys.IsSelfDisabling() {
		return false, fmt.Errorf("tree: representative process has self-enabling transitions (e.g. %s)",
			sys.FormatTransition(sys.SelfEnabling()[0]))
	}
	// Root self-disablement: every root transition must land in a root
	// deadlock value.
	for _, t := range s.RootTransitions() {
		if !s.rootDeadlocked(int(t.Dst)) {
			return false, fmt.Errorf("tree: root action %q is self-enabling (value %d -> %d)", t.Action, t.Src, t.Dst)
		}
	}
	return true, nil
}

// StabilizingForAllTrees combines both checks: closure is assumed (the
// caller's LC must be closed, as in Problem 3.1), deadlock-freedom comes
// from the continuation analysis, livelock-freedom from self-disablement.
func (s *Spec) StabilizingForAllTrees() (bool, DeadlockReport, error) {
	dl, err := s.CheckDeadlockFreedom()
	if err != nil {
		return false, dl, err
	}
	ll, err := s.CheckLivelockFreedom()
	if err != nil {
		return false, dl, err
	}
	return dl.Free && ll, dl, nil
}

// ContinuationGraph exposes the parent-to-child continuation relation over
// the non-root local states (for rendering and analysis): an arc
// (p,x) -> (x,y) for all p, x, y.
func (s *Spec) ContinuationGraph() *graph.Digraph {
	d := s.Rep.Domain()
	g := graph.New(d * d)
	for p := 0; p < d; p++ {
		for x := 0; x < d; x++ {
			src := int(core.Encode(core.View{p, x}, d))
			for y := 0; y < d; y++ {
				g.AddEdge(src, int(core.Encode(core.View{x, y}, d)))
			}
		}
	}
	return g
}
