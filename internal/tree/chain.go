package tree

import (
	"fmt"

	"paramring/internal/core"
)

// Chain is the explicit-state oracle for tree specs: a rooted path (chain)
// of n processes instantiated concretely. Chains are complete witnesses for
// the tree deadlock theorem — any deadlocked tree yields a deadlocked chain
// by restriction to a root-to-corrupt-node path — so validating against
// chains validates the all-trees verdict.
type Chain struct {
	spec *Spec
	n    int
	d    int
	pow  []uint64
	size uint64
}

// NewChain instantiates the spec on a path of n >= 1 nodes (node 0 is the
// root; node i's parent is node i-1).
func NewChain(spec *Spec, n int) (*Chain, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("tree: chain needs at least one node, got %d", n)
	}
	d := spec.Rep.Domain()
	c := &Chain{spec: spec, n: n, d: d}
	c.size = 1
	c.pow = make([]uint64, n)
	for i := 0; i < n; i++ {
		c.pow[i] = c.size
		c.size *= uint64(d)
		if c.size > 1<<24 {
			return nil, fmt.Errorf("tree: chain state space too large (%d^%d)", d, n)
		}
	}
	return c, nil
}

// NumStates returns d^n.
func (c *Chain) NumStates() uint64 { return c.size }

// Decode unpacks a state code.
func (c *Chain) Decode(id uint64) []int {
	vals := make([]int, c.n)
	for i := 0; i < c.n; i++ {
		vals[i] = int(id % uint64(c.d))
		id /= uint64(c.d)
	}
	return vals
}

// Encode packs node values.
func (c *Chain) Encode(vals []int) uint64 {
	if len(vals) != c.n {
		panic(fmt.Sprintf("tree: %d values for chain of %d", len(vals), c.n))
	}
	var id uint64
	for i, v := range vals {
		id += uint64(v) * c.pow[i]
	}
	return id
}

// InI evaluates the tree legitimate predicate: root LC plus every non-root
// node's LC over (parent, self).
func (c *Chain) InI(id uint64) bool {
	vals := c.Decode(id)
	if !c.spec.RootLegit(vals[0]) {
		return false
	}
	for i := 1; i < c.n; i++ {
		if !c.spec.Rep.LegitimateView(core.View{vals[i-1], vals[i]}) {
			return false
		}
	}
	return true
}

// Successors enumerates the outgoing global transitions of id.
func (c *Chain) Successors(id uint64) []uint64 {
	vals := c.Decode(id)
	var out []uint64
	// Root.
	rootView := core.View{vals[0]}
	for _, a := range c.spec.RootActions {
		if !a.Guard(rootView) {
			continue
		}
		for _, nv := range a.Next(rootView) {
			out = append(out, id+uint64(nv)*c.pow[0]-uint64(vals[0])*c.pow[0])
		}
	}
	// Non-root nodes.
	for i := 1; i < c.n; i++ {
		view := core.View{vals[i-1], vals[i]}
		for _, a := range c.spec.Rep.Actions() {
			if !a.Guard(view) {
				continue
			}
			for _, nv := range a.Next(view) {
				out = append(out, id+uint64(nv)*c.pow[i]-uint64(vals[i])*c.pow[i])
			}
		}
	}
	return out
}

// IsDeadlock reports that no node is enabled.
func (c *Chain) IsDeadlock(id uint64) bool { return len(c.Successors(id)) == 0 }

// IllegitimateDeadlocks enumerates global deadlocks outside I.
func (c *Chain) IllegitimateDeadlocks() []uint64 {
	var out []uint64
	for id := uint64(0); id < c.size; id++ {
		if !c.InI(id) && c.IsDeadlock(id) {
			out = append(out, id)
		}
	}
	return out
}

// HasLivelock reports whether the transition graph restricted to states
// outside I contains a cycle (iterative DFS 3-coloring).
func (c *Chain) HasLivelock() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, c.size)
	type frame struct {
		v    uint64
		succ []uint64
		next int
	}
	for root := uint64(0); root < c.size; root++ {
		if color[root] != white || c.InI(root) {
			continue
		}
		stack := []frame{{v: root}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.succ == nil {
				f.succ = c.Successors(f.v)
			}
			advanced := false
			for f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if c.InI(w) {
					continue
				}
				switch color[w] {
				case gray:
					return true
				case white:
					color[w] = gray
					stack = append(stack, frame{v: w})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}

// StronglyConverges decides Proposition 2.1 on the chain.
func (c *Chain) StronglyConverges() bool {
	return len(c.IllegitimateDeadlocks()) == 0 && !c.HasLivelock()
}
