package tree

import (
	"math/rand"
	"testing"

	"paramring/internal/core"
)

// treeColoring builds top-down m-coloring on trees: LC is "child differs
// from parent", the root is always legitimate, and a clashing child bumps
// its color. This is the tree counterpart of the paper's ring coloring — and
// unlike the unidirectional ring (Figure 11), 2-coloring works here.
func treeColoring(t testing.TB, m int) *Spec {
	t.Helper()
	rep, err := core.New(core.Config{
		Name:   "tree-coloring",
		Domain: m,
		Lo:     -1,
		Hi:     0,
		Actions: []core.Action{{
			Name:  "bump",
			Guard: func(v core.View) bool { return v[0] == v[1] },
			Next:  func(v core.View) []int { return []int{(v[1] + 1) % m} },
		}},
		Legit: func(v core.View) bool { return v[0] != v[1] },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Rep:       rep,
		RootLegit: func(x int) bool { return true },
	}
}

// treeAgreement: every node copies its parent; stabilizes to all-equal.
func treeAgreement(t testing.TB) *Spec {
	t.Helper()
	rep, err := core.New(core.Config{
		Name:   "tree-agreement",
		Domain: 2,
		Lo:     -1,
		Hi:     0,
		Actions: []core.Action{{
			Name:  "copy",
			Guard: func(v core.View) bool { return v[0] != v[1] },
			Next:  func(v core.View) []int { return []int{v[0]} },
		}},
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{Rep: rep, RootLegit: func(x int) bool { return true }}
}

func TestValidate(t *testing.T) {
	if err := (&Spec{}).Validate(); err == nil {
		t.Fatal("empty spec must fail")
	}
	badWindow := core.MustNew(core.Config{
		Name: "w", Domain: 2, Lo: -1, Hi: 1,
		Legit: func(v core.View) bool { return true },
	})
	if err := (&Spec{Rep: badWindow, RootLegit: func(int) bool { return true }}).Validate(); err == nil {
		t.Fatal("window [-1,1] must fail")
	}
	s := treeColoring(t, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.RootActions = []core.Action{{Name: "broken"}}
	if err := s.Validate(); err == nil {
		t.Fatal("nil-guard root action must fail")
	}
}

// 2-coloring stabilizes on ALL trees — impossible on unidirectional rings.
func TestTwoColoringStabilizesOnAllTrees(t *testing.T) {
	s := treeColoring(t, 2)
	ok, rep, err := s.StabilizingForAllTrees()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !rep.Free {
		t.Fatalf("tree 2-coloring must stabilize for all trees: %+v", rep)
	}
	// Cross-validate on chains of several lengths.
	for n := 1; n <= 6; n++ {
		c, err := NewChain(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if !c.StronglyConverges() {
			t.Fatalf("chain n=%d does not converge", n)
		}
	}
}

func TestThreeColoringStabilizesOnAllTrees(t *testing.T) {
	s := treeColoring(t, 3)
	ok, _, err := s.StabilizingForAllTrees()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tree 3-coloring must stabilize")
	}
}

func TestAgreementStabilizesOnAllTrees(t *testing.T) {
	s := treeAgreement(t)
	ok, _, err := s.StabilizingForAllTrees()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tree agreement must stabilize")
	}
	for n := 2; n <= 6; n++ {
		c, err := NewChain(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if !c.StronglyConverges() {
			t.Fatalf("chain n=%d does not converge", n)
		}
	}
}

func TestEmptyProtocolHasPathWitness(t *testing.T) {
	rep := core.MustNew(core.Config{
		Name: "empty", Domain: 2, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0] != v[1] },
	})
	s := &Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	dl, err := s.CheckDeadlockFreedom()
	if err != nil {
		t.Fatal(err)
	}
	if dl.Free {
		t.Fatal("empty coloring must deadlock on some tree")
	}
	if dl.PathWitness == nil {
		t.Fatalf("expected a path witness, got %+v", dl)
	}
	// Validate the witness chain explicitly.
	c, err := NewChain(s, len(dl.PathWitness))
	if err != nil {
		t.Fatal(err)
	}
	id := c.Encode(dl.PathWitness)
	if !c.IsDeadlock(id) || c.InI(id) {
		t.Fatalf("witness %v is not an illegitimate global deadlock", dl.PathWitness)
	}
}

func TestRootWitness(t *testing.T) {
	rep := core.MustNew(core.Config{
		Name: "rootbad", Domain: 2, Lo: -1, Hi: 0,
		Actions: []core.Action{{
			Name:  "fix",
			Guard: func(v core.View) bool { return v[0] == v[1] },
			Next:  func(v core.View) []int { return []int{1 - v[1]} },
		}},
		Legit: func(v core.View) bool { return v[0] != v[1] },
	})
	// Root with no actions and RootLegit false at value 1: the root alone
	// is an illegitimate deadlocked tree.
	s := &Spec{Rep: rep, RootLegit: func(x int) bool { return x == 0 }}
	dl, err := s.CheckDeadlockFreedom()
	if err != nil {
		t.Fatal(err)
	}
	if dl.Free || dl.RootWitness == nil || *dl.RootWitness != 1 {
		t.Fatalf("expected root witness 1, got %+v", dl)
	}
}

func TestLivelockFreedomRejectsSelfEnabling(t *testing.T) {
	rep := core.MustNew(core.Config{
		Name: "selfen", Domain: 2, Lo: -1, Hi: 0,
		Actions: []core.Action{{
			Name:  "flip",
			Guard: func(v core.View) bool { return true },
			Next:  func(v core.View) []int { return []int{1 - v[1]} },
		}},
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	s := &Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	if _, err := s.CheckLivelockFreedom(); err == nil {
		t.Fatal("self-enabling rep must be rejected")
	}
}

func TestLivelockFreedomRejectsSelfEnablingRoot(t *testing.T) {
	s := treeColoring(t, 2)
	s.RootActions = []core.Action{{
		Name:  "spin",
		Guard: func(v core.View) bool { return true },
		Next:  func(v core.View) []int { return []int{1 - v[0]} },
	}}
	if _, err := s.CheckLivelockFreedom(); err == nil {
		t.Fatal("self-enabling root must be rejected")
	}
}

func TestRootTransitionsAndContinuationGraph(t *testing.T) {
	s := treeColoring(t, 2)
	s.RootActions = []core.Action{{
		Name:  "toZero",
		Guard: func(v core.View) bool { return v[0] == 1 },
		Next:  func(v core.View) []int { return []int{0} },
	}}
	ts := s.RootTransitions()
	if len(ts) != 1 || ts[0].Src != 1 || ts[0].Dst != 0 {
		t.Fatalf("root transitions = %v", ts)
	}
	g := s.ContinuationGraph()
	// (p,x) -> (x,y): 4 states, each with 2 children states = 8 arcs.
	if g.M() != 8 {
		t.Fatalf("continuation arcs = %d, want 8", g.M())
	}
}

func TestChainValidation(t *testing.T) {
	s := treeColoring(t, 2)
	if _, err := NewChain(s, 0); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := NewChain(s, 40); err == nil {
		t.Fatal("oversized chain must fail")
	}
	c, err := NewChain(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 8 {
		t.Fatalf("NumStates = %d", c.NumStates())
	}
	for id := uint64(0); id < c.NumStates(); id++ {
		if got := c.Encode(c.Decode(id)); got != id {
			t.Fatalf("roundtrip %d -> %d", id, got)
		}
	}
}

// Property: the all-trees deadlock verdict agrees with exhaustive chain
// checking (chains are complete witnesses for tree deadlocks).
func TestTreeDeadlockTheoremAgainstChainsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		d := 2 + rng.Intn(2)
		n := d * d
		legitBits := make([]bool, n)
		for i := range legitBits {
			legitBits[i] = rng.Intn(2) == 0
		}
		moves := map[core.LocalState][]int{}
		for st := 0; st < n; st++ {
			if rng.Intn(100) < 40 {
				moves[core.LocalState(st)] = []int{rng.Intn(d)}
			}
		}
		dd := d
		bits := legitBits
		rep, err := core.NewFromTable(core.Config{
			Name: "rnd", Domain: d, Lo: -1, Hi: 0,
			Legit: func(v core.View) bool { return bits[int(core.Encode(v, dd))] },
		}, []core.TableAction{{Name: "m", Moves: moves}})
		if err != nil {
			t.Fatal(err)
		}
		rootLegitVal := rng.Intn(d)
		s := &Spec{Rep: rep, RootLegit: func(x int) bool { return x != rootLegitVal }}
		dl, err := s.CheckDeadlockFreedom()
		if err != nil {
			t.Fatal(err)
		}
		chainHasDeadlock := false
		maxLen := n + 1
		for cn := 1; cn <= maxLen; cn++ {
			c, err := NewChain(s, cn)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.IllegitimateDeadlocks()) > 0 {
				chainHasDeadlock = true
				break
			}
		}
		if dl.Free == chainHasDeadlock {
			t.Fatalf("trial %d: tree verdict free=%v but chain deadlock=%v", trial, dl.Free, chainHasDeadlock)
		}
	}
}

// Property: self-disabling tree protocols never livelock on chains (the
// depth-induction theorem, checked empirically).
func TestSelfDisablingTreesNeverLivelockRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 80; trial++ {
		d := 2 + rng.Intn(2)
		// Self-disabling generator: per parent value, movers write terminals.
		moves := map[core.LocalState][]int{}
		for p := 0; p < d; p++ {
			terminal := make([]bool, d)
			var terms []int
			for v := 0; v < d; v++ {
				if rng.Intn(2) == 0 {
					terminal[v] = true
					terms = append(terms, v)
				}
			}
			if len(terms) == 0 {
				continue
			}
			for own := 0; own < d; own++ {
				if terminal[own] || rng.Intn(100) >= 70 {
					continue
				}
				moves[core.Encode(core.View{p, own}, d)] = []int{terms[rng.Intn(len(terms))]}
			}
		}
		dd := d
		rep, err := core.NewFromTable(core.Config{
			Name: "rnd", Domain: d, Lo: -1, Hi: 0,
			Legit: func(v core.View) bool { return int(core.Encode(v, dd))%2 == 0 },
		}, []core.TableAction{{Name: "m", Moves: moves}})
		if err != nil {
			t.Fatal(err)
		}
		s := &Spec{Rep: rep, RootLegit: func(int) bool { return true }}
		free, err := s.CheckLivelockFreedom()
		if err != nil || !free {
			t.Fatalf("trial %d: self-disabling spec rejected: %v", trial, err)
		}
		for cn := 2; cn <= 5; cn++ {
			c, err := NewChain(s, cn)
			if err != nil {
				t.Fatal(err)
			}
			if c.HasLivelock() {
				t.Fatalf("trial %d: chain n=%d livelocks despite self-disablement", trial, cn)
			}
		}
	}
}

func TestSynthesizeTreeColoring(t *testing.T) {
	// Action-free 2-coloring on trees: synthesis must produce a stabilizing
	// spec (the ring version is impossible — Figure 11).
	rep := core.MustNew(core.Config{
		Name: "tree-coloring-base", Domain: 2, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0] != v[1] },
	})
	s := &Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	res, err := Synthesize(s, "conv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 2 {
		t.Fatalf("chosen = %v, want the two illegitimate deadlocks (0,0) and (1,1) resolved", res.Chosen)
	}
	for n := 1; n <= 6; n++ {
		c, err := NewChain(res.Spec, n)
		if err != nil {
			t.Fatal(err)
		}
		if !c.StronglyConverges() {
			t.Fatalf("synthesized tree coloring fails on chain n=%d", n)
		}
	}
}

func TestSynthesizeTreeAgreementWithRootRepair(t *testing.T) {
	// Agreement to the value 0: LC is x_parent == x_self, root legitimate
	// only at 0. The root deadlocks everywhere (no actions), so value 1 is
	// an illegitimate root deadlock needing repair.
	rep := core.MustNew(core.Config{
		Name: "tree-agree0", Domain: 2, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	s := &Spec{Rep: rep, RootLegit: func(x int) bool { return x == 0 }}
	res, err := Synthesize(s, "conv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RootChosen) != 1 || res.RootChosen[0] != [2]int{1, 0} {
		t.Fatalf("root repair = %v, want [[1 0]]", res.RootChosen)
	}
	for n := 1; n <= 6; n++ {
		c, err := NewChain(res.Spec, n)
		if err != nil {
			t.Fatal(err)
		}
		if !c.StronglyConverges() {
			t.Fatalf("chain n=%d fails", n)
		}
	}
}

func TestSynthesizeTreeNoEscapeFails(t *testing.T) {
	// Domain 2 with LC false everywhere below parent value 0: both (0,0)
	// and (0,1) are illegitimate deadlocks, so neither can serve as the
	// other's self-disabling escape.
	rep := core.MustNew(core.Config{
		Name: "tree-stuck", Domain: 2, Lo: -1, Hi: 0,
		Legit: func(v core.View) bool { return v[0] == 1 },
	})
	s := &Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	if _, err := Synthesize(s, "conv"); err == nil {
		t.Fatal("expected failure: no self-disabling escape exists")
	}
}

func TestSynthesizeRejectsSelfEnablingBase(t *testing.T) {
	rep := core.MustNew(core.Config{
		Name: "tree-selfen", Domain: 2, Lo: -1, Hi: 0,
		Actions: []core.Action{{
			Name:  "flip",
			Guard: func(v core.View) bool { return true },
			Next:  func(v core.View) []int { return []int{1 - v[1]} },
		}},
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	s := &Spec{Rep: rep, RootLegit: func(int) bool { return true }}
	if _, err := Synthesize(s, "conv"); err == nil {
		t.Fatal("expected rejection of self-enabling base")
	}
}
