package verify

import (
	"math"
	"strings"
	"testing"

	"paramring/internal/explicit"
	"paramring/internal/protocols"
)

// TestEstimatePeakTableBytes pins the admission figure's contract: zero
// when the options request no explicit work, conservative (>= the actual
// observed peak) when they do, and saturating instead of overflowing.
func TestEstimatePeakTableBytes(t *testing.T) {
	p := protocols.All()["agreement"]

	if got := EstimatePeakTableBytes(p, Options{}); got != 0 {
		t.Fatalf("no explicit work must estimate 0 bytes, got %d", got)
	}
	if got := EstimatePeakTableBytes(p, Options{ConfirmMaxK: 9}); got != 0 {
		t.Fatalf("witness confirmation alone must estimate 0 bytes, got %d", got)
	}
	// The invariant lane is symbolic — a theorem+invariant-only run holds no
	// explicit tables whatever the ring size it certifies, so admission
	// control must wave it through even under a tiny memory budget.
	if got := EstimatePeakTableBytes(p, Options{Invariant: true}); got != 0 {
		t.Fatalf("invariant-only run must estimate 0 bytes, got %d", got)
	}

	opts := Options{CrossValidateMaxK: 6}
	est := EstimatePeakTableBytes(p, opts)
	if est == 0 {
		t.Fatal("cross-validation must estimate nonzero table bytes")
	}
	rep, err := Check(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExplicitPeakTableBytes == 0 || rep.ExplicitPeakTableBytes > est {
		t.Fatalf("estimate %d must bound the observed peak %d", est, rep.ExplicitPeakTableBytes)
	}
	// The estimate sums the per-K tables (they can be concurrently
	// resident), so the largest single table alone must also fit under it.
	states, _ := explicit.EstimateStates(p.Domain(), opts.CrossValidateMaxK)
	if largest := explicit.EstimateTableBytes(states); est < largest {
		t.Fatalf("estimate %d below the largest single table %d", est, largest)
	}

	// An overflowing shape saturates.
	if got := EstimatePeakTableBytes(p, Options{CrossValidateMaxK: 70}); got != math.MaxUint64 {
		t.Fatalf("overflowing estimate = %d, want MaxUint64", got)
	}
}

// TestMaxStatesClampsExplicitWork: a MaxStates below the largest requested
// ring size fails the run with the engine's one-line guard error — the
// degraded-mode behavior admission control relies on instead of an OOM.
func TestMaxStatesClampsExplicitWork(t *testing.T) {
	p := protocols.All()["agreement"] // domain 2: K=6 is 64 states
	_, err := Check(p, Options{CrossValidateMaxK: 6, MaxStates: 32, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit 32") {
		t.Fatalf("clamped run error = %v, want state-guard violation", err)
	}
	// A clamp that still fits every requested K changes nothing.
	rep, err := Check(p, Options{CrossValidateMaxK: 4, MaxStates: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Check(p, Options{CrossValidateMaxK: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary() != ref.Summary() {
		t.Fatalf("clamped summary %q != reference %q", rep.Summary(), ref.Summary())
	}
}
