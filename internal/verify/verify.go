// Package verify is the one-call verification facade: it composes the
// paper's local theorems (rcg, ltg), witness confirmation, and optional
// bounded explicit cross-validation into a single structured report — the
// API a downstream user reaches for first.
//
// The package also owns SpecCache, the compiled-spec cache that memoizes
// the DSL front end (parse + validate + compile to core.Protocol tables)
// keyed by the canonical dsl.Format rendering. The service layer mounts it
// in front of the job pipeline so repeat submissions and batch sweeps of
// the same protocol skip the front end entirely; see PERFORMANCE.md for
// the measured effect.
package verify

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/graph"
	"paramring/internal/invariant"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
)

// invariantAnalyze is the invariant-lane entry point. It is a variable so
// the disagreement-injection test can stand in a deliberately miscompiled
// analysis and assert that Check surfaces the conflict instead of silently
// preferring one lane.
var invariantAnalyze = invariant.Analyze

// Status is the overall verdict for a property across all ring sizes.
type Status int

const (
	// Proved: the property holds for EVERY ring size K.
	Proved Status = iota + 1
	// Refuted: a concrete counterexample exists (witness attached).
	Refuted
	// Inconclusive: the sufficient condition failed but no counterexample
	// was found within the search bound.
	Inconclusive
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Proved:
		return "proved"
	case Refuted:
		return "refuted"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes Protocol verification.
type Options struct {
	// ConfirmMaxK bounds the witness-confirmation search (default 7).
	ConfirmMaxK int
	// CrossValidateMaxK, when > 1, additionally model-checks every ring
	// size 2..CrossValidateMaxK exhaustively and reports disagreements
	// (they would indicate a bug, not a protocol property).
	CrossValidateMaxK int
	// Check tunes the Theorem 5.14 search.
	Check ltg.CheckOptions
	// BoundedFallbackMaxK, when > 1, resolves Inconclusive livelock
	// verdicts by exhaustive livelock search for every ring size up to the
	// bound: if none is found the verdict stays Inconclusive but
	// LivelockBoundedFreeK records the bound (useful for bidirectional
	// protocols, where Theorem 5.14 covers contiguous livelocks only).
	BoundedFallbackMaxK int
	// Workers sets the explicit-engine worker count used for
	// cross-validation and the bounded fallback, and fans the per-K
	// instances out concurrently (0 = runtime.GOMAXPROCS(0); 1 =
	// sequential). The report is identical for any worker count.
	Workers int
	// MaxStates, when > 0, overrides the explicit engine's state-count
	// guard (explicit.DefaultMaxStates) for every instance this run
	// builds. A resource governor (the service layer's memory admission
	// control) lowers it so an instance whose tables would not fit the
	// budget fails construction with a one-line error instead of OOMing;
	// it never changes any verdict that completes.
	MaxStates uint64
	// Invariant enables the trap/structural-invariant lane (package
	// invariant): a third verdict source, independent of both the
	// rcg/ltg theorems and the explicit engine, that works directly on
	// the local action tables — parameterized in K, never building a
	// per-K instance. Its conclusive verdicts ship a machine-checkable
	// Certificate that CheckCtx re-validates with the lane's independent
	// checker before comparing verdicts across lanes.
	Invariant bool
	// InvariantMaxStates, when > 0, overrides the invariant lane's
	// local-state guard (invariant.Options.MaxLocalStates). Like
	// MaxStates it is a resource governor, not a verdict knob.
	InvariantMaxStates int
}

// EstimatePeakTableBytes returns a pre-run upper bound on the resident
// explicit-engine table bytes a Check run with these options can hold at
// once: the per-K membership bitsets of every ring size the run may have
// concurrently in flight (cross-validation and the bounded fallback fan
// out across workers, so all of 2..maxK can be resident together). Zero
// means the options request no explicit work at all — the local theorems
// allocate per-local-state structures, not per-global-state tables, and
// the invariant lane (Options.Invariant) is equally symbolic, so a
// theorem+invariant-only run reports zero here and clears any admission
// ceiling regardless of ring size. The service layer gates job admission
// on this figure against a server-wide budget before any allocation
// happens.
func EstimatePeakTableBytes(p *core.Protocol, opts Options) uint64 {
	maxK := opts.CrossValidateMaxK
	if opts.BoundedFallbackMaxK > maxK {
		maxK = opts.BoundedFallbackMaxK
	}
	if maxK < 2 {
		return 0
	}
	var total uint64
	for k := 2; k <= maxK; k++ {
		states, ok := explicit.EstimateStates(p.Domain(), k)
		if !ok {
			return math.MaxUint64
		}
		b := explicit.EstimateTableBytes(states)
		if total > math.MaxUint64-b {
			return math.MaxUint64
		}
		total += b
	}
	return total
}

// Report is the combined verification outcome.
type Report struct {
	// Deadlock is the Theorem 4.2 verdict: Proved or Refuted (the theorem
	// is exact, so never Inconclusive).
	Deadlock Status
	// DeadlockDetail is the underlying RCG report (witness cycles etc.).
	DeadlockDetail rcg.DeadlockReport
	// DeadlockWitnessK, when Refuted, is the smallest witness ring size.
	DeadlockWitnessK int

	// Livelock is the Theorem 5.14 verdict: Proved (free for all K),
	// Refuted (trail confirmed as a real livelock), or Inconclusive
	// (trail found but not reconstructible within the bound). For
	// bidirectional rings a Proved verdict covers contiguous livelocks
	// only (see ContiguousOnly).
	Livelock Status
	// LivelockDetail is the underlying LTG report.
	LivelockDetail ltg.Report
	// LivelockWitnessK, when Refuted, is the confirmed livelock's ring size.
	LivelockWitnessK int
	// ContiguousOnly mirrors ltg.Report.ContiguousOnly.
	ContiguousOnly bool
	// LivelockSkipped is set (with the reason) when the protocol violates
	// Assumption 2 and Theorem 5.14 does not apply.
	LivelockSkipped string
	// LivelockBoundedFreeK, when > 0, records that exhaustive search found
	// no livelock for any ring size 2..LivelockBoundedFreeK (set only for
	// Inconclusive verdicts with Options.BoundedFallbackMaxK).
	LivelockBoundedFreeK int
	// LivelockTheorem preserves Theorem 5.14's own verdict before any
	// invariant-lane merge or bounded-fallback refutation touches
	// Livelock, so per-lane renderings can show each lane's original
	// answer side by side.
	LivelockTheorem Status

	// Invariant is true when the invariant lane ran to completion (see
	// Options.Invariant); InvariantSkipped carries the reason when it was
	// requested but did not run.
	Invariant bool
	// InvariantDeadlock / InvariantLivelock / InvariantClosure are the
	// lane's per-property verdicts, mapped onto the shared Status scale
	// (invariant.Holds -> Proved, Fails -> Refuted, Unknown ->
	// Inconclusive). They are comparison inputs: CheckCtx never silently
	// overwrites a theorem verdict with them — conclusive conflicts land
	// in Disagreements with both lanes rendered side by side.
	InvariantDeadlock Status
	InvariantLivelock Status
	InvariantClosure  Status
	// InvariantSkipped is set (with the reason) when Options.Invariant was
	// requested but the lane could not run (e.g. the local-state guard).
	InvariantSkipped string
	// InvariantCount is the number of invariants in the certified set.
	InvariantCount int
	// InvariantCertBytes is the canonical certificate's encoded size.
	InvariantCertBytes int
	// InvariantDetail is the lane's full report, certificate included.
	InvariantDetail *invariant.Report
	// LivelockProvedByInvariant records that the all-K, all-pattern
	// livelock-freedom proof came from the invariant lane where Theorem
	// 5.14 was inconclusive, skipped, or contiguous-only.
	LivelockProvedByInvariant bool

	// SelfStabilizing is true when both properties are Proved on a
	// unidirectional ring: the protocol strongly stabilizes for every K
	// (Proposition 2.1, given closure).
	SelfStabilizing bool

	// CrossValidated lists the ring sizes checked exhaustively; any
	// disagreement panics in tests and is reported here otherwise.
	CrossValidated []int
	// Disagreements lists cross-validation conflicts (always empty unless
	// an implementation bug exists).
	Disagreements []string

	// ExplicitStates totals the global states enumerated by the explicit
	// engine across cross-validation and the bounded fallback (0 when the
	// verdict came from local reasoning alone). The service layer exports
	// it as a work metric: a cached verdict re-served must add zero here.
	ExplicitStates uint64
	// ExplicitPeakTableBytes is the largest resident per-state table held
	// by any single explicit instance during the run (see
	// explicit.Instance.TableBytes) — with the packed bitset substrate this
	// is one bit per global state. The service layer exports it as the
	// memory-per-verification gauge.
	ExplicitPeakTableBytes uint64
}

// Protocol runs the full local-reasoning verification pipeline. It is
// equivalent to Check and kept under the historical name.
func Protocol(p *core.Protocol, opts Options) (*Report, error) {
	return CheckCtx(context.Background(), p, opts)
}

// Check runs the full local-reasoning verification pipeline.
func Check(p *core.Protocol, opts Options) (*Report, error) {
	return CheckCtx(context.Background(), p, opts)
}

// CheckCtx is Check with cooperative cancellation: ctx is polled at phase
// boundaries and threaded into every explicit-engine call (instance
// construction, state scans, Tarjan), so a deadline or cancel aborts the
// pipeline with ctx.Err() instead of running the state spaces to completion.
func CheckCtx(ctx context.Context, p *core.Protocol, opts Options) (*Report, error) {
	if opts.ConfirmMaxK <= 0 {
		opts.ConfirmMaxK = 7
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{}
	sys := p.Compile()
	instOpts := func(workers int) []explicit.Option {
		o := []explicit.Option{explicit.WithWorkers(workers)}
		if opts.MaxStates > 0 {
			o = append(o, explicit.WithMaxStates(opts.MaxStates))
		}
		return o
	}
	var explicitStates, explicitPeak atomic.Uint64
	notePeak := func(in *explicit.Instance) {
		for {
			cur := explicitPeak.Load()
			if in.TableBytes() <= cur || explicitPeak.CompareAndSwap(cur, in.TableBytes()) {
				return
			}
		}
	}

	// Theorem 4.2. A modest witness cap keeps dense deadlock graphs (e.g.
	// action-free protocols, where every local state is a deadlock) cheap:
	// the Free verdict is SCC-based and remains valid when witness
	// enumeration hits the limit.
	r := rcg.Build(sys)
	dl, err := r.CheckDeadlockFreedom(256)
	if err != nil && !errors.Is(err, graph.ErrCycleLimit) {
		return nil, fmt.Errorf("verify: %w", err)
	}
	rep.DeadlockDetail = dl
	if dl.Free {
		rep.Deadlock = Proved
	} else {
		rep.Deadlock = Refuted
		rep.DeadlockWitnessK = smallestWitness(dl)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Theorem 5.14.
	ll, err := ltg.CheckLivelockFreedom(p, opts.Check)
	if err != nil {
		rep.LivelockSkipped = err.Error()
		rep.Livelock = Inconclusive
	} else {
		rep.LivelockDetail = ll
		rep.ContiguousOnly = ll.ContiguousOnly
		switch ll.Verdict {
		case ltg.VerdictFree:
			rep.Livelock = Proved
		case ltg.VerdictPotentialLivelock:
			conf, err := ltg.ConfirmWitness(p, ll.Witness, opts.ConfirmMaxK)
			if err != nil {
				return nil, fmt.Errorf("verify: %w", err)
			}
			if conf.Confirmed {
				rep.Livelock = Refuted
				rep.LivelockWitnessK = conf.K
			} else {
				rep.Livelock = Inconclusive
			}
		default:
			rep.Livelock = Inconclusive
		}
	}

	// Invariant lane: an independent symbolic backend (value traps, the
	// deadlock-continuation ranking, and a termination potential) computed
	// straight from the local action tables, parameterized in K. It runs
	// after the theorems so conclusive-vs-conclusive conflicts — which
	// would indicate a tool bug, not a protocol property — can be surfaced
	// immediately, and before the bounded fallback so a lane-proved
	// livelock verdict skips the explicit search entirely.
	theoremLivelock := rep.Livelock
	rep.LivelockTheorem = theoremLivelock
	if opts.Invariant {
		irep, err := invariantAnalyze(ctx, p, invariant.Options{MaxLocalStates: opts.InvariantMaxStates})
		switch {
		case err != nil && ctx.Err() != nil:
			return nil, ctx.Err()
		case err != nil:
			rep.InvariantSkipped = err.Error()
			rep.InvariantDeadlock = Inconclusive
			rep.InvariantLivelock = Inconclusive
			rep.InvariantClosure = Inconclusive
		default:
			rep.Invariant = true
			rep.InvariantDetail = irep
			rep.InvariantDeadlock = verdictStatus(irep.Deadlock)
			rep.InvariantLivelock = verdictStatus(irep.Livelock)
			rep.InvariantClosure = verdictStatus(irep.Closure)
			rep.InvariantCount = irep.InvariantCount
			// Trust nothing the lane claims until its certificate survives
			// the independent checker; a failed re-check is a tool-bug
			// diagnostic and demotes every lane verdict to Inconclusive.
			if irep.Certificate == nil {
				rep.Disagreements = append(rep.Disagreements,
					"invariant lane: report carries no certificate")
				rep.InvariantDeadlock = Inconclusive
				rep.InvariantLivelock = Inconclusive
				rep.InvariantClosure = Inconclusive
			} else {
				rep.InvariantCertBytes = irep.Certificate.Size()
				if cerr := invariant.CheckCertificate(p, irep.Certificate); cerr != nil {
					rep.Disagreements = append(rep.Disagreements,
						fmt.Sprintf("invariant lane: certificate failed independent re-check: %v", cerr))
					rep.InvariantDeadlock = Inconclusive
					rep.InvariantLivelock = Inconclusive
					rep.InvariantClosure = Inconclusive
				}
			}
		}
		// Lane-vs-theorem comparison. Both deadlock lanes are exact, so any
		// difference is a bug; the theorem verdict is kept (never silently
		// replaced) and the conflict is reported with both lanes side by
		// side.
		if rep.InvariantDeadlock != Inconclusive && rep.InvariantDeadlock != rep.Deadlock {
			rep.Disagreements = append(rep.Disagreements, fmt.Sprintf(
				"deadlock-freedom: Theorem 4.2 says %v, invariant lane says %v", rep.Deadlock, rep.InvariantDeadlock))
		}
		if rep.InvariantLivelock != Inconclusive && theoremLivelock != Inconclusive &&
			rep.InvariantLivelock != theoremLivelock {
			rep.Disagreements = append(rep.Disagreements, fmt.Sprintf(
				"livelock-freedom: Theorem 5.14 says %v, invariant lane says %v", theoremLivelock, rep.InvariantLivelock))
		}
		// Where the theorems are silent the certified lane verdict settles
		// the property — this is the lane's reason to exist: matchingA/B and
		// MIS are Proved here and nowhere else in the repo.
		if theoremLivelock == Inconclusive && len(rep.Disagreements) == 0 {
			switch rep.InvariantLivelock {
			case Proved:
				rep.Livelock = Proved
				rep.LivelockProvedByInvariant = true
			case Refuted:
				rep.Livelock = Refuted
				rep.LivelockWitnessK = rep.InvariantDetail.LivelockWitnessK
			}
		}
		// A theorem-Proved verdict that covers contiguous livelocks only is
		// completed to all interleavings by the lane's termination argument.
		if theoremLivelock == Proved && rep.ContiguousOnly && rep.InvariantLivelock == Proved {
			rep.LivelockProvedByInvariant = true
		}
	}

	// Bounded fallback for inconclusive livelock verdicts: every ring size
	// in [2, bound] is searched (fanned out across workers — the smallest
	// livelocking K wins the merge, so the verdict matches the sequential
	// ascending search).
	if rep.Livelock == Inconclusive && opts.BoundedFallbackMaxK > 1 {
		found := make([]bool, opts.BoundedFallbackMaxK+1)
		err := perK(2, opts.BoundedFallbackMaxK, opts.Workers, func(k int) error {
			in, err := explicit.NewInstanceCtx(ctx, p, k, instOpts(opts.Workers)...)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return fmt.Errorf("verify: bounded fallback K=%d: %w", k, err)
			}
			cycle, err := in.FindLivelockCtx(ctx)
			if err != nil {
				return err
			}
			explicitStates.Add(in.NumStates())
			notePeak(in)
			found[k] = cycle != nil
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep.LivelockBoundedFreeK = opts.BoundedFallbackMaxK
		for k := 2; k <= opts.BoundedFallbackMaxK; k++ {
			if found[k] {
				rep.Livelock = Refuted
				rep.LivelockWitnessK = k
				rep.LivelockBoundedFreeK = 0
				break
			}
		}
	}

	rep.SelfStabilizing = rep.Deadlock == Proved && rep.Livelock == Proved &&
		((!rep.ContiguousOnly && rep.LivelockSkipped == "") || rep.LivelockProvedByInvariant)

	// Optional exhaustive cross-validation, fanned out per ring size;
	// disagreement messages are merged in K order so the report is
	// independent of scheduling.
	if opts.CrossValidateMaxK > 1 {
		msgs := make([][]string, opts.CrossValidateMaxK+1)
		err := perK(2, opts.CrossValidateMaxK, opts.Workers, func(k int) error {
			in, err := explicit.NewInstanceCtx(ctx, p, k, instOpts(opts.Workers)...)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return fmt.Errorf("verify: cross-validation K=%d: %w", k, err)
			}
			explicitStates.Add(in.NumStates())
			notePeak(in)
			hasDeadlock := len(in.IllegitimateDeadlocks()) > 0
			if hasDeadlock && rep.Deadlock == Proved {
				msgs[k] = append(msgs[k],
					fmt.Sprintf("K=%d: explicit deadlock contradicts Theorem 4.2 Proved", k))
			}
			if hasDeadlock && rep.InvariantDeadlock == Proved {
				msgs[k] = append(msgs[k],
					fmt.Sprintf("K=%d: explicit deadlock contradicts invariant-lane Holds", k))
			}
			if !hasDeadlock && rep.Deadlock == Refuted && containsK(dl, k) {
				msgs[k] = append(msgs[k],
					fmt.Sprintf("K=%d: Theorem 4.2 witness size not reproduced", k))
			}
			// A livelock search arbitrates every lane that claims freedom:
			// Theorem 5.14, the invariant lane, or both.
			if rep.Livelock == Proved || rep.InvariantLivelock == Proved {
				cycle, err := in.FindLivelockCtx(ctx)
				if err != nil {
					return err
				}
				if cycle != nil {
					if rep.Livelock == Proved && !rep.LivelockProvedByInvariant {
						msgs[k] = append(msgs[k],
							fmt.Sprintf("K=%d: explicit livelock contradicts Theorem 5.14 Proved", k))
					}
					if rep.InvariantLivelock == Proved {
						msgs[k] = append(msgs[k],
							fmt.Sprintf("K=%d: explicit livelock contradicts invariant-lane Holds", k))
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for k := 2; k <= opts.CrossValidateMaxK; k++ {
			rep.CrossValidated = append(rep.CrossValidated, k)
			rep.Disagreements = append(rep.Disagreements, msgs[k]...)
		}
	}
	// Any cross-lane conflict is a tool-bug condition: no headline claim
	// survives it, whatever the individual lanes said.
	if len(rep.Disagreements) > 0 {
		rep.SelfStabilizing = false
	}
	rep.ExplicitStates = explicitStates.Load()
	rep.ExplicitPeakTableBytes = explicitPeak.Load()
	return rep, nil
}

// verdictStatus maps the invariant lane's verdict scale onto the report's.
func verdictStatus(v invariant.Verdict) Status {
	switch v {
	case invariant.Holds:
		return Proved
	case invariant.Fails:
		return Refuted
	default:
		return Inconclusive
	}
}

// perK runs fn(k) for every k in [lo, hi] across at most workers
// goroutines, returning the error for the smallest failing k (matching
// what a sequential ascending loop would have surfaced first).
func perK(lo, hi, workers int, fn func(k int) error) error {
	if workers <= 1 || hi-lo < 1 {
		for k := lo; k <= hi; k++ {
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, hi+1)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for k := lo; k <= hi; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[k] = fn(k)
		}(k)
	}
	wg.Wait()
	for k := lo; k <= hi; k++ {
		if errs[k] != nil {
			return errs[k]
		}
	}
	return nil
}

// Summary renders a human-readable digest.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock-freedom (all K): %v", r.Deadlock)
	if r.Deadlock == Refuted {
		fmt.Fprintf(&b, " (witness ring size %d)", r.DeadlockWitnessK)
	}
	b.WriteString("; livelock-freedom")
	if r.ContiguousOnly {
		b.WriteString(" (contiguous only)")
	}
	fmt.Fprintf(&b, ": %v", r.Livelock)
	if r.Livelock == Refuted {
		fmt.Fprintf(&b, " (livelock at K=%d)", r.LivelockWitnessK)
	}
	if r.LivelockSkipped != "" {
		b.WriteString(" [Theorem 5.14 not applicable]")
	}
	if r.LivelockBoundedFreeK > 0 {
		fmt.Fprintf(&b, " (no livelock up to K=%d)", r.LivelockBoundedFreeK)
	}
	if r.LivelockProvedByInvariant {
		b.WriteString(" [proved by invariant lane]")
	}
	if r.Invariant {
		fmt.Fprintf(&b, "; invariant lane: deadlock %v, livelock %v, closure %v (%d invariants, certificate %d bytes)",
			r.InvariantDeadlock, r.InvariantLivelock, r.InvariantClosure,
			r.InvariantCount, r.InvariantCertBytes)
	}
	if r.InvariantSkipped != "" {
		fmt.Fprintf(&b, "; invariant lane skipped: %s", r.InvariantSkipped)
	}
	if r.SelfStabilizing {
		b.WriteString("; SELF-STABILIZING FOR EVERY K")
	}
	if len(r.Disagreements) > 0 {
		fmt.Fprintf(&b, "; DISAGREEMENTS: %v", r.Disagreements)
	}
	return b.String()
}

func smallestWitness(dl rcg.DeadlockReport) int {
	best := 0
	for _, c := range dl.BadCycles {
		if best == 0 || len(c) < best {
			best = len(c)
		}
	}
	if best == 1 {
		// Rings need at least two processes; a self-loop witness doubles.
		return 2
	}
	return best
}

func containsK(dl rcg.DeadlockReport, k int) bool {
	for _, c := range dl.BadCycles {
		if len(c) == k || (len(c) == 1 && k == 2) {
			return true
		}
	}
	return false
}
