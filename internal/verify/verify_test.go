package verify

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"paramring/internal/explicit"
	"paramring/internal/protocols"
	"paramring/internal/protogen"
)

func TestProtocolAgreementOneSided(t *testing.T) {
	rep, err := Protocol(protocols.AgreementOneSided("t01"), Options{CrossValidateMaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock != Proved || rep.Livelock != Proved {
		t.Fatalf("verdicts: %+v", rep)
	}
	if !rep.SelfStabilizing {
		t.Fatal("one-sided agreement is self-stabilizing for every K")
	}
	if len(rep.Disagreements) != 0 {
		t.Fatalf("disagreements: %v", rep.Disagreements)
	}
	if !strings.Contains(rep.Summary(), "SELF-STABILIZING") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestProtocolAgreementBothRefuted(t *testing.T) {
	rep, err := Protocol(protocols.AgreementBoth(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock != Proved {
		t.Fatal("agreement-both has no illegitimate deadlocks")
	}
	if rep.Livelock != Refuted {
		t.Fatalf("livelock verdict %v, want refuted (the trail is real)", rep.Livelock)
	}
	if rep.LivelockWitnessK < 2 {
		t.Fatalf("witness K = %d", rep.LivelockWitnessK)
	}
	if rep.SelfStabilizing {
		t.Fatal("must not claim stabilization")
	}
}

func TestProtocolMatchingBDeadlockRefuted(t *testing.T) {
	rep, err := Protocol(protocols.MatchingB(), Options{CrossValidateMaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock != Refuted || rep.DeadlockWitnessK != 4 {
		t.Fatalf("deadlock: %v witnessK=%d", rep.Deadlock, rep.DeadlockWitnessK)
	}
	if rep.LivelockSkipped == "" {
		t.Fatal("matchingB is self-enabling: Theorem 5.14 must be reported inapplicable")
	}
	if len(rep.Disagreements) != 0 {
		t.Fatalf("disagreements: %v", rep.Disagreements)
	}
	if !strings.Contains(rep.Summary(), "witness ring size 4") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestProtocolSumNotTwoSpuriousInconclusiveVsAcceptedProved(t *testing.T) {
	// The accepted solution proves clean.
	rep, err := Protocol(protocols.SumNotTwoSolution(), Options{CrossValidateMaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SelfStabilizing {
		t.Fatalf("sum-not-two solution must verify: %s", rep.Summary())
	}
}

func TestProtocolMISContiguousOnly(t *testing.T) {
	rep, err := Protocol(protocols.MaxIndependentSet(), Options{CrossValidateMaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlock != Proved || rep.Livelock != Proved {
		t.Fatalf("verdicts: %s", rep.Summary())
	}
	if !rep.ContiguousOnly {
		t.Fatal("MIS is bidirectional: ContiguousOnly must be set")
	}
	if rep.SelfStabilizing {
		t.Fatal("bidirectional Proved covers contiguous livelocks only; the facade must not over-claim")
	}
}

func TestStatusString(t *testing.T) {
	if Proved.String() != "proved" || Refuted.String() != "refuted" || Inconclusive.String() != "inconclusive" {
		t.Fatal("status strings")
	}
	if Status(42).String() == "" {
		t.Fatal("unknown status renders")
	}
}

// The facade must never over-claim: whenever it reports SelfStabilizing,
// exhaustive checking at sampled ring sizes must agree.
func TestProtocolNeverOverClaimsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	claimed := 0
	for trial := 0; trial < 250; trial++ {
		p := protogen.Random(rng, protogen.Options{SelfDisabling: true, MovePercent: 60})
		rep, err := Protocol(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.SelfStabilizing {
			continue
		}
		claimed++
		for k := 2; k <= 6; k++ {
			in, err := explicit.NewInstance(p, k)
			if err != nil {
				t.Fatal(err)
			}
			cr := in.CheckStrongConvergence()
			if !cr.Converges {
				t.Fatalf("trial %d: facade claims stabilization but K=%d fails: %+v", trial, k, cr)
			}
		}
	}
	if claimed < 15 {
		t.Fatalf("too few stabilization claims to be meaningful: %d", claimed)
	}
}

func TestBoundedFallbackResolvesMatchingA(t *testing.T) {
	// matchingA's Theorem 5.14 check is inconclusive (bidirectional, 18
	// t-arcs); the bounded fallback certifies livelock-freedom up to K=6.
	rep, err := Protocol(protocols.MatchingA(), Options{BoundedFallbackMaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Livelock != Inconclusive || rep.LivelockBoundedFreeK != 6 {
		t.Fatalf("livelock=%v boundedFreeK=%d", rep.Livelock, rep.LivelockBoundedFreeK)
	}
	if !strings.Contains(rep.Summary(), "no livelock up to K=6") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestBoundedFallbackRefutesMatchingBStyleLivelock(t *testing.T) {
	// matchingB is self-enabling (Theorem 5.14 inapplicable); Gouda-Acharya
	// has an unconfirmed... actually confirmed witness. Use a bidirectional
	// livelocking fixture: the coloring2 resolution livelocks at K=4, but
	// it is unidirectional and gets Refuted via ConfirmWitness already.
	// matchingB exercises the LivelockSkipped + fallback path:
	rep, err := Protocol(protocols.MatchingB(), Options{BoundedFallbackMaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LivelockSkipped == "" {
		t.Fatal("matchingB must report Theorem 5.14 inapplicable")
	}
	// No livelock exists for matchingB at K<=5 (its failures are deadlocks).
	if rep.LivelockBoundedFreeK != 5 {
		t.Fatalf("boundedFreeK=%d", rep.LivelockBoundedFreeK)
	}
}

// TestWorkersReportIdentical is the facade half of the determinism
// contract: the full report — verdicts, witness sizes, cross-validation
// messages, bounded-fallback results — must be byte-identical whether the
// explicit engine runs sequentially or fanned out.
func TestWorkersReportIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"agreement-one-sided", Options{CrossValidateMaxK: 6}},
		{"matchingA", Options{BoundedFallbackMaxK: 6}},
		{"matchingB", Options{CrossValidateMaxK: 5, BoundedFallbackMaxK: 5}},
		{"gouda-acharya", Options{CrossValidateMaxK: 6}},
	} {
		p := protocols.All()[tc.name]
		if p == nil {
			switch tc.name {
			case "agreement-one-sided":
				p = protocols.AgreementOneSided("t01")
			case "matchingA":
				p = protocols.MatchingA()
			case "matchingB":
				p = protocols.MatchingB()
			case "gouda-acharya":
				p = protocols.GoudaAcharya()
			}
		}
		seqOpts := tc.opts
		seqOpts.Workers = 1
		seq, err := Protocol(p, seqOpts)
		if err != nil {
			t.Fatalf("%s seq: %v", tc.name, err)
		}
		parOpts := tc.opts
		parOpts.Workers = 4
		par, err := Protocol(p, parOpts)
		if err != nil {
			t.Fatalf("%s par: %v", tc.name, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: report diverged\nseq: %+v\npar: %+v", tc.name, seq, par)
		}
	}
}
