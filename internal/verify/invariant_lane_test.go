package verify

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/invariant"
	"paramring/internal/protocols"
)

// TestInvariantLaneProvesMatchingA is the lane's reason to exist: matchingA
// is bidirectional with 18 t-arcs, so Theorem 5.14 is inconclusive and only
// a bounded explicit search was available before. The invariant lane's
// termination potential settles livelock-freedom for EVERY K, with a
// certificate, and the explicit engine arbitrates at small sizes.
func TestInvariantLaneProvesMatchingA(t *testing.T) {
	rep, err := Protocol(protocols.MatchingA(), Options{Invariant: true, CrossValidateMaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Invariant || rep.InvariantSkipped != "" {
		t.Fatalf("lane did not run: %+v", rep)
	}
	if rep.InvariantLivelock != Proved || rep.Livelock != Proved {
		t.Fatalf("livelock: lane=%v overall=%v", rep.InvariantLivelock, rep.Livelock)
	}
	if !rep.LivelockProvedByInvariant {
		t.Fatal("provenance flag not set")
	}
	if !rep.SelfStabilizing {
		t.Fatalf("matchingA stabilizes for every K once the lane completes the proof: %s", rep.Summary())
	}
	if len(rep.Disagreements) != 0 {
		t.Fatalf("disagreements: %v", rep.Disagreements)
	}
	if rep.InvariantCertBytes <= 0 || rep.InvariantCount <= 0 {
		t.Fatalf("certificate stats missing: %+v", rep)
	}
	if rep.InvariantDetail == nil || rep.InvariantDetail.Certificate == nil {
		t.Fatal("detail/certificate missing")
	}
	if !strings.Contains(rep.Summary(), "proved by invariant lane") ||
		!strings.Contains(rep.Summary(), "invariant lane: deadlock proved") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

// TestInvariantLaneCompletesMIS: Theorem 5.14 proves MIS contiguous-only;
// the lane's all-interleaving termination argument completes it, flipping
// the facade's SelfStabilizing headline that TestProtocolMISContiguousOnly
// pins to false without the lane.
func TestInvariantLaneCompletesMIS(t *testing.T) {
	rep, err := Protocol(protocols.MaxIndependentSet(), Options{Invariant: true, CrossValidateMaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContiguousOnly || rep.Livelock != Proved {
		t.Fatalf("theorem side changed: %s", rep.Summary())
	}
	if rep.InvariantLivelock != Proved || !rep.LivelockProvedByInvariant {
		t.Fatalf("lane: %v proved-by=%v", rep.InvariantLivelock, rep.LivelockProvedByInvariant)
	}
	if !rep.SelfStabilizing {
		t.Fatalf("contiguous-only gap closed by the lane, SelfStabilizing must hold: %s", rep.Summary())
	}
	if len(rep.Disagreements) != 0 {
		t.Fatalf("disagreements: %v", rep.Disagreements)
	}
}

// TestInvariantLaneAgreesAcrossZoo runs every zoo protocol with the lane
// and explicit cross-validation on: wherever two lanes are both conclusive
// they must agree — any Disagreements entry is a tool bug by construction.
func TestInvariantLaneAgreesAcrossZoo(t *testing.T) {
	zoo := protocols.All()
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		rep, err := Protocol(zoo[name], Options{Invariant: true, CrossValidateMaxK: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Invariant {
			t.Errorf("%s: lane skipped: %s", name, rep.InvariantSkipped)
			continue
		}
		if len(rep.Disagreements) != 0 {
			t.Errorf("%s: lanes disagree: %v", name, rep.Disagreements)
		}
		if rep.InvariantDeadlock != rep.Deadlock {
			t.Errorf("%s: deadlock lane=%v theorem=%v (deadlock lanes are both exact)",
				name, rep.InvariantDeadlock, rep.Deadlock)
		}
	}
}

// TestInvariantLaneDisagreementInjection is the deliberate-miscompilation
// drill: the lane is swapped for a broken stand-in and verify.Check must
// surface the conflict as a tool-bug diagnostic — never silently prefer
// either lane's verdict.
func TestInvariantLaneDisagreementInjection(t *testing.T) {
	orig := invariantAnalyze
	defer func() { invariantAnalyze = orig }()

	t.Run("miscompiled fixture fails certificate re-check", func(t *testing.T) {
		// The lane analyzes a different protocol than the rest of the
		// pipeline — the classic miscompiled-front-end failure mode. The
		// certificate cannot re-validate against the real protocol.
		invariantAnalyze = func(ctx context.Context, _ *core.Protocol, o invariant.Options) (*invariant.Report, error) {
			return invariant.Analyze(ctx, protocols.All()["matching"], o)
		}
		rep, err := Protocol(protocols.SumNotTwoSolution(), Options{Invariant: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Disagreements) == 0 {
			t.Fatal("mismatched certificate accepted silently")
		}
		if !strings.Contains(rep.Disagreements[0], "certificate failed independent re-check") {
			t.Fatalf("diagnostic: %v", rep.Disagreements)
		}
		if rep.InvariantDeadlock != Inconclusive || rep.InvariantLivelock != Inconclusive {
			t.Fatalf("unchecked lane verdicts survived: %+v", rep)
		}
		if rep.Deadlock != Proved || rep.Livelock != Proved {
			t.Fatalf("theorem verdicts must be untouched: %s", rep.Summary())
		}
		if rep.SelfStabilizing {
			t.Fatal("no headline claim may survive a lane conflict")
		}
	})

	t.Run("flipped verdict conflicts with Theorem 4.2", func(t *testing.T) {
		invariantAnalyze = func(ctx context.Context, p *core.Protocol, o invariant.Options) (*invariant.Report, error) {
			rep, err := invariant.Analyze(ctx, p, o)
			if err != nil {
				return nil, err
			}
			rep.Deadlock = invariant.Fails
			return rep, nil
		}
		rep, err := Protocol(protocols.SumNotTwoSolution(), Options{Invariant: true})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range rep.Disagreements {
			if strings.Contains(d, "Theorem 4.2 says proved, invariant lane says refuted") {
				found = true
			}
		}
		if !found {
			t.Fatalf("conflicting conclusive deadlock verdicts not rendered side by side: %v", rep.Disagreements)
		}
		if rep.Deadlock != Proved {
			t.Fatalf("theorem verdict silently replaced: %v", rep.Deadlock)
		}
		if rep.SelfStabilizing {
			t.Fatal("no headline claim may survive a lane conflict")
		}
	})

	t.Run("forged livelock Holds is caught by theorem and explicit engine", func(t *testing.T) {
		// agreement-both has a real livelock; forging a lane Holds must be
		// contradicted both by Theorem 5.14's confirmed witness and by the
		// explicit search during cross-validation.
		invariantAnalyze = func(ctx context.Context, p *core.Protocol, o invariant.Options) (*invariant.Report, error) {
			rep, err := invariant.Analyze(ctx, p, o)
			if err != nil {
				return nil, err
			}
			rep.Livelock = invariant.Holds
			return rep, nil
		}
		rep, err := Protocol(protocols.AgreementBoth(), Options{Invariant: true, CrossValidateMaxK: 5})
		if err != nil {
			t.Fatal(err)
		}
		var laneVsTheorem, laneVsExplicit bool
		for _, d := range rep.Disagreements {
			if strings.Contains(d, "Theorem 5.14 says refuted, invariant lane says proved") {
				laneVsTheorem = true
			}
			if strings.Contains(d, "explicit livelock contradicts invariant-lane Holds") {
				laneVsExplicit = true
			}
		}
		if !laneVsTheorem || !laneVsExplicit {
			t.Fatalf("forged Holds not fully arbitrated (theorem=%v explicit=%v): %v",
				laneVsTheorem, laneVsExplicit, rep.Disagreements)
		}
		if rep.Livelock != Refuted {
			t.Fatalf("forged lane verdict silently adopted: %v", rep.Livelock)
		}
	})
}

// TestInvariantLaneRefutesSmallRing: a protocol whose only livelock lives on
// the size-2 ring. The theorems are silent (bidirectional window), the lane
// refutes with a concrete certified witness, and the facade adopts it.
func TestInvariantLaneRefutesSmallRing(t *testing.T) {
	p := core.MustNew(core.Config{
		Name:   "flip-flop",
		Domain: 2,
		Lo:     -1,
		Hi:     1,
		Legit:  func(v core.View) bool { return v[1] == 0 },
		Actions: []core.Action{{
			Name:  "flip",
			Guard: func(v core.View) bool { return v[2] == 1 },
			Next:  func(v core.View) []int { return []int{1 - v[1]} },
		}},
	})
	rep, err := Protocol(p, Options{Invariant: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InvariantLivelock != Refuted {
		t.Fatalf("lane livelock = %v, want refuted", rep.InvariantLivelock)
	}
	if rep.Livelock != Refuted || rep.LivelockWitnessK != 2 {
		t.Fatalf("facade did not adopt the certified witness: %v K=%d", rep.Livelock, rep.LivelockWitnessK)
	}
	if len(rep.Disagreements) != 0 {
		t.Fatalf("disagreements: %v", rep.Disagreements)
	}
}

// TestInvariantLaneWorkersIdentical extends the determinism contract to the
// lane: reports and canonical certificates must be byte-identical whether
// the explicit side runs sequentially or fanned out.
func TestInvariantLaneWorkersIdentical(t *testing.T) {
	for _, name := range []string{"matchingA", "mis", "agreement-both"} {
		p := protocols.All()[name]
		run := func(workers int) *Report {
			rep, err := Protocol(p, Options{Invariant: true, CrossValidateMaxK: 4, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			return rep
		}
		seq, par := run(1), run(8)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: report diverged across worker counts\nseq: %+v\npar: %+v", name, seq, par)
		}
		if !bytes.Equal(seq.InvariantDetail.Certificate.Canon(), par.InvariantDetail.Certificate.Canon()) {
			t.Fatalf("%s: certificate bytes diverged across worker counts", name)
		}
	}
}

func TestInvariantLaneContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckCtx(ctx, protocols.MatchingA(), Options{Invariant: true}); err == nil {
		t.Fatal("cancelled context must abort the lane")
	}
}

// TestInvariantLaneGuard: the local-state governor skips the lane with a
// reason instead of failing the whole run.
func TestInvariantLaneGuard(t *testing.T) {
	rep, err := Protocol(protocols.MatchingA(), Options{Invariant: true, InvariantMaxStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invariant || rep.InvariantSkipped == "" {
		t.Fatalf("guard did not skip the lane: %+v", rep)
	}
	if rep.Deadlock != Proved {
		t.Fatalf("theorem lanes must still run: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "invariant lane skipped") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}
