package verify

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"paramring/internal/dsl"
)

const agreementSpec = `protocol agreement
domain 2
window -1 0
legit x[-1] == x[0]
action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1
`

// agreementVariants are textual renderings of the same protocol: extra
// comments, blank lines, whitespace, and redundant parentheses. All of them
// must canonicalize onto one cache entry.
var agreementVariants = []string{
	agreementSpec,
	"# a comment\nprotocol agreement\n\ndomain 2\nwindow -1 0\n" +
		"legit x[-1] == x[0]\naction t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1\n",
	"protocol   agreement\ndomain 2\nwindow -1   0\n" +
		"legit (x[-1] == x[0])\naction t01: (x[-1] == 1) && (x[0] == 0) -> x[0] := 1\n",
}

func TestSpecCacheHitSkipsCompile(t *testing.T) {
	c := NewSpecCache(8)
	cold, hit, err := c.Compile(agreementSpec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Compile must be a miss")
	}
	if cold.CompileNS <= 0 {
		t.Fatalf("cold compile must record its cost, got %d", cold.CompileNS)
	}
	warm, hit, err := c.Compile(agreementSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("byte-identical resubmission must hit")
	}
	if warm != cold {
		t.Fatal("hit must return the shared entry, not a recompile")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestSpecCacheKeyDoesNotFragmentOnFormatting(t *testing.T) {
	c := NewSpecCache(8)
	var first *CompiledSpec
	for i, src := range agreementVariants {
		cs, hit, err := c.Compile(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			first = cs
			continue
		}
		if !hit {
			t.Fatalf("variant %d recompiled: formatting fragmented the key", i)
		}
		if cs != first {
			t.Fatalf("variant %d got a distinct entry", i)
		}
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("cache holds %d entries for one protocol, want 1", got)
	}
}

// TestSpecCacheHitReportMatchesColdPath is the correctness contract: a
// verification run on a cache-hit Protocol must produce a byte-identical
// Report to one on a freshly compiled Protocol.
func TestSpecCacheHitReportMatchesColdPath(t *testing.T) {
	opts := Options{CrossValidateMaxK: 4, BoundedFallbackMaxK: 4}

	coldProto, err := dsl.Parse(agreementSpec)
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := Check(coldProto, opts)
	if err != nil {
		t.Fatal(err)
	}

	c := NewSpecCache(8)
	if _, _, err := c.Compile(agreementSpec); err != nil {
		t.Fatal(err)
	}
	cs, hit, err := c.Compile(agreementVariants[1]) // comment variant, same entry
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("expected a canonical-key hit")
	}
	hotRep, err := Check(cs.Protocol, opts)
	if err != nil {
		t.Fatal(err)
	}

	coldJSON, err := json.Marshal(coldRep)
	if err != nil {
		t.Fatal(err)
	}
	hotJSON, err := json.Marshal(hotRep)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(hotJSON) {
		t.Fatalf("cache-hit report differs from cold path:\ncold: %s\nhot:  %s", coldJSON, hotJSON)
	}
}

func TestSpecCacheCanonicalResubmissionSkipsParse(t *testing.T) {
	c := NewSpecCache(8)
	cs, _, err := c.Compile(agreementSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Submitting the canonical rendering itself must hit the main index
	// directly (no alias entry needed).
	if _, hit, err := c.Compile(cs.Canonical); err != nil || !hit {
		t.Fatalf("canonical resubmission: hit=%v err=%v, want hit", hit, err)
	}
}

func TestSpecCacheErrorNotCached(t *testing.T) {
	c := NewSpecCache(8)
	for i := 0; i < 2; i++ {
		if _, hit, err := c.Compile("protocol broken\nnonsense\n"); err == nil || hit {
			t.Fatalf("attempt %d: hit=%v err=%v, want miss with error", i, hit, err)
		}
	}
	if c.Len() != 0 {
		t.Fatal("errors must not occupy cache entries")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("error paths must not count as hits or misses, got %+v", st)
	}
}

func TestSpecCacheEviction(t *testing.T) {
	c := NewSpecCache(2)
	specs := make([]string, 3)
	for i := range specs {
		specs[i] = fmt.Sprintf(
			"protocol p%d\ndomain %d\nwindow -1 0\nlegit x[-1] == x[0]\n", i, i+2)
		if _, hit, err := c.Compile(specs[i]); err != nil || hit {
			t.Fatalf("spec %d: hit=%v err=%v", i, hit, err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want the bound 2", got)
	}
	// The oldest entry was evicted: recompiling it is a miss again.
	if _, hit, err := c.Compile(specs[0]); err != nil || hit {
		t.Fatalf("evicted spec must miss, hit=%v err=%v", hit, err)
	}
}

// Distinct raw renderings of one canonical spec must not grow the alias
// index without bound: each entry owns at most aliasFactor aliases, the
// oldest dropped first.
func TestSpecCacheAliasIndexBoundedPerEntry(t *testing.T) {
	c := NewSpecCache(8)
	for i := 0; i < 100; i++ {
		// A fresh comment makes every submission a distinct raw text that
		// canonicalizes onto the same entry.
		src := fmt.Sprintf("# variant %d\n%s", i, agreementSpec)
		if _, _, err := c.Compile(src); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (formatting fragmented the key)", st.Entries)
	}
	if st.Aliases > aliasFactor {
		t.Fatalf("alias index grew to %d entries for one spec, want <= %d", st.Aliases, aliasFactor)
	}
	// The most recent alias is live; a resubmission must skip the parse.
	if _, hit, err := c.Compile(fmt.Sprintf("# variant %d\n%s", 99, agreementSpec)); err != nil || !hit {
		t.Fatalf("latest alias must hit: hit=%v err=%v", hit, err)
	}
}

// Evicting an entry must take its aliases with it: after the LRU pushes a
// spec out, none of its raw-text variants may linger in the index.
func TestSpecCacheAliasesEvictedWithEntry(t *testing.T) {
	c := NewSpecCache(2)
	variant := func(i int) string { return fmt.Sprintf("# v%d\n%s", i, agreementSpec) }
	for i := 0; i < 3; i++ {
		if _, _, err := c.Compile(variant(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Aliases != 3 {
		t.Fatalf("aliases = %d, want 3 before eviction", st.Aliases)
	}
	// Two more protocols evict the agreement entry from the max-2 LRU.
	for i := 0; i < 2; i++ {
		src := fmt.Sprintf("protocol p%d\ndomain %d\nwindow -1 0\nlegit x[-1] == x[0]\n", i, i+2)
		if _, _, err := c.Compile(src); err != nil {
			t.Fatal(err)
		}
	}
	// The agreement entry's 3 aliases are gone; what remains is the one
	// raw-text alias each filler spec recorded for itself.
	if st := c.Stats(); st.Entries != 2 || st.Aliases != 2 {
		t.Fatalf("stats after eviction = %+v, want 2 entries and 2 aliases (agreement's 3 evicted)", st)
	}
	// The evicted spec's variants are full misses again.
	if _, hit, err := c.Compile(variant(2)); err != nil || hit {
		t.Fatalf("evicted spec's alias must not resolve: hit=%v err=%v", hit, err)
	}
}

func TestSpecCacheConcurrentSharesOneEntry(t *testing.T) {
	c := NewSpecCache(8)
	const goroutines = 16
	out := make([]*CompiledSpec, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cs, _, err := c.Compile(agreementVariants[g%len(agreementVariants)])
			if err != nil {
				t.Error(err)
				return
			}
			out[g] = cs
		}(g)
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 shared entry", c.Len())
	}
	for g := 1; g < goroutines; g++ {
		if out[g] != out[0] {
			t.Fatal("concurrent compiles must converge on one shared entry")
		}
	}
}
