package verify

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"paramring/internal/core"
	"paramring/internal/dsl"
)

// CompiledSpec is one spec taken through the whole DSL front end exactly
// once: parsed, canonicalized, validated, and compiled down to the
// core.Protocol tables every engine consumes. Entries are shared between
// concurrent verifications — core.Protocol is immutable after construction
// (its accessors copy), so a CompiledSpec must be treated as read-only.
type CompiledSpec struct {
	// Name is the protocol name declared in the spec.
	Name string
	// Canonical is the dsl.Format rendering of the parsed spec: the
	// content address under which the entry is cached. It is a fixpoint of
	// the parser, so re-parsing Canonical reproduces this exact entry.
	Canonical string
	// Protocol is the compiled protocol, ready for the verify pipeline and
	// the explicit engine. Read-only.
	Protocol *core.Protocol
	// CompileNS is the wall-clock nanoseconds the cold parse + validate +
	// compile took when this entry was built. A cache hit re-serves the
	// entry without paying it again; the service layer exports the paid
	// cost as the lrserved_spec_compile_seconds histogram.
	CompileNS int64
}

// SpecCacheStats is a point-in-time view of a SpecCache's counters, the
// numbers lrserved surfaces on /healthz and /metrics
// (lrserved_spec_cache_hits_total / lrserved_spec_cache_misses_total).
type SpecCacheStats struct {
	// Hits counts Compile calls answered without running the DSL front
	// end (raw-text alias hits and canonical-key hits combined).
	Hits uint64 `json:"hits"`
	// Misses counts Compile calls that paid a full parse + compile.
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached compiled specs.
	Entries int `json:"entries"`
	// Aliases is the current number of raw-text alias index entries. Each
	// cached spec owns at most aliasFactor aliases, and an entry's aliases
	// are evicted with it, so Aliases never exceeds aliasFactor * Entries.
	Aliases int `json:"aliases"`
}

// SpecCache memoizes the DSL front end: a size-bounded LRU of CompiledSpec
// entries keyed by the canonical dsl.Format rendering, with a raw-text
// alias index in front of it so byte-identical resubmissions skip even the
// parse. Two textual variants of one protocol — whitespace, comments,
// parenthesization — canonicalize identically and therefore share a single
// entry: the cache key can never fragment on formatting.
//
// The zero value is not usable; construct with NewSpecCache. All methods
// are safe for concurrent use.
type SpecCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64

	mu    sync.Mutex
	max   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // canonical rendering -> *specEntry

	// alias maps raw submission text to its canonical rendering so exact
	// resubmissions skip the parse as well as the compile. Each alias is
	// owned by the entry it points at: an entry holds at most aliasFactor
	// aliases (oldest dropped first — regenerating one costs a single
	// parse) and evicting the entry deletes its aliases with it, so the
	// index can never outgrow the LRU it fronts.
	alias map[string]string
}

type specEntry struct {
	key     string // canonical rendering, for eviction
	cs      *CompiledSpec
	aliases []string // raw-text aliases owned by this entry, oldest first
}

// aliasFactor bounds the raw-text aliases per cache entry, and therefore
// the whole alias index at aliasFactor * max.
const aliasFactor = 4

// NewSpecCache returns a compiled-spec cache bounded to maxEntries
// (<= 0 selects 1024, matching the service's result-cache default).
func NewSpecCache(maxEntries int) *SpecCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &SpecCache{
		max:   maxEntries,
		order: list.New(),
		items: make(map[string]*list.Element),
		alias: make(map[string]string),
	}
}

// Compile returns the compiled form of src, from the cache when any
// textual variant of the same protocol has been compiled before. The
// second return reports a hit: true means the DSL compile (and, for exact
// resubmissions, the parse too) was skipped. Parse and compile errors are
// returned verbatim and never cached — error paths are cheap (they fail
// before table construction) and a negative cache would let one transient
// dialect quirk pin a rejection.
func (c *SpecCache) Compile(src string) (*CompiledSpec, bool, error) {
	// Fast path: a byte-identical submission seen before — either under a
	// recorded raw-text alias or because src already is a canonical
	// rendering (the main index key). Neither pays a parse.
	c.mu.Lock()
	lookup := src
	if canonical, ok := c.alias[src]; ok {
		lookup = canonical
	}
	if el, ok := c.items[lookup]; ok {
		c.order.MoveToFront(el)
		cs := el.Value.(*specEntry).cs
		c.mu.Unlock()
		c.hits.Add(1)
		return cs, true, nil
	}
	c.mu.Unlock()

	// Parse to canonicalize; textual variants converge here.
	t0 := time.Now()
	spec, err := dsl.ParseSpec(src)
	if err != nil {
		return nil, false, err
	}
	canonical := dsl.Format(spec)

	c.mu.Lock()
	if el, ok := c.items[canonical]; ok {
		c.order.MoveToFront(el)
		cs := el.Value.(*specEntry).cs
		c.noteAliasLocked(src, canonical)
		c.mu.Unlock()
		c.hits.Add(1)
		return cs, true, nil
	}
	c.mu.Unlock()

	// Cold path: pay the compile outside the lock (it validates windows,
	// domains and action tables — the expensive part of the front end).
	proto, err := spec.Protocol()
	if err != nil {
		return nil, false, err
	}
	cs := &CompiledSpec{
		Name:      spec.Name,
		Canonical: canonical,
		Protocol:  proto,
		CompileNS: time.Since(t0).Nanoseconds(),
	}

	c.mu.Lock()
	if el, ok := c.items[canonical]; ok {
		// A concurrent Compile of the same protocol won the race; keep its
		// entry so every caller shares one Protocol.
		c.order.MoveToFront(el)
		cs = el.Value.(*specEntry).cs
	} else {
		c.items[canonical] = c.order.PushFront(&specEntry{key: canonical, cs: cs})
		for c.order.Len() > c.max {
			last := c.order.Back()
			c.order.Remove(last)
			e := last.Value.(*specEntry)
			delete(c.items, e.key)
			for _, a := range e.aliases {
				delete(c.alias, a)
			}
		}
	}
	c.noteAliasLocked(src, canonical)
	c.mu.Unlock()
	c.misses.Add(1)
	return cs, false, nil
}

// noteAliasLocked records src as a raw-text alias of the entry cached
// under canonical. Identity aliases are skipped (the canonical text is
// already the primary key: a resubmission of it hits the canonical lookup
// after one cheap parse). The alias is owned by the entry: once an entry
// holds aliasFactor aliases the oldest is dropped to make room, so many
// formatting variants of one spec can never grow the index past the
// per-entry bound — and an entry that has been evicted (or was never
// inserted) records no alias at all.
func (c *SpecCache) noteAliasLocked(src, canonical string) {
	if src == canonical {
		return
	}
	if _, ok := c.alias[src]; ok {
		return
	}
	el, ok := c.items[canonical]
	if !ok {
		return
	}
	e := el.Value.(*specEntry)
	if len(e.aliases) >= aliasFactor {
		oldest := e.aliases[0]
		e.aliases = append(e.aliases[:0], e.aliases[1:]...)
		delete(c.alias, oldest)
	}
	e.aliases = append(e.aliases, src)
	c.alias[src] = canonical
}

// Len returns the number of cached compiled specs.
func (c *SpecCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a point-in-time counter snapshot.
func (c *SpecCache) Stats() SpecCacheStats {
	c.mu.Lock()
	entries, aliases := c.order.Len(), len(c.alias)
	c.mu.Unlock()
	return SpecCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
		Aliases: aliases,
	}
}
