package verify_test

import (
	"fmt"

	"paramring/internal/protocols"
	"paramring/internal/verify"
)

// One call verifies a protocol for every ring size: Theorem 4.2 for
// deadlocks, Theorem 5.14 for livelocks, and witness confirmation to tell
// real counterexamples from spurious trails.
func ExampleProtocol() {
	rep, err := verify.Protocol(protocols.SumNotTwoSolution(), verify.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Summary())

	rep, err = verify.Protocol(protocols.AgreementBoth(), verify.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Summary())
	// Output:
	// deadlock-freedom (all K): proved; livelock-freedom: proved; SELF-STABILIZING FOR EVERY K
	// deadlock-freedom (all K): proved; livelock-freedom: refuted (livelock at K=3)
}
