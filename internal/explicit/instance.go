// Package explicit is the global-state-space substrate: it instantiates a
// parameterized protocol at a concrete ring size K and model-checks it by
// explicit enumeration of all domain^K global states.
//
// It serves two roles in the reproduction:
//
//  1. Oracle. Every local-reasoning verdict (Theorems 4.2 and 5.14, the
//     synthesis outputs of Section 6) is cross-validated against exhaustive
//     search for concrete K — the paper itself reports model checking its
//     Example 4.2 "for different sizes of ring (5,6,7 and 8 processes)".
//  2. Baseline. It embodies the global-state-exploration approach (STSyn
//     [17], and the methods of [16,26,27]) whose exponential cost in K the
//     paper's local method avoids; the benchmark harness measures exactly
//     that gap.
package explicit

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"paramring/internal/core"
)

// DefaultMaxStates bounds domain^K for an instance. The guard sizes the
// resident per-state tables: with the packed bitset substrate (see
// bitset.go) the dominant table — the I(K) membership cache — costs one
// BIT per global state, so a full-size instance holds 32 MiB of resident
// tables where the former []bool layout held 256 MiB at an eight-times
// smaller ceiling of 1<<24. Per-operation scratch (Tarjan index arrays,
// BFS distance arrays) still scales with the state count; WithMaxStates
// lowers the guard on memory-constrained deployments.
const DefaultMaxStates = 1 << 28

// Option configures an Instance.
type Option func(*Instance)

// WithGlobalPredicate replaces the default locally conjunctive I(K) =
// AND_r LC_r with an arbitrary global predicate over the ring valuation.
// Needed for protocols whose legitimate set is not locally conjunctive,
// such as Dijkstra's token ring ("exactly one process enabled").
func WithGlobalPredicate(f func(vals []int) bool) Option {
	return func(in *Instance) { in.globalI = f }
}

// WithProcessActions overrides the actions of the process at ring position
// pos (0-based), breaking symmetry. Dijkstra's token ring distinguishes
// process 0 this way. NewInstance rejects positions outside [0, K) — a
// misplaced override would otherwise be silently ignored by the successor
// generator and the instance would verify the fully symmetric protocol
// instead of the intended asymmetric one.
func WithProcessActions(pos int, actions []core.Action) Option {
	return func(in *Instance) {
		if in.distinguished == nil {
			in.distinguished = make(map[int][]core.Action)
		}
		in.distinguished[pos] = append([]core.Action(nil), actions...)
	}
}

// WithMaxStates overrides the state-count guard.
func WithMaxStates(n uint64) Option {
	return func(in *Instance) { in.maxStates = n }
}

// WithWorkers sets the number of worker goroutines the instance uses for
// its whole-state-space operations (CheckStrongConvergence, Deadlocks,
// CheckWeakConvergence, RecoveryRadius, CheckClosure and instance
// construction). n <= 0 selects runtime.GOMAXPROCS(0), which is also the
// default; n == 1 forces the sequential reference path. Parallel and
// sequential paths return identical results (same verdicts, same
// witnesses), so the choice is purely a time/space trade-off: the global
// side of the paper's Table 1 is domain^K work that the local method
// avoids entirely, and the workers only shrink the constant, never the
// exponent.
//
// With n > 1 the protocol's Guard/Next closures and any WithGlobalPredicate
// function are invoked from multiple goroutines concurrently; they must be
// safe for concurrent use (pure functions, as all zoo protocols are).
func WithWorkers(n int) Option {
	return func(in *Instance) { in.workers = n }
}

// Instance is a protocol instantiated on a ring of K processes. Global
// states are mixed-radix codes in [0, domain^K): process r contributes
// vals[r] * domain^r.
type Instance struct {
	p  *core.Protocol
	k  int
	d  int
	n  uint64
	po []uint64 // po[i] = d^i

	lo, hi int

	maxStates     uint64
	workers       int
	globalI       func(vals []int) bool
	distinguished map[int][]core.Action

	inI       bitset      // cached I membership, one bit per state
	table     *localTable // lazily compiled flat fast path (symmetric instances only)
	tableOnce sync.Once   // guards the lazy build under concurrent queries

	// The incremental-scan substrate (see odometer.go): per-position window
	// incidences, the stride table stride[r*d+v] = v*d^r the successor emit
	// loop adds instead of multiplying, d^(W-1) for the rolling window-code
	// fill, and the packed local legitimacy bits the I(K) fill tests per
	// window code (nil when WithGlobalPredicate overrides I). All four are
	// O(K*W + d^W) bytes — noise next to the bit-per-state tables, and
	// deliberately excluded from TableBytes so the memory-accounting figure
	// stays comparable across engine versions.
	digitWindows [][]digitWindow
	stride       []uint64
	dW1          int
	legitCode    bitset
}

// scratch bundles the per-goroutine decode and successor buffers the
// whole-space scan loops reuse across states, so the hot paths allocate
// nothing per state: the valuation, view and window-code targets of the
// random-access paths, the odometer cursor of the ascending chunk scans,
// and a flat successor buffer that successorsInto grows once and then
// recycles.
type scratch struct {
	vals  []int
	view  core.View
	codes []int32
	succ  []uint64
	od    *odometer
}

// newScratch returns scan scratch sized for this instance.
func (in *Instance) newScratch() *scratch {
	return &scratch{
		vals:  make([]int, in.k),
		view:  make(core.View, in.p.W()),
		codes: make([]int32, in.k),
		od:    in.newOdometer(),
	}
}

// NewInstance instantiates p on a ring of k >= 2 processes.
func NewInstance(p *core.Protocol, k int, opts ...Option) (*Instance, error) {
	return NewInstanceCtx(context.Background(), p, k, opts...)
}

// NewInstanceCtx is NewInstance with cooperative cancellation: the domain^K
// legitimacy precomputation (itself a full state-space scan) polls ctx and
// aborts with ctx.Err() once the context is done.
func NewInstanceCtx(ctx context.Context, p *core.Protocol, k int, opts ...Option) (*Instance, error) {
	if k < 2 {
		return nil, fmt.Errorf("explicit: ring size %d < 2", k)
	}
	in := &Instance{
		p:         p,
		k:         k,
		d:         p.Domain(),
		maxStates: DefaultMaxStates,
	}
	in.lo, in.hi = p.Window()
	in.workers = runtime.GOMAXPROCS(0)
	for _, o := range opts {
		o(in)
	}
	if in.workers <= 0 {
		in.workers = runtime.GOMAXPROCS(0)
	}
	for pos := range in.distinguished {
		if pos < 0 || pos >= k {
			return nil, fmt.Errorf("explicit: distinguished process position %d outside ring [0,%d)", pos, k)
		}
	}
	if float64(k)*math.Log2(float64(in.d)) > 62 {
		return nil, fmt.Errorf("explicit: %d^%d global states overflow uint64", in.d, k)
	}
	in.n = 1
	in.po = make([]uint64, k+1)
	for i := 0; i <= k; i++ {
		in.po[i] = in.n
		if i < k {
			in.n *= uint64(in.d)
		}
	}
	if in.n > in.maxStates {
		return nil, fmt.Errorf("explicit: %d^%d = %d global states exceeds limit %d", in.d, k, in.n, in.maxStates)
	}
	if err := in.validateActions(); err != nil {
		return nil, err
	}
	// The incremental-scan substrate: window incidences and stride table
	// for the odometer loops, plus — when I is the default locally
	// conjunctive predicate — the packed per-window-code legitimacy bits,
	// so the I(K) fill tests K bitset bits per state instead of evaluating
	// K decoded views.
	in.digitWindows = in.buildDigitWindows()
	in.stride = make([]uint64, k*in.d)
	for r := 0; r < k; r++ {
		for v := 0; v < in.d; v++ {
			in.stride[r*in.d+v] = uint64(v) * in.po[r]
		}
	}
	in.dW1 = 1
	for i := 0; i < p.W()-1; i++ {
		in.dW1 *= in.d
	}
	if in.globalI == nil {
		nLocal := p.NumLocalStates()
		in.legitCode = newBitset(uint64(nLocal))
		for code := 0; code < nLocal; code++ {
			if p.Legitimate(core.LocalState(code)) {
				in.legitCode.Set(uint64(code))
			}
		}
	}
	// The I(K) fill streams odometer-advanced window codes into the packed
	// membership bitset through the shared scratch machinery — the same
	// zero-alloc discipline as the checker scans. Chunk boundaries are
	// word-aligned (see chunkFor), so the plain word writes of Set never
	// race across workers.
	in.inI = newBitset(in.n)
	in.forEachChunk(func(lo, hi uint64) {
		if lo >= hi {
			return
		}
		sc := in.newScratch()
		sc.od.reset(lo)
		for id := lo; id < hi; id++ {
			if id&cancelCheckMask == 0 && ctx.Err() != nil {
				return
			}
			if in.inIAt(sc.od) {
				in.inI.Set(id)
			}
			if id+1 < hi {
				sc.od.step()
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return in, nil
}

// inIAt evaluates I on the odometer's current state: K legitimacy-bit
// reads indexed by the incrementally maintained window codes in the
// default locally conjunctive case, or the caller's global predicate over
// the (already decoded) valuation.
func (in *Instance) inIAt(od *odometer) bool {
	if in.globalI != nil {
		return in.globalI(od.vals)
	}
	for r := 0; r < in.k; r++ {
		if !in.legitCode.Get(uint64(od.codes[r])) {
			return false
		}
	}
	return true
}

// validateActions evaluates every action on every possible local view and
// rejects writes outside the domain — for the base action list AND every
// WithProcessActions override, so Dijkstra-style asymmetric rings get the
// same constructor-time guarantee as symmetric ones. Catching this at
// construction turns a data-dependent panic — which the parallel scan
// paths would raise on a worker goroutine, beyond any recover in main —
// into an ordinary one-line error from NewInstance. Cost is domain^W per
// action list, negligible next to the domain^K legitimacy scan.
func (in *Instance) validateActions() error {
	lists := [][]core.Action{in.p.Actions()}
	positions := make([]int, 0, len(in.distinguished))
	for pos := range in.distinguished {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		lists = append(lists, in.distinguished[pos])
	}
	w := in.p.W()
	views := uint64(1)
	for i := 0; i < w; i++ {
		views *= uint64(in.d)
	}
	view := make(core.View, w)
	for code := uint64(0); code < views; code++ {
		c := code
		for i := 0; i < w; i++ {
			view[i] = int(c % uint64(in.d))
			c /= uint64(in.d)
		}
		for _, actions := range lists {
			for _, a := range actions {
				if !a.Guard(view) {
					continue
				}
				for _, nv := range a.Next(view) {
					if nv < 0 || nv >= in.d {
						return fmt.Errorf("explicit: action %q writes %d outside domain [0,%d) on view %v", a.Name, nv, in.d, []int(view))
					}
				}
			}
		}
	}
	return nil
}

// MustNewInstance is NewInstance that panics on error.
func MustNewInstance(p *core.Protocol, k int, opts ...Option) *Instance {
	in, err := NewInstance(p, k, opts...)
	if err != nil {
		panic(err)
	}
	return in
}

// Protocol returns the underlying parameterized protocol.
func (in *Instance) Protocol() *core.Protocol { return in.p }

// K returns the ring size.
func (in *Instance) K() int { return in.k }

// NumStates returns domain^K.
func (in *Instance) NumStates() uint64 { return in.n }

// Workers returns the effective worker count (see WithWorkers).
func (in *Instance) Workers() int { return in.workers }

// TableBytes returns the heap footprint of the instance's resident
// per-state tables — currently the packed I(K) membership bitset, one bit
// per global state. This is the figure verify.Report and the lrserved
// /metrics gauges surface so operators can see bytes-per-state, and what
// DefaultMaxStates is sized against.
func (in *Instance) TableBytes() uint64 { return in.inI.Bytes() }

// EncodeChecked packs a ring valuation into a state code, validating the
// arity and every per-process value. A value outside [0, domain) would
// otherwise carry into higher-order digits of the mixed-radix code and
// silently alias a DIFFERENT state (e.g. with domain 3, a stray vals[1]=3
// encodes the same id as vals[2]+=1) — so malformed input is an error, not
// a wrong answer. Use this for externally supplied valuations (CLI input,
// test vectors); Encode panics with the same diagnostic for internal
// callers whose valuations are decode outputs by construction.
func (in *Instance) EncodeChecked(vals []int) (uint64, error) {
	if len(vals) != in.k {
		return 0, fmt.Errorf("explicit: %d values for ring of %d processes", len(vals), in.k)
	}
	var id uint64
	for r, v := range vals {
		if v < 0 || v >= in.d {
			return 0, fmt.Errorf("explicit: value %d at ring position %d outside domain [0,%d)", v, r, in.d)
		}
		id += uint64(v) * in.po[r]
	}
	return id, nil
}

// Encode packs a ring valuation into a state code. It panics with a
// diagnostic on malformed input; see EncodeChecked for the error-returning
// variant.
func (in *Instance) Encode(vals []int) uint64 {
	id, err := in.EncodeChecked(vals)
	if err != nil {
		panic(err.Error())
	}
	return id
}

// Decode unpacks a state code into a fresh ring valuation.
func (in *Instance) Decode(id uint64) []int {
	vals := make([]int, in.k)
	in.DecodeInto(id, vals)
	return vals
}

// DecodeInto unpacks a state code into vals (len K) without allocating.
func (in *Instance) DecodeInto(id uint64, vals []int) {
	for r := 0; r < in.k; r++ {
		vals[r] = int(id % uint64(in.d))
		id /= uint64(in.d)
	}
}

// evalI evaluates I on a decoded valuation.
func (in *Instance) evalI(vals []int) bool {
	if in.globalI != nil {
		return in.globalI(vals)
	}
	view := make(core.View, in.p.W())
	for r := 0; r < in.k; r++ {
		in.viewInto(vals, r, view)
		if !in.p.LegitimateView(view) {
			return false
		}
	}
	return true
}

// InI reports whether the state is in the legitimate set I(K).
func (in *Instance) InI(id uint64) bool { return in.inI.Get(id) }

// viewInto fills view with the window of process r over vals.
func (in *Instance) viewInto(vals []int, r int, view core.View) {
	for i := 0; i < len(view); i++ {
		idx := ((r+in.lo+i)%in.k + in.k) % in.k
		view[i] = vals[idx]
	}
}

// View returns the decoded local view of process r in state id.
func (in *Instance) View(id uint64, r int) core.View {
	vals := make([]int, in.k)
	in.DecodeInto(id, vals)
	view := make(core.View, in.p.W())
	in.viewInto(vals, r, view)
	return view
}

// actionsFor returns the actions executed by ring position r.
func (in *Instance) actionsFor(r int) []core.Action {
	if a, ok := in.distinguished[r]; ok {
		return a
	}
	return in.p.Actions()
}

// GlobalTransition records one outgoing global transition of a state.
type GlobalTransition struct {
	To      uint64
	Process int
	Action  string
}

// SuccessorsDetailed returns every outgoing global transition of id, sorted
// by (Process, To, Action) and deduplicated.
func (in *Instance) SuccessorsDetailed(id uint64) []GlobalTransition {
	vals := make([]int, in.k)
	view := make(core.View, in.p.W())
	in.DecodeInto(id, vals)
	var out []GlobalTransition
	for r := 0; r < in.k; r++ {
		in.viewInto(vals, r, view)
		for _, a := range in.actionsFor(r) {
			if !a.Guard(view) {
				continue
			}
			for _, nv := range a.Next(view) {
				if nv < 0 || nv >= in.d {
					panic(fmt.Sprintf("explicit: action %q writes %d outside domain", a.Name, nv))
				}
				to := id + uint64(nv)*in.po[r] - uint64(vals[r])*in.po[r]
				out = append(out, GlobalTransition{To: to, Process: r, Action: a.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Process != b.Process {
			return a.Process < b.Process
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Action < b.Action
	})
	// Dedup identical records.
	w := 0
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

// Successors returns the distinct successor states of id in sorted order.
// The returned slice is freshly allocated and safe to retain. Symmetric
// instances use the compiled local-transition table (see fastpath.go);
// instances with distinguished processes fall back to guard evaluation.
func (in *Instance) Successors(id uint64) []uint64 {
	succ := in.successorsInto(id, in.newScratch())
	return append([]uint64(nil), succ...)
}

// successorsInto computes the sorted, deduplicated successor set of id
// into the scratch's flat buffer and returns it. The slice is valid only
// until the next successorsInto call on the same scratch — the whole-space
// scan loops consume it immediately, so the per-state allocation the old
// per-call slices paid is gone. Callers that retain successors (the Tarjan
// frames, Successors) copy.
func (in *Instance) successorsInto(id uint64, sc *scratch) []uint64 {
	out := sc.succ[:0]
	if fastOut, ok := in.successorsFast(id, sc, out); ok {
		out = fastOut
	} else {
		in.DecodeInto(id, sc.vals)
		out = in.successorsSymbolic(id, sc.vals, sc.view, out)
	}
	out = sortDedup(out)
	sc.succ = out // retain the grown buffer for the next state
	return out
}

// successorsSymbolic appends the successors of id by guard evaluation over
// the (already decoded) valuation — the reference path instances with
// distinguished processes use, and the oracle the differential fuzz pins
// the fast path against. Emission order matches SuccessorsDetailed's
// pre-sort order; callers sort and deduplicate.
func (in *Instance) successorsSymbolic(id uint64, vals []int, view core.View, out []uint64) []uint64 {
	for r := 0; r < in.k; r++ {
		in.viewInto(vals, r, view)
		for _, a := range in.actionsFor(r) {
			if !a.Guard(view) {
				continue
			}
			for _, nv := range a.Next(view) {
				if nv < 0 || nv >= in.d {
					panic(fmt.Sprintf("explicit: action %q writes %d outside domain", a.Name, nv))
				}
				out = append(out, id+uint64(nv)*in.po[r]-uint64(vals[r])*in.po[r])
			}
		}
	}
	return out
}

// sortDedup sorts out ascending and removes duplicates in place.
// slices.Sort rather than sort.Slice: this runs once per state in every
// whole-space scan, and the reflection-based swapper of sort.Slice costs
// two heap allocations per call where the generic sort costs none.
func sortDedup(out []uint64) []uint64 {
	slices.Sort(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// successorsAt computes the sorted, deduplicated successor set of the
// odometer's current state — the chunk-scan counterpart of successorsInto:
// no decode and no window encode at all on the fast path, because the
// odometer has both the valuation and every window code current. The
// returned slice is valid until the next successorsAt/successorsInto call
// on the same scratch.
func (in *Instance) successorsAt(sc *scratch) []uint64 {
	out := sc.succ[:0]
	if tbl := in.fast(); tbl != nil {
		out = in.emitFast(tbl, sc.od.id, sc.od.vals, sc.od.codes, out)
	} else {
		out = in.successorsSymbolic(sc.od.id, sc.od.vals, sc.view, out)
	}
	out = sortDedup(out)
	sc.succ = out
	return out
}

// deadlockAt reports whether the odometer's current state is a global
// deadlock, with early exit on the first enabled process.
func (in *Instance) deadlockAt(sc *scratch) bool {
	if tbl := in.fast(); tbl != nil {
		for r := 0; r < in.k; r++ {
			if tbl.enabled.Get(uint64(sc.od.codes[r])) {
				return false
			}
		}
		return true
	}
	for r := 0; r < in.k; r++ {
		in.viewInto(sc.od.vals, r, sc.view)
		for _, a := range in.actionsFor(r) {
			if a.Guard(sc.view) && len(a.Next(sc.view)) > 0 {
				return false
			}
		}
	}
	return true
}

// enabledCountAt counts the enabled processes of the odometer's current
// state (no early exit; the parity contract the fuzz target checks
// against EnabledProcesses).
func (in *Instance) enabledCountAt(sc *scratch) int {
	count := 0
	if tbl := in.fast(); tbl != nil {
		for r := 0; r < in.k; r++ {
			if tbl.enabled.Get(uint64(sc.od.codes[r])) {
				count++
			}
		}
		return count
	}
	for r := 0; r < in.k; r++ {
		in.viewInto(sc.od.vals, r, sc.view)
		for _, a := range in.actionsFor(r) {
			if a.Guard(sc.view) && len(a.Next(sc.view)) > 0 {
				count++
				break
			}
		}
	}
	return count
}

// DecodeSweep walks the whole state space with the incremental odometer and
// folds every valuation and window code into a checksum. It is the
// decode-only floor of the scan loop — what every whole-space pass pays
// before doing any per-state work — measured by the lrbench scanloop rows
// as a states/sec figure.
func (in *Instance) DecodeSweep() uint64 {
	var sum uint64
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		sum += uint64(sc.od.vals[0]) + uint64(uint32(sc.od.codes[in.k-1]))
		if id+1 < in.n {
			sc.od.step()
		}
	}
	return sum
}

// SuccessorSweep generates the successor set of every state in one
// ascending odometer scan and returns the total number of distinct
// successor edges — the successors-only scan-loop cost, measured by the
// lrbench scanloop rows next to DecodeSweep and the full checks.
func (in *Instance) SuccessorSweep() uint64 {
	var edges uint64
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		edges += uint64(len(in.successorsAt(sc)))
		if id+1 < in.n {
			sc.od.step()
		}
	}
	return edges
}

// EnabledProcesses returns the ring positions with at least one enabled
// action in state id.
func (in *Instance) EnabledProcesses(id uint64) []int {
	vals := make([]int, in.k)
	view := make(core.View, in.p.W())
	in.DecodeInto(id, vals)
	var out []int
	for r := 0; r < in.k; r++ {
		in.viewInto(vals, r, view)
		for _, a := range in.actionsFor(r) {
			if a.Guard(view) && len(a.Next(view)) > 0 {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// HasTransition reports whether (from, to) is a global transition.
func (in *Instance) HasTransition(from, to uint64) bool {
	return in.hasTransitionScratch(from, to, in.newScratch())
}

// hasTransitionScratch is HasTransition with caller-provided scratch; used
// by the predecessor-generating BFS loops (sequential and parallel alike).
func (in *Instance) hasTransitionScratch(from, to uint64, sc *scratch) bool {
	for _, s := range in.successorsInto(from, sc) {
		if s == to {
			return true
		}
	}
	return false
}

// IsDeadlock reports whether no process is enabled in id (the global
// deadlock of Section 2.2: every guard false at every position).
func (in *Instance) IsDeadlock(id uint64) bool {
	return in.isDeadlockScratch(id, in.newScratch())
}

// isDeadlockScratch is IsDeadlock with caller-provided scratch.
func (in *Instance) isDeadlockScratch(id uint64, sc *scratch) bool {
	if n, ok := in.enabledCountFast(id, sc); ok {
		return n == 0
	}
	return len(in.EnabledProcesses(id)) == 0
}

// Format renders a state compactly using the protocol's value names.
func (in *Instance) Format(id uint64) string {
	return in.p.FormatGlobal(in.Decode(id))
}
