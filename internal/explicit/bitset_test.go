package explicit

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func TestBitsetBasicOps(t *testing.T) {
	b := newBitset(130) // three words, last one partial
	if got := b.Bytes(); got != 24 {
		t.Fatalf("Bytes = %d, want 24", got)
	}
	for _, id := range []uint64{0, 1, 63, 64, 127, 128, 129} {
		if b.Get(id) {
			t.Fatalf("bit %d set in fresh bitset", id)
		}
		b.Set(id)
		if !b.Get(id) || !b.GetAtomic(id) {
			t.Fatalf("bit %d unset after Set", id)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 6 {
		t.Fatal("Clear(64) did not clear exactly one bit")
	}
	// Neighbors of cleared/set bits are untouched (word masking).
	if !b.Get(63) || !b.Get(127) {
		t.Fatal("Clear touched a neighboring bit")
	}
	if !b.TestAndSet(64) {
		t.Fatal("TestAndSet on a clear bit must claim it")
	}
	if b.TestAndSet(64) {
		t.Fatal("TestAndSet on a set bit must not claim it")
	}
	b.SetAtomic(65)
	if !b.Get(65) {
		t.Fatal("SetAtomic(65) lost")
	}
}

// TestChunkForWordAligned pins the alignment contract the construction fill
// relies on: every chunk boundary is a multiple of 64 (or the range end),
// so concurrent per-chunk writers never share a bitset word and the plain
// (non-atomic) Set in the I(K) fill is race-free.
func TestChunkForWordAligned(t *testing.T) {
	for _, n := range []uint64{0, 1, 63, 64, 65, 1000, 1 << 16, 1<<16 + 17} {
		for _, w := range []int{1, 2, 3, 7, 16, 64} {
			for i := 0; i < w; i++ {
				lo, hi := chunkFor(n, w, i)
				if lo%64 != 0 && lo != n {
					t.Fatalf("n=%d w=%d chunk %d: lo=%d not word-aligned", n, w, i, lo)
				}
				if hi%64 != 0 && hi != n {
					t.Fatalf("n=%d w=%d chunk %d: hi=%d not word-aligned", n, w, i, hi)
				}
			}
		}
	}
}

func TestEncodeCheckedErrors(t *testing.T) {
	in := mustInstance(t, protocols.SumNotTwoBase(), 4) // domain 3, K=4
	if _, err := in.EncodeChecked([]int{0, 1}); err == nil ||
		!strings.Contains(err.Error(), "2 values for ring of 4") {
		t.Fatalf("arity error = %v", err)
	}
	if _, err := in.EncodeChecked([]int{0, 3, 0, 0}); err == nil ||
		!strings.Contains(err.Error(), "position 1") {
		t.Fatalf("domain error = %v", err)
	}
	if _, err := in.EncodeChecked([]int{0, -1, 0, 0}); err == nil {
		t.Fatal("negative value must be rejected")
	}
	id, err := in.EncodeChecked([]int{2, 1, 0, 2})
	if err != nil || id != in.Encode([]int{2, 1, 0, 2}) {
		t.Fatalf("valid EncodeChecked = (%d, %v)", id, err)
	}
}

// TestEncodeAliasRegression pins the aliasing bug the validation exists
// for: with domain 3, a stray vals[1]=3 contributes 3*3^1 = 9 = 1*3^2 to
// the mixed-radix code — the id of a DIFFERENT, perfectly valid state.
// Unvalidated encoding would return that id silently; it must reject.
func TestEncodeAliasRegression(t *testing.T) {
	in := mustInstance(t, protocols.SumNotTwoBase(), 4) // domain 3
	aliased := in.Encode([]int{0, 0, 1, 0})
	if aliased != 9 {
		t.Fatalf("expected state 0010 to encode to 9, got %d", aliased)
	}
	if _, err := in.EncodeChecked([]int{0, 3, 0, 0}); err == nil {
		t.Fatalf("vals[1]=3 would alias state %d; must be rejected", aliased)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with out-of-domain value must panic, not alias")
		}
	}()
	in.Encode([]int{0, 3, 0, 0})
}

func TestWithProcessActionsPositionValidated(t *testing.T) {
	follower, bottom := protocols.DijkstraTokenRing(3)
	for _, pos := range []int{-1, 4, 99} {
		_, err := NewInstance(follower, 4,
			WithProcessActions(pos, bottom),
			WithGlobalPredicate(protocols.TokenRingLegit))
		if err == nil || !strings.Contains(err.Error(), "distinguished process position") {
			t.Fatalf("pos=%d: err = %v, want position validation error", pos, err)
		}
	}
	// In-range positions still work.
	if _, err := NewInstance(follower, 4,
		WithProcessActions(0, bottom),
		WithGlobalPredicate(protocols.TokenRingLegit)); err != nil {
		t.Fatalf("valid position rejected: %v", err)
	}
}

// TestWithProcessActionsDomainValidated closes the validation gap where a
// distinguished-process override writing outside the domain used to slip
// past the constructor-time action check and panic later from a scan
// worker goroutine mid-check.
func TestWithProcessActionsDomainValidated(t *testing.T) {
	follower, _ := protocols.DijkstraTokenRing(3)
	rogue := []core.Action{{
		Name:  "rogue",
		Guard: func(v core.View) bool { return true },
		Next:  func(v core.View) []int { return []int{3} }, // domain is [0,3)
	}}
	_, err := NewInstance(follower, 4,
		WithProcessActions(0, rogue),
		WithGlobalPredicate(protocols.TokenRingLegit))
	if err == nil || !strings.Contains(err.Error(), "outside domain") {
		t.Fatalf("err = %v, want constructor-time domain validation of the override", err)
	}
}

// TestSuccessorsFastMatchesGuardEvaluation is the fuzz-style cross-check of
// the two successor generators: the compiled fast path (Successors on a
// symmetric instance) against plain guard evaluation (SuccessorsDetailed
// always re-evaluates guards). Any divergence in the bitset/scratch
// plumbing would show up as a set mismatch.
func TestSuccessorsFastMatchesGuardEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		p    *core.Protocol
		k    int
	}{
		{"agreement/K=12", protocols.AgreementBoth(), 12},
		{"matchingA/K=9", protocols.MatchingA(), 9},
		{"sumnottwo/K=10", protocols.SumNotTwoBase(), 10},
	} {
		in := mustInstance(t, tc.p, tc.k)
		sc := in.newScratch()
		for trial := 0; trial < 300; trial++ {
			id := uint64(rng.Int63n(int64(in.NumStates())))
			fast := append([]uint64(nil), in.successorsInto(id, sc)...)
			want := map[uint64]bool{}
			for _, tr := range in.SuccessorsDetailed(id) {
				want[tr.To] = true
			}
			if len(fast) != len(want) {
				t.Fatalf("%s id=%d: fast %v vs guard %v", tc.name, id, fast, want)
			}
			for i, s := range fast {
				if !want[s] {
					t.Fatalf("%s id=%d: fast successor %d not produced by guard evaluation", tc.name, id, s)
				}
				if i > 0 && fast[i-1] >= s {
					t.Fatalf("%s id=%d: successors not sorted/deduped: %v", tc.name, id, fast)
				}
			}
		}
	}
}

// TestSuccessorsDistinguishedLargerK exercises the guard-evaluation
// fallback (distinguished processes disable the compiled table) at a K
// well past the sizes the token-ring tests use, cross-checking Successors
// against SuccessorsDetailed and the scratch path against itself across
// buffer reuse.
func TestSuccessorsDistinguishedLargerK(t *testing.T) {
	const k = 8
	follower, bottom := protocols.DijkstraTokenRing(3) // 3^8 = 6561 states
	in := mustInstance(t, follower, k,
		WithProcessActions(0, bottom),
		WithGlobalPredicate(protocols.TokenRingLegit))
	rng := rand.New(rand.NewSource(11))
	sc := in.newScratch()
	for trial := 0; trial < 400; trial++ {
		id := uint64(rng.Int63n(int64(in.NumStates())))
		got := append([]uint64(nil), in.successorsInto(id, sc)...)
		want := map[uint64]bool{}
		var procs []int
		for _, tr := range in.SuccessorsDetailed(id) {
			want[tr.To] = true
			procs = append(procs, tr.Process)
		}
		if len(got) != len(want) {
			t.Fatalf("id=%d: scratch %v vs detailed %v", id, got, want)
		}
		for _, s := range got {
			if !want[s] {
				t.Fatalf("id=%d: scratch successor %d missing from detailed", id, s)
			}
		}
		// The distinguished process's actions must actually differ from the
		// symmetric ones somewhere: position 0 executes "bump", not "copy".
		for _, pr := range procs {
			if pr == 0 {
				for _, tr := range in.SuccessorsDetailed(id) {
					if tr.Process == 0 && tr.Action != "bump" {
						t.Fatalf("id=%d: distinguished process ran %q", id, tr.Action)
					}
				}
			}
		}
	}
}

// raisedCeilingProtocol is a domain-65 ring: 65^4 = 17,850,625 global
// states, strictly between the former 1<<24 ceiling and the current 1<<28.
// The all-zero state is an illegitimate global deadlock at id 0, so both
// convergence paths find their witness immediately and the test's cost is
// the construction fill itself.
func raisedCeilingProtocol() *core.Protocol {
	const d = 65
	return core.MustNew(core.Config{
		Name:   "raised-ceiling",
		Domain: d,
		Lo:     -1,
		Hi:     0,
		Actions: []core.Action{{
			Name:  "raise",
			Guard: func(v core.View) bool { return v[1] < v[0] },
			Next:  func(v core.View) []int { return []int{v[0]} },
		}},
		Legit: func(v core.View) bool { return v[1] == d-1 },
	})
}

// TestRaisedCeilingInstance is the acceptance test for the packed-bitset
// ceiling raise: a spec with 1<<24 < domain^K <= 1<<28 that NewInstance
// used to reject with "exceeds limit" now verifies under the DEFAULT
// options, sequential and parallel paths agree on verdict and witness, and
// the resident table costs 1 bit per state (8x under the old []bool).
func TestRaisedCeilingInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("17.85M-state construction in -short mode")
	}
	p := raisedCeilingProtocol()
	legit := func(vals []int) bool { return vals[0] == 64 }

	seq, err := NewInstance(p, 4, WithWorkers(1), WithGlobalPredicate(legit))
	if err != nil {
		t.Fatalf("NewInstance at the raised default ceiling: %v", err)
	}
	if seq.NumStates() <= 1<<24 || seq.NumStates() > 1<<28 {
		t.Fatalf("NumStates = %d, want in (1<<24, 1<<28]", seq.NumStates())
	}
	// The old layout would have refused this instance outright.
	if _, err := NewInstance(p, 4, WithMaxStates(1<<24), WithGlobalPredicate(legit)); err == nil {
		t.Fatal("the former 1<<24 guard must reject 65^4 states")
	}
	// 1 bit per state: the table is at least 8x under one byte per state.
	if max := seq.NumStates()/8 + 8; seq.TableBytes() > max {
		t.Fatalf("TableBytes = %d for %d states; packed table must be <= %d", seq.TableBytes(), seq.NumStates(), max)
	}

	par, err := NewInstance(p, 4, WithWorkers(4), WithGlobalPredicate(legit))
	if err != nil {
		t.Fatalf("parallel NewInstance: %v", err)
	}
	if !reflect.DeepEqual(seq.inI, par.inI) {
		t.Fatal("sequential and parallel I(K) fills diverge")
	}

	srep := seq.CheckStrongConvergence()
	prep := par.CheckStrongConvergence()
	if srep.Converges || srep.DeadlockWitness == nil || *srep.DeadlockWitness != 0 {
		t.Fatalf("sequential verdict = %+v, want deadlock witness 0", srep)
	}
	if prep.Converges != srep.Converges ||
		(prep.DeadlockWitness == nil) != (srep.DeadlockWitness == nil) ||
		*prep.DeadlockWitness != *srep.DeadlockWitness {
		t.Fatalf("par verdict %+v != seq verdict %+v", prep, srep)
	}
}

// TestTableBytesScalesWithStates pins the bytes-per-state accounting the
// verify layer and lrserved metrics surface.
func TestTableBytesScalesWithStates(t *testing.T) {
	for _, k := range []int{4, 8, 12} {
		in := mustInstance(t, protocols.AgreementBase(), k)
		want := ((in.NumStates() + 63) / 64) * 8
		if got := in.TableBytes(); got != want {
			t.Fatalf("K=%d: TableBytes = %d, want %d", k, got, want)
		}
	}
}

// TestScratchBufferReuse drives one scratch through states with different
// successor counts and checks the recycled buffer never leaks stale
// entries between calls.
func TestScratchBufferReuse(t *testing.T) {
	in := mustInstance(t, protocols.MatchingA(), 6)
	sc := in.newScratch()
	for id := uint64(0); id < in.NumStates(); id++ {
		got := in.successorsInto(id, sc)
		want := in.Successors(id)
		if !reflect.DeepEqual(append([]uint64(nil), got...), want) {
			t.Fatalf("id=%d: scratch %v vs fresh %v", id, got, want)
		}
	}
}

func TestDeadlockScanParityAllProtocols(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *core.Protocol
		k    int
	}{
		{"agreement", protocols.AgreementBase(), 10},
		{"matchingA", protocols.MatchingA(), 7},
	} {
		seq := mustInstance(t, tc.p, tc.k, WithWorkers(1))
		par := mustInstance(t, tc.p, tc.k, WithWorkers(5))
		if !reflect.DeepEqual(seq.Deadlocks(), par.Deadlocks()) {
			t.Fatalf("%s: Deadlocks diverge between 1 and 5 workers", tc.name)
		}
		if !reflect.DeepEqual(seq.IllegitimateDeadlocks(), par.IllegitimateDeadlocks()) {
			t.Fatalf("%s: IllegitimateDeadlocks diverge between 1 and 5 workers", tc.name)
		}
	}
}

func BenchmarkBitsetFillVsBoolFill(b *testing.B) {
	const n = 1 << 22
	b.Run(fmt.Sprintf("bitset/n=%d", n), func(b *testing.B) {
		bs := newBitset(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for id := uint64(0); id < n; id += 3 {
				bs.Set(id)
			}
		}
	})
	b.Run(fmt.Sprintf("bool/n=%d", n), func(b *testing.B) {
		arr := make([]bool, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for id := uint64(0); id < n; id += 3 {
				arr[id] = true
			}
		}
	})
}
