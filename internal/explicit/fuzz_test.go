package explicit

import (
	"math/rand"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protogen"
)

// FuzzScanLoopEquivalence is the differential fuzz that pins the incremental
// scan machinery (odometer digit stepping, rolling window codes, the flat
// CSR transition table and the packed legitimacy bits) against the plain
// reference path (DecodeInto + core.Encode per window + guard evaluation)
// over random protocols, windows and ring sizes. Every state of every
// generated instance must agree on:
//
//   - the decoded valuation and all K window codes,
//   - the sorted deduplicated successor set (fast emit vs. the detailed
//     guard-evaluation walk, and vs. a behaviorally identical twin instance
//     that is forced onto the symbolic path by a distinguished process),
//   - the enabled-process count and the deadlock verdict,
//   - I(K) membership (the constructor's incremental bitset fill vs. direct
//     per-state evaluation).
//
// testdata/fuzz holds the committed seed corpus; CI replays it under -race.
func FuzzScanLoopEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0), uint64(0), uint64(30))
	f.Add(uint64(2), uint64(1), uint64(1), uint64(2), uint64(60))
	f.Add(uint64(3), uint64(0), uint64(2), uint64(3), uint64(90))
	f.Add(uint64(4), uint64(1), uint64(1), uint64(1), uint64(45))
	f.Add(uint64(5), uint64(0), uint64(0), uint64(3), uint64(80))

	f.Fuzz(func(t *testing.T, seed, domain, win, ring, movePct uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		opts := protogen.Options{
			Domain:      2 + int(domain%2),
			MovePercent: 1 + int(movePct%99),
			Nondet:      seed%2 == 0,
		}
		switch win % 3 {
		case 0:
			opts.Lo, opts.Hi = -1, 0
		case 1:
			opts.Lo, opts.Hi = -1, 1
		case 2:
			opts.Lo, opts.Hi = 0, 1
		}
		p := protogen.Random(rng, opts)
		k := 2 + int(ring%4)
		in, err := NewInstance(p, k, WithWorkers(1))
		if err != nil {
			t.Fatalf("NewInstance(%s, K=%d): %v", p.Name(), k, err)
		}
		// A behaviorally identical twin with the same action list pinned as a
		// distinguished process at position 0: fast() is nil there, so every
		// twin query exercises the symbolic guard-evaluation emit against the
		// same expected results.
		twin, err := NewInstance(p, k, WithWorkers(1), WithProcessActions(0, p.Actions()))
		if err != nil {
			t.Fatalf("NewInstance(twin %s, K=%d): %v", p.Name(), k, err)
		}

		sc := in.newScratch()
		sc.od.reset(0)
		tsc := twin.newScratch()
		tsc.od.reset(0)
		vals := make([]int, k)
		view := make(core.View, p.W())
		for id := uint64(0); id < in.n; id++ {
			in.DecodeInto(id, vals)
			for r := 0; r < k; r++ {
				if sc.od.vals[r] != vals[r] {
					t.Fatalf("state %d: odometer vals[%d] = %d, DecodeInto says %d", id, r, sc.od.vals[r], vals[r])
				}
				in.viewInto(vals, r, view)
				if want := int32(core.Encode(view, in.d)); sc.od.codes[r] != want {
					t.Fatalf("state %d: odometer codes[%d] = %d, re-encode says %d", id, r, sc.od.codes[r], want)
				}
			}

			want := referenceSuccessors(in, id)
			if got := in.successorsAt(sc); !equalU64(got, want) {
				t.Fatalf("state %d: fast successors %v, reference %v", id, got, want)
			}
			if got := twin.successorsAt(tsc); !equalU64(got, want) {
				t.Fatalf("state %d: symbolic twin successors %v, reference %v", id, got, want)
			}

			enabled := len(in.EnabledProcesses(id))
			if got := in.enabledCountAt(sc); got != enabled {
				t.Fatalf("state %d: enabledCountAt = %d, EnabledProcesses has %d", id, got, enabled)
			}
			if got := in.deadlockAt(sc); got != (enabled == 0) {
				t.Fatalf("state %d: deadlockAt = %v with %d enabled processes", id, got, enabled)
			}
			if got := twin.enabledCountAt(tsc); got != enabled {
				t.Fatalf("state %d: twin enabledCountAt = %d, want %d", id, got, enabled)
			}

			if got, direct := in.InI(id), in.evalI(vals); got != direct {
				t.Fatalf("state %d: InI bitset says %v, direct evaluation says %v", id, got, direct)
			}
			if twin.InI(id) != in.InI(id) {
				t.Fatalf("state %d: twin InI = %v, symmetric InI = %v", id, twin.InI(id), in.InI(id))
			}

			if id+1 < in.n {
				sc.od.step()
				tsc.od.step()
			}
		}
	})
}

// referenceSuccessors derives the sorted deduplicated successor set of id
// from the detailed guard-evaluation walk — the oracle side of the
// differential.
func referenceSuccessors(in *Instance, id uint64) []uint64 {
	var out []uint64
	for _, tr := range in.SuccessorsDetailed(id) {
		out = append(out, tr.To)
	}
	return sortDedup(out)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
