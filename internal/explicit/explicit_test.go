package explicit

import (
	"math/rand"
	"reflect"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func mustInstance(t *testing.T, p *core.Protocol, k int, opts ...Option) *Instance {
	t.Helper()
	in, err := NewInstance(p, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	p := protocols.AgreementBase()
	if _, err := NewInstance(p, 1); err == nil {
		t.Fatal("K=1 must be rejected")
	}
	if _, err := NewInstance(p, 70); err == nil {
		t.Fatal("2^70 states must overflow")
	}
	if _, err := NewInstance(p, 30); err == nil {
		t.Fatal("2^30 exceeds default state limit")
	}
	if _, err := NewInstance(p, 24, WithMaxStates(1<<25)); err != nil {
		t.Fatalf("2^24 within raised limit should work: %v", err)
	}
}

func TestEncodeDecodeGlobal(t *testing.T) {
	in := mustInstance(t, protocols.SumNotTwoBase(), 4)
	if in.NumStates() != 81 {
		t.Fatalf("NumStates = %d", in.NumStates())
	}
	for id := uint64(0); id < in.NumStates(); id++ {
		if got := in.Encode(in.Decode(id)); got != id {
			t.Fatalf("roundtrip %d -> %d", id, got)
		}
	}
}

func TestEncodePanics(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBase(), 3)
	for name, f := range map[string]func(){
		"arity":  func() { in.Encode([]int{0}) },
		"domain": func() { in.Encode([]int{0, 0, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestViewWrapsAroundRing(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBase(), 3)
	id := in.Encode([]int{1, 0, 1})
	// Process 0 reads x_2, x_0 = (1, 1).
	if got := in.View(id, 0); !reflect.DeepEqual(got, core.View{1, 1}) {
		t.Fatalf("View(0) = %v", got)
	}
	if got := in.View(id, 1); !reflect.DeepEqual(got, core.View{1, 0}) {
		t.Fatalf("View(1) = %v", got)
	}
}

func TestInIMatchesConjunction(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBase(), 4)
	// I = all equal: exactly 0000 and 1111.
	var count int
	for id := uint64(0); id < in.NumStates(); id++ {
		if in.InI(id) {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("|I| = %d, want 2", count)
	}
	if !in.InI(in.Encode([]int{1, 1, 1, 1})) || in.InI(in.Encode([]int{1, 0, 1, 0})) {
		t.Fatal("InI wrong")
	}
}

func TestSuccessorsAgreement(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBoth(), 3)
	id := in.Encode([]int{1, 0, 0})
	det := in.SuccessorsDetailed(id)
	// Enabled: P1 (x0=1,x1=0 -> t01), P0 (x2=0,x0=1 -> t10).
	if len(det) != 2 {
		t.Fatalf("transitions = %v", det)
	}
	if det[0].Process != 0 || det[0].Action != "t10" || det[0].To != in.Encode([]int{0, 0, 0}) {
		t.Fatalf("first transition = %+v", det[0])
	}
	if det[1].Process != 1 || det[1].Action != "t01" || det[1].To != in.Encode([]int{1, 1, 0}) {
		t.Fatalf("second transition = %+v", det[1])
	}
	if got := in.EnabledProcesses(id); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("enabled = %v", got)
	}
	if !in.HasTransition(id, in.Encode([]int{0, 0, 0})) {
		t.Fatal("HasTransition missing")
	}
	if in.HasTransition(id, in.Encode([]int{1, 1, 1})) {
		t.Fatal("HasTransition phantom")
	}
}

func TestDeadlocksAgreementOneSided(t *testing.T) {
	in := mustInstance(t, protocols.AgreementOneSided("t01"), 3)
	dl := in.Deadlocks()
	// With only t01, deadlocks are exactly the all-equal states.
	want := []uint64{in.Encode([]int{0, 0, 0}), in.Encode([]int{1, 1, 1})}
	if !reflect.DeepEqual(dl, want) {
		t.Fatalf("deadlocks = %v, want %v", dl, want)
	}
	if got := in.IllegitimateDeadlocks(); len(got) != 0 {
		t.Fatalf("illegitimate deadlocks = %v", got)
	}
}

func TestCheckClosureHolds(t *testing.T) {
	for _, p := range []*core.Protocol{
		protocols.MatchingA(),
		protocols.AgreementBoth(),
		protocols.SumNotTwoSolution(),
	} {
		in := mustInstance(t, p, 5)
		if v := in.CheckClosure(); v != nil {
			t.Fatalf("%s: closure violated: %+v", p.Name(), *v)
		}
	}
}

func TestCheckClosureViolation(t *testing.T) {
	// An action that moves 00 (legitimate) to 01 (depends) — craft a clear
	// violation: legit = all zeros locally; action flips a zero to one.
	p := core.MustNew(core.Config{
		Name: "bad", Domain: 2, Lo: -1, Hi: 0,
		Actions: []core.Action{{
			Name:  "corrupt",
			Guard: func(v core.View) bool { return v[0] == 0 && v[1] == 0 },
			Next:  func(v core.View) []int { return []int{1} },
		}},
		Legit: func(v core.View) bool { return v[0] == 0 && v[1] == 0 },
	})
	in := mustInstance(t, p, 3)
	v := in.CheckClosure()
	if v == nil {
		t.Fatal("expected closure violation")
	}
	if !in.InI(v.From) || in.InI(v.To) {
		t.Fatal("violation endpoints wrong")
	}
}

// The paper's Example 5.2 livelock at K=4:
// <1000, 1100, 0100, 0110, 0111, 0011, 1011, 1001>.
func TestAgreementK4PaperLivelock(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBoth(), 4)
	strs := [][]int{
		{1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {0, 1, 1, 0},
		{0, 1, 1, 1}, {0, 0, 1, 1}, {1, 0, 1, 1}, {1, 0, 0, 1},
	}
	cycle := make([]uint64, len(strs))
	for i, s := range strs {
		cycle[i] = in.Encode(s)
	}
	if !in.IsLivelock(cycle) {
		t.Fatal("the paper's Example 5.2 cycle must be a livelock")
	}
	// And the checker must find some livelock on its own.
	found := in.FindLivelock()
	if found == nil {
		t.Fatal("FindLivelock missed the K=4 livelock")
	}
	if !in.IsLivelock(found) {
		t.Fatalf("FindLivelock returned a non-livelock: %s", in.FormatCycle(found))
	}
}

func TestIsLivelockRejectsBadCycles(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBoth(), 4)
	if in.IsLivelock(nil) {
		t.Fatal("empty cycle is not a livelock")
	}
	// A cycle touching I.
	if in.IsLivelock([]uint64{in.Encode([]int{0, 0, 0, 0})}) {
		t.Fatal("cycle inside I rejected")
	}
	// States outside I but not a transition cycle.
	c := []uint64{in.Encode([]int{1, 0, 0, 0}), in.Encode([]int{0, 1, 1, 1})}
	if in.IsLivelock(c) {
		t.Fatal("non-transition cycle rejected")
	}
}

func TestOneSidedAgreementConverges(t *testing.T) {
	for _, side := range []string{"t01", "t10"} {
		for k := 2; k <= 7; k++ {
			in := mustInstance(t, protocols.AgreementOneSided(side), k)
			rep := in.CheckStrongConvergence()
			if !rep.Converges {
				t.Fatalf("agreement/%s K=%d should converge: %+v", side, k, rep)
			}
			if rep.StatesExplored != in.NumStates() {
				t.Fatal("StatesExplored must equal the global state count")
			}
		}
	}
}

func TestMatchingAModelChecked5678(t *testing.T) {
	// The paper: "We model-checked this protocol for different sizes of ring
	// (5,6,7 and 8 processes) and demonstrated its deadlock freedom."
	for _, k := range []int{5, 6, 7, 8} {
		in := mustInstance(t, protocols.MatchingA(), k)
		if got := in.IllegitimateDeadlocks(); len(got) != 0 {
			t.Fatalf("matchingA K=%d has illegitimate deadlock %s", k, in.Format(got[0]))
		}
	}
}

func TestMatchingBConvergesOnlyAtK5(t *testing.T) {
	in5 := mustInstance(t, protocols.MatchingB(), 5)
	if !in5.CheckStrongConvergence().Converges {
		t.Fatal("Example 4.3 must stabilize for K=5")
	}
	in6 := mustInstance(t, protocols.MatchingB(), 6)
	rep := in6.CheckStrongConvergence()
	if rep.Converges || rep.DeadlockWitness == nil {
		t.Fatal("Example 4.3 must deadlock for K=6")
	}
}

func TestGoudaAcharyaLivelockK5(t *testing.T) {
	in := mustInstance(t, protocols.GoudaAcharya(), 5)
	cycle := in.FindLivelock()
	if cycle == nil {
		t.Fatal("Gouda-Acharya fragment must livelock at K=5")
	}
	if !in.IsLivelock(cycle) {
		t.Fatal("witness is not a livelock")
	}
	// The paper's concrete K=5 livelock (Figure 8 discussion):
	// <lslsl, sslsl, sllsl, slssl, slsll, slsls, llsls, lssls, lslls, lslss>.
	names := []string{"lslsl", "sslsl", "sllsl", "slssl", "slsll", "slsls", "llsls", "lssls", "lslls", "lslss"}
	paperCycle := make([]uint64, len(names))
	for i, s := range names {
		vals := make([]int, len(s))
		for j, ch := range s {
			switch ch {
			case 'l':
				vals[j] = protocols.MatchLeft
			case 's':
				vals[j] = protocols.MatchSelf
			case 'r':
				vals[j] = protocols.MatchRight
			}
		}
		paperCycle[i] = in.Encode(vals)
	}
	if !in.IsLivelock(paperCycle) {
		t.Fatal("the paper's Figure 8 livelock must verify")
	}
}

func TestComputationReplay(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBoth(), 4)
	start := in.Encode([]int{1, 0, 0, 0})
	// The paper's schedule Sch: processes 1,0,2,3,1,0,2,3.
	states, err := in.Computation(start, []int{1, 0, 2, 3, 1, 0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 9 || states[8] != start {
		t.Fatalf("schedule must return to start; got %v", states)
	}
	// Error on disabled process.
	if _, err := in.Computation(in.Encode([]int{0, 0, 0, 0}), []int{0}); err == nil {
		t.Fatal("expected error scheduling a disabled process")
	}
}

func TestComputationAmbiguousChoice(t *testing.T) {
	in := mustInstance(t, protocols.MatchingA(), 4)
	// sss...: A2 enabled with two choices.
	start := in.Encode([]int{protocols.MatchSelf, protocols.MatchSelf, protocols.MatchSelf, protocols.MatchSelf})
	if _, err := in.Computation(start, []int{0}); err == nil {
		t.Fatal("expected nondeterminism error")
	}
}

func TestWeakConvergence(t *testing.T) {
	// Agreement one-sided strongly converges, hence weakly.
	in := mustInstance(t, protocols.AgreementOneSided("t01"), 4)
	ok, stuck := in.CheckWeakConvergence()
	if !ok {
		t.Fatalf("one-sided agreement must weakly converge; stuck: %v", stuck)
	}
	// Agreement with no actions at all: states outside I can't move.
	in2 := mustInstance(t, protocols.AgreementBase(), 3)
	ok2, stuck2 := in2.CheckWeakConvergence()
	if ok2 || len(stuck2) != 6 {
		t.Fatalf("empty agreement: ok=%v stuck=%d, want false, 6", ok2, len(stuck2))
	}
	// AgreementBoth weakly converges (some path reaches I) despite livelocks.
	in3 := mustInstance(t, protocols.AgreementBoth(), 4)
	ok3, _ := in3.CheckWeakConvergence()
	if !ok3 {
		t.Fatal("agreement-both must weakly converge")
	}
}

func TestRecoveryRadius(t *testing.T) {
	in := mustInstance(t, protocols.AgreementOneSided("t01"), 4)
	max, mean, all := in.RecoveryRadius()
	if !all {
		t.Fatal("all states must reach I")
	}
	if max < 1 || mean <= 0 {
		t.Fatalf("radius = %d mean=%f", max, mean)
	}
	// 1000 needs at least... worst case for t01-only on K=4 is 3 copies.
	if max > 12 {
		t.Fatalf("radius %d implausibly large", max)
	}
}

func TestDijkstraTokenRingStabilizes(t *testing.T) {
	follower, bottom := protocols.DijkstraTokenRing(4)
	in := mustInstance(t, follower, 4,
		WithProcessActions(0, bottom),
		WithGlobalPredicate(protocols.TokenRingLegit))
	if v := in.CheckClosure(); v != nil {
		t.Fatalf("token ring closure violated: %+v", *v)
	}
	rep := in.CheckStrongConvergence()
	if !rep.Converges {
		t.Fatalf("Dijkstra token ring (m=4,K=4) must stabilize: %+v", rep)
	}
}

func TestDijkstraTokenRingTooFewStatesLivelocks(t *testing.T) {
	// m < K breaks Dijkstra's protocol: with m=2, K=4 there are illegitimate
	// executions that never stabilize.
	follower, bottom := protocols.DijkstraTokenRing(2)
	in := mustInstance(t, follower, 4,
		WithProcessActions(0, bottom),
		WithGlobalPredicate(protocols.TokenRingLegit))
	rep := in.CheckStrongConvergence()
	if rep.Converges {
		t.Fatal("m=2 < K=4 must not stabilize")
	}
}

func TestFormatAndFormatCycle(t *testing.T) {
	in := mustInstance(t, protocols.MatchingA(), 3)
	id := in.Encode([]int{protocols.MatchLeft, protocols.MatchSelf, protocols.MatchRight})
	if got := in.Format(id); got != "lsr" {
		t.Fatalf("Format = %q", got)
	}
	got := in.FormatCycle([]uint64{id, id})
	if got != "<lsr, lsr>" {
		t.Fatalf("FormatCycle = %q", got)
	}
}

// Property: Successors and EnabledProcesses agree — a state has a successor
// iff some process is enabled — across random protocols and states.
func TestSuccessorsEnabledAgreementRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(2)
		moves := map[core.LocalState][]int{}
		n := d * d
		for s := 0; s < n; s++ {
			if rng.Intn(2) == 0 {
				moves[core.LocalState(s)] = []int{rng.Intn(d)}
			}
		}
		p, err := core.NewFromTable(core.Config{
			Name: "rnd", Domain: d, Lo: -1, Hi: 0,
			Legit: func(v core.View) bool { return v[0] == v[1] },
		}, []core.TableAction{{Name: "m", Moves: moves}})
		if err != nil {
			t.Fatal(err)
		}
		k := 3 + rng.Intn(3)
		in := mustInstance(t, p, k)
		for probe := 0; probe < 50; probe++ {
			id := uint64(rng.Intn(int(in.NumStates())))
			succ := in.Successors(id)
			enabled := in.EnabledProcesses(id)
			// Note: a "move" to the same value is a self-loop successor, so
			// enabled processes always yield successors in this model.
			if (len(succ) > 0) != (len(enabled) > 0) {
				t.Fatalf("trial %d state %d: succ=%v enabled=%v", trial, id, succ, enabled)
			}
			if in.IsDeadlock(id) != (len(enabled) == 0) {
				t.Fatal("IsDeadlock disagrees with EnabledProcesses")
			}
		}
	}
}

func TestIsWeaklyFairCycle(t *testing.T) {
	in := mustInstance(t, protocols.AgreementBoth(), 4)
	strs := [][]int{
		{1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {0, 1, 1, 0},
		{0, 1, 1, 1}, {0, 0, 1, 1}, {1, 0, 1, 1}, {1, 0, 0, 1},
	}
	cycle := make([]uint64, len(strs))
	for i, s := range strs {
		cycle[i] = in.Encode(s)
	}
	// The paper's livelock is weakly fair (Corollary 5.7: nobody is
	// continuously enabled, so the condition holds vacuously — and in fact
	// every process executes twice per period).
	if !in.IsWeaklyFairCycle(cycle) {
		t.Fatal("the paper's livelock must be weakly fair")
	}
	// Not a livelock -> not a fair cycle.
	if in.IsWeaklyFairCycle([]uint64{in.Encode([]int{0, 0, 0, 0})}) {
		t.Fatal("non-livelock input must be rejected")
	}
}
