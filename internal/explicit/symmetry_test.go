package explicit

import (
	"fmt"
	"math/rand"
	"testing"

	"paramring/internal/protocols"
	"paramring/internal/protogen"
)

func TestCanonicalIsOrbitMinimum(t *testing.T) {
	in := MustNewInstance(protocols.SumNotTwoBase(), 4)
	for id := uint64(0); id < in.NumStates(); id++ {
		c := in.Canonical(id)
		// Brute-force the orbit.
		vals := in.Decode(id)
		best := id
		for r := 1; r < in.K(); r++ {
			rot := make([]int, in.K())
			for i := range rot {
				rot[i] = vals[(i+r)%in.K()]
			}
			if e := in.Encode(rot); e < best {
				best = e
			}
		}
		if c != best {
			t.Fatalf("Canonical(%d) = %d, brute force %d", id, c, best)
		}
	}
}

func TestCanonicalIdempotentAndInvariant(t *testing.T) {
	in := MustNewInstance(protocols.MatchingA(), 5)
	rng := rand.New(rand.NewSource(1))
	for probe := 0; probe < 200; probe++ {
		id := uint64(rng.Int63n(int64(in.NumStates())))
		c := in.Canonical(id)
		if in.Canonical(c) != c {
			t.Fatal("Canonical not idempotent")
		}
		if in.InI(id) != in.InI(c) {
			t.Fatal("I must be rotation-invariant")
		}
		if in.IsDeadlock(id) != in.IsDeadlock(c) {
			t.Fatal("deadlock status must be rotation-invariant")
		}
	}
}

func TestOrbitCountBounds(t *testing.T) {
	in := MustNewInstance(protocols.AgreementBase(), 6)
	orbits := in.OrbitCount()
	n := in.NumStates()
	if orbits < n/uint64(in.K()) || orbits >= n {
		t.Fatalf("orbit count %d out of bounds for %d states on K=%d", orbits, n, in.K())
	}
	// Burnside for binary necklaces of length 6: 14 orbits.
	if orbits != 14 {
		t.Fatalf("binary necklaces of length 6 = %d, want 14", orbits)
	}
}

// Reduced and full strong-convergence checks must agree on the zoo.
func TestReducedAgreesWithFullZoo(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"matchingA", 6}, {"matchingB", 6}, {"agreement-both", 5},
		{"agreement-t01", 6}, {"sum-not-two-ss", 6}, {"mis", 6},
		{"gouda-acharya", 5}, {"coloring3", 4},
	} {
		p := protocols.All()[tc.name]
		in := MustNewInstance(p, tc.k)
		full := in.CheckStrongConvergence()
		red, err := in.CheckStrongConvergenceReduced()
		if err != nil {
			t.Fatal(err)
		}
		if full.Converges != red.Converges {
			t.Fatalf("%s K=%d: full=%v reduced=%v", tc.name, tc.k, full.Converges, red.Converges)
		}
		if (full.DeadlockWitness != nil) != (red.DeadlockWitness != nil) {
			t.Fatalf("%s K=%d: deadlock witness presence differs", tc.name, tc.k)
		}
	}
}

func TestReducedAgreesWithFullRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		p := protogen.Random(rng, protogen.Options{MovePercent: 50, Nondet: true})
		k := 3 + rng.Intn(4)
		in := MustNewInstance(p, k)
		full := in.CheckStrongConvergence()
		red, err := in.CheckStrongConvergenceReduced()
		if err != nil {
			t.Fatal(err)
		}
		if full.Converges != red.Converges {
			t.Fatalf("trial %d (%s, K=%d): full=%v reduced=%v",
				trial, p.Name(), k, full.Converges, red.Converges)
		}
	}
}

func TestReducedRejectsAsymmetric(t *testing.T) {
	follower, bottom := protocols.DijkstraTokenRing(3)
	in := MustNewInstance(follower, 3,
		WithProcessActions(0, bottom),
		WithGlobalPredicate(protocols.TokenRingLegit))
	if _, err := in.CheckStrongConvergenceReduced(); err == nil {
		t.Fatal("asymmetric instance must be rejected")
	}
}

// Ablation: symmetry reduction vs full exploration.
func BenchmarkStrongConvergenceReducedVsFull(b *testing.B) {
	p := protocols.SumNotTwoSolution()
	for _, k := range []int{8, 10} {
		in := MustNewInstance(p, k)
		b.Run(fmt.Sprintf("full/K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergence().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
		b.Run(fmt.Sprintf("reduced/K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := in.CheckStrongConvergenceReduced()
				if err != nil || !rep.Converges {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}
