package explicit

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

// statesCap keeps the property sweep affordable: protocols whose domain^K
// exceeds it at a given K are skipped for that K (the sweep still covers
// every zoo protocol at its smaller sizes).
const statesCap = 1 << 17

// zooNames returns the registered protocols in deterministic order.
func zooNames() []string {
	var names []string
	for name := range protocols.All() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sameWitness(a, b *uint64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// TestParallelMatchesSequential is the engine's contract: for every zoo
// protocol and K in 4..10, the parallel checker and the sequential
// reference return identical verdicts AND identical witnesses — deadlocks,
// livelock cycles, weak convergence, recovery radii, closure. Run under
// -race in CI (with -cpu variations) this doubles as the concurrency
// soundness suite.
func TestParallelMatchesSequential(t *testing.T) {
	for _, name := range zooNames() {
		p := protocols.All()[name]
		for k := 4; k <= 10; k++ {
			seq, err := NewInstance(p, k, WithWorkers(1), WithMaxStates(statesCap))
			if err != nil {
				continue // domain^K beyond the sweep cap at this K
			}
			par, err := NewInstance(p, k, WithWorkers(4), WithMaxStates(statesCap))
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			t.Run(fmt.Sprintf("%s/K=%d", name, k), func(t *testing.T) {
				if !reflect.DeepEqual(seq.inI, par.inI) {
					t.Fatal("parallel I(K) evaluation differs from sequential")
				}

				srep := seq.CheckStrongConvergenceSeq()
				prep := par.CheckStrongConvergence()
				if srep.Converges != prep.Converges {
					t.Fatalf("Converges: seq=%v par=%v", srep.Converges, prep.Converges)
				}
				if !sameWitness(srep.DeadlockWitness, prep.DeadlockWitness) {
					t.Fatalf("DeadlockWitness: seq=%v par=%v", srep.DeadlockWitness, prep.DeadlockWitness)
				}
				if !reflect.DeepEqual(srep.LivelockWitness, prep.LivelockWitness) {
					t.Fatalf("LivelockWitness: seq=%v par=%v", srep.LivelockWitness, prep.LivelockWitness)
				}
				if prep.LivelockWitness != nil && !par.IsLivelock(prep.LivelockWitness) {
					t.Fatal("parallel livelock witness does not validate")
				}
				if prep.StatesExplored != seq.NumStates() {
					t.Fatalf("StatesExplored = %d, want %d", prep.StatesExplored, seq.NumStates())
				}

				if !reflect.DeepEqual(seq.Deadlocks(), par.Deadlocks()) {
					t.Fatal("Deadlocks differ")
				}
				if !reflect.DeepEqual(seq.IllegitimateDeadlocks(), par.IllegitimateDeadlocks()) {
					t.Fatal("IllegitimateDeadlocks differ")
				}
				if sv, pv := seq.CheckClosure(), par.CheckClosure(); !reflect.DeepEqual(sv, pv) {
					t.Fatalf("CheckClosure: seq=%v par=%v", sv, pv)
				}

				// The backward-BFS surfaces are the heavy part; bound them.
				if seq.NumStates() <= 1<<13 {
					sok, sstuck := seq.CheckWeakConvergence()
					pok, pstuck := par.CheckWeakConvergence()
					if sok != pok || !reflect.DeepEqual(sstuck, pstuck) {
						t.Fatalf("CheckWeakConvergence: seq=(%v,%d states) par=(%v,%d states)",
							sok, len(sstuck), pok, len(pstuck))
					}
					smax, smean, sall := seq.RecoveryRadius()
					pmax, pmean, pall := par.RecoveryRadius()
					if smax != pmax || smean != pmean || sall != pall {
						t.Fatalf("RecoveryRadius: seq=(%d,%f,%v) par=(%d,%f,%v)",
							smax, smean, sall, pmax, pmean, pall)
					}
				}
			})
		}
	}
}

// TestParallelWorkerCountsAgree varies the worker count (including an odd
// one and more workers than meaningful chunks) on a protocol with real
// livelocks, pinning down that chunk-boundary arithmetic never changes the
// answer.
func TestParallelWorkerCountsAgree(t *testing.T) {
	p := protocols.GoudaAcharya()
	for _, k := range []int{5, 6, 7} {
		ref := mustInstance(t, p, k, WithWorkers(1)).CheckStrongConvergenceSeq()
		for _, w := range []int{2, 3, 4, 8, 64} {
			got := mustInstance(t, p, k, WithWorkers(w)).CheckStrongConvergence()
			if got.Converges != ref.Converges ||
				!sameWitness(got.DeadlockWitness, ref.DeadlockWitness) ||
				!reflect.DeepEqual(got.LivelockWitness, ref.LivelockWitness) {
				t.Fatalf("K=%d workers=%d: report diverged from sequential", k, w)
			}
		}
	}
}

// TestParallelClosureViolation checks seq/par witness identity on a
// protocol whose I is NOT closed (an action that jumps out of I), since the
// zoo protocols are all closed and would leave checkClosureParallel's
// witness path untested.
func TestParallelClosureViolation(t *testing.T) {
	p := core.MustNew(core.Config{
		Name:   "leaky",
		Domain: 2,
		Lo:     -1, Hi: 0,
		Actions: []core.Action{{
			Name:  "leak",
			Guard: func(v core.View) bool { return v[1] == 0 },
			Next:  func(v core.View) []int { return []int{1} },
		}},
		Legit: func(v core.View) bool { return v[1] == 0 },
	})
	for _, k := range []int{4, 7} {
		sv := mustInstance(t, p, k, WithWorkers(1)).CheckClosure()
		pv := mustInstance(t, p, k, WithWorkers(4)).CheckClosure()
		if sv == nil || pv == nil {
			t.Fatalf("K=%d: expected a closure violation, got seq=%v par=%v", k, sv, pv)
		}
		if *sv != *pv {
			t.Fatalf("K=%d: closure witness seq=%+v par=%+v", k, *sv, *pv)
		}
	}
}

// TestWithWorkersDefaults pins the option contract: default and n <= 0
// resolve to at least one worker, and the accessor reports the setting.
func TestWithWorkersDefaults(t *testing.T) {
	p := protocols.AgreementBase()
	if w := mustInstance(t, p, 4).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := mustInstance(t, p, 4, WithWorkers(-3)).Workers(); w < 1 {
		t.Fatalf("WithWorkers(-3) resolved to %d", w)
	}
	if w := mustInstance(t, p, 4, WithWorkers(6)).Workers(); w != 6 {
		t.Fatalf("WithWorkers(6) resolved to %d", w)
	}
}

// TestBitsetClaimsAreExclusive hammers TestAndSet from many goroutines and
// checks every bit is claimed exactly once in total.
func TestBitsetClaimsAreExclusive(t *testing.T) {
	const n = 1 << 12
	const gor = 8
	b := newBitset(n)
	wins := make([]int, gor)
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for id := uint64(0); id < n; id++ {
				if b.TestAndSet(id) {
					wins[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != n {
		t.Fatalf("claimed %d bits, want %d", total, n)
	}
	for id := uint64(0); id < n; id++ {
		if !b.Get(id) {
			t.Fatalf("bit %d unset after claims", id)
		}
	}
}

// TestChunkForCoversRange checks the chunk partition is exact for awkward
// n/worker combinations.
func TestChunkForCoversRange(t *testing.T) {
	for _, n := range []uint64{0, 1, 63, 64, 65, 1000} {
		for _, w := range []int{1, 2, 3, 7, 64} {
			var covered uint64
			prevHi := uint64(0)
			for i := 0; i < w; i++ {
				lo, hi := chunkFor(n, w, i)
				if lo > hi || lo < prevHi {
					t.Fatalf("n=%d w=%d chunk %d: [%d,%d) after %d", n, w, i, lo, hi, prevHi)
				}
				if i > 0 && lo != prevHi && lo != n {
					t.Fatalf("n=%d w=%d chunk %d: gap %d..%d", n, w, i, prevHi, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d w=%d: covered %d states", n, w, covered)
			}
		}
	}
}

// TestSynthesizeGlobalWorkersDeterministic: the parallel per-K baseline
// must pick exactly the sequential search's candidate, with the same
// CandidatesTried and StatesExplored bookkeeping (Table 4 depends on it).
func TestSynthesizeGlobalWorkersDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"agreement", 3},
		{"sum-not-two", 3},
		{"sum-not-two", 4},
		{"coloring3", 3},
	} {
		base := protocols.All()[tc.name]
		seq, err := SynthesizeGlobalWorkers(base, tc.k, 0, 1)
		if err != nil {
			t.Fatalf("%s K=%d seq: %v", tc.name, tc.k, err)
		}
		for _, w := range []int{2, 4, 7} {
			par, err := SynthesizeGlobalWorkers(base, tc.k, 0, w)
			if err != nil {
				t.Fatalf("%s K=%d workers=%d: %v", tc.name, tc.k, w, err)
			}
			if !reflect.DeepEqual(par.Chosen, seq.Chosen) {
				t.Fatalf("%s K=%d workers=%d: chose %v, sequential chose %v",
					tc.name, tc.k, w, par.Chosen, seq.Chosen)
			}
			if par.CandidatesTried != seq.CandidatesTried || par.StatesExplored != seq.StatesExplored {
				t.Fatalf("%s K=%d workers=%d: tried=%d explored=%d, sequential tried=%d explored=%d",
					tc.name, tc.k, w, par.CandidatesTried, par.StatesExplored,
					seq.CandidatesTried, seq.StatesExplored)
			}
		}
	}
}

// TestSynthesizeGlobalWorkersFailureAgrees: when no candidate converges
// (2-coloring), both paths report the same failure.
func TestSynthesizeGlobalWorkersFailureAgrees(t *testing.T) {
	base := protocols.Coloring(2)
	_, seqErr := SynthesizeGlobalWorkers(base, 4, 0, 1)
	_, parErr := SynthesizeGlobalWorkers(base, 4, 0, 4)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected failures, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("failure modes differ: seq=%q par=%q", seqErr, parErr)
	}
}

// TestParallelSharedInstance exercises concurrent use of ONE instance — the
// lazily built fast-path table and read-only caches must be safe when the
// same instance serves queries from many goroutines.
func TestParallelSharedInstance(t *testing.T) {
	in := mustInstance(t, protocols.SumNotTwoSolution(), 7, WithWorkers(4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := uint64(0); id < in.NumStates(); id += 17 {
				in.Successors(id)
				in.IsDeadlock(id)
			}
		}()
	}
	wg.Wait()
	if !in.CheckStrongConvergence().Converges {
		t.Fatal("verdict changed under concurrent queries")
	}
}
