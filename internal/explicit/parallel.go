package explicit

import (
	"context"
	"math"
	"runtime/trace"
	"sort"
	"sync"
	"sync/atomic"
)

// The frontier-parallel engine. The global side of the paper's Table 1 is
// domain^K work by construction — local reasoning (Theorems 4.2 and 5.14)
// avoids the exponent, and this file only shrinks the constant so the
// oracle/baseline comparison runs as fast as the hardware allows:
//
//   - state scans (deadlock search, Deadlocks, CheckClosure) are split into
//     one contiguous code range per worker, with a CAS-min merge so the
//     reported witness is exactly the sequential one (the smallest id);
//   - the backward BFS of CheckWeakConvergence/RecoveryRadius runs
//     level-synchronously with a lock-free CAS bitset claiming states, so
//     the computed distances are the (unique) BFS distances regardless of
//     worker interleaving;
//   - livelock detection (the cycle search of Proposition 2.1) builds the
//     not-I-restricted transition graph in parallel as a CSR adjacency and
//     then runs the same sequential Tarjan over it, so the witness cycle is
//     bit-identical to FindLivelock's. Tarjan itself stays serial — Amdahl
//     caps the speedup, but successor generation (a window decode plus a
//     table lookup per process per state) dominates the sequential profile.
//
// Every parallel path returns results identical to the sequential reference
// (kept under the same exported names with workers == 1) and is exercised
// against it by TestParallelMatchesSequential under -race.

// chunkFor returns the half-open range of chunk w when [0, n) is split into
// workers contiguous chunks. Chunk boundaries are rounded up to multiples
// of 64 states so that every chunk owns whole words of the packed bitsets —
// concurrent chunk fills can then use plain (non-atomic) bit writes without
// ever sharing a word across workers.
func chunkFor(n uint64, workers, w int) (lo, hi uint64) {
	size := (n + uint64(workers) - 1) / uint64(workers)
	size = (size + 63) &^ 63
	lo = uint64(w) * size
	hi = lo + size
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forEachChunk runs fn concurrently on one contiguous range of state codes
// per worker and waits for all of them. With a single worker it runs fn
// inline.
func (in *Instance) forEachChunk(fn func(lo, hi uint64)) {
	if in.workers <= 1 || in.n == 0 {
		fn(0, in.n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		lo, hi := chunkFor(in.n, in.workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// firstIllegitimateDeadlockParallel scans all states for the smallest-coded
// global deadlock outside I. Workers CAS-min their first hit and bail out
// early once a lower-ranged worker has already won, so the result equals
// the sequential ascending scan's first hit.
func (in *Instance) firstIllegitimateDeadlockParallel(ctx context.Context) (uint64, bool) {
	defer trace.StartRegion(ctx, "explicit.deadlockScan").End()
	var best atomic.Uint64
	best.Store(math.MaxUint64)
	in.forEachChunk(func(lo, hi uint64) {
		if lo >= hi {
			return
		}
		sc := in.newScratch()
		sc.od.reset(lo)
		for id := lo; id < hi; id++ {
			if id%4096 == 0 && (ctx.Err() != nil || best.Load() < lo) {
				return // canceled, or a lower chunk already found one
			}
			if !in.inI.Get(id) && in.deadlockAt(sc) {
				for {
					cur := best.Load()
					if id >= cur || best.CompareAndSwap(cur, id) {
						break
					}
				}
				return // the first hit in an ascending chunk is the chunk's min
			}
			if id+1 < hi {
				sc.od.step()
			}
		}
	})
	id := best.Load()
	return id, id != math.MaxUint64
}

// collectStatesParallel returns, in increasing state-code order, every
// state satisfying pred. Per-chunk slices are concatenated in chunk order,
// so the result is identical to a sequential ascending scan. The scratch
// handed to pred has its odometer synced to id, so predicates can use the
// incremental deadlockAt/successorsAt helpers directly.
func (in *Instance) collectStatesParallel(pred func(id uint64, sc *scratch) bool) []uint64 {
	parts := make([][]uint64, in.workers)
	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		lo, hi := chunkFor(in.n, in.workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			sc := in.newScratch()
			sc.od.reset(lo)
			var out []uint64
			for id := lo; id < hi; id++ {
				if pred(id, sc) {
					out = append(out, id)
				}
				if id+1 < hi {
					sc.od.step()
				}
			}
			parts[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var out []uint64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// parallelEdgeBudget bounds the CSR adjacency the parallel livelock check
// materializes (edges are bounded by states x ring size). Past the budget
// the check falls back to the on-the-fly sequential Tarjan — correctness is
// unaffected, only the speedup of the livelock phase.
const parallelEdgeBudget = 1 << 27

// notIGraph is the Delta_p | not-I transition graph in compressed sparse
// row form: states in I have an empty row, successors are the sorted
// deduplicated not-I successors — exactly what FindLivelock's restricted()
// generates on the fly.
type notIGraph struct {
	off   []uint64
	edges []uint32
}

// succ returns the not-I successors of id as a fresh slice (the Tarjan
// frames retain it), matching the sequential restricted() contract.
func (g *notIGraph) succ(id uint64) []uint64 {
	lo, hi := g.off[id], g.off[id+1]
	if lo == hi {
		return nil
	}
	out := make([]uint64, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = uint64(g.edges[i])
	}
	return out
}

// buildNotIGraphParallel materializes Delta_p | not-I with one worker per
// contiguous state range; per-chunk edge lists are stitched in chunk order
// so the layout is independent of scheduling. Returns false when the
// instance is too large for the CSR budget (caller falls back to the
// sequential path).
func (in *Instance) buildNotIGraphParallel(ctx context.Context) (*notIGraph, bool) {
	if in.n > math.MaxUint32 || in.n*uint64(in.k) > parallelEdgeBudget {
		return nil, false
	}
	defer trace.StartRegion(ctx, "explicit.csrBuild").End()
	type chunk struct {
		lo, hi uint64
		deg    []uint32
		edges  []uint32
	}
	chunks := make([]chunk, in.workers)
	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		lo, hi := chunkFor(in.n, in.workers, w)
		chunks[w] = chunk{lo: lo, hi: hi}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c *chunk) {
			defer wg.Done()
			sc := in.newScratch()
			sc.od.reset(c.lo)
			c.deg = make([]uint32, c.hi-c.lo)
			// The chunk is one ID-sorted run: the odometer keeps the window
			// codes current and the ascending ids keep the inI words and the
			// flat table hot, so the CSR build streams instead of chasing.
			for id := c.lo; id < c.hi; id++ {
				if id&cancelCheckMask == 0 && ctx.Err() != nil {
					return // partial chunk; the caller discards via ctx.Err()
				}
				if !in.inI.Get(id) {
					n := 0
					for _, s := range in.successorsAt(sc) {
						if !in.inI.Get(s) {
							c.edges = append(c.edges, uint32(s))
							n++
						}
					}
					c.deg[id-c.lo] = uint32(n)
				}
				if id+1 < c.hi {
					sc.od.step()
				}
			}
		}(&chunks[w])
	}
	wg.Wait()
	g := &notIGraph{off: make([]uint64, in.n+1)}
	total := 0
	for _, c := range chunks {
		total += len(c.edges)
	}
	g.edges = make([]uint32, 0, total)
	var off uint64
	for _, c := range chunks {
		for i := c.lo; i < c.hi; i++ {
			g.off[i] = off
			off += uint64(c.deg[i-c.lo])
		}
		g.edges = append(g.edges, c.edges...)
	}
	g.off[in.n] = off
	return g, true
}

// checkStrongConvergenceParallel is the workers > 1 path of
// CheckStrongConvergence; see the file comment for why each phase produces
// exactly the sequential verdict and witnesses. A done ctx aborts the
// in-flight phase (every worker polls it) and surfaces ctx.Err().
func (in *Instance) checkStrongConvergenceParallel(ctx context.Context) (ConvergenceReport, error) {
	rep := ConvergenceReport{StatesExplored: in.n}
	id, ok := in.firstIllegitimateDeadlockParallel(ctx)
	if err := ctx.Err(); err != nil {
		return ConvergenceReport{}, err
	}
	if ok {
		d := id
		rep.DeadlockWitness = &d
		return rep, nil
	}
	var (
		cycle []uint64
		err   error
	)
	if g, ok := in.buildNotIGraphParallel(ctx); ok && ctx.Err() == nil {
		cycle, err = in.findLivelock(ctx, g.succ)
	} else {
		cycle, err = in.FindLivelockCtx(ctx)
	}
	if err != nil {
		return ConvergenceReport{}, err
	}
	if cycle != nil {
		rep.LivelockWitness = cycle
		return rep, nil
	}
	rep.Converges = true
	return rep, nil
}

// recoveryDistancesParallel runs the backward BFS from I level-
// synchronously: each level's frontier is split among workers, predecessors
// are claimed through the CAS bitset (exactly one worker wins a state), and
// the level barrier makes the claimed distances visible before the next
// level reads them. BFS distances are unique, so the dist array equals the
// sequential one for any worker count.
func (in *Instance) recoveryDistancesParallel() []int32 {
	dist := make([]int32, in.n)
	for i := range dist {
		dist[i] = -1
	}
	seen := newBitset(in.n)
	// Seed the level-0 frontier straight from the membership bits at word
	// speed — no per-id predicate scan, and the result is ascending by
	// construction.
	frontier := in.inI.AppendSetBits(nil, 0, in.n)
	for _, id := range frontier {
		seen.Set(id)
		dist[id] = 0
	}
	for level := int32(0); len(frontier) > 0; level++ {
		// Batched frontier processing: each level is handled in ID-sorted
		// runs, so the predecessor probes of neighboring frontier states
		// touch neighboring bitset words and reuse the hot flat-table rows.
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		parts := make([][]uint64, in.workers)
		var wg sync.WaitGroup
		size := (len(frontier) + in.workers - 1) / in.workers
		for w := 0; w < in.workers; w++ {
			lo := w * size
			hi := lo + size
			if lo >= len(frontier) {
				break
			}
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w int, slice []uint64) {
				defer wg.Done()
				vals := make([]int, in.k)
				sc := in.newScratch()
				var next []uint64
				for _, id := range slice {
					in.DecodeInto(id, vals)
					for r := 0; r < in.k; r++ {
						orig := vals[r]
						for ov := 0; ov < in.d; ov++ {
							if ov == orig {
								continue
							}
							vals[r] = ov
							pred := in.Encode(vals)
							vals[r] = orig
							if seen.GetAtomic(pred) {
								continue
							}
							if !in.hasTransitionScratch(pred, id, sc) {
								continue
							}
							if seen.TestAndSet(pred) {
								dist[pred] = level + 1
								next = append(next, pred)
							}
						}
					}
				}
				parts[w] = next
			}(w, frontier[lo:hi])
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, p := range parts {
			frontier = append(frontier, p...)
		}
	}
	return dist
}

// recoveryDistancesSeq is the sequential reference: the FIFO backward BFS
// RecoveryRadius has always used, emitting the dist array.
func (in *Instance) recoveryDistancesSeq() []int32 {
	dist := make([]int32, in.n)
	for i := range dist {
		dist[i] = -1
	}
	frontier := in.inI.AppendSetBits(nil, 0, in.n)
	for _, id := range frontier {
		dist[id] = 0
	}
	vals := make([]int, in.k)
	sc := in.newScratch()
	for head := 0; head < len(frontier); head++ {
		id := frontier[head]
		in.DecodeInto(id, vals)
		for r := 0; r < in.k; r++ {
			orig := vals[r]
			for ov := 0; ov < in.d; ov++ {
				if ov == orig {
					continue
				}
				vals[r] = ov
				pred := in.Encode(vals)
				vals[r] = orig
				if dist[pred] >= 0 {
					continue
				}
				if in.hasTransitionScratch(pred, id, sc) {
					dist[pred] = dist[id] + 1
					frontier = append(frontier, pred)
				}
			}
		}
	}
	return dist
}

// recoveryDistances returns, per state, the length of the shortest
// computation into I (0 inside I, -1 when I is unreachable) — the substrate
// shared by CheckWeakConvergence and RecoveryRadius.
func (in *Instance) recoveryDistances() []int32 {
	if in.workers > 1 {
		return in.recoveryDistancesParallel()
	}
	return in.recoveryDistancesSeq()
}

// checkClosureParallel scans the states of I for the smallest-coded closure
// violation, mirroring CheckClosure's ascending scan with a CAS-min merge
// and early bail-out.
func (in *Instance) checkClosureParallel() *ClosureViolation {
	var best atomic.Uint64
	best.Store(math.MaxUint64)
	found := make([]*ClosureViolation, in.workers)
	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		lo, hi := chunkFor(in.n, in.workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			sc := in.newScratch()
			sc.od.reset(lo)
			for id := lo; id < hi; id++ {
				if id%4096 == 0 && best.Load() < lo {
					return
				}
				// Two-phase like the sequential scan: the odometer sweep
				// detects an escape from I, and only a hit pays the
				// allocating detailed walk that names the witness.
				if in.inI.Get(id) && in.closureEscapeAt(sc) {
					found[w] = in.closureWitness(id)
					for {
						cur := best.Load()
						if id >= cur || best.CompareAndSwap(cur, id) {
							break
						}
					}
					return
				}
				if id+1 < hi {
					sc.od.step()
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	id := best.Load()
	if id == math.MaxUint64 {
		return nil
	}
	for _, v := range found {
		if v != nil && v.From == id {
			return v
		}
	}
	return nil
}
