package explicit

import "paramring/internal/core"

// The compiled fast path: for symmetric instances (no distinguished
// processes), successor generation does not need to re-evaluate guards —
// the protocol's compiled local transition table maps each local state code
// directly to its new own-variable values. Successors then reduce to a
// window decode plus a table lookup per process, which is what makes the
// K-sweeps of the cost experiments (T1) tractable at K=12.
//
// The table is built lazily on first use and shared by all queries. The
// symbolic path remains in use when WithProcessActions breaks symmetry.

// localTable maps a local state code to the distinct new own values of its
// outgoing transitions (nil when the state is a local deadlock).
type localTable [][]int

// buildLocalTable compiles the protocol's transition relation into a
// lookup table over local state codes.
func buildLocalTable(p *core.Protocol) localTable {
	sys := p.Compile()
	tbl := make(localTable, sys.N())
	for s := 0; s < sys.N(); s++ {
		succ := sys.Succ[s]
		if len(succ) == 0 {
			continue
		}
		vals := make([]int, 0, len(succ))
		for _, dst := range succ {
			vals = append(vals, sys.OwnValue(dst))
		}
		tbl[s] = vals
	}
	return tbl
}

// fast returns the compiled table, building it on first use; nil when the
// instance has distinguished processes (the table cannot represent them).
// The build is guarded by a sync.Once so that the parallel checker's
// workers can race to the first successor query safely.
func (in *Instance) fast() localTable {
	if len(in.distinguished) > 0 {
		return nil
	}
	in.tableOnce.Do(func() { in.table = buildLocalTable(in.p) })
	return in.table
}

// successorsFast generates successors via the compiled table, appending
// them to out (typically a scratch buffer recycled across a whole-space
// scan, so the steady state allocates nothing). Returns (nil, false) when
// the fast path is unavailable.
func (in *Instance) successorsFast(id uint64, vals []int, view core.View, out []uint64) ([]uint64, bool) {
	tbl := in.fast()
	if tbl == nil {
		return nil, false
	}
	in.DecodeInto(id, vals)
	for r := 0; r < in.k; r++ {
		in.viewInto(vals, r, view)
		moves := tbl[core.Encode(view, in.d)]
		if moves == nil {
			continue
		}
		base := id - uint64(vals[r])*in.po[r]
		for _, nv := range moves {
			out = append(out, base+uint64(nv)*in.po[r])
		}
	}
	return out, true
}

// enabledCountFast counts enabled processes via the compiled table.
func (in *Instance) enabledCountFast(id uint64, vals []int, view core.View) (int, bool) {
	tbl := in.fast()
	if tbl == nil {
		return 0, false
	}
	in.DecodeInto(id, vals)
	count := 0
	for r := 0; r < in.k; r++ {
		in.viewInto(vals, r, view)
		if tbl[core.Encode(view, in.d)] != nil {
			count++
		}
	}
	return count, true
}
