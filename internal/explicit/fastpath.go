package explicit

import "paramring/internal/core"

// The compiled fast path: for symmetric instances (no distinguished
// processes), successor generation does not need to re-evaluate guards —
// the protocol's compiled local transition table maps each local state code
// directly to its new own-variable values. Successors then reduce to a
// window-code lookup plus a stride add per process, which is what makes
// the K-sweeps of the cost experiments (T1) tractable at K=12.
//
// The table is stored flat, CSR-style: one offsets array and one packed
// moves array, plus a bit-per-code enabled set. The former [][]int layout
// paid a pointer dereference (and a likely cache miss) per process per
// state; the flat layout makes a successor lookup two sequential reads
// from arrays that fit in L1/L2 for every protocol in the zoo (d^W <=
// 2^20 codes, and in practice a few dozen). Scan loops keep the window
// codes current via the odometer (odometer.go), so the steady-state inner
// loop touches no division at all.
//
// The table is built lazily on first use and shared by all queries. The
// symbolic path remains in use when WithProcessActions breaks symmetry.

// localTable is the compiled transition relation over local state codes in
// compressed sparse row form: the new own values of code s are
// moves[off[s]:off[s+1]], in the same deterministic order the compiled
// System emits (sorted by destination code), and enabled holds one bit
// per code with at least one outgoing transition.
type localTable struct {
	off     []uint32
	moves   []int32
	enabled bitset
}

// buildLocalTable compiles the protocol's transition relation into the
// flat lookup table.
func buildLocalTable(p *core.Protocol) *localTable {
	sys := p.Compile()
	n := sys.N()
	total := 0
	for s := 0; s < n; s++ {
		total += len(sys.Succ[s])
	}
	tbl := &localTable{
		off:     make([]uint32, n+1),
		moves:   make([]int32, 0, total),
		enabled: newBitset(uint64(n)),
	}
	for s := 0; s < n; s++ {
		tbl.off[s] = uint32(len(tbl.moves))
		for _, dst := range sys.Succ[s] {
			tbl.moves = append(tbl.moves, int32(sys.OwnValue(dst)))
		}
		if len(sys.Succ[s]) > 0 {
			tbl.enabled.Set(uint64(s))
		}
	}
	tbl.off[n] = uint32(len(tbl.moves))
	return tbl
}

// fast returns the compiled table, building it on first use; nil when the
// instance has distinguished processes (the table cannot represent them).
// The build is guarded by a sync.Once so that the parallel checker's
// workers can race to the first successor query safely.
func (in *Instance) fast() *localTable {
	if len(in.distinguished) > 0 {
		return nil
	}
	in.tableOnce.Do(func() { in.table = buildLocalTable(in.p) })
	return in.table
}

// emitFast appends the successors of the state with the given code, decoded
// valuation and per-process window codes: for each enabled process, the flat
// moves row indexed by its window code, turned into global codes through the
// precomputed stride table (stride[r*d+v] == v*d^r). Callers supply codes
// either incrementally (odometer scans) or via the rolling windowCodes fill
// (random access); emitFast itself re-encodes nothing.
func (in *Instance) emitFast(tbl *localTable, id uint64, vals []int, codes []int32, out []uint64) []uint64 {
	d := in.d
	for r := 0; r < in.k; r++ {
		code := uint64(codes[r])
		if !tbl.enabled.Get(code) {
			continue
		}
		stride := in.stride[r*d : r*d+d]
		base := id - stride[vals[r]]
		for _, nv := range tbl.moves[tbl.off[code]:tbl.off[code+1]] {
			out = append(out, base+stride[nv])
		}
	}
	return out
}

// successorsFast generates successors via the compiled table, appending
// them to out (typically a scratch buffer recycled across a whole-space
// scan, so the steady state allocates nothing). Returns (nil, false) when
// the fast path is unavailable.
func (in *Instance) successorsFast(id uint64, sc *scratch, out []uint64) ([]uint64, bool) {
	tbl := in.fast()
	if tbl == nil {
		return nil, false
	}
	in.DecodeInto(id, sc.vals)
	in.windowCodes(sc.vals, sc.codes)
	return in.emitFast(tbl, id, sc.vals, sc.codes, out), true
}

// enabledCountFast counts enabled processes via the compiled table.
func (in *Instance) enabledCountFast(id uint64, sc *scratch) (int, bool) {
	tbl := in.fast()
	if tbl == nil {
		return 0, false
	}
	in.DecodeInto(id, sc.vals)
	in.windowCodes(sc.vals, sc.codes)
	count := 0
	for r := 0; r < in.k; r++ {
		if tbl.enabled.Get(uint64(sc.codes[r])) {
			count++
		}
	}
	return count, true
}
