package explicit

import (
	"math/bits"
	"sync/atomic"
)

// The packed per-state bit table. Every whole-state-space structure the
// engine keeps resident — the I(K) membership cache, Tarjan's on-stack
// marks, the backward-BFS claim set — costs one bit per global state
// instead of the byte a []bool spends, which is what allows
// DefaultMaxStates to sit at 1<<28: the dominant resident table for a
// quarter-billion-state instance is 32 MiB, not 256 MiB. Word-level 64-bit
// operations keep the sequential paths branch-cheap, and the atomic
// TestAndSet/GetAtomic pair serves the parallel paths (level-synchronous
// BFS claims, concurrent chunk fills) without locks.
//
// Concurrency contract: Set/Clear/Get are plain word operations and must
// not race on the same 64-state word; the chunk partition (chunkFor) is
// word-aligned precisely so that per-chunk writers never share a word.
// TestAndSet/SetAtomic/GetAtomic are safe from any goroutine and mix
// safely with reads via GetAtomic.

// bitset is a packed bit-per-state table over global state codes.
type bitset []uint64

// bitsetWords returns the word count backing n bits.
func bitsetWords(n uint64) uint64 { return (n + 63) / 64 }

// newBitset returns an all-zero bitset able to hold n bits.
func newBitset(n uint64) bitset { return make(bitset, bitsetWords(n)) }

// Get reads bit id with a plain load. Safe concurrently with other reads
// and with writes to other words; use GetAtomic when racing TestAndSet on
// the same word.
func (b bitset) Get(id uint64) bool {
	return b[id>>6]&(uint64(1)<<(id&63)) != 0
}

// Set sets bit id with a plain read-modify-write. Single-writer per word
// only (see the file comment).
func (b bitset) Set(id uint64) {
	b[id>>6] |= uint64(1) << (id & 63)
}

// Clear clears bit id with a plain read-modify-write. Single-writer per
// word only.
func (b bitset) Clear(id uint64) {
	b[id>>6] &^= uint64(1) << (id & 63)
}

// GetAtomic reads bit id with an atomic load, for readers racing
// TestAndSet/SetAtomic on the same words.
func (b bitset) GetAtomic(id uint64) bool {
	return atomic.LoadUint64(&b[id>>6])&(uint64(1)<<(id&63)) != 0
}

// SetAtomic sets bit id with a CAS loop; safe from any goroutine.
func (b bitset) SetAtomic(id uint64) { b.TestAndSet(id) }

// TestAndSet atomically sets bit id and reports whether this call changed
// it — i.e. whether the caller claimed the state. Exactly one of any number
// of concurrent claimants wins.
func (b bitset) TestAndSet(id uint64) bool {
	word := &b[id>>6]
	mask := uint64(1) << (id & 63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return true
		}
	}
}

// AppendSetBits appends the indices of the set bits in [lo, hi) to out in
// ascending order, scanning whole 64-bit words and peeling bits with
// trailing-zeros — the batched form of a get-per-id loop, used to seed the
// backward-BFS frontier straight from the I(K) membership bits at word
// speed. Plain (non-atomic) loads: callers synchronize like Get.
func (b bitset) AppendSetBits(out []uint64, lo, hi uint64) []uint64 {
	if lo >= hi {
		return out
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		w := b[wi]
		if w == 0 {
			continue
		}
		base := wi << 6
		if base < lo {
			w &= ^uint64(0) << (lo & 63)
		}
		if end := base + 64; end > hi {
			w &= ^uint64(0) >> (end - hi)
		}
		for w != 0 {
			out = append(out, base+uint64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// Count returns the number of set bits.
func (b bitset) Count() uint64 {
	var n uint64
	for _, w := range b {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// Bytes returns the heap footprint of the table in bytes — the
// memory-accounting figure surfaced through Instance.TableBytes,
// verify.Report and the lrserved /metrics gauges.
func (b bitset) Bytes() uint64 { return uint64(len(b)) * 8 }
