package explicit

import "paramring/internal/core"

// The incremental scan substrate. Every whole-state-space loop in this
// package visits global states in ascending code order, and consecutive
// codes differ in a single low-order digit (plus a run of digits wrapping
// from d-1 back to 0). The odometer exploits that: it decodes a chunk's
// first code once and then keeps both the valuation and every process's
// window code current by mixed-radix increment, so the steady-state cost
// per visited state is O(1) amortized digit updates and O(W) window-code
// adjustments instead of the K-division decode plus K full window
// re-encodes the naive loop pays. The scan consumers (the I(K) fill, the
// deadlock scans, the closure scan, the CSR build, and the lrbench
// scanloop sweeps) all ride on it; random-access paths (Tarjan frames,
// BFS predecessor probes) use the rolling windowCodes fill instead.
//
// Equivalence contract: for every state id, an odometer positioned at id
// holds exactly DecodeInto(id, vals) and codes[q] ==
// core.Encode(viewInto(vals, q), d) for every process q. The differential
// fuzz target FuzzScanLoopEquivalence pins this against the plain
// decode/encode path for random protocols, ring sizes and windows.

// digitWindow records one incidence of a ring position in a process's
// read window: the window of process proc contains the position this
// entry is indexed under at mixed-radix weight d^i (core.EncodeWeights).
// On small rings (K < W) one window can contain the same position at
// several indices, so incidences are a list, not a set.
type digitWindow struct {
	proc   int32
	weight int32
}

// buildDigitWindows returns, per ring position r, the window incidences
// every odometer digit change at r must propagate to. Size is K*W
// entries; built once per instance.
func (in *Instance) buildDigitWindows() [][]digitWindow {
	dw := make([][]digitWindow, in.k)
	weights := core.EncodeWeights(in.d, in.p.W())
	for q := 0; q < in.k; q++ {
		for i := 0; i < in.p.W(); i++ {
			pos := in.pos(q + in.lo + i)
			dw[pos] = append(dw[pos], digitWindow{proc: int32(q), weight: int32(weights[i])})
		}
	}
	return dw
}

// pos wraps a ring offset into [0, K).
func (in *Instance) pos(off int) int { return ((off % in.k) + in.k) % in.k }

// windowCodes fills codes[q] with the local state code of process q's
// window over vals, for every q, in one rolling pass: window q+1 drops
// the lowest digit of window q and gains one new high digit, so each
// subsequent code costs one subtract, one exact divide and one
// multiply-add instead of a W-element re-encode with wrapped indexing.
// This is the random-access complement of the odometer: paths that land
// on an arbitrary id (Tarjan expansion, BFS probes) decode once and then
// derive all K codes in O(K) instead of O(K*W).
func (in *Instance) windowCodes(vals []int, codes []int32) {
	d := in.d
	w := in.p.W()
	c := 0
	for i := w - 1; i >= 0; i-- {
		c = c*d + vals[in.pos(in.lo+i)]
	}
	codes[0] = int32(c)
	out := in.pos(in.lo)     // lowest digit of the previous window
	inp := in.pos(in.lo + w) // digit entering the next window
	for q := 1; q < in.k; q++ {
		c = (c-vals[out])/d + vals[inp]*in.dW1
		codes[q] = int32(c)
		out++
		if out == in.k {
			out = 0
		}
		inp++
		if inp == in.k {
			inp = 0
		}
	}
}

// odometer is the incremental cursor of an ascending chunk scan: the
// current state code, its decoded valuation, and the window code of every
// process, all advanced in lockstep by step().
type odometer struct {
	in    *Instance
	id    uint64
	vals  []int
	codes []int32
}

// newOdometer returns an odometer for this instance, positioned nowhere;
// call reset before use.
func (in *Instance) newOdometer() *odometer {
	return &odometer{in: in, vals: make([]int, in.k), codes: make([]int32, in.k)}
}

// reset positions the odometer at id: one full decode and one rolling
// window-code fill — the only non-incremental work a chunk scan performs.
func (o *odometer) reset(id uint64) {
	o.id = id
	o.in.DecodeInto(id, o.vals)
	o.in.windowCodes(o.vals, o.codes)
}

// step advances the odometer to id+1 by mixed-radix increment: a run of
// low-order digits wraps d-1 -> 0 and the first non-maximal digit
// increments, each change propagating to the <= W window codes that read
// the changed position. The caller must not step past NumStates()-1.
func (o *odometer) step() {
	o.id++
	d := o.in.d
	for r := 0; ; r++ {
		if v := o.vals[r] + 1; v < d {
			o.setDigit(r, v)
			return
		}
		o.setDigit(r, 0)
	}
}

// setDigit writes value nv at ring position r and propagates the delta to
// every window code containing that position.
func (o *odometer) setDigit(r, nv int) {
	delta := int32(nv - o.vals[r])
	o.vals[r] = nv
	for _, dw := range o.in.digitWindows[r] {
		o.codes[dw.proc] += delta * dw.weight
	}
}
