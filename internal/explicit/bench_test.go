package explicit

import (
	"fmt"
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkInstanceConstruction(b *testing.B) {
	p := protocols.SumNotTwoSolution()
	for _, k := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewInstance(p, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSuccessors(b *testing.B) {
	in := MustNewInstance(protocols.MatchingA(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Successors(uint64(i) % in.NumStates())
	}
}

// BenchmarkStrongConvergence compares the sequential reference against the
// frontier-parallel engine; run with -cpu 1,2,4,8 to see the scaling shape
// (the seq side pins workers to 1, the par side follows GOMAXPROCS).
func BenchmarkStrongConvergence(b *testing.B) {
	p := protocols.AgreementOneSided("t01")
	for _, k := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("seq/K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25), WithWorkers(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergenceSeq().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
		b.Run(fmt.Sprintf("par/K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergence().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

// BenchmarkRecoveryRadiusParallel times the CAS-bitset backward BFS against
// the sequential FIFO BFS on the same instance size.
func BenchmarkRecoveryRadiusParallel(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			in := MustNewInstance(protocols.SumNotTwoSolution(), 8, WithWorkers(mode.workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.RecoveryRadius()
			}
		})
	}
}

func BenchmarkRecoveryRadius(b *testing.B) {
	in := MustNewInstance(protocols.SumNotTwoSolution(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.RecoveryRadius()
	}
}

func BenchmarkSynthesizeGlobalBaseline(b *testing.B) {
	p := protocols.SumNotTwoBase()
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SynthesizeGlobal(p, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
