package explicit

import (
	"fmt"
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkInstanceConstruction(b *testing.B) {
	p := protocols.SumNotTwoSolution()
	for _, k := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewInstance(p, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSuccessors(b *testing.B) {
	in := MustNewInstance(protocols.MatchingA(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Successors(uint64(i) % in.NumStates())
	}
}

// BenchmarkStrongConvergence compares the sequential reference against the
// frontier-parallel engine; run with -cpu 1,2,4,8 to see the scaling shape
// (the seq side pins workers to 1, the par side follows GOMAXPROCS).
func BenchmarkStrongConvergence(b *testing.B) {
	p := protocols.AgreementOneSided("t01")
	for _, k := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("seq/K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25), WithWorkers(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergenceSeq().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
		b.Run(fmt.Sprintf("par/K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergence().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

// BenchmarkRaisedCeiling exercises the packed-bitset engine above the old
// 1<<24 state guard: 65^4 = 17,850,625 global states, a size the []bool
// layout refused outright. Construction dominates (one streamed fill of the
// 2.1 MiB I(K) bitset); the convergence check then finds the all-zeros
// illegitimate deadlock immediately, so one iteration stays around a
// second and the seq/par pair is cheap enough for a CI smoke run.
func BenchmarkRaisedCeiling(b *testing.B) {
	p := raisedCeilingProtocol()
	legit := func(vals []int) bool { return vals[0] == 64 }
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in, err := NewInstance(p, 4, WithWorkers(mode.workers), WithGlobalPredicate(legit))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(in.TableBytes())/float64(in.NumStates()), "table-B/state")
				}
				var rep ConvergenceReport
				if mode.workers == 1 {
					rep = in.CheckStrongConvergenceSeq()
				} else {
					rep = in.CheckStrongConvergence()
				}
				if rep.Converges || rep.DeadlockWitness == nil || *rep.DeadlockWitness != 0 {
					b.Fatal("verdict changed at the raised ceiling")
				}
			}
		})
	}
}

// BenchmarkRecoveryRadiusParallel times the CAS-bitset backward BFS against
// the sequential FIFO BFS on the same instance size.
func BenchmarkRecoveryRadiusParallel(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			in := MustNewInstance(protocols.SumNotTwoSolution(), 8, WithWorkers(mode.workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.RecoveryRadius()
			}
		})
	}
}

func BenchmarkRecoveryRadius(b *testing.B) {
	in := MustNewInstance(protocols.SumNotTwoSolution(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.RecoveryRadius()
	}
}

func BenchmarkSynthesizeGlobalBaseline(b *testing.B) {
	p := protocols.SumNotTwoBase()
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SynthesizeGlobal(p, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
