package explicit

import (
	"fmt"
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkInstanceConstruction(b *testing.B) {
	p := protocols.SumNotTwoSolution()
	for _, k := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewInstance(p, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSuccessors is the successor-generation grid across the three
// engine paths: the compiled flat-table fast path on a symmetric instance
// (random access, rolling window-code fill), the symbolic guard-evaluation
// path forced by a distinguished process over the same protocol, and the
// odometer-driven whole-space scan (SuccessorSweep — no decode or encode at
// all in steady state). Each sub-benchmark reports states/sec so the grid
// reads directly against the lrbench scanloop rows and PERFORMANCE.md's
// scan-loop table.
func BenchmarkSuccessors(b *testing.B) {
	ma := protocols.MatchingA()
	grid := []struct {
		name string
		mk   func() *Instance
		op   func(in *Instance, i int) uint64
	}{
		{"fast/matchingA/K=8", func() *Instance {
			return MustNewInstance(ma, 8)
		}, func(in *Instance, i int) uint64 {
			return uint64(len(in.Successors(uint64(i) % in.NumStates())))
		}},
		{"symbolic/matchingA/K=8", func() *Instance {
			// The same actions pinned at position 0 break symmetry without
			// changing behavior, forcing the guard-evaluation path.
			return MustNewInstance(ma, 8, WithProcessActions(0, ma.Actions()))
		}, func(in *Instance, i int) uint64 {
			return uint64(len(in.Successors(uint64(i) % in.NumStates())))
		}},
		{"scan/matchingA/K=8", func() *Instance {
			return MustNewInstance(ma, 8, WithWorkers(1))
		}, func(in *Instance, i int) uint64 {
			return in.SuccessorSweep()
		}},
	}
	for _, g := range grid {
		b.Run(g.name, func(b *testing.B) {
			in := g.mk()
			b.ReportAllocs()
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += g.op(in, i)
			}
			statesPerOp := 1.0
			if g.name[:4] == "scan" {
				statesPerOp = float64(in.NumStates())
			}
			b.ReportMetric(statesPerOp*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
			benchSink = sink
		})
	}
}

// benchSink defeats dead-code elimination of the measured loops.
var benchSink uint64

// BenchmarkStrongConvergence compares the sequential reference against the
// frontier-parallel engine; run with -cpu 1,2,4,8 to see the scaling shape
// (the seq side pins workers to 1, the par side follows GOMAXPROCS).
func BenchmarkStrongConvergence(b *testing.B) {
	p := protocols.AgreementOneSided("t01")
	for _, k := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("seq/K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25), WithWorkers(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergenceSeq().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
		b.Run(fmt.Sprintf("par/K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergence().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

// BenchmarkRaisedCeiling exercises the packed-bitset engine above the old
// 1<<24 state guard: 65^4 = 17,850,625 global states, a size the []bool
// layout refused outright. Construction dominates (one streamed fill of the
// 2.1 MiB I(K) bitset); the convergence check then finds the all-zeros
// illegitimate deadlock immediately, so one iteration stays around a
// second and the seq/par pair is cheap enough for a CI smoke run.
func BenchmarkRaisedCeiling(b *testing.B) {
	p := raisedCeilingProtocol()
	legit := func(vals []int) bool { return vals[0] == 64 }
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in, err := NewInstance(p, 4, WithWorkers(mode.workers), WithGlobalPredicate(legit))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(in.TableBytes())/float64(in.NumStates()), "table-B/state")
				}
				var rep ConvergenceReport
				if mode.workers == 1 {
					rep = in.CheckStrongConvergenceSeq()
				} else {
					rep = in.CheckStrongConvergence()
				}
				if rep.Converges || rep.DeadlockWitness == nil || *rep.DeadlockWitness != 0 {
					b.Fatal("verdict changed at the raised ceiling")
				}
			}
		})
	}
}

// BenchmarkRecoveryRadiusParallel times the CAS-bitset backward BFS against
// the sequential FIFO BFS on the same instance size.
func BenchmarkRecoveryRadiusParallel(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			in := MustNewInstance(protocols.SumNotTwoSolution(), 8, WithWorkers(mode.workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.RecoveryRadius()
			}
		})
	}
}

func BenchmarkRecoveryRadius(b *testing.B) {
	in := MustNewInstance(protocols.SumNotTwoSolution(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.RecoveryRadius()
	}
}

func BenchmarkSynthesizeGlobalBaseline(b *testing.B) {
	p := protocols.SumNotTwoBase()
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SynthesizeGlobal(p, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
