package explicit

import (
	"fmt"
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkInstanceConstruction(b *testing.B) {
	p := protocols.SumNotTwoSolution()
	for _, k := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewInstance(p, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSuccessors(b *testing.B) {
	in := MustNewInstance(protocols.MatchingA(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Successors(uint64(i) % in.NumStates())
	}
}

func BenchmarkStrongConvergence(b *testing.B) {
	p := protocols.AgreementOneSided("t01")
	for _, k := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			in := MustNewInstance(p, k, WithMaxStates(1<<25))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !in.CheckStrongConvergence().Converges {
					b.Fatal("verdict changed")
				}
			}
		})
	}
}

func BenchmarkRecoveryRadius(b *testing.B) {
	in := MustNewInstance(protocols.SumNotTwoSolution(), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.RecoveryRadius()
	}
}

func BenchmarkSynthesizeGlobalBaseline(b *testing.B) {
	p := protocols.SumNotTwoBase()
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SynthesizeGlobal(p, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
