package explicit

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"paramring/internal/core"
)

// SynthesizeGlobal is the global-state-space synthesis baseline: the
// approach of STSyn [17] and related work [16,26,27] that the paper's local
// method improves on. It explores candidate recovery transitions and
// model-checks each candidate protocol exhaustively AT A FIXED RING SIZE K —
// so its cost grows as domain^K, and (the paper's central critique) its
// output carries no guarantee for other ring sizes. Example 4.3 is STSyn
// output that stabilizes for K=5 yet deadlocks for K=6; this reproduction's
// harness exhibits the same phenomenon with this baseline (see the
// lrexperiments "generalization" table).
//
// Candidates are the same self-disabling local transitions the local method
// uses (sources: illegitimate local deadlocks; targets: local deadlocks
// outside the resolved set), so the two methods search the same space and
// differ exactly in how they verify: global enumeration at one K versus
// local reasoning for all K.
//
// Assignments are tried in order of increasing resolved-state count, so the
// first solution found resolves as few local deadlocks as possible — the
// configuration most likely to be non-generalizable, faithfully modeling
// what a per-K synthesizer may produce.
type GlobalSynthesisResult struct {
	// Protocol is the synthesized protocol (base + recovery action "conv").
	Protocol *core.Protocol
	// Chosen are the added local transitions.
	Chosen []core.LocalTransition
	// CandidatesTried counts candidate protocols model-checked.
	CandidatesTried int
	// StatesExplored totals global states examined across all checks.
	StatesExplored uint64
	// PeakTableBytes is the largest resident per-state table held by any
	// candidate instance during the search (see Instance.TableBytes) — the
	// memory figure verify.Report aggregates across engines.
	PeakTableBytes uint64
}

// SynthesizeGlobal searches for recovery transitions making base strongly
// converge at ring size k. maxCandidates caps the number of candidate
// protocols model-checked (<= 0 selects 4096). Candidates are
// model-checked across runtime.GOMAXPROCS(0) workers; see
// SynthesizeGlobalWorkers for the determinism contract.
func SynthesizeGlobal(base *core.Protocol, k int, maxCandidates int) (*GlobalSynthesisResult, error) {
	return SynthesizeGlobalWorkers(base, k, maxCandidates, 0)
}

// SynthesizeGlobalCtx is SynthesizeGlobal with cooperative cancellation:
// the candidate search polls ctx between candidate model checks (and inside
// each check's scan loops) and returns ctx.Err() once the context is done.
func SynthesizeGlobalCtx(ctx context.Context, base *core.Protocol, k, maxCandidates int) (*GlobalSynthesisResult, error) {
	return synthesizeGlobalWorkers(ctx, base, k, maxCandidates, 0)
}

// SynthesizeGlobalWorkers is SynthesizeGlobal with an explicit worker
// count (0 selects runtime.GOMAXPROCS(0); 1 is the sequential reference).
// Candidates carry their enumeration index, workers claim indices from a
// shared counter, and the result is the converging candidate with the
// LOWEST index — so the chosen protocol, CandidatesTried, and
// StatesExplored are identical to the sequential search for any worker
// count. Workers stop claiming once an index below every unclaimed one has
// converged, preserving the early-exit that makes the per-K baseline
// competitive in the Table 4 benchmarks.
func SynthesizeGlobalWorkers(base *core.Protocol, k, maxCandidates, workers int) (*GlobalSynthesisResult, error) {
	return synthesizeGlobalWorkers(context.Background(), base, k, maxCandidates, workers)
}

func synthesizeGlobalWorkers(ctx context.Context, base *core.Protocol, k, maxCandidates, workers int) (*GlobalSynthesisResult, error) {
	if maxCandidates <= 0 {
		maxCandidates = 4096
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sys := base.Compile()
	if !sys.IsSelfDisabling() {
		return nil, fmt.Errorf("explicit: base protocol %q has self-enabling transitions", base.Name())
	}
	illegit := sys.IllegitimateDeadlocks()
	res := &GlobalSynthesisResult{}

	// Pre-compute per-state transition options (targets are base local
	// deadlocks; the not-in-resolved-set constraint is applied per subset).
	options := make(map[core.LocalState][]core.LocalState, len(illegit))
	p := base
	ownIdx := p.OwnIndex()
	for _, s := range illegit {
		view := p.Decode(s)
		for v := 0; v < p.Domain(); v++ {
			if v == view[ownIdx] {
				continue
			}
			dst := make(core.View, len(view))
			copy(dst, view)
			dst[ownIdx] = v
			code := p.Encode(dst)
			if sys.IsDeadlock[code] {
				options[s] = append(options[s], code)
			}
		}
	}

	// Subsets of illegitimate deadlocks to resolve, by increasing size.
	n := len(illegit)
	if n > 20 {
		return nil, fmt.Errorf("explicit: %d illegitimate local deadlocks is beyond this baseline's search budget", n)
	}
	masks := make([]int, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		bi, bj := bits.OnesCount(uint(masks[i])), bits.OnesCount(uint(masks[j]))
		if bi != bj {
			return bi < bj
		}
		return masks[i] < masks[j]
	})

	// Materialize the deterministic candidate order (one entry past the
	// budget is enough to distinguish "budget exhausted" from "search space
	// exhausted" — the same distinction the incremental loop made).
	var cands [][]core.LocalTransition
	for _, mask := range masks {
		if len(cands) > maxCandidates {
			break
		}
		resolved := map[core.LocalState]bool{}
		var states []core.LocalState
		for i, s := range illegit {
			if mask&(1<<i) != 0 {
				resolved[s] = true
				states = append(states, s)
			}
		}
		// Per-state choices restricted to targets outside the resolved set
		// (self-disablement of the synthesized protocol).
		perState := make([][]core.LocalState, len(states))
		feasible := true
		for i, s := range states {
			for _, dst := range options[s] {
				if !resolved[dst] {
					perState[i] = append(perState[i], dst)
				}
			}
			if len(perState[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		total := 1
		for _, cs := range perState {
			total *= len(cs)
		}
		for idx := 0; idx < total && len(cands) <= maxCandidates; idx++ {
			chosen := make([]core.LocalTransition, len(states))
			x := idx
			for i, cs := range perState {
				chosen[i] = core.LocalTransition{Src: states[i], Dst: cs[x%len(cs)], Action: "conv"}
				x /= len(cs)
			}
			cands = append(cands, chosen)
		}
	}
	overBudget := len(cands) > maxCandidates
	if overBudget {
		cands = cands[:maxCandidates]
	}

	win, peak, err := evalCandidates(ctx, base, k, cands, workers)
	if err != nil {
		return nil, err
	}
	if win >= 0 {
		cand, err := applyTable(base, cands[win])
		if err != nil {
			return nil, err
		}
		res.Protocol = cand
		res.Chosen = cands[win]
		res.CandidatesTried = win + 1
		res.StatesExplored = uint64(win+1) * instanceStates(base, k)
		res.PeakTableBytes = peak
		return res, nil
	}
	if overBudget {
		return nil, fmt.Errorf("explicit: candidate budget %d exhausted without a solution", maxCandidates)
	}
	return nil, fmt.Errorf("explicit: no candidate protocol converges at K=%d", k)
}

// instanceStates returns domain^k (every candidate check explores the full
// space, so StatesExplored is candidates-tried times this).
func instanceStates(base *core.Protocol, k int) uint64 {
	n := uint64(1)
	for i := 0; i < k; i++ {
		n *= uint64(base.Domain())
	}
	return n
}

// evalCandidates model-checks cands at ring size k and returns the lowest
// index whose protocol strongly converges (or -1) together with the peak
// resident table bytes across all checked instances. Workers claim indices
// in order from a shared counter and stop once no unclaimed index can beat
// the best winner so far; the minimum over winners makes the outcome
// independent of scheduling. Candidate instances run their own checks
// sequentially (WithWorkers(1)) — the parallelism here is across
// candidates, not within one.
func evalCandidates(ctx context.Context, base *core.Protocol, k int, cands [][]core.LocalTransition, workers int) (int, uint64, error) {
	if len(cands) == 0 {
		return -1, 0, nil
	}
	var peak atomic.Uint64
	check := func(i int) (bool, error) {
		cand, err := applyTable(base, cands[i])
		if err != nil {
			return false, err
		}
		in, err := NewInstanceCtx(ctx, cand, k, WithWorkers(1))
		if err != nil {
			return false, err
		}
		for {
			cur := peak.Load()
			if in.TableBytes() <= cur || peak.CompareAndSwap(cur, in.TableBytes()) {
				break
			}
		}
		rep, err := in.CheckStrongConvergenceCtx(ctx)
		if err != nil {
			return false, err
		}
		return rep.Converges, nil
	}
	if workers <= 1 {
		for i := range cands {
			if err := ctx.Err(); err != nil {
				return -1, peak.Load(), err
			}
			ok, err := check(i)
			if err != nil {
				return -1, peak.Load(), err
			}
			if ok {
				return i, peak.Load(), nil
			}
		}
		return -1, peak.Load(), nil
	}
	var (
		next    atomic.Int64
		bestWin atomic.Int64
		errIdx  atomic.Int64
		errMu   sync.Mutex
		errs    = map[int64]error{}
		wg      sync.WaitGroup
	)
	bestWin.Store(int64(len(cands)))
	errIdx.Store(int64(len(cands)))
	casMin := func(a *atomic.Int64, v int64) {
		for {
			cur := a.Load()
			if v >= cur || a.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(cands)) || i > bestWin.Load() || i > errIdx.Load() {
					return
				}
				ok, err := check(int(i))
				switch {
				case err != nil:
					errMu.Lock()
					errs[i] = err
					errMu.Unlock()
					casMin(&errIdx, i)
				case ok:
					casMin(&bestWin, i)
				}
			}
		}()
	}
	wg.Wait()
	if e := errIdx.Load(); e < bestWin.Load() {
		// The sequential search would have hit this error before any win.
		return -1, peak.Load(), errs[e]
	}
	if w := bestWin.Load(); w < int64(len(cands)) {
		return int(w), peak.Load(), nil
	}
	return -1, peak.Load(), nil
}

// applyTable mirrors synthesis.Apply without importing it (avoiding a
// dependency cycle): attach chosen transitions as one table action.
func applyTable(base *core.Protocol, chosen []core.LocalTransition) (*core.Protocol, error) {
	sys := base.Compile()
	moves := map[core.LocalState][]int{}
	for _, t := range chosen {
		moves[t.Src] = append(moves[t.Src], sys.OwnValue(t.Dst))
	}
	for _, vs := range moves {
		sort.Ints(vs)
	}
	ta := core.TableAction{Name: "conv", Moves: moves}
	return base.WithActions(base.Name()+"/global-ss", ta.Action(base.Domain())), nil
}
