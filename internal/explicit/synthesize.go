package explicit

import (
	"fmt"
	"math/bits"
	"sort"

	"paramring/internal/core"
)

// SynthesizeGlobal is the global-state-space synthesis baseline: the
// approach of STSyn [17] and related work [16,26,27] that the paper's local
// method improves on. It explores candidate recovery transitions and
// model-checks each candidate protocol exhaustively AT A FIXED RING SIZE K —
// so its cost grows as domain^K, and (the paper's central critique) its
// output carries no guarantee for other ring sizes. Example 4.3 is STSyn
// output that stabilizes for K=5 yet deadlocks for K=6; this reproduction's
// harness exhibits the same phenomenon with this baseline (see the
// lrexperiments "generalization" table).
//
// Candidates are the same self-disabling local transitions the local method
// uses (sources: illegitimate local deadlocks; targets: local deadlocks
// outside the resolved set), so the two methods search the same space and
// differ exactly in how they verify: global enumeration at one K versus
// local reasoning for all K.
//
// Assignments are tried in order of increasing resolved-state count, so the
// first solution found resolves as few local deadlocks as possible — the
// configuration most likely to be non-generalizable, faithfully modeling
// what a per-K synthesizer may produce.
type GlobalSynthesisResult struct {
	// Protocol is the synthesized protocol (base + recovery action "conv").
	Protocol *core.Protocol
	// Chosen are the added local transitions.
	Chosen []core.LocalTransition
	// CandidatesTried counts candidate protocols model-checked.
	CandidatesTried int
	// StatesExplored totals global states examined across all checks.
	StatesExplored uint64
}

// SynthesizeGlobal searches for recovery transitions making base strongly
// converge at ring size k. maxCandidates caps the number of candidate
// protocols model-checked (<= 0 selects 4096).
func SynthesizeGlobal(base *core.Protocol, k int, maxCandidates int) (*GlobalSynthesisResult, error) {
	if maxCandidates <= 0 {
		maxCandidates = 4096
	}
	sys := base.Compile()
	if !sys.IsSelfDisabling() {
		return nil, fmt.Errorf("explicit: base protocol %q has self-enabling transitions", base.Name())
	}
	illegit := sys.IllegitimateDeadlocks()
	res := &GlobalSynthesisResult{}

	// Pre-compute per-state transition options (targets are base local
	// deadlocks; the not-in-resolved-set constraint is applied per subset).
	options := make(map[core.LocalState][]core.LocalState, len(illegit))
	p := base
	ownIdx := p.OwnIndex()
	for _, s := range illegit {
		view := p.Decode(s)
		for v := 0; v < p.Domain(); v++ {
			if v == view[ownIdx] {
				continue
			}
			dst := make(core.View, len(view))
			copy(dst, view)
			dst[ownIdx] = v
			code := p.Encode(dst)
			if sys.IsDeadlock[code] {
				options[s] = append(options[s], code)
			}
		}
	}

	// Subsets of illegitimate deadlocks to resolve, by increasing size.
	n := len(illegit)
	if n > 20 {
		return nil, fmt.Errorf("explicit: %d illegitimate local deadlocks is beyond this baseline's search budget", n)
	}
	masks := make([]int, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		bi, bj := bits.OnesCount(uint(masks[i])), bits.OnesCount(uint(masks[j]))
		if bi != bj {
			return bi < bj
		}
		return masks[i] < masks[j]
	})

	for _, mask := range masks {
		resolved := map[core.LocalState]bool{}
		var states []core.LocalState
		for i, s := range illegit {
			if mask&(1<<i) != 0 {
				resolved[s] = true
				states = append(states, s)
			}
		}
		// Per-state choices restricted to targets outside the resolved set
		// (self-disablement of the synthesized protocol).
		perState := make([][]core.LocalState, len(states))
		feasible := true
		for i, s := range states {
			for _, dst := range options[s] {
				if !resolved[dst] {
					perState[i] = append(perState[i], dst)
				}
			}
			if len(perState[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		total := 1
		for _, cs := range perState {
			total *= len(cs)
		}
		for idx := 0; idx < total; idx++ {
			if res.CandidatesTried >= maxCandidates {
				return nil, fmt.Errorf("explicit: candidate budget %d exhausted without a solution", maxCandidates)
			}
			chosen := make([]core.LocalTransition, len(states))
			x := idx
			for i, cs := range perState {
				chosen[i] = core.LocalTransition{Src: states[i], Dst: cs[x%len(cs)], Action: "conv"}
				x /= len(cs)
			}
			cand, err := applyTable(base, chosen)
			if err != nil {
				return nil, err
			}
			in, err := NewInstance(cand, k)
			if err != nil {
				return nil, err
			}
			res.CandidatesTried++
			rep := in.CheckStrongConvergence()
			res.StatesExplored += rep.StatesExplored
			if rep.Converges {
				res.Protocol = cand
				res.Chosen = chosen
				return res, nil
			}
		}
	}
	return nil, fmt.Errorf("explicit: no candidate protocol converges at K=%d", k)
}

// applyTable mirrors synthesis.Apply without importing it (avoiding a
// dependency cycle): attach chosen transitions as one table action.
func applyTable(base *core.Protocol, chosen []core.LocalTransition) (*core.Protocol, error) {
	sys := base.Compile()
	moves := map[core.LocalState][]int{}
	for _, t := range chosen {
		moves[t.Src] = append(moves[t.Src], sys.OwnValue(t.Dst))
	}
	for _, vs := range moves {
		sort.Ints(vs)
	}
	ta := core.TableAction{Name: "conv", Moves: moves}
	return base.WithActions(base.Name()+"/global-ss", ta.Action(base.Domain())), nil
}
