package explicit

import (
	"math"
	"testing"

	"paramring/internal/protocols"
)

// TestEstimateStatesMatchesInstance pins the contract that matters: the
// pre-run estimate and the constructed instance agree exactly, for both
// the state count and the resident table bytes.
func TestEstimateStatesMatchesInstance(t *testing.T) {
	p := protocols.All()["agreement"]
	for k := 2; k <= 10; k++ {
		want, ok := EstimateStates(p.Domain(), k)
		if !ok {
			t.Fatalf("K=%d: estimate overflowed unexpectedly", k)
		}
		in, err := NewInstance(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := in.NumStates(); got != want {
			t.Fatalf("K=%d: EstimateStates = %d, NumStates = %d", k, want, got)
		}
		if got, wantB := in.TableBytes(), EstimateTableBytes(want); got != wantB {
			t.Fatalf("K=%d: EstimateTableBytes = %d, TableBytes = %d", k, wantB, got)
		}
	}
}

func TestEstimateStatesOverflow(t *testing.T) {
	if n, ok := EstimateStates(2, 63); ok || n != math.MaxUint64 {
		t.Fatalf("2^63 must overflow: n=%d ok=%v", n, ok)
	}
	if _, ok := EstimateStates(2, 62); !ok {
		t.Fatal("2^62 must fit the 62-bit guard")
	}
	if _, ok := EstimateStates(0, 3); ok {
		t.Fatal("domain 0 must be rejected")
	}
}

// TestMaxStatesForBudgetRoundTrip: any state count at or under the derived
// clamp must estimate within the budget, and the next power above must not.
func TestMaxStatesForBudgetRoundTrip(t *testing.T) {
	for _, budget := range []uint64{8, 64, 1 << 10, 1 << 20, 32 << 20} {
		clamp := MaxStatesForBudget(budget)
		if got := EstimateTableBytes(clamp); got > budget {
			t.Fatalf("budget %d: clamp %d estimates %d bytes over budget", budget, clamp, got)
		}
		if got := EstimateTableBytes(clamp + 64); got <= budget {
			t.Fatalf("budget %d: clamp %d is not tight (clamp+64 still fits: %d)", budget, clamp, got)
		}
	}
	if MaxStatesForBudget(math.MaxUint64) != math.MaxUint64 {
		t.Fatal("saturating budget must saturate, not overflow")
	}
}
