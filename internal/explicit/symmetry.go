package explicit

import "fmt"

// Rotation-symmetry reduction. Parameterized ring protocols are symmetric:
// rotating a global state by one position commutes with the transition
// relation, and the locally conjunctive predicate I is rotation-invariant.
// Strong convergence can therefore be decided on the quotient of the state
// space by the rotation group C_K, which has roughly a factor K fewer
// states:
//
//   - a global deadlock exists iff its orbit representative is deadlocked;
//   - a cycle exists in Delta_p | not-I iff the quotient graph (over orbit
//     representatives, with successor sets canonicalized) has a cycle: a
//     quotient cycle lifts to s ->* rho(s) for some rotation rho, and
//     iterating rho's finite order closes a genuine cycle in the full
//     graph; the converse projection is immediate.
//
// Only symmetric instances qualify (no distinguished processes, no global
// predicate override — a custom predicate need not be rotation-invariant).

// Canonical returns the orbit representative of id: the minimal state code
// among all K rotations.
func (in *Instance) Canonical(id uint64) uint64 {
	best := id
	cur := id
	for r := 1; r < in.k; r++ {
		// Rotate by one: process i takes the value of process i+1 (cyclic),
		// directly on the mixed-radix code.
		first := cur % uint64(in.d)
		cur = cur/uint64(in.d) + first*in.po[in.k-1]
		if cur < best {
			best = cur
		}
	}
	return best
}

// symmetric reports whether the instance qualifies for symmetry reduction.
func (in *Instance) symmetric() bool {
	return len(in.distinguished) == 0 && in.globalI == nil
}

// CheckStrongConvergenceReduced decides strong convergence like
// CheckStrongConvergence, but explores only one state per rotation orbit.
// It returns an error for instances that are not rotation-symmetric.
// Witnesses are reported as representative states of the full state space.
func (in *Instance) CheckStrongConvergenceReduced() (ConvergenceReport, error) {
	if !in.symmetric() {
		return ConvergenceReport{}, fmt.Errorf("explicit: symmetry reduction requires a symmetric instance")
	}
	rep := ConvergenceReport{}

	// Pass 1: deadlocks among orbit representatives.
	reps := 0
	for id := uint64(0); id < in.n; id++ {
		if in.Canonical(id) != id {
			continue
		}
		reps++
		if !in.inI.Get(id) && in.IsDeadlock(id) {
			d := id
			rep.DeadlockWitness = &d
			rep.StatesExplored = uint64(reps)
			return rep, nil
		}
	}
	rep.StatesExplored = uint64(reps)

	// Pass 2: cycle detection on the quotient graph restricted to not-I,
	// iterative DFS with three-coloring.
	const (
		white = uint8(0)
		gray  = uint8(1)
		black = uint8(2)
	)
	color := make(map[uint64]uint8, reps)
	type frame struct {
		v    uint64
		succ []uint64
		next int
	}
	quotientSucc := func(id uint64) []uint64 {
		// Successors copies: the DFS frames retain the returned slice.
		succ := in.Successors(id)
		out := succ[:0]
		for _, s := range succ {
			c := in.Canonical(s)
			if !in.inI.Get(c) {
				out = append(out, c)
			}
		}
		return out
	}
	for root := uint64(0); root < in.n; root++ {
		if in.inI.Get(root) || in.Canonical(root) != root || color[root] != white {
			continue
		}
		stack := []frame{{v: root}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.succ == nil {
				f.succ = quotientSucc(f.v)
			}
			advanced := false
			for f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				switch color[w] {
				case gray:
					// Quotient cycle found; lift a witness lazily: the
					// representative state is enough for reporting.
					rep.LivelockWitness = []uint64{w}
					return rep, nil
				case white:
					color[w] = gray
					stack = append(stack, frame{v: w})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	rep.Converges = true
	return rep, nil
}

// OrbitCount returns the number of rotation orbits (the quotient size).
func (in *Instance) OrbitCount() uint64 {
	var count uint64
	for id := uint64(0); id < in.n; id++ {
		if in.Canonical(id) == id {
			count++
		}
	}
	return count
}
