package explicit

import (
	"context"
	"fmt"
	"math"
	"runtime/trace"
)

// cancelCheckMask throttles context polls in the hot scan loops: ctx.Err()
// is consulted once per (cancelCheckMask+1) states, so cancellation latency
// stays in the microseconds while the per-state overhead stays one cheap
// mask-and-branch.
const cancelCheckMask = 4095

// Deadlocks returns all global deadlock states (no enabled process), in
// increasing state-code order. With WithWorkers > 1 the scan is sharded
// across contiguous code ranges; the merged order is identical. Both sides
// ride the odometer: the deadlock test reads one enabled bit per process,
// indexed by incrementally maintained window codes.
func (in *Instance) Deadlocks() []uint64 {
	if in.workers > 1 {
		return in.collectStatesParallel(func(id uint64, sc *scratch) bool {
			return in.deadlockAt(sc)
		})
	}
	var out []uint64
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		if in.deadlockAt(sc) {
			out = append(out, id)
		}
		if id+1 < in.n {
			sc.od.step()
		}
	}
	return out
}

// IllegitimateDeadlocks returns the global deadlocks outside I(K) — the
// states Theorem 4.2 predicts from local deadlock cycles in the RCG. The
// explicit scan (sharded like Deadlocks when WithWorkers > 1) is the oracle
// those predictions are cross-validated against.
func (in *Instance) IllegitimateDeadlocks() []uint64 {
	if in.workers > 1 {
		return in.collectStatesParallel(func(id uint64, sc *scratch) bool {
			return !in.inI.Get(id) && in.deadlockAt(sc)
		})
	}
	var out []uint64
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		if !in.inI.Get(id) && in.deadlockAt(sc) {
			out = append(out, id)
		}
		if id+1 < in.n {
			sc.od.step()
		}
	}
	return out
}

// ClosureViolation describes a transition that leaves I — a failure of
// the closure half of self-stabilization (Section 2.2), which both
// Theorem 4.2 and the Section 6 synthesis assume.
type ClosureViolation struct {
	From, To uint64
	Process  int
	Action   string
}

// CheckClosure verifies that I(K) is closed in the protocol (the closure
// half of self-stabilization, Section 2.2): every transition from a state
// in I lands in I. Returns nil if closed, else the violation with the
// smallest source state code.
//
// The scan is two-phase: the odometer sweep tests each I-state's successor
// set (flat-table fast path) for any escape from I, and only a hit pays
// the allocating SuccessorsDetailed walk that names the violating process
// and action — so the common all-closed case never leaves the zero-alloc
// loop while the reported witness is byte-identical to the naive scan's
// (smallest source id, then the first violating transition in detailed
// order).
func (in *Instance) CheckClosure() *ClosureViolation {
	if in.workers > 1 {
		return in.checkClosureParallel()
	}
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		if in.inI.Get(id) && in.closureEscapeAt(sc) {
			return in.closureWitness(id)
		}
		if id+1 < in.n {
			sc.od.step()
		}
	}
	return nil
}

// closureEscapeAt reports whether some successor of the odometer's current
// state leaves I.
func (in *Instance) closureEscapeAt(sc *scratch) bool {
	for _, s := range in.successorsAt(sc) {
		if !in.inI.Get(s) {
			return true
		}
	}
	return false
}

// closureWitness re-derives the named violation at a source state the scan
// already proved escapes I: the first not-in-I transition in
// SuccessorsDetailed order, exactly what the pre-two-phase scan reported.
func (in *Instance) closureWitness(id uint64) *ClosureViolation {
	for _, t := range in.SuccessorsDetailed(id) {
		if !in.inI.Get(t.To) {
			return &ClosureViolation{From: id, To: t.To, Process: t.Process, Action: t.Action}
		}
	}
	return nil
}

// FindLivelock searches for a livelock: a cycle of global transitions that
// stays entirely outside I(K) (Section 2.3's definition via Proposition
// 2.1). It returns the states of one such cycle (in order; the last state
// has a transition back to the first), or nil when Delta_p | not-I is
// acyclic. Implemented as an iterative Tarjan SCC over the not-I-restricted
// transition graph, materialized up front as a CSR adjacency by a single
// ascending odometer sweep when the instance fits the edge budget (the
// Tarjan's random-access expansions then cost two array reads instead of a
// decode), and generated on the fly past the budget.
func (in *Instance) FindLivelock() []uint64 {
	cycle, _ := in.FindLivelockCtx(context.Background())
	return cycle
}

// FindLivelockCtx is FindLivelock with cooperative cancellation: both the
// CSR sweep and the Tarjan walk poll ctx every few thousand states and
// return ctx.Err() (with a nil cycle) once the context is done.
func (in *Instance) FindLivelockCtx(ctx context.Context) ([]uint64, error) {
	if g, ok := in.buildNotIGraphSeq(ctx); ok {
		return in.findLivelock(ctx, g.succ)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := in.newScratch()
	return in.findLivelock(ctx, func(id uint64) []uint64 {
		if in.inI.Get(id) {
			return nil
		}
		// The expansion itself runs in shared scratch; only the filtered
		// not-I successors are copied out, because the Tarjan frames retain
		// the returned slice across arbitrarily many later expansions.
		succ := in.successorsInto(id, sc)
		out := make([]uint64, 0, len(succ))
		for _, s := range succ {
			if !in.inI.Get(s) {
				out = append(out, s)
			}
		}
		return out
	})
}

// buildNotIGraphSeq materializes Delta_p | not-I as a CSR adjacency with one
// single-threaded ascending odometer sweep — the sequential counterpart of
// buildNotIGraphParallel, sharing its edge budget and producing the same
// layout (rows ascending, each row sorted), so findLivelock reports the same
// witness over either. Returns false past the budget or once ctx is done.
func (in *Instance) buildNotIGraphSeq(ctx context.Context) (*notIGraph, bool) {
	if in.n > math.MaxUint32 || in.n*uint64(in.k) > parallelEdgeBudget {
		return nil, false
	}
	defer trace.StartRegion(ctx, "explicit.csrBuild").End()
	g := &notIGraph{off: make([]uint64, in.n+1)}
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		if id&cancelCheckMask == 0 && ctx.Err() != nil {
			return nil, false
		}
		if !in.inI.Get(id) {
			for _, s := range in.successorsAt(sc) {
				if !in.inI.Get(s) {
					g.edges = append(g.edges, uint32(s))
				}
			}
		}
		g.off[id+1] = uint64(len(g.edges))
		if id+1 < in.n {
			sc.od.step()
		}
	}
	return g, true
}

// findLivelock is the Tarjan core of FindLivelock, parameterized over the
// provider of not-I-restricted successor lists so that the parallel checker
// can feed it the pre-materialized CSR adjacency: same traversal order over
// the same (sorted) adjacency means the same witness cycle either way.
// Cancellation is polled once per cancelCheckMask+1 visited states.
func (in *Instance) findLivelock(ctx context.Context, restricted func(id uint64) []uint64) ([]uint64, error) {
	defer trace.StartRegion(ctx, "explicit.livelockTarjan").End()
	const unvisited = -1
	index := make([]int32, in.n)
	low := make([]int32, in.n)
	onStack := newBitset(in.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []uint64
		count   int32
		frames  []mcFrame
		sccSeed = uint64(0)
		found   []uint64
	)
	for root := uint64(0); root < in.n; root++ {
		if in.inI.Get(root) || index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], mcFrame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.succ == nil {
				index[v] = count
				low[v] = count
				count++
				if count&cancelCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				stack = append(stack, v)
				onStack.Set(v)
				f.succ = restricted(v)
			}
			advanced := false
			for f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if w == v {
					// Self-loop: immediate livelock.
					return []uint64{v}, nil
				}
				if index[w] == unvisited {
					frames = append(frames, mcFrame{v: w})
					advanced = true
					break
				}
				if onStack.Get(w) && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				size := 0
				for i := len(stack) - 1; ; i-- {
					size++
					if stack[i] == v {
						break
					}
				}
				if size > 1 {
					sccSeed = v
					// Member set of this SCC.
					members := make(map[uint64]bool, size)
					for i := 0; i < size; i++ {
						w := stack[len(stack)-1-i]
						members[w] = true
					}
					found = in.cycleWithin(sccSeed, members)
					return found, nil
				}
				// Trivial SCC: pop it.
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack.Clear(w)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return nil, nil
}

type mcFrame struct {
	v    uint64
	succ []uint64
	next int
}

// cycleWithin extracts an explicit cycle through seed inside a nontrivial
// SCC given by members: DFS from a successor of seed back to seed.
func (in *Instance) cycleWithin(seed uint64, members map[uint64]bool) []uint64 {
	// BFS from seed within members, tracking parents, until seed is re-reached.
	type edge struct{ from, to uint64 }
	parent := make(map[uint64]uint64)
	queue := []uint64{seed}
	visited := map[uint64]bool{seed: true}
	var closing *edge
	for len(queue) > 0 && closing == nil {
		u := queue[0]
		queue = queue[1:]
		for _, w := range in.Successors(u) {
			if !members[w] || in.inI.Get(w) {
				continue
			}
			if w == seed {
				closing = &edge{from: u, to: w}
				break
			}
			if !visited[w] {
				visited[w] = true
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	if closing == nil {
		// Should not happen inside a nontrivial SCC.
		return []uint64{seed}
	}
	var rev []uint64
	for v := closing.from; v != seed; v = parent[v] {
		rev = append(rev, v)
	}
	cycle := []uint64{seed}
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	return cycle
}

// IsLivelock verifies a candidate cycle: consecutive states (cyclically)
// must be global transitions and every state must be outside I.
func (in *Instance) IsLivelock(cycle []uint64) bool {
	if len(cycle) == 0 {
		return false
	}
	for i, s := range cycle {
		if in.inI.Get(s) {
			return false
		}
		next := cycle[(i+1)%len(cycle)]
		if !in.HasTransition(s, next) {
			return false
		}
	}
	return true
}

// ConvergenceReport is the verdict of CheckStrongConvergence.
type ConvergenceReport struct {
	// Converges is true when the protocol strongly converges to I(K):
	// no deadlock outside I and no livelock (Proposition 2.1).
	Converges bool
	// DeadlockWitness, when non-nil, is a global deadlock outside I.
	DeadlockWitness *uint64
	// LivelockWitness, when non-empty, is a cycle of states outside I.
	LivelockWitness []uint64
	// StatesExplored counts global states examined (= domain^K; recorded for
	// the local-vs-global cost experiments).
	StatesExplored uint64
}

// CheckStrongConvergence decides strong convergence to I(K) by Proposition
// 2.1: deadlock-freedom in not-I plus livelock-freedom in Delta_p | not-I.
// With WithWorkers > 1 it runs the frontier-parallel engine (see
// parallel.go); verdicts and witnesses are identical to the sequential
// reference either way.
func (in *Instance) CheckStrongConvergence() ConvergenceReport {
	rep, _ := in.CheckStrongConvergenceCtx(context.Background())
	return rep
}

// CheckStrongConvergenceCtx is CheckStrongConvergence with cooperative
// cancellation: both the deadlock scan and the livelock Tarjan poll ctx
// periodically (in every worker, when parallel) and the check returns
// ctx.Err() with a zero-value report once the context is done — the hook
// that makes service deadlines real on multi-second state spaces.
func (in *Instance) CheckStrongConvergenceCtx(ctx context.Context) (ConvergenceReport, error) {
	if in.workers > 1 {
		return in.checkStrongConvergenceParallel(ctx)
	}
	return in.checkStrongConvergenceSeq(ctx)
}

// CheckStrongConvergenceSeq is the single-threaded reference
// implementation of CheckStrongConvergence. It is kept exported so tests
// and the Table-1 benchmarks can cross-check and time the parallel engine
// against it regardless of the instance's worker setting.
func (in *Instance) CheckStrongConvergenceSeq() ConvergenceReport {
	rep, _ := in.checkStrongConvergenceSeq(context.Background())
	return rep
}

func (in *Instance) checkStrongConvergenceSeq(ctx context.Context) (ConvergenceReport, error) {
	rep := ConvergenceReport{StatesExplored: in.n}
	scan := trace.StartRegion(ctx, "explicit.deadlockScan")
	sc := in.newScratch()
	sc.od.reset(0)
	for id := uint64(0); id < in.n; id++ {
		if id&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				scan.End()
				return ConvergenceReport{}, err
			}
		}
		if !in.inI.Get(id) && in.deadlockAt(sc) {
			d := id
			rep.DeadlockWitness = &d
			scan.End()
			return rep, nil
		}
		if id+1 < in.n {
			sc.od.step()
		}
	}
	scan.End()
	c, err := in.FindLivelockCtx(ctx)
	if err != nil {
		return ConvergenceReport{}, err
	}
	if c != nil {
		rep.LivelockWitness = c
		return rep, nil
	}
	rep.Converges = true
	return rep, nil
}

// CheckWeakConvergence reports whether from every state some computation
// reaches I (weak convergence, Section 2.2), together with the states that
// cannot reach I at all when the answer is false. The backward BFS from I
// runs level-parallel when WithWorkers > 1; reachability is
// order-independent, so the stuck set is identical.
func (in *Instance) CheckWeakConvergence() (bool, []uint64) {
	dist := in.recoveryDistances()
	var stuck []uint64
	for id := uint64(0); id < in.n; id++ {
		if dist[id] < 0 {
			stuck = append(stuck, id)
		}
	}
	return len(stuck) == 0, stuck
}

// RecoveryRadius returns the maximum and mean over all states of the
// shortest number of transitions needed to reach I (states already in I
// count 0) — the convergence-time metric of the X3 experiment. The bool is
// false when some state cannot reach I at all (the radius then ignores
// such states). Shares the (optionally parallel) backward BFS with
// CheckWeakConvergence; BFS distances are unique, so worker count never
// changes the answer.
func (in *Instance) RecoveryRadius() (max int, mean float64, allReach bool) {
	dist := in.recoveryDistances()
	allReach = true
	var sum, cnt uint64
	for id := uint64(0); id < in.n; id++ {
		if dist[id] < 0 {
			allReach = false
			continue
		}
		if int(dist[id]) > max {
			max = int(dist[id])
		}
		sum += uint64(dist[id])
		cnt++
	}
	if cnt > 0 {
		mean = float64(sum) / float64(cnt)
	}
	return max, mean, allReach
}

// FormatCycle renders a livelock cycle as the paper does, e.g.
// "<1000, 1100, 0100, ...>".
func (in *Instance) FormatCycle(cycle []uint64) string {
	s := "<"
	for i, id := range cycle {
		if i > 0 {
			s += ", "
		}
		s += in.Format(id)
	}
	return s + ">"
}

// Computation replays a schedule: starting from state id, it applies, at
// each step, a transition by the given process (which must be enabled),
// returning the visited states including the start. An error is returned if
// a scheduled process is not enabled or has a nondeterministic choice (use
// ComputationChoose for those).
func (in *Instance) Computation(start uint64, schedule []int) ([]uint64, error) {
	states := []uint64{start}
	cur := start
	for step, r := range schedule {
		var tos []uint64
		for _, t := range in.SuccessorsDetailed(cur) {
			if t.Process == r {
				tos = append(tos, t.To)
			}
		}
		switch len(tos) {
		case 0:
			return states, fmt.Errorf("explicit: step %d: process %d not enabled in %s", step, r, in.Format(cur))
		case 1:
			cur = tos[0]
		default:
			return states, fmt.Errorf("explicit: step %d: process %d has %d choices; use ComputationChoose", step, r, len(tos))
		}
		states = append(states, cur)
	}
	return states, nil
}

// IsWeaklyFairCycle reports whether a livelock cycle is admissible under a
// weakly fair daemon: no process that is continuously enabled along the
// whole cycle fails to execute in it. By Corollary 5.7 every livelock on a
// unidirectional ring trivially satisfies this (no process is continuously
// enabled at all), which is the paper's point that weak fairness does not
// help against livelocks.
func (in *Instance) IsWeaklyFairCycle(cycle []uint64) bool {
	if !in.IsLivelock(cycle) {
		return false
	}
	executes := make(map[int]bool)
	for i, s := range cycle {
		next := cycle[(i+1)%len(cycle)]
		for _, t := range in.SuccessorsDetailed(s) {
			if t.To == next {
				executes[t.Process] = true
			}
		}
	}
	for p := 0; p < in.k; p++ {
		continuously := true
		for _, s := range cycle {
			enabled := false
			for _, e := range in.EnabledProcesses(s) {
				if e == p {
					enabled = true
					break
				}
			}
			if !enabled {
				continuously = false
				break
			}
		}
		if continuously && !executes[p] {
			return false
		}
	}
	return true
}
