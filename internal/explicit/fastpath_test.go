package explicit

import (
	"math/rand"
	"testing"

	"paramring/internal/protocols"
	"paramring/internal/protogen"
)

// The fast path and the symbolic path must agree exactly on successors and
// deadlock status — on the zoo and on random protocols.
func TestFastPathAgreesWithSymbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(in *Instance) {
		t.Helper()
		for probe := uint64(0); probe < in.NumStates(); probe++ {
			fast := in.Successors(probe)
			det := in.SuccessorsDetailed(probe)
			slow := make([]uint64, 0, len(det))
			seen := map[uint64]bool{}
			for _, tr := range det {
				if !seen[tr.To] {
					seen[tr.To] = true
					slow = append(slow, tr.To)
				}
			}
			sortU64(slow)
			if len(fast) != len(slow) {
				t.Fatalf("%s state %d: fast %v != slow %v", in.Protocol().Name(), probe, fast, slow)
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("%s state %d: fast %v != slow %v", in.Protocol().Name(), probe, fast, slow)
				}
			}
			if in.IsDeadlock(probe) != (len(slow) == 0) {
				t.Fatalf("%s state %d: deadlock disagreement", in.Protocol().Name(), probe)
			}
		}
	}
	for _, name := range []string{"matchingA", "agreement-both", "sum-not-two-ss", "mis"} {
		check(MustNewInstance(protocols.All()[name], 4))
	}
	for trial := 0; trial < 25; trial++ {
		p := protogen.Random(rng, protogen.Options{MovePercent: 60, Nondet: true})
		check(MustNewInstance(p, 5))
	}
}

// Distinguished processes must bypass the fast path and stay correct.
func TestFastPathSkippedForDistinguished(t *testing.T) {
	follower, bottom := protocols.DijkstraTokenRing(3)
	in := MustNewInstance(follower, 3,
		WithProcessActions(0, bottom),
		WithGlobalPredicate(protocols.TokenRingLegit))
	if tbl := in.fast(); tbl != nil {
		t.Fatal("fast path must be unavailable with distinguished processes")
	}
	// Bottom's bump must appear in successors of the all-equal state.
	id := in.Encode([]int{1, 1, 1})
	succ := in.Successors(id)
	if len(succ) != 1 || succ[0] != in.Encode([]int{2, 1, 1}) {
		t.Fatalf("successors = %v", succ)
	}
}

func sortU64(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Ablation: compiled table vs symbolic guard evaluation.
func BenchmarkSuccessorsFastVsSymbolic(b *testing.B) {
	in := MustNewInstance(protocols.MatchingA(), 8)
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in.Successors(uint64(i) % in.NumStates())
		}
	})
	b.Run("symbolic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in.SuccessorsDetailed(uint64(i) % in.NumStates())
		}
	})
}
