package explicit

import (
	"testing"

	"paramring/internal/protocols"
)

func TestSynthesizeGlobalAgreement(t *testing.T) {
	res, err := SynthesizeGlobal(protocols.AgreementBase(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 1 {
		t.Fatalf("chosen = %v, want single transition", res.Chosen)
	}
	if res.CandidatesTried < 1 || res.StatesExplored == 0 {
		t.Fatal("bookkeeping not populated")
	}
	in := MustNewInstance(res.Protocol, 3)
	if !in.CheckStrongConvergence().Converges {
		t.Fatal("returned protocol must converge at the synthesis K")
	}
}

// The paper's central critique of global synthesis, reproduced: at K=3 the
// baseline accepts 3-coloring with the cyclic candidate set, which livelocks
// on larger rings. The local method (synthesis.Synthesize) instead declares
// failure for every candidate — correctly, for all K.
func TestSynthesizeGlobalColoring3NotGeneralizable(t *testing.T) {
	res, err := SynthesizeGlobal(protocols.Coloring(3), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	in3 := MustNewInstance(res.Protocol, 3)
	if !in3.CheckStrongConvergence().Converges {
		t.Fatal("must converge at K=3 (that is what the baseline verified)")
	}
	in4 := MustNewInstance(res.Protocol, 4)
	rep := in4.CheckStrongConvergence()
	if rep.Converges {
		t.Fatal("the K=3 solution should FAIL at K=4 — non-generalizable")
	}
	if rep.LivelockWitness == nil {
		t.Fatalf("expected a livelock witness at K=4, got %+v", rep)
	}
}

func TestSynthesizeGlobalColoring2Infeasible(t *testing.T) {
	if _, err := SynthesizeGlobal(protocols.Coloring(2), 3, 0); err == nil {
		t.Fatal("2-coloring must be unsynthesizable at K=3 (odd ring)")
	}
}

func TestSynthesizeGlobalSumNotTwoGeneralizesHere(t *testing.T) {
	res, err := SynthesizeGlobal(protocols.SumNotTwoBase(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k <= 6; k++ {
		if !MustNewInstance(res.Protocol, k).CheckStrongConvergence().Converges {
			t.Fatalf("sum-not-two global solution fails at K=%d", k)
		}
	}
}

func TestSynthesizeGlobalBudget(t *testing.T) {
	if _, err := SynthesizeGlobal(protocols.Coloring(3), 4, 3); err == nil {
		t.Fatal("tiny budget must be exhausted")
	}
}

func TestSynthesizeGlobalRejectsSelfEnabling(t *testing.T) {
	follower, _ := protocols.DijkstraTokenRing(3)
	// The follower's copy action is self-enabling? No — copying the left
	// value disables the guard. Use a genuinely self-enabling protocol.
	_ = follower
	p := protocols.GoudaAcharya() // t_sl: (r,s)->(r,l)? target (r,l) ... check
	sys := p.Compile()
	if sys.IsSelfDisabling() {
		t.Skip("fixture unexpectedly self-disabling")
	}
	if _, err := SynthesizeGlobal(p, 3, 0); err == nil {
		t.Fatal("expected rejection")
	}
}
