package explicit

import "math"

// Pre-run memory accounting. The service layer admits a verification job
// only when the explicit-engine tables it could allocate fit the server's
// memory budget, and it must answer that question BEFORE any instance is
// built — an Instance constructor already commits the domain^K bitset.
// These estimators are the constructor's arithmetic factored out so the
// admission decision and the eventual allocation can never disagree.

// EstimateStates returns domain^k — the global-state count an Instance of
// that shape would enumerate — without constructing anything. ok is false
// when the count overflows the engine's uint64 budget (the same
// 62-bit guard NewInstance applies), in which case the returned count is
// math.MaxUint64 so callers that compare against a budget still reject.
func EstimateStates(domain, k int) (states uint64, ok bool) {
	if domain < 1 || k < 1 {
		return 0, false
	}
	if float64(k)*math.Log2(float64(domain)) > 62 {
		return math.MaxUint64, false
	}
	states = 1
	for i := 0; i < k; i++ {
		states *= uint64(domain)
	}
	return states, true
}

// EstimateTableBytes returns the resident per-state table footprint of an
// n-state instance: the packed I(K) membership bitset, one bit per global
// state rounded up to whole 64-bit words — exactly what
// Instance.TableBytes reports after construction.
func EstimateTableBytes(n uint64) uint64 {
	return bitsetWords(n) * 8
}

// MaxStatesForBudget returns the largest state count whose resident table
// fits within budget bytes — the inverse of EstimateTableBytes, used by
// the service layer to derive a WithMaxStates clamp from a memory budget
// so an oversized instance fails construction with a one-line error
// instead of OOMing the process.
func MaxStatesForBudget(budget uint64) uint64 {
	if budget > math.MaxUint64/8 {
		return math.MaxUint64
	}
	return budget * 8 // one bit per state
}
