package synthesis

import (
	"runtime"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func BenchmarkSynthesizeFirst(b *testing.B) {
	for _, name := range []string{"agreement", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(p, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSynthesizeAll(b *testing.B) {
	for _, name := range []string{"agreement", "coloring3", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = Synthesize(p, Options{All: true}) // coloring3 fails by design
			}
		})
	}
}

// The seq-vs-par engine comparison: every case runs the reference flat
// enumeration, the sequential branch-and-bound walk, and the parallel walk —
// all three produce the identical Result; the benchmark measures what pruning,
// memoization and workers buy.
type synthBenchCase struct {
	name string
	p    *core.Protocol
}

type synthBenchMode struct {
	name string
	opts Options
}

func synthBenchCases() []synthBenchCase {
	return []synthBenchCase{
		{"agreement", protocols.AgreementBase()},
		{"sum-not-two", protocols.SumNotTwoBase()},
		{"coloring3", protocols.Coloring(3)},
		{"coloring4", protocols.Coloring(4)},
	}
}

func synthBenchModes() []synthBenchMode {
	// On a single-CPU host GOMAXPROCS is 1; floor the parallel mode at 2 so it
	// always exercises the multi-worker path (the result is identical anyway).
	return []synthBenchMode{
		{"flat", Options{All: true, Flat: true}},
		{"seq", Options{All: true}},
		{"par", Options{All: true, Workers: max(2, runtime.GOMAXPROCS(0))}},
	}
}

func BenchmarkSynthesize(b *testing.B) {
	for _, c := range synthBenchCases() {
		for _, m := range synthBenchModes() {
			b.Run(c.name+"/"+m.name, func(b *testing.B) {
				b.ReportAllocs()
				var st SearchStats
				for i := 0; i < b.N; i++ {
					res, _ := Synthesize(c.p, m.opts) // the colorings fail by design
					if res != nil {
						st = res.Stats
					}
				}
				b.ReportMetric(float64(st.Candidates), "candidates/op")
				b.ReportMetric(float64(st.Evaluated), "evaluated/op")
				if tot := st.MemoHits + st.MemoMisses; tot > 0 {
					b.ReportMetric(float64(st.MemoHits)/float64(tot), "memo-hit-rate")
				}
			})
		}
	}
}

// The BENCH_synth.json artifact this grid used to write via an env-gated
// test is now produced by `make bench-synth` -> cmd/lrbench, whose
// internal/bench suite mirrors synthBenchCases/synthBenchModes and whose
// snapshots are regression-gated against the committed baseline (see
// PERFORMANCE.md).
