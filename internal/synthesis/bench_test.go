package synthesis

import (
	"testing"

	"paramring/internal/protocols"
)

func BenchmarkSynthesizeFirst(b *testing.B) {
	for _, name := range []string{"agreement", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(p, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSynthesizeAll(b *testing.B) {
	for _, name := range []string{"agreement", "coloring3", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = Synthesize(p, Options{All: true}) // coloring3 fails by design
			}
		})
	}
}
