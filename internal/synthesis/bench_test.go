package synthesis

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"paramring/internal/core"
	"paramring/internal/protocols"
)

func BenchmarkSynthesizeFirst(b *testing.B) {
	for _, name := range []string{"agreement", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(p, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSynthesizeAll(b *testing.B) {
	for _, name := range []string{"agreement", "coloring3", "sum-not-two"} {
		p := protocols.All()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = Synthesize(p, Options{All: true}) // coloring3 fails by design
			}
		})
	}
}

// The seq-vs-par engine comparison: every case runs the reference flat
// enumeration, the sequential branch-and-bound walk, and the parallel walk —
// all three produce the identical Result; the benchmark measures what pruning,
// memoization and workers buy.
type synthBenchCase struct {
	name string
	p    *core.Protocol
}

type synthBenchMode struct {
	name string
	opts Options
}

func synthBenchCases() []synthBenchCase {
	return []synthBenchCase{
		{"agreement", protocols.AgreementBase()},
		{"sum-not-two", protocols.SumNotTwoBase()},
		{"coloring3", protocols.Coloring(3)},
		{"coloring4", protocols.Coloring(4)},
	}
}

func synthBenchModes() []synthBenchMode {
	// On a single-CPU host GOMAXPROCS is 1; floor the parallel mode at 2 so it
	// always exercises the multi-worker path (the result is identical anyway).
	return []synthBenchMode{
		{"flat", Options{All: true, Flat: true}},
		{"seq", Options{All: true}},
		{"par", Options{All: true, Workers: max(2, runtime.GOMAXPROCS(0))}},
	}
}

func BenchmarkSynthesize(b *testing.B) {
	for _, c := range synthBenchCases() {
		for _, m := range synthBenchModes() {
			b.Run(c.name+"/"+m.name, func(b *testing.B) {
				b.ReportAllocs()
				var st SearchStats
				for i := 0; i < b.N; i++ {
					res, _ := Synthesize(c.p, m.opts) // the colorings fail by design
					if res != nil {
						st = res.Stats
					}
				}
				b.ReportMetric(float64(st.Candidates), "candidates/op")
				b.ReportMetric(float64(st.Evaluated), "evaluated/op")
				if tot := st.MemoHits + st.MemoMisses; tot > 0 {
					b.ReportMetric(float64(st.MemoHits)/float64(tot), "memo-hit-rate")
				}
			})
		}
	}
}

// TestWriteBenchSynthJSON reruns the BenchmarkSynthesize grid via
// testing.Benchmark and writes the results to the path named by the
// BENCH_SYNTH_JSON environment variable (the `make bench-synth` CI artifact).
// Without the variable the test is skipped.
func TestWriteBenchSynthJSON(t *testing.T) {
	path := os.Getenv("BENCH_SYNTH_JSON")
	if path == "" {
		t.Skip("set BENCH_SYNTH_JSON=<path> to write the synthesis benchmark artifact")
	}
	type entry struct {
		Name              string  `json:"name"`
		Workers           int     `json:"workers"`
		NsPerOp           int64   `json:"ns_per_op"`
		Candidates        int     `json:"candidates"`
		Evaluated         int     `json:"evaluated"`
		PrunedAssignments int     `json:"pruned_assignments"`
		MemoHits          uint64  `json:"memo_hits"`
		MemoMisses        uint64  `json:"memo_misses"`
		MemoHitRate       float64 `json:"memo_hit_rate"`
	}
	var entries []entry
	for _, c := range synthBenchCases() {
		for _, m := range synthBenchModes() {
			var st SearchStats
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, _ := Synthesize(c.p, m.opts)
					if res != nil {
						st = res.Stats
					}
				}
			})
			e := entry{
				Name:              c.name + "/" + m.name,
				Workers:           st.Workers,
				NsPerOp:           r.NsPerOp(),
				Candidates:        st.Candidates,
				Evaluated:         st.Evaluated,
				PrunedAssignments: st.PrunedAssignments,
				MemoHits:          st.MemoHits,
				MemoMisses:        st.MemoMisses,
			}
			if tot := st.MemoHits + st.MemoMisses; tot > 0 {
				e.MemoHitRate = float64(st.MemoHits) / float64(tot)
			}
			entries = append(entries, e)
			t.Logf("%-22s %12d ns/op  candidates=%d evaluated=%d pruned=%d memo=%d/%d",
				e.Name, e.NsPerOp, e.Candidates, e.Evaluated, e.PrunedAssignments, e.MemoHits, e.MemoMisses)
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
