package synthesis

import (
	"errors"
	"math/rand"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/protogen"
)

// The synthesis output contract (Problem 3.1) on random inputs: whenever
// the methodology accepts, the synthesized protocol must (1) keep I
// unchanged, (2) keep Delta|I unchanged and closed, and (3) strongly
// converge — for every sampled ring size. Failures to synthesize are fine
// (the methodology is incomplete); wrong acceptances are not.
func TestSynthesisContractRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1203))
	accepted, failed := 0, 0
	for trial := 0; trial < 120; trial++ {
		// Random action-free unidirectional protocol: a random locally
		// conjunctive legitimate predicate over (x_{r-1}, x_r). Closure is
		// trivial (no actions).
		base := protogen.Random(rng, protogen.Options{MovePercent: 1})
		if len(base.Compile().Trans) > 0 {
			// Rare: drop trials that generated actions, to keep closure
			// trivially true for arbitrary random legitimacy bits.
			continue
		}
		res, err := Synthesize(base, Options{})
		if err != nil {
			if errors.Is(err, ErrNoSolution) {
				failed++
				continue
			}
			// Resolve infeasibility (e.g. no candidate targets) is also a
			// legitimate failure mode for random inputs.
			failed++
			continue
		}
		accepted++
		cand := res.Best()
		for _, k := range []int{2, 3, 4, 5} {
			inB, err := explicit.NewInstance(base, k)
			if err != nil {
				t.Fatal(err)
			}
			inS, err := explicit.NewInstance(cand.Protocol, k)
			if err != nil {
				t.Fatal(err)
			}
			if inS.CheckClosure() != nil {
				t.Fatalf("trial %d K=%d: closure broken", trial, k)
			}
			for id := uint64(0); id < inB.NumStates(); id++ {
				if !inB.InI(id) {
					continue
				}
				if len(inS.Successors(id)) != len(inB.Successors(id)) {
					t.Fatalf("trial %d K=%d: Delta|I changed at %s", trial, k, inB.Format(id))
				}
			}
			if !inS.CheckStrongConvergence().Converges {
				t.Fatalf("trial %d K=%d: accepted protocol does not converge", trial, k)
			}
		}
	}
	if accepted < 15 || failed < 15 {
		t.Fatalf("distribution too skewed: accepted=%d failed=%d", accepted, failed)
	}
}

// Accepted solutions resolve exactly the Resolve set: each resolved state
// gains outgoing transitions, every other local deadlock stays deadlocked.
func TestSynthesisResolvesExactlyResolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	checked := 0
	for trial := 0; trial < 80 && checked < 25; trial++ {
		base := protogen.Random(rng, protogen.Options{Domain: 3, MovePercent: 1})
		if len(base.Compile().Trans) > 0 {
			continue
		}
		res, err := Synthesize(base, Options{})
		if err != nil {
			continue
		}
		checked++
		cand := res.Best()
		baseSys := base.Compile()
		ssSys := cand.Protocol.Compile()
		inResolve := map[core.LocalState]bool{}
		for _, s := range cand.Resolve {
			inResolve[s] = true
		}
		for _, d := range baseSys.Deadlocks {
			if inResolve[d] {
				if ssSys.IsDeadlock[d] {
					t.Fatalf("trial %d: resolved state %s still deadlocked", trial, base.FormatState(d))
				}
			} else if !ssSys.IsDeadlock[d] {
				t.Fatalf("trial %d: unresolved deadlock %s gained transitions", trial, base.FormatState(d))
			}
		}
	}
	if checked < 10 {
		t.Fatalf("too few successful syntheses: %d", checked)
	}
}
