package synthesis

import (
	"errors"
	"strings"
	"testing"

	"paramring/internal/core"
	"paramring/internal/explicit"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
)

// verifyContract checks the Problem 3.1 output contract against the
// explicit model checker for the given ring sizes:
//
//	(1) I(K) unchanged (same predicate by construction),
//	(2) Delta_ss | I == Delta_p | I and I closed in p_ss,
//	(3) p_ss strongly self-stabilizes to I(K).
func verifyContract(t *testing.T, base, pss *core.Protocol, ks ...int) {
	t.Helper()
	for _, k := range ks {
		inB := explicit.MustNewInstance(base, k)
		inS := explicit.MustNewInstance(pss, k)
		if inS.CheckClosure() != nil {
			t.Fatalf("K=%d: I not closed in synthesized protocol", k)
		}
		// Delta|I comparison: transitions out of I states must be identical.
		for id := uint64(0); id < inB.NumStates(); id++ {
			if !inB.InI(id) {
				continue
			}
			sb := inB.Successors(id)
			ss := inS.Successors(id)
			if len(sb) != len(ss) {
				t.Fatalf("K=%d: state %s inside I changed behavior: %v vs %v", k, inB.Format(id), sb, ss)
			}
			for i := range sb {
				if sb[i] != ss[i] {
					t.Fatalf("K=%d: state %s inside I changed behavior", k, inB.Format(id))
				}
			}
		}
		rep := inS.CheckStrongConvergence()
		if !rep.Converges {
			t.Fatalf("K=%d: synthesized protocol does not strongly converge: %+v", k, rep)
		}
	}
}

func TestAgreementSynthesis(t *testing.T) {
	res, err := Synthesize(protocols.AgreementBase(), Options{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 2 {
		t.Fatalf("accepted = %d, want 2 (one per Resolve side)", len(res.Accepted))
	}
	// Both Resolve sets are singletons {10} and {01} (the paper: "Resolve =
	// {01} or Resolve = {10}").
	if len(res.ResolveSets) != 2 || len(res.ResolveSets[0]) != 1 || len(res.ResolveSets[1]) != 1 {
		t.Fatalf("resolve sets = %v", res.ResolveSets)
	}
	for _, cand := range res.Accepted {
		if cand.Phase != PhaseNPL {
			t.Fatalf("agreement solutions are NPL (no pseudo-livelocks), got %v", cand.Phase)
		}
		if len(cand.Chosen) != 1 {
			t.Fatalf("chosen = %v, want a single transition", cand.Chosen)
		}
		if !cand.Deadlock.Free || cand.Livelock.Verdict != ltg.VerdictFree {
			t.Fatal("final reports must be clean")
		}
		verifyContract(t, protocols.AgreementBase(), cand.Protocol, 2, 3, 4, 5, 6, 7)
	}
}

func TestTwoColoringSynthesisFails(t *testing.T) {
	res, err := Synthesize(protocols.Coloring(2), Options{All: true})
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	// Figure 11: Resolve must be {00, 11} — both illegitimate deadlocks have
	// s-arc self-loops.
	if len(res.ResolveSets) != 1 || len(res.ResolveSets[0]) != 2 {
		t.Fatalf("resolve sets = %v", res.ResolveSets)
	}
	if len(res.Rejections) != 1 {
		t.Fatalf("rejections = %d, want 1 (the only candidate set)", len(res.Rejections))
	}
	if !strings.Contains(res.Rejections[0].Reason, "pseudo-livelock") {
		t.Fatalf("rejection reason = %q", res.Rejections[0].Reason)
	}
}

func TestThreeColoringSynthesisFails(t *testing.T) {
	// Figure 9 walkthrough: Resolve = {00,11,22}, 6 candidate transitions,
	// 2^3 = 8 candidate sets, all rejected.
	res, err := Synthesize(protocols.Coloring(3), Options{All: true})
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if len(res.ResolveSets) != 1 || len(res.ResolveSets[0]) != 3 {
		t.Fatalf("resolve sets = %v", res.ResolveSets)
	}
	if len(res.Rejections) != 8 {
		t.Fatalf("rejections = %d, want 8", len(res.Rejections))
	}
}

func TestSumNotTwoSynthesis(t *testing.T) {
	base := protocols.SumNotTwoBase()
	res, err := Synthesize(base, Options{All: true})
	if err != nil {
		t.Fatal(err)
	}
	// Resolve = {20, 11, 02} (all of the illegitimate states; the paper:
	// "no proper subset ... can be resolved").
	if len(res.ResolveSets) != 1 || len(res.ResolveSets[0]) != 3 {
		t.Fatalf("resolve sets = %v", res.ResolveSets)
	}
	if len(res.Accepted) == 0 {
		t.Fatal("sum-not-two must be synthesizable")
	}
	// The paper's accepted candidate set {t21, t12, t01} — in window terms
	// {(0,2)->(0,1), (1,1)->(1,2), (2,0)->(2,1)} — must be among the
	// accepted sets.
	enc := func(a, b int) core.LocalState { return core.Encode(core.View{a, b}, 3) }
	wantChosen := map[[2]core.LocalState]bool{
		{enc(0, 2), enc(0, 1)}: true,
		{enc(1, 1), enc(1, 2)}: true,
		{enc(2, 0), enc(2, 1)}: true,
	}
	foundPaperSolution := false
	for _, cand := range res.Accepted {
		match := 0
		for _, tr := range cand.Chosen {
			if wantChosen[[2]core.LocalState{tr.Src, tr.Dst}] {
				match++
			}
		}
		if match == 3 {
			foundPaperSolution = true
		}
		if cand.Phase != PhasePL {
			t.Fatalf("sum-not-two acceptance is PL phase, got %v", cand.Phase)
		}
		verifyContract(t, base, cand.Protocol, 3, 4, 5, 6)
	}
	if !foundPaperSolution {
		t.Fatal("the paper's accepted candidate set {t21,t12,t01} was not found")
	}
	// Both paper-rejected triples must be among the rejections: {t21,t10,t02}
	// = {(0,2)->(0,1), (1,1)->(1,0), (2,0)->(2,2)} and {t01,t12,t20}
	// = {(2,0)->(2,1), (1,1)->(1,2), (0,2)->(0,0)}.
	rejectedSets := map[string]bool{}
	sys := base.Compile()
	for _, rej := range res.Rejections {
		rejectedSets[ltg.FormatTArcs(sys, rej.Chosen)] = true
	}
	for _, want := range []string{
		"{conv:20->22, conv:11->10, conv:02->01}",
		"{conv:20->21, conv:11->12, conv:02->00}",
	} {
		if !rejectedSets[want] {
			t.Fatalf("expected rejection of %s; rejected sets: %v", want, rejectedSets)
		}
	}
}

// Classify the four sum-not-two rejections by explicit search. This test
// documents a paper erratum found by the reproduction: the paper states
// that apart from its two rejected triples, "none of the remaining
// candidate subsets of t-arcs forms a trail whose t-arcs are
// pseudo-livelocks" — implying 6 of the 8 candidate sets are safe. In fact
// the two sets containing both t02 ((2,0)->(2,2)) and t20 ((0,2)->(0,0))
// have REAL livelocks at K=3 (e.g. <200,220,020,022,002,202>); our trail
// search rejects them, and the explicit checker confirms the livelocks.
// The paper's own two rejections are confirmed spurious (no livelock at
// any checked K), exactly as the paper demonstrates for {t21,t10,t02}.
func TestSumNotTwoRejectionClassification(t *testing.T) {
	base := protocols.SumNotTwoBase()
	res, _ := Synthesize(base, Options{All: true})
	if len(res.Accepted)+len(res.Rejections) != 8 {
		t.Fatalf("expected 8 candidate sets total, got %d accepted + %d rejected",
			len(res.Accepted), len(res.Rejections))
	}
	sys := base.Compile()
	real := map[string]bool{}
	for _, rej := range res.Rejections {
		pss, err := Apply(base, rej.Chosen, "conv")
		if err != nil {
			t.Fatal(err)
		}
		for k := 3; k <= 6; k++ {
			if explicit.MustNewInstance(pss, k).FindLivelock() != nil {
				real[ltg.FormatTArcs(sys, rej.Chosen)] = true
				break
			}
		}
	}
	// Exactly the two t02+t20 sets livelock for real.
	wantReal := map[string]bool{
		"{conv:20->22, conv:11->10, conv:02->00}": true, // {t02,t10,t20}
		"{conv:20->22, conv:11->12, conv:02->00}": true, // {t02,t12,t20}
	}
	if len(real) != len(wantReal) {
		t.Fatalf("real-livelock rejections = %v, want %v", real, wantReal)
	}
	for k := range wantReal {
		if !real[k] {
			t.Fatalf("expected a real livelock for %s; got %v", k, real)
		}
	}
}

func TestSynthesizeFirstOnlyByDefault(t *testing.T) {
	res, err := Synthesize(protocols.AgreementBase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("accepted = %d, want 1 without All", len(res.Accepted))
	}
	if res.Best() == nil {
		t.Fatal("Best must return the solution")
	}
}

func TestSynthesizeAlreadyStabilizingBase(t *testing.T) {
	// A base with no illegitimate deadlock cycles: the one-sided agreement.
	// Resolve is empty and the base itself is returned as the solution.
	res, err := Synthesize(protocols.AgreementOneSided("t01"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cand := res.Best()
	if cand == nil || len(cand.Chosen) != 0 {
		t.Fatalf("expected empty-chosen acceptance, got %+v", cand)
	}
}

func TestSynthesizeRejectsSelfEnablingBase(t *testing.T) {
	p := core.MustNew(core.Config{
		Name: "selfen", Domain: 2, Lo: -1, Hi: 0,
		Actions: []core.Action{{
			Name:  "flip",
			Guard: func(v core.View) bool { return true },
			Next:  func(v core.View) []int { return []int{1 - v[1]} },
		}},
		Legit: func(v core.View) bool { return v[0] == v[1] },
	})
	if _, err := Synthesize(p, Options{}); err == nil {
		t.Fatal("expected rejection of self-enabling base")
	}
}

func TestApplyBuildsUnionProtocol(t *testing.T) {
	base := protocols.AgreementBase()
	sys := base.Compile()
	_ = sys
	tr := core.LocalTransition{
		Src: core.Encode(core.View{0, 1}, 2), Dst: core.Encode(core.View{0, 0}, 2), Action: "conv",
	}
	pss, err := Apply(base, []core.LocalTransition{tr}, "conv")
	if err != nil {
		t.Fatal(err)
	}
	ssys := pss.Compile()
	if len(ssys.Trans) != 1 {
		t.Fatalf("Trans = %v", ssys.Trans)
	}
	if ssys.Trans[0].Src != tr.Src || ssys.Trans[0].Dst != tr.Dst {
		t.Fatalf("transition = %+v", ssys.Trans[0])
	}
	if !strings.HasSuffix(pss.Name(), "/ss") {
		t.Fatalf("name = %q", pss.Name())
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseNPL.String() != "NPL" || PhasePL.String() != "PL" {
		t.Fatal("phase strings wrong")
	}
	if Phase(9).String() == "" {
		t.Fatal("unknown phase must render")
	}
}

// Synthesized protocols must be provably generalizable: spot-check larger K
// than anything used during synthesis.
func TestSynthesizedAgreementGeneralizes(t *testing.T) {
	res, err := Synthesize(protocols.AgreementBase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pss := res.Best().Protocol
	for _, k := range []int{10, 14} {
		in := explicit.MustNewInstance(pss, k, explicit.WithMaxStates(1<<25))
		rep := in.CheckStrongConvergence()
		if !rep.Converges {
			t.Fatalf("K=%d: synthesized agreement must converge", k)
		}
	}
}

func TestStepsNarrativeMentionsKeyFacts(t *testing.T) {
	res, _ := Synthesize(protocols.Coloring(3), Options{All: true})
	joined := strings.Join(res.Steps, "\n")
	for _, want := range []string{"Step 1", "Step 2", "Step 3", "declare failure", "9 local states"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("narrative missing %q:\n%s", want, joined)
		}
	}
}
