package synthesis

import (
	"context"
	"fmt"
	"runtime/trace"
	"sync"
	"sync/atomic"

	"paramring/internal/core"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
)

// SearchStats reports how the search engine reached its result. All fields
// are diagnostics: under parallel execution workers race ahead of the
// eventual winner, so Evaluated/Pruned* counts may vary from run to run even
// though Accepted, Rejections, ResolveSets and Steps never do.
type SearchStats struct {
	// Workers is the worker count the search ran with.
	Workers int
	// Candidates is the total number of candidate assignments across all
	// feasible Resolve sets (the flat enumeration's workload).
	Candidates int
	// Evaluated counts full per-assignment evaluations (p_ss built and both
	// theorems checked).
	Evaluated int
	// PrunedSubtrees counts branch-and-bound cuts: partial assignments whose
	// prefix already carried a contiguous trail.
	PrunedSubtrees int
	// PrunedAssignments counts assignments rejected through those cuts
	// without being evaluated individually.
	PrunedAssignments int
	// DeadlockRejected counts assignments rejected wholesale because their
	// Resolve set fails the Theorem 4.2 re-check (decided once per set).
	DeadlockRejected int
	// MemoHits and MemoMisses are the Theorem 5.14 verdict-cache counters.
	MemoHits   uint64
	MemoMisses uint64
}

// engine drives Steps 3-5 of the methodology for every Resolve set of one
// Synthesize run. It owns the pieces shared across Resolve sets: the base
// protocol's LTG (the s-arc skeleton candidate t-arcs are overlaid on), the
// Theorem 5.14 verdict memo, and the search counters.
type engine struct {
	base *core.Protocol
	sys  *core.System
	r    *rcg.RCG
	l    *ltg.LTG
	memo *ltg.Memo
	opts Options

	evaluated         atomic.Int64
	prunedSubtrees    atomic.Int64
	prunedAssignments atomic.Int64
	candidates        int
	deadlockRejected  int

	// rootWitness caches the Theorem 5.14 search over the base protocol's own
	// t-arcs (the empty-assignment prefix, shared by every Resolve set).
	rootChecked bool
	rootWitness *ltg.TrailWitness
}

// span is the outcome of a contiguous range of assignment indices within one
// block. Exactly one of cand, rej, reason, err describes it: cand and rej are
// single-assignment outcomes from a full evaluation; reason rejects the whole
// range via a branch-and-bound cut; err aborts the run.
type span struct {
	lo, hi int
	cand   *Candidate
	rej    *Rejection
	reason string
	err    error
}

type blockResult struct{ spans []span }

// rsSearch is the search state for one Resolve set's assignment tree.
type rsSearch struct {
	eng      *engine
	resolve  []core.LocalState
	perState [][]core.LocalTransition
	// stride[i] is the number of assignments per subtree in which the choices
	// for states i..m-1 are fixed: the product of len(perState[j]) for j < i.
	// Assignment indices follow the flat enumeration's mixed-radix encoding
	// (state 0 is the fastest-varying digit), so every such subtree covers a
	// contiguous index range.
	stride []int
	total  int
	// exact is true when base t-arcs + one candidate per resolved state fit
	// the exact subset search; only then can prefixes be checked and pruned.
	exact bool
	// bestAccept is the smallest accepted assignment index seen so far; with
	// Options.All unset, blocks past it are abandoned (deterministic
	// first-accept: the winner is the smallest index, as in the flat loop).
	bestAccept atomic.Int64
}

// runResolveSet searches one Resolve set's assignment space and returns its
// outcome spans in ascending assignment-index order. The caller (Synthesize)
// expands them into rejections, log lines and accepted candidates; everything
// order-dependent happens there, sequentially, so any worker count yields the
// same Result.
func (e *engine) runResolveSet(resolve []core.LocalState, perState [][]core.LocalTransition, total int) ([]span, error) {
	// Synthesize has no context plumbing (the search is deterministic and
	// in-process); Background still lets `go tool trace` attribute the
	// frontier's wall-clock to this region when a capture is running.
	defer trace.StartRegion(context.Background(), "synthesis.resolveSet").End()
	e.candidates += total
	m := len(perState)
	s := &rsSearch{eng: e, resolve: resolve, perState: perState, total: total}
	s.stride = make([]int, m)
	str := 1
	for i := 0; i < m; i++ {
		s.stride[i] = str
		str *= len(perState[i])
	}
	s.exact = !e.opts.Flat && len(e.sys.Trans)+m <= e.opts.Check.MaxTArcs

	if !e.opts.Flat {
		// Theorem 4.2 is uniform across the set's assignments: every
		// candidate resolves exactly the Resolve states, so the revised
		// protocol's deadlock set — and hence the verdict — is decided here,
		// once, on the base RCG.
		dlRep, err := e.r.CheckDeadlockFreedomWithout(resolve, 0)
		if err != nil {
			return nil, fmt.Errorf("synthesis: deadlock re-check: %w", err)
		}
		if !dlRep.Free {
			e.deadlockRejected += total
			return []span{{lo: 0, hi: total,
				reason: "revised protocol still has illegitimate deadlock cycles"}}, nil
		}
		if s.exact {
			// The base protocol's own t-arcs are a prefix of every candidate
			// overlay; a trail among them dooms every assignment.
			if !e.rootChecked {
				e.rootChecked = true
				e.rootWitness, _ = e.l.FindTrailSubset(e.sys.Trans, -1, e.memo)
			}
			if e.rootWitness != nil {
				e.prunedSubtrees.Add(1)
				e.prunedAssignments.Add(int64(total))
				return []span{{lo: 0, hi: total, reason: ltg.TrailReason(e.sys, e.rootWitness)}}, nil
			}
		}
	}

	workers := min(e.opts.Workers, total)
	if workers < 1 {
		workers = 1
	}
	blockSize := max(1, total/(workers*16))
	numBlocks := (total + blockSize - 1) / blockSize
	results := make([]blockResult, numBlocks)
	s.bestAccept.Store(int64(total))

	runBlockIdx := func(b int) {
		lo := b * blockSize
		hi := min(lo+blockSize, total)
		if !e.opts.All && s.bestAccept.Load() < int64(lo) {
			return // a smaller accepted index already decides the run
		}
		s.runBlock(lo, hi, &results[b])
	}
	if workers == 1 {
		for b := 0; b < numBlocks; b++ {
			runBlockIdx(b)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					b := int(next.Add(1)) - 1
					if b >= numBlocks {
						return
					}
					runBlockIdx(b)
				}
			}()
		}
		wg.Wait()
	}

	var spans []span
	for b := range results {
		spans = append(spans, results[b].spans...)
	}
	return spans, nil
}

// runBlock searches the assignment indices [lo, hi). In exact mode it walks
// the assignment tree as an odometer with branch-and-bound prefix checks; a
// prefix carrying a contiguous trail rejects its whole contiguous index range
// at once (monotonicity: adding t-arcs only adds trails). Otherwise each
// assignment is evaluated individually. A node check depends only on the
// prefix it examines — never on block boundaries — so rejection reasons are
// identical however the index space is partitioned.
func (s *rsSearch) runBlock(lo, hi int, out *blockResult) {
	e := s.eng
	if !s.exact {
		for idx := lo; idx < hi; idx++ {
			if !e.opts.All && s.bestAccept.Load() < int64(lo) {
				return
			}
			if done := s.leaf(idx, out); done {
				return
			}
		}
		return
	}

	m := len(s.perState)
	nb := len(e.sys.Trans)
	overlay := append(make([]core.LocalTransition, 0, nb+m), e.sys.Trans...)
	curDigits := make([]int, m)
	newDigits := make([]int, m)
	validDepth := m // depths >= validDepth have their arcs pushed and cleared
	first := true
	idx := lo
	for idx < hi {
		if !e.opts.All && s.bestAccept.Load() < int64(lo) {
			return
		}
		for i := 0; i < m; i++ {
			newDigits[i] = (idx / s.stride[i]) % len(s.perState[i])
		}
		// Highest tree level whose choice changed since the previous
		// assignment; everything above it keeps its cleared prefix checks.
		pushFrom := m - 1
		if !first {
			for d := m - 1; d >= 0; d-- {
				if curDigits[d] != newDigits[d] {
					pushFrom = d
					break
				}
			}
		}
		first = false
		pushFrom = max(pushFrom, validDepth-1)
		overlay = overlay[:nb+(m-1-pushFrom)]
		copy(curDigits, newDigits)

		pruned := false
		for d := pushFrom; d >= 0; d-- {
			overlay = append(overlay, s.perState[d][newDigits[d]])
			// Only subsets containing the newest arc are open: subsets of the
			// older prefix were cleared at shallower levels (or at the root).
			w, _ := e.l.FindTrailSubset(overlay, len(overlay)-1, e.memo)
			if w == nil {
				continue
			}
			subtree := s.stride[d]
			end := (idx/subtree)*subtree + subtree
			spanHi := min(end, hi)
			e.prunedSubtrees.Add(1)
			e.prunedAssignments.Add(int64(spanHi - idx))
			out.spans = append(out.spans, span{lo: idx, hi: spanHi, reason: ltg.TrailReason(e.sys, w)})
			overlay = overlay[:len(overlay)-1]
			validDepth = d + 1
			idx = end
			pruned = true
			break
		}
		if pruned {
			continue
		}
		// Every subset of the full overlay is clear of trails: the
		// assignment satisfies Theorem 5.14; the evaluation confirms and
		// builds the candidate.
		validDepth = 0
		if done := s.leaf(idx, out); done {
			return
		}
		idx++
	}
}

// leaf fully evaluates one assignment and records its outcome. Returns true
// when the block should stop (error, or first accept with Options.All unset).
func (s *rsSearch) leaf(idx int, out *blockResult) bool {
	e := s.eng
	chosen := assignment(s.perState, idx)
	e.evaluated.Add(1)
	cand, rej, err := evaluate(e.base, e.sys, chosen, s.resolve, e.opts)
	switch {
	case err != nil:
		out.spans = append(out.spans, span{lo: idx, hi: idx + 1, err: err})
		return true
	case rej != nil:
		out.spans = append(out.spans, span{lo: idx, hi: idx + 1, rej: rej})
		return false
	default:
		out.spans = append(out.spans, span{lo: idx, hi: idx + 1, cand: cand})
		if e.opts.All {
			return false
		}
		for {
			cur := s.bestAccept.Load()
			if int64(idx) >= cur || s.bestAccept.CompareAndSwap(cur, int64(idx)) {
				return true
			}
		}
	}
}

// stats snapshots the engine's counters.
func (e *engine) stats() SearchStats {
	hits, misses := e.memo.Stats()
	return SearchStats{
		Workers:           e.opts.Workers,
		Candidates:        e.candidates,
		Evaluated:         int(e.evaluated.Load()),
		PrunedSubtrees:    int(e.prunedSubtrees.Load()),
		PrunedAssignments: int(e.prunedAssignments.Load()),
		DeadlockRejected:  e.deadlockRejected,
		MemoHits:          hits,
		MemoMisses:        misses,
	}
}
