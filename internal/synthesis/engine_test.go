package synthesis

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"paramring/internal/core"
	"paramring/internal/ltg"
	"paramring/internal/protocols"
	"paramring/internal/protogen"
	"paramring/internal/rcg"
)

// candSummary is the comparable projection of a Candidate: everything except
// the Protocol pointer (protocols embed action funcs, which defeat
// reflect.DeepEqual).
type candSummary struct {
	Chosen   string
	Resolve  []core.LocalState
	Phase    Phase
	Livelock ltg.Report
	Deadlock rcg.DeadlockReport
}

func summarize(base *core.Protocol, res *Result) []candSummary {
	if res == nil {
		return nil
	}
	sys := base.Compile()
	out := make([]candSummary, len(res.Accepted))
	for i, c := range res.Accepted {
		out[i] = candSummary{
			Chosen:   ltg.FormatTArcs(sys, c.Chosen),
			Resolve:  c.Resolve,
			Phase:    c.Phase,
			Livelock: c.Livelock,
			Deadlock: c.Deadlock,
		}
	}
	return out
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// The PR 1 determinism contract, extended to synthesis: for random base
// protocols, every worker count must produce byte-identical Accepted,
// Rejections, ResolveSets and Steps — in both first-accept and All modes.
// Only Stats may differ (parallel speculation).
func TestSynthesizeSeqParDeterminism(t *testing.T) {
	workersList := []int{1, 4, runtime.GOMAXPROCS(0)}
	rng := rand.New(rand.NewSource(4242))
	compared := 0
	for trial := 0; trial < 60; trial++ {
		base := protogen.Random(rng, protogen.Options{MovePercent: 1})
		if len(base.Compile().Trans) > 0 {
			continue
		}
		for _, all := range []bool{false, true} {
			var ref *Result
			var refErr error
			for i, w := range workersList {
				res, err := Synthesize(base, Options{Workers: w, All: all})
				if i == 0 {
					ref, refErr = res, err
					continue
				}
				if errString(err) != errString(refErr) {
					t.Fatalf("trial %d all=%v workers=%d: error %q, workers=1 got %q",
						trial, all, w, errString(err), errString(refErr))
				}
				if (res == nil) != (ref == nil) {
					t.Fatalf("trial %d all=%v workers=%d: result nil-ness differs", trial, all, w)
				}
				if res == nil {
					continue
				}
				if !reflect.DeepEqual(summarize(base, res), summarize(base, ref)) {
					t.Fatalf("trial %d all=%v workers=%d: Accepted differ", trial, all, w)
				}
				if !reflect.DeepEqual(res.Rejections, ref.Rejections) {
					t.Fatalf("trial %d all=%v workers=%d: Rejections differ", trial, all, w)
				}
				if !reflect.DeepEqual(res.ResolveSets, ref.ResolveSets) {
					t.Fatalf("trial %d all=%v workers=%d: ResolveSets differ", trial, all, w)
				}
				if !reflect.DeepEqual(res.Steps, ref.Steps) {
					t.Fatalf("trial %d all=%v workers=%d: Steps differ", trial, all, w)
				}
			}
		}
		compared++
	}
	if compared < 20 {
		t.Fatalf("too few action-free random bases compared: %d", compared)
	}
}

// Pruning soundness against the reference flat enumeration: on the paper's
// synthesis case studies and on random bases, the branch-and-bound path must
// accept exactly the assignments the flat path accepts and reject exactly the
// ones it rejects, in the same order. (Rejection *reasons* may cite a
// different trail witness — the pruned walk reports the shallowest failing
// prefix — so they are compared only for presence.)
func TestPruningMatchesFlatEnumeration(t *testing.T) {
	tokenRing, _ := protocols.DijkstraTokenRing(3)
	cases := map[string]*core.Protocol{
		"agreement":   protocols.AgreementBase(),
		"coloring2":   protocols.Coloring(2),
		"coloring3":   protocols.Coloring(3),
		"sum-not-two": protocols.SumNotTwoBase(),
		"token-ring":  tokenRing,
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		base := protogen.Random(rng, protogen.Options{MovePercent: 1})
		if len(base.Compile().Trans) == 0 {
			cases[base.Name()] = base
		}
	}
	for name, base := range cases {
		flat, flatErr := Synthesize(base, Options{All: true, Flat: true})
		pruned, prunedErr := Synthesize(base, Options{All: true})
		if errString(flatErr) != errString(prunedErr) {
			t.Fatalf("%s: flat error %q, pruned error %q", name, errString(flatErr), errString(prunedErr))
		}
		if flat == nil || pruned == nil {
			if (flat == nil) != (pruned == nil) {
				t.Fatalf("%s: result nil-ness differs", name)
			}
			continue
		}
		sys := base.Compile()
		if len(flat.Accepted) != len(pruned.Accepted) {
			t.Fatalf("%s: flat accepts %d, pruned accepts %d", name, len(flat.Accepted), len(pruned.Accepted))
		}
		for i := range flat.Accepted {
			f, p := flat.Accepted[i], pruned.Accepted[i]
			if ltg.FormatTArcs(sys, f.Chosen) != ltg.FormatTArcs(sys, p.Chosen) || f.Phase != p.Phase {
				t.Fatalf("%s: accepted[%d] differs: flat %s (%s), pruned %s (%s)", name, i,
					ltg.FormatTArcs(sys, f.Chosen), f.Phase, ltg.FormatTArcs(sys, p.Chosen), p.Phase)
			}
		}
		if len(flat.Rejections) != len(pruned.Rejections) {
			t.Fatalf("%s: flat rejects %d, pruned rejects %d", name, len(flat.Rejections), len(pruned.Rejections))
		}
		for i := range flat.Rejections {
			f, p := flat.Rejections[i], pruned.Rejections[i]
			if !reflect.DeepEqual(f.Resolve, p.Resolve) || !reflect.DeepEqual(f.Chosen, p.Chosen) {
				t.Fatalf("%s: rejection[%d] targets differ: flat %s, pruned %s", name, i,
					ltg.FormatTArcs(sys, f.Chosen), ltg.FormatTArcs(sys, p.Chosen))
			}
			if f.Reason == "" || p.Reason == "" {
				t.Fatalf("%s: rejection[%d] missing reason", name, i)
			}
		}
	}
}

// Memoization: sum-not-two's eight candidate sets share pseudo-livelock
// cores, so the verdict cache must see hits; and with one worker and All set
// (no speculation, no early exit) the search accounting must partition the
// candidate space exactly.
func TestMemoSharedCoreHitsAndAccounting(t *testing.T) {
	res, err := Synthesize(protocols.SumNotTwoBase(), Options{All: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.MemoMisses == 0 {
		t.Fatal("memo never consulted")
	}
	if st.MemoHits == 0 {
		t.Fatal("no memo hits: assignments sharing a pseudo-livelock core should hit the verdict cache")
	}
	if st.Evaluated+st.PrunedAssignments+st.DeadlockRejected != st.Candidates {
		t.Fatalf("accounting broken: evaluated %d + pruned %d + deadlock-rejected %d != candidates %d",
			st.Evaluated, st.PrunedAssignments, st.DeadlockRejected, st.Candidates)
	}
	if st.PrunedAssignments == 0 {
		t.Fatal("no assignments pruned on sum-not-two: branch-and-bound inactive")
	}
	if st.Evaluated >= st.Candidates {
		t.Fatalf("pruning saved nothing: evaluated %d of %d", st.Evaluated, st.Candidates)
	}
}

// The raised assignment ceiling: the old flat default (4096) no longer bounds
// the search — the engine's default admits products up to 1<<20.
func TestDefaultAssignmentCeilingRaised(t *testing.T) {
	var o Options
	o.defaults()
	if o.MaxAssignments != 1<<20 {
		t.Fatalf("default MaxAssignments = %d, want %d", o.MaxAssignments, 1<<20)
	}
	if o.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers = %d, want GOMAXPROCS = %d", o.Workers, runtime.GOMAXPROCS(0))
	}
}

// Workers: 0 must resolve to the documented default (GOMAXPROCS) rather than
// slipping through to the engine's min(Workers, total) clamp as zero — and,
// default or not, the Results must stay byte-identical to the sequential
// reference (only Stats may differ).
func TestWorkersZeroMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	compared := 0
	for trial := 0; trial < 40 && compared < 10; trial++ {
		base := protogen.Random(rng, protogen.Options{MovePercent: 1})
		if len(base.Compile().Trans) > 0 {
			continue
		}
		seq, seqErr := Synthesize(base, Options{All: true, Workers: 1})
		def, defErr := Synthesize(base, Options{All: true, Workers: 0})
		if errString(seqErr) != errString(defErr) {
			t.Fatalf("trial %d: error %q (Workers=1) vs %q (Workers=0)",
				trial, errString(seqErr), errString(defErr))
		}
		if (seq == nil) != (def == nil) {
			t.Fatalf("trial %d: result nil-ness differs", trial)
		}
		if seq == nil {
			continue
		}
		if def.Stats.Workers != runtime.GOMAXPROCS(0) {
			t.Fatalf("trial %d: Workers=0 ran with %d workers, want GOMAXPROCS = %d",
				trial, def.Stats.Workers, runtime.GOMAXPROCS(0))
		}
		if !reflect.DeepEqual(summarize(base, seq), summarize(base, def)) {
			t.Fatalf("trial %d: Accepted differ between Workers=1 and Workers=0", trial)
		}
		if !reflect.DeepEqual(seq.Rejections, def.Rejections) {
			t.Fatalf("trial %d: Rejections differ between Workers=1 and Workers=0", trial)
		}
		if !reflect.DeepEqual(seq.ResolveSets, def.ResolveSets) {
			t.Fatalf("trial %d: ResolveSets differ between Workers=1 and Workers=0", trial)
		}
		if !reflect.DeepEqual(seq.Steps, def.Steps) {
			t.Fatalf("trial %d: Steps differ between Workers=1 and Workers=0", trial)
		}
		compared++
	}
	if compared < 10 {
		t.Fatalf("too few action-free random bases compared: %d", compared)
	}
}
