package synthesis_test

import (
	"fmt"

	"paramring/internal/core"
	"paramring/internal/synthesis"
)

// Synthesize convergence for binary agreement from the empty protocol: the
// methodology resolves one of the two illegitimate local deadlocks and the
// result stabilizes for EVERY ring size.
func ExampleSynthesize() {
	base := core.MustNew(core.Config{
		Name:   "agreement",
		Domain: 2,
		Lo:     -1,
		Hi:     0,
		Legit:  func(v core.View) bool { return v[0] == v[1] },
	})
	res, err := synthesis.Synthesize(base, synthesis.Options{})
	if err != nil {
		panic(err)
	}
	sol := res.Best()
	fmt.Println("phase:", sol.Phase)
	for _, t := range sol.Chosen {
		fmt.Println("added:", base.Compile().FormatTransition(t))
	}
	fmt.Println("deadlock-free for all K:", sol.Deadlock.Free)
	fmt.Println("livelock verdict:", sol.Livelock.Verdict)
	// Output:
	// phase: NPL
	// added: 10 -> 11 [conv]
	// deadlock-free for all K: true
	// livelock verdict: livelock-free
}
