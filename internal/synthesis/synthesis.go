// Package synthesis implements the paper's Section 6 methodology: automated
// addition of convergence to a non-stabilizing parameterized ring protocol,
// reasoning entirely in the local state space of the representative process.
//
// Given a base protocol p and a locally conjunctive legitimate predicate
// I = AND_r LC_r closed in p, the synthesizer:
//
//  1. computes the local deadlocks D_L and the RCG induced over them;
//  2. chooses Resolve, a minimal subset of the illegitimate local deadlocks
//     hitting every illegitimate deadlock cycle (Theorem 4.2 repair);
//  3. generates candidate local transitions out of Resolve that are
//     self-disabling by construction (targets are local deadlocks outside
//     Resolve);
//  4. (NPL) prefers candidate sets with no pseudo-livelocks;
//  5. (PL) otherwise accepts candidate sets whose pseudo-livelocking subsets
//     form no contiguous trail in the LTG (Theorem 5.14); if no candidate
//     set survives, it declares failure — exactly as the paper does for
//     3-coloring and 2-coloring.
//
// The result provably strongly stabilizes for EVERY ring size K, and the
// Problem 3.1 contract holds by construction: new transitions originate only
// in illegitimate local states, so I, Delta_p|I and closure are untouched.
package synthesis

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"paramring/internal/core"
	"paramring/internal/graph"
	"paramring/internal/ltg"
	"paramring/internal/rcg"
)

// hittingSets delegates to the graph package; the empty family yields the
// single empty Resolve set (nothing to repair).
func hittingSets(family [][]int, allowed map[int]bool, limit int) ([][]int, error) {
	return graph.MinimalHittingSets(family, allowed, limit)
}

// ErrNoSolution is returned (wrapped) when the methodology declares failure:
// every deadlock-resolving candidate set fails the livelock conditions.
var ErrNoSolution = errors.New("synthesis: no candidate set satisfies the livelock-freedom conditions")

// Phase records which branch of the methodology accepted the solution.
type Phase int

const (
	// PhaseNPL means the chosen transitions contain no pseudo-livelock at
	// all (Step 4).
	PhaseNPL Phase = iota + 1
	// PhasePL means pseudo-livelocks exist but none forms a contiguous
	// trail (Step 5).
	PhasePL
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseNPL:
		return "NPL"
	case PhasePL:
		return "PL"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Options tunes Synthesize.
type Options struct {
	// ActionName names the synthesized recovery action (default "conv").
	ActionName string
	// MaxResolveSets caps the number of minimal Resolve sets explored.
	MaxResolveSets int
	// MaxAssignments caps the candidate-set product per Resolve set. The
	// default is 1<<20: branch-and-bound pruning and per-set deadlock
	// prechecks make products far beyond the old flat-enumeration cap (4096)
	// tractable.
	MaxAssignments int
	// Check tunes the Theorem 5.14 trail search.
	Check ltg.CheckOptions
	// All requests every accepted candidate set, not just the first.
	All bool
	// Workers is the number of concurrent workers searching the assignment
	// frontier (<= 0 selects runtime.GOMAXPROCS(0)). Accepted, Rejections,
	// ResolveSets and Steps are byte-identical at every worker count: the
	// winner is always the lexicographically smallest accepted assignment
	// index, and outcomes are assembled in index order. Pass Workers: 1
	// explicitly for the sequential reference path.
	Workers int
	// Flat disables pruning, memoization and the per-Resolve-set deadlock
	// precheck, evaluating every assignment independently — the original
	// flat enumeration, kept as the reference path for differential tests.
	Flat bool
}

func (o *Options) defaults() {
	if o.ActionName == "" {
		o.ActionName = "conv"
	}
	if o.MaxResolveSets <= 0 {
		o.MaxResolveSets = 64
	}
	if o.MaxAssignments <= 0 {
		o.MaxAssignments = 1 << 20
	}
	if o.Check.MaxTArcs <= 0 {
		o.Check.MaxTArcs = 16
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Candidate is one accepted solution.
type Candidate struct {
	// Protocol is p_ss: the base protocol plus the chosen recovery action.
	Protocol *core.Protocol
	// Resolve is the set of illegitimate local deadlocks resolved.
	Resolve []core.LocalState
	// Chosen are the added local transitions.
	Chosen []core.LocalTransition
	// Phase reports NPL or PL acceptance.
	Phase Phase
	// Livelock is the final Theorem 5.14 report for p_ss.
	Livelock ltg.Report
	// Deadlock is the final Theorem 4.2 report for p_ss.
	Deadlock rcg.DeadlockReport
}

// Rejection explains why one candidate set failed.
type Rejection struct {
	Resolve []core.LocalState
	Chosen  []core.LocalTransition
	Reason  string
}

// Result is the full outcome of a synthesis run.
type Result struct {
	// Accepted lists the solutions (one unless Options.All).
	Accepted []Candidate
	// Rejections lists failed candidate sets with reasons (always recorded;
	// for successful runs these are the sets tried before acceptance).
	Rejections []Rejection
	// Steps is a human-readable narrative of the methodology, step by step.
	Steps []string
	// ResolveSets lists every minimal Resolve set considered.
	ResolveSets [][]core.LocalState
	// Stats reports how the search engine reached the result (diagnostic
	// only: counts vary with worker speculation; the fields above do not).
	Stats SearchStats
}

// Best returns the first accepted candidate.
func (r *Result) Best() *Candidate {
	if len(r.Accepted) == 0 {
		return nil
	}
	return &r.Accepted[0]
}

// Synthesize runs the Section 6 methodology on a base protocol.
func Synthesize(base *core.Protocol, opts Options) (*Result, error) {
	opts.defaults()
	res := &Result{}
	logf := func(format string, args ...any) {
		res.Steps = append(res.Steps, fmt.Sprintf(format, args...))
	}

	sys := base.Compile()
	if !sys.IsSelfDisabling() {
		return nil, fmt.Errorf("synthesis: base protocol %q has self-enabling transitions; transform with SelfDisable first", base.Name())
	}

	// Step 1: local deadlocks and the induced RCG.
	r := rcg.Build(sys)
	dg := r.DeadlockGraph()
	logf("Step 1: %d local states, %d local deadlocks (%d illegitimate)",
		sys.N(), len(sys.Deadlocks), len(sys.IllegitimateDeadlocks()))

	// Step 2: minimal Resolve sets = minimal hitting sets of the
	// illegitimate deadlock cycles, drawn from illegitimate deadlocks.
	illegit := func(v int) bool { return !sys.Legit[v] }
	allowed := map[int]bool{}
	for _, d := range sys.IllegitimateDeadlocks() {
		allowed[int(d)] = true
	}
	badCycles, err := dg.CyclesThroughAny(illegit, 0)
	if err != nil {
		return nil, fmt.Errorf("synthesis: enumerating deadlock cycles: %w", err)
	}
	if len(badCycles) == 0 {
		logf("Step 2: base protocol is already deadlock-free for every K (Theorem 4.2)")
	}
	resolveSets, err := hittingSets(badCycles, allowed, opts.MaxResolveSets)
	if err != nil {
		return nil, fmt.Errorf("synthesis: no Resolve set exists: %w", err)
	}
	for _, rs := range resolveSets {
		res.ResolveSets = append(res.ResolveSets, toStates(rs))
	}
	logf("Step 2: %d illegitimate deadlock cycle(s); %d minimal Resolve set(s): %s",
		len(badCycles), len(resolveSets), formatResolveSets(base, res.ResolveSets))

	// Steps 3-5 per Resolve set, searched by the engine: the base LTG is the
	// shared s-arc skeleton candidates are overlaid on, and the memo carries
	// Theorem 5.14 verdicts across assignments and Resolve sets.
	eng := &engine{base: base, sys: sys, r: r, l: ltg.BuildFrom(sys, r), memo: ltg.NewMemo(), opts: opts}
	defer func() { res.Stats = eng.stats() }()

	for _, rs := range resolveSets {
		resolve := toStates(rs)
		inResolve := map[core.LocalState]bool{}
		for _, s := range resolve {
			inResolve[s] = true
		}

		// Step 3: candidates per resolved state: self-disabling transitions
		// whose target is a local deadlock outside Resolve.
		perState := make([][]core.LocalTransition, len(resolve))
		feasible := true
		for i, s := range resolve {
			perState[i] = candidateTransitions(sys, s, inResolve, opts.ActionName)
			if len(perState[i]) == 0 {
				logf("Step 3: Resolve=%s: no self-disabling candidate resolves %s; skipping this Resolve set",
					formatStates(base, resolve), base.FormatState(s))
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		total := 1
		for _, cs := range perState {
			total *= len(cs)
		}
		logf("Step 3: Resolve=%s: %d candidate transition(s) -> %d candidate set(s)",
			formatStates(base, resolve), countAll(perState), total)
		if total > opts.MaxAssignments {
			return nil, fmt.Errorf("synthesis: %d candidate sets exceed limit %d", total, opts.MaxAssignments)
		}

		// Steps 4-5: search the assignments (one transition per resolved
		// state), then expand the outcome spans in ascending assignment
		// order — the sequential assembly that keeps any worker count
		// byte-identical to the flat loop's first-accept behavior.
		spans, err := eng.runResolveSet(resolve, perState, total)
		if err != nil {
			return nil, err
		}
		logged := 0
		for _, sp := range spans {
			if sp.err != nil {
				return nil, sp.err
			}
			if sp.cand != nil {
				logf("  accept %s (phase %s)", ltg.FormatTArcs(sys, sp.cand.Chosen), sp.cand.Phase)
				res.Accepted = append(res.Accepted, *sp.cand)
				if !opts.All {
					return res, nil
				}
				continue
			}
			if sp.rej != nil {
				res.Rejections = append(res.Rejections, *sp.rej)
				logReject(res, sp.rej, sys, &logged)
				continue
			}
			for idx := sp.lo; idx < sp.hi; idx++ {
				rej := Rejection{Resolve: resolve, Chosen: assignment(perState, idx), Reason: sp.reason}
				res.Rejections = append(res.Rejections, rej)
				logReject(res, &rej, sys, &logged)
			}
		}
		if omitted := logged - maxRejectLogLines; omitted > 0 {
			logf("  ... %d further rejection(s) omitted from log", omitted)
		}
	}
	if len(res.Accepted) == 0 {
		logf("declare failure: every candidate set forms a pseudo-livelock participating in a contiguous trail")
		return res, fmt.Errorf("%w (base protocol %q)", ErrNoSolution, base.Name())
	}
	return res, nil
}

// maxRejectLogLines caps the per-Resolve-set "reject" lines in the Steps
// narrative. The Rejections list itself is never truncated; the cap only
// keeps the narrative readable now that assignment spaces can be huge.
const maxRejectLogLines = 1024

// logReject appends the narrative line for one rejection, honoring the cap.
func logReject(res *Result, rej *Rejection, sys *core.System, logged *int) {
	*logged++
	if *logged <= maxRejectLogLines {
		res.Steps = append(res.Steps, fmt.Sprintf("  reject %s: %s", ltg.FormatTArcs(sys, rej.Chosen), rej.Reason))
	}
}

// candidateTransitions lists the legal recovery transitions out of local
// deadlock s: change the own variable to reach a state that (a) is a local
// deadlock of the base protocol and (b) is outside Resolve, guaranteeing the
// revised protocol is self-disabling.
func candidateTransitions(sys *core.System, s core.LocalState, inResolve map[core.LocalState]bool, action string) []core.LocalTransition {
	p := sys.Protocol()
	own := p.OwnIndex()
	view := p.Decode(s)
	var out []core.LocalTransition
	for v := 0; v < p.Domain(); v++ {
		if v == view[own] {
			continue
		}
		dst := make(core.View, len(view))
		copy(dst, view)
		dst[own] = v
		code := p.Encode(dst)
		if !sys.IsDeadlock[code] || inResolve[code] {
			continue
		}
		out = append(out, core.LocalTransition{Src: s, Dst: code, Action: action})
	}
	return out
}

// evaluate builds p_ss from the chosen transitions and applies the
// deadlock/livelock checks. Exactly one of (candidate, rejection) is
// non-nil on success.
func evaluate(base *core.Protocol, sys *core.System, chosen []core.LocalTransition, resolve []core.LocalState, opts Options) (*Candidate, *Rejection, error) {
	pss, err := Apply(base, chosen, opts.ActionName)
	if err != nil {
		return nil, nil, err
	}
	ssys := pss.Compile()

	// Theorem 4.2 on the revised protocol.
	dlRep, err := rcg.Build(ssys).CheckDeadlockFreedom(0)
	if err != nil {
		return nil, nil, fmt.Errorf("synthesis: deadlock re-check: %w", err)
	}
	if !dlRep.Free {
		return nil, &Rejection{Resolve: resolve, Chosen: chosen,
			Reason: "revised protocol still has illegitimate deadlock cycles"}, nil
	}

	// Theorem 5.14 on the revised protocol (NPL and PL in one search).
	llRep, err := ltg.CheckLivelockFreedom(pss, opts.Check)
	if err != nil {
		return nil, nil, err
	}
	switch llRep.Verdict {
	case ltg.VerdictFree:
		phase := PhasePL
		if !ltg.HasPseudoLivelockSubset(ssys, ssys.Trans) {
			phase = PhaseNPL
		}
		return &Candidate{
			Protocol: pss,
			Resolve:  resolve,
			Chosen:   chosen,
			Phase:    phase,
			Livelock: llRep,
			Deadlock: dlRep,
		}, nil, nil
	case ltg.VerdictPotentialLivelock:
		return nil, &Rejection{Resolve: resolve, Chosen: chosen, Reason: llRep.Reason}, nil
	default:
		return nil, &Rejection{Resolve: resolve, Chosen: chosen,
			Reason: "livelock check inconclusive: " + llRep.Reason}, nil
	}
}

// Apply attaches recovery transitions to a base protocol as a single
// table-driven action named actionName.
func Apply(base *core.Protocol, chosen []core.LocalTransition, actionName string) (*core.Protocol, error) {
	if actionName == "" {
		actionName = "conv"
	}
	sys := base.Compile()
	moves := map[core.LocalState][]int{}
	for _, t := range chosen {
		moves[t.Src] = append(moves[t.Src], sys.OwnValue(t.Dst))
	}
	for _, vs := range moves {
		sort.Ints(vs)
	}
	ta := core.TableAction{Name: actionName, Moves: moves}
	return base.WithActions(base.Name()+"/ss", ta.Action(base.Domain())), nil
}

func assignment(perState [][]core.LocalTransition, idx int) []core.LocalTransition {
	out := make([]core.LocalTransition, len(perState))
	for i, cs := range perState {
		out[i] = cs[idx%len(cs)]
		idx /= len(cs)
	}
	// Sort for deterministic reporting.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Src != out[b].Src {
			return out[a].Src < out[b].Src
		}
		return out[a].Dst < out[b].Dst
	})
	return out
}

func countAll(perState [][]core.LocalTransition) int {
	n := 0
	for _, cs := range perState {
		n += len(cs)
	}
	return n
}

func toStates(xs []int) []core.LocalState {
	out := make([]core.LocalState, len(xs))
	for i, x := range xs {
		out[i] = core.LocalState(x)
	}
	return out
}

func formatStates(p *core.Protocol, xs []core.LocalState) string {
	s := "{"
	for i, x := range xs {
		if i > 0 {
			s += ", "
		}
		s += p.FormatState(x)
	}
	return s + "}"
}

func formatResolveSets(p *core.Protocol, sets [][]core.LocalState) string {
	s := ""
	for i, set := range sets {
		if i > 0 {
			s += " "
		}
		s += formatStates(p, set)
	}
	return s
}
