package experiments

import (
	"strings"
	"testing"
)

func TestExtensionExperimentsMatch(t *testing.T) {
	for _, e := range Extensions() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			out, err := e.Run(&sb)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !out.Match {
				t.Fatalf("%s does not match: %s\n%s", e.ID, out.Measured, sb.String())
			}
		})
	}
}

func TestAllWithExtensionsCount(t *testing.T) {
	if len(AllWithExtensions()) != len(All())+len(Extensions()) {
		t.Fatal("count mismatch")
	}
}
