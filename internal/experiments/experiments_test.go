package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsMatchPaper is the repository's headline integration
// test: every figure and evaluation claim of the paper must reproduce.
func TestAllExperimentsMatchPaper(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			out, err := e.Run(&sb)
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if !out.Match {
				t.Fatalf("%s (%s) does not match the paper.\npaper: %s\nmeasured: %s\ndetails:\n%s",
					e.ID, e.Title, e.Paper, out.Measured, sb.String())
			}
			if out.Measured == "" {
				t.Fatal("empty measured summary")
			}
		})
	}
}

func TestExperimentIDsUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range []string{
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12",
		"T1", "T2", "T3", "T4",
	} {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("f3"); !ok {
		t.Fatal("ByID must be case-insensitive")
	}
	if _, ok := ByID("F99"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

func TestExperimentsWriteDetails(t *testing.T) {
	// Each experiment must produce some detail output (the harness pipes it
	// into EXPERIMENTS.md).
	for _, e := range All() {
		var sb strings.Builder
		if _, err := e.Run(&sb); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s wrote no details", e.ID)
		}
	}
}

func BenchmarkAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range All() {
			if _, err := e.Run(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
